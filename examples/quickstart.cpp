//===- examples/quickstart.cpp - Five-minute tour of the library -----------==//
//
// Builds a small sequential program with the frontend DSL, then walks it
// through every stage of the Jrpm system (Figure 1 of the paper):
//
//   1. compile + identify candidate STLs,
//   2. profile sequentially with the TEST hardware model,
//   3. select decompositions with Equations 1 and 2,
//   4. recompile the winners for speculation,
//   5. run on the 4-core Hydra TLS engine.
//
// Build:  cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "jrpm/Pipeline.h"

#include <cstdio>

using namespace jrpm;
using namespace jrpm::front;

int main() {
  // --- A sequential program: histogram + smoothing over an array. -------
  // The DSL mirrors Java-level structured code; `lowerProgram` turns it
  // into the register IR the whole system operates on.
  ProgramDef Program;
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("n", c(4096)),
      assign("data", allocWords(v("n"))),
      assign("hist", allocWords(c(64))),
      assign("out", allocWords(v("n"))),

      // Fill with a deterministic pseudo-random pattern.
      forLoop("i", c(0), lt(v("i"), v("n")), 1,
              store(v("data"), v("i"),
                    srem(band(mul(add(v("i"), c(7)), c(2654435761LL)),
                              c(0x7FFFFFFF)),
                         c(64)))),
      // Histogram (read-modify-write dependencies through hist[]).
      forLoop("i", c(0), lt(v("i"), v("n")), 1,
              store(v("hist"), ld(v("data"), v("i")),
                    add(ld(v("hist"), ld(v("data"), v("i"))), c(1)))),
      // 3-point smoothing (fully parallel).
      forLoop("i", c(1), lt(v("i"), sub(v("n"), c(1))), 1,
              store(v("out"), v("i"),
                    sdiv(add(add(ld(v("data"), sub(v("i"), c(1))),
                             ld(v("data"), v("i"))),
                         ld(v("data"), add(v("i"), c(1)))),
                         c(3)))),
      // Checksum.
      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              assign("sum", add(v("sum"), mul(ld(v("hist"), v("i")),
                                              add(v("i"), c(1)))))),
      forLoop("i", c(0), lt(v("i"), v("n")), 1,
              assign("sum", add(v("sum"), ld(v("out"), v("i"))))),
      ret(v("sum")),
  });
  Program.Functions.push_back(std::move(Main));
  ir::Module Module = lowerProgram(Program);

  // --- Run the whole pipeline. ------------------------------------------
  pipeline::PipelineConfig Config; // Hydra defaults: Tables 1 and 2
  pipeline::Jrpm Jrpm(std::move(Module), Config);
  pipeline::PipelineResult R = Jrpm.runAll();

  std::printf("sequential run : %llu cycles (checksum %llu)\n",
              (unsigned long long)R.PlainRun.Cycles,
              (unsigned long long)R.PlainRun.ReturnValue);
  std::printf("TEST profiling : %llu cycles (%.1f%% slowdown)\n",
              (unsigned long long)R.ProfiledRun.Cycles,
              (R.profilingSlowdown() - 1.0) * 100.0);

  std::printf("candidate loops: %zu, selected STLs: %zu\n",
              R.Selection.Loops.size(), R.Selection.SelectedLoops.size());
  for (std::uint32_t L : R.Selection.SelectedLoops) {
    const tracer::StlReport &Rep = R.Selection.Loops[L];
    std::printf("  STL #%u: coverage %.1f%%, avg thread %.0f cycles, "
                "estimated speedup %.2f\n",
                L, Rep.Coverage * 100.0, Rep.Stats.avgThreadSize(),
                Rep.Estimate.Speedup);
  }
  std::printf("predicted whole-program speedup: %.2f\n",
              R.Selection.PredictedSpeedup);

  std::printf("speculative run: %llu cycles (checksum %llu) -> actual "
              "speedup %.2f\n",
              (unsigned long long)R.TlsRun.Cycles,
              (unsigned long long)R.TlsRun.ReturnValue, R.actualSpeedup());
  if (R.TlsRun.ReturnValue != R.PlainRun.ReturnValue) {
    std::printf("ERROR: speculative execution diverged!\n");
    return 1;
  }
  std::printf("speculative and sequential results are identical.\n");
  return 0;
}
