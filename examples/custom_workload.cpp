//===- examples/custom_workload.cpp - Bringing your own program ------------==//
//
// Shows the minimal steps to put a new program of your own through the
// system: write it in the DSL (here: a 2D box blur over an image),
// lower it, and let Jrpm find and exploit its speculative threads. Also
// demonstrates inspecting candidate screening — why loops were accepted
// or rejected — which is the first thing to check when a program refuses
// to speed up.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "jrpm/Pipeline.h"
#include "workloads/Common.h"

#include <cstdio>

using namespace jrpm;
using namespace jrpm::front;

int main() {
  constexpr std::int64_t W = 96, H = 64;

  ProgramDef P;
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("img", allocWords(c(W * H))),
      assign("out", allocWords(c(W * H))),
      forLoop("i", c(0), lt(v("i"), c(W * H)), 1,
              store(v("img"), v("i"), workloads::hashMod(v("i"), 256))),

      // Box blur over the interior: rows are independent -> the row loop
      // is a textbook STL.
      forLoop(
          "y", c(1), lt(v("y"), c(H - 1)), 1,
          forLoop(
              "x", c(1), lt(v("x"), c(W - 1)), 1,
              seq({
                  assign("acc", c(0)),
                  forLoop("dy", c(-1), le(v("dy"), c(1)), 1,
                          forLoop("dx", c(-1), le(v("dx"), c(1)), 1,
                                  assign("acc",
                                         add(v("acc"),
                                             ld(v("img"),
                                                add(mul(add(v("y"), v("dy")),
                                                        c(W)),
                                                    add(v("x"),
                                                        v("dx")))))))),
                  store(v("out"), add(mul(v("y"), c(W)), v("x")),
                        sdiv(v("acc"), c(9))),
              }))),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(W * H)), 1,
              assign("sum", add(v("sum"), ld(v("out"), v("i"))))),
      ret(v("sum")),
  });
  P.Functions.push_back(std::move(Main));

  pipeline::Jrpm Jrpm(lowerProgram(P), pipeline::PipelineConfig{});

  // Candidate screening report: every natural loop and its fate.
  std::printf("candidate loops:\n");
  for (const auto &C : Jrpm.moduleAnalysis().candidates()) {
    const auto &FA = Jrpm.moduleAnalysis().func(C.FuncIndex);
    const auto &L = FA.LI.loops()[C.LoopIdx];
    std::printf("  loop #%u depth %u: %s%s\n", C.LoopId, L.Depth,
                C.Rejected ? "REJECTED: " : "candidate STL",
                C.Rejected ? C.RejectReason.c_str() : "");
  }

  pipeline::PipelineResult R = Jrpm.runAll();
  std::printf("\nselected STLs:\n");
  for (std::uint32_t L : R.Selection.SelectedLoops)
    std::printf("  STL #%u: coverage %.1f%%, threads %.0f cycles, "
                "estimate %.2fx\n",
                L, R.Selection.Loops[L].Coverage * 100.0,
                R.Selection.Loops[L].Stats.avgThreadSize(),
                R.Selection.Loops[L].Estimate.Speedup);
  std::printf("\nsequential %llu cycles, speculative %llu cycles: "
              "%.2fx speedup, checksum %s\n",
              (unsigned long long)R.PlainRun.Cycles,
              (unsigned long long)R.TlsRun.Cycles, R.actualSpeedup(),
              R.TlsRun.ReturnValue == R.PlainRun.ReturnValue ? "ok"
                                                             : "DIVERGED");
  return R.TlsRun.ReturnValue == R.PlainRun.ReturnValue ? 0 : 1;
}
