//===- examples/loop_tuning.cpp - Section 6.3's feedback-driven tuning -----==//
//
// Demonstrates the workflow the paper describes in Section 6.3: TEST's
// extended PC-binned statistics point a programmer at the one dependency
// that limits parallelism; restructuring that dependency exposes the loop
// to the speculation hardware.
//
// The program scans transactions and maintains (a) a running checksum —
// a carried chain whose update sits at the END of each iteration body, so
// every violation discards a whole thread of work — and (b) per-category
// totals. Version B moves the checksum update to the top of the body:
// restarts become cheap and the loop reaches its predicted speedup (the
// "optimized placement of loads and stores" / violation-minimizing
// restructuring of Section 6.3).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "jrpm/Pipeline.h"
#include "workloads/Common.h"

#include <cstdio>

using namespace jrpm;
using namespace jrpm::front;

namespace {

ir::Module buildScanner(bool Restructured) {
  constexpr std::int64_t N = 3000;
  FuncDef Main;
  Main.Name = "main";

  // Per-iteration body parts.
  St Heavy = seq({
      // Categorize + accumulate per-category totals (independent-ish).
      assign("val", ld(v("tx"), v("i"))),
      assign("cat", srem(v("val"), c(16))),
      assign("w", v("val")),
      forLoop("k", c(0), lt(v("k"), c(6)), 1,
              assign("w", band(add(mul(v("w"), c(131)), c(7)),
                               c(0xFFFFF)))),
      store(v("totals"), v("cat"), add(ld(v("totals"), v("cat")), v("w"))),
  });
  St ChecksumUpdate =
      assign("chk", band(add(mul(v("chk"), c(33)), v("val")),
                         c(0xFFFFFFFF)));

  std::vector<St> Body;
  if (Restructured) {
    // The dependency chain closes at the TOP of the body: the next
    // iteration's load sees the store almost a full thread earlier.
    Body = {assign("val", ld(v("tx"), v("i"))), ChecksumUpdate, Heavy};
  } else {
    Body = {Heavy, ChecksumUpdate};
  }

  Main.Body = seq({
      assign("tx", allocWords(c(N))),
      assign("totals", allocWords(c(16))),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              store(v("tx"), v("i"), workloads::hashMod(v("i"), 100000))),
      assign("chk", c(1)),
      forLoop("i", c(0), lt(v("i"), c(N)), 1, seq(Body)),
      assign("sum", v("chk")),
      forLoop("i", c(0), lt(v("i"), c(16)), 1,
              assign("sum", add(v("sum"), ld(v("totals"), v("i"))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}

void report(const char *Label, bool Restructured) {
  pipeline::PipelineConfig Cfg;
  Cfg.ExtendedPcBinning = true;
  pipeline::Jrpm J(buildScanner(Restructured), Cfg);
  auto R = J.runAll();

  // The scan loop: highest-coverage traced loop.
  const tracer::StlReport *Scan = nullptr;
  for (const auto &Rep : R.Selection.Loops)
    if (Rep.Stats.CritArcsPrev &&
        (!Scan || Rep.Coverage > Scan->Coverage))
      Scan = &Rep;

  std::printf("--- %s ---\n", Label);
  if (Scan) {
    std::printf("  scan loop: thread %.0f cycles, critical arc %.0f cycles "
                "(%.0f%% of thread), estimate %.2f\n",
                Scan->Stats.avgThreadSize(), Scan->Stats.avgArcPrev(),
                100.0 * Scan->Stats.avgArcPrev() /
                    Scan->Stats.avgThreadSize(),
                Scan->Estimate.Speedup);
    for (const auto &[Pc, Bin] : Scan->Stats.PcBins)
      std::printf("    dependency site pc=%d: %llu critical arcs, avg %.0f "
                  "cycles\n",
                  Pc, (unsigned long long)Bin.CriticalArcs,
                  Bin.averageLength());
  }
  std::printf("  whole program: predicted %.2fx, actual %.2fx "
              "(checksum %s)\n\n",
              R.Selection.PredictedSpeedup, R.actualSpeedup(),
              R.TlsRun.ReturnValue == R.PlainRun.ReturnValue ? "ok"
                                                             : "DIVERGED");
}

} // namespace

int main() {
  std::printf("TEST-guided loop tuning (Section 6.3)\n\n");
  report("version A: checksum updated at the end of the body", false);
  report("version B: dependency hoisted to the top of the body", true);
  std::printf(
      "TEST's Equation 1 predicts ~3.4x for both versions (the arc spans\n"
      "nearly a whole thread either way), but the PC-binned statistics\n"
      "pinpoint the checksum's load as the dependency site. In version A\n"
      "every violation restarts a thread AFTER it has done all its heavy\n"
      "work, so actual execution collapses to ~1.1x; hoisting the\n"
      "dependency to the top of the body (version B) makes restarts cheap\n"
      "and the prediction materializes (~3.3x). This is the programmer\n"
      "feedback loop of Section 6.3 — 'these statistics quickly identified\n"
      "one or two critical dependencies that could be restructured'.\n");
  return 0;
}
