//===- examples/huffman_decode.cpp - The paper's running example -----------==//
//
// Reproduces the paper's Figure 3 walk-through on the Huffman benchmark:
// prints the accumulated counters and derived values for the decode nest
// (thread sizes, critical arc frequencies and lengths, overflow counts),
// then the Equation 1 estimates and the Equation 2 decision, and finally
// executes the chosen decomposition speculatively.
//
//===----------------------------------------------------------------------===//

#include "jrpm/Pipeline.h"
#include "support/Format.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace jrpm;

static void printFigure3Block(const tracer::StlReport &Rep) {
  const tracer::StlStats &S = Rep.Stats;
  std::printf("  raw counters (Figure 3, 'values derived from counters'):\n");
  std::printf("    # cycles                         %llu\n",
              (unsigned long long)S.Cycles);
  std::printf("    # threads                        %llu\n",
              (unsigned long long)S.Threads);
  std::printf("    # entries                        %llu\n",
              (unsigned long long)S.Entries);
  std::printf("    # critical arcs to t-1           %llu\n",
              (unsigned long long)S.CritArcsPrev);
  std::printf("    accum. arc lengths to t-1        %llu\n",
              (unsigned long long)S.CritLenPrev);
  std::printf("    # critical arcs to <t-1          %llu\n",
              (unsigned long long)S.CritArcsEarlier);
  std::printf("    accum. arc lengths to <t-1       %llu\n",
              (unsigned long long)S.CritLenEarlier);
  std::printf("  derived values:\n");
  std::printf("    avg. thread size                 %.1f cycles\n",
              S.avgThreadSize());
  std::printf("    avg. iterations per loop entry   %.1f\n",
              S.itersPerEntry());
  std::printf("    critical arc freq to t-1         %.2f\n",
              S.arcFreqPrev());
  std::printf("    avg. critical arc length to t-1  %.1f cycles\n",
              S.avgArcPrev());
  std::printf("    critical arc freq to <t-1        %.2f\n",
              S.arcFreqEarlier());
  std::printf("    overflow frequency               %.3f\n",
              S.overflowFreq());
  std::printf("  Equation 1: base speedup %.2f, with overheads %.2f\n",
              Rep.Estimate.BaseSpeedup, Rep.Estimate.Speedup);
}

int main() {
  const workloads::Workload *W = workloads::findWorkload("Huffman");
  pipeline::Jrpm Jrpm(W->Build(), pipeline::PipelineConfig{});
  auto P = Jrpm.profileAndSelect();

  // Locate the decode nest: the parent/child pair with maximum combined
  // coverage, as in bench_table3_selection.
  int Outer = -1, Inner = -1;
  double Best = 0;
  for (const auto &Rep : P.Selection.Loops)
    for (std::uint32_t C : Rep.Children) {
      double Cov = Rep.Coverage + P.Selection.Loops[C].Coverage;
      if (P.Selection.Loops[C].Stats.Threads && Cov > Best) {
        Best = Cov;
        Outer = static_cast<int>(Rep.LoopId);
        Inner = static_cast<int>(C);
      }
    }
  if (Outer < 0) {
    std::printf("decode nest not found\n");
    return 1;
  }

  std::printf("=== outer decode loop (STL #%d) ===\n", Outer);
  printFigure3Block(P.Selection.Loops[static_cast<std::uint32_t>(Outer)]);
  std::printf("\n=== inner tree-walk loop (STL #%d) ===\n", Inner);
  printFigure3Block(P.Selection.Loops[static_cast<std::uint32_t>(Inner)]);

  const auto &O = P.Selection.Loops[static_cast<std::uint32_t>(Outer)];
  const auto &I = P.Selection.Loops[static_cast<std::uint32_t>(Inner)];
  std::printf("\nEquation 2: outer spec time %s vs nested alternative %s "
              "-> %s loop selected\n",
              asKiloCycles((std::uint64_t)O.Estimate.SpecCycles).c_str(),
              asKiloCycles((std::uint64_t)(O.Stats.Cycles - I.Stats.Cycles +
                                           I.BestTime))
                  .c_str(),
              O.Selected ? "outer" : "inner");

  auto Tls = Jrpm.runSpeculative(P.Selection);
  auto Plain = Jrpm.runPlain();
  std::printf("\nspeculative execution: %.2fx actual speedup "
              "(checksums %s)\n",
              (double)Plain.Cycles / (double)Tls.Run.Cycles,
              Tls.Run.ReturnValue == Plain.ReturnValue ? "match"
                                                       : "DIVERGED");
  for (const auto &[LoopId, S] : Tls.LoopStats)
    std::printf("  STL #%u: %llu committed threads, %llu violations, "
                "%llu restarts\n",
                LoopId, (unsigned long long)S.CommittedThreads,
                (unsigned long long)S.Violations,
                (unsigned long long)S.Restarts);
  return Tls.Run.ReturnValue == Plain.ReturnValue ? 0 : 1;
}
