#!/usr/bin/env bash
# Golden-trace determinism gate.
#
# Records .jtrace captures for three small workloads twice each and runs
# `jrpm-trace diff` between the two recordings: any nondeterminism in the
# interpreter, the annotator, or the trace encoder fails the check. Also
# exercises `jrpm-trace info` and a capture-config replay on every trace.
#
# Usage:
#   scripts/ci_trace_golden.sh                  # configure+build, then check
#   scripts/ci_trace_golden.sh --bin <jrpm-trace>   # use an existing binary
#
# The second form is how the tier-1 ctest suite invokes it (see
# tools/CMakeLists.txt), so the gate runs on every `ctest` invocation.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
WORKLOADS=(BitOps Assignment Huffman)

BIN=""
if [[ "${1:-}" == "--bin" ]]; then
  BIN="$2"
else
  BUILD="${ROOT}/build"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  cmake -B "${BUILD}" -S "${ROOT}" "$@"
  cmake --build "${BUILD}" -j"${JOBS}" --target jrpm-trace
  BIN="${BUILD}/tools/jrpm-trace"
fi

TMP="$(mktemp -d "${TMPDIR:-/tmp}/jrpm-trace-golden.XXXXXX")"
trap 'rm -rf "${TMP}"' EXIT

STATUS=0
for W in "${WORKLOADS[@]}"; do
  "${BIN}" record "${W}" -o "${TMP}/${W}.a.jtrace" > /dev/null
  "${BIN}" record "${W}" -o "${TMP}/${W}.b.jtrace" > /dev/null
  if "${BIN}" diff "${TMP}/${W}.a.jtrace" "${TMP}/${W}.b.jtrace" > /dev/null; then
    echo "golden-trace: ${W} deterministic"
  else
    echo "golden-trace: ${W} NONDETERMINISTIC" >&2
    "${BIN}" diff "${TMP}/${W}.a.jtrace" "${TMP}/${W}.b.jtrace" >&2 || true
    STATUS=1
  fi
  "${BIN}" info "${TMP}/${W}.a.jtrace" > /dev/null
  "${BIN}" replay "${TMP}/${W}.a.jtrace" > /dev/null
done

exit "${STATUS}"
