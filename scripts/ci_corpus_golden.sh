#!/usr/bin/env bash
# Golden-corpus JSON gate.
#
# Runs a fixed small corpus sweep (three workloads' templates, four seeds
# per template) and compares the report byte-for-byte against the
# committed golden file, once with a single worker thread and once with
# four: any schema drift, key reordering, digest change (a generator or
# extractor behavior change), or thread-count dependence in the report
# fails the check.
#
# With JRPM_CORPUS_FULL=1 the gate additionally runs the full-scale corpus
# (the whole registry, 25 seeds per template — >= 2000 variants) on 1 and
# 4 threads and requires those two reports to be byte-identical too. The
# full sweep takes tens of seconds, so tier-1 keeps it behind the knob.
#
# Usage:
#   scripts/ci_corpus_golden.sh                    # configure+build, then check
#   scripts/ci_corpus_golden.sh --bin <jrpm-corpus> --golden <file>
#
# The second form is how the tier-1 ctest suite invokes it (see
# tools/CMakeLists.txt). To regenerate the golden file after an intentional
# schema or generator change:
#   build/tools/jrpm-corpus run --workloads BitOps,fft,compress \
#     --variants-per-template 4 --seed 3 --quiet \
#     -o tests/golden/corpus_small.json

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
GOLDEN="${ROOT}/tests/golden/corpus_small.json"

BIN=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --golden) GOLDEN="$2"; shift 2 ;;
    *) break ;;
  esac
done

if [[ -z "${BIN}" ]]; then
  BUILD="${ROOT}/build"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  cmake -B "${BUILD}" -S "${ROOT}" "$@"
  cmake --build "${BUILD}" -j"${JOBS}" --target jrpm-corpus
  BIN="${BUILD}/tools/jrpm-corpus"
fi

TMP="$(mktemp -d "${TMPDIR:-/tmp}/jrpm-corpus-golden.XXXXXX")"
trap 'rm -rf "${TMP}"' EXIT

STATUS=0
for THREADS in 1 4; do
  OUT="${TMP}/corpus.t${THREADS}.json"
  "${BIN}" run --workloads BitOps,fft,compress --variants-per-template 4 \
    --seed 3 --threads "${THREADS}" --quiet -o "${OUT}" > /dev/null
  if cmp -s "${GOLDEN}" "${OUT}"; then
    echo "golden-corpus: ${THREADS}-thread report matches"
  else
    echo "golden-corpus: ${THREADS}-thread report DIFFERS from golden" >&2
    diff -u "${GOLDEN}" "${OUT}" >&2 || true
    STATUS=1
  fi
done

if [[ "${JRPM_CORPUS_FULL:-0}" == "1" ]]; then
  FULL1="${TMP}/full.t1.json"
  FULL4="${TMP}/full.t4.json"
  "${BIN}" run --variants-per-template 25 --seed 1 --threads 1 --quiet \
    -o "${FULL1}" > /dev/null
  "${BIN}" run --variants-per-template 25 --seed 1 --threads 4 --quiet \
    -o "${FULL4}" > /dev/null
  if cmp -s "${FULL1}" "${FULL4}"; then
    echo "golden-corpus: full-scale 1-vs-4-thread reports identical"
  else
    echo "golden-corpus: full-scale reports DIFFER across threads" >&2
    diff -u "${FULL1}" "${FULL4}" >&2 || true
    STATUS=1
  fi
fi

exit "${STATUS}"
