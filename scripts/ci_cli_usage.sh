#!/usr/bin/env bash
# CLI conformance gate: every tool prints usage to stderr and exits 2 on a
# bad invocation (no/unknown subcommand, missing operand, unknown option,
# trailing junk), and keeps stdout clean while doing so.
#
# Usage (how the tier-1 ctest invokes it — see tools/CMakeLists.txt):
#   scripts/ci_cli_usage.sh --run-bin <jrpm-run> --trace-bin <jrpm-trace> \
#     --sweep-bin <jrpm-sweep> --lint-bin <jrpm-lint> \
#     --metrics-bin <jrpm-metrics> --serve-bin <jrpm-serve> \
#     --corpus-bin <jrpm-corpus>

set -uo pipefail

RUN_BIN=""; TRACE_BIN=""; SWEEP_BIN=""; LINT_BIN=""; METRICS_BIN=""; SERVE_BIN=""; CORPUS_BIN=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --run-bin) RUN_BIN="$2"; shift 2 ;;
    --trace-bin) TRACE_BIN="$2"; shift 2 ;;
    --sweep-bin) SWEEP_BIN="$2"; shift 2 ;;
    --lint-bin) LINT_BIN="$2"; shift 2 ;;
    --metrics-bin) METRICS_BIN="$2"; shift 2 ;;
    --serve-bin) SERVE_BIN="$2"; shift 2 ;;
    --corpus-bin) CORPUS_BIN="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

for V in RUN_BIN TRACE_BIN SWEEP_BIN LINT_BIN METRICS_BIN SERVE_BIN CORPUS_BIN; do
  if [[ -z "${!V}" ]]; then
    echo "missing --$(echo "${V%_BIN}" | tr 'A-Z' 'a-z')-bin" >&2
    exit 2
  fi
done

STATUS=0

# expect_usage <description> <command...>
# The command must exit 2, print a usage line on stderr, and nothing on
# stdout after the point of failure (we only require stderr mentions
# "usage:" — tools may emit a specific complaint line first).
expect_usage() {
  local DESC="$1"; shift
  local OUT ERR RC
  OUT="$("$@" 2>/tmp/jrpm-cli-usage-stderr.$$)"
  RC=$?
  ERR="$(cat /tmp/jrpm-cli-usage-stderr.$$)"
  rm -f /tmp/jrpm-cli-usage-stderr.$$
  if [[ ${RC} -ne 2 ]]; then
    echo "FAIL (${DESC}): exit ${RC}, want 2: $*" >&2
    STATUS=1
  elif ! grep -q "usage:" <<<"${ERR}"; then
    echo "FAIL (${DESC}): no usage on stderr: $*" >&2
    STATUS=1
  else
    echo "ok (${DESC})"
  fi
}

# jrpm-run
expect_usage "run: no args"           "${RUN_BIN}"
expect_usage "run: bad subcommand"    "${RUN_BIN}" frobnicate
expect_usage "run: list with junk"    "${RUN_BIN}" list extra
expect_usage "run: missing workload"  "${RUN_BIN}" run
expect_usage "run: unknown option"    "${RUN_BIN}" run BitOps --bogus
expect_usage "run: missing value"     "${RUN_BIN}" run BitOps --banks
expect_usage "run: batch no value"    "${RUN_BIN}" run BitOps --trace-batch
expect_usage "run: batch zero"        "${RUN_BIN}" run BitOps --trace-batch=0
expect_usage "run: dump-ir with junk" "${RUN_BIN}" dump-ir BitOps extra
expect_usage "run: trace bad option"  "${RUN_BIN}" trace BitOps --nope

# jrpm-trace
expect_usage "trace: no args"         "${TRACE_BIN}"
expect_usage "trace: bad subcommand"  "${TRACE_BIN}" explode
expect_usage "trace: record no wl"    "${TRACE_BIN}" record
expect_usage "trace: info no path"    "${TRACE_BIN}" info
expect_usage "trace: info with junk"  "${TRACE_BIN}" info a.jtrace extra
expect_usage "trace: diff one path"   "${TRACE_BIN}" diff a.jtrace
expect_usage "trace: diff with junk"  "${TRACE_BIN}" diff a b c
expect_usage "trace: unknown option"  "${TRACE_BIN}" record BitOps --bogus

# jrpm-sweep
expect_usage "sweep: no args"         "${SWEEP_BIN}"
expect_usage "sweep: bad subcommand"  "${SWEEP_BIN}" launch
expect_usage "sweep: unknown option"  "${SWEEP_BIN}" run --bogus
expect_usage "sweep: missing value"   "${SWEEP_BIN}" run --workloads
expect_usage "sweep: bad level"       "${SWEEP_BIN}" run --levels sideways

# jrpm-lint
expect_usage "lint: no args"          "${LINT_BIN}"
expect_usage "lint: unknown option"   "${LINT_BIN}" all --bogus
expect_usage "lint: jobs no value"    "${LINT_BIN}" all --jobs
expect_usage "lint: jobs zero"        "${LINT_BIN}" all --jobs 0
expect_usage "lint: jobs junk"        "${LINT_BIN}" all --jobs many
expect_usage "lint: json bad option"  "${LINT_BIN}" all --json --bogus

# jrpm-metrics
expect_usage "metrics: no args"       "${METRICS_BIN}"
expect_usage "metrics: bad subcmd"    "${METRICS_BIN}" munge a.json
expect_usage "metrics: show no file"  "${METRICS_BIN}" show
expect_usage "metrics: show junk"     "${METRICS_BIN}" show a.json extra
expect_usage "metrics: diff one file" "${METRICS_BIN}" diff a.json

# jrpm-serve
expect_usage "serve: no args"          "${SERVE_BIN}"
expect_usage "serve: bad subcommand"   "${SERVE_BIN}" destroy
expect_usage "serve: serve no socket"  "${SERVE_BIN}" serve --store /tmp/s
expect_usage "serve: serve no store"   "${SERVE_BIN}" serve --socket /tmp/a.sock
expect_usage "serve: unknown option"   "${SERVE_BIN}" serve --socket a --store b --bogus
expect_usage "serve: submit no socket" "${SERVE_BIN}" submit --workloads BitOps
expect_usage "serve: submit mixed kinds" \
  "${SERVE_BIN}" submit --socket a.sock --kind sweep --workload BitOps
expect_usage "serve: status no socket" "${SERVE_BIN}" status
expect_usage "serve: status with junk" "${SERVE_BIN}" status --socket a.sock extra
expect_usage "serve: stats bad option" "${SERVE_BIN}" stats --socket a.sock -x

# jrpm-corpus
expect_usage "corpus: no args"          "${CORPUS_BIN}"
expect_usage "corpus: bad subcommand"   "${CORPUS_BIN}" mutate
expect_usage "corpus: unknown option"   "${CORPUS_BIN}" run --bogus
expect_usage "corpus: missing value"    "${CORPUS_BIN}" run --seed
expect_usage "corpus: generate no tmpl" "${CORPUS_BIN}" generate
expect_usage "corpus: generate count 0" "${CORPUS_BIN}" generate --template x --count 0
expect_usage "corpus: shrink no repro"  "${CORPUS_BIN}" shrink
expect_usage "corpus: stats with junk"  "${CORPUS_BIN}" stats extra

exit "${STATUS}"
