#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite and every bench harness,
# and records the outputs the repository's EXPERIMENTS.md is based on.
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
: > bench_output.txt
for b in build/bench/bench_*; do
  [ -f "$b" ] || continue
  [ -x "$b" ] || continue
  echo "=== $(basename "$b") ===" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done
