#!/usr/bin/env bash
# Golden lint-report gate.
#
# Runs `jrpm-lint all --oracle --json` over the full workload registry and
# compares the structured report byte-for-byte against the committed golden
# file, once with one lint thread and once with four: any schema drift, key
# reordering, analysis nondeterminism, or thread-count dependence in the
# report fails the check.
#
# Usage:
#   scripts/ci_lint_golden.sh                   # configure+build, then check
#   scripts/ci_lint_golden.sh --bin <jrpm-lint> --golden <file>
#
# The second form is how the tier-1 ctest suite invokes it (see
# tools/CMakeLists.txt). To regenerate the golden file after an intentional
# schema change:
#   build/tools/jrpm-lint all --oracle --json > tests/golden/lint_registry.json

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
GOLDEN="${ROOT}/tests/golden/lint_registry.json"

BIN=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --golden) GOLDEN="$2"; shift 2 ;;
    *) break ;;
  esac
done

if [[ -z "${BIN}" ]]; then
  BUILD="${ROOT}/build"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  cmake -B "${BUILD}" -S "${ROOT}" "$@"
  cmake --build "${BUILD}" -j"${JOBS}" --target jrpm-lint
  BIN="${BUILD}/tools/jrpm-lint"
fi

TMP="$(mktemp -d "${TMPDIR:-/tmp}/jrpm-lint-golden.XXXXXX")"
trap 'rm -rf "${TMP}"' EXIT

STATUS=0
for THREADS in 1 4; do
  OUT="${TMP}/lint.t${THREADS}.json"
  "${BIN}" all --oracle --json --jobs "${THREADS}" > "${OUT}"
  if cmp -s "${GOLDEN}" "${OUT}"; then
    echo "golden-lint: ${THREADS}-thread report matches"
  else
    echo "golden-lint: ${THREADS}-thread report DIFFERS from golden" >&2
    diff -u "${GOLDEN}" "${OUT}" | head -80 >&2 || true
    STATUS=1
  fi
done

exit "${STATUS}"
