#!/usr/bin/env bash
# Serve-daemon golden gate.
#
# Starts jrpm-serve against a fresh artifact store, submits the golden
# sweep request twice, and requires:
#   1. the first submission to report "cache miss" (computed), the second
#      "cache hit" (served from the store without recompute),
#   2. both payloads to be byte-identical to the committed golden sweep
#      report (tests/golden/sweep_small.json) — the daemon path must not
#      introduce any schema or formatting drift over the CLI path,
#   3. a SIGTERM to drain the daemon cleanly: it prints "drained" and
#      exits 0.
#
# Usage:
#   scripts/ci_serve_golden.sh                    # configure+build, then check
#   scripts/ci_serve_golden.sh --bin <jrpm-serve> --golden <file>
#
# The second form is how the tier-1 ctest suite invokes it (see
# tools/CMakeLists.txt).

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
GOLDEN="${ROOT}/tests/golden/sweep_small.json"

BIN=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --golden) GOLDEN="$2"; shift 2 ;;
    *) break ;;
  esac
done

if [[ -z "${BIN}" ]]; then
  BUILD="${ROOT}/build"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  cmake -B "${BUILD}" -S "${ROOT}" "$@"
  cmake --build "${BUILD}" -j"${JOBS}" --target jrpm-serve
  BIN="${BUILD}/tools/jrpm-serve"
fi

TMP="$(mktemp -d "${TMPDIR:-/tmp}/jrpm-serve-golden.XXXXXX")"
SOCK="${TMP}/d.sock"
DAEMON_PID=""
cleanup() {
  if [[ -n "${DAEMON_PID}" ]] && kill -0 "${DAEMON_PID}" 2>/dev/null; then
    kill -KILL "${DAEMON_PID}" 2>/dev/null || true
    wait "${DAEMON_PID}" 2>/dev/null || true
  fi
  rm -rf "${TMP}"
}
trap cleanup EXIT

"${BIN}" serve --socket "${SOCK}" --store "${TMP}/store" \
  > "${TMP}/daemon.log" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to come up (the socket appears once listen() runs).
for _ in $(seq 1 100); do
  [[ -S "${SOCK}" ]] && break
  if ! kill -0 "${DAEMON_PID}" 2>/dev/null; then
    echo "serve-golden: daemon died during startup" >&2
    cat "${TMP}/daemon.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ ! -S "${SOCK}" ]]; then
  echo "serve-golden: daemon socket never appeared" >&2
  exit 1
fi

STATUS=0

submit() {
  local OUT="$1" LOG="$2"
  "${BIN}" submit --socket "${SOCK}" \
    --workloads BitOps,fft --levels base,optimized \
    --config banks=2,history=48 --seed 7 \
    -o "${OUT}" 2> "${LOG}"
}

# Cold submission: must compute (cache miss).
if ! submit "${TMP}/cold.json" "${TMP}/cold.log"; then
  echo "serve-golden: cold submission failed" >&2
  cat "${TMP}/cold.log" >&2
  STATUS=1
elif ! grep -q "cache miss" "${TMP}/cold.log"; then
  echo "serve-golden: cold submission was not a cache miss:" >&2
  cat "${TMP}/cold.log" >&2
  STATUS=1
else
  echo "serve-golden: cold submission computed"
fi

# Warm submission: must be served from the artifact store.
if ! submit "${TMP}/warm.json" "${TMP}/warm.log"; then
  echo "serve-golden: warm submission failed" >&2
  cat "${TMP}/warm.log" >&2
  STATUS=1
elif ! grep -q "cache hit" "${TMP}/warm.log"; then
  echo "serve-golden: warm submission was not a cache hit:" >&2
  cat "${TMP}/warm.log" >&2
  STATUS=1
else
  echo "serve-golden: warm submission was a cache hit"
fi

for LEG in cold warm; do
  if cmp -s "${GOLDEN}" "${TMP}/${LEG}.json"; then
    echo "serve-golden: ${LEG} payload matches golden"
  else
    echo "serve-golden: ${LEG} payload DIFFERS from golden" >&2
    diff -u "${GOLDEN}" "${TMP}/${LEG}.json" >&2 || true
    STATUS=1
  fi
done

# Graceful drain: SIGTERM must produce a clean exit 0 and the drain banner.
kill -TERM "${DAEMON_PID}"
DRAIN_RC=0
wait "${DAEMON_PID}" || DRAIN_RC=$?
DAEMON_PID=""
if [[ ${DRAIN_RC} -ne 0 ]]; then
  echo "serve-golden: daemon exited ${DRAIN_RC} on SIGTERM, want 0" >&2
  cat "${TMP}/daemon.log" >&2
  STATUS=1
elif ! grep -q "drained" "${TMP}/daemon.log"; then
  echo "serve-golden: daemon log is missing the drain banner:" >&2
  cat "${TMP}/daemon.log" >&2
  STATUS=1
else
  echo "serve-golden: daemon drained cleanly on SIGTERM"
fi

exit "${STATUS}"
