#!/usr/bin/env bash
# Runs the tier-1 test suite under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Usage: scripts/ci_sanitize.sh [extra cmake args...]
#
# Configures a dedicated build tree with -DJRPM_SANITIZE=ON (see the option
# in the top-level CMakeLists.txt), builds everything, and runs ctest —
# the full tier-1 suite, which includes the Corpus* template-corpus suites
# and the corpus golden gate. Sanitizer failures are fatal
# (-fno-sanitize-recover=all), so any report fails the suite.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-sanitize"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "${BUILD}" -S "${ROOT}" -DJRPM_SANITIZE=ON "$@"
cmake --build "${BUILD}" -j"${JOBS}"
ctest --test-dir "${BUILD}" --output-on-failure -j"${JOBS}"
