#!/usr/bin/env bash
# Interpreter-throughput smoke gate.
#
# Runs bench_exec_throughput in --quick mode (first 8 registry workloads,
# soft 1.2x gate on the plain-leg instructions/sec of the flat CodeImage
# over the embedded seed nested-layout interpreter). The bench verifies
# bit-exactness of every leg on the spot — cycles, instruction counts,
# return values, and selection digests must match between layouts — so
# this smoke catches both semantic regressions and gross layout-throughput
# regressions without the runtime of the full-registry run.
#
# The gate is soft against machine noise: when the two flat passes differ
# by more than 10%, the bench reports the measurement as unresolved and
# exits 0 rather than failing on runner jitter. For a publishable number,
# run the full bench on a quiet host, preferably under the release-native
# preset:
#   cmake --preset release-native && cmake --build --preset release-native
#   build-native/bench/bench_exec_throughput
#
# Usage:
#   scripts/ci_perf_smoke.sh                  # configure+build, then run
#   scripts/ci_perf_smoke.sh --bin <bench_exec_throughput>
#
# The second form is how the tier-1 ctest suite invokes it (see
# tools/CMakeLists.txt).

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

BIN=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    *) break ;;
  esac
done

if [[ -z "${BIN}" ]]; then
  BUILD="${ROOT}/build"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  cmake -B "${BUILD}" -S "${ROOT}" "$@"
  cmake --build "${BUILD}" -j"${JOBS}" --target bench_exec_throughput
  BIN="${BUILD}/bench/bench_exec_throughput"
fi

exec "${BIN}" --quick
