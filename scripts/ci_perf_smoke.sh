#!/usr/bin/env bash
# Throughput smoke gates.
#
# Runs bench_exec_throughput and bench_tracer_throughput in --quick mode
# (first 8 registry workloads, soft 1.2x gates):
#
#   - bench_exec_throughput gates the flat CodeImage interpreter's
#     instructions/sec over the embedded seed nested-layout interpreter,
#     verifying every leg bit-exact on the spot (cycles, instruction
#     counts, return values, selection digests).
#   - bench_tracer_throughput gates the block-drained SoA tracer core's
#     events/sec over the embedded seed per-event engine, verifying
#     StlStats/parents/peaks vs the seed engine and selection digests +
#     tracer.* metrics vs the live profiled run on every stream.
#
# Both catch semantic regressions and gross throughput regressions without
# the runtime of the full-registry runs.
#
# The gates are soft against machine noise: when the two measured passes
# differ by more than 10%, a bench reports the measurement as unresolved
# and exits 0 rather than failing on runner jitter. For a publishable
# number, run the full benches on a quiet host, preferably under the
# release-native preset:
#   cmake --preset release-native && cmake --build --preset release-native
#   build-native/bench/bench_exec_throughput
#   build-native/bench/bench_tracer_throughput
#
# Usage:
#   scripts/ci_perf_smoke.sh                  # configure+build, then run
#   scripts/ci_perf_smoke.sh --bin <bench_exec_throughput> \
#     [--tracer-bin <bench_tracer_throughput>]
#
# The second form is how the tier-1 ctest suite invokes it (see
# tools/CMakeLists.txt).

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

BIN=""
TRACER_BIN=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --tracer-bin) TRACER_BIN="$2"; shift 2 ;;
    *) break ;;
  esac
done

if [[ -z "${BIN}" ]]; then
  BUILD="${ROOT}/build"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  cmake -B "${BUILD}" -S "${ROOT}" "$@"
  cmake --build "${BUILD}" -j"${JOBS}" \
    --target bench_exec_throughput bench_tracer_throughput
  BIN="${BUILD}/bench/bench_exec_throughput"
  TRACER_BIN="${BUILD}/bench/bench_tracer_throughput"
fi

"${BIN}" --quick
if [[ -n "${TRACER_BIN}" ]]; then
  # Soft throughput gate: exit 3 means every stream was bit-identical but
  # the events/sec multiplier fell short on this host — warn without
  # failing CI. Any other nonzero exit is a semantic divergence and fails.
  rc=0
  "${TRACER_BIN}" --quick || rc=$?
  if [[ "${rc}" -eq 3 ]]; then
    echo "WARN: tracer throughput below the quick gate (soft); see output above"
  elif [[ "${rc}" -ne 0 ]]; then
    exit "${rc}"
  fi
fi
