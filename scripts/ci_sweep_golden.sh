#!/usr/bin/env bash
# Golden-sweep JSON gate.
#
# Runs a fixed small sweep (two workloads, both annotation levels, one
# non-default config point) in deterministic mode (--no-timings) and
# compares the JSON byte-for-byte against the committed golden file, once
# with a single worker thread and once with four: any schema drift, key
# reordering, double-formatting change, or thread-count dependence in the
# report fails the check.
#
# Usage:
#   scripts/ci_sweep_golden.sh                    # configure+build, then check
#   scripts/ci_sweep_golden.sh --bin <jrpm-sweep> --golden <file>
#
# The second form is how the tier-1 ctest suite invokes it (see
# tools/CMakeLists.txt). To regenerate the golden file after an intentional
# schema change:
#   build/tools/jrpm-sweep run --workloads BitOps,fft \
#     --levels base,optimized --config banks=2,history=48 --seed 7 \
#     --no-timings --quiet -o tests/golden/sweep_small.json

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
GOLDEN="${ROOT}/tests/golden/sweep_small.json"

BIN=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bin) BIN="$2"; shift 2 ;;
    --golden) GOLDEN="$2"; shift 2 ;;
    *) break ;;
  esac
done

if [[ -z "${BIN}" ]]; then
  BUILD="${ROOT}/build"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  cmake -B "${BUILD}" -S "${ROOT}" "$@"
  cmake --build "${BUILD}" -j"${JOBS}" --target jrpm-sweep
  BIN="${BUILD}/tools/jrpm-sweep"
fi

TMP="$(mktemp -d "${TMPDIR:-/tmp}/jrpm-sweep-golden.XXXXXX")"
trap 'rm -rf "${TMP}"' EXIT

STATUS=0
for THREADS in 1 4; do
  OUT="${TMP}/sweep.t${THREADS}.json"
  "${BIN}" run --workloads BitOps,fft --levels base,optimized \
    --config banks=2,history=48 --seed 7 --threads "${THREADS}" \
    --no-timings --quiet -o "${OUT}" > /dev/null
  if cmp -s "${GOLDEN}" "${OUT}"; then
    echo "golden-sweep: ${THREADS}-thread report matches"
  else
    echo "golden-sweep: ${THREADS}-thread report DIFFERS from golden" >&2
    diff -u "${GOLDEN}" "${OUT}" >&2 || true
    STATUS=1
  fi
done

exit "${STATUS}"
