#!/usr/bin/env bash
# clang-tidy gate over the library and tool sources.
#
# Runs clang-tidy (checks from the repo-root .clang-tidy: bugprone-*,
# performance-*, readability-container-*) against every .cpp under src/
# and tools/ using the build tree's compile_commands.json. Any warning is
# an error. When clang-tidy is not installed the gate *skips* (exit 77,
# ctest SKIP_RETURN_CODE) instead of failing: the toolchain image does not
# ship it, and nothing may be installed on the fly.
#
# Usage:
#   scripts/ci_clang_tidy.sh                      # use ./build
#   scripts/ci_clang_tidy.sh --build-dir <dir>    # ctest form
#   scripts/ci_clang_tidy.sh --jobs N

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build"
JOBS="$(nproc 2>/dev/null || echo 4)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD="$2"; shift 2 ;;
    --jobs) JOBS="$2"; shift 2 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  for V in 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-${V}" > /dev/null 2>&1; then
      TIDY="$(command -v "clang-tidy-${V}")"
      break
    fi
  done
fi
if [[ -z "${TIDY}" ]]; then
  echo "clang-tidy: not installed; skipping the gate"
  exit 77
fi

if [[ ! -f "${BUILD}/compile_commands.json" ]]; then
  cmake -B "${BUILD}" -S "${ROOT}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    > /dev/null
fi
if [[ ! -f "${BUILD}/compile_commands.json" ]]; then
  echo "clang-tidy: no compile_commands.json in ${BUILD}" >&2
  exit 1
fi

mapfile -t FILES < <(find "${ROOT}/src" "${ROOT}/tools" -name '*.cpp' | sort)
echo "clang-tidy: ${TIDY} over ${#FILES[@]} files (${JOBS} jobs)"

STATUS=0
printf '%s\n' "${FILES[@]}" |
  xargs -P "${JOBS}" -n 4 "${TIDY}" -p "${BUILD}" --quiet || STATUS=1

if [[ "${STATUS}" -eq 0 ]]; then
  echo "clang-tidy: clean"
else
  echo "clang-tidy: violations found" >&2
fi
exit "${STATUS}"
