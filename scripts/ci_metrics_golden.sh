#!/usr/bin/env bash
# Golden-metrics JSON gate.
#
# The instrumentation registry's export is a pure function of the simulated
# execution: sorted keys, fixed double format, simulated-cycle values only.
# This gate pins that end to end in two ways:
#
#   1. `jrpm-run run BitOps --metrics` must reproduce the committed golden
#      export byte-for-byte — any change to cycle accounting, metric
#      naming, or JSON rendering fails here and must be reviewed via a
#      golden update.
#   2. The merged metrics of a fixed sweep must be byte-identical between
#      a 1-thread and a 4-thread pool (per-job registries merge in plan
#      order, never in completion order).
#
# Usage:
#   scripts/ci_metrics_golden.sh                 # configure+build, then check
#   scripts/ci_metrics_golden.sh --run-bin <jrpm-run> --sweep-bin <jrpm-sweep> \
#     --golden <file>
#
# The second form is how the tier-1 ctest suite invokes it (see
# tools/CMakeLists.txt). To regenerate the golden file after an intentional
# metrics change:
#   build/tools/jrpm-run run BitOps --metrics tests/golden/metrics_small.json

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
GOLDEN="${ROOT}/tests/golden/metrics_small.json"

RUN_BIN=""
SWEEP_BIN=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --run-bin) RUN_BIN="$2"; shift 2 ;;
    --sweep-bin) SWEEP_BIN="$2"; shift 2 ;;
    --golden) GOLDEN="$2"; shift 2 ;;
    *) break ;;
  esac
done

if [[ -z "${RUN_BIN}" || -z "${SWEEP_BIN}" ]]; then
  BUILD="${ROOT}/build"
  JOBS="$(nproc 2>/dev/null || echo 4)"
  cmake -B "${BUILD}" -S "${ROOT}" "$@"
  cmake --build "${BUILD}" -j"${JOBS}" --target jrpm-run jrpm-sweep
  RUN_BIN="${BUILD}/tools/jrpm-run"
  SWEEP_BIN="${BUILD}/tools/jrpm-sweep"
fi

TMP="$(mktemp -d "${TMPDIR:-/tmp}/jrpm-metrics-golden.XXXXXX")"
trap 'rm -rf "${TMP}"' EXIT

STATUS=0

# Gate 1: pipeline metrics export matches the committed golden bytes.
"${RUN_BIN}" run BitOps --metrics "${TMP}/metrics.json" > /dev/null
if cmp -s "${GOLDEN}" "${TMP}/metrics.json"; then
  echo "golden-metrics: BitOps export matches"
else
  echo "golden-metrics: BitOps export DIFFERS from golden" >&2
  diff -u "${GOLDEN}" "${TMP}/metrics.json" >&2 || true
  STATUS=1
fi

# Gate 2: merged sweep metrics are pool-width independent.
for THREADS in 1 4; do
  "${SWEEP_BIN}" run --workloads BitOps,fft --levels base,optimized \
    --threads "${THREADS}" --quiet \
    --metrics "${TMP}/sweep.t${THREADS}.json" > /dev/null
done
if cmp -s "${TMP}/sweep.t1.json" "${TMP}/sweep.t4.json"; then
  echo "golden-metrics: 1-thread and 4-thread sweep metrics identical"
else
  echo "golden-metrics: sweep metrics depend on pool width" >&2
  diff -u "${TMP}/sweep.t1.json" "${TMP}/sweep.t4.json" >&2 || true
  STATUS=1
fi

exit "${STATUS}"
