#!/usr/bin/env bash
# Runs the sweep engine's concurrency tests under ThreadSanitizer.
#
# Usage: scripts/ci_tsan.sh [extra cmake args...]
#
# Configures a dedicated build tree with -DJRPM_TSAN=ON (see the option in
# the top-level CMakeLists.txt; mutually exclusive with JRPM_SANITIZE),
# builds everything, and runs the concurrency-focused subset of ctest: the
# Sweep* suites (thread pool, plan runner, determinism), the concurrent
# fuzz harness that dispatches generated programs across the pool, the
# Corpus* suites (template corpus sweeps on the pool, 1-vs-N thread report
# identity), the Serve* suites (daemon single-flight dedup, saturation,
# drain), and the Tracer* suites (block-drained engine vs per-event
# reference, batch-capacity sweeps). TSan reports are fatal
# (-fno-sanitize-recover=all), so any data race fails the suite.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-tsan"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "${BUILD}" -S "${ROOT}" -DJRPM_TSAN=ON "$@"
cmake --build "${BUILD}" -j"${JOBS}"
ctest --test-dir "${BUILD}" --output-on-failure -j"${JOBS}" \
  -R 'Sweep|Concurrent|Interleaved|Serve|Corpus|Tracer|TraceEngine'
