file(REMOVE_RECURSE
  "CMakeFiles/jrpm-run.dir/jrpm_run.cpp.o"
  "CMakeFiles/jrpm-run.dir/jrpm_run.cpp.o.d"
  "jrpm-run"
  "jrpm-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
