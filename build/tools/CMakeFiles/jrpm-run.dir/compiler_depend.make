# Empty compiler generated dependencies file for jrpm-run.
# This may be replaced when dependencies are built.
