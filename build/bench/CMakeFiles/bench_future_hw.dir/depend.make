# Empty dependencies file for bench_future_hw.
# This may be replaced when dependencies are built.
