file(REMOVE_RECURSE
  "CMakeFiles/bench_future_hw.dir/bench_future_hw.cpp.o"
  "CMakeFiles/bench_future_hw.dir/bench_future_hw.cpp.o.d"
  "bench_future_hw"
  "bench_future_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
