# Empty compiler generated dependencies file for bench_pc_binning.
# This may be replaced when dependencies are built.
