file(REMOVE_RECURSE
  "CMakeFiles/bench_pc_binning.dir/bench_pc_binning.cpp.o"
  "CMakeFiles/bench_pc_binning.dir/bench_pc_binning.cpp.o.d"
  "bench_pc_binning"
  "bench_pc_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pc_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
