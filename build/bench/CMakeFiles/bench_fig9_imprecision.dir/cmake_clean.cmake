file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_imprecision.dir/bench_fig9_imprecision.cpp.o"
  "CMakeFiles/bench_fig9_imprecision.dir/bench_fig9_imprecision.cpp.o.d"
  "bench_fig9_imprecision"
  "bench_fig9_imprecision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_imprecision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
