file(REMOVE_RECURSE
  "CMakeFiles/bench_mls_coverage.dir/bench_mls_coverage.cpp.o"
  "CMakeFiles/bench_mls_coverage.dir/bench_mls_coverage.cpp.o.d"
  "bench_mls_coverage"
  "bench_mls_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mls_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
