# Empty dependencies file for bench_mls_coverage.
# This may be replaced when dependencies are built.
