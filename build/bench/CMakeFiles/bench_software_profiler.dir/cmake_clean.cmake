file(REMOVE_RECURSE
  "CMakeFiles/bench_software_profiler.dir/bench_software_profiler.cpp.o"
  "CMakeFiles/bench_software_profiler.dir/bench_software_profiler.cpp.o.d"
  "bench_software_profiler"
  "bench_software_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_software_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
