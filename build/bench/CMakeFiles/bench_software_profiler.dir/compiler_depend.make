# Empty compiler generated dependencies file for bench_software_profiler.
# This may be replaced when dependencies are built.
