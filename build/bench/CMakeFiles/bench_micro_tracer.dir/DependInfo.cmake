
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_tracer.cpp" "bench/CMakeFiles/bench_micro_tracer.dir/bench_micro_tracer.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_tracer.dir/bench_micro_tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jrpm/CMakeFiles/jrpm_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/jrpm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/jrpm_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/hydra/CMakeFiles/jrpm_hydra.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/jrpm_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/tracer/CMakeFiles/jrpm_tracer.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/jrpm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/jrpm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/jrpm_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/jrpm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jrpm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
