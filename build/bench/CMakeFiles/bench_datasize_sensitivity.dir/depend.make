# Empty dependencies file for bench_datasize_sensitivity.
# This may be replaced when dependencies are built.
