file(REMOVE_RECURSE
  "CMakeFiles/bench_datasize_sensitivity.dir/bench_datasize_sensitivity.cpp.o"
  "CMakeFiles/bench_datasize_sensitivity.dir/bench_datasize_sensitivity.cpp.o.d"
  "bench_datasize_sensitivity"
  "bench_datasize_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datasize_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
