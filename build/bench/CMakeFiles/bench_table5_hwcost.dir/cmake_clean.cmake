file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_hwcost.dir/bench_table5_hwcost.cpp.o"
  "CMakeFiles/bench_table5_hwcost.dir/bench_table5_hwcost.cpp.o.d"
  "bench_table5_hwcost"
  "bench_table5_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
