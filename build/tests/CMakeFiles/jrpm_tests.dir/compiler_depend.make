# Empty compiler generated dependencies file for jrpm_tests.
# This may be replaced when dependencies are built.
