
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/annotator_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/annotator_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/annotator_test.cpp.o.d"
  "/root/repo/tests/frontend_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/frontend_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/frontend_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/hwcost_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/hwcost_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/hwcost_test.cpp.o.d"
  "/root/repo/tests/hydra_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/hydra_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/hydra_test.cpp.o.d"
  "/root/repo/tests/interp_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/interp_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/interp_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/mls_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/mls_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/mls_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/selector_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/selector_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/selector_test.cpp.o.d"
  "/root/repo/tests/speedup_model_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/speedup_model_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/speedup_model_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/tracer_engine_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/tracer_engine_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/tracer_engine_test.cpp.o.d"
  "/root/repo/tests/tracer_stores_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/tracer_stores_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/tracer_stores_test.cpp.o.d"
  "/root/repo/tests/workloads_test.cpp" "tests/CMakeFiles/jrpm_tests.dir/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/jrpm_tests.dir/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jrpm/CMakeFiles/jrpm_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/jrpm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/jrpm_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/hydra/CMakeFiles/jrpm_hydra.dir/DependInfo.cmake"
  "/root/repo/build/src/jit/CMakeFiles/jrpm_jit.dir/DependInfo.cmake"
  "/root/repo/build/src/tracer/CMakeFiles/jrpm_tracer.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/jrpm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/jrpm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/jrpm_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/jrpm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jrpm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
