file(REMOVE_RECURSE
  "CMakeFiles/jrpm_jit.dir/Annotator.cpp.o"
  "CMakeFiles/jrpm_jit.dir/Annotator.cpp.o.d"
  "CMakeFiles/jrpm_jit.dir/TlsPlan.cpp.o"
  "CMakeFiles/jrpm_jit.dir/TlsPlan.cpp.o.d"
  "libjrpm_jit.a"
  "libjrpm_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
