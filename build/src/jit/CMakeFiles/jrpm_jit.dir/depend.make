# Empty dependencies file for jrpm_jit.
# This may be replaced when dependencies are built.
