file(REMOVE_RECURSE
  "libjrpm_workloads.a"
)
