# Empty compiler generated dependencies file for jrpm_workloads.
# This may be replaced when dependencies are built.
