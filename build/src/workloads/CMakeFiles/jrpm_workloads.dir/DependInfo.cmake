
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Assignment.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Assignment.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Assignment.cpp.o.d"
  "/root/repo/src/workloads/BitOps.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/BitOps.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/BitOps.cpp.o.d"
  "/root/repo/src/workloads/Compress.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Compress.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Compress.cpp.o.d"
  "/root/repo/src/workloads/Db.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Db.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Db.cpp.o.d"
  "/root/repo/src/workloads/DecJpeg.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/DecJpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/DecJpeg.cpp.o.d"
  "/root/repo/src/workloads/DeltaBlue.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/DeltaBlue.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/DeltaBlue.cpp.o.d"
  "/root/repo/src/workloads/EmFloatPnt.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/EmFloatPnt.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/EmFloatPnt.cpp.o.d"
  "/root/repo/src/workloads/EncJpeg.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/EncJpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/EncJpeg.cpp.o.d"
  "/root/repo/src/workloads/Euler.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Euler.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Euler.cpp.o.d"
  "/root/repo/src/workloads/Fft.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Fft.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Fft.cpp.o.d"
  "/root/repo/src/workloads/FourierTest.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/FourierTest.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/FourierTest.cpp.o.d"
  "/root/repo/src/workloads/H263Dec.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/H263Dec.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/H263Dec.cpp.o.d"
  "/root/repo/src/workloads/Huffman.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Huffman.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Huffman.cpp.o.d"
  "/root/repo/src/workloads/Idea.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Idea.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Idea.cpp.o.d"
  "/root/repo/src/workloads/JLex.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/JLex.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/JLex.cpp.o.d"
  "/root/repo/src/workloads/Jess.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Jess.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Jess.cpp.o.d"
  "/root/repo/src/workloads/LuFactor.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/LuFactor.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/LuFactor.cpp.o.d"
  "/root/repo/src/workloads/MipsSimulator.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/MipsSimulator.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/MipsSimulator.cpp.o.d"
  "/root/repo/src/workloads/Moldyn.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Moldyn.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Moldyn.cpp.o.d"
  "/root/repo/src/workloads/MonteCarlo.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/MonteCarlo.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/MonteCarlo.cpp.o.d"
  "/root/repo/src/workloads/Mp3.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Mp3.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Mp3.cpp.o.d"
  "/root/repo/src/workloads/MpegVideo.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/MpegVideo.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/MpegVideo.cpp.o.d"
  "/root/repo/src/workloads/NeuralNet.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/NeuralNet.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/NeuralNet.cpp.o.d"
  "/root/repo/src/workloads/NumHeapSort.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/NumHeapSort.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/NumHeapSort.cpp.o.d"
  "/root/repo/src/workloads/Raytrace.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Raytrace.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Raytrace.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/Shallow.cpp" "src/workloads/CMakeFiles/jrpm_workloads.dir/Shallow.cpp.o" "gcc" "src/workloads/CMakeFiles/jrpm_workloads.dir/Shallow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/jrpm_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/jrpm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jrpm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
