# Empty compiler generated dependencies file for jrpm_frontend.
# This may be replaced when dependencies are built.
