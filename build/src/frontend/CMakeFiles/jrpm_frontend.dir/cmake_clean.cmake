file(REMOVE_RECURSE
  "CMakeFiles/jrpm_frontend.dir/Ast.cpp.o"
  "CMakeFiles/jrpm_frontend.dir/Ast.cpp.o.d"
  "CMakeFiles/jrpm_frontend.dir/Lower.cpp.o"
  "CMakeFiles/jrpm_frontend.dir/Lower.cpp.o.d"
  "libjrpm_frontend.a"
  "libjrpm_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
