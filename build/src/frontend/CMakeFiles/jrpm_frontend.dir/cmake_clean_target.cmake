file(REMOVE_RECURSE
  "libjrpm_frontend.a"
)
