# Empty compiler generated dependencies file for jrpm_hwcost.
# This may be replaced when dependencies are built.
