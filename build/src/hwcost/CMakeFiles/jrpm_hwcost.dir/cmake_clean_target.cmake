file(REMOVE_RECURSE
  "libjrpm_hwcost.a"
)
