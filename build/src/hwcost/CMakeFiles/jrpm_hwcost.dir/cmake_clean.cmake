file(REMOVE_RECURSE
  "CMakeFiles/jrpm_hwcost.dir/TransistorModel.cpp.o"
  "CMakeFiles/jrpm_hwcost.dir/TransistorModel.cpp.o.d"
  "libjrpm_hwcost.a"
  "libjrpm_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
