# CMake generated Testfile for 
# Source directory: /root/repo/src/jrpm
# Build directory: /root/repo/build/src/jrpm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
