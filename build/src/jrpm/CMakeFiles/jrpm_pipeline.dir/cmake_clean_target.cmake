file(REMOVE_RECURSE
  "libjrpm_pipeline.a"
)
