# Empty compiler generated dependencies file for jrpm_pipeline.
# This may be replaced when dependencies are built.
