# Empty dependencies file for jrpm_pipeline.
# This may be replaced when dependencies are built.
