file(REMOVE_RECURSE
  "CMakeFiles/jrpm_pipeline.dir/Pipeline.cpp.o"
  "CMakeFiles/jrpm_pipeline.dir/Pipeline.cpp.o.d"
  "libjrpm_pipeline.a"
  "libjrpm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
