file(REMOVE_RECURSE
  "CMakeFiles/jrpm_hydra.dir/TlsCodegen.cpp.o"
  "CMakeFiles/jrpm_hydra.dir/TlsCodegen.cpp.o.d"
  "CMakeFiles/jrpm_hydra.dir/TlsEngine.cpp.o"
  "CMakeFiles/jrpm_hydra.dir/TlsEngine.cpp.o.d"
  "libjrpm_hydra.a"
  "libjrpm_hydra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm_hydra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
