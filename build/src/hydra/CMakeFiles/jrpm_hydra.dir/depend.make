# Empty dependencies file for jrpm_hydra.
# This may be replaced when dependencies are built.
