file(REMOVE_RECURSE
  "libjrpm_hydra.a"
)
