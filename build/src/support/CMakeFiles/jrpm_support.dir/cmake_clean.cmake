file(REMOVE_RECURSE
  "CMakeFiles/jrpm_support.dir/Format.cpp.o"
  "CMakeFiles/jrpm_support.dir/Format.cpp.o.d"
  "CMakeFiles/jrpm_support.dir/Table.cpp.o"
  "CMakeFiles/jrpm_support.dir/Table.cpp.o.d"
  "libjrpm_support.a"
  "libjrpm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
