# Empty compiler generated dependencies file for jrpm_support.
# This may be replaced when dependencies are built.
