file(REMOVE_RECURSE
  "libjrpm_support.a"
)
