# Empty compiler generated dependencies file for jrpm_ir.
# This may be replaced when dependencies are built.
