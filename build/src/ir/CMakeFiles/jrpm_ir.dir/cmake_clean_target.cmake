file(REMOVE_RECURSE
  "libjrpm_ir.a"
)
