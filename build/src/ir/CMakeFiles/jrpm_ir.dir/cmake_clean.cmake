file(REMOVE_RECURSE
  "CMakeFiles/jrpm_ir.dir/IR.cpp.o"
  "CMakeFiles/jrpm_ir.dir/IR.cpp.o.d"
  "CMakeFiles/jrpm_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/jrpm_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/jrpm_ir.dir/Opcode.cpp.o"
  "CMakeFiles/jrpm_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/jrpm_ir.dir/Verifier.cpp.o"
  "CMakeFiles/jrpm_ir.dir/Verifier.cpp.o.d"
  "libjrpm_ir.a"
  "libjrpm_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
