file(REMOVE_RECURSE
  "CMakeFiles/jrpm_analysis.dir/Candidates.cpp.o"
  "CMakeFiles/jrpm_analysis.dir/Candidates.cpp.o.d"
  "CMakeFiles/jrpm_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/jrpm_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/jrpm_analysis.dir/InductionInfo.cpp.o"
  "CMakeFiles/jrpm_analysis.dir/InductionInfo.cpp.o.d"
  "CMakeFiles/jrpm_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/jrpm_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/jrpm_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/jrpm_analysis.dir/LoopInfo.cpp.o.d"
  "libjrpm_analysis.a"
  "libjrpm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
