file(REMOVE_RECURSE
  "libjrpm_analysis.a"
)
