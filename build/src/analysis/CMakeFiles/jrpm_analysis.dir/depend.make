# Empty dependencies file for jrpm_analysis.
# This may be replaced when dependencies are built.
