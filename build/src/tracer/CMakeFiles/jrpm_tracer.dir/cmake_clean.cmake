file(REMOVE_RECURSE
  "CMakeFiles/jrpm_tracer.dir/Selector.cpp.o"
  "CMakeFiles/jrpm_tracer.dir/Selector.cpp.o.d"
  "CMakeFiles/jrpm_tracer.dir/SpeedupModel.cpp.o"
  "CMakeFiles/jrpm_tracer.dir/SpeedupModel.cpp.o.d"
  "CMakeFiles/jrpm_tracer.dir/TraceEngine.cpp.o"
  "CMakeFiles/jrpm_tracer.dir/TraceEngine.cpp.o.d"
  "libjrpm_tracer.a"
  "libjrpm_tracer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
