# Empty dependencies file for jrpm_tracer.
# This may be replaced when dependencies are built.
