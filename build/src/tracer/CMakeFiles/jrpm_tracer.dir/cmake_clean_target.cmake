file(REMOVE_RECURSE
  "libjrpm_tracer.a"
)
