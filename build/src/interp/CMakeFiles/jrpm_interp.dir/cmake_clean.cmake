file(REMOVE_RECURSE
  "CMakeFiles/jrpm_interp.dir/ExecContext.cpp.o"
  "CMakeFiles/jrpm_interp.dir/ExecContext.cpp.o.d"
  "CMakeFiles/jrpm_interp.dir/Machine.cpp.o"
  "CMakeFiles/jrpm_interp.dir/Machine.cpp.o.d"
  "libjrpm_interp.a"
  "libjrpm_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrpm_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
