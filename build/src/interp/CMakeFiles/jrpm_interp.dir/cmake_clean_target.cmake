file(REMOVE_RECURSE
  "libjrpm_interp.a"
)
