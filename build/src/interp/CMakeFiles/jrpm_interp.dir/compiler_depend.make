# Empty compiler generated dependencies file for jrpm_interp.
# This may be replaced when dependencies are built.
