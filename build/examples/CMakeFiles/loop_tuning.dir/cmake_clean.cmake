file(REMOVE_RECURSE
  "CMakeFiles/loop_tuning.dir/loop_tuning.cpp.o"
  "CMakeFiles/loop_tuning.dir/loop_tuning.cpp.o.d"
  "loop_tuning"
  "loop_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
