# Empty dependencies file for loop_tuning.
# This may be replaced when dependencies are built.
