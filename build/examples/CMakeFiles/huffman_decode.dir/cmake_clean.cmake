file(REMOVE_RECURSE
  "CMakeFiles/huffman_decode.dir/huffman_decode.cpp.o"
  "CMakeFiles/huffman_decode.dir/huffman_decode.cpp.o.d"
  "huffman_decode"
  "huffman_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huffman_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
