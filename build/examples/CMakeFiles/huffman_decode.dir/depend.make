# Empty dependencies file for huffman_decode.
# This may be replaced when dependencies are built.
