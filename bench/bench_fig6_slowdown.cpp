//===- bench/bench_fig6_slowdown.cpp - Figure 6 ----------------------------==//
//
// Regenerates Figure 6: execution slowdown while profiling with TEST, for
// base and optimized annotations, decomposed into the three components the
// figure stacks: statistics read-out ("Read Counters"), local-variable
// annotations ("Locals"), and the loop-marker instructions
// ("Annotations"). The paper's claim: most programs stay under 10%, the
// worst near 25% with optimized annotations.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jrpm;
using namespace jrpm::benchutil;

namespace {

struct Slowdown {
  double Total;
  double ReadCounters;
  double Locals;
  double Markers;
};

Slowdown measure(const workloads::Workload &W, jit::AnnotationLevel Level,
                 std::uint64_t DisableAfter = 0) {
  auto Run = [&](std::uint32_t ReadStats, std::uint32_t LocalAnno) {
    pipeline::PipelineConfig Cfg;
    Cfg.Level = Level;
    Cfg.Hw.ReadStatsCost = ReadStats;
    Cfg.Hw.LocalAnnoCost = LocalAnno;
    Cfg.DisableLoopAfterThreads = DisableAfter;
    pipeline::Jrpm J(W.Build(), Cfg);
    return static_cast<double>(J.profileAndSelect().Run.Cycles);
  };
  pipeline::PipelineConfig Base;
  pipeline::Jrpm JPlain(W.Build(), Base);
  double Plain = static_cast<double>(JPlain.runPlain().Cycles);

  double Full = Run(Base.Hw.ReadStatsCost, Base.Hw.LocalAnnoCost);
  double NoReads = Run(0, Base.Hw.LocalAnnoCost);
  double NoLocalsNoReads = Run(0, 0);

  Slowdown S;
  S.Total = (Full - Plain) / Plain;
  S.ReadCounters = (Full - NoReads) / Plain;
  S.Locals = (NoReads - NoLocalsNoReads) / Plain;
  S.Markers = (NoLocalsNoReads - Plain) / Plain;
  return S;
}

/// Profiled cycles at the optimized level, with or without the static
/// dependence pre-filter. Loops the pre-filter rejects are never
/// annotated, so their profiling overhead must vanish — on every workload
/// the filtered run may not be costlier than the unfiltered one.
std::uint64_t profiledCycles(const workloads::Workload &W, bool Prefilter) {
  pipeline::PipelineConfig Cfg;
  Cfg.StaticPrefilter = Prefilter;
  pipeline::Jrpm J(W.Build(), Cfg);
  return J.profileAndSelect().Run.Cycles;
}

} // namespace

int main() {
  printBanner("Figure 6 - Execution slowdown during profiling", "Figure 6");
  TextTable T;
  T.setHeader({"Benchmark", "base total", "base reads", "base locals",
               "base markers", "opt total", "opt reads", "opt locals",
               "opt markers", "opt+disable", "prefilter"});
  double WorstOpt = 0;
  std::uint32_t Under10 = 0, Count = 0;
  bool PrefilterOk = true;
  std::string Category;
  for (const auto &W : workloads::allWorkloads()) {
    if (W.Category != Category) {
      Category = W.Category;
      T.addSeparator();
    }
    Slowdown B = measure(W, jit::AnnotationLevel::Base);
    Slowdown O = measure(W, jit::AnnotationLevel::Optimized);
    // The runtime's convergence mechanism: annotations of loops with
    // enough collected threads degrade to nops (Section 5.2).
    Slowdown D = measure(W, jit::AnnotationLevel::Optimized, 3000);
    std::uint64_t Unfiltered = profiledCycles(W, false);
    std::uint64_t Filtered = profiledCycles(W, true);
    PrefilterOk &= Filtered <= Unfiltered;
    T.addRow({W.Name, asPercent(B.Total, 1), asPercent(B.ReadCounters, 1),
              asPercent(B.Locals, 1), asPercent(B.Markers, 1),
              asPercent(O.Total, 1), asPercent(O.ReadCounters, 1),
              asPercent(O.Locals, 1), asPercent(O.Markers, 1),
              asPercent(D.Total, 1),
              Filtered < Unfiltered
                  ? formatString("-%llu cyc",
                                 (unsigned long long)(Unfiltered - Filtered))
                  : std::string(Filtered == Unfiltered ? "=" : "WORSE")});
    WorstOpt = std::max(WorstOpt, O.Total);
    Under10 += O.Total < 0.10;
    ++Count;
  }
  T.print();
  std::printf("\nOptimized annotations: %u/%u benchmarks under 10%% "
              "slowdown; worst %.1f%%.\n",
              Under10, Count, WorstOpt * 100);
  std::printf("Static pre-filter: profiling %s costlier on any workload.\n",
              PrefilterOk ? "never" : "IS");
  std::printf("Paper reference: after optimization most benchmarks are\n"
              "within 10%%, two approach 25%%; base annotations are\n"
              "noticeably costlier (their Figure 6 first bars).\n");
  return WorstOpt < 0.60 && PrefilterOk ? 0 : 1;
}
