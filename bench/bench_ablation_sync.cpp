//===- bench/bench_ablation_sync.cpp - Sync locks vs pure restart ----------==//
//
// Section 3.2 lists "inserting synchronization locks" among the compiler
// optimizations applied to selected STLs. This ablation runs speculative
// execution with and without synchronized communication of globalized
// loop locals: synchronized consumers spin for the producer's store,
// restart-only consumers speculate through the value and pay violations.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Ablation - synchronized carried locals vs pure restart",
              "Section 3.2 (synchronization locks)");
  TextTable T;
  T.setHeader({"Benchmark", "mode", "violations", "restarts", "sync stalls",
               "actual speedup", "checksum ok"});
  for (const char *Name :
       {"Huffman", "compress", "MipsSimulator", "fft", "NumHeapSort"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    for (bool Sync : {false, true}) {
      pipeline::PipelineConfig Cfg;
      Cfg.Hw.SyncCarriedLocals = Sync;
      pipeline::Jrpm J(W->Build(), Cfg);
      auto R = J.runAll();
      std::uint64_t Violations = 0, Restarts = 0, SyncStalls = 0;
      for (const auto &[LoopId, S] : R.TlsLoopStats) {
        Violations += S.Violations;
        Restarts += S.Restarts;
        SyncStalls += S.SyncStalls;
      }
      T.addRow({Name, Sync ? "sync" : "restart",
                formatString("%llu",
                             static_cast<unsigned long long>(Violations)),
                formatString("%llu",
                             static_cast<unsigned long long>(Restarts)),
                formatString("%llu",
                             static_cast<unsigned long long>(SyncStalls)),
                fmt(R.actualSpeedup()),
                R.TlsRun.ReturnValue == R.PlainRun.ReturnValue ? "yes"
                                                               : "NO"});
      if (R.TlsRun.ReturnValue != R.PlainRun.ReturnValue)
        return 1;
    }
    T.addSeparator();
  }
  T.print();
  std::printf("\nSynchronization trades wasted re-execution for waiting:\n"
              "violations on globalized locals disappear, and loops whose\n"
              "carried update sits late in the body stop throwing whole\n"
              "threads away. Loops with early updates are largely\n"
              "indifferent — the paper applies locks selectively for this\n"
              "reason.\n");
  return 0;
}
