//===- bench/bench_software_profiler.cpp - Section 5's 100x claim ----------==//
//
// "Simulations indicate program execution slows over 100x when profiling
// using a software-only implementation of the trace analyses" — this bench
// reruns the TEST analyses with every event passing through a software
// callback (the per-event cost models the call, the hash lookups, and the
// comparisons an instrumentation routine performs) and contrasts the
// resulting slowdown with the hardware tracer's.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "tracer/TraceEngine.h"

using namespace jrpm;
using namespace jrpm::benchutil;

namespace {

/// The software-only profiler: same analyses, but every event costs a
/// callback.
class SoftwareProfilerSink : public interp::TraceSink {
public:
  SoftwareProfilerSink(tracer::TraceEngine &Inner, std::uint32_t Cost)
      : Inner(Inner), Cost(Cost) {}

  std::uint32_t onHeapLoad(std::uint32_t A, std::uint64_t C,
                           std::int32_t P) override {
    return Inner.onHeapLoad(A, C, P) + Cost;
  }
  std::uint32_t onHeapStore(std::uint32_t A, std::uint64_t C,
                            std::int32_t P) override {
    return Inner.onHeapStore(A, C, P) + Cost;
  }
  std::uint32_t onLocalLoad(std::uint64_t Act, std::uint16_t R,
                            std::uint64_t C, std::int32_t P) override {
    return Inner.onLocalLoad(Act, R, C, P) + Cost;
  }
  std::uint32_t onLocalStore(std::uint64_t Act, std::uint16_t R,
                             std::uint64_t C, std::int32_t P) override {
    return Inner.onLocalStore(Act, R, C, P) + Cost;
  }
  std::uint32_t onLoopStart(std::uint32_t L, std::uint64_t Act,
                            std::uint64_t C) override {
    return Inner.onLoopStart(L, Act, C) + Cost;
  }
  std::uint32_t onLoopIter(std::uint32_t L, std::uint64_t C) override {
    return Inner.onLoopIter(L, C) + Cost;
  }
  std::uint32_t onLoopEnd(std::uint32_t L, std::uint64_t C) override {
    return Inner.onLoopEnd(L, C) + Cost;
  }
  void onReturn(std::uint64_t Act) override { Inner.onReturn(Act); }

private:
  tracer::TraceEngine &Inner;
  std::uint32_t Cost;
};

} // namespace

int main() {
  printBanner("Software-only profiling slowdown vs TEST hardware",
              "Section 5's >100x claim");
  TextTable T;
  T.setHeader({"Benchmark", "hardware TEST", "software-only", "ratio"});
  double WorstSw = 0;
  for (const char *Name :
       {"Huffman", "BitOps", "db", "LuFactor", "decJpeg", "mp3"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    pipeline::PipelineConfig Cfg;
    pipeline::Jrpm J(W->Build(), Cfg);
    double Plain = static_cast<double>(J.runPlain().Cycles);
    double Hardware = static_cast<double>(J.profileAndSelect().Run.Cycles);

    // Software-only: identical instrumentation sites, per-event callback.
    ir::Module M = W->Build();
    analysis::ModuleAnalysis MA(M);
    // The software profiler cannot skip accesses: base-level annotations.
    jit::AnnotatedModule AM =
        jit::annotateModule(M, MA, jit::AnnotationLevel::Base);
    tracer::TraceEngine Engine(Cfg.Hw, AM.LoopInfos);
    SoftwareProfilerSink Sw(Engine, Cfg.Hw.SoftwareProfilerCallbackCycles);
    interp::Machine Machine(AM.Module, Cfg.Hw);
    Machine.setTraceSink(&Sw);
    double Software = static_cast<double>(Machine.run().Cycles);

    double HwSlow = Hardware / Plain;
    double SwSlow = Software / Plain;
    WorstSw = std::max(WorstSw, SwSlow);
    T.addRow({Name, fmt(HwSlow) + "x", fmt(SwSlow, 1) + "x",
              fmt(SwSlow / HwSlow, 1) + "x"});
  }
  T.print();
  std::printf("\nPaper reference: software-only profiling slows execution\n"
              "over 100x, 'unacceptable in a real dynamic compilation\n"
              "system'; the TEST hardware keeps it at 3-25%%.\n");
  return WorstSw > 20.0 ? 0 : 1;
}
