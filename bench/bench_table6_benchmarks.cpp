//===- bench/bench_table6_benchmarks.cpp - Table 6 -------------------------==//
//
// Regenerates Table 6: for every benchmark, the program characteristics
// (analyzability, data-set sensitivity, loop count, dynamic loop depth)
// and the TEST analysis results (selected loops with > 0.5% coverage,
// average selected loop height, threads per STL entry, thread size).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Table 6 - Benchmarks evaluated with STLs selected by TEST",
              "Table 6");
  TextTable T;
  T.setHeader({"Benchmark", "Description", "Data set", "(a)Anlz", "(b)Sens",
               "(c)Loops", "(d)Depth", "(e)Sel>0.5%", "(f)AvgHt",
               "(g)Thr/entry", "(h)ThrSize"});

  std::string Category;
  for (const auto &W : workloads::allWorkloads()) {
    if (W.Category != Category) {
      Category = W.Category;
      T.addSeparator();
      T.addRow({"[" + Category + "]"});
    }
    pipeline::PipelineConfig Cfg;
    pipeline::Jrpm J(W.Build(), Cfg);
    auto P = J.profileAndSelect();
    const analysis::ModuleAnalysis &MA = J.moduleAnalysis();

    std::uint32_t Selected = 0;
    double HeightSum = 0;
    double ThreadsPerEntry = 0, ThreadSize = 0, CycleWeight = 0;
    for (const auto &Rep : P.Selection.Loops) {
      if (!Rep.Selected || Rep.Coverage <= 0.005)
        continue;
      ++Selected;
      const analysis::CandidateStl &C = MA.candidate(Rep.LoopId);
      HeightSum += MA.func(C.FuncIndex).LI.heightOf(C.LoopIdx);
      double Wt = static_cast<double>(Rep.Stats.Cycles);
      ThreadsPerEntry += Wt * Rep.Stats.itersPerEntry();
      ThreadSize += Wt * Rep.Stats.avgThreadSize();
      CycleWeight += Wt;
    }
    double AvgHeight = Selected ? HeightSum / Selected : 0;
    if (CycleWeight > 0) {
      ThreadsPerEntry /= CycleWeight;
      ThreadSize /= CycleWeight;
    }

    T.addRow({W.Name, W.Description, W.DataSet, W.Analyzable ? "Y" : "N",
              W.DataSetSensitive ? "Y" : "N",
              formatString("%u", MA.loopCount()),
              formatString("%u", P.PeakDynamicNest),
              formatString("%u", Selected), fmt(AvgHeight, 1),
              fmt(ThreadsPerEntry, 0), fmt(ThreadSize, 0)});
  }
  T.print();
  std::printf(
      "\nColumns mirror the paper's Table 6: (a) analyzable by a\n"
      "traditional parallelizing compiler, (b) selection sensitive to the\n"
      "data-set size, (c) natural loops found, (d) max dynamic loop-nest\n"
      "depth, (e) selected STLs with > 0.5%% coverage, (f) average height\n"
      "of selected loops above the innermost level, (g) threads per STL\n"
      "entry, (h) average thread size in cycles (both cycle-weighted over\n"
      "the selected STLs).\n");
  return 0;
}
