//===- bench/bench_serve_warm.cpp - Artifact-store warm-path latency -------==//
//
// The serve daemon's cache contract: once a request's artifact has been
// computed and persisted, every repeat of that request is an O(1) store
// read — no re-simulation, no re-tracing — and the returned bytes are
// identical to the cold computation. This bench drives the daemon's
// request handler directly (no socket; the framing layer is benchmarked
// by its own tests) with the golden sweep request, once cold and many
// times warm.
//
// Gates:
//   - every warm response is a cache hit and byte-identical to the cold
//     payload,
//   - the warm path is at least 10x faster than the cold computation; if
//     the cold pass resolves under 2 ms the ratio is below measurement
//     noise and the result is reported as unresolved instead of failing
//     spuriously.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include <ftw.h>
#include <unistd.h>

using namespace jrpm;
using namespace jrpm::benchutil;

namespace {

int unlinkCb(const char *Path, const struct stat *, int, struct FTW *) {
  return ::remove(Path);
}

/// rm -rf for the scratch store.
void removeTree(const std::string &Path) {
  ::nftw(Path.c_str(), unlinkCb, 16, FTW_DEPTH | FTW_PHYS);
}

/// The golden sweep request (the same one scripts/ci_serve_golden.sh
/// submits over the socket).
std::string goldenRequest() {
  Json Req = Json::object();
  Req["kind"] = "sweep";
  Json W = Json::array();
  W.push("BitOps");
  W.push("fft");
  Req["workloads"] = W;
  Json L = Json::array();
  L.push("base");
  L.push("optimized");
  Req["levels"] = L;
  Json C = Json::array();
  C.push("banks=2,history=48");
  Req["configs"] = C;
  Req["seed"] = std::uint64_t(7);
  return Req.dump();
}

} // namespace

int main() {
  std::printf("\n================================================================\n"
              "Serve warm path - content-addressed artifact store vs recompute\n"
              "(cold request computes and persists; warm repeats must be O(1)\n"
              " byte-identical store reads)\n"
              "================================================================\n\n");

  char Template[] = "/tmp/jrpm-bench-serve.XXXXXX";
  const char *StoreDir = ::mkdtemp(Template);
  if (!StoreDir) {
    std::printf("FAIL: cannot create scratch store directory\n");
    return 1;
  }

  serve::ServerConfig Cfg;
  Cfg.StoreDir = StoreDir;
  serve::Server S(Cfg);

  const std::string Request = goldenRequest();

  // Cold: compute, persist, serve.
  Stopwatch ColdSw;
  serve::Response Cold = S.handle(Request);
  double ColdMs = ColdSw.ms();
  if (!Cold.Ok || Cold.Cache != "miss") {
    std::printf("FAIL: cold request was not a computed miss (ok=%d cache=%s"
                " message=%s)\n",
                Cold.Ok ? 1 : 0, Cold.Cache.c_str(), Cold.Message.c_str());
    removeTree(StoreDir);
    return 1;
  }

  // Warm: every repeat must hit the store and return the same bytes.
  constexpr int WarmIters = 50;
  Stopwatch WarmSw;
  for (int I = 0; I < WarmIters; ++I) {
    serve::Response Warm = S.handle(Request);
    if (!Warm.Ok || Warm.Cache != "hit") {
      std::printf("FAIL: warm request %d was not a cache hit (ok=%d "
                  "cache=%s)\n",
                  I, Warm.Ok ? 1 : 0, Warm.Cache.c_str());
      removeTree(StoreDir);
      return 1;
    }
    if (Warm.Payload != Cold.Payload || Warm.Digest != Cold.Digest) {
      std::printf("FAIL: warm request %d diverged from the cold payload "
                  "(%zu vs %zu bytes, digest %s vs %s)\n",
                  I, Warm.Payload.size(), Cold.Payload.size(),
                  Warm.Digest.c_str(), Cold.Digest.c_str());
      removeTree(StoreDir);
      return 1;
    }
  }
  double WarmAvgMs = WarmSw.ms() / WarmIters;
  removeTree(StoreDir);

  double Speedup = WarmAvgMs > 0 ? ColdMs / WarmAvgMs : 0;

  TextTable T;
  T.setHeader({"Path", "ms/request", "payload"});
  T.addRow({"cold (compute + persist)", fmt(ColdMs, 3),
            std::to_string(Cold.Payload.size()) + " B"});
  T.addRow({"warm (store read), avg of " + std::to_string(WarmIters),
            fmt(WarmAvgMs, 3), "byte-identical"});
  T.print();
  std::printf("\nwarm-path speedup: %.1fx (digest %s)\n", Speedup,
              Cold.Digest.c_str());

  if (ColdMs < 2.0) {
    std::printf("PASS (unresolved): cold pass finished in %.3f ms; the "
                "10x ratio gate is below measurement noise\n",
                ColdMs);
    return 0;
  }
  if (Speedup >= 10.0) {
    std::printf("PASS: warm requests are %.1fx faster than cold (>= 10x "
                "gate) and byte-identical\n",
                Speedup);
    return 0;
  }
  std::printf("FAIL: warm speedup %.1fx (< 10x gate)\n", Speedup);
  return 1;
}
