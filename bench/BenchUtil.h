//===- bench/BenchUtil.h - Shared helpers for the bench harnesses ----------==//

#ifndef JRPM_BENCH_BENCHUTIL_H
#define JRPM_BENCH_BENCHUTIL_H

#include "jrpm/Pipeline.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <string>

namespace jrpm {
namespace benchutil {

inline void printBanner(const char *Title, const char *PaperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", Title);
  std::printf("(reproduces %s of Chen & Olukotun, \"TEST: A Tracer for\n"
              " Extracting Speculative Threads\", CGO 2003)\n",
              PaperRef);
  std::printf("================================================================\n\n");
}

/// Runs the full pipeline for one workload with the given configuration.
inline pipeline::PipelineResult
runPipeline(const workloads::Workload &W,
            const pipeline::PipelineConfig &Cfg = {}) {
  pipeline::Jrpm J(W.Build(), Cfg);
  return J.runAll();
}

inline std::string fmt(double V, int Decimals = 2) {
  return formatString("%.*f", Decimals, V);
}

} // namespace benchutil
} // namespace jrpm

#endif // JRPM_BENCH_BENCHUTIL_H
