//===- bench/BenchUtil.h - Shared helpers for the bench harnesses ----------==//

#ifndef JRPM_BENCH_BENCHUTIL_H
#define JRPM_BENCH_BENCHUTIL_H

#include "jrpm/Pipeline.h"
#include "support/Format.h"
#include "support/Table.h"
#include "sweep/ThreadPool.h"
#include "workloads/Workload.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <unistd.h>
#include <vector>

namespace jrpm {
namespace benchutil {

inline void printBanner(const char *Title, const char *PaperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", Title);
  std::printf("(reproduces %s of Chen & Olukotun, \"TEST: A Tracer for\n"
              " Extracting Speculative Threads\", CGO 2003)\n",
              PaperRef);
  std::printf("================================================================\n\n");
}

/// Runs the full pipeline for one workload with the given configuration.
inline pipeline::PipelineResult
runPipeline(const workloads::Workload &W,
            const pipeline::PipelineConfig &Cfg = {}) {
  pipeline::Jrpm J(W.Build(), Cfg);
  return J.runAll();
}

inline std::string fmt(double V, int Decimals = 2) {
  return formatString("%.*f", Decimals, V);
}

/// Wall-clock stopwatch for the record-once/replay-many comparisons.
class Stopwatch {
public:
  double ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - T0)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();
};

/// Scratch path for a bench-recorded trace. Includes the pid so concurrent
/// bench processes (and pooled jobs inside one process, via distinct tags)
/// never collide on a fixed /tmp name.
inline std::string benchTracePath(const std::string &Tag) {
  return "/tmp/jrpm-bench-" + std::to_string(getpid()) + "-" + Tag +
         ".jtrace";
}

/// Wall-clock of a job list executed on the work-stealing pool.
struct PoolRun {
  double Ms = 0;
  unsigned Threads = 1;
};

/// Re-runs \p Jobs on the sweep engine's work-stealing pool. Jobs must be
/// idempotent and write their results into preassigned slots, so a pooled
/// re-execution reproduces the serial pass byte-for-byte regardless of
/// scheduling order.
inline PoolRun runOnPool(const std::vector<std::function<void()>> &Jobs) {
  PoolRun P;
  sweep::ThreadPool Pool;
  P.Threads = Pool.threadCount();
  Stopwatch S;
  for (const std::function<void()> &J : Jobs)
    Pool.submit(J);
  Pool.wait();
  P.Ms = S.ms();
  return P;
}

/// Prints the measured serial-vs-pooled wall-clock reduction for the same
/// job list (the acceptance metric for the sweep engine: >= 3x on a 4-core
/// runner; on fewer cores the reduction degrades proportionally).
inline void printPoolReduction(const char *What, std::size_t Jobs,
                               double SerialMs, const PoolRun &P,
                               bool SlotsIdentical) {
  std::printf("\nwork-stealing pool, %zu %s jobs:\n"
              "  serial execution                             %8.1f ms\n"
              "  pooled execution (%u worker threads)         %8.1f ms\n"
              "  wall-clock reduction: %.2fx; pooled results %s\n",
              Jobs, What, SerialMs, P.Threads, P.Ms, SerialMs / P.Ms,
              SlotsIdentical ? "identical to serial"
                             : "DIFFER FROM SERIAL");
}

/// Prints the measured cost of a configuration sweep under the old
/// methodology (one live pipeline execution per configuration) against the
/// trace-driven one (one recorded capture, N replayed analyses), both
/// measured by this very bench run.
inline void printSweepRatio(const char *Baseline, int Configs, double LiveMs,
                            double RecordMs, double AnalyzeMs) {
  double NewMs = RecordMs + AnalyzeMs;
  std::printf("\nrecord-once/replay-many, %d-configuration sweep:\n"
              "  %-44s %8.1f ms\n"
              "  1 record + %d trace-driven analyses          %8.1f ms "
              "(record %.1f, analyze %.1f)\n"
              "  wall-clock reduction: %.2fx\n",
              Configs, Baseline, LiveMs, Configs, NewMs, RecordMs, AnalyzeMs,
              LiveMs / NewMs);
}

} // namespace benchutil
} // namespace jrpm

#endif // JRPM_BENCH_BENCHUTIL_H
