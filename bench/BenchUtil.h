//===- bench/BenchUtil.h - Shared helpers for the bench harnesses ----------==//

#ifndef JRPM_BENCH_BENCHUTIL_H
#define JRPM_BENCH_BENCHUTIL_H

#include "jrpm/Pipeline.h"
#include "support/Format.h"
#include "support/Table.h"
#include "workloads/Workload.h"

#include <chrono>
#include <cstdio>
#include <string>

namespace jrpm {
namespace benchutil {

inline void printBanner(const char *Title, const char *PaperRef) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", Title);
  std::printf("(reproduces %s of Chen & Olukotun, \"TEST: A Tracer for\n"
              " Extracting Speculative Threads\", CGO 2003)\n",
              PaperRef);
  std::printf("================================================================\n\n");
}

/// Runs the full pipeline for one workload with the given configuration.
inline pipeline::PipelineResult
runPipeline(const workloads::Workload &W,
            const pipeline::PipelineConfig &Cfg = {}) {
  pipeline::Jrpm J(W.Build(), Cfg);
  return J.runAll();
}

inline std::string fmt(double V, int Decimals = 2) {
  return formatString("%.*f", Decimals, V);
}

/// Wall-clock stopwatch for the record-once/replay-many comparisons.
class Stopwatch {
public:
  double ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - T0)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();
};

/// Scratch path for a bench-recorded trace.
inline std::string benchTracePath(const std::string &Tag) {
  return "/tmp/jrpm-bench-" + Tag + ".jtrace";
}

/// Prints the measured cost of a configuration sweep under the old
/// methodology (one live pipeline execution per configuration) against the
/// trace-driven one (one recorded capture, N replayed analyses), both
/// measured by this very bench run.
inline void printSweepRatio(const char *Baseline, int Configs, double LiveMs,
                            double RecordMs, double AnalyzeMs) {
  double NewMs = RecordMs + AnalyzeMs;
  std::printf("\nrecord-once/replay-many, %d-configuration sweep:\n"
              "  %-44s %8.1f ms\n"
              "  1 record + %d trace-driven analyses          %8.1f ms "
              "(record %.1f, analyze %.1f)\n"
              "  wall-clock reduction: %.2fx\n",
              Configs, Baseline, LiveMs, Configs, NewMs, RecordMs, AnalyzeMs,
              LiveMs / NewMs);
}

} // namespace benchutil
} // namespace jrpm

#endif // JRPM_BENCH_BENCHUTIL_H
