//===- bench/bench_ablation_history.cpp - Store-history depth ablation -----==//
//
// Section 5.3 partitions the idle write buffers so that 192 cache lines of
// heap write history are available, and Section 6.2 notes the limited
// history bounds how distant a dependency the tracer can see. This bench
// sweeps the FIFO depth and reports the arcs found and the resulting
// estimates.
//
// Trace-driven: the FIFO depth only affects the tracer's dependence
// detection, never the interpreted execution, so one recorded run feeds
// all four depths as replayed analyses (trace::CachedTrace). The original
// methodology — a full pipeline run (plain + annotated + speculative
// execution) per depth, which also produced an actual-speedup column — is
// run and timed as the baseline; the replayed table reports the analysis
// columns only.
//
// Pooled: each workload's unit (live baseline + record + replays) is one
// job, run serially and then on the work-stealing pool into the same
// preassigned row slots; the passes must agree exactly.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "trace/Replay.h"

#include <mutex>

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Ablation - heap store-timestamp history depth",
              "Section 5.3 (192-line FIFO) / Section 6.2");
  const std::uint32_t Depths[] = {8, 48, 192, 768};
  const char *Names[] = {"Huffman", "compress", "MipsSimulator"};

  std::mutex PhaseM;
  double LiveMs = 0, RecordMs = 0, AnalyzeMs = 0;
  std::vector<std::vector<std::vector<std::string>>> Rows(
      std::size(Names),
      std::vector<std::vector<std::string>>(std::size(Depths)));

  std::vector<std::function<void()>> Jobs;
  for (std::size_t Wi = 0; Wi < std::size(Names); ++Wi) {
    Jobs.push_back([&, Wi]() {
      const char *Name = Names[Wi];
      const workloads::Workload *W = workloads::findWorkload(Name);

      // Old methodology, timed as the baseline: the full five-step pipeline
      // per configuration (this is what produced the actual-speedup column).
      for (std::uint32_t Depth : Depths) {
        pipeline::PipelineConfig Cfg;
        Cfg.Hw.HeapTimestampFifoLines = Depth;
        Stopwatch S;
        pipeline::Jrpm J(W->Build(), Cfg);
        J.runAll();
        std::lock_guard<std::mutex> L(PhaseM);
        LiveMs += S.ms();
      }

      // Record once, then replay the analysis once per FIFO depth.
      std::string Path = benchTracePath(std::string("history-") + Name);
      {
        Stopwatch S;
        pipeline::PipelineConfig Cfg;
        Cfg.WorkloadName = Name;
        Cfg.RecordTracePath = Path;
        pipeline::Jrpm J(W->Build(), Cfg);
        J.profileAndSelect();
        std::lock_guard<std::mutex> L(PhaseM);
        RecordMs += S.ms();
      }
      Stopwatch Analyze;
      trace::CachedTrace Trace(Path);
      for (std::size_t Di = 0; Di < std::size(Depths); ++Di) {
        std::uint32_t Depth = Depths[Di];
        trace::ReplayConfig Cfg;
        Cfg.Hw = Trace.header().Hw;
        Cfg.ExtendedPcBinning = Trace.header().ExtendedPcBinning;
        Cfg.Hw.HeapTimestampFifoLines = Depth;
        trace::ReplayOutcome R = trace::selectFromTrace(Trace, Cfg);
        std::uint64_t ArcsPrev = 0, ArcsEarlier = 0;
        for (const auto &Rep : R.Selection.Loops) {
          ArcsPrev += Rep.Stats.CritArcsPrev;
          ArcsEarlier += Rep.Stats.CritArcsEarlier;
        }
        Rows[Wi][Di] = {Name, formatString("%u", Depth),
                        formatString("%llu",
                                     static_cast<unsigned long long>(
                                         ArcsPrev)),
                        formatString("%llu",
                                     static_cast<unsigned long long>(
                                         ArcsEarlier)),
                        fmt(R.Selection.PredictedSpeedup)};
      }
      {
        std::lock_guard<std::mutex> L(PhaseM);
        AnalyzeMs += Analyze.ms();
      }
      std::remove(Path.c_str());
    });
  }

  Stopwatch Serial;
  for (const std::function<void()> &J : Jobs)
    J();
  double SerialMs = Serial.ms();
  double LiveSnap = LiveMs, RecordSnap = RecordMs, AnalyzeSnap = AnalyzeMs;
  std::vector<std::vector<std::vector<std::string>>> SerialRows = Rows;

  PoolRun P = runOnPool(Jobs);

  TextTable T;
  T.setHeader({"Benchmark", "history lines", "arcs(t-1)", "arcs(<t-1)",
               "pred speedup"});
  for (const auto &WorkloadRows : Rows) {
    for (const auto &Row : WorkloadRows)
      T.addRow(Row);
    T.addSeparator();
  }
  T.print();
  std::printf("\nA shallow history misses dependencies (fewer arcs, rosier\n"
              "estimates); beyond the paper's 192 lines the added\n"
              "visibility changes little, matching Section 6.2's\n"
              "observation that available parallelism is determined by\n"
              "recent, not distant, threads.\n");
  printSweepRatio("4 full pipeline runs (one per config)", 4, LiveSnap,
                  RecordSnap, AnalyzeSnap);
  printPoolReduction("per-workload record+replay", Jobs.size(), SerialMs, P,
                     Rows == SerialRows);
  return Rows == SerialRows ? 0 : 1;
}
