//===- bench/bench_ablation_history.cpp - Store-history depth ablation -----==//
//
// Section 5.3 partitions the idle write buffers so that 192 cache lines of
// heap write history are available, and Section 6.2 notes the limited
// history bounds how distant a dependency the tracer can see. This bench
// sweeps the FIFO depth and reports the arcs found and the resulting
// estimates.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Ablation - heap store-timestamp history depth",
              "Section 5.3 (192-line FIFO) / Section 6.2");
  TextTable T;
  T.setHeader({"Benchmark", "history lines", "arcs(t-1)", "arcs(<t-1)",
               "pred speedup", "actual speedup"});
  for (const char *Name : {"Huffman", "compress", "MipsSimulator"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    for (std::uint32_t Depth : {8u, 48u, 192u, 768u}) {
      pipeline::PipelineConfig Cfg;
      Cfg.Hw.HeapTimestampFifoLines = Depth;
      pipeline::Jrpm J(W->Build(), Cfg);
      auto R = J.runAll();
      std::uint64_t ArcsPrev = 0, ArcsEarlier = 0;
      for (const auto &Rep : R.Selection.Loops) {
        ArcsPrev += Rep.Stats.CritArcsPrev;
        ArcsEarlier += Rep.Stats.CritArcsEarlier;
      }
      T.addRow({Name, formatString("%u", Depth),
                formatString("%llu",
                             static_cast<unsigned long long>(ArcsPrev)),
                formatString("%llu",
                             static_cast<unsigned long long>(ArcsEarlier)),
                fmt(R.Selection.PredictedSpeedup), fmt(R.actualSpeedup())});
    }
    T.addSeparator();
  }
  T.print();
  std::printf("\nA shallow history misses dependencies (fewer arcs, rosier\n"
              "estimates that actual execution then misses); beyond the\n"
              "paper's 192 lines the added visibility changes little,\n"
              "matching Section 6.2's observation that available\n"
              "parallelism is determined by recent, not distant, threads.\n");
  return 0;
}
