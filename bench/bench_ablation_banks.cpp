//===- bench/bench_ablation_banks.cpp - Comparator bank count ablation -----==//
//
// Section 5.2 sizes the comparator array at eight banks and argues deep
// nests can still be analyzed by dynamically disabling converged loops.
// This ablation sweeps the bank count and reports how much of the analysis
// survives: traced entries, selected STLs, and the predicted speedup.
//
// Trace-driven: each workload is interpreted once into a .jtrace capture;
// every bank configuration is then a replayed analysis over the in-memory
// event stream (trace::CachedTrace), not a fresh interpretation. The old
// methodology (one annotated interpretation per configuration) is also run,
// timed, and reported for comparison.
//
// Pooled: each workload's whole unit (live baseline sweep + record +
// replayed analyses) is one job. The job list runs serially first, then on
// the sweep engine's work-stealing pool; both passes fill the same
// preassigned row slots and must agree exactly.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "trace/Replay.h"

#include <mutex>

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Ablation - number of comparator banks",
              "Section 5.2 design choice (8 banks)");
  const std::uint32_t BankCounts[] = {1, 2, 4, 8};
  const char *Names[] = {"Assignment", "jess", "decJpeg", "mp3"};

  std::mutex PhaseM;
  double LiveMs = 0, RecordMs = 0, AnalyzeMs = 0;
  // Rows[workload][config], filled by the jobs; the table is rendered after
  // the passes so pooled scheduling order cannot reorder the output.
  std::vector<std::vector<std::vector<std::string>>> Rows(
      std::size(Names), std::vector<std::vector<std::string>>(
                            std::size(BankCounts)));

  std::vector<std::function<void()>> Jobs;
  for (std::size_t Wi = 0; Wi < std::size(Names); ++Wi) {
    Jobs.push_back([&, Wi]() {
      const char *Name = Names[Wi];
      const workloads::Workload *W = workloads::findWorkload(Name);

      // Old methodology, timed as the baseline: re-interpret per config.
      for (std::uint32_t Banks : BankCounts) {
        pipeline::PipelineConfig Cfg;
        Cfg.Hw.ComparatorBanks = Banks;
        Cfg.DisableLoopAfterThreads = Banks < 8 ? 2000 : 0;
        Stopwatch S;
        pipeline::Jrpm J(W->Build(), Cfg);
        J.profileAndSelect();
        std::lock_guard<std::mutex> L(PhaseM);
        LiveMs += S.ms();
      }

      // Record once under the reference configuration...
      std::string Path = benchTracePath(std::string("banks-") + Name);
      {
        Stopwatch S;
        pipeline::PipelineConfig Cfg;
        Cfg.WorkloadName = Name;
        Cfg.RecordTracePath = Path;
        pipeline::Jrpm J(W->Build(), Cfg);
        J.profileAndSelect();
        std::lock_guard<std::mutex> L(PhaseM);
        RecordMs += S.ms();
      }

      // ...then feed every bank count from the same decoded event stream.
      Stopwatch Analyze;
      trace::CachedTrace Trace(Path);
      for (std::size_t Ci = 0; Ci < std::size(BankCounts); ++Ci) {
        std::uint32_t Banks = BankCounts[Ci];
        trace::ReplayConfig Cfg;
        Cfg.Hw = Trace.header().Hw;
        Cfg.ExtendedPcBinning = Trace.header().ExtendedPcBinning;
        Cfg.Hw.ComparatorBanks = Banks;
        // Deep analysis relies on converged loops being disabled.
        Cfg.DisableLoopAfterThreads = Banks < 8 ? 2000 : 0;
        trace::ReplayOutcome P = trace::selectFromTrace(Trace, Cfg);
        std::uint64_t Untraced = 0;
        for (const auto &Rep : P.Selection.Loops)
          Untraced += Rep.Stats.UntracedEntries;
        Rows[Wi][Ci] = {Name, formatString("%u", Banks),
                        formatString("%u", P.PeakBanksInUse),
                        formatString("%llu", static_cast<unsigned long long>(
                                                 Untraced)),
                        formatString("%zu", P.Selection.SelectedLoops.size()),
                        fmt(P.Selection.PredictedSpeedup)};
      }
      {
        std::lock_guard<std::mutex> L(PhaseM);
        AnalyzeMs += Analyze.ms();
      }
      std::remove(Path.c_str());
    });
  }

  Stopwatch Serial;
  for (const std::function<void()> &J : Jobs)
    J();
  double SerialMs = Serial.ms();
  double LiveSnap = LiveMs, RecordSnap = RecordMs, AnalyzeSnap = AnalyzeMs;
  std::vector<std::vector<std::vector<std::string>>> SerialRows = Rows;

  PoolRun P = runOnPool(Jobs);

  TextTable T;
  T.setHeader({"Benchmark", "banks", "peak", "untraced entries", "selected",
               "pred speedup"});
  for (const auto &WorkloadRows : Rows) {
    for (const auto &Row : WorkloadRows)
      T.addRow(Row);
    T.addSeparator();
  }
  T.print();
  std::printf("\nWith eight banks virtually nothing goes untraced (the\n"
              "paper: 'eight comparator banks are sufficient to analyze\n"
              "most of the benchmark programs'); starving the array loses\n"
              "inner decompositions unless dynamic disabling frees banks.\n");
  printSweepRatio("4 annotated interpretations (one per config)", 4,
                  LiveSnap, RecordSnap, AnalyzeSnap);
  printPoolReduction("per-workload record+replay", Jobs.size(), SerialMs, P,
                     Rows == SerialRows);
  return Rows == SerialRows ? 0 : 1;
}
