//===- bench/bench_ablation_banks.cpp - Comparator bank count ablation -----==//
//
// Section 5.2 sizes the comparator array at eight banks and argues deep
// nests can still be analyzed by dynamically disabling converged loops.
// This ablation sweeps the bank count and reports how much of the analysis
// survives: traced entries, selected STLs, and the predicted speedup.
//
// Trace-driven: each workload is interpreted once into a .jtrace capture;
// every bank configuration is then a replayed analysis over the in-memory
// event stream (trace::CachedTrace), not a fresh interpretation. The old
// methodology (one annotated interpretation per configuration) is also run,
// timed, and reported for comparison.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "trace/Replay.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Ablation - number of comparator banks",
              "Section 5.2 design choice (8 banks)");
  const std::uint32_t BankCounts[] = {1, 2, 4, 8};
  TextTable T;
  T.setHeader({"Benchmark", "banks", "peak", "untraced entries",
               "selected", "pred speedup"});
  double LiveMs = 0, RecordMs = 0, AnalyzeMs = 0;
  for (const char *Name : {"Assignment", "jess", "decJpeg", "mp3"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);

    // Old methodology, timed as the baseline: re-interpret per config.
    for (std::uint32_t Banks : BankCounts) {
      pipeline::PipelineConfig Cfg;
      Cfg.Hw.ComparatorBanks = Banks;
      Cfg.DisableLoopAfterThreads = Banks < 8 ? 2000 : 0;
      Stopwatch S;
      pipeline::Jrpm J(W->Build(), Cfg);
      J.profileAndSelect();
      LiveMs += S.ms();
    }

    // Record once under the reference configuration...
    std::string Path = benchTracePath(std::string("banks-") + Name);
    {
      Stopwatch S;
      pipeline::PipelineConfig Cfg;
      Cfg.WorkloadName = Name;
      Cfg.RecordTracePath = Path;
      pipeline::Jrpm J(W->Build(), Cfg);
      J.profileAndSelect();
      RecordMs += S.ms();
    }

    // ...then feed every bank count from the same decoded event stream.
    Stopwatch Analyze;
    trace::CachedTrace Trace(Path);
    for (std::uint32_t Banks : BankCounts) {
      trace::ReplayConfig Cfg;
      Cfg.Hw = Trace.header().Hw;
      Cfg.ExtendedPcBinning = Trace.header().ExtendedPcBinning;
      Cfg.Hw.ComparatorBanks = Banks;
      // Deep analysis relies on converged loops being disabled.
      Cfg.DisableLoopAfterThreads = Banks < 8 ? 2000 : 0;
      trace::ReplayOutcome P = trace::selectFromTrace(Trace, Cfg);
      std::uint64_t Untraced = 0;
      for (const auto &Rep : P.Selection.Loops)
        Untraced += Rep.Stats.UntracedEntries;
      T.addRow({Name, formatString("%u", Banks),
                formatString("%u", P.PeakBanksInUse),
                formatString("%llu", static_cast<unsigned long long>(
                                         Untraced)),
                formatString("%zu", P.Selection.SelectedLoops.size()),
                fmt(P.Selection.PredictedSpeedup)});
    }
    AnalyzeMs += Analyze.ms();
    std::remove(Path.c_str());
    T.addSeparator();
  }
  T.print();
  std::printf("\nWith eight banks virtually nothing goes untraced (the\n"
              "paper: 'eight comparator banks are sufficient to analyze\n"
              "most of the benchmark programs'); starving the array loses\n"
              "inner decompositions unless dynamic disabling frees banks.\n");
  printSweepRatio("4 annotated interpretations (one per config)", 4, LiveMs,
                  RecordMs, AnalyzeMs);
  return 0;
}
