//===- bench/bench_ablation_banks.cpp - Comparator bank count ablation -----==//
//
// Section 5.2 sizes the comparator array at eight banks and argues deep
// nests can still be analyzed by dynamically disabling converged loops.
// This ablation sweeps the bank count and reports how much of the analysis
// survives: traced entries, selected STLs, and the predicted speedup.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Ablation - number of comparator banks",
              "Section 5.2 design choice (8 banks)");
  TextTable T;
  T.setHeader({"Benchmark", "banks", "peak", "untraced entries",
               "selected", "pred speedup"});
  for (const char *Name : {"Assignment", "jess", "decJpeg", "mp3"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    for (std::uint32_t Banks : {1u, 2u, 4u, 8u}) {
      pipeline::PipelineConfig Cfg;
      Cfg.Hw.ComparatorBanks = Banks;
      // Deep analysis relies on converged loops being disabled.
      Cfg.DisableLoopAfterThreads = Banks < 8 ? 2000 : 0;
      pipeline::Jrpm J(W->Build(), Cfg);
      auto P = J.profileAndSelect();
      std::uint64_t Untraced = 0;
      for (const auto &Rep : P.Selection.Loops)
        Untraced += Rep.Stats.UntracedEntries;
      T.addRow({Name, formatString("%u", Banks),
                formatString("%u", P.PeakBanksInUse),
                formatString("%llu", static_cast<unsigned long long>(
                                         Untraced)),
                formatString("%zu", P.Selection.SelectedLoops.size()),
                fmt(P.Selection.PredictedSpeedup)});
    }
    T.addSeparator();
  }
  T.print();
  std::printf("\nWith eight banks virtually nothing goes untraced (the\n"
              "paper: 'eight comparator banks are sufficient to analyze\n"
              "most of the benchmark programs'); starving the array loses\n"
              "inner decompositions unless dynamic disabling frees banks.\n");
  return 0;
}
