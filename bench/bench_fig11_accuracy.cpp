//===- bench/bench_fig11_accuracy.cpp - Figure 11 --------------------------==//
//
// Regenerates Figure 11: predicted versus actual speculative execution
// time, both normalized to the sequential run. The paper's point is that
// TEST's estimates track actual Hydra execution well enough to rank
// decompositions; disparity comes from highly varying thread sizes and
// violation behaviour the averaged statistics cannot capture.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cmath>

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Figure 11 - Estimated versus actual speculative performance",
              "Figure 11");
  TextTable T;
  T.setHeader({"Benchmark", "predicted time", "actual time", "pred speedup",
               "actual speedup", "|error|"});
  double ErrSum = 0;
  std::uint32_t Count = 0;
  std::string Category;
  for (const auto &W : workloads::allWorkloads()) {
    if (W.Category != Category) {
      Category = W.Category;
      T.addSeparator();
    }
    pipeline::PipelineResult R = runPipeline(W);
    double Predicted = R.Selection.PredictedCycles /
                       static_cast<double>(R.ProfiledRun.Cycles);
    double Actual = static_cast<double>(R.TlsRun.Cycles) /
                    static_cast<double>(R.PlainRun.Cycles);
    double Err = std::fabs(Predicted - Actual);
    ErrSum += Err;
    ++Count;
    T.addRow({W.Name, fmt(Predicted), fmt(Actual),
              fmt(R.Selection.PredictedSpeedup), fmt(R.actualSpeedup()),
              fmt(Err)});
  }
  T.print();
  double MeanErr = ErrSum / Count;
  std::printf("\nMean |predicted - actual| normalized-time error: %.3f\n",
              MeanErr);
  std::printf("Paper reference: predicted and actual bars track closely for\n"
              "most benchmarks; a few integer codes with highly varying\n"
              "thread sizes and violation rates diverge. Absolute values\n"
              "are not critical — TEST's role is ranking decompositions.\n");
  return MeanErr < 0.35 ? 0 : 1;
}
