//===- bench/bench_table3_selection.cpp - Tables 2 & 3 ---------------------==//
//
// Regenerates Table 2 (the TLS overheads used by both Equation 1 and the
// Hydra engine) and Table 3 (Equation 2 applied to the Huffman decoder's
// loop nest, choosing the outer loop as the better STL).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "tracer/Selector.h"

using namespace jrpm;
using namespace jrpm::benchutil;

static void printTable2(const sim::HydraConfig &Hw) {
  printBanner("Table 2 - Thread-level speculation overheads", "Table 2");
  TextTable T;
  T.setHeader({"TLS Operation", "Overhead / delay"});
  T.addRow({"Loop startup", formatString("%u cycles", Hw.LoopStartupCycles)});
  T.addRow({"Loop shutdown",
            formatString("%u cycles", Hw.LoopShutdownCycles)});
  T.addRow({"Loop end-of-iteration",
            formatString("%u cycles", Hw.EndOfIterationCycles)});
  T.addRow({"Violation and restart",
            formatString("%u cycles", Hw.ViolationRestartCycles)});
  T.addRow({"Store-load communication",
            formatString("%u cycles", Hw.StoreLoadCommCycles)});
  T.print();
}

int main() {
  pipeline::PipelineConfig Cfg;
  printTable2(Cfg.Hw);

  printBanner("Table 3 - Choosing between nested STLs (Huffman decode)",
              "Table 3");
  const workloads::Workload *W = workloads::findWorkload("Huffman");
  pipeline::Jrpm J(W->Build(), Cfg);
  auto P = J.profileAndSelect();

  // The decode nest: the two deepest-coverage loops where one is the
  // parent of the other (outer do/while + inner tree walk).
  int Outer = -1, Inner = -1;
  double BestCoverage = 0;
  for (const auto &Rep : P.Selection.Loops) {
    for (std::uint32_t C : Rep.Children) {
      const auto &Child = P.Selection.Loops[C];
      double Cov = Rep.Coverage + Child.Coverage;
      if (Child.Stats.Threads > 0 && Cov > BestCoverage) {
        BestCoverage = Cov;
        Outer = static_cast<int>(Rep.LoopId);
        Inner = static_cast<int>(C);
      }
    }
  }
  if (Outer < 0) {
    std::printf("no nested decomposition found\n");
    return 1;
  }
  const auto &O = P.Selection.Loops[static_cast<std::uint32_t>(Outer)];
  const auto &I = P.Selection.Loops[static_cast<std::uint32_t>(Inner)];

  TextTable T;
  T.setHeader({"", "Outer loop", "Inner loop", "Serial"});
  T.addRow({"Sequential time (cycles)", asKiloCycles(O.Stats.Cycles),
            asKiloCycles(I.Stats.Cycles),
            asKiloCycles(O.Stats.Cycles - I.Stats.Cycles)});
  T.addRow({"Speedup", fmt(O.Estimate.Speedup), fmt(I.Estimate.Speedup),
            "1.00"});
  T.addRow({"TLS time (cycles)",
            asKiloCycles(static_cast<std::uint64_t>(O.Estimate.SpecCycles)),
            asKiloCycles(static_cast<std::uint64_t>(I.Estimate.SpecCycles)),
            asKiloCycles(O.Stats.Cycles - I.Stats.Cycles)});
  double NestedAlternative = O.BestTime == O.Estimate.SpecCycles
                                 ? static_cast<double>(O.Stats.Cycles) -
                                       static_cast<double>(I.Stats.Cycles) +
                                       I.BestTime
                                 : O.BestTime;
  T.addRow({"Total time (cycles)",
            asKiloCycles(static_cast<std::uint64_t>(O.BestTime)),
            asKiloCycles(static_cast<std::uint64_t>(NestedAlternative)), ""});
  T.print();
  std::printf("\nEquation 2 chooses the %s loop (selected=%s/%s).\n",
              O.Selected ? "outer" : "inner", O.Selected ? "yes" : "no",
              I.Selected ? "yes" : "no");
  std::printf("Paper reference: outer loop wins, 1.85 vs 1.30 speedup, \n"
              "10238K vs 15762K total cycles (absolute numbers differ; the\n"
              "substrate is our simulator, the decision shape must match).\n");
  return O.Selected && !I.Selected ? 0 : 1;
}
