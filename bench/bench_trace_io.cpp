//===- bench/bench_trace_io.cpp - Trace encode/decode microbenchmark -------==//
//
// The record-once/replay-many economics rest on the wire format being
// cheap: encoding must not perturb a recorded run and decoding must be far
// cheaper than re-interpretation. This bench measures both directions in
// events/second over every registry workload's real event stream, plus the
// on-disk density after delta+varint encoding.
//
// Gate: the aggregate density across the registry must stay at or under
// 8 bytes/event (the delta+varint encoding typically achieves ~5).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "trace/Replay.h"
#include "trace/Writer.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Trace I/O - encode/decode rate and on-disk density",
              "the trace subsystem underpinning Section 6's ablations");
  TextTable T;
  T.setHeader({"Benchmark", "events", "trace bytes", "bytes/event",
               "encode Mev/s", "decode Mev/s"});
  double TotalBytes = 0, TotalEvents = 0;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    std::string Captured = benchTracePath("io-" + W.Name);
    {
      pipeline::PipelineConfig Cfg;
      Cfg.WorkloadName = W.Name;
      Cfg.RecordTracePath = Captured;
      pipeline::Jrpm J(W.Build(), Cfg);
      J.profileAndSelect();
    }
    // The decoded event stream is the encode bench's input, so the timed
    // loop below measures the writer alone, not interpretation.
    trace::CachedTrace Trace(Captured);
    std::remove(Captured.c_str());
    std::uint64_t N = Trace.events().size();

    std::string Rewritten = benchTracePath("io-rewrite-" + W.Name);
    std::uint64_t Bytes = 0;
    Stopwatch Enc;
    {
      trace::Writer Wr(Rewritten, Trace.header());
      for (const trace::Event &E : Trace.events())
        Wr.append(E);
      Wr.finish(Trace.footer().Run);
      Bytes = Wr.bytesWritten();
    }
    double EncMs = Enc.ms();

    Stopwatch Dec;
    {
      trace::Reader R(Rewritten);
      trace::Event E;
      while (R.next(E)) {
      }
    }
    double DecMs = Dec.ms();
    std::remove(Rewritten.c_str());

    double PerEvent = N ? static_cast<double>(Bytes) / N : 0.0;
    T.addRow({W.Name, formatString("%llu", (unsigned long long)N),
              formatString("%llu", (unsigned long long)Bytes),
              fmt(PerEvent),
              fmt(EncMs > 0 ? N / 1000.0 / EncMs : 0.0, 1),
              fmt(DecMs > 0 ? N / 1000.0 / DecMs : 0.0, 1)});
    TotalBytes += static_cast<double>(Bytes);
    TotalEvents += static_cast<double>(N);
  }
  T.print();

  double Density = TotalEvents ? TotalBytes / TotalEvents : 0.0;
  bool Pass = Density <= 8.0;
  std::printf("\nAggregate density over the registry: %.2f bytes/event "
              "(gate: <= 8) -> %s\n",
              Density, Pass ? "PASS" : "FAIL");
  return Pass ? 0 : 1;
}
