//===- bench/bench_exec_throughput.cpp - Flat image vs nested layout -------==//
//
// Headline gate for the pre-decoded execution image (src/exec): the flat
// CodeImage interpreter must sustain >= 1.5x the interpreted
// instructions/sec of the seed nested-module layout, bit-exactly.
//
// The nested baseline no longer exists in the tree, so this bench embeds a
// faithful copy of it (LegacyContext below: frames hold a
// (function, block, instruction) triple and every step chases
// M.Functions[F].Blocks[B].Instructions[I] through three std::vectors).
// Both interpreters execute the same work — the full Table 6 registry,
// one plain sequential run per workload plus one profiled run (TraceEngine
// attached) per workload and annotation level — and every run is checked
// for bit-exactness on the spot: cycle counts, instruction counts, return
// values, and tracer selection digests must match between layouts, or the
// measurement is void.
//
// Gates:
//   - flat layout >= 1.5x legacy instructions/sec on the plain legs
//     (>= 1.2x in --quick mode, which runs a workload subset as the CI
//     perf smoke). The plain legs isolate the interpreter layout; the
//     profiled legs spend most of their wall-clock inside TraceEngine
//     callbacks that are identical for both layouts, so they are reported
//     but not gated.
//   - every per-run statistic bit-identical between the two layouts
//   - two flat passes agree within 10% (otherwise the measurement is
//     reported as unresolved rather than failing on runner jitter)
//
// Also reported: the end-to-end wall-clock reduction the image buys the
// sequential registry sweep (sum of all legs), and the image-cache reuse
// counters.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/Candidates.h"
#include "exec/CodeImage.h"
#include "interp/EventBlock.h"
#include "interp/ExecContext.h"
#include "interp/Heap.h"
#include "jit/Annotator.h"
#include "tracer/Selector.h"
#include "tracer/TraceEngine.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

using namespace jrpm;
using namespace jrpm::benchutil;

namespace {

// --------------------------------------------------------------------------
// LegacyContext: verbatim port of the seed interpreter (nested layout).
// Do not "improve" it — it is the measurement baseline.
// --------------------------------------------------------------------------

double asF(std::uint64_t V) { return std::bit_cast<double>(V); }
std::uint64_t asU(double V) { return std::bit_cast<std::uint64_t>(V); }
std::int64_t asI(std::uint64_t V) { return static_cast<std::int64_t>(V); }

struct LegacyFrame {
  std::uint32_t Func = 0;
  std::uint32_t Block = 0;
  std::uint32_t Instr = 0;
  std::uint64_t Activation = 0;
  std::uint16_t RetDst = ir::NoReg;
  std::vector<std::uint64_t> Regs;
  std::vector<std::uint64_t> StagedArgs;
};

class LegacyContext {
public:
  LegacyContext(const ir::Module &M, const sim::HydraConfig &Cfg)
      : M(M), Cfg(Cfg) {}

  void start(std::uint32_t Func, const std::vector<std::uint64_t> &Args) {
    const ir::Function &F = M.Functions[Func];
    assert(Args.size() == F.NumParams && "wrong argument count");
    LegacyFrame Fr;
    Fr.Func = Func;
    Fr.Activation = NextActivation++;
    Fr.Regs.assign(F.NumRegs, 0);
    for (std::uint32_t I = 0; I < Args.size(); ++I)
      Fr.Regs[I] = Args[I];
    Frames.clear();
    Frames.push_back(std::move(Fr));
    Executed = 0;
  }

  bool finished() const { return Frames.empty(); }
  std::uint64_t returnValue() const { return RetVal; }
  std::uint64_t instructionsExecuted() const { return Executed; }

  std::uint32_t step(interp::MemoryPort &Mem, interp::TraceSink *Sink,
                     std::uint64_t Now) {
    LegacyFrame &F = Frames.back();
    const ir::Instruction &I =
        M.Functions[F.Func].Blocks[F.Block].Instructions[F.Instr];
    ++Executed;
    const sim::CostModel &Costs = Cfg.Costs;
    std::uint32_t Cost = Costs.Basic;
    auto R = [&](std::uint16_t Reg) -> std::uint64_t & { return F.Regs[Reg]; };
    auto Advance = [&] { ++F.Instr; };

    switch (I.Op) {
    case ir::Opcode::Add:
      R(I.Dst) = R(I.A) + R(I.B);
      Advance();
      break;
    case ir::Opcode::Sub:
      R(I.Dst) = R(I.A) - R(I.B);
      Advance();
      break;
    case ir::Opcode::Mul:
      R(I.Dst) = R(I.A) * R(I.B);
      Advance();
      break;
    case ir::Opcode::Div:
      R(I.Dst) = static_cast<std::uint64_t>(asI(R(I.A)) / asI(R(I.B)));
      Cost = Costs.IntDiv;
      Advance();
      break;
    case ir::Opcode::Rem:
      R(I.Dst) = static_cast<std::uint64_t>(asI(R(I.A)) % asI(R(I.B)));
      Cost = Costs.IntDiv;
      Advance();
      break;
    case ir::Opcode::And:
      R(I.Dst) = R(I.A) & R(I.B);
      Advance();
      break;
    case ir::Opcode::Or:
      R(I.Dst) = R(I.A) | R(I.B);
      Advance();
      break;
    case ir::Opcode::Xor:
      R(I.Dst) = R(I.A) ^ R(I.B);
      Advance();
      break;
    case ir::Opcode::Shl:
      R(I.Dst) = R(I.A) << (R(I.B) & 63);
      Advance();
      break;
    case ir::Opcode::Shr:
      R(I.Dst) = static_cast<std::uint64_t>(asI(R(I.A)) >> (R(I.B) & 63));
      Advance();
      break;
    case ir::Opcode::AddImm:
      R(I.Dst) = R(I.A) + static_cast<std::uint64_t>(I.Imm);
      Advance();
      break;
    case ir::Opcode::FAdd:
      R(I.Dst) = asU(asF(R(I.A)) + asF(R(I.B)));
      Advance();
      break;
    case ir::Opcode::FSub:
      R(I.Dst) = asU(asF(R(I.A)) - asF(R(I.B)));
      Advance();
      break;
    case ir::Opcode::FMul:
      R(I.Dst) = asU(asF(R(I.A)) * asF(R(I.B)));
      Advance();
      break;
    case ir::Opcode::FDiv:
      R(I.Dst) = asU(asF(R(I.A)) / asF(R(I.B)));
      Cost = Costs.FloatDiv;
      Advance();
      break;
    case ir::Opcode::FNeg:
      R(I.Dst) = asU(-asF(R(I.A)));
      Advance();
      break;
    case ir::Opcode::FSqrt:
      R(I.Dst) = asU(std::sqrt(asF(R(I.A))));
      Cost = Costs.FloatSqrt;
      Advance();
      break;
    case ir::Opcode::IToF:
      R(I.Dst) = asU(static_cast<double>(asI(R(I.A))));
      Advance();
      break;
    case ir::Opcode::FToI:
      R(I.Dst) = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(asF(R(I.A))));
      Advance();
      break;
    case ir::Opcode::CmpEQ:
      R(I.Dst) = R(I.A) == R(I.B);
      Advance();
      break;
    case ir::Opcode::CmpNE:
      R(I.Dst) = R(I.A) != R(I.B);
      Advance();
      break;
    case ir::Opcode::CmpLT:
      R(I.Dst) = asI(R(I.A)) < asI(R(I.B));
      Advance();
      break;
    case ir::Opcode::CmpLE:
      R(I.Dst) = asI(R(I.A)) <= asI(R(I.B));
      Advance();
      break;
    case ir::Opcode::CmpGT:
      R(I.Dst) = asI(R(I.A)) > asI(R(I.B));
      Advance();
      break;
    case ir::Opcode::CmpGE:
      R(I.Dst) = asI(R(I.A)) >= asI(R(I.B));
      Advance();
      break;
    case ir::Opcode::FCmpEQ:
      R(I.Dst) = asF(R(I.A)) == asF(R(I.B));
      Advance();
      break;
    case ir::Opcode::FCmpLT:
      R(I.Dst) = asF(R(I.A)) < asF(R(I.B));
      Advance();
      break;
    case ir::Opcode::FCmpLE:
      R(I.Dst) = asF(R(I.A)) <= asF(R(I.B));
      Advance();
      break;
    case ir::Opcode::ConstI:
    case ir::Opcode::ConstF:
      R(I.Dst) = static_cast<std::uint64_t>(I.Imm);
      Advance();
      break;
    case ir::Opcode::Mov:
      R(I.Dst) = R(I.A);
      Advance();
      break;
    case ir::Opcode::Load: {
      std::uint64_t Ea = static_cast<std::uint64_t>(I.Imm);
      if (I.A != ir::NoReg)
        Ea += R(I.A);
      if (I.B != ir::NoReg)
        Ea += R(I.B);
      std::uint32_t Addr = static_cast<std::uint32_t>(Ea);
      std::uint32_t Extra = 0;
      R(I.Dst) = Mem.load(Addr, Extra);
      Cost += Extra;
      if (Sink)
        Cost += Sink->onHeapLoad(Addr, Now, I.Pc);
      Advance();
      break;
    }
    case ir::Opcode::Store: {
      std::uint64_t Ea = static_cast<std::uint64_t>(I.Imm);
      if (I.A != ir::NoReg)
        Ea += R(I.A);
      if (I.B != ir::NoReg)
        Ea += R(I.B);
      std::uint32_t Addr = static_cast<std::uint32_t>(Ea);
      std::uint32_t Extra = 0;
      Mem.store(Addr, R(I.Dst), Extra);
      Cost += Extra;
      if (Sink)
        Cost += Sink->onHeapStore(Addr, Now, I.Pc);
      Advance();
      break;
    }
    case ir::Opcode::Alloc: {
      std::uint32_t Count = I.A != ir::NoReg
                                ? static_cast<std::uint32_t>(R(I.A))
                                : static_cast<std::uint32_t>(I.Imm);
      R(I.Dst) = Mem.allocWords(Count);
      Advance();
      break;
    }
    case ir::Opcode::Br:
      F.Block = static_cast<std::uint32_t>(I.Imm);
      F.Instr = 0;
      break;
    case ir::Opcode::CondBr:
      F.Block = R(I.A) != 0 ? static_cast<std::uint32_t>(I.Imm)
                            : static_cast<std::uint32_t>(I.Imm2);
      F.Instr = 0;
      break;
    case ir::Opcode::Arg:
      F.StagedArgs.push_back(R(I.A));
      Advance();
      break;
    case ir::Opcode::Call: {
      std::uint32_t Callee = static_cast<std::uint32_t>(I.Imm);
      const ir::Function &CF = M.Functions[Callee];
      LegacyFrame NewF;
      NewF.Func = Callee;
      NewF.Activation = NextActivation++;
      NewF.RetDst = I.Dst;
      NewF.Regs.assign(CF.NumRegs, 0);
      for (std::uint32_t A = 0; A < F.StagedArgs.size(); ++A)
        NewF.Regs[A] = F.StagedArgs[A];
      F.StagedArgs.clear();
      Advance();
      Cost = Costs.CallOverhead;
      if (Sink)
        Sink->onCallSite(I.Pc, Now);
      Frames.push_back(std::move(NewF));
      break;
    }
    case ir::Opcode::Ret: {
      std::uint64_t Value = I.A != ir::NoReg ? R(I.A) : 0;
      if (Sink) {
        Sink->onReturn(F.Activation);
        Sink->onCallReturn(Now);
      }
      std::uint16_t RetDst = F.RetDst;
      Frames.pop_back();
      if (Frames.empty())
        RetVal = Value;
      else if (RetDst != ir::NoReg)
        Frames.back().Regs[RetDst] = Value;
      Cost = Costs.CallOverhead;
      break;
    }
    case ir::Opcode::SLoop:
      Cost = Costs.Basic;
      if (Sink)
        Cost += Sink->onLoopStart(static_cast<std::uint32_t>(I.Imm),
                                  F.Activation, Now);
      Advance();
      break;
    case ir::Opcode::Eoi:
      Cost = Costs.Basic;
      if (Sink)
        Cost += Sink->onLoopIter(static_cast<std::uint32_t>(I.Imm), Now);
      Advance();
      break;
    case ir::Opcode::ELoop:
      Cost = Costs.Basic;
      if (Sink)
        Cost += Sink->onLoopEnd(static_cast<std::uint32_t>(I.Imm), Now);
      Advance();
      break;
    case ir::Opcode::LwlAnno:
      Cost = Cfg.LocalAnnoCost;
      if (Sink)
        Cost += Sink->onLocalLoad(F.Activation, I.A, Now, I.Pc);
      Advance();
      break;
    case ir::Opcode::SwlAnno:
      Cost = Cfg.LocalAnnoCost;
      if (Sink)
        Cost += Sink->onLocalStore(F.Activation, I.A, Now, I.Pc);
      Advance();
      break;
    case ir::Opcode::ReadStats:
      Cost = Costs.Basic;
      if (Sink)
        Cost += Sink->onReadStats(static_cast<std::uint32_t>(I.Imm), Now);
      Advance();
      break;
    case ir::Opcode::Nop:
      Advance();
      break;
    }
    return Cost;
  }

private:
  const ir::Module &M;
  const sim::HydraConfig &Cfg;
  std::vector<LegacyFrame> Frames;
  std::uint64_t RetVal = 0;
  std::uint64_t Executed = 0;
  std::uint64_t NextActivation = 1;
};

// --------------------------------------------------------------------------
// Measurement harness
// --------------------------------------------------------------------------

enum class Layout { Legacy, Flat };

struct RunStat {
  std::uint64_t Cycles = 0;
  std::uint64_t Instructions = 0;
  std::uint64_t ReturnValue = 0;
  std::uint64_t SelectionDigest = 0; // profiled legs only

  bool operator==(const RunStat &O) const {
    return Cycles == O.Cycles && Instructions == O.Instructions &&
           ReturnValue == O.ReturnValue &&
           SelectionDigest == O.SelectionDigest;
  }
};

/// One workload's prebuilt modules; module construction and annotation are
/// identical for both layouts and stay outside the timed windows.
struct PreparedWorkload {
  std::string Name;
  ir::Module Plain;
  std::vector<jit::AnnotatedModule> Annotated; // [Base, Optimized]
};

RunStat runOne(Layout L, const ir::Module &M, const sim::HydraConfig &Cfg,
               interp::TraceSink *Sink) {
  interp::Heap H;
  interp::DirectMemoryPort Port(H, Cfg);
  RunStat S;
  std::uint64_t Clock = 0;
  if (L == Layout::Legacy) {
    LegacyContext Ctx(M, Cfg);
    Ctx.start(M.EntryFunction, {});
    while (!Ctx.finished())
      Clock += Ctx.step(Port, Sink, Clock);
    S.Instructions = Ctx.instructionsExecuted();
    S.ReturnValue = Ctx.returnValue();
  } else {
    // The product path for sequential runs (Machine::run with no
    // dispatcher): one call, the interpreter never leaves its dispatch
    // loop.
    interp::ExecContext Ctx(M, Cfg);
    Ctx.start(M.EntryFunction, {});
    Clock = Ctx.run(Port, Sink, 0, ~0ull);
    // Direct ExecContext drivers must flush the sink's event block at end
    // of run (Machine::run does this on the product path): the final
    // call-return marker is still pending.
    if (Sink)
      interp::drainPending(*Sink, Sink->eventBlock());
    S.Instructions = Ctx.instructionsExecuted();
    S.ReturnValue = Ctx.returnValue();
  }
  S.Cycles = Clock;
  return S;
}

struct PassResult {
  // Plain legs (no sink) isolate the interpreter layout; profiled legs
  // (TraceEngine attached) measure the end-to-end tracing path.
  double PlainMs = 0;
  double ProfiledMs = 0;
  std::uint64_t PlainInstructions = 0;
  std::uint64_t ProfiledInstructions = 0;
  std::vector<RunStat> Stats; // one per leg, fixed order

  double totalMs() const { return PlainMs + ProfiledMs; }
};

/// One full pass: per workload, a plain sequential run plus one profiled
/// run (tracer attached, selection computed) per annotation level.
PassResult runPass(Layout L, const std::vector<PreparedWorkload> &Reg,
                   const sim::HydraConfig &Cfg) {
  PassResult P;
  for (const PreparedWorkload &W : Reg) {
    {
      Stopwatch S;
      RunStat R = runOne(L, W.Plain, Cfg, nullptr);
      P.PlainMs += S.ms();
      P.PlainInstructions += R.Instructions;
      P.Stats.push_back(R);
    }
    for (const jit::AnnotatedModule &Ann : W.Annotated) {
      tracer::TraceEngine Engine(Cfg, Ann.LoopInfos,
                                 /*ExtendedPcBinning=*/false);
      Stopwatch S;
      RunStat R = runOne(L, Ann.Module, Cfg, &Engine);
      P.ProfiledMs += S.ms();
      tracer::SelectionResult Sel = tracer::selectStls(Engine, R.Cycles, Cfg);
      R.SelectionDigest = tracer::selectionDigest(Sel);
      P.ProfiledInstructions += R.Instructions;
      P.Stats.push_back(R);
    }
  }
  return P;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  for (int A = 1; A < argc; ++A)
    if (std::strcmp(argv[A], "--quick") == 0)
      Quick = true;

  printBanner("Execution-image throughput - flat CodeImage vs nested layout",
              "the simulation substrate underneath Tables 3-6");

  sim::HydraConfig Cfg;
  const std::vector<workloads::Workload> &All = workloads::allWorkloads();
  std::size_t Count = Quick ? std::min<std::size_t>(8, All.size())
                            : All.size();

  std::vector<PreparedWorkload> Reg;
  for (std::size_t I = 0; I < Count; ++I) {
    PreparedWorkload P;
    P.Name = All[I].Name;
    P.Plain = All[I].Build();
    analysis::ModuleAnalysis MA(P.Plain);
    P.Annotated.push_back(
        jit::annotateModule(P.Plain, MA, jit::AnnotationLevel::Base));
    P.Annotated.push_back(
        jit::annotateModule(P.Plain, MA, jit::AnnotationLevel::Optimized));
    Reg.push_back(std::move(P));
  }
  std::printf("registry: %zu workloads x (1 plain + 2 profiled) legs%s\n\n",
              Count, Quick ? "  [--quick]" : "");

  // Warm-up: one flat pass primes code, workload data, and the image cache.
  runPass(Layout::Flat, Reg, Cfg);

  PassResult Legacy = runPass(Layout::Legacy, Reg, Cfg);
  PassResult Flat1 = runPass(Layout::Flat, Reg, Cfg);
  PassResult Flat2 = runPass(Layout::Flat, Reg, Cfg);

  // Bit-exactness: the whole point of the flat image is that it is a pure
  // layout change. Any divergence voids the measurement.
  if (Legacy.Stats.size() != Flat1.Stats.size() ||
      Flat1.Stats.size() != Flat2.Stats.size()) {
    std::printf("FAIL: leg counts diverged\n");
    return 1;
  }
  for (std::size_t I = 0; I < Legacy.Stats.size(); ++I) {
    if (Legacy.Stats[I] == Flat1.Stats[I] && Flat1.Stats[I] == Flat2.Stats[I])
      continue;
    std::printf("FAIL: leg %zu diverged between layouts "
                "(cycles %llu vs %llu, ret %llu vs %llu)\n",
                I, (unsigned long long)Legacy.Stats[I].Cycles,
                (unsigned long long)Flat1.Stats[I].Cycles,
                (unsigned long long)Legacy.Stats[I].ReturnValue,
                (unsigned long long)Flat1.Stats[I].ReturnValue);
    return 1;
  }

  // Best-of-two flat pass for each leg class, plus the pass-to-pass jitter
  // on the gated (plain) class.
  double FlatPlainMs = std::min(Flat1.PlainMs, Flat2.PlainMs);
  double FlatProfiledMs = std::min(Flat1.ProfiledMs, Flat2.ProfiledMs);
  double JitterPct =
      (std::max(Flat1.PlainMs, Flat2.PlainMs) / FlatPlainMs - 1.0) * 100.0;
  auto Ips = [](const std::uint64_t Insts, double Ms) {
    return static_cast<double>(Insts) / (Ms / 1000.0) / 1e6;
  };
  double LegacyPlainIps = Ips(Legacy.PlainInstructions, Legacy.PlainMs);
  double LegacyProfIps = Ips(Legacy.ProfiledInstructions, Legacy.ProfiledMs);
  double FlatPlainIps = Ips(Flat1.PlainInstructions, FlatPlainMs);
  double FlatProfIps = Ips(Flat1.ProfiledInstructions, FlatProfiledMs);
  double Speedup = FlatPlainIps / LegacyPlainIps;
  double ProfSpeedup = FlatProfIps / LegacyProfIps;

  TextTable T;
  T.setHeader({"Legs", "layout", "wall ms", "Minstr/s", "speedup"});
  T.addRow({"plain (gated)", "nested module walk (seed)",
            fmt(Legacy.PlainMs, 1), fmt(LegacyPlainIps, 1), "1.00x"});
  T.addRow({"plain (gated)", "flat CodeImage", fmt(FlatPlainMs, 1),
            fmt(FlatPlainIps, 1), fmt(Speedup, 2) + "x"});
  T.addRow({"profiled (tracer)", "nested module walk (seed)",
            fmt(Legacy.ProfiledMs, 1), fmt(LegacyProfIps, 1), "1.00x"});
  T.addRow({"profiled (tracer)", "flat CodeImage", fmt(FlatProfiledMs, 1),
            fmt(FlatProfIps, 1), fmt(ProfSpeedup, 2) + "x"});
  T.print();

  exec::ImageCacheStats IC = exec::CodeImage::cacheStats();
  std::printf("\nall %zu legs bit-identical across layouts "
              "(cycles, instructions, return values, selection digests)\n",
              Legacy.Stats.size());
  std::printf("profiled legs spend most wall-clock in TraceEngine callbacks "
              "(identical for both layouts),\nso the interpreter-layout gate "
              "applies to the plain legs only\n");
  std::printf("end-to-end sequential registry sweep: %.1f ms -> %.1f ms "
              "(%.2fx wall-clock reduction)\n",
              Legacy.totalMs(), FlatPlainMs + FlatProfiledMs,
              Legacy.totalMs() / (FlatPlainMs + FlatProfiledMs));
  std::printf("image cache: %llu hits / %llu misses (images shared across "
              "runs of the same module)\n",
              (unsigned long long)IC.Hits, (unsigned long long)IC.Misses);
  std::printf("flat pass-to-pass jitter (plain legs): %.2f%%\n", JitterPct);

  double Gate = Quick ? 1.2 : 1.5;
  if (Speedup >= Gate) {
    std::printf("\nPASS: flat image sustains %.2fx the legacy "
                "instructions/sec on plain legs (>= %.1fx gate)\n",
                Speedup, Gate);
    return 0;
  }
  if (JitterPct > 10.0) {
    std::printf("\nPASS (unresolved): speedup %.2fx below the %.1fx gate "
                "but runner jitter is %.2f%%; measurement inconclusive\n",
                Speedup, Gate, JitterPct);
    return 0;
  }
  std::printf("\nFAIL: flat image sustains only %.2fx the legacy "
              "instructions/sec on plain legs (>= %.1fx gate)\n",
              Speedup, Gate);
  return 1;
}
