//===- bench/bench_ablation_strategy.cpp - Selection strategy ablation -----==//
//
// Section 2 contrasts TEST's Equation 2 with simpler policies: Cintra et
// al. "restrict speculative decompositions ... to the inner-most loop of a
// loop nest", and a naive alternative is to always speculate on the
// outermost loop. This ablation executes all three policies on the Hydra
// engine and compares actual whole-program speedups.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cmath>

using namespace jrpm;
using namespace jrpm::benchutil;

namespace {

/// Rewrites \p Selection to pick exactly the traced loops satisfying
/// \p Keep, then deactivates descendants of selected loops so the set
/// stays nest-disjoint (a hardware requirement, not a policy choice).
tracer::SelectionResult
applyPolicy(tracer::SelectionResult Selection,
            bool (*Keep)(const tracer::StlReport &,
                         const tracer::SelectionResult &)) {
  for (auto &Rep : Selection.Loops)
    Rep.Selected = Rep.Stats.Threads > 0 && Rep.Coverage > 0.005 &&
                   Keep(Rep, Selection);
  // Nest-disjointness: ancestors win.
  for (auto &Rep : Selection.Loops) {
    int P = Rep.Parent;
    while (P >= 0) {
      if (Selection.Loops[static_cast<std::uint32_t>(P)].Selected) {
        Rep.Selected = false;
        break;
      }
      P = Selection.Loops[static_cast<std::uint32_t>(P)].Parent;
    }
  }
  Selection.SelectedLoops.clear();
  for (const auto &Rep : Selection.Loops)
    if (Rep.Selected)
      Selection.SelectedLoops.push_back(Rep.LoopId);
  return Selection;
}

bool keepInnermost(const tracer::StlReport &Rep,
                   const tracer::SelectionResult &Sel) {
  for (std::uint32_t C : Rep.Children)
    if (Sel.Loops[C].Stats.Threads > 0)
      return false;
  return true;
}

bool keepOutermost(const tracer::StlReport &Rep,
                   const tracer::SelectionResult &) {
  return Rep.Parent < 0;
}

} // namespace

int main() {
  printBanner("Ablation - Equation 2 vs innermost-only vs outermost-only",
              "Section 2 / Section 4.3 (decomposition selection)");
  TextTable T;
  T.setHeader({"Benchmark", "Eq.2 (TEST)", "innermost-only",
               "outermost-only"});
  double GeoTest = 1, GeoInner = 1, GeoOuter = 1;
  std::uint32_t Count = 0;
  for (const char *Name : {"Assignment", "Huffman", "LuFactor", "shallow",
                           "decJpeg", "NeuralNet", "mp3", "FourierTest"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    pipeline::PipelineConfig Cfg;
    pipeline::Jrpm J(W->Build(), Cfg);
    auto Plain = J.runPlain();
    auto P = J.profileAndSelect();

    auto Actual = [&](const tracer::SelectionResult &S) {
      auto R = J.runSpeculative(S);
      if (R.Run.ReturnValue != Plain.ReturnValue) {
        std::fprintf(stderr, "checksum mismatch on %s\n", Name);
        std::exit(1);
      }
      return static_cast<double>(Plain.Cycles) /
             static_cast<double>(R.Run.Cycles);
    };

    double Test = Actual(P.Selection);
    double Inner = Actual(applyPolicy(P.Selection, keepInnermost));
    double Outer = Actual(applyPolicy(P.Selection, keepOutermost));
    GeoTest *= Test;
    GeoInner *= Inner;
    GeoOuter *= Outer;
    ++Count;
    T.addRow({Name, fmt(Test) + "x", fmt(Inner) + "x", fmt(Outer) + "x"});
  }
  T.addSeparator();
  auto Geo = [&](double G) {
    return fmt(std::pow(G, 1.0 / Count)) + "x";
  };
  T.addRow({"geomean", Geo(GeoTest), Geo(GeoInner), Geo(GeoOuter)});
  T.print();
  std::printf("\nEquation 2 dominates both fixed policies: innermost-only\n"
              "drowns fine loops in per-thread overheads, outermost-only\n"
              "hits speculative buffer overflows and carried dependences.\n"
              "This is why TEST measures instead of guessing.\n");
  return 0;
}
