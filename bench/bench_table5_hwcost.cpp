//===- bench/bench_table5_hwcost.cpp - Tables 1 & 5 ------------------------==//
//
// Regenerates Table 1 (speculation buffer limits) and Table 5 (transistor
// count estimates for Hydra with TLS and TEST support), checking the
// paper's headline that TEST adds < 1% of the CMP transistor count.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "hwcost/TransistorModel.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  sim::HydraConfig Hw;

  printBanner("Table 1 - Thread-level speculation buffer limits", "Table 1");
  TextTable T1;
  T1.setHeader({"Buffer", "Per-thread limit", "Associativity"});
  T1.addRow({"Load buffer",
             formatString("%ukB (%u lines x %uB)",
                          Hw.SpecLoadLines * Hw.WordsPerLine * 8 / 1024,
                          Hw.SpecLoadLines, Hw.WordsPerLine * 8),
             formatString("%u-way", Hw.L1Assoc)});
  T1.addRow({"Store buffer",
             formatString("%ukB (%u lines x %uB)",
                          Hw.SpecStoreLines * Hw.WordsPerLine * 8 / 1024,
                          Hw.SpecStoreLines, Hw.WordsPerLine * 8),
             "Fully"});
  T1.print();

  printBanner("Table 5 - Transistor count estimates (Hydra + TLS + TEST)",
              "Table 5");
  hwcost::CostBreakdown B = hwcost::estimateHydraCost(Hw);
  std::uint64_t Total = B.total();
  TextTable T5;
  T5.setHeader({"Structure", "Count", "Each", "Total", "% of total"});
  for (const auto &S : B.Structures) {
    T5.addRow({S.Name, formatString("%u", S.Count),
               formatString("%lluK",
                            static_cast<unsigned long long>(S.Each / 1000)),
               formatString("%lluK", static_cast<unsigned long long>(
                                         S.total() / 1000)),
               asPercent(static_cast<double>(S.total()) /
                         static_cast<double>(Total))});
  }
  T5.addSeparator();
  T5.addRow({"Total", "",
             "",
             formatString("%lluK",
                          static_cast<unsigned long long>(Total / 1000)),
             "100.00%"});
  T5.print();

  double TestFrac = B.fractionOf("Comparator bank");
  std::printf("\nTEST comparator-bank array: %s of the CMP "
              "(paper: 0.28%%; headline claim: < 1%%)\n",
              asPercent(TestFrac).c_str());
  std::printf("Paper reference totals: CPU+FP 10000K (8.64%%), L1s 6291K\n"
              "(5.43%%), L2 98304K (84.91%%), write buffers 861K (0.74%%),\n"
              "comparator banks 322K (0.28%%), total 115778K.\n");
  return TestFrac < 0.01 ? 0 : 1;
}
