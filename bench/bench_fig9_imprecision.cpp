//===- bench/bench_fig9_imprecision.cpp - Figure 9 -------------------------==//
//
// Regenerates the Figure 9 imprecision case: a loop
//
//     for (i = 0; i < limit; i++)
//       if (i % n != 0) A[i] = A[i-1];
//
// has parallelism at every n-th iteration, but TEST's two-bin arc
// accumulation sees a high count of distance-1 dependencies and concludes
// the loop is (almost) non-parallel. The bench sweeps n and reports the
// tracer's arc statistics, the Equation 1 estimate, and the actual TLS
// speedup for comparison.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::benchutil;
using namespace jrpm::front;

namespace {

ir::Module buildFigure9Loop(std::int64_t N) {
  constexpr std::int64_t Limit = 4000;
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("a", allocWords(c(Limit + 4))),
      forLoop("i", c(0), lt(v("i"), c(Limit)), 1,
              store(v("a"), v("i"), workloads::hashMod(v("i"), 100))),
      forLoop("i", c(1), lt(v("i"), c(Limit)), 1,
              iff(ne(srem(v("i"), c(N)), c(0)),
                  store(v("a"), v("i"), ld(v("a"), sub(v("i"), c(1)))))),
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(Limit)), 1,
              assign("s", add(v("s"), ld(v("a"), v("i"))))),
      ret(v("s")),
  });
  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}

} // namespace

int main() {
  printBanner("Figure 9 - Imprecision on modular dependence patterns",
              "Figure 9 / Section 6.2");
  TextTable T;
  T.setHeader({"n", "arc freq (t-1)", "avg arc", "thread size",
               "Eq.1 speedup", "actual TLS speedup", "ideal"});
  // n >= 3: with n == 2 the copy's source index is never written inside
  // the loop and no dependence exists at all.
  for (std::int64_t N : {3, 4, 8, 16}) {
    pipeline::PipelineConfig Cfg;
    pipeline::Jrpm J(buildFigure9Loop(N), Cfg);
    auto Plain = J.runPlain();
    auto P = J.profileAndSelect();

    // The Figure 9 loop: the one with distance-1 arcs and if-control.
    const tracer::StlReport *Target = nullptr;
    for (const auto &Rep : P.Selection.Loops)
      if (Rep.Stats.CritArcsPrev > 0 &&
          (!Target || Rep.Stats.CritArcsPrev > Target->Stats.CritArcsPrev))
        Target = &Rep;
    if (!Target) {
      std::printf("no dependent loop traced for n=%lld\n",
                  static_cast<long long>(N));
      return 1;
    }

    // Force-select only that loop for the actual speculative run.
    tracer::SelectionResult Only = P.Selection;
    Only.SelectedLoops.clear();
    for (auto &Rep : Only.Loops)
      Rep.Selected = false;
    Only.Loops[Target->LoopId].Selected = true;
    Only.SelectedLoops.push_back(Target->LoopId);
    auto Tls = J.runSpeculative(Only);

    double WholeActual = static_cast<double>(Plain.Cycles) /
                         static_cast<double>(Tls.Run.Cycles);
    // Ideal: every n-th iteration starts a new independent chain, so the
    // achievable overlap is min(p, n/(n-1))-ish; report n/(n-1) capped.
    double Ideal = std::min(4.0, static_cast<double>(N) /
                                     static_cast<double>(N - 1));
    T.addRow({formatString("%lld", static_cast<long long>(N)),
              fmt(Target->Stats.arcFreqPrev()),
              fmt(Target->Stats.avgArcPrev(), 1),
              fmt(Target->Stats.avgThreadSize(), 1),
              fmt(Target->Estimate.Speedup),
              fmt(WholeActual), fmt(Ideal)});
  }
  T.print();
  std::printf(
      "\nTEST only keeps aggregate (frequency, average length) pairs per\n"
      "bin, so the estimate moves smoothly with the dependence count and\n"
      "cannot see the modular structure: it misses both that iterations\n"
      "inside a chain serialize completely (the estimate sits above the\n"
      "actual speedup) and that an independent chain restarts at every\n"
      "n-th iteration. This is Section 6.2's 'temporal dependency\n"
      "information is lost that could detect multi-iteration parallelism'\n"
      "(Figure 9). The ranking is still usable: both columns degrade\n"
      "together as n grows.\n");
  return 0;
}
