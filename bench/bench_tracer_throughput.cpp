//===- bench/bench_tracer_throughput.cpp - Batched SoA tracer vs seed ------==//
//
// Headline gate for the block-drained structure-of-arrays tracer core
// (src/tracer + src/interp EventBlock): the batched TraceEngine must
// sustain >= 1.5x the analyzed events/sec of the seed per-event engine,
// bit-exactly.
//
// The seed engine no longer exists in the tree, so this bench embeds a
// faithful copy of it (namespace `legacy` below: an unordered_map + deque
// store-timestamp FIFO, a valid-bit associative line table, a std::map
// parent-vote structure, and one virtual TraceSink call per memory event).
// Both engines analyze the same work: per registry workload and annotation
// level, one annotated profiling run is captured as an in-memory event
// stream (untimed), and the timed legs re-drive each engine from that
// identical stream — the legacy engine per-event through
// trace::dispatchEvent, the new engine through the same
// trace::dispatchEventBatched block-drain path the product replay uses.
//
// Every measurement is verified on the spot:
//   - per-loop StlStats (arc histograms, overflow counts, PC bins),
//     dynamicParents, and peak gauges bit-identical between the legacy
//     and the new engine on every stream
//   - the new engine's selection digest and exported tracer.* metrics
//     bit-identical between the live profiled run and the replayed stream
//   - a second live run driven through the batched interpreter path
//     (EventBlock in the hot loop) reproduces the per-event live digest
//   - two new-engine passes agree within 10% (otherwise the measurement
//     is reported as unresolved rather than failing on runner jitter)
//
// Gate: >= 1.5x events/sec (>= 1.2x in --quick mode, which runs a
// workload subset as the CI perf smoke).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/Candidates.h"
#include "interp/EventBlock.h"
#include "interp/ExecContext.h"
#include "interp/Heap.h"
#include "jit/Annotator.h"
#include "metrics/Metrics.h"
#include "trace/Reader.h"
#include "tracer/Selector.h"
#include "tracer/TraceEngine.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

using namespace jrpm;
using namespace jrpm::benchutil;

namespace legacy {

// --------------------------------------------------------------------------
// Verbatim port of the seed tracer (per-event, pointer-chasing layout).
// Do not "improve" it — it is the measurement baseline.
// --------------------------------------------------------------------------

using tracer::LoopTraceInfo;
using tracer::NoTimestamp;
using tracer::PcBinStats;
using tracer::StlStats;

class HeapStoreTimestamps {
public:
  HeapStoreTimestamps(std::uint32_t CapacityLines, std::uint32_t WordsPerLine)
      : Capacity(CapacityLines), WordsPerLine(WordsPerLine) {}

  void recordStore(std::uint32_t Addr, std::uint64_t Cycle) {
    std::uint32_t Line = Addr / WordsPerLine;
    auto It = Lines.find(Line);
    if (It == Lines.end()) {
      if (Fifo.size() == Capacity) {
        Lines.erase(Fifo.front());
        Fifo.pop_front();
      }
      Fifo.push_back(Line);
      It = Lines.emplace(Line, LineEntry{}).first;
    }
    It->second.WordTs[Addr % WordsPerLine] = Cycle;
  }

  std::uint64_t lookup(std::uint32_t Addr) const {
    auto It = Lines.find(Addr / WordsPerLine);
    if (It == Lines.end())
      return NoTimestamp;
    return It->second.WordTs[Addr % WordsPerLine];
  }

private:
  struct LineEntry {
    std::array<std::uint64_t, 8> WordTs = {};
  };
  std::uint32_t Capacity;
  std::uint32_t WordsPerLine;
  std::unordered_map<std::uint32_t, LineEntry> Lines;
  std::deque<std::uint32_t> Fifo;
};

class CacheLineTimestampTable {
public:
  explicit CacheLineTimestampTable(std::uint32_t NumEntries,
                                   std::uint32_t WordsPerLine,
                                   std::uint32_t Associativity = 1)
      : WordsPerLine(WordsPerLine), Assoc(Associativity),
        Sets(NumEntries / Associativity), Table(NumEntries) {}

  std::uint64_t exchange(std::uint32_t Addr, std::uint64_t Cycle) {
    std::uint32_t Line = Addr / WordsPerLine;
    std::uint32_t Set = Line % Sets;
    std::uint32_t Tag = Line / Sets;
    std::uint32_t Base = Set * Assoc;
    for (std::uint32_t W = 0; W < Assoc; ++W) {
      Entry &E = Table[Base + W];
      if (E.Valid && E.Tag == Tag) {
        std::uint64_t Old = E.Ts;
        E.Ts = Cycle;
        return Old;
      }
    }
    std::uint32_t Victim = 0;
    for (std::uint32_t W = 1; W < Assoc; ++W)
      if (!Table[Base + W].Valid ||
          Table[Base + W].Ts < Table[Base + Victim].Ts)
        Victim = W;
    Entry &E = Table[Base + Victim];
    E.Valid = true;
    E.Tag = Tag;
    E.Ts = Cycle;
    return NoTimestamp;
  }

private:
  struct Entry {
    bool Valid = false;
    std::uint32_t Tag = 0;
    std::uint64_t Ts = 0;
  };
  std::uint32_t WordsPerLine;
  std::uint32_t Assoc;
  std::uint32_t Sets;
  std::vector<Entry> Table;
};

class LocalVarTimestampFile {
public:
  explicit LocalVarTimestampFile(std::uint32_t NumSlots)
      : Slots(NumSlots, NoTimestamp) {}

  int reserve(std::uint32_t Count) {
    if (Top + Count > Slots.size())
      return -1;
    int Base = static_cast<int>(Top);
    for (std::uint32_t S = 0; S < Count; ++S)
      Slots[Top + S] = NoTimestamp;
    Top += Count;
    return Base;
  }

  void release(std::uint32_t Base, std::uint32_t Count) {
    assert(Base + Count == Top && "non-stack release");
    (void)Count;
    Top = Base;
  }

  std::uint64_t read(std::uint32_t Slot) const { return Slots[Slot]; }
  void write(std::uint32_t Slot, std::uint64_t Cycle) { Slots[Slot] = Cycle; }
  std::uint32_t used() const { return Top; }

private:
  std::vector<std::uint64_t> Slots;
  std::uint32_t Top = 0;
};

struct ComparatorBank {
  std::uint32_t LoopId = 0;
  std::uint64_t Activation = 0;
  bool Traced = false;

  std::uint64_t EntryTime = 0;
  std::uint64_t CurThreadStart = 0;
  std::uint64_t PrevThreadStart = 0;

  static constexpr std::uint64_t NoArc = ~std::uint64_t(0);
  std::uint64_t MinArcPrev = NoArc;
  std::uint64_t MinArcEarlier = NoArc;
  std::int32_t MinArcPrevPc = -1;
  std::int32_t MinArcEarlierPc = -1;

  std::uint64_t NewLoadLines = 0;
  std::uint64_t NewStoreLines = 0;
  bool Overflowed = false;

  int SlotBase = -1;
  std::uint32_t SlotCount = 0;
  std::vector<std::pair<std::uint16_t, std::uint32_t>> RegSlots;
};

class TraceEngine : public interp::TraceSink {
public:
  TraceEngine(const sim::HydraConfig &Cfg, std::vector<LoopTraceInfo> LoopInfos,
              bool ExtendedPcBinning)
      : Cfg(Cfg), Loops(std::move(LoopInfos)),
        ExtendedPcBinning(ExtendedPcBinning),
        HeapTs(Cfg.HeapTimestampFifoLines, Cfg.WordsPerLine),
        LoadLineTs(Cfg.LoadTimestampEntries, Cfg.WordsPerLine,
                   Cfg.OverflowTableAssoc),
        StoreLineTs(Cfg.StoreTimestampEntries, Cfg.WordsPerLine,
                    Cfg.OverflowTableAssoc),
        LocalTs(Cfg.LocalVarSlots), Stats(Loops.size()) {}

  std::uint32_t onHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                           std::int32_t Pc) override {
    ++Events.HeapLoads;
    LastEventTime = Cycle;
    if (Active.empty())
      return 0;
    checkLoadArc(HeapTs.lookup(Addr), Cycle, Pc);
    std::uint64_t OldLineTs = LoadLineTs.exchange(Addr, Cycle);
    for (ComparatorBank &Bank : Active) {
      if (!Bank.Traced)
        continue;
      if (OldLineTs == NoTimestamp || OldLineTs < Bank.CurThreadStart) {
        ++Bank.NewLoadLines;
        if (Bank.NewLoadLines > Cfg.SpecLoadLines)
          Bank.Overflowed = true;
      }
    }
    return 0;
  }

  std::uint32_t onHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                            std::int32_t Pc) override {
    (void)Pc;
    ++Events.HeapStores;
    LastEventTime = Cycle;
    HeapTs.recordStore(Addr, Cycle);
    if (Active.empty())
      return 0;
    std::uint64_t OldLineTs = StoreLineTs.exchange(Addr, Cycle);
    for (ComparatorBank &Bank : Active) {
      if (!Bank.Traced)
        continue;
      if (OldLineTs == NoTimestamp || OldLineTs < Bank.CurThreadStart) {
        ++Bank.NewStoreLines;
        if (Bank.NewStoreLines > Cfg.SpecStoreLines)
          Bank.Overflowed = true;
      }
    }
    return 0;
  }

  std::uint32_t onLocalLoad(std::uint64_t Activation, std::uint16_t Reg,
                            std::uint64_t Cycle, std::int32_t Pc) override {
    ++Events.LocalLoads;
    LastEventTime = Cycle;
    for (auto It = Active.rbegin(); It != Active.rend(); ++It) {
      if (It->Activation != Activation)
        continue;
      for (const auto &[R, Slot] : It->RegSlots) {
        if (R == Reg) {
          checkLoadArc(LocalTs.read(Slot), Cycle, Pc);
          return 0;
        }
      }
    }
    return 0;
  }

  std::uint32_t onLocalStore(std::uint64_t Activation, std::uint16_t Reg,
                             std::uint64_t Cycle, std::int32_t Pc) override {
    (void)Pc;
    ++Events.LocalStores;
    LastEventTime = Cycle;
    for (auto It = Active.rbegin(); It != Active.rend(); ++It) {
      if (It->Activation != Activation)
        continue;
      for (const auto &[R, Slot] : It->RegSlots) {
        if (R == Reg) {
          LocalTs.write(Slot, Cycle);
          return 0;
        }
      }
    }
    return 0;
  }

  std::uint32_t onLoopStart(std::uint32_t LoopId, std::uint64_t Activation,
                            std::uint64_t Cycle) override {
    ++Events.LoopStarts;
    LastEventTime = Cycle;
    int Parent = Active.empty() ? -1 : static_cast<int>(Active.back().LoopId);
    ++ParentVotes[LoopId][Parent];

    ComparatorBank Bank;
    Bank.LoopId = LoopId;
    Bank.Activation = Activation;

    bool WantTrace = tracedCount() < Cfg.ComparatorBanks;
    if (WantTrace) {
      std::vector<std::uint16_t> NewLocals;
      for (std::uint16_t Reg : Loops[LoopId].AnnotatedLocals) {
        bool Covered = false;
        for (const ComparatorBank &B : Active) {
          if (B.Activation != Activation)
            continue;
          for (const auto &[R, Slot] : B.RegSlots)
            Covered |= R == Reg;
        }
        if (!Covered)
          NewLocals.push_back(Reg);
      }
      int Base = LocalTs.reserve(static_cast<std::uint32_t>(NewLocals.size()));
      if (Base < 0) {
        WantTrace = false;
      } else {
        Bank.SlotBase = Base;
        Bank.SlotCount = static_cast<std::uint32_t>(NewLocals.size());
        for (std::uint32_t S = 0; S < NewLocals.size(); ++S)
          Bank.RegSlots.emplace_back(NewLocals[S],
                                     static_cast<std::uint32_t>(Base) + S);
        PeakSlots = std::max(PeakSlots, LocalTs.used());
      }
    }

    Bank.Traced = WantTrace;
    if (WantTrace) {
      Bank.EntryTime = Bank.CurThreadStart = Bank.PrevThreadStart = Cycle;
      ++Stats[LoopId].Entries;
    } else {
      ++Stats[LoopId].UntracedEntries;
    }
    Active.push_back(std::move(Bank));
    PeakBanks = std::max(PeakBanks, tracedCount());
    PeakNest = std::max(PeakNest, static_cast<std::uint32_t>(Active.size()));
    return 0;
  }

  std::uint32_t onLoopIter(std::uint32_t LoopId, std::uint64_t Cycle) override {
    ++Events.LoopIters;
    LastEventTime = Cycle;
    ComparatorBank *Bank = findTraced(LoopId);
    if (!Bank)
      return 0;
    ThreadSizeCycles.record(Cycle - Bank->CurThreadStart);
    finalizeThread(*Bank);
    Bank->PrevThreadStart = Bank->CurThreadStart;
    Bank->CurThreadStart = Cycle;
    return 0;
  }

  std::uint32_t onLoopEnd(std::uint32_t LoopId, std::uint64_t Cycle) override {
    ++Events.LoopEnds;
    LastEventTime = Cycle;
    bool OnStack = false;
    for (const ComparatorBank &B : Active)
      OnStack |= B.LoopId == LoopId;
    if (!OnStack)
      return 0;
    while (!Active.empty()) {
      ComparatorBank Bank = std::move(Active.back());
      Active.pop_back();
      closeBank(Bank, Cycle);
      if (Bank.LoopId == LoopId)
        break;
    }
    return 0;
  }

  void onReturn(std::uint64_t Activation) override {
    ++Events.Returns;
    while (!Active.empty() && Active.back().Activation == Activation) {
      ComparatorBank Bank = std::move(Active.back());
      Active.pop_back();
      closeBank(Bank, LastEventTime);
    }
  }

  std::uint32_t onReadStats(std::uint32_t LoopId,
                            std::uint64_t Cycle) override {
    (void)LoopId;
    ++Events.ReadStats;
    LastEventTime = Cycle;
    return 0;
  }

  const StlStats &stats(std::uint32_t LoopId) const { return Stats[LoopId]; }
  std::uint32_t numLoops() const {
    return static_cast<std::uint32_t>(Stats.size());
  }
  std::uint32_t peakBanksInUse() const { return PeakBanks; }
  std::uint32_t peakLocalSlots() const { return PeakSlots; }
  std::uint32_t peakDynamicNest() const { return PeakNest; }

  std::vector<int> dynamicParents() const {
    std::vector<int> Parents(Stats.size(), -1);
    for (const auto &[LoopId, Votes] : ParentVotes) {
      int Best = -1;
      std::uint64_t BestVotes = 0;
      for (const auto &[Parent, Count] : Votes) {
        if (Count > BestVotes) {
          Best = Parent;
          BestVotes = Count;
        }
      }
      Parents[LoopId] = Best;
    }
    for (std::uint32_t L = 0; L < Parents.size(); ++L) {
      std::vector<bool> Seen(Parents.size(), false);
      std::uint32_t Cur = L;
      Seen[L] = true;
      while (Parents[Cur] >= 0) {
        std::uint32_t P = static_cast<std::uint32_t>(Parents[Cur]);
        if (Seen[P]) {
          Parents[Cur] = -1;
          break;
        }
        Seen[P] = true;
        Cur = P;
      }
    }
    return Parents;
  }

private:
  std::uint32_t tracedCount() const {
    std::uint32_t N = 0;
    for (const ComparatorBank &B : Active)
      N += B.Traced;
    return N;
  }

  ComparatorBank *findTraced(std::uint32_t LoopId) {
    for (auto It = Active.rbegin(); It != Active.rend(); ++It)
      if (It->LoopId == LoopId)
        return It->Traced ? &*It : nullptr;
    return nullptr;
  }

  void checkLoadArc(std::uint64_t StoreTs, std::uint64_t Cycle,
                    std::int32_t Pc) {
    if (StoreTs == NoTimestamp)
      return;
    for (ComparatorBank &Bank : Active) {
      if (!Bank.Traced)
        continue;
      if (StoreTs >= Bank.CurThreadStart)
        continue;
      if (StoreTs < Bank.EntryTime)
        continue;
      std::uint64_t Len = Cycle - StoreTs;
      if (StoreTs >= Bank.PrevThreadStart) {
        if (Len < Bank.MinArcPrev) {
          Bank.MinArcPrev = Len;
          Bank.MinArcPrevPc = Pc;
        }
      } else if (Len < Bank.MinArcEarlier) {
        Bank.MinArcEarlier = Len;
        Bank.MinArcEarlierPc = Pc;
      }
    }
  }

  void finalizeThread(ComparatorBank &Bank) {
    StlStats &S = Stats[Bank.LoopId];
    if (Bank.MinArcPrev != ComparatorBank::NoArc) {
      ++S.CritArcsPrev;
      S.CritLenPrev += Bank.MinArcPrev;
      if (ExtendedPcBinning) {
        PcBinStats &Bin = S.PcBins[Bank.MinArcPrevPc];
        ++Bin.CriticalArcs;
        Bin.AccumulatedLength += Bank.MinArcPrev;
      }
    }
    if (Bank.MinArcEarlier != ComparatorBank::NoArc) {
      ++S.CritArcsEarlier;
      S.CritLenEarlier += Bank.MinArcEarlier;
      if (ExtendedPcBinning) {
        PcBinStats &Bin = S.PcBins[Bank.MinArcEarlierPc];
        ++Bin.CriticalArcs;
        Bin.AccumulatedLength += Bank.MinArcEarlier;
      }
    }
    ++S.Threads;
    S.MaxLoadLines = std::max(S.MaxLoadLines, Bank.NewLoadLines);
    S.MaxStoreLines = std::max(S.MaxStoreLines, Bank.NewStoreLines);
    if (Bank.Overflowed)
      ++S.OverflowThreads;

    Bank.MinArcPrev = Bank.MinArcEarlier = ComparatorBank::NoArc;
    Bank.MinArcPrevPc = Bank.MinArcEarlierPc = -1;
    Bank.NewLoadLines = Bank.NewStoreLines = 0;
    Bank.Overflowed = false;
  }

  void closeBank(ComparatorBank &Bank, std::uint64_t Cycle) {
    if (Bank.Traced) {
      if (Cycle >= Bank.CurThreadStart)
        ThreadSizeCycles.record(Cycle - Bank.CurThreadStart);
      finalizeThread(Bank);
      Stats[Bank.LoopId].Cycles += Cycle - Bank.EntryTime;
    }
    if (Bank.SlotBase >= 0)
      LocalTs.release(static_cast<std::uint32_t>(Bank.SlotBase),
                      Bank.SlotCount);
  }

  sim::HydraConfig Cfg;
  std::vector<LoopTraceInfo> Loops;
  bool ExtendedPcBinning;

  HeapStoreTimestamps HeapTs;
  CacheLineTimestampTable LoadLineTs;
  CacheLineTimestampTable StoreLineTs;
  LocalVarTimestampFile LocalTs;

  // The seed engine's per-event bookkeeping (event counters folded into the
  // metrics export, and the thread-size histogram). Part of the measured
  // baseline: every event ticks a counter and every thread boundary records
  // a histogram sample, exactly as the production engine does.
  struct EventCounts {
    std::uint64_t HeapLoads = 0;
    std::uint64_t HeapStores = 0;
    std::uint64_t LocalLoads = 0;
    std::uint64_t LocalStores = 0;
    std::uint64_t LoopStarts = 0;
    std::uint64_t LoopIters = 0;
    std::uint64_t LoopEnds = 0;
    std::uint64_t Returns = 0;
    std::uint64_t ReadStats = 0;
  };

  std::vector<ComparatorBank> Active;
  std::vector<StlStats> Stats;
  std::map<std::uint32_t, std::map<int, std::uint64_t>> ParentVotes;
  std::uint32_t PeakBanks = 0;
  std::uint32_t PeakSlots = 0;
  std::uint32_t PeakNest = 0;
  std::uint64_t LastEventTime = 0;
  EventCounts Events;
  metrics::Histogram ThreadSizeCycles;
};

} // namespace legacy

namespace {

// --------------------------------------------------------------------------
// Capture: one annotated profiling run per workload x level, teed into an
// in-memory event vector while a live TraceEngine supplies the cycle
// charges (so the captured stream is exactly what the product pipeline's
// tracer consumes).
// --------------------------------------------------------------------------

class CaptureSink : public interp::TraceSink {
public:
  CaptureSink(interp::TraceSink &Down, std::vector<trace::Event> &Out)
      : Down(Down), Out(Out) {}

  // Per-event on purpose (eventBlock() stays null): capture runs outside
  // the timed windows, and the cost flow is identical either way.
  std::uint32_t onHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                           std::int32_t Pc) override {
    trace::Event E;
    E.Kind = trace::EventKind::HeapLoad;
    E.Addr = Addr;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Out.push_back(E);
    return Down.onHeapLoad(Addr, Cycle, Pc);
  }
  std::uint32_t onHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                            std::int32_t Pc) override {
    trace::Event E;
    E.Kind = trace::EventKind::HeapStore;
    E.Addr = Addr;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Out.push_back(E);
    return Down.onHeapStore(Addr, Cycle, Pc);
  }
  std::uint32_t onLocalLoad(std::uint64_t Activation, std::uint16_t Reg,
                            std::uint64_t Cycle, std::int32_t Pc) override {
    trace::Event E;
    E.Kind = trace::EventKind::LocalLoad;
    E.Activation = Activation;
    E.Reg = Reg;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Out.push_back(E);
    return Down.onLocalLoad(Activation, Reg, Cycle, Pc);
  }
  std::uint32_t onLocalStore(std::uint64_t Activation, std::uint16_t Reg,
                             std::uint64_t Cycle, std::int32_t Pc) override {
    trace::Event E;
    E.Kind = trace::EventKind::LocalStore;
    E.Activation = Activation;
    E.Reg = Reg;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Out.push_back(E);
    return Down.onLocalStore(Activation, Reg, Cycle, Pc);
  }
  std::uint32_t onLoopStart(std::uint32_t LoopId, std::uint64_t Activation,
                            std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::LoopStart;
    E.LoopId = LoopId;
    E.Activation = Activation;
    E.Cycle = Cycle;
    Out.push_back(E);
    return Down.onLoopStart(LoopId, Activation, Cycle);
  }
  std::uint32_t onLoopIter(std::uint32_t LoopId, std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::LoopIter;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    Out.push_back(E);
    return Down.onLoopIter(LoopId, Cycle);
  }
  std::uint32_t onLoopEnd(std::uint32_t LoopId, std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::LoopEnd;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    Out.push_back(E);
    return Down.onLoopEnd(LoopId, Cycle);
  }
  void onReturn(std::uint64_t Activation) override {
    trace::Event E;
    E.Kind = trace::EventKind::Return;
    E.Activation = Activation;
    Out.push_back(E);
    Down.onReturn(Activation);
  }
  void onCallSite(std::int32_t Pc, std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::CallSite;
    E.Pc = Pc;
    E.Cycle = Cycle;
    Out.push_back(E);
    Down.onCallSite(Pc, Cycle);
  }
  void onCallReturn(std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::CallReturn;
    E.Cycle = Cycle;
    Out.push_back(E);
    Down.onCallReturn(Cycle);
  }
  std::uint32_t onReadStats(std::uint32_t LoopId,
                            std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::ReadStats;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    Out.push_back(E);
    return Down.onReadStats(LoopId, Cycle);
  }

private:
  interp::TraceSink &Down;
  std::vector<trace::Event> &Out;
};

/// The new engine's observable results for one stream, as the acceptance
/// criteria freeze them: selection digest + exported tracer.* metrics.
struct EngineResults {
  std::uint64_t Digest = 0;
  std::string MetricsJson;
};

EngineResults readResults(const tracer::TraceEngine &Engine,
                          std::uint64_t ProgramCycles,
                          const sim::HydraConfig &Cfg) {
  EngineResults R;
  R.Digest =
      tracer::selectionDigest(tracer::selectStls(Engine, ProgramCycles, Cfg));
  metrics::Registry Reg;
  Engine.exportMetrics(Reg);
  R.MetricsJson = Reg.toJson().dump();
  return R;
}

struct CapturedStream {
  std::string Name; ///< "workload/level"
  std::vector<tracer::LoopTraceInfo> Loops;
  std::vector<trace::Event> Events;
  std::uint64_t RunCycles = 0;
  EngineResults Live; ///< from the capture run's own engine
};

/// One annotated run through the interpreter with \p Sink attached.
/// Returns the simulated cycle count.
std::uint64_t runAnnotated(const ir::Module &M, const sim::HydraConfig &Cfg,
                           interp::TraceSink &Sink) {
  interp::Heap H;
  interp::DirectMemoryPort Port(H, Cfg);
  interp::ExecContext Ctx(M, Cfg);
  Ctx.start(M.EntryFunction, {});
  std::uint64_t Cycles = Ctx.run(Port, &Sink, 0, ~0ull);
  // Direct ExecContext drivers flush the sink's event block at end of run
  // (Machine::run does this on the product path).
  interp::drainPending(Sink, Sink.eventBlock());
  return Cycles;
}

// --------------------------------------------------------------------------
// Timed passes
// --------------------------------------------------------------------------

/// Everything the legacy and the new engine must agree on, bit for bit.
struct AnalysisFacts {
  std::vector<legacy::StlStats> Stats;
  std::vector<int> Parents;
  std::uint32_t PeakBanks = 0;
  std::uint32_t PeakSlots = 0;
  std::uint32_t PeakNest = 0;

  bool operator==(const AnalysisFacts &O) const = default;
};

struct PassResult {
  double Ms = 0;
  std::uint64_t Events = 0;
  std::vector<AnalysisFacts> Facts;       // one per stream
  std::vector<EngineResults> NewResults;  // new-engine passes only
};

// Only engine construction + event consumption are timed; result
// extraction (selectStls, metrics export, stats copies) happens outside
// the window in both passes so the comparison isolates the event path.

PassResult runLegacyPass(const std::vector<CapturedStream> &Streams) {
  PassResult P;
  for (const CapturedStream &C : Streams) {
    Stopwatch S;
    legacy::TraceEngine Engine(sim::HydraConfig{}, C.Loops,
                               /*ExtendedPcBinning=*/true);
    for (const trace::Event &E : C.Events)
      trace::dispatchEvent(E, Engine);
    P.Ms += S.ms();
    P.Events += C.Events.size();
    AnalysisFacts F;
    for (std::uint32_t L = 0; L < Engine.numLoops(); ++L)
      F.Stats.push_back(Engine.stats(L));
    F.Parents = Engine.dynamicParents();
    F.PeakBanks = Engine.peakBanksInUse();
    F.PeakSlots = Engine.peakLocalSlots();
    F.PeakNest = Engine.peakDynamicNest();
    P.Facts.push_back(std::move(F));
  }
  return P;
}

PassResult runNewPass(const std::vector<CapturedStream> &Streams) {
  PassResult P;
  sim::HydraConfig Cfg;
  for (const CapturedStream &C : Streams) {
    Stopwatch S;
    tracer::TraceEngine Engine(Cfg, C.Loops, /*ExtendedPcBinning=*/true);
    interp::EventBlock *Blk = Engine.eventBlock();
    for (const trace::Event &E : C.Events)
      trace::dispatchEventBatched(E, Engine, Blk);
    interp::drainPending(Engine, Blk);
    P.Ms += S.ms();
    P.Events += C.Events.size();
    AnalysisFacts F;
    for (std::uint32_t L = 0; L < Engine.numLoops(); ++L)
      F.Stats.push_back(Engine.stats(L));
    F.Parents = Engine.dynamicParents();
    F.PeakBanks = Engine.peakBanksInUse();
    F.PeakSlots = Engine.peakLocalSlots();
    F.PeakNest = Engine.peakDynamicNest();
    P.Facts.push_back(std::move(F));
    P.NewResults.push_back(readResults(Engine, C.RunCycles, Cfg));
  }
  return P;
}

} // namespace

int main(int argc, char **argv) {
  bool Quick = false;
  for (int A = 1; A < argc; ++A)
    if (std::strcmp(argv[A], "--quick") == 0)
      Quick = true;

  printBanner("Tracer throughput - block-drained SoA core vs seed engine",
              "the TEST analysis underneath Tables 3-6");

  sim::HydraConfig Cfg;
  const std::vector<workloads::Workload> &All = workloads::allWorkloads();
  std::size_t Count = Quick ? std::min<std::size_t>(8, All.size())
                            : All.size();

  // Capture (untimed): per workload x level, one profiled run teed into
  // memory, plus a second live run through the batched interpreter path to
  // pin live-batched == live-per-event.
  std::vector<CapturedStream> Streams;
  for (std::size_t I = 0; I < Count; ++I) {
    ir::Module Plain = All[I].Build();
    analysis::ModuleAnalysis MA(Plain);
    for (jit::AnnotationLevel Level :
         {jit::AnnotationLevel::Base, jit::AnnotationLevel::Optimized}) {
      jit::AnnotatedModule Ann = jit::annotateModule(Plain, MA, Level);
      CapturedStream C;
      C.Name = All[I].Name +
               (Level == jit::AnnotationLevel::Base ? "/base" : "/opt");
      C.Loops = Ann.LoopInfos;

      tracer::TraceEngine LiveEngine(Cfg, C.Loops, /*ExtendedPcBinning=*/true);
      CaptureSink Capture(LiveEngine, C.Events);
      C.RunCycles = runAnnotated(Ann.Module, Cfg, Capture);
      C.Live = readResults(LiveEngine, C.RunCycles, Cfg);

      tracer::TraceEngine BatchedEngine(Cfg, C.Loops,
                                        /*ExtendedPcBinning=*/true);
      std::uint64_t BatchedCycles = runAnnotated(Ann.Module, Cfg,
                                                 BatchedEngine);
      EngineResults Batched = readResults(BatchedEngine, BatchedCycles, Cfg);
      if (BatchedCycles != C.RunCycles || !(Batched.Digest == C.Live.Digest) ||
          Batched.MetricsJson != C.Live.MetricsJson) {
        std::printf("FAIL: %s: live batched run diverged from live "
                    "per-event run\n",
                    C.Name.c_str());
        return 1;
      }
      Streams.push_back(std::move(C));
    }
  }
  std::uint64_t TotalEvents = 0;
  for (const CapturedStream &C : Streams)
    TotalEvents += C.Events.size();
  std::printf("registry: %zu streams (%zu workloads x 2 levels), "
              "%llu events%s\n\n",
              Streams.size(), Count, (unsigned long long)TotalEvents,
              Quick ? "  [--quick]" : "");

  // Warm-up primes code and the captured streams' pages.
  runNewPass(Streams);

  PassResult Legacy = runLegacyPass(Streams);
  PassResult New1 = runNewPass(Streams);
  PassResult New2 = runNewPass(Streams);

  // Bit-exactness: the SoA core is a pure representation change. Any
  // divergence voids the measurement.
  for (std::size_t I = 0; I < Streams.size(); ++I) {
    if (!(Legacy.Facts[I] == New1.Facts[I])) {
      std::printf("FAIL: %s: new engine diverged from the seed engine "
                  "(StlStats/parents/peaks)\n",
                  Streams[I].Name.c_str());
      return 1;
    }
    if (!(New1.Facts[I] == New2.Facts[I]) ||
        New1.NewResults[I].Digest != New2.NewResults[I].Digest) {
      std::printf("FAIL: %s: new engine passes disagree\n",
                  Streams[I].Name.c_str());
      return 1;
    }
    if (New1.NewResults[I].Digest != Streams[I].Live.Digest ||
        New1.NewResults[I].MetricsJson != Streams[I].Live.MetricsJson) {
      std::printf("FAIL: %s: replayed results diverged from the live "
                  "profiled run (digest/metrics)\n",
                  Streams[I].Name.c_str());
      return 1;
    }
  }

  double NewMs = std::min(New1.Ms, New2.Ms);
  double JitterPct = (std::max(New1.Ms, New2.Ms) / NewMs - 1.0) * 100.0;
  auto Eps = [](std::uint64_t Events, double Ms) {
    return static_cast<double>(Events) / (Ms / 1000.0) / 1e6;
  };
  double LegacyEps = Eps(Legacy.Events, Legacy.Ms);
  double NewEps = Eps(New1.Events, NewMs);
  double Speedup = NewEps / LegacyEps;

  TextTable T;
  T.setHeader({"engine", "wall ms", "Mevents/s", "speedup"});
  T.addRow({"per-event pointer chasing (seed)", fmt(Legacy.Ms, 1),
            fmt(LegacyEps, 1), "1.00x"});
  T.addRow({"block-drained SoA core", fmt(NewMs, 1), fmt(NewEps, 1),
            fmt(Speedup, 2) + "x"});
  T.print();

  std::printf("\nall %zu streams bit-identical: StlStats + PC bins + dynamic "
              "parents + peaks vs the seed engine,\nselection digests + "
              "tracer.* metrics vs the live profiled run (batched and "
              "per-event alike)\n",
              Streams.size());
  std::printf("new-engine pass-to-pass jitter: %.2f%%\n", JitterPct);

  double Gate = Quick ? 1.2 : 1.5;
  if (Speedup >= Gate) {
    std::printf("\nPASS: SoA core sustains %.2fx the seed engine's "
                "events/sec (>= %.1fx gate)\n",
                Speedup, Gate);
    return 0;
  }
  if (JitterPct > 10.0) {
    std::printf("\nPASS (unresolved): speedup %.2fx below the %.1fx gate "
                "but runner jitter is %.2f%%; measurement inconclusive\n",
                Speedup, Gate, JitterPct);
    return 0;
  }
  // Exit 3 distinguishes "bit-identical but below the throughput gate"
  // from a semantic divergence (exit 1): scripts/ci_perf_smoke.sh treats
  // the former as a soft warning and only the latter as a CI failure.
  std::printf("\nFAIL: SoA core sustains only %.2fx the seed engine's "
              "events/sec (>= %.1fx gate)\n",
              Speedup, Gate);
  return 3;
}
