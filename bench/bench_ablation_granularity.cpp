//===- bench/bench_ablation_granularity.cpp - Violation granularity --------==//
//
// Hydra detects RAW violations with per-word speculation bits; coarser
// per-line detection would be cheaper hardware but causes false
// violations. This ablation runs the speculative engine under both
// granularities (results must stay bit-identical; only performance moves).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Ablation - violation detection granularity (word vs line)",
              "Hydra design choice (Section 3.1)");
  TextTable T;
  T.setHeader({"Benchmark", "grain", "violations", "restarts",
               "actual speedup", "checksum ok"});
  for (const char *Name :
       {"moldyn", "BitOps", "shallow", "decJpeg", "Huffman"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    std::uint64_t Checksum = 0;
    bool First = true;
    bool AllMatch = true;
    for (auto Grain : {sim::ViolationGranularity::Word,
                       sim::ViolationGranularity::Line}) {
      pipeline::PipelineConfig Cfg;
      Cfg.Hw.ViolationGrain = Grain;
      pipeline::Jrpm J(W->Build(), Cfg);
      auto R = J.runAll();
      if (First) {
        Checksum = R.TlsRun.ReturnValue;
        First = false;
      }
      bool Match = R.TlsRun.ReturnValue == Checksum &&
                   R.TlsRun.ReturnValue == R.PlainRun.ReturnValue;
      AllMatch &= Match;
      std::uint64_t Violations = 0, Restarts = 0;
      for (const auto &[LoopId, S] : R.TlsLoopStats) {
        Violations += S.Violations;
        Restarts += S.Restarts;
      }
      T.addRow({Name,
                Grain == sim::ViolationGranularity::Word ? "word" : "line",
                formatString("%llu", static_cast<unsigned long long>(
                                         Violations)),
                formatString("%llu",
                             static_cast<unsigned long long>(Restarts)),
                fmt(R.actualSpeedup()), Match ? "yes" : "NO"});
    }
    T.addSeparator();
    if (!AllMatch)
      return 1;
  }
  T.print();
  std::printf("\nLine-granular detection adds false sharing violations on\n"
              "loops whose neighbouring iterations touch adjacent words;\n"
              "correctness is unaffected (TLS restarts hide everything).\n");
  return 0;
}
