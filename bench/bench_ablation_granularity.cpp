//===- bench/bench_ablation_granularity.cpp - Violation granularity --------==//
//
// Hydra detects RAW violations with per-word speculation bits; coarser
// per-line detection would be cheaper hardware but causes false
// violations. This ablation runs the speculative engine under both
// granularities (results must stay bit-identical; only performance moves).
//
// Trace-driven: the violation grain only affects the speculative (TLS)
// engine — profiling and STL selection are grain-independent — so the
// profiling phase is recorded once and its selection replayed once from
// the trace, shared by both grains. Only the speculative runs themselves
// stay live. The original methodology (full pipeline per grain) is run and
// timed as the baseline.
//
// Pooled: each workload's unit (live baseline, record+replay, two live
// speculative runs) is one job; the list runs serially and then on the
// work-stealing pool into the same preassigned slots.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "trace/Replay.h"

#include <mutex>

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Ablation - violation detection granularity (word vs line)",
              "Hydra design choice (Section 3.1)");
  const char *Names[] = {"moldyn", "BitOps", "shallow", "decJpeg", "Huffman"};

  std::mutex PhaseM;
  double LiveMs = 0, RecordMs = 0, AnalyzeMs = 0, SpecMs = 0;
  std::vector<std::vector<std::vector<std::string>>> Rows(
      std::size(Names), std::vector<std::vector<std::string>>(2));
  std::vector<char> Matched(std::size(Names), 0);

  std::vector<std::function<void()>> Jobs;
  for (std::size_t Wi = 0; Wi < std::size(Names); ++Wi) {
    Jobs.push_back([&, Wi]() {
      const char *Name = Names[Wi];
      const workloads::Workload *W = workloads::findWorkload(Name);

      // Old methodology, timed as the baseline: plain + annotated profiling
      // + speculative execution per grain.
      for (auto Grain : {sim::ViolationGranularity::Word,
                         sim::ViolationGranularity::Line}) {
        pipeline::PipelineConfig Cfg;
        Cfg.Hw.ViolationGrain = Grain;
        Stopwatch S;
        pipeline::Jrpm J(W->Build(), Cfg);
        J.runAll();
        std::lock_guard<std::mutex> L(PhaseM);
        LiveMs += S.ms();
      }

      // Profile once, recorded; the selection is replayed from the trace
      // and shared by both grains.
      std::string Path = benchTracePath(std::string("grain-") + Name);
      {
        Stopwatch S;
        pipeline::PipelineConfig Cfg;
        Cfg.WorkloadName = Name;
        Cfg.RecordTracePath = Path;
        pipeline::Jrpm J(W->Build(), Cfg);
        J.profileAndSelect();
        std::lock_guard<std::mutex> L(PhaseM);
        RecordMs += S.ms();
      }
      Stopwatch Analyze;
      trace::Reader R(Path);
      trace::ReplayOutcome Profile = trace::selectFromTrace(R);
      {
        std::lock_guard<std::mutex> L(PhaseM);
        AnalyzeMs += Analyze.ms();
      }
      std::remove(Path.c_str());

      // Only the speculative runs depend on the grain; they stay live.
      bool AllMatch = true;
      std::uint64_t Checksum = 0;
      interp::RunResult Plain;
      bool First = true;
      int Gi = 0;
      for (auto Grain : {sim::ViolationGranularity::Word,
                         sim::ViolationGranularity::Line}) {
        pipeline::PipelineConfig Cfg;
        Cfg.Hw.ViolationGrain = Grain;
        Stopwatch S;
        pipeline::Jrpm J(W->Build(), Cfg);
        if (First)
          Plain = J.runPlain();
        pipeline::Jrpm::TlsOutcome Tls = J.runSpeculative(Profile.Selection);
        {
          std::lock_guard<std::mutex> L(PhaseM);
          SpecMs += S.ms();
        }
        if (First) {
          Checksum = Tls.Run.ReturnValue;
          First = false;
        }
        bool Match = Tls.Run.ReturnValue == Checksum &&
                     Tls.Run.ReturnValue == Plain.ReturnValue;
        AllMatch &= Match;
        std::uint64_t Violations = 0, Restarts = 0;
        for (const auto &[LoopId, S2] : Tls.LoopStats) {
          Violations += S2.Violations;
          Restarts += S2.Restarts;
        }
        double Speedup = Tls.Run.Cycles
                             ? static_cast<double>(Plain.Cycles) /
                                   static_cast<double>(Tls.Run.Cycles)
                             : 1.0;
        Rows[Wi][Gi++] = {
            Name, Grain == sim::ViolationGranularity::Word ? "word" : "line",
            formatString("%llu",
                         static_cast<unsigned long long>(Violations)),
            formatString("%llu", static_cast<unsigned long long>(Restarts)),
            fmt(Speedup), Match ? "yes" : "NO"};
      }
      Matched[Wi] = AllMatch;
    });
  }

  Stopwatch Serial;
  for (const std::function<void()> &J : Jobs)
    J();
  double SerialMs = Serial.ms();
  double LiveSnap = LiveMs, RecordSnap = RecordMs, AnalyzeSnap = AnalyzeMs,
         SpecSnap = SpecMs;
  std::vector<std::vector<std::vector<std::string>>> SerialRows = Rows;

  PoolRun P = runOnPool(Jobs);

  TextTable T;
  T.setHeader({"Benchmark", "grain", "violations", "restarts",
               "actual speedup", "checksum ok"});
  bool AllMatch = true;
  for (std::size_t Wi = 0; Wi < std::size(Names); ++Wi) {
    for (const auto &Row : Rows[Wi])
      T.addRow(Row);
    T.addSeparator();
    AllMatch &= Matched[Wi] != 0;
  }
  T.print();
  if (!AllMatch)
    return 1;
  std::printf("\nLine-granular detection adds false sharing violations on\n"
              "loops whose neighbouring iterations touch adjacent words;\n"
              "correctness is unaffected (TLS restarts hide everything).\n");
  double NewMs = RecordSnap + AnalyzeSnap + SpecSnap;
  std::printf("\nrecord-once/replay-many, 2-configuration sweep:\n"
              "  2 full pipeline runs (one per grain)         %8.1f ms\n"
              "  1 recorded profile + 1 replayed selection\n"
              "  + 2 live speculative runs                    %8.1f ms "
              "(record %.1f, analyze %.1f, spec %.1f)\n"
              "  wall-clock reduction: %.2fx (the speculative engine must\n"
              "  still run under each grain; only profiling is amortized)\n",
              LiveSnap, NewMs, RecordSnap, AnalyzeSnap, SpecSnap,
              LiveSnap / NewMs);
  printPoolReduction("per-workload grain-comparison", Jobs.size(), SerialMs,
                     P, Rows == SerialRows);
  return Rows == SerialRows ? 0 : 1;
}
