//===- bench/bench_future_hw.cpp - Section 6.1's future-hardware claim -----==//
//
// "Choosing STLs dynamically also allows selected STLs to change as CMP
// designs evolve. For example, larger STLs that would cause speculative
// buffer overflows in our current system could be chosen during runtime by
// a future Hydra design with larger speculative store buffers and L1
// caches." This bench re-profiles (the same binaries, no recompilation)
// under scaled speculation buffers and reports how selection climbs the
// loop nests.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Builders.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Future-hardware what-if: scaling the speculation buffers",
              "Section 6.1 (dynamic reselection as CMP designs evolve)");
  TextTable T;
  T.setHeader({"Benchmark", "store buffer", "load lines", "sel", "avg height",
               "overflowing candidates", "pred speedup", "actual speedup"});
  struct Sweep {
    std::uint32_t StoreLines;
    std::uint32_t LoadLines;
  };
  const Sweep Sweeps[] = {{16, 128}, {64, 512}, {512, 4096}};
  for (const char *Name : {"FourierTest", "LuFactor", "shallow"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    for (const Sweep &S : Sweeps) {
      pipeline::PipelineConfig Cfg;
      Cfg.Hw.SpecStoreLines = S.StoreLines;
      Cfg.Hw.SpecLoadLines = S.LoadLines;
      Cfg.Hw.StoreTimestampEntries = S.StoreLines;
      Cfg.Hw.LoadTimestampEntries = S.LoadLines;
      pipeline::Jrpm J(W->Build(), Cfg);
      auto R = J.runAll();
      if (R.TlsRun.ReturnValue != R.PlainRun.ReturnValue)
        return 1;
      const analysis::ModuleAnalysis &MA = J.moduleAnalysis();
      std::uint32_t Selected = 0, Overflowing = 0;
      double HeightSum = 0;
      for (const auto &Rep : R.Selection.Loops) {
        if (Rep.Stats.overflowFreq() > 0.25)
          ++Overflowing;
        if (!Rep.Selected || Rep.Coverage <= 0.005)
          continue;
        ++Selected;
        const auto &C = MA.candidate(Rep.LoopId);
        HeightSum += MA.func(C.FuncIndex).LI.heightOf(C.LoopIdx);
      }
      T.addRow({Name,
                formatString("%u lines (%ukB)", S.StoreLines,
                             S.StoreLines * 32 / 1024),
                formatString("%u", S.LoadLines),
                formatString("%u", Selected),
                fmt(Selected ? HeightSum / Selected : 0, 2),
                formatString("%u", Overflowing),
                fmt(R.Selection.PredictedSpeedup), fmt(R.actualSpeedup())});
    }
    T.addSeparator();
  }
  T.print();
  std::printf("\nShrinking the buffers makes higher loops overflow during\n"
              "tracing (selection retreats down the nest); growing them\n"
              "lets the same unmodified programs pick coarser STLs on the\n"
              "next profiling pass — no recompilation, just re-selection.\n");
  return 0;
}
