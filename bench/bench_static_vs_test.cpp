//===- bench/bench_static_vs_test.cpp - Static pre-filter vs dynamic TEST --==//
//
// Compares the static dependence pre-filter against the dynamic TEST
// tracer across the workload registry. The pre-filter rejects loops whose
// serial memory recurrence provably keeps every cross-iteration arc inside
// the Hydra forwarding delay; TEST measures the arcs and the selector
// (Equations 1 and 2) decides from profile data. Treating "TEST did not
// select the loop" as ground truth, the bench reports the precision and
// recall of the static rejections, and the profiling cycles the pre-filter
// saves. A *false rejection* — a statically rejected loop that dynamic
// TEST would have selected — means lost speedup and fails the bench.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "frontend/Ast.h"
#include "frontend/Lower.h"

#include <set>

using namespace jrpm;
using namespace jrpm::benchutil;

namespace {

struct WorkloadStats {
  std::uint32_t Loops = 0;
  std::uint32_t StaticRejected = 0;
  std::uint32_t DynSelected = 0;
  std::uint32_t DynNotSelected = 0;
  std::uint32_t FalseRejections = 0;
  std::uint32_t TrueRejections = 0;
  std::uint64_t CyclesOff = 0;
  std::uint64_t CyclesOn = 0;
};

WorkloadStats compare(const ir::Module &M) {
  WorkloadStats S;

  // Dynamic ground truth: the paper's optimistic policy, profiled by TEST.
  pipeline::PipelineConfig Off;
  pipeline::Jrpm JOff(M, Off);
  pipeline::Jrpm::ProfileOutcome POff = JOff.profileAndSelect();
  std::set<std::uint32_t> Selected(POff.Selection.SelectedLoops.begin(),
                                   POff.Selection.SelectedLoops.end());
  S.CyclesOff = POff.Run.Cycles;

  // Static verdicts, and the profiled cost once the rejects are unplugged.
  pipeline::PipelineConfig On;
  On.StaticPrefilter = true;
  pipeline::Jrpm JOn(M, On);
  S.CyclesOn = JOn.profileAndSelect().Run.Cycles;

  for (const analysis::CandidateStl &C : JOn.moduleAnalysis().candidates()) {
    ++S.Loops;
    bool DynSel = Selected.count(C.LoopId) != 0;
    S.DynSelected += DynSel;
    S.DynNotSelected += !DynSel;
    if (C.Kind == analysis::RejectKind::SerialMemoryRecurrence) {
      ++S.StaticRejected;
      if (DynSel)
        ++S.FalseRejections;
      else
        ++S.TrueRejections;
    }
  }
  return S;
}

/// The textbook serial memory recurrence the pre-filter exists for:
/// while (heap[p] < n) heap[p] = heap[p] + 1 — every iteration reloads the
/// cell its predecessor stored a handful of cycles earlier.
ir::Module serialRecurrenceModule(std::int64_t Bound) {
  using namespace front;
  ProgramDef P;
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("p", allocWords(c(8))),
      store(v("p"), Ex(), c(0)),
      whileLoop(lt(ld(v("p")), c(Bound)),
                store(v("p"), Ex(), 0, add(ld(v("p")), c(1)))),
      ret(ld(v("p"))),
  });
  P.Functions.push_back(std::move(Main));
  return front::lowerProgram(P);
}

std::string ratioOrDash(std::uint32_t Num, std::uint32_t Den) {
  return Den ? fmt(static_cast<double>(Num) / Den, 2) : std::string("-");
}

} // namespace

int main() {
  printBanner("Static dependence pre-filter vs dynamic TEST selection",
              "the Section 4.1 candidate policy");

  // One job per registry workload, writing into its preassigned slot; the
  // list runs serially first (timed), then on the work-stealing pool, and
  // the two result sets must agree exactly.
  const std::vector<workloads::Workload> &All = workloads::allWorkloads();
  std::vector<WorkloadStats> Stats(All.size());
  std::vector<std::function<void()>> Jobs;
  for (std::size_t Wi = 0; Wi < All.size(); ++Wi)
    Jobs.push_back([&, Wi]() { Stats[Wi] = compare(All[Wi].Build()); });

  Stopwatch Serial;
  for (const std::function<void()> &J : Jobs)
    J();
  double SerialMs = Serial.ms();
  std::vector<WorkloadStats> SerialStats = Stats;

  PoolRun P = runOnPool(Jobs);
  bool SlotsIdentical = true;
  for (std::size_t Wi = 0; Wi < All.size(); ++Wi)
    SlotsIdentical &= Stats[Wi].CyclesOff == SerialStats[Wi].CyclesOff &&
                      Stats[Wi].CyclesOn == SerialStats[Wi].CyclesOn &&
                      Stats[Wi].StaticRejected ==
                          SerialStats[Wi].StaticRejected &&
                      Stats[Wi].DynSelected == SerialStats[Wi].DynSelected;

  TextTable T;
  T.setHeader({"Benchmark", "loops", "static rej", "dyn sel", "false rej",
               "profiled off", "profiled on", "cyc saved"});
  WorkloadStats Total;
  std::string Category;
  for (std::size_t Wi = 0; Wi < All.size(); ++Wi) {
    const workloads::Workload &W = All[Wi];
    if (W.Category != Category) {
      Category = W.Category;
      T.addSeparator();
    }
    const WorkloadStats &S = Stats[Wi];
    T.addRow({W.Name, formatString("%u", S.Loops),
              formatString("%u", S.StaticRejected),
              formatString("%u", S.DynSelected),
              formatString("%u", S.FalseRejections),
              formatString("%llu", (unsigned long long)S.CyclesOff),
              formatString("%llu", (unsigned long long)S.CyclesOn),
              formatString("%lld",
                           (long long)(S.CyclesOff - S.CyclesOn))});
    Total.Loops += S.Loops;
    Total.StaticRejected += S.StaticRejected;
    Total.DynSelected += S.DynSelected;
    Total.DynNotSelected += S.DynNotSelected;
    Total.FalseRejections += S.FalseRejections;
    Total.TrueRejections += S.TrueRejections;
    Total.CyclesOff += S.CyclesOff;
    Total.CyclesOn += S.CyclesOn;
  }
  T.print();

  std::printf(
      "\nRegistry: %u loops, %u static serial rejections, %u false "
      "(precision %s, recall vs dynamically-unselected %s).\n",
      Total.Loops, Total.StaticRejected, Total.FalseRejections,
      ratioOrDash(Total.TrueRejections, Total.StaticRejected).c_str(),
      ratioOrDash(Total.TrueRejections, Total.DynNotSelected).c_str());
  std::printf(
      "The registry's hot loops keep their recurrences in registers, so a\n"
      "conservative memory-shape filter should reject none of them; the\n"
      "synthetic programs below carry the recurrence through the heap.\n");

  // Synthetic section: programs built around the exact shape.
  std::printf("\n== Synthetic serial-recurrence programs ==\n\n");
  TextTable S;
  S.setHeader({"Program", "static rej", "dyn sel", "false rej",
               "profiled off", "profiled on", "slowdown off", "slowdown on"});
  bool SyntheticOk = true;
  std::uint32_t SyntheticRejected = 0;
  for (std::int64_t Bound : {50, 400, 3000}) {
    ir::Module M = serialRecurrenceModule(Bound);
    WorkloadStats St = compare(M);
    SyntheticOk &= St.FalseRejections == 0;
    SyntheticOk &= St.CyclesOn <= St.CyclesOff;
    SyntheticRejected += St.StaticRejected;

    pipeline::Jrpm JPlain(M, {});
    double Plain = static_cast<double>(JPlain.runPlain().Cycles);
    S.addRow({formatString("serial-walk-%lld", (long long)Bound),
              formatString("%u", St.StaticRejected),
              formatString("%u", St.DynSelected),
              formatString("%u", St.FalseRejections),
              formatString("%llu", (unsigned long long)St.CyclesOff),
              formatString("%llu", (unsigned long long)St.CyclesOn),
              formatString("%.1f%%", (St.CyclesOff - Plain) / Plain * 100),
              formatString("%.1f%%", (St.CyclesOn - Plain) / Plain * 100)});
    Total.FalseRejections += St.FalseRejections;
  }
  S.print();

  std::printf("\nThe pre-filter removes the synthetic loops' entire "
              "annotation cost while\nprofiling; dynamic TEST reaches the "
              "same verdict only after paying it.\n");

  printPoolReduction("per-workload prefilter-comparison", Jobs.size(),
                     SerialMs, P, SlotsIdentical);

  bool Pass = Total.FalseRejections == 0 && SyntheticOk &&
              SyntheticRejected > 0 && SlotsIdentical;
  std::printf("\n%s: %u false rejection(s); synthetic rejections %u; "
              "filtered profiling never costlier.\n",
              Pass ? "PASS" : "FAIL", Total.FalseRejections,
              SyntheticRejected);
  return Pass ? 0 : 1;
}
