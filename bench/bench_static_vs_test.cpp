//===- bench/bench_static_vs_test.cpp - Static analysis vs dynamic TEST ----==//
//
// Precision/recall conformance harness for the static speculation stack
// against the dynamic TEST tracer, over four corpora:
//
//   * the full 26-workload registry,
//   * a seeded pseudo-random program corpus (>= 200 programs),
//   * synthetic programs built around the shapes the static rules target,
//     and
//   * the template-extracted variant corpus (src/corpus): every registry
//     template instantiated at 25 seeds, >= 2000 variants, scored per
//     family.
//
// Two static modes are scored. The PR1 pre-filter recognises one shape —
// an invariant-addressed latch store reloaded by the header. The affine
// oracle runs the classical dependence tests (ZIV/SIV/GCD) over symbolic
// strides and proves serial recurrences the shape rule cannot see.
// Treating "dynamic TEST did not select the loop" as ground truth, the
// bench reports each mode's precision and recall and enforces two hard
// gates: zero false rejections (a statically rejected loop that dynamic
// TEST selects means lost speedup), and the oracle's true rejections must
// strictly exceed the pre-filter's — the oracle must pay for its
// machinery with coverage.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "RandomProgram.h"
#include "analysis/Candidates.h"
#include "corpus/Variant.h"
#include "frontend/Ast.h"
#include "frontend/Lower.h"

#include <map>
#include <set>

using namespace jrpm;
using namespace jrpm::benchutil;

namespace {

/// A serial-recurrence rejection, from either static mode.
bool isSerialReject(analysis::RejectKind K) {
  return K == analysis::RejectKind::SerialMemoryRecurrence ||
         K == analysis::RejectKind::AffineSerialZiv ||
         K == analysis::RejectKind::AffineSerialSiv;
}

/// One static mode's confusion-matrix tallies against dynamic TEST.
struct ModeStats {
  std::uint32_t Rejected = 0;
  std::uint32_t TrueRejections = 0;  // rejected, dynamically unselected
  std::uint32_t FalseRejections = 0; // rejected, dynamically selected

  void add(const ModeStats &O) {
    Rejected += O.Rejected;
    TrueRejections += O.TrueRejections;
    FalseRejections += O.FalseRejections;
  }
};

struct ProgramStats {
  std::uint32_t Loops = 0;
  std::uint32_t DynSelected = 0;
  std::uint32_t DynNotSelected = 0;
  ModeStats Pre, Orc;
  std::uint64_t CyclesOff = 0;   // profiled, no static screening
  std::uint64_t CyclesOrc = 0;   // profiled with the oracle rejects unplugged

  void add(const ProgramStats &O) {
    Loops += O.Loops;
    DynSelected += O.DynSelected;
    DynNotSelected += O.DynNotSelected;
    Pre.add(O.Pre);
    Orc.add(O.Orc);
    CyclesOff += O.CyclesOff;
    CyclesOrc += O.CyclesOrc;
  }
};

/// Scores one static mode's rejections against the dynamic selection.
ModeStats scoreMode(const ir::Module &M, const analysis::AnalysisOptions &Opts,
                    const std::set<std::uint32_t> &Selected) {
  ModeStats S;
  analysis::ModuleAnalysis MA(M, Opts);
  for (const analysis::CandidateStl &C : MA.candidates()) {
    if (!isSerialReject(C.Kind))
      continue;
    ++S.Rejected;
    if (Selected.count(C.LoopId))
      ++S.FalseRejections;
    else
      ++S.TrueRejections;
  }
  return S;
}

/// Full comparison for one module: dynamic ground truth plus both modes.
/// \p Profiled also measures the profiling cost with the oracle's rejects
/// unplugged (skipped for the random corpus, where only verdicts matter).
ProgramStats compare(const ir::Module &M, bool Profiled) {
  ProgramStats S;

  // Dynamic ground truth: the paper's optimistic policy, profiled by TEST.
  pipeline::PipelineConfig Off;
  pipeline::Jrpm JOff(M, Off);
  pipeline::Jrpm::ProfileOutcome POff = JOff.profileAndSelect();
  std::set<std::uint32_t> Selected(POff.Selection.SelectedLoops.begin(),
                                   POff.Selection.SelectedLoops.end());
  S.CyclesOff = POff.Run.Cycles;
  for (const analysis::CandidateStl &C : JOff.moduleAnalysis().candidates()) {
    ++S.Loops;
    bool DynSel = Selected.count(C.LoopId) != 0;
    S.DynSelected += DynSel;
    S.DynNotSelected += !DynSel;
  }

  analysis::AnalysisOptions PreOpts;
  PreOpts.StaticPrefilter = true;
  S.Pre = scoreMode(M, PreOpts, Selected);

  analysis::AnalysisOptions OrcOpts;
  OrcOpts.AffineOracle = true;
  S.Orc = scoreMode(M, OrcOpts, Selected);

  if (Profiled) {
    pipeline::PipelineConfig On;
    On.AffineOracle = true;
    pipeline::Jrpm JOn(M, On);
    S.CyclesOrc = JOn.profileAndSelect().Run.Cycles;
  }
  return S;
}

/// The textbook serial memory recurrence both static modes catch:
/// while (heap[p] < n) heap[p] = heap[p] + 1.
ir::Module serialWalkModule(std::int64_t Bound) {
  using namespace front;
  ProgramDef P;
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("p", allocWords(c(8))),
      store(v("p"), Ex(), c(0)),
      whileLoop(lt(ld(v("p")), c(Bound)),
                store(v("p"), Ex(), 0, add(ld(v("p")), c(1)))),
      ret(ld(v("p"))),
  });
  P.Functions.push_back(std::move(Main));
  return front::lowerProgram(P);
}

/// The same recurrence with the store hoisted out of the latch block by a
/// trailing (never-taken) guard: the pre-filter's latch-seeded rule goes
/// blind, the oracle still proves the distance-1 arc.
ir::Module serialGuardedModule(std::int64_t Bound) {
  using namespace front;
  ProgramDef P;
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("p", allocWords(c(8))),
      assign("g", c(0)),
      store(v("p"), Ex(), c(0)),
      whileLoop(lt(ld(v("p")), c(Bound)),
                seq({
                    store(v("p"), Ex(), 0, add(ld(v("p")), c(1))),
                    iff(v("g"), exprStmt(c(0))),
                })),
      ret(ld(v("p"))),
  });
  P.Functions.push_back(std::move(Main));
  return front::lowerProgram(P);
}

/// Provably parallel by strong SIV: writes a[2i], reads a[2i+1] — the
/// address lattices never meet. Nothing may be rejected here.
ir::Module parallelStride2Module(std::int64_t Trip) {
  using namespace front;
  ProgramDef P;
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("a", allocWords(c(4096))),
      forLoop("i", c(0), lt(v("i"), c(Trip)), 1,
              seq({
                  assign("t", mul(v("i"), c(2))),
                  store(v("a"), v("t"), 0,
                        add(ld(v("a"), v("t"), 1), c(3))),
              })),
      ret(ld(v("a"), Ex(), 0)),
  });
  P.Functions.push_back(std::move(Main));
  return front::lowerProgram(P);
}

std::string ratioOrDash(std::uint32_t Num, std::uint32_t Den) {
  return Den ? fmt(static_cast<double>(Num) / Den, 2) : std::string("-");
}

void printModeSummary(const char *Corpus, const ProgramStats &T) {
  std::printf("%-22s %5u loops, %3u dyn-selected | prefilter: %2u rej, "
              "%u false | oracle: %2u rej, %u false\n",
              Corpus, T.Loops, T.DynSelected, T.Pre.Rejected,
              T.Pre.FalseRejections, T.Orc.Rejected,
              T.Orc.FalseRejections);
}

} // namespace

int main() {
  printBanner("Static affine oracle and pre-filter vs dynamic TEST",
              "the Section 4.1 candidate policy");

  //===------------------------------------------------------------------===//
  // Corpus 1: the workload registry (serial, then pooled; must agree).
  //===------------------------------------------------------------------===//
  const std::vector<workloads::Workload> &All = workloads::allWorkloads();
  std::vector<ProgramStats> Stats(All.size());
  std::vector<std::function<void()>> Jobs;
  for (std::size_t Wi = 0; Wi < All.size(); ++Wi)
    Jobs.push_back(
        [&, Wi]() { Stats[Wi] = compare(All[Wi].Build(), /*Profiled=*/true); });

  Stopwatch Serial;
  for (const std::function<void()> &J : Jobs)
    J();
  double SerialMs = Serial.ms();
  std::vector<ProgramStats> SerialStats = Stats;

  PoolRun P = runOnPool(Jobs);
  bool SlotsIdentical = true;
  for (std::size_t Wi = 0; Wi < All.size(); ++Wi)
    SlotsIdentical &=
        Stats[Wi].CyclesOff == SerialStats[Wi].CyclesOff &&
        Stats[Wi].CyclesOrc == SerialStats[Wi].CyclesOrc &&
        Stats[Wi].Pre.Rejected == SerialStats[Wi].Pre.Rejected &&
        Stats[Wi].Orc.Rejected == SerialStats[Wi].Orc.Rejected &&
        Stats[Wi].DynSelected == SerialStats[Wi].DynSelected;

  TextTable T;
  T.setHeader({"Benchmark", "loops", "dyn sel", "pre rej", "orc rej",
               "false rej", "profiled off", "profiled orc"});
  ProgramStats Registry;
  std::string Category;
  for (std::size_t Wi = 0; Wi < All.size(); ++Wi) {
    const workloads::Workload &W = All[Wi];
    if (W.Category != Category) {
      Category = W.Category;
      T.addSeparator();
    }
    const ProgramStats &S = Stats[Wi];
    T.addRow({W.Name, formatString("%u", S.Loops),
              formatString("%u", S.DynSelected),
              formatString("%u", S.Pre.Rejected),
              formatString("%u", S.Orc.Rejected),
              formatString("%u",
                           S.Pre.FalseRejections + S.Orc.FalseRejections),
              formatString("%llu", (unsigned long long)S.CyclesOff),
              formatString("%llu", (unsigned long long)S.CyclesOrc)});
    Registry.add(S);
  }
  T.print();
  std::printf(
      "\nThe registry's hot loops keep their recurrences in registers, so\n"
      "conservative memory-shape screening rejects none of them; the\n"
      "synthetic programs below carry the recurrence through the heap.\n");

  //===------------------------------------------------------------------===//
  // Corpus 2: seeded pseudo-random programs (pooled, preassigned slots).
  //===------------------------------------------------------------------===//
  constexpr std::size_t NumRandom = 220;
  std::vector<ProgramStats> RandStats(NumRandom);
  std::vector<std::function<void()>> RandJobs;
  for (std::size_t Seed = 0; Seed < NumRandom; ++Seed)
    RandJobs.push_back([&RandStats, Seed]() {
      testutil::ProgramGenerator Gen(0xC0FFEE00 + Seed);
      RandStats[Seed] = compare(Gen.generate(), /*Profiled=*/false);
    });
  runOnPool(RandJobs);
  ProgramStats Random;
  for (const ProgramStats &S : RandStats)
    Random.add(S);

  //===------------------------------------------------------------------===//
  // Corpus 3: synthetic shape programs.
  //===------------------------------------------------------------------===//
  std::printf("\n== Synthetic shape programs ==\n\n");
  TextTable ST;
  ST.setHeader({"Program", "pre rej", "orc rej", "dyn sel", "false rej",
                "profiled off", "profiled orc"});
  ProgramStats Synth;
  bool SyntheticOk = true;
  std::uint32_t GuardedOracleOnly = 0;
  auto addSynthetic = [&](const std::string &Name, const ir::Module &M,
                          bool ExpectPre, bool ExpectOrc) {
    ProgramStats St = compare(M, /*Profiled=*/true);
    Synth.add(St);
    SyntheticOk &= St.Pre.FalseRejections + St.Orc.FalseRejections == 0;
    SyntheticOk &= (St.Pre.Rejected > 0) == ExpectPre;
    SyntheticOk &= (St.Orc.Rejected > 0) == ExpectOrc;
    if (ExpectOrc)
      SyntheticOk &= St.CyclesOrc <= St.CyclesOff;
    if (!ExpectPre && ExpectOrc)
      GuardedOracleOnly += St.Orc.Rejected;
    ST.addRow({Name, formatString("%u", St.Pre.Rejected),
               formatString("%u", St.Orc.Rejected),
               formatString("%u", St.DynSelected),
               formatString("%u",
                            St.Pre.FalseRejections + St.Orc.FalseRejections),
               formatString("%llu", (unsigned long long)St.CyclesOff),
               formatString("%llu", (unsigned long long)St.CyclesOrc)});
  };
  for (std::int64_t Bound : {50, 400, 3000}) {
    addSynthetic(formatString("serial-walk-%lld", (long long)Bound),
                 serialWalkModule(Bound), /*ExpectPre=*/true,
                 /*ExpectOrc=*/true);
    addSynthetic(formatString("serial-guarded-%lld", (long long)Bound),
                 serialGuardedModule(Bound), /*ExpectPre=*/false,
                 /*ExpectOrc=*/true);
  }
  addSynthetic("parallel-stride2", parallelStride2Module(512),
               /*ExpectPre=*/false, /*ExpectOrc=*/false);
  ST.print();
  std::printf("\nThe guarded variants hoist the store out of the latch "
              "block: only the\naffine oracle still proves the distance-1 "
              "arc, inside the same budget.\n");

  //===------------------------------------------------------------------===//
  // Corpus 4: template-extracted variants (pooled, preassigned slots).
  //===------------------------------------------------------------------===//
  std::vector<corpus::Template> Templates = corpus::extractRegistryTemplates();
  constexpr std::uint32_t VariantsPerTemplate = 25;
  const std::size_t NumVariants = Templates.size() * VariantsPerTemplate;
  std::vector<ProgramStats> CorpStats(NumVariants);
  std::vector<std::function<void()>> CorpJobs;
  for (std::size_t Ti = 0; Ti < Templates.size(); ++Ti)
    for (std::uint32_t S = 0; S < VariantsPerTemplate; ++S)
      CorpJobs.push_back([&CorpStats, &Templates, Ti, S]() {
        corpus::Variant V = corpus::instantiate(Templates[Ti], 1 + S);
        CorpStats[Ti * VariantsPerTemplate + S] =
            compare(V.Module, /*Profiled=*/false);
      });
  runOnPool(CorpJobs);

  std::printf("\n== Template-extracted variant corpus (%zu variants, %zu "
              "templates x %u seeds) ==\n\n",
              NumVariants, Templates.size(), VariantsPerTemplate);
  struct FamilyAgg {
    std::uint32_t Variants = 0;
    ProgramStats Stats;
  };
  std::map<std::string, FamilyAgg> Families;
  for (std::size_t Ti = 0; Ti < Templates.size(); ++Ti) {
    FamilyAgg &F = Families[Templates[Ti].Family];
    for (std::uint32_t S = 0; S < VariantsPerTemplate; ++S) {
      ++F.Variants;
      F.Stats.add(CorpStats[Ti * VariantsPerTemplate + S]);
    }
  }
  TextTable CT;
  CT.setHeader({"Family", "variants", "loops", "dyn sel", "pre rej",
                "orc rej", "false rej"});
  ProgramStats Corpus;
  for (const auto &[Family, F] : Families) {
    Corpus.add(F.Stats);
    CT.addRow({Family, formatString("%u", F.Variants),
               formatString("%u", F.Stats.Loops),
               formatString("%u", F.Stats.DynSelected),
               formatString("%u", F.Stats.Pre.Rejected),
               formatString("%u", F.Stats.Orc.Rejected),
               formatString("%u", F.Stats.Pre.FalseRejections +
                                      F.Stats.Orc.FalseRejections)});
  }
  CT.print();

  //===------------------------------------------------------------------===//
  // Conformance scorecard and hard gates.
  //===------------------------------------------------------------------===//
  ProgramStats Total;
  Total.add(Registry);
  Total.add(Random);
  Total.add(Synth);
  Total.add(Corpus);

  std::printf("\n== Conformance vs dynamic TEST (ground truth: loop not "
              "selected) ==\n\n");
  printModeSummary("registry (26)", Registry);
  printModeSummary(formatString("random corpus (%zu)", NumRandom).c_str(),
                   Random);
  printModeSummary("synthetics", Synth);
  printModeSummary(
      formatString("variant corpus (%zu)", NumVariants).c_str(), Corpus);
  printModeSummary("total", Total);

  std::printf("\n%-10s precision %-5s recall %-5s (of %u dynamically "
              "unselected loops)\n",
              "prefilter:",
              ratioOrDash(Total.Pre.TrueRejections, Total.Pre.Rejected)
                  .c_str(),
              ratioOrDash(Total.Pre.TrueRejections, Total.DynNotSelected)
                  .c_str(),
              Total.DynNotSelected);
  std::printf("%-10s precision %-5s recall %-5s (of %u dynamically "
              "unselected loops)\n",
              "oracle:",
              ratioOrDash(Total.Orc.TrueRejections, Total.Orc.Rejected)
                  .c_str(),
              ratioOrDash(Total.Orc.TrueRejections, Total.DynNotSelected)
                  .c_str(),
              Total.DynNotSelected);

  printPoolReduction("per-program conformance", Jobs.size(), SerialMs, P,
                     SlotsIdentical);

  bool ZeroFalse =
      Total.Pre.FalseRejections == 0 && Total.Orc.FalseRejections == 0;
  bool StrictGain = Total.Orc.TrueRejections > Total.Pre.TrueRejections;
  bool CorpusScale = NumVariants >= 2000;
  bool Pass = ZeroFalse && StrictGain && SyntheticOk &&
              GuardedOracleOnly > 0 && SlotsIdentical && CorpusScale;
  std::printf("\n%s: %u false rejection(s); oracle true rejections %u vs "
              "prefilter %u (%s); %u oracle-only shapes; %zu corpus "
              "variants.\n",
              Pass ? "PASS" : "FAIL",
              Total.Pre.FalseRejections + Total.Orc.FalseRejections,
              Total.Orc.TrueRejections, Total.Pre.TrueRejections,
              StrictGain ? "strictly more" : "NO GAIN", GuardedOracleOnly,
              NumVariants);
  return Pass ? 0 : 1;
}
