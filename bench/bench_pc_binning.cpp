//===- bench/bench_pc_binning.cpp - Section 6.3's optimization guidance ----==//
//
// Demonstrates the extended TEST implementation (Figure 8b): critical arcs
// binned by load PC identify the one or two variables whose placement
// limits parallelism — the feedback the paper used to restructure
// NumericSort, Huffman, db, and MipsSimulator.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Extended TEST: PC-binned dependency statistics",
              "Section 6.3 / Figure 8b");
  for (const char *Name : {"Huffman", "NumHeapSort", "db", "MipsSimulator"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    pipeline::PipelineConfig Cfg;
    Cfg.ExtendedPcBinning = true;
    pipeline::Jrpm J(W->Build(), Cfg);
    auto P = J.profileAndSelect();

    // Pick the selected loop with the most critical arcs.
    const tracer::StlReport *Target = nullptr;
    for (const auto &Rep : P.Selection.Loops)
      if (Rep.Selected &&
          (!Target || Rep.Stats.CritArcsPrev > Target->Stats.CritArcsPrev))
        Target = &Rep;
    std::printf("--- %s ---\n", Name);
    if (!Target || Target->Stats.PcBins.empty()) {
      std::printf("  no critical arcs in selected STLs (fully parallel)\n\n");
      continue;
    }

    std::vector<std::pair<std::int32_t, tracer::PcBinStats>> Bins(
        Target->Stats.PcBins.begin(), Target->Stats.PcBins.end());
    std::sort(Bins.begin(), Bins.end(), [](const auto &A, const auto &B) {
      return A.second.CriticalArcs > B.second.CriticalArcs;
    });
    double T = Target->Stats.avgThreadSize();
    std::printf("  STL #%u: %llu threads, avg size %.0f cycles\n",
                Target->LoopId,
                static_cast<unsigned long long>(Target->Stats.Threads), T);
    std::size_t Shown = 0;
    for (const auto &[Pc, Bin] : Bins) {
      if (Shown++ == 4)
        break;
      double Rel = T > 0 ? Bin.averageLength() / T : 0;
      std::printf("    load pc=%-6d critical arcs=%-7llu avg len=%-7.1f "
                  "(%.0f%% of thread) %s\n",
                  Pc, static_cast<unsigned long long>(Bin.CriticalArcs),
                  Bin.averageLength(), Rel * 100,
                  Rel < 0.5 ? "<- candidate for code motion/sync" : "");
    }
    std::printf("\n");
  }
  std::printf("Arcs much shorter than the thread direct the compiler to\n"
              "variables where load/store placement can be optimized or\n"
              "synchronization inserted (Section 6.3).\n");
  return 0;
}
