//===- bench/bench_micro_tracer.cpp - Microbenchmarks (google-benchmark) ---==//
//
// Host-side throughput of the core simulation components: tracer event
// processing, sequential interpretation, and the speculative engine. These
// guard against performance regressions of the simulator itself.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "jrpm/Pipeline.h"
#include "tracer/TraceEngine.h"
#include "workloads/Common.h"
#include "workloads/Workload.h"

#include <benchmark/benchmark.h>

using namespace jrpm;
using namespace jrpm::front;

static void BM_TracerHeapEvents(benchmark::State &State) {
  sim::HydraConfig Cfg;
  tracer::TraceEngine Engine(Cfg, std::vector<tracer::LoopTraceInfo>(1));
  std::uint64_t Now = 0;
  Engine.onLoopStart(0, 1, Now);
  std::uint64_t Events = 0;
  for (auto _ : State) {
    ++Now;
    Engine.onHeapStore(static_cast<std::uint32_t>(Now * 7 % 4096), Now, 1);
    ++Now;
    Engine.onHeapLoad(static_cast<std::uint32_t>(Now * 13 % 4096), Now, 2);
    if (Now % 64 == 0)
      Engine.onLoopIter(0, Now);
    Events += 2;
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(Events));
}
BENCHMARK(BM_TracerHeapEvents);

static void BM_TracerWithEightBanks(benchmark::State &State) {
  sim::HydraConfig Cfg;
  tracer::TraceEngine Engine(Cfg, std::vector<tracer::LoopTraceInfo>(8));
  std::uint64_t Now = 0;
  for (std::uint32_t L = 0; L < 8; ++L)
    Engine.onLoopStart(L, 1, Now++);
  std::uint64_t Events = 0;
  for (auto _ : State) {
    ++Now;
    Engine.onHeapStore(static_cast<std::uint32_t>(Now * 7 % 4096), Now, 1);
    ++Now;
    Engine.onHeapLoad(static_cast<std::uint32_t>(Now * 13 % 4096), Now, 2);
    Events += 2;
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(Events));
}
BENCHMARK(BM_TracerWithEightBanks);

namespace {

ir::Module squareSumProgram() {
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("a", allocWords(c(1024))),
      forLoop("i", c(0), lt(v("i"), c(1024)), 1,
              store(v("a"), v("i"), mul(v("i"), v("i")))),
      assign("s", c(0)),
      forLoop("i", c(0), lt(v("i"), c(1024)), 1,
              assign("s", add(v("s"), ld(v("a"), v("i"))))),
      ret(v("s")),
  });
  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}

} // namespace

static void BM_SequentialInterpreter(benchmark::State &State) {
  ir::Module M = squareSumProgram();
  sim::HydraConfig Cfg;
  std::uint64_t Instructions = 0;
  for (auto _ : State) {
    interp::Machine Machine(M, Cfg);
    auto R = Machine.run();
    benchmark::DoNotOptimize(R.ReturnValue);
    Instructions += R.Instructions;
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(Instructions));
}
BENCHMARK(BM_SequentialInterpreter);

static void BM_TlsEngineParallelLoop(benchmark::State &State) {
  ir::Module M = squareSumProgram();
  sim::HydraConfig Cfg;
  analysis::ModuleAnalysis MA(M);
  std::uint64_t Threads = 0;
  for (auto _ : State) {
    std::vector<jit::TlsLoopPlan> Plans;
    for (const auto &C : MA.candidates())
      if (!C.Rejected)
        Plans.push_back(jit::buildTlsPlan(MA, C));
    hydra::TlsEngine Engine(M, Cfg, std::move(Plans));
    interp::Machine Machine(M, Cfg);
    Machine.setDispatcher(&Engine);
    auto R = Machine.run();
    benchmark::DoNotOptimize(R.ReturnValue);
    Threads += Engine.totals().CommittedThreads;
  }
  State.SetItemsProcessed(static_cast<std::int64_t>(Threads));
}
BENCHMARK(BM_TlsEngineParallelLoop);

static void BM_FullPipelineHuffman(benchmark::State &State) {
  const workloads::Workload *W = workloads::findWorkload("Huffman");
  for (auto _ : State) {
    pipeline::Jrpm J(W->Build(), pipeline::PipelineConfig{});
    auto R = J.runAll();
    benchmark::DoNotOptimize(R.TlsRun.ReturnValue);
  }
}
BENCHMARK(BM_FullPipelineHuffman);

BENCHMARK_MAIN();
