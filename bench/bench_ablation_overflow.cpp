//===- bench/bench_ablation_overflow.cpp - Overflow-table mapping ablation -==//
//
// Section 5.3: the cache-line timestamp store is indexed like a direct
// mapped cache although the real store buffers are fully associative and
// the L1 is 4-way — "not accounting for associativity introduces some
// error into the overflow analysis, but should not affect its usefulness".
// This bench quantifies that error by comparing the overflow frequencies
// the tracer predicts under direct-mapped vs associative tables against
// the overflow stalls the TLS engine actually takes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Ablation - direct-mapped vs associative overflow analysis",
              "Section 5.3 design note");
  TextTable T;
  T.setHeader({"Benchmark", "buffer", "assoc", "overflow threads",
               "max store lines", "actual TLS stalls"});
  for (const char *Name : {"FourierTest", "LuFactor", "shallow", "db"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);
    for (std::uint32_t Assoc : {1u, 4u, 64u}) {
      pipeline::PipelineConfig Cfg;
      // Shrink the buffers so overflows actually occur at our scaled-down
      // workload sizes.
      Cfg.Hw.SpecStoreLines = 16;
      Cfg.Hw.SpecLoadLines = 64;
      Cfg.Hw.StoreTimestampEntries = 64;
      Cfg.Hw.LoadTimestampEntries = 128;
      Cfg.Hw.OverflowTableAssoc = Assoc;
      pipeline::Jrpm J(W->Build(), Cfg);
      auto R = J.runAll();
      std::uint64_t OverflowThreads = 0, MaxStoreLines = 0;
      for (const auto &Rep : R.Selection.Loops) {
        OverflowThreads += Rep.Stats.OverflowThreads;
        MaxStoreLines = std::max(MaxStoreLines, Rep.Stats.MaxStoreLines);
      }
      std::uint64_t Stalls = 0;
      for (const auto &[LoopId, S] : R.TlsLoopStats)
        Stalls += S.OverflowStalls;
      T.addRow({Name,
                formatString("%u ld / %u st lines", Cfg.Hw.SpecLoadLines,
                             Cfg.Hw.SpecStoreLines),
                formatString("%u", Assoc),
                formatString("%llu", static_cast<unsigned long long>(
                                         OverflowThreads)),
                formatString("%llu", static_cast<unsigned long long>(
                                         MaxStoreLines)),
                formatString("%llu",
                             static_cast<unsigned long long>(Stalls))});
    }
    T.addSeparator();
  }
  T.print();
  std::printf("\nDirect mapping (assoc=1) occasionally reports stale line\n"
              "timestamps on conflicting sets, perturbing the per-thread\n"
              "line counters; higher associativity converges to the true\n"
              "footprint. The selection outcome is unchanged — the paper's\n"
              "'should not affect its usefulness'.\n");
  return 0;
}
