//===- bench/bench_datasize_sensitivity.cpp - Section 6.1's data-set claim -==//
//
// "We noticed several applications where selected decompositions can
// change according to input data sizes. ... loops lower in a loop nest
// must be chosen with larger data sets because the number of inner loop
// iterations will rise, increasing the probability of overflowing
// speculative state when speculating higher in a loop nest."
//
// This bench sweeps the Assignment benchmark's matrix size and reports,
// per size, the nesting height of the selected STLs and the overflow
// frequencies TEST observed — selection should migrate down the nest as
// the matrix grows past what the 2kB store buffer can hold per outer
// iteration.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "workloads/Builders.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Data-set sensitivity of STL selection (Assignment)",
              "Section 6.1, Table 6 column (b)");
  TextTable T;
  T.setHeader({"matrix", "selected", "avg height", "deep-level STLs",
               "overflowing outer candidates", "pred speedup",
               "actual speedup"});
  for (std::int64_t N : {24, 51, 120, 288}) {
    pipeline::PipelineConfig Cfg;
    pipeline::Jrpm J(workloads::buildAssignmentSized(N), Cfg);
    auto R = J.runAll();
    const analysis::ModuleAnalysis &MA = J.moduleAnalysis();

    std::uint32_t Selected = 0, DeepSelected = 0, OverflowingOuter = 0;
    double HeightSum = 0;
    for (const auto &Rep : R.Selection.Loops) {
      bool HasTracedChild = false;
      for (std::uint32_t C : Rep.Children)
        HasTracedChild |= R.Selection.Loops[C].Stats.Threads > 0;
      if (HasTracedChild && Rep.Stats.overflowFreq() > 0.25)
        ++OverflowingOuter;
      if (!Rep.Selected || Rep.Coverage <= 0.005)
        continue;
      ++Selected;
      const analysis::CandidateStl &C = MA.candidate(Rep.LoopId);
      std::uint32_t Height = MA.func(C.FuncIndex).LI.heightOf(C.LoopIdx);
      HeightSum += Height;
      DeepSelected += Height == 1; // innermost-level STL
    }
    T.addRow({formatString("%lldx%lld", static_cast<long long>(N),
                           static_cast<long long>(N)),
              formatString("%u", Selected),
              fmt(Selected ? HeightSum / Selected : 0, 2),
              formatString("%u", DeepSelected),
              formatString("%u", OverflowingOuter),
              fmt(R.Selection.PredictedSpeedup), fmt(R.actualSpeedup())});
    if (R.TlsRun.ReturnValue != R.PlainRun.ReturnValue)
      return 1;
  }
  T.print();
  std::printf("\nAs the matrix outgrows the 64-line store buffer, the\n"
              "whole-matrix and per-row loops start overflowing during\n"
              "tracing and Equation 2 moves the selection toward innermost\n"
              "loops (avg height falls, deep-level count rises) — the\n"
              "dynamic-reselection advantage Section 6.1 claims for Jrpm\n"
              "over one-time static decisions.\n");
  return 0;
}
