//===- bench/bench_metrics_overhead.cpp - Observability cost ---------------==//
//
// The metrics layer's design contract: components accumulate into plain
// struct members on their hot paths and export to the registry once at
// end-of-run, so a disabled registry (null pointer) costs nothing
// measurable and an attached one stays within noise. This bench measures
// the simulation wall-clock of the full Table 6 registry pipeline (the
// same work bench_table6_benchmarks performs) in three configurations:
// detached (the default), metrics registry attached, and metrics plus
// timeline attached. Export/serialization happens outside the timed
// window — it is a once-per-run cost proportional to the output size, not
// a per-cycle tax on the simulators.
//
// Gates:
//   - metrics registry attached: <= 5% aggregate wall-clock overhead
//   - two detached passes agree (the baseline is reproducible); if the
//     runner's own jitter exceeds 5%, the measurement is reported as
//     unresolved instead of failing spuriously
//
// The timeline row is informational: span recording takes a mutex per
// speculative-thread lifetime, which is orders of magnitude coarser than
// per-cycle work but not free; it is an opt-in diagnostic, not part of
// the <= 5% contract.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "metrics/Metrics.h"
#include "metrics/Timeline.h"

using namespace jrpm;
using namespace jrpm::benchutil;

namespace {

enum class Mode { Detached, Metrics, MetricsAndTimeline };

/// One full-registry pipeline pass; returns simulation-only wall-clock.
/// Exports (registry JSON, timeline JSON) happen after the stopwatch is
/// read and feed the checksum so they cannot be optimized away.
double runRegistry(Mode M, std::uint64_t &Checksum) {
  double Ms = 0;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    metrics::Registry Reg;
    metrics::Timeline TL;
    pipeline::PipelineConfig Cfg;
    Cfg.ExtendedPcBinning = true;
    if (M != Mode::Detached)
      Cfg.Metrics = &Reg;
    if (M == Mode::MetricsAndTimeline)
      Cfg.Timeline = &TL;
    pipeline::Jrpm J(W.Build(), Cfg);
    Stopwatch S;
    pipeline::PipelineResult R = J.runAll();
    Ms += S.ms();
    Checksum += R.PlainRun.ReturnValue + R.TlsRun.Cycles;
    if (M != Mode::Detached)
      Checksum += Reg.counters().size();
    if (M == Mode::MetricsAndTimeline)
      Checksum += TL.droppedEvents();
  }
  return Ms;
}

} // namespace

int main() {
  printBanner("Metrics overhead - instrumented vs detached pipeline",
              "the observability layer for Table 2's overhead taxonomy");

  // Warm-up pass so code and workload data are resident for every timed
  // pass alike.
  std::uint64_t Sink = 0;
  runRegistry(Mode::Detached, Sink);

  std::uint64_t C1 = 0, C2 = 0, C3 = 0, C4 = 0;
  double DetachedMs = runRegistry(Mode::Detached, C1);
  double MetricsMs = runRegistry(Mode::Metrics, C2);
  double TimelineMs = runRegistry(Mode::MetricsAndTimeline, C3);
  double DetachedAgainMs = runRegistry(Mode::Detached, C4);

  if (C1 != C4 || C1 == 0) {
    std::printf("FAIL: detached passes diverged (checksums %llu vs %llu)\n",
                (unsigned long long)C1, (unsigned long long)C4);
    return 1;
  }

  double Base = std::min(DetachedMs, DetachedAgainMs);
  auto Pct = [&](double Ms) { return (Ms / Base - 1.0) * 100.0; };
  double MetricsPct = Pct(MetricsMs);
  double JitterPct = Pct(std::max(DetachedMs, DetachedAgainMs));

  TextTable T;
  T.setHeader({"Configuration", "wall ms", "vs baseline"});
  T.addRow({"detached (pass 1)", fmt(DetachedMs, 1),
            fmt(Pct(DetachedMs), 2) + "%"});
  T.addRow({"detached (pass 2)", fmt(DetachedAgainMs, 1),
            fmt(Pct(DetachedAgainMs), 2) + "%"});
  T.addRow({"metrics registry attached", fmt(MetricsMs, 1),
            fmt(MetricsPct, 2) + "%"});
  T.addRow({"metrics + timeline attached", fmt(TimelineMs, 1),
            fmt(Pct(TimelineMs), 2) + "% (informational)"});
  T.print();

  std::printf("\nmeasurement jitter between detached passes: %.2f%%\n",
              JitterPct);

  if (MetricsPct <= 5.0) {
    std::printf("PASS: attached metrics cost %.2f%% (<= 5%% gate)\n",
                MetricsPct);
    return 0;
  }
  if (JitterPct > 5.0) {
    std::printf("PASS (unresolved): runner jitter %.2f%% exceeds the 5%% "
                "gate; measurement inconclusive\n",
                JitterPct);
    return 0;
  }
  std::printf("FAIL: attached metrics cost %.2f%% (> 5%% gate)\n",
              MetricsPct);
  return 1;
}
