//===- bench/bench_mls_coverage.cpp - Section 4.1's method-return claim ----==//
//
// "Our experiments so far have not found many method call return or
// general region decompositions that are either not covered by similar
// loop decompositions or have significant coverage to impact total
// execution time." For every benchmark with calls, this bench measures
// the fork-at-call overlap a method-level speculation (MLS) decomposition
// could exploit and compares it with the coverage of the loop STLs TEST
// selects.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "analysis/Candidates.h"
#include "jit/Annotator.h"
#include "tracer/MlsTracer.h"

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Method-level vs loop-level speculation coverage",
              "Section 4.1 (why Jrpm focuses on loop decompositions)");
  TextTable T;
  T.setHeader({"Benchmark", "call sites", "invocations", "MLS overlap",
               "MLS %", "loop STL %", "loops cover MLS?"});
  for (const char *Name : {"IDEA", "NumHeapSort", "FourierTest", "Huffman",
                           "monteCarlo", "db"}) {
    const workloads::Workload *W = workloads::findWorkload(Name);

    // MLS coverage from a sequential run with the MLS tracer.
    pipeline::PipelineConfig Cfg;
    ir::Module M = W->Build();
    tracer::MlsTracer Mls(Cfg.Hw);
    interp::Machine Machine(M, Cfg.Hw);
    Machine.setTraceSink(&Mls);
    auto Run = Machine.run();
    Mls.finish(Run.Cycles);

    std::uint64_t Invocations = 0;
    for (const auto &[Pc, S] : Mls.siteStats())
      Invocations += S.Invocations;
    double MlsFrac = static_cast<double>(Mls.totalOverlapCycles()) /
                     static_cast<double>(Run.Cycles);

    // Loop STL coverage from the regular pipeline.
    pipeline::Jrpm J(W->Build(), Cfg);
    auto P = J.profileAndSelect();
    double LoopFrac = 0;
    for (const auto &Rep : P.Selection.Loops)
      if (Rep.Selected && Rep.Coverage > 0.005)
        LoopFrac += Rep.Coverage;

    T.addRow({Name, formatString("%zu", Mls.siteStats().size()),
              formatString("%llu",
                           static_cast<unsigned long long>(Invocations)),
              formatString("%llu cycles",
                           static_cast<unsigned long long>(
                               Mls.totalOverlapCycles())),
              asPercent(MlsFrac, 1), asPercent(std::min(1.0, LoopFrac), 1),
              MlsFrac < LoopFrac ? "yes" : "NO"});
  }
  T.print();
  std::printf("\nThe exploitable fork-at-call overlap is a small fraction\n"
              "of execution everywhere the loop STLs already cover the\n"
              "time: most calls either feed their result straight into the\n"
              "continuation or sit inside loops the selected STLs already\n"
              "parallelize — the paper's justification for analyzing only\n"
              "loop decompositions.\n");
  return 0;
}
