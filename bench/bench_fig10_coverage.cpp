//===- bench/bench_fig10_coverage.cpp - Figure 10 --------------------------==//
//
// Regenerates Figure 10: for every benchmark, the sequential execution
// (column O, normalized to 1.0) against the predicted speculative
// execution (column P), with the per-STL stacked blocks: each selected
// STL's coverage and its predicted contribution, plus the dark serial
// block at the bottom.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>

using namespace jrpm;
using namespace jrpm::benchutil;

int main() {
  printBanner("Figure 10 - Selected STLs: coverage and predicted time",
              "Figure 10");
  TextTable T;
  T.setHeader({"Benchmark", "STLs", "serial frac", "covered frac",
               "predicted P", "pred speedup"});
  std::string Category;
  for (const auto &W : workloads::allWorkloads()) {
    if (W.Category != Category) {
      Category = W.Category;
      T.addSeparator();
    }
    pipeline::PipelineConfig Cfg;
    pipeline::Jrpm J(W.Build(), Cfg);
    auto P = J.profileAndSelect();

    double Covered = 0;
    std::uint32_t Stls = 0;
    for (const auto &Rep : P.Selection.Loops)
      if (Rep.Selected && Rep.Coverage > 0.005) {
        Covered += Rep.Coverage;
        ++Stls;
      }
    double Serial = std::max(0.0, 1.0 - Covered);
    double Predicted = P.Selection.PredictedCycles /
                       static_cast<double>(P.Run.Cycles);
    T.addRow({W.Name, formatString("%u", Stls), fmt(Serial),
              fmt(std::min(1.0, Covered)), fmt(Predicted),
              fmt(P.Selection.PredictedSpeedup)});

    // Per-STL stacked blocks, largest first (the figure's block heights).
    std::vector<const tracer::StlReport *> Sel;
    for (const auto &Rep : P.Selection.Loops)
      if (Rep.Selected && Rep.Coverage > 0.005)
        Sel.push_back(&Rep);
    std::sort(Sel.begin(), Sel.end(), [](const auto *A, const auto *B) {
      return A->Coverage > B->Coverage;
    });
    for (const auto *Rep : Sel)
      T.addRow({formatString("  stl#%u", Rep->LoopId), "",
                "", fmt(Rep->Coverage),
                fmt(Rep->Coverage / std::max(1e-9, Rep->Estimate.Speedup)),
                fmt(Rep->Estimate.Speedup)});
  }
  T.print();
  std::printf("\nReading: 'serial frac' is Figure 10's dark bottom block;\n"
              "each stl# row is one stacked block (its O-column height is\n"
              "the coverage, its P-column height coverage/speedup).\n");
  return 0;
}
