//===- metrics/Metrics.cpp ------------------------------------------------==//

#include "metrics/Metrics.h"

#include <bit>
#include <cmath>

using namespace jrpm;
using namespace jrpm::metrics;

std::uint64_t Histogram::bucketUpperBound(std::uint32_t Idx) {
  if (Idx < 8)
    return Idx;
  std::uint32_t B = 3 + (Idx - 8) / 4;
  std::uint32_t Sub = (Idx - 8) % 4;
  // Upper bound of sub-bucket Sub within [2^B, 2^(B+1)).
  return (std::uint64_t(1) << B) +
         ((std::uint64_t(1) << (B - 2)) * (Sub + 1)) - 1;
}

void Histogram::merge(const Histogram &O) {
  for (std::uint32_t I = 0; I < NumBuckets; ++I)
    Buckets[I] += O.Buckets[I];
  Count += O.Count;
  Sum += O.Sum;
  if (O.Min < Min)
    Min = O.Min;
  if (O.Max > Max)
    Max = O.Max;
}

std::uint64_t Histogram::percentile(double P) const {
  if (Count == 0)
    return 0;
  if (P <= 0)
    return min();
  double Clamped = P >= 100.0 ? 100.0 : P;
  std::uint64_t Rank = static_cast<std::uint64_t>(
      std::ceil(Clamped / 100.0 * static_cast<double>(Count)));
  if (Rank == 0)
    Rank = 1;
  std::uint64_t Seen = 0;
  for (std::uint32_t I = 0; I < NumBuckets; ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank) {
      // Never report beyond the observed extremes.
      std::uint64_t V = bucketUpperBound(I);
      return V > Max ? Max : V;
    }
  }
  return Max;
}

Json Histogram::toJson() const {
  Json J = Json::object();
  J["count"] = Count;
  J["sum"] = Sum;
  J["min"] = min();
  J["max"] = Max;
  J["mean"] = mean();
  J["p50"] = percentile(50);
  J["p95"] = percentile(95);
  J["p99"] = percentile(99);
  return J;
}

void Registry::merge(const Registry &O) {
  for (const auto &[Name, C] : O.Counters)
    Counters[Name].inc(C.value());
  for (const auto &[Name, G] : O.Gauges)
    Gauges[Name].peak(G.value());
  for (const auto &[Name, H] : O.Histograms)
    Histograms[Name].merge(H);
}

void Registry::mergePrefixed(const Registry &O, const std::string &Prefix) {
  for (const auto &[Name, C] : O.Counters)
    Counters[Prefix + Name].inc(C.value());
  for (const auto &[Name, G] : O.Gauges)
    Gauges[Prefix + Name].peak(G.value());
  for (const auto &[Name, H] : O.Histograms)
    Histograms[Prefix + Name].merge(H);
}

Json Registry::toJson() const {
  Json Root = Json::object();
  Root["schema"] = "jrpm-metrics-v1";
  Json C = Json::object();
  for (const auto &[Name, V] : Counters)
    C[Name] = V.value();
  Root["counters"] = std::move(C);
  Json G = Json::object();
  for (const auto &[Name, V] : Gauges)
    G[Name] = V.value();
  Root["gauges"] = std::move(G);
  Json H = Json::object();
  for (const auto &[Name, V] : Histograms)
    H[Name] = V.toJson();
  Root["histograms"] = std::move(H);
  return Root;
}
