//===- metrics/Timeline.cpp -----------------------------------------------==//

#include "metrics/Timeline.h"

#include <cassert>
#include <map>

using namespace jrpm;
using namespace jrpm::metrics;

TrackId Timeline::track(const std::string &Process, std::uint32_t Tid,
                        const std::string &Name) {
  std::lock_guard<std::mutex> L(M);
  for (std::uint32_t I = 0; I < Tracks.size(); ++I)
    if (Tracks[I].Process == Process && Tracks[I].Tid == Tid)
      return I;
  // Pids follow first-appearance order of process names: deterministic as
  // long as callers register tracks in a fixed order.
  std::uint32_t Pid = 0;
  std::uint32_t MaxPid = 0;
  for (const Track &T : Tracks) {
    MaxPid = std::max(MaxPid, T.Pid);
    if (T.Process == Process)
      Pid = T.Pid;
  }
  if (Pid == 0)
    Pid = MaxPid + 1;
  Track T;
  T.Process = Process;
  T.Pid = Pid;
  T.Tid = Tid;
  T.Name = Name;
  Tracks.push_back(std::move(T));
  return static_cast<TrackId>(Tracks.size() - 1);
}

bool Timeline::admit() {
  if (Recorded >= EventLimit) {
    ++Dropped;
    return false;
  }
  ++Recorded;
  return true;
}

void Timeline::begin(TrackId Track, const std::string &Name,
                     std::uint64_t Ts) {
  std::lock_guard<std::mutex> L(M);
  assert(Track < Tracks.size() && "begin on unregistered track");
  if (!admit())
    return;
  Tracks[Track].Events.push_back({'B', Name, Ts});
  ++Tracks[Track].OpenSpans;
  Tracks[Track].LastTs = Ts;
}

void Timeline::end(TrackId Track, std::uint64_t Ts) {
  std::lock_guard<std::mutex> L(M);
  assert(Track < Tracks.size() && "end on unregistered track");
  if (Tracks[Track].OpenSpans == 0 || !admit())
    return;
  Tracks[Track].Events.push_back({'E', std::string(), Ts});
  --Tracks[Track].OpenSpans;
  Tracks[Track].LastTs = Ts;
}

void Timeline::instant(TrackId Track, const std::string &Name,
                       std::uint64_t Ts) {
  std::lock_guard<std::mutex> L(M);
  assert(Track < Tracks.size() && "instant on unregistered track");
  if (!admit())
    return;
  Tracks[Track].Events.push_back({'i', Name, Ts});
  Tracks[Track].LastTs = Ts;
}

Json Timeline::toJson() const {
  std::lock_guard<std::mutex> L(M);
  Json Events = Json::array();

  // Metadata first: process and thread names, emitted per track in
  // registration order (deduplicating process_name per pid).
  std::map<std::uint32_t, bool> NamedPids;
  for (const Track &T : Tracks) {
    if (!NamedPids.count(T.Pid)) {
      NamedPids[T.Pid] = true;
      Json E = Json::object();
      E["ph"] = "M";
      E["name"] = "process_name";
      E["pid"] = T.Pid;
      E["tid"] = T.Tid;
      Json Args = Json::object();
      Args["name"] = T.Process;
      E["args"] = std::move(Args);
      Events.push(std::move(E));
    }
    Json E = Json::object();
    E["ph"] = "M";
    E["name"] = "thread_name";
    E["pid"] = T.Pid;
    E["tid"] = T.Tid;
    Json Args = Json::object();
    Args["name"] = T.Name;
    E["args"] = std::move(Args);
    Events.push(std::move(E));
  }

  for (const Track &T : Tracks) {
    for (const Event &Ev : T.Events) {
      Json E = Json::object();
      E["ph"] = std::string(1, Ev.Ph);
      if (Ev.Ph != 'E')
        E["name"] = Ev.Name;
      if (Ev.Ph == 'i')
        E["s"] = "t";
      E["pid"] = T.Pid;
      E["tid"] = T.Tid;
      E["ts"] = Ev.Ts;
      Events.push(std::move(E));
    }
    // Close anything still open so every B has a matching E.
    for (std::uint32_t K = 0; K < T.OpenSpans; ++K) {
      Json E = Json::object();
      E["ph"] = "E";
      E["pid"] = T.Pid;
      E["tid"] = T.Tid;
      E["ts"] = T.LastTs;
      Events.push(std::move(E));
    }
  }

  Json Root = Json::object();
  Root["displayTimeUnit"] = "ms";
  Root["traceEvents"] = std::move(Events);
  if (Dropped)
    Root["droppedEvents"] = Dropped;
  return Root;
}
