//===- metrics/Metrics.h - Low-overhead instrumentation registry -----------==//
//
// Named monotonic counters, gauges, and log-scale histograms for the
// simulators. Components accumulate into plain struct members on their hot
// paths and export here once per run, so an unattached registry costs
// nothing and an attached one costs a handful of map insertions at
// end-of-run. Export is deterministic: names live in std::map (sorted
// serialization), every value is derived from simulated cycles — never
// wall-clock — and histogram percentiles are integral bucket bounds, so a
// registry dump is a pure function of the simulated execution. That purity
// is what the golden metrics gate and the 1-thread-vs-N-thread sweep
// byte-identity contract rely on.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_METRICS_METRICS_H
#define JRPM_METRICS_METRICS_H

#include "support/Json.h"

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

namespace jrpm {
namespace metrics {

/// Monotonic counter: the API admits increments only, so a counter can
/// never decrease over the lifetime of a registry (an invariant the test
/// suite checks across pipeline phases).
class Counter {
public:
  void inc(std::uint64_t N = 1) { V += N; }
  std::uint64_t value() const { return V; }

private:
  std::uint64_t V = 0;
};

/// Point-in-time value. merge() keeps the maximum, which is the right
/// combination rule for the peaks (banks, slots, nest depth) we track.
class Gauge {
public:
  void set(std::uint64_t N) { V = N; }
  void peak(std::uint64_t N) {
    if (N > V)
      V = N;
  }
  std::uint64_t value() const { return V; }

private:
  std::uint64_t V = 0;
};

/// Log-scale histogram of unsigned 64-bit samples: power-of-two buckets
/// with four linear sub-buckets each (HdrHistogram-style), giving <= 25%
/// relative error on percentiles over the full range with 256 fixed
/// buckets and O(1) recording.
class Histogram {
public:
  static constexpr std::uint32_t NumBuckets = 256;

  // record() is inline: tracers call it once per loop iteration, so it
  // sits on the block-drain hot path.
  void record(std::uint64_t V) {
    ++Buckets[bucketIndex(V)];
    ++Count;
    Sum += V;
    if (V < Min)
      Min = V;
    if (V > Max)
      Max = V;
  }
  void merge(const Histogram &O);

  std::uint64_t count() const { return Count; }
  std::uint64_t sum() const { return Sum; }
  std::uint64_t min() const { return Count ? Min : 0; }
  std::uint64_t max() const { return Max; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count)
                 : 0.0;
  }

  /// Value at percentile \p P in [0, 100]: the inclusive upper bound of
  /// the bucket holding the sample of rank ceil(P/100 * count). Zero when
  /// empty. Monotone in P by construction (cumulative bucket scan).
  std::uint64_t percentile(double P) const;

  Json toJson() const;

private:
  static std::uint32_t bucketIndex(std::uint64_t V) {
    // Values below 8 get exact buckets; above that, the bucket is the
    // power-of-two magnitude split into four linear sub-buckets keyed by
    // the two bits after the leading one.
    if (V < 8)
      return static_cast<std::uint32_t>(V);
    std::uint32_t B = 63 - static_cast<std::uint32_t>(std::countl_zero(V));
    std::uint32_t Sub = static_cast<std::uint32_t>((V >> (B - 2)) & 3);
    std::uint32_t Idx = 8 + (B - 3) * 4 + Sub;
    return Idx < NumBuckets ? Idx : NumBuckets - 1;
  }
  static std::uint64_t bucketUpperBound(std::uint32_t Idx);

  std::array<std::uint64_t, NumBuckets> Buckets{};
  std::uint64_t Count = 0;
  std::uint64_t Sum = 0;
  std::uint64_t Min = ~std::uint64_t(0);
  std::uint64_t Max = 0;
};

/// The instrumentation registry: named metrics with stable storage (node
/// based maps), so components may cache references to hot metrics. Not
/// thread-safe by design — each sweep job owns a private registry and the
/// per-job registries are merged in plan order afterwards (deterministic
/// whatever the pool's scheduling was).
class Registry {
public:
  Counter &counter(const std::string &Name) { return Counters[Name]; }
  Gauge &gauge(const std::string &Name) { return Gauges[Name]; }
  Histogram &histogram(const std::string &Name) { return Histograms[Name]; }

  const std::map<std::string, Counter> &counters() const { return Counters; }
  const std::map<std::string, Gauge> &gauges() const { return Gauges; }
  const std::map<std::string, Histogram> &histograms() const {
    return Histograms;
  }

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }

  /// Folds \p O into this registry: counters add, gauges keep the peak,
  /// histograms merge bucket-wise.
  void merge(const Registry &O);

  /// merge() with every incoming name rewritten to \p Prefix + name. The
  /// serve daemon uses this to fold each request's private registry into
  /// its long-lived "serve." namespace without name collisions against the
  /// daemon's own counters.
  void mergePrefixed(const Registry &O, const std::string &Prefix);

  /// Deterministic export: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count,sum,min,max,mean,p50,p95,p99}}}.
  Json toJson() const;

private:
  std::map<std::string, Counter> Counters;
  std::map<std::string, Gauge> Gauges;
  std::map<std::string, Histogram> Histograms;
};

} // namespace metrics
} // namespace jrpm

#endif // JRPM_METRICS_METRICS_H
