//===- metrics/Timeline.h - Span-based event recorder ----------------------==//
//
// Records begin/end spans and instant events on named tracks and exports
// them as Chrome/Perfetto `trace_event` JSON (load the file in
// https://ui.perfetto.dev or chrome://tracing). A track is one (pid, tid)
// pair: the Hydra TLS engine registers one track per CPU, the tracer one
// track for the comparator-bank array, the sweep runner one per worker.
//
// Determinism contract: pid/tid assignment follows track registration
// order, so registering tracks in a fixed order (as every caller does)
// makes the mapping stable across runs; simulator tracks additionally use
// simulated cycles as timestamps (1 cycle = 1us in the viewer), making
// their whole event stream byte-identical run to run. Spans on one track
// must nest: begin/end calls follow a stack discipline, and any span still
// open at export time is closed at the track's last timestamp so every "B"
// event always has a matching "E".
//
// Recording is mutex-guarded; per-event cost is a lock plus a vector push,
// which the coarse users here (thread lifetimes, bank activations, sweep
// jobs — never per-instruction) keep far below simulation cost. An
// unattached timeline (null pointer at the call site) costs one predicted
// branch.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_METRICS_TIMELINE_H
#define JRPM_METRICS_TIMELINE_H

#include "support/Json.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace jrpm {
namespace metrics {

using TrackId = std::uint32_t;

class Timeline {
public:
  /// Registers a track. \p Process groups tracks into one Perfetto
  /// process row (e.g. "hydra"); \p Tid orders tracks within it; \p Name
  /// labels the thread row. Returns the id used by begin/end/instant.
  /// Registering the same (process, tid) twice returns the existing track.
  TrackId track(const std::string &Process, std::uint32_t Tid,
                const std::string &Name);

  void begin(TrackId Track, const std::string &Name, std::uint64_t Ts);
  void end(TrackId Track, std::uint64_t Ts);
  void instant(TrackId Track, const std::string &Name, std::uint64_t Ts);

  /// Caps the number of recorded events; once reached, further events are
  /// dropped (and counted) instead of growing the trace without bound.
  void setEventLimit(std::uint64_t Limit) { EventLimit = Limit; }
  std::uint64_t droppedEvents() const { return Dropped; }

  /// Chrome trace_event JSON: metadata (process/thread names) first, then
  /// each track's events in recording order — which respects span nesting.
  /// Open spans are closed at the track's last timestamp.
  Json toJson() const;

private:
  struct Event {
    char Ph; // 'B', 'E', 'i'
    std::string Name;
    std::uint64_t Ts;
  };
  struct Track {
    std::string Process;
    std::uint32_t Pid = 0;
    std::uint32_t Tid = 0;
    std::string Name;
    std::vector<Event> Events;
    std::uint32_t OpenSpans = 0;
    std::uint64_t LastTs = 0;
  };

  bool admit(); // must hold M; false once the event cap is hit

  mutable std::mutex M;
  std::vector<Track> Tracks;
  std::uint64_t EventLimit = 4u * 1000 * 1000;
  std::uint64_t Recorded = 0;
  std::uint64_t Dropped = 0;
};

} // namespace metrics
} // namespace jrpm

#endif // JRPM_METRICS_TIMELINE_H
