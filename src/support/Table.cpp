//===- support/Table.cpp --------------------------------------------------==//

#include "support/Table.h"

#include <algorithm>

using namespace jrpm;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

void TextTable::addSeparator() { Rows.emplace_back(); }

void TextTable::print(std::FILE *Stream) const {
  size_t Columns = Header.size();
  for (const auto &Row : Rows)
    Columns = std::max(Columns, Row.size());

  std::vector<size_t> Widths(Columns, 0);
  auto Measure = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Measure(Header);
  for (const auto &Row : Rows)
    Measure(Row);

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Columns; ++I) {
      const std::string Cell = I < Row.size() ? Row[I] : std::string();
      std::fprintf(Stream, "%-*s", static_cast<int>(Widths[I] + 2),
                   Cell.c_str());
    }
    std::fputc('\n', Stream);
  };

  auto PrintSeparator = [&] {
    for (size_t I = 0; I < Columns; ++I)
      std::fprintf(Stream, "%s", std::string(Widths[I] + 2, '-').c_str());
    std::fputc('\n', Stream);
  };

  if (!Header.empty()) {
    PrintRow(Header);
    PrintSeparator();
  }
  for (const auto &Row : Rows) {
    if (Row.empty())
      PrintSeparator();
    else
      PrintRow(Row);
  }
}
