//===- support/Format.cpp -------------------------------------------------==//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

using namespace jrpm;

std::string jrpm::formatString(const char *Fmt, ...) {
  std::va_list Args;
  va_start(Args, Fmt);
  std::va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::vector<char> Buffer(static_cast<size_t>(Needed) + 1);
  std::vsnprintf(Buffer.data(), Buffer.size(), Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return std::string(Buffer.data(), static_cast<size_t>(Needed));
}

std::string jrpm::withCommas(std::int64_t Value) {
  bool Negative = Value < 0;
  std::uint64_t Magnitude =
      Negative ? 0ull - static_cast<std::uint64_t>(Value)
               : static_cast<std::uint64_t>(Value);
  std::string Digits = std::to_string(Magnitude);
  std::string Out;
  int Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Out.push_back(',');
    Out.push_back(*It);
    ++Count;
  }
  if (Negative)
    Out.push_back('-');
  return std::string(Out.rbegin(), Out.rend());
}

std::string jrpm::asPercent(double Ratio, int Decimals) {
  return formatString("%.*f%%", Decimals, Ratio * 100.0);
}

std::string jrpm::asKiloCycles(std::uint64_t Cycles) {
  return formatString("%lluK",
                      static_cast<unsigned long long>((Cycles + 500) / 1000));
}
