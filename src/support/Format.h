//===- support/Format.h - String formatting helpers ----------------------===//
//
// printf-style formatting into std::string plus human-readable number
// rendering used by the bench harnesses when regenerating paper tables.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SUPPORT_FORMAT_H
#define JRPM_SUPPORT_FORMAT_H

#include <cstdint>
#include <string>

namespace jrpm {

/// Formats like printf but returns a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders \p Value with thousands separators, e.g. 98304K style when
/// \p Kilo is true (divide by 1000 and suffix 'K' as the paper's Table 5).
std::string withCommas(std::int64_t Value);

/// Renders a ratio as a fixed-point percentage string, e.g. "84.91%".
std::string asPercent(double Ratio, int Decimals = 2);

/// Renders a cycle count the way the paper prints Table 3 ("18941K").
std::string asKiloCycles(std::uint64_t Cycles);

} // namespace jrpm

#endif // JRPM_SUPPORT_FORMAT_H
