//===- support/Compiler.h - Portability and diagnostic macros ------------===//
//
// Part of the TEST/Jrpm reproduction. Implements utility macros shared by
// every library in the project.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SUPPORT_COMPILER_H
#define JRPM_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

/// Marks a point in the code that must never be executed. Prints the message
/// and aborts; also serves as an optimizer hint in fully covered switches.
#define JRPM_UNREACHABLE(Msg)                                                  \
  do {                                                                         \
    std::fprintf(stderr, "UNREACHABLE at %s:%d: %s\n", __FILE__, __LINE__,     \
                 (Msg));                                                       \
    std::abort();                                                              \
  } while (false)

/// Reports a fatal usage error (bad input to a tool) and exits.
#define JRPM_FATAL(Msg)                                                        \
  do {                                                                         \
    std::fprintf(stderr, "fatal error: %s\n", (Msg));                          \
    std::exit(1);                                                              \
  } while (false)

#endif // JRPM_SUPPORT_COMPILER_H
