//===- support/Json.h - Deterministic JSON values and atomic files --------===//
//
// A small JSON value tree for the sweep subsystem's structured results.
// Objects store their members in a std::map, so serialization always emits
// keys in sorted order; doubles render via a fixed "%.17g" round-trip
// format. Together these make the output a pure function of the values —
// the property the sweep determinism tests (1 thread vs N threads must be
// byte-identical) and the golden-file gate rely on.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SUPPORT_JSON_H
#define JRPM_SUPPORT_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace jrpm {

class Json {
public:
  enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  Json(bool V) : K(Kind::Bool), B(V) {}
  Json(std::int64_t V) : K(Kind::Int), I(V) {}
  Json(std::uint64_t V) : K(Kind::Uint), U(V) {}
  Json(int V) : K(Kind::Int), I(V) {}
  Json(unsigned V) : K(Kind::Uint), U(V) {}
  Json(double V) : K(Kind::Double), D(V) {}
  Json(std::string V) : K(Kind::String), S(std::move(V)) {}
  Json(const char *V) : K(Kind::String), S(V) {}

  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }

  Kind kind() const { return K; }

  /// Object member access; inserts a Null member on first use. Asserts the
  /// value is (or becomes) an object.
  Json &operator[](const std::string &Key);

  /// Array append.
  void push(Json V);

  // --- Read access (for parsed documents) ---------------------------------
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const {
    return K == Kind::Int || K == Kind::Uint || K == Kind::Double;
  }
  /// Object member, or null when absent / not an object.
  const Json *find(const std::string &Key) const;
  const std::map<std::string, Json> &members() const { return Obj; }
  const std::vector<Json> &items() const { return Arr; }
  const std::string &str() const { return S; }
  bool boolean() const { return B; }
  /// Unified numeric view (Int/Uint/Double all convert; else 0).
  double number() const;
  std::uint64_t asUint() const;

  /// Maximum container nesting depth parse() accepts. Deeper documents are
  /// rejected with a typed error instead of recursing toward a stack
  /// overflow — a requirement now that the serve daemon parses frames from
  /// untrusted sockets (depth bombs are a classic protocol attack).
  static constexpr int MaxParseDepth = 96;

  /// Parses \p Text (the subset this class emits: null, bool, numbers,
  /// strings with the escapes jsonEscape produces plus \/ and \uXXXX for
  /// ASCII, arrays, objects). Returns false with *Err set on malformed
  /// input (including nesting beyond MaxParseDepth). Duplicate object keys
  /// keep the last value.
  static bool parse(const std::string &Text, Json &Out,
                    std::string *Err = nullptr);

  /// Serializes with two-space indentation, sorted object keys, and a
  /// trailing newline at the top level.
  std::string dump() const;

private:
  void render(std::string &Out, int Depth) const;

  Kind K;
  bool B = false;
  std::int64_t I = 0;
  std::uint64_t U = 0;
  double D = 0;
  std::string S;
  std::vector<Json> Arr;
  std::map<std::string, Json> Obj;
};

/// Escapes \p V as a JSON string literal (with surrounding quotes).
std::string jsonEscape(const std::string &V);

} // namespace jrpm

#endif // JRPM_SUPPORT_JSON_H
