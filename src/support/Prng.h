//===- support/Prng.h - Deterministic pseudo-random numbers --------------===//
//
// All workloads use this xorshift64* generator so every simulation run is
// bit-for-bit reproducible across platforms and standard libraries.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SUPPORT_PRNG_H
#define JRPM_SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>

namespace jrpm {

/// Deterministic xorshift64* pseudo-random number generator.
class Prng {
public:
  explicit Prng(std::uint64_t Seed = 0x9E3779B97F4A7C15ull)
      : State(Seed ? Seed : 1) {}

  /// Returns the next 64 pseudo-random bits.
  std::uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }

  /// Returns a value uniformly distributed in [0, Bound).
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  std::uint64_t State;
};

} // namespace jrpm

#endif // JRPM_SUPPORT_PRNG_H
