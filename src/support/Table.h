//===- support/Table.h - Aligned text-table rendering --------------------===//
//
// The bench harnesses regenerate the paper's tables; this class renders rows
// of string cells with aligned columns to any FILE stream.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SUPPORT_TABLE_H
#define JRPM_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace jrpm {

/// Accumulates rows of cells and prints them with per-column alignment.
class TextTable {
public:
  /// Sets the header row. Column count is fixed by the header.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row; missing trailing cells render empty.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator row.
  void addSeparator();

  /// Renders the table to \p Stream (defaults to stdout).
  void print(std::FILE *Stream = stdout) const;

private:
  std::vector<std::string> Header;
  // Separator rows are represented by an empty vector.
  std::vector<std::vector<std::string>> Rows;
};

} // namespace jrpm

#endif // JRPM_SUPPORT_TABLE_H
