//===- support/AtomicFile.h - Crash-safe file writes -----------------------==//
//
// The one way any Jrpm component persists bytes: write to a sibling
// temporary file, fsync it, then rename over the target. A reader that
// races the writer sees either the old file or the complete new one, and a
// crash (or power loss) between any two steps leaves the target untouched —
// the property the sweep report writer has always relied on and the serve
// daemon's content-addressed artifact store now requires of every write
// (a half-written artifact would be served as a cache hit forever).
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SUPPORT_ATOMICFILE_H
#define JRPM_SUPPORT_ATOMICFILE_H

#include <string>

namespace jrpm {

/// Writes \p Content to \p Path atomically and durably: the bytes go to a
/// sibling temporary file which is flushed, fsync'd, and renamed over the
/// target. Returns false (with *Err set) on I/O failure; the target is
/// never left torn and the temporary is cleaned up.
bool writeFileAtomic(const std::string &Path, const std::string &Content,
                     std::string *Err = nullptr);

/// Reads the whole of \p Path into \p Out (binary-clean). Returns false
/// (with *Err set) when the file cannot be opened or read.
bool readFileToString(const std::string &Path, std::string &Out,
                      std::string *Err = nullptr);

} // namespace jrpm

#endif // JRPM_SUPPORT_ATOMICFILE_H
