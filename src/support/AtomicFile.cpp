//===- support/AtomicFile.cpp ---------------------------------------------==//

#include "support/AtomicFile.h"

#include <cstdio>
#include <unistd.h>

using namespace jrpm;

bool jrpm::writeFileAtomic(const std::string &Path, const std::string &Content,
                           std::string *Err) {
  std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Tmp + " for writing";
    return false;
  }
  bool Ok = std::fwrite(Content.data(), 1, Content.size(), F) ==
            Content.size();
  Ok &= std::fflush(F) == 0;
  // Force the bytes to stable storage before the rename publishes the
  // file: rename-over is atomic against readers, but without the fsync a
  // crash could publish a name whose data blocks never hit disk.
  if (Ok)
    Ok &= fsync(fileno(F)) == 0;
  Ok &= std::fclose(F) == 0;
  if (Ok && std::rename(Tmp.c_str(), Path.c_str()) != 0)
    Ok = false;
  if (!Ok) {
    std::remove(Tmp.c_str());
    if (Err)
      *Err = "failed writing " + Path;
  }
  return Ok;
}

bool jrpm::readFileToString(const std::string &Path, std::string &Out,
                            std::string *Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  Out.clear();
  char Buf[1 << 16];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof Buf, F)) > 0)
    Out.append(Buf, N);
  bool Ok = !std::ferror(F);
  std::fclose(F);
  if (!Ok && Err)
    *Err = "read error on " + Path;
  return Ok;
}
