//===- support/Json.cpp ---------------------------------------------------==//

#include "support/Json.h"

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <unistd.h>

using namespace jrpm;

Json &Json::operator[](const std::string &Key) {
  if (K == Kind::Null)
    K = Kind::Object;
  assert(K == Kind::Object && "indexing a non-object Json value");
  return Obj[Key];
}

void Json::push(Json V) {
  if (K == Kind::Null)
    K = Kind::Array;
  assert(K == Kind::Array && "appending to a non-array Json value");
  Arr.push_back(std::move(V));
}

std::string jrpm::jsonEscape(const std::string &V) {
  std::string Out;
  Out.reserve(V.size() + 2);
  Out.push_back('"');
  for (unsigned char C : V) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  Out.push_back('"');
  return Out;
}

void Json::render(std::string &Out, int Depth) const {
  const std::string Indent(static_cast<std::size_t>(Depth) * 2, ' ');
  const std::string Inner(static_cast<std::size_t>(Depth + 1) * 2, ' ');
  char Buf[64];
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Int:
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, I);
    Out += Buf;
    break;
  case Kind::Uint:
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, U);
    Out += Buf;
    break;
  case Kind::Double:
    // %.17g round-trips every finite double and is a pure function of the
    // bit pattern, which the byte-identity contract needs.
    if (std::isfinite(D)) {
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
      Out += Buf;
    } else {
      Out += "null";
    }
    break;
  case Kind::String:
    Out += jsonEscape(S);
    break;
  case Kind::Array:
    if (Arr.empty()) {
      Out += "[]";
      break;
    }
    Out += "[\n";
    for (std::size_t N = 0; N < Arr.size(); ++N) {
      Out += Inner;
      Arr[N].render(Out, Depth + 1);
      Out += N + 1 < Arr.size() ? ",\n" : "\n";
    }
    Out += Indent + "]";
    break;
  case Kind::Object:
    if (Obj.empty()) {
      Out += "{}";
      break;
    }
    Out += "{\n";
    {
      std::size_t N = 0;
      for (const auto &[Key, Value] : Obj) {
        Out += Inner + jsonEscape(Key) + ": ";
        Value.render(Out, Depth + 1);
        Out += ++N < Obj.size() ? ",\n" : "\n";
      }
    }
    Out += Indent + "}";
    break;
  }
}

std::string Json::dump() const {
  std::string Out;
  render(Out, 0);
  Out.push_back('\n');
  return Out;
}

bool jrpm::writeFileAtomic(const std::string &Path, const std::string &Content,
                           std::string *Err) {
  std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Tmp + " for writing";
    return false;
  }
  bool Ok = std::fwrite(Content.data(), 1, Content.size(), F) ==
            Content.size();
  Ok &= std::fflush(F) == 0;
  Ok &= std::fclose(F) == 0;
  if (Ok && std::rename(Tmp.c_str(), Path.c_str()) != 0)
    Ok = false;
  if (!Ok) {
    std::remove(Tmp.c_str());
    if (Err)
      *Err = "failed writing " + Path;
  }
  return Ok;
}
