//===- support/Json.cpp ---------------------------------------------------==//

#include "support/Json.h"

#include <cassert>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

using namespace jrpm;

Json &Json::operator[](const std::string &Key) {
  if (K == Kind::Null)
    K = Kind::Object;
  assert(K == Kind::Object && "indexing a non-object Json value");
  return Obj[Key];
}

void Json::push(Json V) {
  if (K == Kind::Null)
    K = Kind::Array;
  assert(K == Kind::Array && "appending to a non-array Json value");
  Arr.push_back(std::move(V));
}

std::string jrpm::jsonEscape(const std::string &V) {
  std::string Out;
  Out.reserve(V.size() + 2);
  Out.push_back('"');
  for (unsigned char C : V) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  Out.push_back('"');
  return Out;
}

void Json::render(std::string &Out, int Depth) const {
  const std::string Indent(static_cast<std::size_t>(Depth) * 2, ' ');
  const std::string Inner(static_cast<std::size_t>(Depth + 1) * 2, ' ');
  char Buf[64];
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Int:
    std::snprintf(Buf, sizeof(Buf), "%" PRId64, I);
    Out += Buf;
    break;
  case Kind::Uint:
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64, U);
    Out += Buf;
    break;
  case Kind::Double:
    // %.17g round-trips every finite double and is a pure function of the
    // bit pattern, which the byte-identity contract needs.
    if (std::isfinite(D)) {
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
      Out += Buf;
    } else {
      Out += "null";
    }
    break;
  case Kind::String:
    Out += jsonEscape(S);
    break;
  case Kind::Array:
    if (Arr.empty()) {
      Out += "[]";
      break;
    }
    Out += "[\n";
    for (std::size_t N = 0; N < Arr.size(); ++N) {
      Out += Inner;
      Arr[N].render(Out, Depth + 1);
      Out += N + 1 < Arr.size() ? ",\n" : "\n";
    }
    Out += Indent + "]";
    break;
  case Kind::Object:
    if (Obj.empty()) {
      Out += "{}";
      break;
    }
    Out += "{\n";
    {
      std::size_t N = 0;
      for (const auto &[Key, Value] : Obj) {
        Out += Inner + jsonEscape(Key) + ": ";
        Value.render(Out, Depth + 1);
        Out += ++N < Obj.size() ? ",\n" : "\n";
      }
    }
    Out += Indent + "}";
    break;
  }
}

const Json *Json::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = Obj.find(Key);
  return It == Obj.end() ? nullptr : &It->second;
}

double Json::number() const {
  switch (K) {
  case Kind::Int:
    return static_cast<double>(I);
  case Kind::Uint:
    return static_cast<double>(U);
  case Kind::Double:
    return D;
  default:
    return 0.0;
  }
}

std::uint64_t Json::asUint() const {
  switch (K) {
  case Kind::Int:
    return I >= 0 ? static_cast<std::uint64_t>(I) : 0;
  case Kind::Uint:
    return U;
  case Kind::Double:
    return D >= 0 ? static_cast<std::uint64_t>(D) : 0;
  default:
    return 0;
  }
}

namespace {

/// Recursive-descent parser over the serialization subset dump() emits.
class JsonParser {
public:
  JsonParser(const std::string &Text, std::string *Err)
      : T(Text), Err(Err) {}

  bool parse(Json &Out) {
    skipWs();
    if (!value(Out))
      return false;
    skipWs();
    if (Pos != T.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    if (Err)
      *Err = "json parse error at offset " + std::to_string(Pos) + ": " +
             Msg;
    return false;
  }

  void skipWs() {
    while (Pos < T.size() && (T[Pos] == ' ' || T[Pos] == '\t' ||
                              T[Pos] == '\n' || T[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    std::size_t N = std::strlen(Word);
    if (T.compare(Pos, N, Word) != 0)
      return fail(std::string("expected '") + Word + "'");
    Pos += N;
    return true;
  }

  bool value(Json &Out) {
    if (Pos >= T.size())
      return fail("unexpected end of input");
    if (Depth > Json::MaxParseDepth)
      return fail("nesting deeper than " +
                  std::to_string(Json::MaxParseDepth) + " levels");
    switch (T[Pos]) {
    case 'n':
      Out = Json();
      return literal("null");
    case 't':
      Out = Json(true);
      return literal("true");
    case 'f':
      Out = Json(false);
      return literal("false");
    case '"': {
      std::string S;
      if (!string(S))
        return false;
      Out = Json(std::move(S));
      return true;
    }
    case '[':
      return array(Out);
    case '{':
      return object(Out);
    default:
      return numberValue(Out);
    }
  }

  bool string(std::string &Out) {
    if (T[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < T.size() && T[Pos] != '"') {
      char C = T[Pos];
      if (C != '\\') {
        Out.push_back(C);
        ++Pos;
        continue;
      }
      if (Pos + 1 >= T.size())
        return fail("dangling escape");
      char E = T[Pos + 1];
      Pos += 2;
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'u': {
        if (Pos + 4 > T.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int K = 0; K < 4; ++K) {
          char H = T[Pos + static_cast<std::size_t>(K)];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("bad \\u escape digit");
        }
        Pos += 4;
        if (V > 0x7f)
          return fail("non-ASCII \\u escape unsupported");
        Out.push_back(static_cast<char>(V));
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (Pos >= T.size())
      return fail("unterminated string");
    ++Pos; // closing quote
    return true;
  }

  bool numberValue(Json &Out) {
    std::size_t Start = Pos;
    bool Neg = Pos < T.size() && T[Pos] == '-';
    if (Neg)
      ++Pos;
    bool Fractional = false;
    while (Pos < T.size()) {
      char C = T[Pos];
      if (C >= '0' && C <= '9') {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '+' || C == '-') {
        Fractional = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start + (Neg ? 1u : 0u))
      return fail("expected value");
    std::string Tok = T.substr(Start, Pos - Start);
    errno = 0;
    if (!Fractional) {
      if (Neg) {
        long long V = std::strtoll(Tok.c_str(), nullptr, 10);
        if (errno == 0) {
          Out = Json(static_cast<std::int64_t>(V));
          return true;
        }
      } else {
        unsigned long long V = std::strtoull(Tok.c_str(), nullptr, 10);
        if (errno == 0) {
          Out = Json(static_cast<std::uint64_t>(V));
          return true;
        }
      }
      errno = 0; // overflow: fall through to double
    }
    char *End = nullptr;
    double D = std::strtod(Tok.c_str(), &End);
    if (End != Tok.c_str() + Tok.size() || errno == ERANGE)
      return fail("malformed number '" + Tok + "'");
    Out = Json(D);
    return true;
  }

  bool array(Json &Out) {
    ++Pos; // '['
    ++Depth;
    Out = Json::array();
    skipWs();
    if (Pos < T.size() && T[Pos] == ']') {
      ++Pos;
      --Depth;
      return true;
    }
    while (true) {
      Json V;
      skipWs();
      if (!value(V))
        return false;
      Out.push(std::move(V));
      skipWs();
      if (Pos >= T.size())
        return fail("unterminated array");
      if (T[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (T[Pos] == ']') {
        ++Pos;
        --Depth;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object(Json &Out) {
    ++Pos; // '{'
    ++Depth;
    Out = Json::object();
    skipWs();
    if (Pos < T.size() && T[Pos] == '}') {
      ++Pos;
      --Depth;
      return true;
    }
    while (true) {
      skipWs();
      std::string Key;
      if (Pos >= T.size() || T[Pos] != '"')
        return fail("expected object key");
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= T.size() || T[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      skipWs();
      Json V;
      if (!value(V))
        return false;
      Out[Key] = std::move(V);
      skipWs();
      if (Pos >= T.size())
        return fail("unterminated object");
      if (T[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (T[Pos] == '}') {
        ++Pos;
        --Depth;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string &T;
  std::string *Err;
  std::size_t Pos = 0;
  int Depth = 0;
};

} // namespace

bool Json::parse(const std::string &Text, Json &Out, std::string *Err) {
  return JsonParser(Text, Err).parse(Out);
}

std::string Json::dump() const {
  std::string Out;
  render(Out, 0);
  Out.push_back('\n');
  return Out;
}
