//===- support/Stats.h - Running statistics accumulators -----------------===//
//
// Small accumulators used throughout the tracer and simulators.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SUPPORT_STATS_H
#define JRPM_SUPPORT_STATS_H

#include <algorithm>
#include <cstdint>
#include <limits>

namespace jrpm {

/// Accumulates count/sum/min/max of a stream of samples.
class RunningStat {
public:
  void addSample(double Value) {
    Sum += Value;
    Min = std::min(Min, Value);
    Max = std::max(Max, Value);
    ++Count;
  }

  std::uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }
  double min() const { return Count ? Min : 0; }
  double max() const { return Count ? Max : 0; }

  void reset() { *this = RunningStat(); }

private:
  std::uint64_t Count = 0;
  double Sum = 0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
};

} // namespace jrpm

#endif // JRPM_SUPPORT_STATS_H
