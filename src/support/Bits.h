//===- support/Bits.h - Register bit-pattern reinterpretation --------------==//
//
// The simulators keep every value in a 64-bit register word: integers
// directly, doubles as their IEEE bit pattern. These helpers are the one
// sanctioned way to move between the views (previously copied into each
// interpreter translation unit).
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SUPPORT_BITS_H
#define JRPM_SUPPORT_BITS_H

#include <bit>
#include <cstdint>

namespace jrpm {
namespace bits {

/// Double view of a register word.
inline double asF(std::uint64_t V) { return std::bit_cast<double>(V); }

/// Register word holding the bit pattern of \p V.
inline std::uint64_t asU(double V) { return std::bit_cast<std::uint64_t>(V); }

/// Signed integer view of a register word.
inline std::int64_t asI(std::uint64_t V) {
  return static_cast<std::int64_t>(V);
}

} // namespace bits
} // namespace jrpm

#endif // JRPM_SUPPORT_BITS_H
