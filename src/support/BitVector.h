//===- support/BitVector.h - Dense bit vector ------------------------------==//

#ifndef JRPM_SUPPORT_BITVECTOR_H
#define JRPM_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace jrpm {

/// Fixed-size dense bit vector with the set operations the dataflow
/// analyses need.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(std::uint32_t Size)
      : NumBits(Size), Words((Size + 63) / 64, 0) {}

  std::uint32_t size() const { return NumBits; }

  bool test(std::uint32_t Bit) const {
    assert(Bit < NumBits && "bit out of range");
    return (Words[Bit / 64] >> (Bit % 64)) & 1;
  }

  void set(std::uint32_t Bit) {
    assert(Bit < NumBits && "bit out of range");
    Words[Bit / 64] |= (std::uint64_t(1) << (Bit % 64));
  }

  void reset(std::uint32_t Bit) {
    assert(Bit < NumBits && "bit out of range");
    Words[Bit / 64] &= ~(std::uint64_t(1) << (Bit % 64));
  }

  void clear() {
    for (std::uint64_t &W : Words)
      W = 0;
  }

  /// this |= Other. Returns true if any bit changed.
  bool unionWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    bool Changed = false;
    for (std::size_t I = 0; I < Words.size(); ++I) {
      std::uint64_t Old = Words[I];
      Words[I] |= Other.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// this &= ~Other.
  void subtract(const BitVector &Other) {
    assert(NumBits == Other.NumBits && "size mismatch");
    for (std::size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~Other.Words[I];
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  std::uint32_t count() const {
    std::uint32_t Total = 0;
    for (std::uint64_t W : Words)
      Total += static_cast<std::uint32_t>(__builtin_popcountll(W));
    return Total;
  }

private:
  std::uint32_t NumBits = 0;
  std::vector<std::uint64_t> Words;
};

} // namespace jrpm

#endif // JRPM_SUPPORT_BITVECTOR_H
