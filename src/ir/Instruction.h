//===- ir/Instruction.h - Fixed-format IR instruction ---------------------===//

#ifndef JRPM_IR_INSTRUCTION_H
#define JRPM_IR_INSTRUCTION_H

#include "ir/Opcode.h"

#include <cstdint>

namespace jrpm {
namespace ir {

/// One fixed-format instruction. Operand meaning is opcode specific; see
/// Opcode.h. Pc is a module-global program counter assigned by
/// Module::finalize() and used by the tracer's extended PC-binning mode.
struct Instruction {
  Opcode Op = Opcode::Nop;
  std::uint16_t Dst = NoReg;
  std::uint16_t A = NoReg;
  std::uint16_t B = NoReg;
  std::int64_t Imm = 0;
  std::int32_t Imm2 = 0;
  std::int32_t Pc = -1;
};

} // namespace ir
} // namespace jrpm

#endif // JRPM_IR_INSTRUCTION_H
