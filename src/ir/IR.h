//===- ir/IR.h - BasicBlock, Function, Module -----------------------------===//
//
// Container classes for the mini IR. A Function owns a vector of basic
// blocks; each block holds straight-line instructions ended by exactly one
// terminator. Branch targets are block indices within the function.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_IR_IR_H
#define JRPM_IR_IR_H

#include "ir/Instruction.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace jrpm {
namespace ir {

/// A straight-line sequence of instructions ending in a terminator.
class BasicBlock {
public:
  std::vector<Instruction> Instructions;

  bool hasTerminator() const {
    return !Instructions.empty() && isTerminator(Instructions.back().Op);
  }

  const Instruction &terminator() const {
    assert(hasTerminator() && "block has no terminator");
    return Instructions.back();
  }

  /// Appends the successor block indices of this block to \p Out.
  void appendSuccessors(std::vector<std::uint32_t> &Out) const;
};

/// A function: a CFG of basic blocks over a flat file of virtual registers
/// (the analog of a Java method's locals). Parameters arrive in registers
/// [0, NumParams).
class Function {
public:
  std::string Name;
  std::uint32_t NumParams = 0;
  std::uint32_t NumRegs = 0;
  std::vector<BasicBlock> Blocks;

  /// Registers that correspond to source-level named locals (set by the
  /// frontend). Only these are eligible for `lwl`/`swl` annotations; the
  /// compiler's expression temporaries never carry loop dependencies
  /// (Section 5.1: "block-local and temporary variables are not annotated").
  std::vector<std::pair<std::string, std::uint16_t>> NamedLocals;

  std::uint32_t numBlocks() const {
    return static_cast<std::uint32_t>(Blocks.size());
  }

  /// Computes the predecessor lists of every block.
  std::vector<std::vector<std::uint32_t>> computePredecessors() const;

  /// Renders the function as text (for debugging and tests).
  std::string dump() const;
};

/// A whole program: functions plus the designated entry function.
class Module {
public:
  std::vector<Function> Functions;
  std::uint32_t EntryFunction = 0;

  /// Returns the index of the function named \p Name, or -1 if absent.
  int findFunction(const std::string &Name) const;

  /// Assigns module-global PCs to every instruction. Must be called after
  /// all passes that insert or remove instructions and before execution.
  void finalize();

  /// Total number of instructions across all functions (valid after
  /// finalize()).
  std::uint32_t totalInstructions() const { return NextPc; }

  /// Renders the module as text.
  std::string dump() const;

private:
  std::uint32_t NextPc = 0;
};

} // namespace ir
} // namespace jrpm

#endif // JRPM_IR_IR_H
