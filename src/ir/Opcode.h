//===- ir/Opcode.h - Instruction opcodes for the mini IR ------------------===//
//
// The register-based IR plays the role Java bytecode plays in Jrpm: the
// frontend lowers structured programs into it, the analysis passes find
// natural loops in it, the JIT-analog passes annotate and transform it, and
// the interpreters execute it one instruction per simulated cycle.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_IR_OPCODE_H
#define JRPM_IR_OPCODE_H

#include <cstdint>

namespace jrpm {
namespace ir {

/// Instruction opcodes. Integer values live in 64-bit registers; floating
/// point values are IEEE doubles stored as bit patterns in the same
/// registers.
enum class Opcode : std::uint8_t {
  // Integer arithmetic: Dst = A <op> B.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  // Dst = A + Imm (the iinc-style immediate form used by loop inductors).
  AddImm,
  // Floating point arithmetic: Dst = A <op> B on double bit patterns.
  FAdd,
  FSub,
  FMul,
  FDiv,
  FNeg,
  FSqrt,
  // Conversions between the integer and double interpretations.
  IToF,
  FToI,
  // Comparisons: Dst = (A <cmp> B) ? 1 : 0 (signed integer).
  CmpEQ,
  CmpNE,
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  // Floating point comparisons.
  FCmpEQ,
  FCmpLT,
  FCmpLE,
  // Constants and moves.
  ConstI, // Dst = Imm
  ConstF, // Dst = bit pattern stored in Imm
  Mov,    // Dst = A
  // Memory. The heap is word addressed (one word = 8 bytes; a 32-byte cache
  // line holds 4 words). Effective address = R[A] + R[B] + Imm where either
  // register may be NoReg (treated as zero).
  Load,  // Dst = heap[ea]
  Store, // heap[ea] = R[Val] where Val is the Dst field
  // Heap allocation: Dst = base word address of Imm words (or R[A] words
  // when A != NoReg). Bump allocation, cache-line aligned.
  Alloc,
  // Control flow (block indices within the function).
  Br,     // goto Imm
  CondBr, // if R[A] != 0 goto Imm else goto Imm2
  Call,   // Dst = call function #Imm (args staged by Arg)
  Arg,    // stage R[A] as argument #Imm for the next Call
  Ret,    // return R[A] (A == NoReg for void)
  // Profiling annotations inserted by the annotator (Section 5.1 of the
  // paper). They are no-ops outside profiling mode.
  SLoop,     // enter candidate STL: Imm = loop id, Imm2 = local slot count
  Eoi,       // end of iteration of loop Imm
  ELoop,     // exit candidate STL Imm
  LwlAnno,   // local variable load annotation: A = register, Imm2 = slot
  SwlAnno,   // local variable store annotation: A = register, Imm2 = slot
  ReadStats, // statistics read-out routine for loop Imm (costs cycles)
  Nop,
};

/// Sentinel meaning "no register operand".
inline constexpr std::uint16_t NoReg = 0xFFFF;

/// Returns the mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// Returns true if \p Op ends a basic block.
bool isTerminator(Opcode Op);

/// Returns true if \p Op writes its Dst register.
bool definesDst(Opcode Op);

/// Returns true if \p Op is one of the profiling annotation opcodes.
bool isAnnotation(Opcode Op);

} // namespace ir
} // namespace jrpm

#endif // JRPM_IR_OPCODE_H
