//===- ir/IRBuilder.cpp ---------------------------------------------------==//

#include "ir/IRBuilder.h"

#include <bit>
#include <cassert>

using namespace jrpm;
using namespace jrpm::ir;

std::uint32_t IRBuilder::createFunction(const std::string &Name,
                                        std::uint32_t NumParams) {
  Function F;
  F.Name = Name;
  F.NumParams = NumParams;
  F.NumRegs = NumParams;
  F.Blocks.emplace_back();
  M.Functions.push_back(std::move(F));
  FuncIndex = static_cast<std::uint32_t>(M.Functions.size() - 1);
  BlockIndex = 0;
  return FuncIndex;
}

void IRBuilder::setFunction(std::uint32_t NewFunc, std::uint32_t NewBlock) {
  assert(NewFunc < M.Functions.size() && "function index out of range");
  FuncIndex = NewFunc;
  BlockIndex = NewBlock;
}

std::uint16_t IRBuilder::newReg() {
  Function &F = function();
  assert(F.NumRegs < NoReg && "register file exhausted");
  return static_cast<std::uint16_t>(F.NumRegs++);
}

std::uint32_t IRBuilder::newBlock() {
  Function &F = function();
  F.Blocks.emplace_back();
  return static_cast<std::uint32_t>(F.Blocks.size() - 1);
}

void IRBuilder::setBlock(std::uint32_t Block) {
  assert(Block < function().numBlocks() && "block index out of range");
  BlockIndex = Block;
}

Instruction &IRBuilder::emit(const Instruction &I) {
  BasicBlock &BB = function().Blocks[BlockIndex];
  assert(!BB.hasTerminator() && "emitting after terminator");
  BB.Instructions.push_back(I);
  return BB.Instructions.back();
}

std::uint16_t IRBuilder::emitBinary(Opcode Op, std::uint16_t A,
                                    std::uint16_t B) {
  std::uint16_t Dst = newReg();
  emitBinaryInto(Op, Dst, A, B);
  return Dst;
}

void IRBuilder::emitBinaryInto(Opcode Op, std::uint16_t Dst, std::uint16_t A,
                               std::uint16_t B) {
  Instruction I;
  I.Op = Op;
  I.Dst = Dst;
  I.A = A;
  I.B = B;
  emit(I);
}

std::uint16_t IRBuilder::emitAddImm(std::uint16_t A, std::int64_t Imm) {
  std::uint16_t Dst = newReg();
  emitAddImmInto(Dst, A, Imm);
  return Dst;
}

void IRBuilder::emitAddImmInto(std::uint16_t Dst, std::uint16_t A,
                               std::int64_t Imm) {
  Instruction I;
  I.Op = Opcode::AddImm;
  I.Dst = Dst;
  I.A = A;
  I.Imm = Imm;
  emit(I);
}

std::uint16_t IRBuilder::emitConstI(std::int64_t Value) {
  std::uint16_t Dst = newReg();
  emitConstIInto(Dst, Value);
  return Dst;
}

void IRBuilder::emitConstIInto(std::uint16_t Dst, std::int64_t Value) {
  Instruction I;
  I.Op = Opcode::ConstI;
  I.Dst = Dst;
  I.Imm = Value;
  emit(I);
}

std::uint16_t IRBuilder::emitConstF(double Value) {
  Instruction I;
  I.Op = Opcode::ConstF;
  I.Dst = newReg();
  I.Imm = static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(Value));
  emit(I);
  return I.Dst;
}

void IRBuilder::emitMov(std::uint16_t Dst, std::uint16_t Src) {
  Instruction I;
  I.Op = Opcode::Mov;
  I.Dst = Dst;
  I.A = Src;
  emit(I);
}

std::uint16_t IRBuilder::emitUnary(Opcode Op, std::uint16_t A) {
  Instruction I;
  I.Op = Op;
  I.Dst = newReg();
  I.A = A;
  emit(I);
  return I.Dst;
}

std::uint16_t IRBuilder::emitLoad(std::uint16_t Base, std::uint16_t Index,
                                  std::int64_t Offset) {
  std::uint16_t Dst = newReg();
  emitLoadInto(Dst, Base, Index, Offset);
  return Dst;
}

void IRBuilder::emitLoadInto(std::uint16_t Dst, std::uint16_t Base,
                             std::uint16_t Index, std::int64_t Offset) {
  Instruction I;
  I.Op = Opcode::Load;
  I.Dst = Dst;
  I.A = Base;
  I.B = Index;
  I.Imm = Offset;
  emit(I);
}

void IRBuilder::emitStore(std::uint16_t Value, std::uint16_t Base,
                          std::uint16_t Index, std::int64_t Offset) {
  Instruction I;
  I.Op = Opcode::Store;
  I.Dst = Value;
  I.A = Base;
  I.B = Index;
  I.Imm = Offset;
  emit(I);
}

std::uint16_t IRBuilder::emitAllocWords(std::int64_t Words) {
  Instruction I;
  I.Op = Opcode::Alloc;
  I.Dst = newReg();
  I.Imm = Words;
  emit(I);
  return I.Dst;
}

std::uint16_t IRBuilder::emitAllocWordsReg(std::uint16_t SizeReg) {
  Instruction I;
  I.Op = Opcode::Alloc;
  I.Dst = newReg();
  I.A = SizeReg;
  emit(I);
  return I.Dst;
}

void IRBuilder::emitBr(std::uint32_t Target) {
  Instruction I;
  I.Op = Opcode::Br;
  I.Imm = Target;
  emit(I);
}

void IRBuilder::emitCondBr(std::uint16_t Cond, std::uint32_t TrueTarget,
                           std::uint32_t FalseTarget) {
  Instruction I;
  I.Op = Opcode::CondBr;
  I.A = Cond;
  I.Imm = TrueTarget;
  I.Imm2 = static_cast<std::int32_t>(FalseTarget);
  emit(I);
}

void IRBuilder::emitRet(std::uint16_t Value) {
  Instruction I;
  I.Op = Opcode::Ret;
  I.A = Value;
  emit(I);
}

std::uint16_t IRBuilder::emitCall(std::uint32_t Callee,
                                  const std::vector<std::uint16_t> &Args,
                                  bool WantResult) {
  for (std::uint32_t Slot = 0; Slot < Args.size(); ++Slot) {
    Instruction ArgI;
    ArgI.Op = Opcode::Arg;
    ArgI.A = Args[Slot];
    ArgI.Imm = Slot;
    emit(ArgI);
  }
  Instruction I;
  I.Op = Opcode::Call;
  I.Dst = WantResult ? newReg() : NoReg;
  I.Imm = Callee;
  emit(I);
  return I.Dst;
}
