//===- ir/IR.cpp ----------------------------------------------------------==//

#include "ir/IR.h"

#include "support/Format.h"

using namespace jrpm;
using namespace jrpm::ir;

void BasicBlock::appendSuccessors(std::vector<std::uint32_t> &Out) const {
  if (!hasTerminator())
    return;
  const Instruction &Term = terminator();
  switch (Term.Op) {
  case Opcode::Br:
    Out.push_back(static_cast<std::uint32_t>(Term.Imm));
    break;
  case Opcode::CondBr:
    Out.push_back(static_cast<std::uint32_t>(Term.Imm));
    Out.push_back(static_cast<std::uint32_t>(Term.Imm2));
    break;
  case Opcode::Ret:
    break;
  default:
    break;
  }
}

std::vector<std::vector<std::uint32_t>> Function::computePredecessors() const {
  std::vector<std::vector<std::uint32_t>> Preds(Blocks.size());
  std::vector<std::uint32_t> Succs;
  for (std::uint32_t B = 0; B < Blocks.size(); ++B) {
    Succs.clear();
    Blocks[B].appendSuccessors(Succs);
    for (std::uint32_t S : Succs)
      Preds[S].push_back(B);
  }
  return Preds;
}

static std::string renderOperand(std::uint16_t Reg) {
  if (Reg == NoReg)
    return "_";
  return formatString("r%u", Reg);
}

static std::string renderInstruction(const Instruction &I) {
  std::string Out = opcodeName(I.Op);
  Out += " ";
  Out += renderOperand(I.Dst);
  Out += ", ";
  Out += renderOperand(I.A);
  Out += ", ";
  Out += renderOperand(I.B);
  Out += formatString(", imm=%lld, imm2=%d", static_cast<long long>(I.Imm),
                      I.Imm2);
  return Out;
}

std::string Function::dump() const {
  std::string Out = formatString("func %s(params=%u, regs=%u)\n", Name.c_str(),
                                 NumParams, NumRegs);
  for (std::uint32_t B = 0; B < Blocks.size(); ++B) {
    Out += formatString("  bb%u:\n", B);
    for (const Instruction &I : Blocks[B].Instructions) {
      Out += "    ";
      Out += renderInstruction(I);
      Out += "\n";
    }
  }
  return Out;
}

int Module::findFunction(const std::string &Name) const {
  for (std::uint32_t F = 0; F < Functions.size(); ++F)
    if (Functions[F].Name == Name)
      return static_cast<int>(F);
  return -1;
}

void Module::finalize() {
  NextPc = 0;
  for (Function &F : Functions)
    for (BasicBlock &BB : F.Blocks)
      for (Instruction &I : BB.Instructions)
        I.Pc = static_cast<std::int32_t>(NextPc++);
}

std::string Module::dump() const {
  std::string Out;
  for (const Function &F : Functions)
    Out += F.dump();
  return Out;
}
