//===- ir/AnnotationVerifier.cpp ------------------------------------------==//

#include "ir/AnnotationVerifier.h"

#include "support/Format.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>

using namespace jrpm;
using namespace jrpm::ir;

namespace {

using LoopStack = std::vector<std::uint32_t>;

class AnnotationVerifierImpl {
public:
  AnnotationVerifierImpl(const Module &M,
                         const std::vector<LoopAnnotationInfo> &Loops)
      : M(M), Loops(Loops) {}

  std::vector<std::string> run() {
    for (std::uint32_t F = 0; F < M.Functions.size(); ++F)
      verifyFunction(F);
    return std::move(Errors);
  }

private:
  void report(std::string Message) { Errors.push_back(std::move(Message)); }

  bool validLoopId(std::int64_t Id) const {
    return Id >= 0 && Id < static_cast<std::int64_t>(Loops.size());
  }

  bool watched(const LoopStack &Stack, std::uint16_t Reg) const {
    for (std::uint32_t Id : Stack) {
      const auto &Regs = Loops[Id].AnnotatedLocals;
      if (std::find(Regs.begin(), Regs.end(), Reg) != Regs.end())
        return true;
    }
    return false;
  }

  /// Walks \p BB from \p Stack, reporting violations and returning the
  /// stack at the block's end (nullopt after an unrecoverable mismatch).
  std::optional<LoopStack> walkBlock(const Function &F, std::uint32_t FIdx,
                                     std::uint32_t B, LoopStack Stack) {
    for (const Instruction &I : F.Blocks[B].Instructions) {
      switch (I.Op) {
      case Opcode::SLoop:
        if (!validLoopId(I.Imm)) {
          report(formatString("func %u bb%u: sloop with unknown loop id %lld",
                              FIdx, B, static_cast<long long>(I.Imm)));
          return std::nullopt;
        }
        if (std::find(Stack.begin(), Stack.end(),
                      static_cast<std::uint32_t>(I.Imm)) != Stack.end()) {
          report(formatString("func %u bb%u: sloop %lld while loop %lld is "
                              "already active",
                              FIdx, B, static_cast<long long>(I.Imm),
                              static_cast<long long>(I.Imm)));
          return std::nullopt;
        }
        if (I.Imm2 != static_cast<std::int32_t>(
                          Loops[static_cast<std::size_t>(I.Imm)]
                              .AnnotatedLocals.size()))
          report(formatString(
              "func %u bb%u: sloop %lld declares %d locals, trace info has %u",
              FIdx, B, static_cast<long long>(I.Imm), I.Imm2,
              static_cast<std::uint32_t>(
                  Loops[static_cast<std::size_t>(I.Imm)]
                      .AnnotatedLocals.size())));
        Stack.push_back(static_cast<std::uint32_t>(I.Imm));
        SawSLoop.insert(static_cast<std::uint32_t>(I.Imm));
        break;
      case Opcode::Eoi:
        if (Stack.empty() ||
            Stack.back() != static_cast<std::uint32_t>(I.Imm)) {
          report(formatString(
              "func %u bb%u: eoi %lld does not match innermost active loop",
              FIdx, B, static_cast<long long>(I.Imm)));
          return std::nullopt;
        }
        break;
      case Opcode::ELoop:
        if (Stack.empty() ||
            Stack.back() != static_cast<std::uint32_t>(I.Imm)) {
          report(formatString(
              "func %u bb%u: eloop %lld does not match innermost active loop",
              FIdx, B, static_cast<long long>(I.Imm)));
          return std::nullopt;
        }
        Stack.pop_back();
        break;
      case Opcode::ReadStats:
        // Fires after its eloop, outside the loop: only the id must exist.
        if (!validLoopId(I.Imm))
          report(formatString(
              "func %u bb%u: readstats with unknown loop id %lld", FIdx, B,
              static_cast<long long>(I.Imm)));
        break;
      case Opcode::LwlAnno:
      case Opcode::SwlAnno: {
        const char *Name = I.Op == Opcode::LwlAnno ? "lwl" : "swl";
        if (!watched(Stack, I.A)) {
          report(formatString(
              "func %u bb%u: %s r%u outside any loop watching that local",
              FIdx, B, Name, I.A));
        } else if (I.Op == Opcode::SwlAnno) {
          for (std::uint32_t Id : Stack) {
            const auto &Regs = Loops[Id].AnnotatedLocals;
            if (std::find(Regs.begin(), Regs.end(), I.A) != Regs.end())
              SwlSeen[Id].insert(I.A);
          }
        }
        break;
      }
      case Opcode::Ret:
        if (!Stack.empty()) {
          report(formatString(
              "func %u bb%u: return while loop %u is still active (missing "
              "eloop)",
              FIdx, B, Stack.back()));
          return std::nullopt;
        }
        break;
      default:
        break;
      }
    }
    return Stack;
  }

  void verifyFunction(std::uint32_t FIdx) {
    const Function &F = M.Functions[FIdx];
    if (F.Blocks.empty() || !F.Blocks[0].hasTerminator())
      return; // structurally broken; the structural verifier reports it

    // Forward dataflow of the active-loop stack. Every join must agree:
    // two paths reaching one block with different stacks means some path
    // skips an eoi/eloop and the tracer's bank bookkeeping diverges.
    std::map<std::uint32_t, LoopStack> AtEntry;
    std::deque<std::uint32_t> Work;
    AtEntry[0] = {};
    Work.push_back(0);
    std::set<std::uint32_t> Done;
    while (!Work.empty()) {
      std::uint32_t B = Work.front();
      Work.pop_front();
      if (Done.count(B))
        continue;
      Done.insert(B);
      std::optional<LoopStack> Exit = walkBlock(F, FIdx, B, AtEntry[B]);
      if (!Exit)
        return; // unrecoverable: later checks would cascade
      if (!F.Blocks[B].hasTerminator())
        continue;
      std::vector<std::uint32_t> Succs;
      F.Blocks[B].appendSuccessors(Succs);
      for (std::uint32_t S : Succs) {
        auto It = AtEntry.find(S);
        if (It == AtEntry.end()) {
          AtEntry[S] = *Exit;
          Work.push_back(S);
        } else if (It->second != *Exit) {
          report(formatString(
              "func %u bb%u: inconsistent loop nesting at join (from bb%u)",
              FIdx, S, B));
          return;
        }
      }
    }

    // Coverage: every local the trace info promises to watch must produce
    // at least one swl inside the loop (each carried local is defined in
    // the loop, and even optimized annotation keeps the last definition).
    for (std::uint32_t Id : SawSLoop) {
      for (std::uint16_t Reg : Loops[Id].AnnotatedLocals)
        if (!SwlSeen[Id].count(Reg))
          report(formatString(
              "func %u: loop %u watches r%u but no swl annotates it", FIdx,
              Id, Reg));
    }
    SawSLoop.clear();
    SwlSeen.clear();
  }

  const Module &M;
  const std::vector<LoopAnnotationInfo> &Loops;
  std::vector<std::string> Errors;
  /// Loops whose sloop marker appeared in the current function.
  std::set<std::uint32_t> SawSLoop;
  std::map<std::uint32_t, std::set<std::uint16_t>> SwlSeen;
};

} // namespace

std::vector<std::string>
ir::verifyAnnotations(const Module &M,
                      const std::vector<LoopAnnotationInfo> &Loops) {
  return AnnotationVerifierImpl(M, Loops).run();
}
