//===- ir/Verifier.h - Structural validity checks --------------------------==//

#ifndef JRPM_IR_VERIFIER_H
#define JRPM_IR_VERIFIER_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace jrpm {
namespace ir {

/// Checks structural invariants of \p M: every block ends in exactly one
/// terminator, branch targets and register/function indices are in range,
/// Arg instructions immediately precede their Call with contiguous slots.
/// Returns the list of violations (empty when the module is well formed).
std::vector<std::string> verifyModule(const Module &M);

} // namespace ir
} // namespace jrpm

#endif // JRPM_IR_VERIFIER_H
