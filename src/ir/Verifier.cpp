//===- ir/Verifier.cpp ----------------------------------------------------==//

#include "ir/Verifier.h"

#include "support/Format.h"

using namespace jrpm;
using namespace jrpm::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Module &M) : M(M) {}

  std::vector<std::string> run() {
    for (std::uint32_t F = 0; F < M.Functions.size(); ++F)
      verifyFunction(F);
    if (M.EntryFunction >= M.Functions.size())
      report("module entry function index out of range");
    return std::move(Errors);
  }

private:
  void report(std::string Message) { Errors.push_back(std::move(Message)); }

  void checkReg(const Function &F, std::uint32_t FIdx, std::uint16_t Reg,
                const char *Which, bool AllowNone) {
    if (Reg == NoReg) {
      if (!AllowNone)
        report(formatString("func %u: %s operand missing", FIdx, Which));
      return;
    }
    if (Reg >= F.NumRegs)
      report(formatString("func %u: %s register r%u out of range (%u regs)",
                          FIdx, Which, Reg, F.NumRegs));
  }

  void checkTarget(const Function &F, std::uint32_t FIdx, std::int64_t Target,
                   const char *Which) {
    if (Target < 0 || Target >= static_cast<std::int64_t>(F.numBlocks()))
      report(formatString("func %u: %s branch target %lld out of range", FIdx,
                          Which, static_cast<long long>(Target)));
  }

  void verifyFunction(std::uint32_t FIdx) {
    const Function &F = M.Functions[FIdx];
    if (F.Blocks.empty()) {
      report(formatString("func %u (%s): no blocks", FIdx, F.Name.c_str()));
      return;
    }
    if (F.NumParams > F.NumRegs)
      report(formatString("func %u: more params than registers", FIdx));

    for (std::uint32_t B = 0; B < F.numBlocks(); ++B)
      verifyBlock(F, FIdx, B);
  }

  void verifyBlock(const Function &F, std::uint32_t FIdx, std::uint32_t B) {
    const BasicBlock &BB = F.Blocks[B];
    if (!BB.hasTerminator()) {
      report(formatString("func %u bb%u: missing terminator", FIdx, B));
      return;
    }
    std::int64_t PendingArgSlot = 0;
    for (std::uint32_t Idx = 0; Idx < BB.Instructions.size(); ++Idx) {
      const Instruction &I = BB.Instructions[Idx];
      bool Last = Idx + 1 == BB.Instructions.size();
      if (isTerminator(I.Op) && !Last)
        report(formatString("func %u bb%u: terminator mid-block", FIdx, B));

      if (I.Op == Opcode::Arg) {
        if (I.Imm != PendingArgSlot)
          report(formatString("func %u bb%u: arg slot %lld out of order", FIdx,
                              B, static_cast<long long>(I.Imm)));
        ++PendingArgSlot;
        checkReg(F, FIdx, I.A, "arg", false);
        continue;
      }
      if (I.Op == Opcode::Call) {
        if (I.Imm < 0 ||
            I.Imm >= static_cast<std::int64_t>(M.Functions.size())) {
          report(formatString("func %u bb%u: call target out of range", FIdx,
                              B));
        } else {
          const Function &Callee = M.Functions[static_cast<size_t>(I.Imm)];
          if (PendingArgSlot != Callee.NumParams)
            report(formatString(
                "func %u bb%u: call to %s passes %lld args, expects %u", FIdx,
                B, Callee.Name.c_str(),
                static_cast<long long>(PendingArgSlot), Callee.NumParams));
        }
        checkReg(F, FIdx, I.Dst, "call dst", true);
        PendingArgSlot = 0;
        continue;
      }
      // Annotation instructions are observers and may be interleaved with
      // an Arg...Call sequence (the annotator marks locals used as call
      // arguments); anything else between args and their call is an error.
      if (PendingArgSlot != 0 && I.Op != Opcode::Arg && !isAnnotation(I.Op))
        report(formatString("func %u bb%u: args not followed by call", FIdx,
                            B));

      switch (I.Op) {
      case Opcode::Br:
        checkTarget(F, FIdx, I.Imm, "br");
        break;
      case Opcode::CondBr:
        checkReg(F, FIdx, I.A, "condbr cond", false);
        checkTarget(F, FIdx, I.Imm, "condbr true");
        checkTarget(F, FIdx, I.Imm2, "condbr false");
        break;
      case Opcode::Ret:
        checkReg(F, FIdx, I.A, "ret", true);
        break;
      case Opcode::Load:
        checkReg(F, FIdx, I.Dst, "load dst", false);
        checkReg(F, FIdx, I.A, "load base", true);
        checkReg(F, FIdx, I.B, "load index", true);
        break;
      case Opcode::Store:
        checkReg(F, FIdx, I.Dst, "store value", false);
        checkReg(F, FIdx, I.A, "store base", true);
        checkReg(F, FIdx, I.B, "store index", true);
        break;
      case Opcode::ConstI:
      case Opcode::ConstF:
        checkReg(F, FIdx, I.Dst, "const dst", false);
        break;
      case Opcode::Alloc:
        checkReg(F, FIdx, I.Dst, "alloc dst", false);
        checkReg(F, FIdx, I.A, "alloc size", true);
        break;
      case Opcode::Mov:
      case Opcode::FNeg:
      case Opcode::FSqrt:
      case Opcode::IToF:
      case Opcode::FToI:
      case Opcode::AddImm:
        checkReg(F, FIdx, I.Dst, "unary dst", false);
        checkReg(F, FIdx, I.A, "unary src", false);
        break;
      case Opcode::SLoop:
      case Opcode::Eoi:
      case Opcode::ELoop:
      case Opcode::ReadStats:
      case Opcode::Nop:
        break;
      case Opcode::LwlAnno:
      case Opcode::SwlAnno:
        checkReg(F, FIdx, I.A, "local annotation", false);
        break;
      default:
        // Remaining opcodes are three-address arithmetic/compares.
        checkReg(F, FIdx, I.Dst, "dst", false);
        checkReg(F, FIdx, I.A, "lhs", false);
        checkReg(F, FIdx, I.B, "rhs", false);
        break;
      }
    }
    if (PendingArgSlot != 0)
      report(formatString("func %u bb%u: dangling args at block end", FIdx,
                          B));
  }

  const Module &M;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> ir::verifyModule(const Module &M) {
  return VerifierImpl(M).run();
}
