//===- ir/Verifier.cpp ----------------------------------------------------==//

#include "ir/Verifier.h"

#include "ir/RegUse.h"
#include "support/BitVector.h"
#include "support/Format.h"

using namespace jrpm;
using namespace jrpm::ir;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Module &M) : M(M) {}

  std::vector<std::string> run() {
    for (std::uint32_t F = 0; F < M.Functions.size(); ++F)
      verifyFunction(F);
    if (M.EntryFunction >= M.Functions.size())
      report("module entry function index out of range");
    return std::move(Errors);
  }

private:
  void report(std::string Message) { Errors.push_back(std::move(Message)); }

  void checkReg(const Function &F, std::uint32_t FIdx, std::uint16_t Reg,
                const char *Which, bool AllowNone) {
    if (Reg == NoReg) {
      if (!AllowNone)
        report(formatString("func %u: %s operand missing", FIdx, Which));
      return;
    }
    if (Reg >= F.NumRegs)
      report(formatString("func %u: %s register r%u out of range (%u regs)",
                          FIdx, Which, Reg, F.NumRegs));
  }

  void checkTarget(const Function &F, std::uint32_t FIdx, std::int64_t Target,
                   const char *Which) {
    if (Target < 0 || Target >= static_cast<std::int64_t>(F.numBlocks()))
      report(formatString("func %u: %s branch target %lld out of range", FIdx,
                          Which, static_cast<long long>(Target)));
  }

  void verifyFunction(std::uint32_t FIdx) {
    const Function &F = M.Functions[FIdx];
    if (F.Blocks.empty()) {
      report(formatString("func %u (%s): no blocks", FIdx, F.Name.c_str()));
      return;
    }
    if (F.NumParams > F.NumRegs)
      report(formatString("func %u: more params than registers", FIdx));

    for (std::uint32_t B = 0; B < F.numBlocks(); ++B)
      verifyBlock(F, FIdx, B);

    bool Structural = true;
    for (const BasicBlock &BB : F.Blocks)
      Structural &= BB.hasTerminator();
    if (Structural && F.NumRegs > 0) {
      verifyDefBeforeUse(F, FIdx);
      verifyTypes(F, FIdx);
    }
  }

  /// Must-defined dataflow over compiler temporaries: every temporary read
  /// must be written on *every* path from the entry to the use. Parameters
  /// arrive defined, and named locals are zero-initialised by the machine
  /// (source programs may legally read a local before assigning it), so
  /// both count as defined at entry; only unnamed temporaries — which the
  /// frontend guarantees to define right before their uses — are checked.
  void verifyDefBeforeUse(const Function &F, std::uint32_t FIdx) {
    std::uint32_t N = F.numBlocks();
    BitVector Universe(F.NumRegs);
    for (std::uint32_t R = 0; R < F.NumRegs; ++R)
      Universe.set(R);

    std::vector<BitVector> In(N, Universe), Out(N, Universe);
    In[0] = BitVector(F.NumRegs);
    for (std::uint32_t P = 0; P < F.NumParams; ++P)
      In[0].set(P);
    for (const auto &[Name, Reg] : F.NamedLocals)
      if (Reg < F.NumRegs)
        In[0].set(Reg);

    auto Transfer = [&](std::uint32_t B, const BitVector &InSet) {
      BitVector R = InSet;
      for (const Instruction &I : F.Blocks[B].Instructions) {
        std::uint16_t D = definedReg(I);
        if (D != NoReg && D < F.NumRegs)
          R.set(D);
      }
      return R;
    };
    auto Intersect = [](BitVector &X, const BitVector &Y) {
      BitVector Diff = X;
      Diff.subtract(Y);
      X.subtract(Diff); // X & Y, via X - (X - Y)
    };

    auto Preds = F.computePredecessors();
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (std::uint32_t B = 0; B < N; ++B) {
        if (B != 0 && !Preds[B].empty()) {
          BitVector NewIn = Universe;
          for (std::uint32_t P : Preds[B])
            Intersect(NewIn, Out[P]);
          if (!(NewIn == In[B])) {
            In[B] = NewIn;
            Changed = true;
          }
        }
        BitVector NewOut = Transfer(B, In[B]);
        if (!(NewOut == Out[B])) {
          Out[B] = NewOut;
          Changed = true;
        }
      }
    }

    // Unreachable blocks keep the universal set and stay silent; the dead
    // code cannot read anything at run time.
    for (std::uint32_t B = 0; B < N; ++B) {
      BitVector Defined = In[B];
      for (std::uint32_t Idx = 0; Idx < F.Blocks[B].Instructions.size();
           ++Idx) {
        const Instruction &I = F.Blocks[B].Instructions[Idx];
        forEachUsedReg(I, [&](std::uint16_t R) {
          if (R < F.NumRegs && !Defined.test(R))
            report(formatString(
                "func %u bb%u i%u: r%u may be read before any definition",
                FIdx, B, Idx, R));
        });
        std::uint16_t D = definedReg(I);
        if (D != NoReg && D < F.NumRegs)
          Defined.set(D);
      }
    }
  }

  /// Flow-insensitive register typing. The IR stores doubles as bit
  /// patterns in the same registers as integers, so only two definite
  /// mismatches are flagged: an integer-only register fed to a floating
  /// point operation, and a float-only register used to address memory.
  /// Mixed (reinterpreting) registers and untyped sources (loads, calls,
  /// zero constants) are left alone.
  enum class RegType : std::uint8_t { Unknown, Int, Float, Mixed };

  void verifyTypes(const Function &F, std::uint32_t FIdx) {
    std::vector<RegType> Ty(F.NumRegs, RegType::Unknown);
    auto Join = [](RegType A, RegType B) {
      if (A == RegType::Unknown || A == B)
        return B == RegType::Unknown ? A : B;
      if (B == RegType::Unknown)
        return A;
      return RegType::Mixed;
    };
    auto DefType = [&](const Instruction &I) {
      switch (I.Op) {
      case Opcode::ConstI:
        return I.Imm == 0 ? RegType::Unknown : RegType::Int;
      case Opcode::ConstF:
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::FNeg:
      case Opcode::FSqrt:
      case Opcode::IToF:
        return RegType::Float;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::AddImm:
      case Opcode::CmpEQ:
      case Opcode::CmpNE:
      case Opcode::CmpLT:
      case Opcode::CmpLE:
      case Opcode::CmpGT:
      case Opcode::CmpGE:
      case Opcode::FCmpEQ:
      case Opcode::FCmpLT:
      case Opcode::FCmpLE:
      case Opcode::FToI:
      case Opcode::Alloc:
        return RegType::Int;
      case Opcode::Mov:
        return I.A < F.NumRegs ? Ty[I.A] : RegType::Unknown;
      default:
        return RegType::Unknown; // Load, Call: untyped sources
      }
    };

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const BasicBlock &BB : F.Blocks)
        for (const Instruction &I : BB.Instructions) {
          std::uint16_t D = definedReg(I);
          if (D == NoReg || D >= F.NumRegs)
            continue;
          RegType New = Join(Ty[D], DefType(I));
          if (New != Ty[D]) {
            Ty[D] = New;
            Changed = true;
          }
        }
    }

    auto CheckFloatUse = [&](std::uint16_t R, std::uint32_t B,
                             const char *Which) {
      if (R != NoReg && R < F.NumRegs && Ty[R] == RegType::Int)
        report(formatString(
            "func %u bb%u: integer register r%u used as %s operand", FIdx, B,
            R, Which));
    };
    auto CheckAddrUse = [&](std::uint16_t R, std::uint32_t B,
                            const char *Which) {
      if (R != NoReg && R < F.NumRegs && Ty[R] == RegType::Float)
        report(formatString(
            "func %u bb%u: float register r%u used as %s operand", FIdx, B, R,
            Which));
    };

    for (std::uint32_t B = 0; B < F.numBlocks(); ++B)
      for (const Instruction &I : F.Blocks[B].Instructions)
        switch (I.Op) {
        case Opcode::FAdd:
        case Opcode::FSub:
        case Opcode::FMul:
        case Opcode::FDiv:
        case Opcode::FCmpEQ:
        case Opcode::FCmpLT:
        case Opcode::FCmpLE:
          CheckFloatUse(I.A, B, "float");
          CheckFloatUse(I.B, B, "float");
          break;
        case Opcode::FNeg:
        case Opcode::FSqrt:
        case Opcode::FToI:
          CheckFloatUse(I.A, B, "float");
          break;
        case Opcode::Load:
        case Opcode::Store:
          CheckAddrUse(I.A, B, "address base");
          CheckAddrUse(I.B, B, "address index");
          break;
        case Opcode::Alloc:
          CheckAddrUse(I.A, B, "allocation size");
          break;
        default:
          break;
        }
  }

  void verifyBlock(const Function &F, std::uint32_t FIdx, std::uint32_t B) {
    const BasicBlock &BB = F.Blocks[B];
    if (!BB.hasTerminator()) {
      report(formatString("func %u bb%u: missing terminator", FIdx, B));
      return;
    }
    std::int64_t PendingArgSlot = 0;
    for (std::uint32_t Idx = 0; Idx < BB.Instructions.size(); ++Idx) {
      const Instruction &I = BB.Instructions[Idx];
      bool Last = Idx + 1 == BB.Instructions.size();
      if (isTerminator(I.Op) && !Last)
        report(formatString("func %u bb%u: terminator mid-block", FIdx, B));

      if (I.Op == Opcode::Arg) {
        if (I.Imm != PendingArgSlot)
          report(formatString("func %u bb%u: arg slot %lld out of order", FIdx,
                              B, static_cast<long long>(I.Imm)));
        ++PendingArgSlot;
        checkReg(F, FIdx, I.A, "arg", false);
        continue;
      }
      if (I.Op == Opcode::Call) {
        if (I.Imm < 0 ||
            I.Imm >= static_cast<std::int64_t>(M.Functions.size())) {
          report(formatString("func %u bb%u: call target out of range", FIdx,
                              B));
        } else {
          const Function &Callee = M.Functions[static_cast<size_t>(I.Imm)];
          if (PendingArgSlot != Callee.NumParams)
            report(formatString(
                "func %u bb%u: call to %s passes %lld args, expects %u", FIdx,
                B, Callee.Name.c_str(),
                static_cast<long long>(PendingArgSlot), Callee.NumParams));
        }
        checkReg(F, FIdx, I.Dst, "call dst", true);
        PendingArgSlot = 0;
        continue;
      }
      // Annotation instructions are observers and may be interleaved with
      // an Arg...Call sequence (the annotator marks locals used as call
      // arguments); anything else between args and their call is an error.
      if (PendingArgSlot != 0 && I.Op != Opcode::Arg && !isAnnotation(I.Op))
        report(formatString("func %u bb%u: args not followed by call", FIdx,
                            B));

      switch (I.Op) {
      case Opcode::Br:
        checkTarget(F, FIdx, I.Imm, "br");
        break;
      case Opcode::CondBr:
        checkReg(F, FIdx, I.A, "condbr cond", false);
        checkTarget(F, FIdx, I.Imm, "condbr true");
        checkTarget(F, FIdx, I.Imm2, "condbr false");
        break;
      case Opcode::Ret:
        checkReg(F, FIdx, I.A, "ret", true);
        break;
      case Opcode::Load:
        checkReg(F, FIdx, I.Dst, "load dst", false);
        checkReg(F, FIdx, I.A, "load base", true);
        checkReg(F, FIdx, I.B, "load index", true);
        break;
      case Opcode::Store:
        checkReg(F, FIdx, I.Dst, "store value", false);
        checkReg(F, FIdx, I.A, "store base", true);
        checkReg(F, FIdx, I.B, "store index", true);
        break;
      case Opcode::ConstI:
      case Opcode::ConstF:
        checkReg(F, FIdx, I.Dst, "const dst", false);
        break;
      case Opcode::Alloc:
        checkReg(F, FIdx, I.Dst, "alloc dst", false);
        checkReg(F, FIdx, I.A, "alloc size", true);
        break;
      case Opcode::Mov:
      case Opcode::FNeg:
      case Opcode::FSqrt:
      case Opcode::IToF:
      case Opcode::FToI:
      case Opcode::AddImm:
        checkReg(F, FIdx, I.Dst, "unary dst", false);
        checkReg(F, FIdx, I.A, "unary src", false);
        break;
      case Opcode::SLoop:
      case Opcode::Eoi:
      case Opcode::ELoop:
      case Opcode::ReadStats:
      case Opcode::Nop:
        break;
      case Opcode::LwlAnno:
      case Opcode::SwlAnno:
        checkReg(F, FIdx, I.A, "local annotation", false);
        break;
      default:
        // Remaining opcodes are three-address arithmetic/compares.
        checkReg(F, FIdx, I.Dst, "dst", false);
        checkReg(F, FIdx, I.A, "lhs", false);
        checkReg(F, FIdx, I.B, "rhs", false);
        break;
      }
    }
    if (PendingArgSlot != 0)
      report(formatString("func %u bb%u: dangling args at block end", FIdx,
                          B));
  }

  const Module &M;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> ir::verifyModule(const Module &M) {
  return VerifierImpl(M).run();
}
