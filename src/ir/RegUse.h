//===- ir/RegUse.h - Per-instruction register use/def ----------------------==//
//
// Opcode-aware register use/def queries over single instructions. These
// live at the IR layer (rather than in analysis) so the verifier and the
// annotation linter can reason about data flow without a layering cycle;
// analysis/RegUse.h re-exports them under the analysis namespace.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_IR_REGUSE_H
#define JRPM_IR_REGUSE_H

#include "ir/Instruction.h"

namespace jrpm {
namespace ir {

/// Calls \p Fn for every register \p I reads. Annotation opcodes are
/// observers and report no uses.
template <typename FnT> void forEachUsedReg(const Instruction &I, FnT Fn) {
  switch (I.Op) {
  case Opcode::Store:
    if (I.Dst != NoReg)
      Fn(I.Dst); // the stored value
    if (I.A != NoReg)
      Fn(I.A);
    if (I.B != NoReg)
      Fn(I.B);
    return;
  case Opcode::CondBr:
  case Opcode::Arg:
    Fn(I.A);
    return;
  case Opcode::Ret:
    if (I.A != NoReg)
      Fn(I.A);
    return;
  case Opcode::Br:
  case Opcode::ConstI:
  case Opcode::ConstF:
  case Opcode::Call:
  case Opcode::SLoop:
  case Opcode::Eoi:
  case Opcode::ELoop:
  case Opcode::LwlAnno:
  case Opcode::SwlAnno:
  case Opcode::ReadStats:
  case Opcode::Nop:
    return;
  default:
    if (I.A != NoReg)
      Fn(I.A);
    if (I.B != NoReg)
      Fn(I.B);
    return;
  }
}

/// Returns the register \p I defines, or NoReg.
inline std::uint16_t definedReg(const Instruction &I) {
  if (!definesDst(I.Op))
    return NoReg;
  return I.Dst;
}

} // namespace ir
} // namespace jrpm

#endif // JRPM_IR_REGUSE_H
