//===- ir/Opcode.cpp ------------------------------------------------------==//

#include "ir/Opcode.h"

#include "support/Compiler.h"

using namespace jrpm;
using namespace jrpm::ir;

const char *ir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::AddImm:
    return "addi";
  case Opcode::FAdd:
    return "fadd";
  case Opcode::FSub:
    return "fsub";
  case Opcode::FMul:
    return "fmul";
  case Opcode::FDiv:
    return "fdiv";
  case Opcode::FNeg:
    return "fneg";
  case Opcode::FSqrt:
    return "fsqrt";
  case Opcode::IToF:
    return "itof";
  case Opcode::FToI:
    return "ftoi";
  case Opcode::CmpEQ:
    return "cmpeq";
  case Opcode::CmpNE:
    return "cmpne";
  case Opcode::CmpLT:
    return "cmplt";
  case Opcode::CmpLE:
    return "cmple";
  case Opcode::CmpGT:
    return "cmpgt";
  case Opcode::CmpGE:
    return "cmpge";
  case Opcode::FCmpEQ:
    return "fcmpeq";
  case Opcode::FCmpLT:
    return "fcmplt";
  case Opcode::FCmpLE:
    return "fcmple";
  case Opcode::ConstI:
    return "consti";
  case Opcode::ConstF:
    return "constf";
  case Opcode::Mov:
    return "mov";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::Alloc:
    return "alloc";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Call:
    return "call";
  case Opcode::Arg:
    return "arg";
  case Opcode::Ret:
    return "ret";
  case Opcode::SLoop:
    return "sloop";
  case Opcode::Eoi:
    return "eoi";
  case Opcode::ELoop:
    return "eloop";
  case Opcode::LwlAnno:
    return "lwl";
  case Opcode::SwlAnno:
    return "swl";
  case Opcode::ReadStats:
    return "readstats";
  case Opcode::Nop:
    return "nop";
  }
  JRPM_UNREACHABLE("unknown opcode");
}

bool ir::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

bool ir::definesDst(Opcode Op) {
  switch (Op) {
  case Opcode::Store:
  case Opcode::Br:
  case Opcode::CondBr:
  case Opcode::Arg:
  case Opcode::Ret:
  case Opcode::SLoop:
  case Opcode::Eoi:
  case Opcode::ELoop:
  case Opcode::LwlAnno:
  case Opcode::SwlAnno:
  case Opcode::ReadStats:
  case Opcode::Nop:
    return false;
  case Opcode::Call:
    // Calls to void functions leave Dst == NoReg.
    return true;
  default:
    return true;
  }
}

bool ir::isAnnotation(Opcode Op) {
  switch (Op) {
  case Opcode::SLoop:
  case Opcode::Eoi:
  case Opcode::ELoop:
  case Opcode::LwlAnno:
  case Opcode::SwlAnno:
  case Opcode::ReadStats:
    return true;
  default:
    return false;
  }
}
