//===- ir/AnnotationVerifier.h - Lint for profiling annotations ------------==//
//
// Static checks over an annotated module, run after pipeline step 1
// (annotation) and usable on any transformed module: `sloop`/`eoi`/`eloop`
// markers must nest like balanced brackets along every control-flow path,
// every path joining two others must agree on the active loop stack, and
// the `lwl`/`swl` local-variable annotations must match the per-loop
// annotated-locals lists the tracer was configured with (`sloop` slot
// counts included). The tracer trusts these invariants — a stray `eoi`
// charges the wrong comparator bank, an unbalanced `eloop` corrupts the
// bank free-list — so the lint turns silent statistics corruption into a
// pipeline-time failure.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_IR_ANNOTATIONVERIFIER_H
#define JRPM_IR_ANNOTATIONVERIFIER_H

#include "ir/IR.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jrpm {
namespace ir {

/// What the verifier needs to know about one candidate loop: the named
/// locals the annotator promised to watch (mirrors the tracer's
/// LoopTraceInfo, which lives above this layer).
struct LoopAnnotationInfo {
  std::vector<std::uint16_t> AnnotatedLocals;
};

/// Lints the annotation structure of \p M against the per-loop watch lists
/// \p Loops (indexed by loop id). Returns all violations found; empty means
/// the module is safe to profile.
std::vector<std::string>
verifyAnnotations(const Module &M, const std::vector<LoopAnnotationInfo> &Loops);

} // namespace ir
} // namespace jrpm

#endif // JRPM_IR_ANNOTATIONVERIFIER_H
