//===- ir/IRBuilder.h - Convenience construction of IR --------------------===//

#ifndef JRPM_IR_IRBUILDER_H
#define JRPM_IR_IRBUILDER_H

#include "ir/IR.h"

namespace jrpm {
namespace ir {

/// Builds functions instruction by instruction. The builder tracks a current
/// function and insertion block; register numbers are handed out on demand.
class IRBuilder {
public:
  explicit IRBuilder(Module &M) : M(M) {}

  /// Starts a new function and makes its entry block current. Parameters
  /// occupy registers [0, NumParams). Returns the function index.
  std::uint32_t createFunction(const std::string &Name,
                               std::uint32_t NumParams);

  /// Switches insertion to an existing function (and its given block).
  void setFunction(std::uint32_t FuncIndex, std::uint32_t BlockIndex = 0);

  Function &function() { return M.Functions[FuncIndex]; }
  std::uint32_t functionIndex() const { return FuncIndex; }
  std::uint32_t currentBlock() const { return BlockIndex; }

  /// Allocates a fresh virtual register.
  std::uint16_t newReg();

  /// Creates a new empty basic block; insertion point is unchanged.
  std::uint32_t newBlock();

  /// Moves the insertion point to \p Block.
  void setBlock(std::uint32_t Block);

  /// Appends \p I to the current block and returns a reference to it.
  Instruction &emit(const Instruction &I);

  // Typed emit helpers. Each returns the destination register where one
  // exists.
  std::uint16_t emitBinary(Opcode Op, std::uint16_t A, std::uint16_t B);
  void emitBinaryInto(Opcode Op, std::uint16_t Dst, std::uint16_t A,
                      std::uint16_t B);
  std::uint16_t emitAddImm(std::uint16_t A, std::int64_t Imm);
  void emitAddImmInto(std::uint16_t Dst, std::uint16_t A, std::int64_t Imm);
  std::uint16_t emitConstI(std::int64_t Value);
  std::uint16_t emitConstF(double Value);
  void emitConstIInto(std::uint16_t Dst, std::int64_t Value);
  void emitMov(std::uint16_t Dst, std::uint16_t Src);
  std::uint16_t emitUnary(Opcode Op, std::uint16_t A);

  /// Load from heap[R[Base] + R[Index] + Offset]; either register may be
  /// NoReg.
  std::uint16_t emitLoad(std::uint16_t Base, std::uint16_t Index,
                         std::int64_t Offset);
  void emitLoadInto(std::uint16_t Dst, std::uint16_t Base, std::uint16_t Index,
                    std::int64_t Offset);
  void emitStore(std::uint16_t Value, std::uint16_t Base, std::uint16_t Index,
                 std::int64_t Offset);
  std::uint16_t emitAllocWords(std::int64_t Words);
  std::uint16_t emitAllocWordsReg(std::uint16_t SizeReg);

  void emitBr(std::uint32_t Target);
  void emitCondBr(std::uint16_t Cond, std::uint32_t TrueTarget,
                  std::uint32_t FalseTarget);
  void emitRet(std::uint16_t Value = NoReg);

  /// Calls function #Callee with \p Args; returns the result register (or
  /// NoReg for void calls when \p WantResult is false).
  std::uint16_t emitCall(std::uint32_t Callee,
                         const std::vector<std::uint16_t> &Args,
                         bool WantResult = true);

private:
  Module &M;
  std::uint32_t FuncIndex = 0;
  std::uint32_t BlockIndex = 0;
};

} // namespace ir
} // namespace jrpm

#endif // JRPM_IR_IRBUILDER_H
