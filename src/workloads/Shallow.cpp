//===- workloads/Shallow.cpp - Shallow water simulation --------------------==//
//
// The classic shallow-water stencil benchmark: per timestep, staggered
// velocity/height fields are advanced from neighbour cells. Row loops are
// the natural STLs (the paper reports 257 threads per entry at ~1400
// cycles on the 256x256 grid; the shape is preserved at our 64x64 size).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildShallow() {
  constexpr std::int64_t N = 64; // grid (paper: 256)
  constexpr std::int64_t Steps = 4;

  auto At = [](const char *F, Ex I, Ex J) {
    return ld(v(F), add(mul(I, c(N)), J));
  };
  auto Put = [](const char *F, Ex I, Ex J, Ex Val) {
    return store(v(F), add(mul(I, c(N)), J), Val);
  };

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("u", allocWords(c(N * N))), assign("vv", allocWords(c(N * N))),
      assign("p", allocWords(c(N * N))), assign("un", allocWords(c(N * N))),
      assign("vn", allocWords(c(N * N))), assign("pn", allocWords(c(N * N))),
      forLoop("i", c(0), lt(v("i"), c(N * N)), 1,
              seq({
                  store(v("u"), v("i"),
                        fmul(itof(hashMod(v("i"), 200)), cf(0.001))),
                  store(v("vv"), v("i"),
                        fmul(itof(hashMod(mul(v("i"), c(5)), 200)),
                             cf(0.001))),
                  store(v("p"), v("i"),
                        fadd(cf(10.0),
                             fmul(itof(hashMod(add(v("i"), c(7)), 100)),
                                  cf(0.01)))),
              })),

      forLoop(
          "t", c(0), lt(v("t"), c(Steps)), 1,
          seq({
              forLoop(
                  "i", c(1), lt(v("i"), c(N - 1)), 1,
                  forLoop(
                      "j", c(1), lt(v("j"), c(N - 1)), 1,
                      seq({
                          assign("dpx",
                                 fsub(At("p", add(v("i"), c(1)), v("j")),
                                      At("p", sub(v("i"), c(1)), v("j")))),
                          assign("dpy",
                                 fsub(At("p", v("i"), add(v("j"), c(1))),
                                      At("p", v("i"), sub(v("j"), c(1))))),
                          Put("un", v("i"), v("j"),
                              fsub(At("u", v("i"), v("j")),
                                   fmul(cf(0.02), v("dpx")))),
                          Put("vn", v("i"), v("j"),
                              fsub(At("vv", v("i"), v("j")),
                                   fmul(cf(0.02), v("dpy")))),
                          assign("dux",
                                 fsub(At("u", add(v("i"), c(1)), v("j")),
                                      At("u", sub(v("i"), c(1)), v("j")))),
                          assign("dvy",
                                 fsub(At("vv", v("i"), add(v("j"), c(1))),
                                      At("vv", v("i"),
                                         sub(v("j"), c(1))))),
                          Put("pn", v("i"), v("j"),
                              fsub(At("p", v("i"), v("j")),
                                   fmul(cf(0.1),
                                        fadd(v("dux"), v("dvy"))))),
                      }))),
              // Copy interior back.
              forLoop("i", c(1), lt(v("i"), c(N - 1)), 1,
                      forLoop("j", c(1), lt(v("j"), c(N - 1)), 1,
                              seq({
                                  Put("u", v("i"), v("j"),
                                      At("un", v("i"), v("j"))),
                                  Put("vv", v("i"), v("j"),
                                      At("vn", v("i"), v("j"))),
                                  Put("p", v("i"), v("j"),
                                      At("pn", v("i"), v("j"))),
                              }))),
          })),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(N * N)), 1,
              assign("sum",
                     add(v("sum"),
                         add(fix16(ld(v("p"), v("i"))),
                             add(fix16(ld(v("u"), v("i"))),
                                 fix16(ld(v("vv"), v("i")))))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
