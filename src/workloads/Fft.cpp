//===- workloads/Fft.cpp - 1024-point FFT (jBYTEmark / Java Grande) --------==//
//
// Iterative radix-2 decimation-in-time FFT: bit-reversal permutation, a
// twiddle table built by complex recurrence from exp(-2*pi*i/N), and the
// triple-nested butterfly loops. The group loop is parallel within each
// stage, which is where TEST finds the STL; the stage loop itself is
// serial (each stage consumes the previous one's output).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

#include <cmath>

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildFft() {
  constexpr std::int64_t N = 1024;
  const double WR = std::cos(-2.0 * M_PI / static_cast<double>(N));
  const double WI = std::sin(-2.0 * M_PI / static_cast<double>(N));

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("re", allocWords(c(N))),
      assign("im", allocWords(c(N))),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              seq({
                  store(v("re"), v("i"),
                        fsub(fmul(itof(hashMod(v("i"), 2000)), cf(0.001)),
                             cf(1.0))),
                  store(v("im"), v("i"), cf(0.0)),
              })),

      // Twiddle table w[k] = exp(-2*pi*i*k/N), k < N/2, by recurrence.
      assign("wr", allocWords(c(N / 2))),
      assign("wi", allocWords(c(N / 2))),
      store(v("wr"), c(0), cf(1.0)),
      store(v("wi"), c(0), cf(0.0)),
      forLoop("k", c(1), lt(v("k"), c(N / 2)), 1,
              seq({
                  assign("pr", ld(v("wr"), sub(v("k"), c(1)))),
                  assign("pi", ld(v("wi"), sub(v("k"), c(1)))),
                  store(v("wr"), v("k"),
                        fsub(fmul(v("pr"), cf(WR)),
                             fmul(v("pi"), cf(WI)))),
                  store(v("wi"), v("k"),
                        fadd(fmul(v("pr"), cf(WI)),
                             fmul(v("pi"), cf(WR)))),
              })),

      // Bit-reversal permutation (10 bits).
      forLoop(
          "i", c(0), lt(v("i"), c(N)), 1,
          seq({
              assign("x", v("i")),
              assign("r", c(0)),
              forLoop("b", c(0), lt(v("b"), c(10)), 1,
                      seq({
                          assign("r", bor(shl(v("r"), c(1)),
                                          band(v("x"), c(1)))),
                          assign("x", shr(v("x"), c(1))),
                      })),
              iff(lt(v("i"), v("r")),
                  seq({
                      assign("tr", ld(v("re"), v("i"))),
                      store(v("re"), v("i"), ld(v("re"), v("r"))),
                      store(v("re"), v("r"), v("tr")),
                      assign("ti", ld(v("im"), v("i"))),
                      store(v("im"), v("i"), ld(v("im"), v("r"))),
                      store(v("im"), v("r"), v("ti")),
                  })),
          })),

      // Butterfly stages.
      assign("len", c(2)),
      whileLoop(
          le(v("len"), c(N)),
          seq({
              assign("half", sdiv(v("len"), c(2))),
              assign("stride", sdiv(c(N), v("len"))),
              forLoop(
                  "base", c(0), lt(v("base"), c(N)), 0,
                  seq({
                      forLoop(
                          "j", c(0), lt(v("j"), v("half")), 1,
                          seq({
                              assign("widx", mul(v("j"), v("stride"))),
                              assign("cr", ld(v("wr"), v("widx"))),
                              assign("ci", ld(v("wi"), v("widx"))),
                              assign("p", add(v("base"), v("j"))),
                              assign("q", add(v("p"), v("half"))),
                              assign("qr", ld(v("re"), v("q"))),
                              assign("qi", ld(v("im"), v("q"))),
                              assign("tr", fsub(fmul(v("qr"), v("cr")),
                                                fmul(v("qi"), v("ci")))),
                              assign("ti", fadd(fmul(v("qr"), v("ci")),
                                                fmul(v("qi"), v("cr")))),
                              assign("pr", ld(v("re"), v("p"))),
                              assign("pi2", ld(v("im"), v("p"))),
                              store(v("re"), v("q"),
                                    fsub(v("pr"), v("tr"))),
                              store(v("im"), v("q"),
                                    fsub(v("pi2"), v("ti"))),
                              store(v("re"), v("p"),
                                    fadd(v("pr"), v("tr"))),
                              store(v("im"), v("p"),
                                    fadd(v("pi2"), v("ti"))),
                          })),
                      assign("base", add(v("base"), v("len"))),
                  })),
              assign("len", mul(v("len"), c(2))),
          })),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              assign("sum", add(v("sum"),
                                add(fix16(ld(v("re"), v("i"))),
                                    fix16(ld(v("im"), v("i"))))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
