//===- workloads/NeuralNet.cpp - Back-propagation net (jBYTEmark) ----------==//
//
// The paper's 35-8-8 network: forward pass, output/hidden deltas, and
// weight updates over a training set. Per-neuron dot products are the
// fine STLs (the paper reports 9 threads per entry — the 8-neuron loops —
// at ~600 cycles each). A piecewise-rational activation stands in for the
// sigmoid. Training is inherently sequential across samples (weights are
// carried), matching the benchmark's modest overall speedup.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildNeuralNet() {
  constexpr std::int64_t In = 35;
  constexpr std::int64_t Hid = 8;
  constexpr std::int64_t Out = 8;
  constexpr std::int64_t Samples = 40;
  constexpr std::int64_t Epochs = 2;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("w1", allocWords(c(In * Hid))),
      assign("w2", allocWords(c(Hid * Out))),
      assign("hval", allocWords(c(Hid))),
      assign("oval", allocWords(c(Out))),
      assign("odel", allocWords(c(Out))),
      assign("hdel", allocWords(c(Hid))),
      assign("data", allocWords(c(Samples * In))),
      assign("label", allocWords(c(Samples))),
      forLoop("i", c(0), lt(v("i"), c(In * Hid)), 1,
              store(v("w1"), v("i"),
                    fsub(fmul(itof(hashMod(v("i"), 100)), cf(0.01)),
                         cf(0.5)))),
      forLoop("i", c(0), lt(v("i"), c(Hid * Out)), 1,
              store(v("w2"), v("i"),
                    fsub(fmul(itof(hashMod(add(v("i"), c(931)), 100)),
                              cf(0.01)),
                         cf(0.5)))),
      forLoop("i", c(0), lt(v("i"), c(Samples * In)), 1,
              store(v("data"), v("i"),
                    fmul(itof(hashMod(v("i"), 100)), cf(0.01)))),
      forLoop("i", c(0), lt(v("i"), c(Samples)), 1,
              store(v("label"), v("i"), hashMod(v("i"), Out))),

      forLoop(
          "ep", c(0), lt(v("ep"), c(Epochs)), 1,
          forLoop(
              "s", c(0), lt(v("s"), c(Samples)), 1,
              seq({
                  // Forward: hidden layer.
                  forLoop(
                      "h", c(0), lt(v("h"), c(Hid)), 1,
                      seq({
                          assign("acc", cf(0.0)),
                          forLoop(
                              "i", c(0), lt(v("i"), c(In)), 1,
                              assign("acc",
                                     fadd(v("acc"),
                                          fmul(ld(v("data"),
                                                  add(mul(v("s"), c(In)),
                                                      v("i"))),
                                               ld(v("w1"),
                                                  add(mul(v("i"), c(Hid)),
                                                      v("h"))))))),
                          // Fast sigmoid: x / (1 + |x|) shifted to (0,1).
                          assign("ax", v("acc")),
                          iff(flt(v("ax"), cf(0.0)),
                              assign("ax", fneg(v("ax")))),
                          store(v("hval"), v("h"),
                                fadd(cf(0.5),
                                     fmul(cf(0.5),
                                          fdiv(v("acc"),
                                               fadd(cf(1.0), v("ax")))))),
                      })),
                  // Forward: output layer.
                  forLoop(
                      "o", c(0), lt(v("o"), c(Out)), 1,
                      seq({
                          assign("acc", cf(0.0)),
                          forLoop(
                              "h", c(0), lt(v("h"), c(Hid)), 1,
                              assign("acc",
                                     fadd(v("acc"),
                                          fmul(ld(v("hval"), v("h")),
                                               ld(v("w2"),
                                                  add(mul(v("h"), c(Out)),
                                                      v("o"))))))),
                          assign("ax", v("acc")),
                          iff(flt(v("ax"), cf(0.0)),
                              assign("ax", fneg(v("ax")))),
                          store(v("oval"), v("o"),
                                fadd(cf(0.5),
                                     fmul(cf(0.5),
                                          fdiv(v("acc"),
                                               fadd(cf(1.0), v("ax")))))),
                      })),
                  // Output deltas.
                  forLoop(
                      "o", c(0), lt(v("o"), c(Out)), 1,
                      seq({
                          assign("want", cf(0.1)),
                          iff(eq(ld(v("label"), v("s")), v("o")),
                              assign("want", cf(0.9))),
                          assign("ov", ld(v("oval"), v("o"))),
                          store(v("odel"), v("o"),
                                fmul(fsub(v("want"), v("ov")),
                                     fmul(v("ov"),
                                          fsub(cf(1.0), v("ov"))))),
                      })),
                  // Hidden deltas.
                  forLoop(
                      "h", c(0), lt(v("h"), c(Hid)), 1,
                      seq({
                          assign("acc", cf(0.0)),
                          forLoop(
                              "o", c(0), lt(v("o"), c(Out)), 1,
                              assign("acc",
                                     fadd(v("acc"),
                                          fmul(ld(v("odel"), v("o")),
                                               ld(v("w2"),
                                                  add(mul(v("h"), c(Out)),
                                                      v("o"))))))),
                          assign("hv", ld(v("hval"), v("h"))),
                          store(v("hdel"), v("h"),
                                fmul(v("acc"),
                                     fmul(v("hv"),
                                          fsub(cf(1.0), v("hv"))))),
                      })),
                  // Weight updates.
                  forLoop(
                      "h", c(0), lt(v("h"), c(Hid)), 1,
                      forLoop(
                          "o", c(0), lt(v("o"), c(Out)), 1,
                          store(v("w2"), add(mul(v("h"), c(Out)), v("o")),
                                fadd(ld(v("w2"),
                                        add(mul(v("h"), c(Out)), v("o"))),
                                     fmul(cf(0.25),
                                          fmul(ld(v("odel"), v("o")),
                                               ld(v("hval"),
                                                  v("h")))))))),
                  forLoop(
                      "i", c(0), lt(v("i"), c(In)), 1,
                      forLoop(
                          "h", c(0), lt(v("h"), c(Hid)), 1,
                          store(v("w1"), add(mul(v("i"), c(Hid)), v("h")),
                                fadd(ld(v("w1"),
                                        add(mul(v("i"), c(Hid)), v("h"))),
                                     fmul(cf(0.25),
                                          fmul(ld(v("hdel"), v("h")),
                                               ld(v("data"),
                                                  add(mul(v("s"), c(In)),
                                                      v("i"))))))))),
              }))),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(In * Hid)), 1,
              assign("sum", add(v("sum"), fix16(ld(v("w1"), v("i")))))),
      forLoop("i", c(0), lt(v("i"), c(Hid * Out)), 1,
              assign("sum", add(v("sum"), fix16(ld(v("w2"), v("i")))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
