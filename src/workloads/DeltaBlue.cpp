//===- workloads/DeltaBlue.cpp - Incremental constraint solver -------------==//
//
// A structural model of the deltaBlue benchmark: one-way constraints
// (dst = f(src)) with strengths are *planned* — each constraint is
// satisfied only if it is stronger than its destination's current
// walkabout strength, repeated to a fixpoint, producing an ordered plan —
// and the plan is then *executed* for a series of input pulses. Planning
// is worklist-style and carried (the irregular part); plan execution has
// dependences through the variable array of varying distance.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildDeltaBlue() {
  constexpr std::int64_t Vars = 300;
  constexpr std::int64_t Cons = 700;
  constexpr std::int64_t Pulses = 6;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("value", allocWords(c(Vars))),
      assign("walk", allocWords(c(Vars))), // walkabout strengths
      assign("src", allocWords(c(Cons))),
      assign("dst", allocWords(c(Cons))),
      assign("op", allocWords(c(Cons))),
      assign("strength", allocWords(c(Cons))),
      assign("satisfied", allocWords(c(Cons))),
      assign("plan", allocWords(c(Cons))),
      forLoop("i", c(0), lt(v("i"), c(Vars)), 1,
              seq({
                  store(v("value"), v("i"), hashMod(v("i"), 1000)),
                  store(v("walk"), v("i"), c(0)), // weakest
              })),
      forLoop("i", c(0), lt(v("i"), c(Cons)), 1,
              seq({
                  store(v("src"), v("i"), hashMod(v("i"), Vars)),
                  store(v("dst"), v("i"),
                        hashMod(add(v("i"), c(12345)), Vars)),
                  store(v("op"), v("i"), srem(v("i"), c(4))),
                  store(v("strength"), v("i"),
                        add(hashMod(mul(v("i"), c(5)), 7), c(1))),
                  store(v("satisfied"), v("i"), c(0)),
              })),

      // --- Planning: satisfy constraints stronger than their output's
      // walkabout strength, to a fixpoint; record the execution order.
      assign("planLen", c(0)),
      assign("changed", c(1)),
      assign("rounds", c(0)),
      whileLoop(
          band(v("changed"), lt(v("rounds"), c(12))),
          seq({
              assign("changed", c(0)),
              forLoop(
                  "i", c(0), lt(v("i"), c(Cons)), 1,
                  iff(eq(ld(v("satisfied"), v("i")), c(0)),
                      seq({
                          assign("d", ld(v("dst"), v("i"))),
                          assign("st", ld(v("strength"), v("i"))),
                          iff(gt(v("st"), ld(v("walk"), v("d"))),
                              seq({
                                  store(v("walk"), v("d"), v("st")),
                                  store(v("satisfied"), v("i"), c(1)),
                                  store(v("plan"), v("planLen"), v("i")),
                                  assign("planLen",
                                         add(v("planLen"), c(1))),
                                  assign("changed", c(1)),
                              })),
                      }))),
              assign("rounds", add(v("rounds"), c(1))),
          })),

      // --- Execution: run the plan for each input pulse.
      assign("changes", c(0)),
      forLoop(
          "pulse", c(0), lt(v("pulse"), c(Pulses)), 1,
          seq({
              // Perturb a few input variables.
              forLoop("k", c(0), lt(v("k"), c(16)), 1,
                      store(v("value"),
                            hashMod(add(mul(v("pulse"), c(31)), v("k")),
                                    Vars),
                            hashMod(add(v("pulse"), mul(v("k"), c(77))),
                                    1000))),
              // Propagate along the plan, in plan order.
              forLoop(
                  "p", c(0), lt(v("p"), v("planLen")), 1,
                  seq({
                      assign("ci", ld(v("plan"), v("p"))),
                      assign("s", ld(v("value"), ld(v("src"), v("ci")))),
                      assign("o", ld(v("op"), v("ci"))),
                      assign("nv", v("s")),
                      iffElse(eq(v("o"), c(0)),
                              assign("nv", add(v("s"), c(7))),
                              iffElse(eq(v("o"), c(1)),
                                      assign("nv", mul(v("s"), c(3))),
                                      iff(eq(v("o"), c(2)),
                                          assign("nv",
                                                 sub(c(5000), v("s")))))),
                      assign("nv", srem(v("nv"), c(100000))),
                      assign("d", ld(v("dst"), v("ci"))),
                      iff(ne(ld(v("value"), v("d")), v("nv")),
                          seq({
                              store(v("value"), v("d"), v("nv")),
                              assign("changes", add(v("changes"), c(1))),
                          })),
                  })),
          })),

      assign("sum", add(v("changes"), mul(v("planLen"), c(100000)))),
      forLoop("i", c(0), lt(v("i"), c(Vars)), 1,
              assign("sum", add(v("sum"),
                                mul(ld(v("value"), v("i")),
                                    add(srem(v("i"), c(13)), c(1)))))),
      forLoop("i", c(0), lt(v("i"), c(Vars)), 1,
              assign("sum", add(v("sum"), ld(v("walk"), v("i"))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
