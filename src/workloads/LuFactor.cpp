//===- workloads/LuFactor.cpp - LU factorization (jBYTEmark / Linpack) -----==//
//
// Gaussian elimination with partial pivoting on the paper's 101x101
// matrix. The elimination's middle loop (rows below the pivot) is the
// parallel STL with ~(n-k) multiply-subtract inner work; the pivot search
// carries a running maximum. The paper marks LuFactor analyzable and
// data-set sensitive.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildLuFactor() {
  constexpr std::int64_t N = 64;

  auto At = [](Ex I, Ex J) {
    return ld(v("a"), add(mul(I, c(N)), J));
  };

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("a", allocWords(c(N * N))),
      assign("piv", allocWords(c(N))),
      forLoop("i", c(0), lt(v("i"), c(N * N)), 1,
              store(v("a"), v("i"),
                    fsub(fmul(itof(hashMod(v("i"), 2000)), cf(0.001)),
                         cf(1.0)))),
      // Diagonal dominance keeps the factorization well conditioned.
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              store(v("a"), add(mul(v("i"), c(N)), v("i")),
                    fadd(At(v("i"), v("i")), cf(8.0)))),

      forLoop(
          "k", c(0), lt(v("k"), c(N - 1)), 1,
          seq({
              // Partial pivot search in column k.
              assign("pmax", At(v("k"), v("k"))),
              iff(flt(v("pmax"), cf(0.0)), assign("pmax", fneg(v("pmax")))),
              assign("prow", v("k")),
              forLoop("i", add(v("k"), c(1)), lt(v("i"), c(N)), 1,
                      seq({
                          assign("x", At(v("i"), v("k"))),
                          iff(flt(v("x"), cf(0.0)),
                              assign("x", fneg(v("x")))),
                          iff(flt(v("pmax"), v("x")),
                              seq({
                                  assign("pmax", v("x")),
                                  assign("prow", v("i")),
                              })),
                      })),
              store(v("piv"), v("k"), v("prow")),
              // Swap rows k and prow when needed.
              iff(ne(v("prow"), v("k")),
                  forLoop("j", c(0), lt(v("j"), c(N)), 1,
                          seq({
                              assign("t", At(v("k"), v("j"))),
                              store(v("a"),
                                    add(mul(v("k"), c(N)), v("j")),
                                    At(v("prow"), v("j"))),
                              store(v("a"),
                                    add(mul(v("prow"), c(N)), v("j")),
                                    v("t")),
                          }))),
              // Eliminate below the pivot: the parallel STL.
              forLoop(
                  "i", add(v("k"), c(1)), lt(v("i"), c(N)), 1,
                  seq({
                      assign("f", fdiv(At(v("i"), v("k")),
                                       At(v("k"), v("k")))),
                      store(v("a"), add(mul(v("i"), c(N)), v("k")),
                            v("f")),
                      forLoop("j", add(v("k"), c(1)), lt(v("j"), c(N)), 1,
                              store(v("a"),
                                    add(mul(v("i"), c(N)), v("j")),
                                    fsub(At(v("i"), v("j")),
                                         fmul(v("f"),
                                              At(v("k"), v("j")))))),
                  })),
          })),

      // Fixed-point checksum over U's diagonal and sampled entries.
      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              assign("sum", add(v("sum"), fix16(At(v("i"), v("i")))))),
      forLoop("i", c(0), lt(v("i"), c(N * N)), 37,
              assign("sum", add(v("sum"), fix16(ld(v("a"), v("i")))))),
      forLoop("i", c(0), lt(v("i"), c(N - 1)), 1,
              assign("sum", add(v("sum"), ld(v("piv"), v("i"))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
