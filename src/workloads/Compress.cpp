//===- workloads/Compress.cpp - LZW-style compression (SPECjvm98 209) ------==//
//
// A dictionary-based compressor: the main loop extends the current match
// through a hash-probed dictionary and emits codes. The dictionary and the
// next-code counter are loop-carried through memory, so the main loop shows
// real dependency arcs; a post-pass decompressor verifies the round trip.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildCompress() {
  constexpr std::int64_t InLen = 4000;
  constexpr std::int64_t TableSize = 4096; // power of two
  constexpr std::int64_t FirstCode = 256;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      // Compressible input: repeating phrases with noise.
      assign("in", allocWords(c(InLen))),
      forLoop("i", c(0), lt(v("i"), c(InLen)), 1,
              store(v("in"), v("i"),
                    srem(add(srem(v("i"), c(17)), hashMod(sdiv(v("i"), c(64)), 9)),
                         c(96)))),

      // Dictionary: key = (prefixCode << 8) | symbol, value = code.
      assign("keys", allocWords(c(TableSize))),
      assign("vals", allocWords(c(TableSize))),
      forLoop("i", c(0), lt(v("i"), c(TableSize)), 1,
              store(v("keys"), v("i"), c(-1))),

      assign("out", allocWords(c(InLen + 8))),
      assign("out_n", c(0)),
      assign("nextCode", c(FirstCode)),
      assign("prefix", ld(v("in"), c(0))),
      forLoop(
          "i", c(1), lt(v("i"), c(InLen)), 1,
          seq({
              assign("sym", ld(v("in"), v("i"))),
              assign("key", bor(shl(v("prefix"), c(8)), v("sym"))),
              // Linear-probe lookup.
              assign("slot", srem(mul(v("key"), c(2654435761LL)),
                                  c(TableSize))),
              iff(lt(v("slot"), c(0)),
                  assign("slot", add(v("slot"), c(TableSize)))),
              assign("found", c(-1)),
              assign("probing", c(1)),
              whileLoop(
                  v("probing"),
                  seq({
                      assign("k", ld(v("keys"), v("slot"))),
                      iffElse(
                          eq(v("k"), v("key")),
                          seq({
                              assign("found", ld(v("vals"), v("slot"))),
                              assign("probing", c(0)),
                          }),
                          iffElse(eq(v("k"), c(-1)),
                                  assign("probing", c(0)),
                                  seq({
                                      assign("slot",
                                             srem(add(v("slot"), c(1)),
                                                  c(TableSize))),
                                  }))),
                  })),
              iffElse(
                  ne(v("found"), c(-1)),
                  assign("prefix", v("found")),
                  seq({
                      store(v("out"), v("out_n"), v("prefix")),
                      assign("out_n", add(v("out_n"), c(1))),
                      // Insert the new phrase while the table has room.
                      iff(lt(v("nextCode"), c(TableSize - 64 + FirstCode)),
                          seq({
                              store(v("keys"), v("slot"), v("key")),
                              store(v("vals"), v("slot"), v("nextCode")),
                              assign("nextCode", add(v("nextCode"), c(1))),
                          })),
                      assign("prefix", v("sym")),
                  })),
          })),
      store(v("out"), v("out_n"), v("prefix")),
      assign("out_n", add(v("out_n"), c(1))),

      // Round trip: LZW-decode the code stream with a mirrored dictionary
      // (dPre[k], dSym[k] for code k) and verify it reproduces the input.
      assign("dPre", allocWords(c(TableSize + 256))),
      assign("dSym", allocWords(c(TableSize + 256))),
      assign("stack", allocWords(c(260))),
      assign("dec", allocWords(c(InLen + 260))),
      assign("dec_n", c(0)),
      assign("dNext", c(FirstCode)),
      assign("prev", ld(v("out"), c(0))),
      store(v("dec"), c(0), v("prev")),
      assign("dec_n", c(1)),
      forLoop(
          "k", c(1), lt(v("k"), v("out_n")), 1,
          seq({
              assign("code", ld(v("out"), v("k"))),
              // The KwKwK case: the code being decoded is the one about to
              // be defined; expand prev and append its first symbol.
              assign("cur", v("code")),
              iff(ge(v("code"), v("dNext")),
                  assign("cur", c(-1))),
              // Expand cur (or prev for KwKwK) onto the stack.
              assign("walk", v("cur")),
              iff(eq(v("cur"), c(-1)), assign("walk", v("prev"))),
              assign("depth", c(0)),
              whileLoop(ge(v("walk"), c(FirstCode)),
                        seq({
                            store(v("stack"), v("depth"),
                                  ld(v("dSym"), v("walk"))),
                            assign("depth", add(v("depth"), c(1))),
                            assign("walk", ld(v("dPre"), v("walk"))),
                            iff(ge(v("depth"), c(255)), brk()),
                        })),
              store(v("stack"), v("depth"), v("walk")),
              assign("first", v("walk")),
              // Emit root-to-leaf.
              assign("d", v("depth")),
              whileLoop(ge(v("d"), c(0)),
                        seq({
                            store(v("dec"), v("dec_n"),
                                  ld(v("stack"), v("d"))),
                            assign("dec_n", add(v("dec_n"), c(1))),
                            assign("d", sub(v("d"), c(1))),
                        })),
              iff(eq(v("cur"), c(-1)),
                  seq({
                      store(v("dec"), v("dec_n"), v("first")),
                      assign("dec_n", add(v("dec_n"), c(1))),
                  })),
              // Mirror the encoder's conditional insertion.
              iff(lt(v("dNext"), c(TableSize - 64 + FirstCode)),
                  seq({
                      store(v("dPre"), v("dNext"), v("prev")),
                      store(v("dSym"), v("dNext"), v("first")),
                      assign("dNext", add(v("dNext"), c(1))),
                  })),
              assign("prev", v("code")),
          })),

      // Verify the round trip and fold the code stream into the checksum.
      assign("good", eq(v("dec_n"), c(InLen))),
      forLoop("i", c(0), lt(v("i"), c(InLen)), 1,
              iff(lt(v("i"), v("dec_n")),
                  assign("good", add(v("good"),
                                     eq(ld(v("dec"), v("i")),
                                        ld(v("in"), v("i"))))))),
      assign("sum", mul(v("good"), c(1000000))),
      forLoop("i", c(0), lt(v("i"), v("out_n")), 1,
              assign("sum",
                     add(mul(v("sum"), c(31)),
                         band(ld(v("out"), v("i")), c(0xFFFF))))),
      ret(band(add(v("sum"), v("out_n")), c(0x7FFFFFFFFFFF)))
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
