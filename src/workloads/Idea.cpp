//===- workloads/Idea.cpp - IDEA encryption (jBYTEmark) --------------------==//
//
// The 8.5-round IDEA block cipher over 16-bit sub-blocks with
// multiplication modulo 65537. Blocks are independent, so the outer
// per-block loop is the textbook coarse-grained STL (the paper reports one
// selected loop with ~6300-cycle threads); the benchmark is also one of
// the few integer codes a traditional parallelizing compiler could handle
// (Table 6 marks it analyzable).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

namespace {

/// mulmod(a, b): IDEA multiplication modulo 65537 with 0 == 65536.
FuncDef makeMulMod() {
  FuncDef F;
  F.Name = "mulmod";
  F.Params = {"a", "b"};
  F.Body = seq({
      iff(eq(v("a"), c(0)), ret(srem(sub(c(65537), v("b")), c(65536)))),
      iff(eq(v("b"), c(0)), ret(srem(sub(c(65537), v("a")), c(65536)))),
      assign("p", mul(v("a"), v("b"))),
      assign("r", srem(v("p"), c(65537))),
      ret(srem(v("r"), c(65536))),
  });
  return F;
}

} // namespace

ir::Module workloads::buildIdea() {
  constexpr std::int64_t Blocks = 384;
  constexpr std::int64_t Rounds = 8;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      // 52 round keys (16-bit) and the plaintext (4 shorts per block).
      assign("keys", allocWords(c(52))),
      forLoop("i", c(0), lt(v("i"), c(52)), 1,
              store(v("keys"), v("i"),
                    add(hashMod(v("i"), 65535), c(1)))),
      assign("pt", allocWords(c(Blocks * 4))),
      assign("ct", allocWords(c(Blocks * 4))),
      forLoop("i", c(0), lt(v("i"), c(Blocks * 4)), 1,
              store(v("pt"), v("i"), hashMod(v("i"), 65536))),

      forLoop(
          "blk", c(0), lt(v("blk"), c(Blocks)), 1,
          seq({
              assign("x1", ld(v("pt"), mul(v("blk"), c(4)))),
              assign("x2", ld(v("pt"), add(mul(v("blk"), c(4)), c(1)))),
              assign("x3", ld(v("pt"), add(mul(v("blk"), c(4)), c(2)))),
              assign("x4", ld(v("pt"), add(mul(v("blk"), c(4)), c(3)))),
              forLoop(
                  "r", c(0), lt(v("r"), c(Rounds)), 1,
                  seq({
                      assign("k", mul(v("r"), c(6))),
                      assign("x1", call("mulmod",
                                        {v("x1"), ld(v("keys"), v("k"))})),
                      assign("x2",
                             band(add(v("x2"),
                                      ld(v("keys"), add(v("k"), c(1)))),
                                  c(0xFFFF))),
                      assign("x3",
                             band(add(v("x3"),
                                      ld(v("keys"), add(v("k"), c(2)))),
                                  c(0xFFFF))),
                      assign("x4", call("mulmod",
                                        {v("x4"),
                                         ld(v("keys"), add(v("k"), c(3)))})),
                      assign("t1", bxor(v("x1"), v("x3"))),
                      assign("t2", bxor(v("x2"), v("x4"))),
                      assign("t1", call("mulmod",
                                        {v("t1"),
                                         ld(v("keys"), add(v("k"), c(4)))})),
                      assign("t2", band(add(v("t2"), v("t1")), c(0xFFFF))),
                      assign("t2", call("mulmod",
                                        {v("t2"),
                                         ld(v("keys"), add(v("k"), c(5)))})),
                      assign("t1", band(add(v("t1"), v("t2")), c(0xFFFF))),
                      assign("x1", bxor(v("x1"), v("t2"))),
                      assign("x3", bxor(v("x3"), v("t2"))),
                      assign("x2", bxor(v("x2"), v("t1"))),
                      assign("x4", bxor(v("x4"), v("t1"))),
                      assign("tmp", v("x2")),
                      assign("x2", v("x3")),
                      assign("x3", v("tmp")),
                  })),
              // Output transform with the final four keys.
              assign("x1", call("mulmod", {v("x1"), ld(v("keys"), c(48))})),
              assign("x2", band(add(v("x2"), ld(v("keys"), c(49))),
                                c(0xFFFF))),
              assign("x3", band(add(v("x3"), ld(v("keys"), c(50))),
                                c(0xFFFF))),
              assign("x4", call("mulmod", {v("x4"), ld(v("keys"), c(51))})),
              store(v("ct"), mul(v("blk"), c(4)), v("x1")),
              store(v("ct"), add(mul(v("blk"), c(4)), c(1)), v("x2")),
              store(v("ct"), add(mul(v("blk"), c(4)), c(2)), v("x3")),
              store(v("ct"), add(mul(v("blk"), c(4)), c(3)), v("x4")),
          })),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(Blocks * 4)), 1,
              assign("sum", add(mul(v("sum"), c(17)),
                                ld(v("ct"), v("i"))))),
      ret(band(v("sum"), c(0x7FFFFFFFFFFFLL))),
  });

  ProgramDef P;
  P.Functions.push_back(makeMulMod());
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
