//===- workloads/MpegVideo.cpp - MPEG-style video decoder (mediabench) -----==//
//
// A coarser-grained decoder than h263dec: per macroblock, four 8x8 blocks
// are dequantized and inverse transformed, then merged with a
// motion-compensated prediction. One macroblock is one thread (~700
// cycles in the paper), with the per-block loops nested inside.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildMpegVideo() {
  constexpr std::int64_t MBW = 8, MBH = 6;
  constexpr std::int64_t W = MBW * 16, H = MBH * 16;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("ref", allocWords(c(W * H))),
      assign("cur", allocWords(c(W * H))),
      assign("coef", allocWords(c(MBW * MBH * 4 * 64))),
      assign("blk", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(W * H)), 1,
              store(v("ref"), v("i"), hashMod(v("i"), 256))),
      forLoop("i", c(0), lt(v("i"), c(MBW * MBH * 4 * 64)), 1,
              store(v("coef"), v("i"), sub(hashMod(v("i"), 33), c(16)))),

      forLoop(
          "mb", c(0), lt(v("mb"), c(MBW * MBH)), 1,
          seq({
              assign("bx", mul(srem(v("mb"), c(MBW)), c(16))),
              assign("by", mul(sdiv(v("mb"), c(MBW)), c(16))),
              assign("mvx", sub(hashMod(v("mb"), 5), c(2))),
              assign("mvy", sub(hashMod(mul(v("mb"), c(11)), 5), c(2))),
              forLoop(
                  "sb", c(0), lt(v("sb"), c(4)), 1,
                  seq({
                      assign("cbase",
                             mul(add(mul(v("mb"), c(4)), v("sb")), c(64))),
                      assign("ox", add(v("bx"),
                                       mul(srem(v("sb"), c(2)), c(8)))),
                      assign("oy", add(v("by"),
                                       mul(sdiv(v("sb"), c(2)), c(8)))),
                      // Dequantize + separable integer transform.
                      forLoop("i", c(0), lt(v("i"), c(64)), 1,
                              store(v("blk"), v("i"),
                                    mul(ld(v("coef"),
                                           add(v("cbase"), v("i"))),
                                        add(c(2),
                                            srem(v("i"), c(6)))))),
                      forLoop(
                          "r", c(0), lt(v("r"), c(8)), 1,
                          forLoop(
                              "k", c(0), lt(v("k"), c(4)), 1,
                              seq({
                                  assign("p", add(mul(v("r"), c(8)),
                                                  v("k"))),
                                  assign("q", add(mul(v("r"), c(8)),
                                                  sub(c(7), v("k")))),
                                  assign("s", add(ld(v("blk"), v("p")),
                                                  ld(v("blk"), v("q")))),
                                  assign("d", sub(ld(v("blk"), v("p")),
                                                  ld(v("blk"), v("q")))),
                                  store(v("blk"), v("p"),
                                        shr(add(mul(v("s"), c(3)),
                                                v("d")),
                                            c(2))),
                                  store(v("blk"), v("q"),
                                        shr(sub(mul(v("d"), c(3)),
                                                v("s")),
                                            c(2))),
                              }))),
                      // Merge with motion-compensated prediction.
                      forLoop(
                          "r", c(0), lt(v("r"), c(8)), 1,
                          forLoop(
                              "cc", c(0), lt(v("cc"), c(8)), 1,
                              seq({
                                  assign("sx", add(v("ox"),
                                                   add(v("cc"),
                                                       v("mvx")))),
                                  assign("sy", add(v("oy"),
                                                   add(v("r"), v("mvy")))),
                                  iff(lt(v("sx"), c(0)),
                                      assign("sx", c(0))),
                                  iff(ge(v("sx"), c(W)),
                                      assign("sx", c(W - 1))),
                                  iff(lt(v("sy"), c(0)),
                                      assign("sy", c(0))),
                                  iff(ge(v("sy"), c(H)),
                                      assign("sy", c(H - 1))),
                                  assign("px",
                                         add(ld(v("ref"),
                                                add(mul(v("sy"), c(W)),
                                                    v("sx"))),
                                             shr(ld(v("blk"),
                                                    add(mul(v("r"), c(8)),
                                                        v("cc"))),
                                                 c(3)))),
                                  iff(lt(v("px"), c(0)),
                                      assign("px", c(0))),
                                  iff(gt(v("px"), c(255)),
                                      assign("px", c(255))),
                                  store(v("cur"),
                                        add(mul(add(v("oy"), v("r")),
                                                c(W)),
                                            add(v("ox"), v("cc"))),
                                        v("px")),
                              }))),
                  })),
          })),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(W * H)), 1,
              assign("sum", add(v("sum"),
                                mul(ld(v("cur"), v("i")),
                                    add(srem(v("i"), c(9)), c(1)))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
