//===- workloads/Jess.cpp - Expert system shell (SPECjvm98 202_jess) -------==//
//
// A forward-chaining rule engine: rules with two condition patterns are
// matched against a working memory of (attribute, value) facts; matched
// rules assert derived facts which later passes can match again. The
// fact-append counter is loop carried and match loops are triangular —
// irregular control flow no static parallelizer handles (Table 6 marks
// jess unanalyzable, with small 339-cycle threads).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildJess() {
  constexpr std::int64_t BaseFacts = 300;
  constexpr std::int64_t MaxFacts = 2600;
  constexpr std::int64_t Rules = 24;
  constexpr std::int64_t Passes = 2;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("fAttr", allocWords(c(MaxFacts))),
      assign("fVal", allocWords(c(MaxFacts))),
      assign("nFacts", c(BaseFacts)),
      forLoop("i", c(0), lt(v("i"), c(BaseFacts)), 1,
              seq({
                  store(v("fAttr"), v("i"), hashMod(v("i"), 12)),
                  store(v("fVal"), v("i"), hashMod(mul(v("i"), c(3)), 50)),
              })),
      // Rules: match (attrA, value mod mA == rA) and (attrB ...), then
      // assert (attrOut, f(values)).
      assign("rAttrA", allocWords(c(Rules))),
      assign("rModA", allocWords(c(Rules))),
      assign("rAttrB", allocWords(c(Rules))),
      assign("rModB", allocWords(c(Rules))),
      assign("rOut", allocWords(c(Rules))),
      forLoop("i", c(0), lt(v("i"), c(Rules)), 1,
              seq({
                  store(v("rAttrA"), v("i"), hashMod(v("i"), 12)),
                  store(v("rModA"), v("i"),
                        add(hashMod(mul(v("i"), c(11)), 6), c(2))),
                  store(v("rAttrB"), v("i"),
                        hashMod(add(v("i"), c(7)), 12)),
                  store(v("rModB"), v("i"),
                        add(hashMod(mul(v("i"), c(29)), 7), c(2))),
                  store(v("rOut"), v("i"),
                        add(c(12), srem(v("i"), c(4)))),
              })),

      assign("fired", c(0)),
      forLoop(
          "pass", c(0), lt(v("pass"), c(Passes)), 1,
          seq({
              assign("limit", v("nFacts")),
              forLoop(
                  "r", c(0), lt(v("r"), c(Rules)), 1,
                  seq({
                      assign("aA", ld(v("rAttrA"), v("r"))),
                      assign("mA", ld(v("rModA"), v("r"))),
                      assign("aB", ld(v("rAttrB"), v("r"))),
                      assign("mB", ld(v("rModB"), v("r"))),
                      forLoop(
                          "i", c(0), lt(v("i"), v("limit")), 1,
                          iff(band(eq(ld(v("fAttr"), v("i")), v("aA")),
                                   eq(srem(ld(v("fVal"), v("i")), v("mA")),
                                      c(1))),
                              forLoop(
                                  "j", c(0), lt(v("j"), v("limit")), 7,
                                  iff(band(eq(ld(v("fAttr"), v("j")),
                                              v("aB")),
                                           eq(srem(ld(v("fVal"), v("j")),
                                                   v("mB")),
                                              c(0))),
                                      iff(lt(v("nFacts"), c(MaxFacts)),
                                          seq({
                                              store(v("fAttr"), v("nFacts"),
                                                    ld(v("rOut"), v("r"))),
                                              store(v("fVal"), v("nFacts"),
                                                    srem(add(ld(v("fVal"),
                                                                v("i")),
                                                             ld(v("fVal"),
                                                                v("j"))),
                                                         c(50))),
                                              assign("nFacts",
                                                     add(v("nFacts"), c(1))),
                                              assign("fired",
                                                     add(v("fired"), c(1))),
                                          })))))),
                      })),
          })),

      assign("sum", add(v("fired"), mul(v("nFacts"), c(1000)))),
      forLoop("i", c(0), lt(v("i"), v("nFacts")), 3,
              assign("sum", add(v("sum"),
                                bxor(ld(v("fAttr"), v("i")),
                                     mul(ld(v("fVal"), v("i")), c(5)))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
