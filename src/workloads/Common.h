//===- workloads/Common.h - Shared DSL helpers for workloads ---------------==//

#ifndef JRPM_WORKLOADS_COMMON_H
#define JRPM_WORKLOADS_COMMON_H

#include "frontend/Ast.h"

namespace jrpm {
namespace workloads {

/// Deterministic integer hash of \p X, non-negative.
inline front::Ex hashEx(front::Ex X) {
  using namespace front;
  return band(mul(add(X, c(0x9E3779B9)), c(2654435761LL)), c(0x7FFFFFFF));
}

/// hash(X) % Mod.
inline front::Ex hashMod(front::Ex X, std::int64_t Mod) {
  using namespace front;
  return srem(hashEx(X), c(Mod));
}

/// Fixed-point conversion of a double expression (16.16) used for robust
/// floating-point checksums: tiny reassociation differences introduced by
/// reduction privatization vanish under the quantization.
inline front::Ex fix16(front::Ex X) {
  using namespace front;
  return ftoi(fmul(X, cf(65536.0)));
}

} // namespace workloads
} // namespace jrpm

#endif // JRPM_WORKLOADS_COMMON_H
