//===- workloads/MipsSimulator.cpp - CPU simulator (jBYTEmark emulation) ---==//
//
// Interprets a small register machine: a guest program of arithmetic,
// memory, and branch instructions runs for a fixed number of steps. The
// guest PC and register file live in heap memory, so the main interpret
// loop carries dependencies through them — the paper still reports usable
// coarse threads (~1300 cycles) because arcs close early in each step.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildMipsSimulator() {
  constexpr std::int64_t ProgLen = 64;
  constexpr std::int64_t GuestMem = 256;
  constexpr std::int64_t GuestRegs = 16;
  constexpr std::int64_t Steps = 12000;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      // Guest program: op, a, b, d per instruction.
      assign("pOp", allocWords(c(ProgLen))),
      assign("pA", allocWords(c(ProgLen))),
      assign("pB", allocWords(c(ProgLen))),
      assign("pD", allocWords(c(ProgLen))),
      // Guest register usage mimics compiled code: results go to the low
      // bank, operands come mostly from the high bank, with occasional
      // cross-bank reads creating genuine (but infrequent) dependencies
      // between nearby guest instructions.
      forLoop("i", c(0), lt(v("i"), c(ProgLen)), 1,
              seq({
                  store(v("pOp"), v("i"), hashMod(v("i"), 6)),
                  iffElse(eq(hashMod(mul(v("i"), c(3)), 5), c(0)),
                          store(v("pA"), v("i"),
                                hashMod(v("i"), GuestRegs / 2)),
                          store(v("pA"), v("i"),
                                add(hashMod(v("i"), GuestRegs / 2),
                                    c(GuestRegs / 2)))),
                  store(v("pB"), v("i"),
                        add(hashMod(add(v("i"), c(5)), GuestRegs / 2),
                            c(GuestRegs / 2))),
                  store(v("pD"), v("i"),
                        hashMod(mul(v("i"), c(7)), GuestRegs / 2)),
              })),
      assign("gReg", allocWords(c(GuestRegs))),
      assign("gMem", allocWords(c(GuestMem))),
      forLoop("i", c(0), lt(v("i"), c(GuestRegs)), 1,
              store(v("gReg"), v("i"), add(v("i"), c(1)))),
      forLoop("i", c(0), lt(v("i"), c(GuestMem)), 1,
              store(v("gMem"), v("i"), hashMod(v("i"), 9999))),

      // The interpret loop: one guest instruction per iteration. The guest
      // PC is resolved immediately after decode — the paper observes that
      // MipsSimulator's dependencies close on recent threads early in the
      // step, leaving the execute phase to overlap.
      assign("pc", c(0)),
      forLoop(
          "step", c(0), lt(v("step"), c(Steps)), 1,
          seq({
              assign("op", ld(v("pOp"), v("pc"))),
              assign("ra", ld(v("pA"), v("pc"))),
              assign("rb", ld(v("pB"), v("pc"))),
              assign("rd", ld(v("pD"), v("pc"))),
              assign("va", ld(v("gReg"), v("ra"))),
              assign("vb", ld(v("gReg"), v("rb"))),
              // Branch resolution first: pc is ready for the next thread.
              assign("npc", add(v("pc"), c(1))),
              iff(band(eq(v("op"), c(5)),
                       eq(srem(v("va"), c(2)), c(1))),
                  assign("npc", hashMod(add(v("pc"), v("vb")), ProgLen))),
              assign("pc", srem(v("npc"), c(ProgLen))),
              // Execute phase.
              iffElse(
                  eq(v("op"), c(0)), // add
                  store(v("gReg"), v("rd"), add(v("va"), v("vb"))),
                  iffElse(
                      eq(v("op"), c(1)), // sub with bias
                      store(v("gReg"), v("rd"),
                            sub(add(v("va"), c(7)), v("vb"))),
                      iffElse(
                          eq(v("op"), c(2)), // multiply-accumulate chain
                          seq({
                              assign("acc", v("va")),
                              forLoop("m", c(0), lt(v("m"), c(6)), 1,
                                      assign("acc",
                                             band(add(mul(v("acc"), c(37)),
                                                      v("vb")),
                                                  c(0xFFFFFF)))),
                              store(v("gReg"), v("rd"), v("acc")),
                          }),
                          iffElse(
                              eq(v("op"), c(3)), // load
                              store(v("gReg"), v("rd"),
                                    ld(v("gMem"),
                                       srem(v("va"), c(GuestMem)))),
                              iff(eq(v("op"), c(4)), // store
                                  store(v("gMem"),
                                        srem(v("va"), c(GuestMem)),
                                        v("vb"))))))),
          })),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(GuestRegs)), 1,
              assign("sum", add(mul(v("sum"), c(13)),
                                band(ld(v("gReg"), v("i")),
                                     c(0xFFFFFFF))))),
      forLoop("i", c(0), lt(v("i"), c(GuestMem)), 11,
              assign("sum", add(v("sum"), ld(v("gMem"), v("i"))))),
      ret(band(v("sum"), c(0x7FFFFFFFFFFFLL))),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
