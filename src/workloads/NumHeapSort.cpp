//===- workloads/NumHeapSort.cpp - Heap sort (jBYTEmark) -------------------==//
//
// Classic heap sort: build-heap followed by repeated extract-max, with the
// sift-down walk factored into a helper function called from both loops —
// the call-inside-loop structure exercises the tracer's handling of loops
// reached through calls. The extract loop's array dependencies limit
// parallelism; the build loop's sub-heaps are largely independent.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

namespace {

FuncDef makeSiftDown() {
  FuncDef F;
  F.Name = "siftdown";
  F.Params = {"a", "start", "end"};
  F.Body = seq({
      assign("root", v("start")),
      assign("going", c(1)),
      whileLoop(
          v("going"),
          seq({
              assign("child", add(mul(v("root"), c(2)), c(1))),
              iffElse(
                  gt(v("child"), v("end")),
                  assign("going", c(0)),
                  seq({
                      iff(band(lt(v("child"), v("end")),
                               lt(ld(v("a"), v("child")),
                                  ld(v("a"), add(v("child"), c(1))))),
                          assign("child", add(v("child"), c(1)))),
                      iffElse(
                          lt(ld(v("a"), v("root")), ld(v("a"), v("child"))),
                          seq({
                              assign("t", ld(v("a"), v("root"))),
                              store(v("a"), v("root"),
                                    ld(v("a"), v("child"))),
                              store(v("a"), v("child"), v("t")),
                              assign("root", v("child")),
                          }),
                          assign("going", c(0))),
                  })),
          })),
      ret(),
  });
  return F;
}

} // namespace

ir::Module workloads::buildNumHeapSort() {
  constexpr std::int64_t N = 2000;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      // One padding word: the sift guard's non-short-circuiting `band`
      // evaluates a[child+1] even when child == end.
      assign("a", allocWords(c(N + 4))),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              store(v("a"), v("i"), hashMod(v("i"), 1000000))),

      // Build heap.
      forLoop("s", c(N / 2 - 1), ge(v("s"), c(0)), -1,
              exprStmt(call("siftdown", {v("a"), v("s"), c(N - 1)}))),
      // Extract max repeatedly.
      forLoop("end", c(N - 1), gt(v("end"), c(0)), -1,
              seq({
                  assign("t", ld(v("a"), c(0))),
                  store(v("a"), c(0), ld(v("a"), v("end"))),
                  store(v("a"), v("end"), v("t")),
                  exprStmt(call("siftdown",
                                {v("a"), c(0), sub(v("end"), c(1))})),
              })),

      // Checksum: sortedness plus sampled content.
      assign("sum", c(0)),
      forLoop("i", c(1), lt(v("i"), c(N)), 1,
              iff(le(ld(v("a"), sub(v("i"), c(1))), ld(v("a"), v("i"))),
                  assign("sum", add(v("sum"), c(1))))),
      forLoop("i", c(0), lt(v("i"), c(N)), 13,
              assign("sum", add(v("sum"), ld(v("a"), v("i"))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(makeSiftDown());
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
