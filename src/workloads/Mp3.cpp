//===- workloads/Mp3.cpp - MP3-style audio decoder (mediabench) ------------==//
//
// The polyphase synthesis half of an mp3 decoder in fixed point: per
// granule, 32 subband samples are dequantized, the synthesis window slides,
// and each output sample is a windowed dot product. The per-subband dot
// products are the paper's ~181-cycle mp3 threads; many distinct loops
// contribute (the paper selects 17 STLs here).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildMp3() {
  constexpr std::int64_t Subbands = 32;
  constexpr std::int64_t Granules = 36;
  constexpr std::int64_t WinLen = 16;
  constexpr std::int64_t FifoLen = Subbands * WinLen;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      // Scale factors, window coefficients (Q15), and the sample FIFO.
      assign("scale", allocWords(c(Subbands))),
      assign("win", allocWords(c(Subbands * WinLen))),
      assign("fifo", allocWords(c(FifoLen))),
      assign("pcm", allocWords(c(Granules * Subbands))),
      forLoop("i", c(0), lt(v("i"), c(Subbands)), 1,
              store(v("scale"), v("i"),
                    add(c(256), hashMod(v("i"), 1024)))),
      forLoop("i", c(0), lt(v("i"), c(Subbands * WinLen)), 1,
              store(v("win"), v("i"),
                    sub(hashMod(v("i"), 8192), c(4096)))),
      forLoop("i", c(0), lt(v("i"), c(FifoLen)), 1,
              store(v("fifo"), v("i"), c(0))),

      forLoop(
          "g", c(0), lt(v("g"), c(Granules)), 1,
          seq({
              // Shift the FIFO by one slot per subband (from the back).
              forLoop(
                  "s", c(0), lt(v("s"), c(Subbands)), 1,
                  forLoop(
                      "k", c(WinLen - 1), gt(v("k"), c(0)), -1,
                      store(v("fifo"),
                            add(mul(v("s"), c(WinLen)), v("k")),
                            ld(v("fifo"),
                               add(mul(v("s"), c(WinLen)),
                                   sub(v("k"), c(1))))))),
              // Dequantize this granule's 32 samples into slot 0.
              forLoop(
                  "s", c(0), lt(v("s"), c(Subbands)), 1,
                  seq({
                      assign("q", sub(hashMod(add(mul(v("g"), c(37)),
                                                  v("s")),
                                              512),
                                      c(256))),
                      store(v("fifo"), mul(v("s"), c(WinLen)),
                            shr(mul(v("q"), ld(v("scale"), v("s"))),
                                c(6))),
                  })),
              // Windowed synthesis: one dot product per subband.
              forLoop(
                  "s", c(0), lt(v("s"), c(Subbands)), 1,
                  seq({
                      assign("acc", c(0)),
                      forLoop(
                          "k", c(0), lt(v("k"), c(WinLen)), 1,
                          assign("acc",
                                 add(v("acc"),
                                     mul(ld(v("fifo"),
                                            add(mul(v("s"), c(WinLen)),
                                                v("k"))),
                                         ld(v("win"),
                                            add(mul(v("s"), c(WinLen)),
                                                v("k"))))))),
                      // Clamp to 16-bit PCM.
                      assign("out", shr(v("acc"), c(15))),
                      iff(lt(v("out"), c(-32768)),
                          assign("out", c(-32768))),
                      iff(gt(v("out"), c(32767)),
                          assign("out", c(32767))),
                      store(v("pcm"),
                            add(mul(v("g"), c(Subbands)), v("s")),
                            v("out")),
                  })),
          })),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(Granules * Subbands)), 1,
              assign("sum", add(mul(v("sum"), c(3)),
                                band(ld(v("pcm"), v("i")),
                                     c(0xFFFF))))),
      ret(band(v("sum"), c(0x7FFFFFFFFFFFLL))),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
