//===- workloads/FourierTest.cpp - Fourier coefficients (jBYTEmark) --------==//
//
// Computes trapezoid-rule Fourier coefficients of ((x+1)^x-like) function
// over [0, 2] with a software Taylor-series cosine, as the original
// benchmark does through Math.pow/cos. One outer iteration integrates an
// entire coefficient — the hugest threads in the suite (the paper reports
// ~168k cycles per thread and exactly 100 threads per entry).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

#include <cmath>

using namespace jrpm;
using namespace jrpm::front;

namespace {

/// cosf(x): range-reduced 8-term Taylor cosine.
FuncDef makeCos() {
  FuncDef F;
  F.Name = "cosf";
  F.Params = {"x"};
  F.Body = seq({
      // Reduce to [-pi, pi): x -= 2*pi * floor(x / 2*pi + 0.5).
      assign("k", ftoi(fadd(fdiv(v("x"), cf(2.0 * M_PI)), cf(0.5)))),
      // ftoi truncates toward zero; compensate for negative arguments.
      iff(flt(fadd(fdiv(v("x"), cf(2.0 * M_PI)), cf(0.5)), cf(0.0)),
          assign("k", sub(v("k"), c(1)))),
      assign("r", fsub(v("x"), fmul(itof(v("k")), cf(2.0 * M_PI)))),
      assign("r2", fmul(v("r"), v("r"))),
      // Horner evaluation of the degree-16 Taylor polynomial.
      assign("acc", cf(1.0 / 20922789888000.0)), // 1/16!
      assign("acc", fadd(fmul(v("acc"), v("r2")), cf(-1.0 / 87178291200.0))),
      assign("acc", fadd(fmul(v("acc"), v("r2")), cf(1.0 / 479001600.0))),
      assign("acc", fadd(fmul(v("acc"), v("r2")), cf(-1.0 / 3628800.0))),
      assign("acc", fadd(fmul(v("acc"), v("r2")), cf(1.0 / 40320.0))),
      assign("acc", fadd(fmul(v("acc"), v("r2")), cf(-1.0 / 720.0))),
      assign("acc", fadd(fmul(v("acc"), v("r2")), cf(1.0 / 24.0))),
      assign("acc", fadd(fmul(v("acc"), v("r2")), cf(-0.5))),
      assign("acc", fadd(fmul(v("acc"), v("r2")), cf(1.0))),
      ret(v("acc")),
  });
  return F;
}

/// f(t): the integrand, (t+1)^t approximated by exp-free power loop —
/// here a cubic with a slow inner refinement loop to give the integrand
/// realistic cost.
FuncDef makeIntegrand() {
  FuncDef F;
  F.Name = "fint";
  F.Params = {"t"};
  F.Body = seq({
      assign("base", fadd(v("t"), cf(1.0))),
      assign("p", cf(1.0)),
      // Integer-power refinement: p = base^3 via repeated multiply, plus a
      // Newton sqrt step to add work.
      forLoop("i", c(0), lt(v("i"), c(3)), 1,
              assign("p", fmul(v("p"), v("base")))),
      assign("g", fdiv(fadd(v("p"), fdiv(v("base"), fadd(v("p"), cf(0.1)))),
                       cf(2.0))),
      ret(v("g")),
  });
  return F;
}

} // namespace

ir::Module workloads::buildFourierTest() {
  constexpr std::int64_t Coeffs = 48;
  constexpr std::int64_t Points = 90;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("a", allocWords(c(Coeffs))),
      assign("b", allocWords(c(Coeffs))),
      forLoop(
          "k", c(0), lt(v("k"), c(Coeffs)), 1,
          seq({
              assign("fk", itof(v("k"))),
              assign("sumA", cf(0.0)),
              assign("sumB", cf(0.0)),
              forLoop(
                  "j", c(0), lt(v("j"), c(Points)), 1,
                  seq({
                      assign("t", fmul(itof(v("j")),
                                       cf(2.0 / static_cast<double>(
                                              Points)))),
                      assign("ft", call("fint", {v("t")})),
                      assign("cv",
                             call("cosf",
                                  {fmul(fmul(v("t"), cf(M_PI)), v("fk"))})),
                      assign("sv",
                             call("cosf",
                                  {fsub(fmul(fmul(v("t"), cf(M_PI)),
                                             v("fk")),
                                        cf(M_PI / 2.0))})),
                      assign("sumA", fadd(v("sumA"),
                                          fmul(v("ft"), v("cv")))),
                      assign("sumB", fadd(v("sumB"),
                                          fmul(v("ft"), v("sv")))),
                  })),
              store(v("a"), v("k"),
                    fmul(v("sumA"), cf(2.0 / static_cast<double>(Points)))),
              store(v("b"), v("k"),
                    fmul(v("sumB"), cf(2.0 / static_cast<double>(Points)))),
          })),

      assign("sum", c(0)),
      forLoop("k", c(0), lt(v("k"), c(Coeffs)), 1,
              assign("sum", add(v("sum"),
                                add(fix16(ld(v("a"), v("k"))),
                                    fix16(ld(v("b"), v("k"))))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(makeCos());
  P.Functions.push_back(makeIntegrand());
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
