//===- workloads/DecJpeg.cpp - JPEG-style image decoder (mediabench) -------==//
//
// Block-based decode: per 8x8 block, coefficient dequantization, a
// separable integer butterfly IDCT approximation (rows then columns), and
// clamped writeback. Blocks are independent, giving the many small STLs
// the paper reports for decJpeg (21 selected loops, ~124-cycle threads).
// All arithmetic is integer, so checksums are exact.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildDecJpeg() {
  constexpr std::int64_t BW = 10, BH = 10; // blocks
  constexpr std::int64_t Blocks = BW * BH;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("coef", allocWords(c(Blocks * 64))),
      assign("quant", allocWords(c(64))),
      assign("img", allocWords(c(Blocks * 64))),
      assign("tmp", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              store(v("quant"), v("i"),
                    add(c(1), srem(add(v("i"), c(4)), c(24))))),
      forLoop("i", c(0), lt(v("i"), c(Blocks * 64)), 1,
              store(v("coef"), v("i"),
                    sub(hashMod(v("i"), 64), c(32)))),

      forLoop(
          "b", c(0), lt(v("b"), c(Blocks)), 1,
          seq({
              assign("base", mul(v("b"), c(64))),
              // Dequantize into tmp.
              forLoop("i", c(0), lt(v("i"), c(64)), 1,
                      store(v("tmp"), v("i"),
                            mul(ld(v("coef"), add(v("base"), v("i"))),
                                ld(v("quant"), v("i"))))),
              // Row butterflies (integer IDCT approximation).
              forLoop(
                  "r", c(0), lt(v("r"), c(8)), 1,
                  forLoop(
                      "k", c(0), lt(v("k"), c(4)), 1,
                      seq({
                          assign("p", add(mul(v("r"), c(8)), v("k"))),
                          assign("q", add(mul(v("r"), c(8)),
                                          sub(c(7), v("k")))),
                          assign("s", add(ld(v("tmp"), v("p")),
                                          ld(v("tmp"), v("q")))),
                          assign("d", sub(ld(v("tmp"), v("p")),
                                          ld(v("tmp"), v("q")))),
                          store(v("tmp"), v("p"),
                                shr(add(mul(v("s"), c(5)),
                                        mul(v("d"), c(3))),
                                    c(3))),
                          store(v("tmp"), v("q"),
                                shr(sub(mul(v("s"), c(3)),
                                        mul(v("d"), c(5))),
                                    c(3))),
                      }))),
              // Column butterflies.
              forLoop(
                  "cc", c(0), lt(v("cc"), c(8)), 1,
                  forLoop(
                      "k", c(0), lt(v("k"), c(4)), 1,
                      seq({
                          assign("p", add(mul(v("k"), c(8)), v("cc"))),
                          assign("q", add(mul(sub(c(7), v("k")), c(8)),
                                          v("cc"))),
                          assign("s", add(ld(v("tmp"), v("p")),
                                          ld(v("tmp"), v("q")))),
                          assign("d", sub(ld(v("tmp"), v("p")),
                                          ld(v("tmp"), v("q")))),
                          store(v("tmp"), v("p"),
                                shr(add(mul(v("s"), c(5)),
                                        mul(v("d"), c(3))),
                                    c(3))),
                          store(v("tmp"), v("q"),
                                shr(sub(mul(v("s"), c(3)),
                                        mul(v("d"), c(5))),
                                    c(3))),
                      }))),
              // Level shift, clamp to [0, 255], write back.
              forLoop(
                  "i", c(0), lt(v("i"), c(64)), 1,
                  seq({
                      assign("px", add(shr(ld(v("tmp"), v("i")), c(2)),
                                       c(128))),
                      iff(lt(v("px"), c(0)), assign("px", c(0))),
                      iff(gt(v("px"), c(255)), assign("px", c(255))),
                      store(v("img"), add(v("base"), v("i")), v("px")),
                  })),
          })),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(Blocks * 64)), 1,
              assign("sum", add(v("sum"),
                                mul(ld(v("img"), v("i")),
                                    add(srem(v("i"), c(11)), c(1)))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
