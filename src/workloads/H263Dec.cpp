//===- workloads/H263Dec.cpp - H.263-style video decoder (mediabench) ------==//
//
// P-frame reconstruction: per macroblock, a motion-compensated 16x16
// prediction is copied from the reference frame at a decoded motion
// vector, the residual is added, and pixels are clamped. The macroblock
// loop is the coarse STL; inner row/column copies are the fine ones.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildH263Dec() {
  constexpr std::int64_t MBW = 9, MBH = 7; // macroblocks
  constexpr std::int64_t W = MBW * 16, H = MBH * 16;
  constexpr std::int64_t Frames = 2;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("ref", allocWords(c(W * H))),
      assign("cur", allocWords(c(W * H))),
      assign("resid", allocWords(c(MBW * MBH * 256))),
      forLoop("i", c(0), lt(v("i"), c(W * H)), 1,
              store(v("ref"), v("i"), hashMod(v("i"), 256))),
      forLoop("i", c(0), lt(v("i"), c(MBW * MBH * 256)), 1,
              store(v("resid"), v("i"), sub(hashMod(v("i"), 17), c(8)))),

      forLoop(
          "f", c(0), lt(v("f"), c(Frames)), 1,
          seq({
              forLoop(
                  "mb", c(0), lt(v("mb"), c(MBW * MBH)), 1,
                  seq({
                      assign("bx", mul(srem(v("mb"), c(MBW)), c(16))),
                      assign("by", mul(sdiv(v("mb"), c(MBW)), c(16))),
                      // Decoded motion vector in [-3, 3].
                      assign("mvx", sub(hashMod(add(v("mb"), v("f")), 7),
                                        c(3))),
                      assign("mvy",
                             sub(hashMod(mul(add(v("mb"), c(3)),
                                             add(v("f"), c(1))),
                                         7),
                                 c(3))),
                      forLoop(
                          "r", c(0), lt(v("r"), c(16)), 1,
                          forLoop(
                              "cc", c(0), lt(v("cc"), c(16)), 1,
                              seq({
                                  assign("sx", add(v("bx"),
                                                   add(v("cc"), v("mvx")))),
                                  assign("sy", add(v("by"),
                                                   add(v("r"), v("mvy")))),
                                  iff(lt(v("sx"), c(0)),
                                      assign("sx", c(0))),
                                  iff(ge(v("sx"), c(W)),
                                      assign("sx", c(W - 1))),
                                  iff(lt(v("sy"), c(0)),
                                      assign("sy", c(0))),
                                  iff(ge(v("sy"), c(H)),
                                      assign("sy", c(H - 1))),
                                  assign("pred",
                                         ld(v("ref"),
                                            add(mul(v("sy"), c(W)),
                                                v("sx")))),
                                  assign("px",
                                         add(v("pred"),
                                             ld(v("resid"),
                                                add(mul(v("mb"), c(256)),
                                                    add(mul(v("r"), c(16)),
                                                        v("cc")))))),
                                  iff(lt(v("px"), c(0)),
                                      assign("px", c(0))),
                                  iff(gt(v("px"), c(255)),
                                      assign("px", c(255))),
                                  store(v("cur"),
                                        add(mul(add(v("by"), v("r")),
                                                c(W)),
                                            add(v("bx"), v("cc"))),
                                        v("px")),
                              }))),
                  })),
              // The decoded frame becomes the next reference.
              forLoop("i", c(0), lt(v("i"), c(W * H)), 1,
                      store(v("ref"), v("i"), ld(v("cur"), v("i")))),
          })),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(W * H)), 1,
              assign("sum", add(v("sum"),
                                mul(ld(v("cur"), v("i")),
                                    add(srem(v("i"), c(5)), c(1)))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
