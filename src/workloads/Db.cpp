//===- workloads/Db.cpp - In-memory database (SPECjvm98 209_db) ------------==//
//
// An address-book style table of 5000 records with the operation mix the
// SPEC benchmark performs: scans with predicates, field updates, an index
// (shell) sort, and key lookups through the sorted index. The sort's inner
// compare-swap loop is carried through the permutation array; the scans and
// updates are parallel.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildDb() {
  constexpr std::int64_t N = 5000;
  constexpr std::int64_t Probes = 400;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("key", allocWords(c(N))),
      assign("val1", allocWords(c(N))),
      assign("val2", allocWords(c(N))),
      assign("idx", allocWords(c(N))),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              seq({
                  store(v("key"), v("i"), hashMod(v("i"), 1000000)),
                  store(v("val1"), v("i"), hashMod(mul(v("i"), c(3)), 5000)),
                  store(v("val2"), v("i"), c(0)),
                  store(v("idx"), v("i"), v("i")),
              })),

      // Scan: sum val1 of records matching a key predicate.
      assign("scanSum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              iff(eq(srem(ld(v("key"), v("i")), c(7)), c(3)),
                  assign("scanSum", add(v("scanSum"),
                                        ld(v("val1"), v("i")))))),

      // Update: derived field for every record.
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              store(v("val2"), v("i"),
                    add(mul(ld(v("val1"), v("i")), c(3)),
                        srem(ld(v("key"), v("i")), c(101))))),

      // Shell sort of the index by key.
      assign("gap", c(N / 2)),
      whileLoop(
          gt(v("gap"), c(0)),
          seq({
              forLoop(
                  "i", v("gap"), lt(v("i"), c(N)), 1,
                  seq({
                      assign("tmp", ld(v("idx"), v("i"))),
                      assign("tk", ld(v("key"), v("tmp"))),
                      assign("j", v("i")),
                      // The guard must not index with j-gap when j < gap
                      // (expressions are not short-circuiting), so the
                      // compare happens inside the loop body.
                      assign("moving", c(1)),
                      whileLoop(
                          v("moving"),
                          iffElse(
                              lt(v("j"), v("gap")),
                              assign("moving", c(0)),
                              seq({
                                  assign("pk",
                                         ld(v("key"),
                                            ld(v("idx"),
                                               sub(v("j"), v("gap"))))),
                                  iffElse(
                                      gt(v("pk"), v("tk")),
                                      seq({
                                          store(v("idx"), v("j"),
                                                ld(v("idx"),
                                                   sub(v("j"), v("gap")))),
                                          assign("j", sub(v("j"), v("gap"))),
                                      }),
                                      assign("moving", c(0))),
                              }))),
                      store(v("idx"), v("j"), v("tmp")),
                  })),
              assign("gap", sdiv(v("gap"), c(2))),
          })),

      // Probe: binary search for hash-derived keys.
      assign("hits", c(0)),
      forLoop(
          "q", c(0), lt(v("q"), c(Probes)), 1,
          seq({
              assign("want", hashMod(mul(v("q"), c(7)), 1000000)),
              assign("lo", c(0)),
              assign("hi", c(N - 1)),
              whileLoop(
                  le(v("lo"), v("hi")),
                  seq({
                      assign("mid", sdiv(add(v("lo"), v("hi")), c(2))),
                      assign("mk", ld(v("key"), ld(v("idx"), v("mid")))),
                      iffElse(eq(v("mk"), v("want")),
                              seq({
                                  assign("hits", add(v("hits"), c(1))),
                                  brk(),
                              }),
                              iffElse(lt(v("mk"), v("want")),
                                      assign("lo", add(v("mid"), c(1))),
                                      assign("hi", sub(v("mid"), c(1))))),
                  })),
          })),

      // Checksum: sortedness, probe hits, and update results.
      assign("sum", add(v("scanSum"), mul(v("hits"), c(977)))),
      forLoop("i", c(1), lt(v("i"), c(N)), 1,
              iff(le(ld(v("key"), ld(v("idx"), sub(v("i"), c(1)))),
                     ld(v("key"), ld(v("idx"), v("i")))),
                  assign("sum", add(v("sum"), c(1))))),
      forLoop("i", c(0), lt(v("i"), c(N)), 17,
              assign("sum", add(v("sum"), ld(v("val2"), v("i"))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
