//===- workloads/Euler.cpp - Fluid dynamics (Java Grande euler) ------------==//
//
// A 2D Euler-equation style stencil on the paper's 33x9 grid: per timestep,
// face fluxes are computed from neighbouring cells and cells are updated
// from the fluxes (Jameson-scheme shape). Within a step all cells are
// independent (read old / write new), so parallelism exists at both the
// row and the cell level — the data-set-sensitive selection case the paper
// describes for euler.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildEuler() {
  constexpr std::int64_t NX = 33;
  constexpr std::int64_t NY = 9;
  constexpr std::int64_t Steps = 14;

  auto At = [](const char *Base, Ex I, Ex J) {
    return ld(v(Base), add(mul(I, c(NY)), J));
  };

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("rho", allocWords(c(NX * NY))),
      assign("e", allocWords(c(NX * NY))),
      assign("fx", allocWords(c(NX * NY))),
      assign("fy", allocWords(c(NX * NY))),
      assign("rhoN", allocWords(c(NX * NY))),
      assign("eN", allocWords(c(NX * NY))),
      forLoop("i", c(0), lt(v("i"), c(NX * NY)), 1,
              seq({
                  store(v("rho"), v("i"),
                        fadd(cf(1.0),
                             fmul(itof(hashMod(v("i"), 100)), cf(0.001)))),
                  store(v("e"), v("i"),
                        fadd(cf(2.5),
                             fmul(itof(hashMod(mul(v("i"), c(3)), 100)),
                                  cf(0.002)))),
              })),

      forLoop(
          "t", c(0), lt(v("t"), c(Steps)), 1,
          seq({
              // Fluxes from neighbour differences (interior cells).
              forLoop(
                  "i", c(1), lt(v("i"), c(NX - 1)), 1,
                  forLoop(
                      "j", c(1), lt(v("j"), c(NY - 1)), 1,
                      seq({
                          assign("c0", At("rho", v("i"), v("j"))),
                          assign("gx",
                                 fsub(At("rho", add(v("i"), c(1)), v("j")),
                                      At("rho", sub(v("i"), c(1)),
                                         v("j")))),
                          assign("gy",
                                 fsub(At("rho", v("i"), add(v("j"), c(1))),
                                      At("rho", v("i"),
                                         sub(v("j"), c(1))))),
                          store(v("fx"), add(mul(v("i"), c(NY)), v("j")),
                                fmul(v("gx"),
                                     fadd(v("c0"),
                                          At("e", v("i"), v("j"))))),
                          store(v("fy"), add(mul(v("i"), c(NY)), v("j")),
                                fmul(v("gy"),
                                     fadd(v("c0"), cf(0.5)))),
                      }))),
              // Cell update from flux divergence.
              forLoop(
                  "i", c(1), lt(v("i"), c(NX - 1)), 1,
                  forLoop(
                      "j", c(1), lt(v("j"), c(NY - 1)), 1,
                      seq({
                          assign("div",
                                 fadd(fsub(At("fx", add(v("i"), c(1)),
                                              v("j")),
                                           At("fx", sub(v("i"), c(1)),
                                              v("j"))),
                                      fsub(At("fy", v("i"),
                                              add(v("j"), c(1))),
                                           At("fy", v("i"),
                                              sub(v("j"), c(1)))))),
                          store(v("rhoN"), add(mul(v("i"), c(NY)), v("j")),
                                fsub(At("rho", v("i"), v("j")),
                                     fmul(cf(0.01), v("div")))),
                          store(v("eN"), add(mul(v("i"), c(NY)), v("j")),
                                fadd(At("e", v("i"), v("j")),
                                     fmul(cf(0.005), v("div")))),
                      }))),
              // Copy back interior; boundaries stay fixed.
              forLoop("i", c(1), lt(v("i"), c(NX - 1)), 1,
                      forLoop("j", c(1), lt(v("j"), c(NY - 1)), 1,
                              seq({
                                  store(v("rho"),
                                        add(mul(v("i"), c(NY)), v("j")),
                                        At("rhoN", v("i"), v("j"))),
                                  store(v("e"),
                                        add(mul(v("i"), c(NY)), v("j")),
                                        At("eN", v("i"), v("j"))),
                              }))),
          })),

      // Fixed-point checksum over the fields.
      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(NX * NY)), 1,
              assign("sum", add(v("sum"),
                                add(fix16(ld(v("rho"), v("i"))),
                                    fix16(ld(v("e"), v("i"))))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
