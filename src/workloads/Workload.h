//===- workloads/Workload.h - Benchmark registry ---------------------------==//
//
// The 26 benchmarks of Table 6, re-implemented in the frontend DSL. Each
// entry carries the paper's metadata columns: category, data set, whether a
// traditional parallelizing compiler could analyze it (column a), and
// whether STL selection is input-size sensitive (column b).
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_WORKLOADS_WORKLOAD_H
#define JRPM_WORKLOADS_WORKLOAD_H

#include "ir/IR.h"

#include <string>
#include <vector>

namespace jrpm {
namespace workloads {

struct Workload {
  std::string Name;
  std::string Category; ///< "Integer", "Floating point", "Multimedia"
  std::string Description;
  std::string DataSet;          ///< e.g. "51x51"; empty when not applicable
  bool Analyzable = false;      ///< Table 6 column (a)
  bool DataSetSensitive = false; ///< Table 6 column (b)
  ir::Module (*Build)() = nullptr;
};

/// All workloads in Table 6 order.
const std::vector<Workload> &allWorkloads();

/// Finds a workload by name; returns nullptr when absent.
const Workload *findWorkload(const std::string &Name);

} // namespace workloads
} // namespace jrpm

#endif // JRPM_WORKLOADS_WORKLOAD_H
