//===- workloads/Builders.h - Per-benchmark module builders ----------------==//

#ifndef JRPM_WORKLOADS_BUILDERS_H
#define JRPM_WORKLOADS_BUILDERS_H

#include "ir/IR.h"

namespace jrpm {
namespace workloads {

// Integer.
ir::Module buildAssignment();
/// Assignment with a custom matrix size (Section 6.1's data-set
/// sensitivity experiments; the registry default is the paper's 51x51).
ir::Module buildAssignmentSized(std::int64_t N);
ir::Module buildBitOps();
ir::Module buildCompress();
ir::Module buildDb();
ir::Module buildDeltaBlue();
ir::Module buildEmFloatPnt();
ir::Module buildHuffman();
ir::Module buildIdea();
ir::Module buildJess();
ir::Module buildJLex();
ir::Module buildMipsSimulator();
ir::Module buildMonteCarlo();
ir::Module buildNumHeapSort();
ir::Module buildRaytrace();

// Floating point.
ir::Module buildEuler();
ir::Module buildFft();
ir::Module buildFourierTest();
ir::Module buildLuFactor();
ir::Module buildMoldyn();
ir::Module buildNeuralNet();
ir::Module buildShallow();

// Multimedia.
ir::Module buildDecJpeg();
ir::Module buildEncJpeg();
ir::Module buildH263Dec();
ir::Module buildMpegVideo();
ir::Module buildMp3();

} // namespace workloads
} // namespace jrpm

#endif // JRPM_WORKLOADS_BUILDERS_H
