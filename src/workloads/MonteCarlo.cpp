//===- workloads/MonteCarlo.cpp - Monte Carlo simulation (Java Grande) -----==//
//
// Two kernels: a dartboard pi estimate and a random-walk path pricer. Each
// sample derives its own seed by hashing the sample index (the leapfrog
// trick the Jrpm compiler would apply to a carried PRNG), so iterations
// are independent and the sample loops are clean fine-grained STLs. All
// accumulators are integer (fixed point), keeping speculative and
// sequential results bit-identical.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildMonteCarlo() {
  constexpr std::int64_t Samples = 2400;
  constexpr std::int64_t Paths = 320;
  constexpr std::int64_t PathLen = 24;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      // Dartboard: count points inside the unit circle (scaled to 2^20).
      assign("inside", c(0)),
      forLoop(
          "i", c(0), lt(v("i"), c(Samples)), 1,
          seq({
              assign("x", hashMod(mul(v("i"), c(2)), 1 << 20)),
              assign("y", hashMod(add(mul(v("i"), c(2)), c(1)), 1 << 20)),
              iff(le(add(mul(v("x"), v("x")), mul(v("y"), v("y"))),
                     c((1LL << 40))),
                  assign("inside", add(v("inside"), c(1)))),
          })),

      // Random walks: geometric-ish walk in 16.16 fixed point.
      assign("payoff", c(0)),
      forLoop(
          "p", c(0), lt(v("p"), c(Paths)), 1,
          seq({
              assign("price", c(65536)), // 1.0 in 16.16
              assign("seed", hashEx(v("p"))),
              forLoop(
                  "t", c(0), lt(v("t"), c(PathLen)), 1,
                  seq({
                      assign("seed",
                             band(mul(add(v("seed"), c(12345)),
                                      c(1103515245)),
                                  c(0x7FFFFFFF))),
                      // Step factor in [0.97, 1.03) as 16.16.
                      assign("f", add(c(63570),
                                      srem(v("seed"), c(3932)))),
                      assign("price",
                             shr(mul(v("price"), v("f")), c(16))),
                  })),
              // Accumulate max(price - 1, 0).
              iff(gt(v("price"), c(65536)),
                  assign("payoff",
                         add(v("payoff"), sub(v("price"), c(65536))))),
          })),

      ret(add(mul(v("inside"), c(1000000)), v("payoff"))),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
