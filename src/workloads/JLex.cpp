//===- workloads/JLex.cpp - Lexical analyzer generator (jLex) --------------==//
//
// Both halves of a lexer generator: the *generation* phase performs an
// NFA-to-DFA subset construction (NFA state sets as bitmasks, a worklist
// of discovered DFA states, linear-probed dedup — the irregular
// pointer-and-worklist code that defeats static parallelization), and the
// *generated scanner* phase tokenizes a multi-line input with the
// resulting DFA table. Lines are independent, so the per-line loop is the
// natural medium-grained STL the paper reports (~2700-cycle threads);
// the subset-construction worklist is carried and mostly serial.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildJLex() {
  constexpr std::int64_t NfaStates = 24;
  constexpr std::int64_t Classes = 8;
  constexpr std::int64_t MaxDfa = 64;
  constexpr std::int64_t Lines = 80;
  constexpr std::int64_t LineLen = 56;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      // --- The NFA: nfa[s][c] = bitmask of successor states; sparse and
      // hash-derived but fixed. State 0 is the start state; states with
      // s % 5 == 1 accept.
      assign("nfa", allocWords(c(NfaStates * Classes))),
      forLoop(
          "s", c(0), lt(v("s"), c(NfaStates)), 1,
          forLoop(
              "cl", c(0), lt(v("cl"), c(Classes)), 1,
              seq({
                  assign("m", c(0)),
                  // One or two successor states per (state, class).
                  assign("t1", hashMod(add(mul(v("s"), c(Classes)),
                                           v("cl")),
                                       NfaStates)),
                  assign("m", bor(v("m"), shl(c(1), v("t1")))),
                  iff(eq(srem(add(v("s"), v("cl")), c(3)), c(0)),
                      seq({
                          assign("t2",
                                 hashMod(add(mul(v("s"), c(131)),
                                             v("cl")),
                                         NfaStates)),
                          assign("m", bor(v("m"), shl(c(1), v("t2")))),
                      })),
                  store(v("nfa"), add(mul(v("s"), c(Classes)), v("cl")),
                        v("m")),
              }))),
      assign("acceptMask", c(0)),
      forLoop("s", c(1), lt(v("s"), c(NfaStates)), 5,
              assign("acceptMask", bor(v("acceptMask"),
                                       shl(c(1), v("s"))))),

      // --- Subset construction: dfaSet[d] is the NFA-state bitmask of DFA
      // state d; dfaTrans[d][c] the transition table; a worklist walks the
      // discovered states.
      assign("dfaSet", allocWords(c(MaxDfa))),
      assign("dfaTrans", allocWords(c(MaxDfa * Classes))),
      assign("dfaAcc", allocWords(c(MaxDfa))),
      assign("nDfa", c(1)),
      store(v("dfaSet"), c(0), c(1)), // {NFA state 0}
      assign("work", c(0)),
      whileLoop(
          lt(v("work"), v("nDfa")),
          seq({
              assign("set", ld(v("dfaSet"), v("work"))),
              store(v("dfaAcc"), v("work"),
                    ne(band(v("set"), v("acceptMask")), c(0))),
              forLoop(
                  "cl", c(0), lt(v("cl"), c(Classes)), 1,
                  seq({
                      // Union the successors of every NFA state in `set`.
                      assign("next", c(0)),
                      forLoop(
                          "s", c(0), lt(v("s"), c(NfaStates)), 1,
                          iff(ne(band(shr(v("set"), v("s")), c(1)), c(0)),
                              assign("next",
                                     bor(v("next"),
                                         ld(v("nfa"),
                                            add(mul(v("s"), c(Classes)),
                                                v("cl"))))))),
                      // Dedup against the discovered DFA states.
                      assign("found", c(-1)),
                      forLoop("d", c(0), lt(v("d"), v("nDfa")), 1,
                              iff(eq(ld(v("dfaSet"), v("d")), v("next")),
                                  seq({assign("found", v("d")), brk()}))),
                      iff(band(eq(v("found"), c(-1)),
                               lt(v("nDfa"), c(MaxDfa))),
                          seq({
                              store(v("dfaSet"), v("nDfa"), v("next")),
                              assign("found", v("nDfa")),
                              assign("nDfa", add(v("nDfa"), c(1))),
                          })),
                      // Table overflow: collapse to the start state.
                      iff(eq(v("found"), c(-1)), assign("found", c(0))),
                      store(v("dfaTrans"),
                            add(mul(v("work"), c(Classes)), v("cl")),
                            v("found")),
                  })),
              assign("work", add(v("work"), c(1))),
          })),

      // --- The generated scanner: tokenize each line independently.
      assign("text", allocWords(c(Lines * LineLen))),
      forLoop("i", c(0), lt(v("i"), c(Lines * LineLen)), 1,
              store(v("text"), v("i"), hashMod(v("i"), Classes))),
      assign("tokens", allocWords(c(Lines))),
      forLoop(
          "ln", c(0), lt(v("ln"), c(Lines)), 1,
          seq({
              assign("state", c(0)),
              assign("count", c(0)),
              forLoop(
                  "p", c(0), lt(v("p"), c(LineLen)), 1,
                  seq({
                      assign("cls",
                             ld(v("text"),
                                add(mul(v("ln"), c(LineLen)), v("p")))),
                      assign("state",
                             ld(v("dfaTrans"),
                                add(mul(v("state"), c(Classes)),
                                    v("cls")))),
                      iff(ne(ld(v("dfaAcc"), v("state")), c(0)),
                          seq({
                              assign("count", add(v("count"), c(1))),
                              assign("state", c(0)),
                          })),
                  })),
              store(v("tokens"), v("ln"), v("count")),
          })),

      // Checksum over the DFA shape and the token counts.
      assign("sum", mul(v("nDfa"), c(1000000))),
      forLoop("d", c(0), lt(v("d"), v("nDfa")), 1,
              assign("sum", add(v("sum"),
                                band(ld(v("dfaSet"), v("d")),
                                     c(0xFFFFFF))))),
      forLoop("ln", c(0), lt(v("ln"), c(Lines)), 1,
              assign("sum", add(v("sum"),
                                mul(ld(v("tokens"), v("ln")),
                                    add(v("ln"), c(1)))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
