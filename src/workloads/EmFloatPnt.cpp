//===- workloads/EmFloatPnt.cpp - Software floating point (jBYTEmark) ------==//
//
// Emulates floating point in integer arithmetic: numbers are (sign,
// exponent, 32-bit mantissa) triples. The benchmark loop multiplies and
// adds arrays of emulated numbers; normalization shifts give each
// iteration data-dependent inner-loop work, producing the very coarse
// threads the paper reports (EmFloatPnt thread size ~20000 cycles comes
// from whole-array passes; our threads are one emulated op chain each).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildEmFloatPnt() {
  constexpr std::int64_t N = 160;
  constexpr std::int64_t Passes = 3;

  // Emulated numbers stored as three parallel arrays; all arithmetic on
  // 32-bit mantissas kept in the high half for normalization.
  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("sgA", allocWords(c(N))), assign("exA", allocWords(c(N))),
      assign("mnA", allocWords(c(N))), assign("sgB", allocWords(c(N))),
      assign("exB", allocWords(c(N))), assign("mnB", allocWords(c(N))),
      assign("sgC", allocWords(c(N))), assign("exC", allocWords(c(N))),
      assign("mnC", allocWords(c(N))),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              seq({
                  store(v("sgA"), v("i"), srem(v("i"), c(2))),
                  store(v("exA"), v("i"), sub(hashMod(v("i"), 40), c(20))),
                  store(v("mnA"), v("i"),
                        bor(hashMod(mul(v("i"), c(7)), 0x7FFFFFFF),
                            c(0x40000000))),
                  store(v("sgB"), v("i"), srem(add(v("i"), c(1)), c(2))),
                  store(v("exB"), v("i"),
                        sub(hashMod(add(v("i"), c(99)), 40), c(20))),
                  store(v("mnB"), v("i"),
                        bor(hashMod(mul(v("i"), c(13)), 0x7FFFFFFF),
                            c(0x40000000))),
              })),

      forLoop(
          "p", c(0), lt(v("p"), c(Passes)), 1,
          forLoop(
              "i", c(0), lt(v("i"), c(N)), 1,
              seq({
                  // Emulated multiply: C = A * B.
                  assign("ma", ld(v("mnA"), v("i"))),
                  assign("mb", ld(v("mnB"), v("i"))),
                  assign("prod", shr(mul(v("ma"), v("mb")), c(31))),
                  assign("ex", add(ld(v("exA"), v("i")),
                                   ld(v("exB"), v("i")))),
                  assign("sg", bxor(ld(v("sgA"), v("i")),
                                    ld(v("sgB"), v("i")))),
                  // Normalize: shift the mantissa into [2^30, 2^31).
                  whileLoop(ge(v("prod"), shl(c(1), c(31))),
                            seq({
                                assign("prod", shr(v("prod"), c(1))),
                                assign("ex", add(v("ex"), c(1))),
                            })),
                  whileLoop(lt(v("prod"), shl(c(1), c(30))),
                            seq({
                                assign("prod", shl(v("prod"), c(1))),
                                assign("ex", sub(v("ex"), c(1))),
                            })),
                  // Emulated add with exponent alignment: C = C*0 + prod
                  // on the first pass, C += prod afterwards.
                  iffElse(
                      eq(v("p"), c(0)),
                      seq({
                          store(v("sgC"), v("i"), v("sg")),
                          store(v("exC"), v("i"), v("ex")),
                          store(v("mnC"), v("i"), v("prod")),
                      }),
                      seq({
                          assign("exc", ld(v("exC"), v("i"))),
                          assign("mc", ld(v("mnC"), v("i"))),
                          assign("diff", sub(v("ex"), v("exc"))),
                          iff(gt(v("diff"), c(0)),
                              whileLoop(gt(v("diff"), c(0)),
                                        seq({
                                            assign("mc", shr(v("mc"), c(1))),
                                            assign("diff",
                                                   sub(v("diff"), c(1))),
                                        }))),
                          iff(lt(v("diff"), c(0)),
                              whileLoop(lt(v("diff"), c(0)),
                                        seq({
                                            assign("prod",
                                                   shr(v("prod"), c(1))),
                                            assign("diff",
                                                   add(v("diff"), c(1))),
                                        }))),
                          assign("msum", add(v("mc"), v("prod"))),
                          assign("exn",
                                 gt(v("ex"), v("exc"))),
                          assign("exo", add(mul(v("exn"), v("ex")),
                                            mul(sub(c(1), v("exn")),
                                                v("exc")))),
                          whileLoop(ge(v("msum"), shl(c(1), c(31))),
                                    seq({
                                        assign("msum",
                                               shr(v("msum"), c(1))),
                                        assign("exo", add(v("exo"), c(1))),
                                    })),
                          store(v("exC"), v("i"), v("exo")),
                          store(v("mnC"), v("i"), v("msum")),
                      })),
              }))),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              assign("sum",
                     add(v("sum"),
                         add(ld(v("mnC"), v("i")),
                             mul(ld(v("exC"), v("i")), c(1000)))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
