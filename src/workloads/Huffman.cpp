//===- workloads/Huffman.cpp - Huffman coding (paper Figure 3) -------------==//
//
// The paper's running example: a Huffman tree is built over a symbol
// distribution, a message is encoded into a bit stream, and the stream is
// decoded by the exact loop of Figure 3 — an outer do/while whose body
// walks the tree with an inner while. `in_p` advances inside the inner
// loop (loop-carried for the outer STL) and `out_p` once per outer
// iteration; the outer loop is the profitable STL.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildHuffman() {
  constexpr std::int64_t Symbols = 16;
  constexpr std::int64_t MsgLen = 2600;
  constexpr std::int64_t MaxNodes = 2 * Symbols;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      // Message with a skewed symbol distribution.
      assign("msg", allocWords(c(MsgLen))),
      forLoop("i", c(0), lt(v("i"), c(MsgLen)), 1,
              seq({
                  assign("h", hashMod(v("i"), 100)),
                  assign("s", srem(sdiv(mul(v("h"), v("h")), c(700)),
                                   c(Symbols))),
                  store(v("msg"), v("i"), v("s")),
              })),

      // Symbol frequencies.
      assign("freq", allocWords(c(Symbols))),
      forLoop("i", c(0), lt(v("i"), c(MsgLen)), 1,
              seq({
                  assign("s", ld(v("msg"), v("i"))),
                  store(v("freq"), v("s"),
                        add(ld(v("freq"), v("s")), c(1))),
              })),

      // Huffman tree arrays: weight, left, right, parent, used.
      assign("wt", allocWords(c(MaxNodes))),
      assign("lc", allocWords(c(MaxNodes))),
      assign("rc", allocWords(c(MaxNodes))),
      assign("pa", allocWords(c(MaxNodes))),
      assign("used", allocWords(c(MaxNodes))),
      forLoop("i", c(0), lt(v("i"), c(MaxNodes)), 1,
              seq({
                  store(v("wt"), v("i"), c(0)),
                  store(v("lc"), v("i"), c(-1)),
                  store(v("rc"), v("i"), c(-1)),
                  store(v("pa"), v("i"), c(-1)),
                  store(v("used"), v("i"), c(1)),
              })),
      forLoop("i", c(0), lt(v("i"), c(Symbols)), 1,
              seq({
                  store(v("wt"), v("i"), add(ld(v("freq"), v("i")), c(1))),
                  store(v("used"), v("i"), c(0)),
              })),

      // Greedy merges: repeatedly combine the two lightest unused nodes.
      assign("next", c(Symbols)),
      forLoop(
          "m", c(0), lt(v("m"), c(Symbols - 1)), 1,
          seq({
              assign("a", c(-1)),
              assign("b", c(-1)),
              forLoop(
                  "i", c(0), lt(v("i"), v("next")), 1,
                  iff(eq(ld(v("used"), v("i")), c(0)),
                      iffElse(
                          bor(eq(v("a"), c(-1)),
                              lt(ld(v("wt"), v("i")), ld(v("wt"), v("a")))),
                          seq({assign("b", v("a")), assign("a", v("i"))}),
                          iff(bor(eq(v("b"), c(-1)),
                                  lt(ld(v("wt"), v("i")),
                                     ld(v("wt"), v("b")))),
                              assign("b", v("i")))))),
              store(v("lc"), v("next"), v("a")),
              store(v("rc"), v("next"), v("b")),
              store(v("wt"), v("next"),
                    add(ld(v("wt"), v("a")), ld(v("wt"), v("b")))),
              store(v("pa"), v("a"), v("next")),
              store(v("pa"), v("b"), v("next")),
              store(v("used"), v("a"), c(1)),
              store(v("used"), v("b"), c(1)),
              store(v("used"), v("next"), c(0)),
              assign("next", add(v("next"), c(1))),
          })),
      assign("root", sub(v("next"), c(1))),

      // Encode the message: walk leaf-to-root collecting bits, then emit
      // them root-to-leaf (one word per bit).
      assign("in", allocWords(c(MsgLen * 16))),
      assign("tmp", allocWords(c(64))),
      assign("in_n", c(0)),
      forLoop(
          "i", c(0), lt(v("i"), c(MsgLen)), 1,
          seq({
              assign("node", ld(v("msg"), v("i"))),
              assign("depth", c(0)),
              whileLoop(
                  ne(ld(v("pa"), v("node")), c(-1)),
                  seq({
                      assign("par", ld(v("pa"), v("node"))),
                      store(v("tmp"), v("depth"),
                            eq(ld(v("rc"), v("par")), v("node"))),
                      assign("depth", add(v("depth"), c(1))),
                      assign("node", v("par")),
                  })),
              assign("d", sub(v("depth"), c(1))),
              whileLoop(ge(v("d"), c(0)),
                        seq({
                            store(v("in"), v("in_n"),
                                  ld(v("tmp"), v("d"))),
                            assign("in_n", add(v("in_n"), c(1))),
                            assign("d", sub(v("d"), c(1))),
                        })),
          })),

      // Decode (Figure 3): the outer do/while is the profitable STL. After
      // the tree walk resolves the symbol (and the loop-carried in_p is
      // final), each iteration post-processes its output — the real
      // decoder's byte writing and bookkeeping — which extends the thread
      // beyond the dependency arc, exactly why the outer loop speeds up.
      assign("out", allocWords(c(MsgLen))),
      assign("deriv", allocWords(c(MsgLen))),
      assign("in_p", c(0)),
      assign("out_p", c(0)),
      doWhile(lt(v("in_p"), v("in_n")),
              seq({
                  assign("n", v("root")),
                  whileLoop(ne(ld(v("lc"), v("n")), c(-1)),
                            seq({
                                iffElse(eq(ld(v("in"), v("in_p")), c(0)),
                                        assign("n", ld(v("lc"), v("n"))),
                                        assign("n", ld(v("rc"), v("n")))),
                                assign("in_p", add(v("in_p"), c(1))),
                            })),
                  store(v("out"), v("out_p"), v("n")),
                  // Output post-processing: a mixed/derived value per
                  // decoded symbol (independent across iterations).
                  assign("m", add(mul(v("n"), c(0x45D9F3B)), v("out_p"))),
                  assign("m", bxor(v("m"), shr(v("m"), c(7)))),
                  assign("m", band(mul(v("m"), c(0x45D9F3B)),
                                   c(0x7FFFFFFF))),
                  assign("m", bxor(v("m"), shr(v("m"), c(9)))),
                  assign("m", add(mul(v("m"), c(13)),
                                  srem(v("m"), c(255)))),
                  store(v("deriv"), v("out_p"), v("m")),
                  assign("out_p", add(v("out_p"), c(1))),
              })),

      // Checksum: decoded stream must equal the message.
      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(MsgLen)), 1,
              seq({
                  assign("ok", eq(ld(v("out"), v("i")), ld(v("msg"), v("i")))),
                  assign("sum", add(v("sum"),
                                    add(v("ok"), mul(ld(v("out"), v("i")),
                                                     add(v("i"), c(1)))))),
              })),
      forLoop("i", c(0), lt(v("i"), c(MsgLen)), 7,
              assign("sum", add(v("sum"), ld(v("deriv"), v("i"))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
