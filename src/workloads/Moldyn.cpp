//===- workloads/Moldyn.cpp - Molecular dynamics (Java Grande moldyn) ------==//
//
// N-body Lennard-Jones-style dynamics: the force phase accumulates pair
// forces into per-particle arrays (speculation handles the scatter), the
// integration phase is embarrassingly parallel. The pair loop's inner j
// iterations are the paper's very fine moldyn threads (96 cycles). The
// potential-energy accumulator is kept in 16.16 fixed point so reduction
// privatization stays bit-exact.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildMoldyn() {
  constexpr std::int64_t N = 48;
  constexpr std::int64_t Steps = 4;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("x", allocWords(c(N))), assign("y", allocWords(c(N))),
      assign("z", allocWords(c(N))), assign("vx", allocWords(c(N))),
      assign("vy", allocWords(c(N))), assign("vz", allocWords(c(N))),
      assign("fxA", allocWords(c(N))), assign("fyA", allocWords(c(N))),
      assign("fzA", allocWords(c(N))),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              seq({
                  store(v("x"), v("i"),
                        fmul(itof(hashMod(v("i"), 1000)), cf(0.01))),
                  store(v("y"), v("i"),
                        fmul(itof(hashMod(mul(v("i"), c(3)), 1000)),
                             cf(0.01))),
                  store(v("z"), v("i"),
                        fmul(itof(hashMod(add(v("i"), c(17)), 1000)),
                             cf(0.01))),
                  store(v("vx"), v("i"), cf(0.0)),
                  store(v("vy"), v("i"), cf(0.0)),
                  store(v("vz"), v("i"), cf(0.0)),
              })),

      assign("epot", c(0)), // 16.16 fixed point
      forLoop(
          "step", c(0), lt(v("step"), c(Steps)), 1,
          seq({
              forLoop("i", c(0), lt(v("i"), c(N)), 1,
                      seq({
                          store(v("fxA"), v("i"), cf(0.0)),
                          store(v("fyA"), v("i"), cf(0.0)),
                          store(v("fzA"), v("i"), cf(0.0)),
                      })),
              // Pair forces.
              forLoop(
                  "i", c(0), lt(v("i"), c(N - 1)), 1,
                  forLoop(
                      "j", add(v("i"), c(1)), lt(v("j"), c(N)), 1,
                      seq({
                          assign("dx", fsub(ld(v("x"), v("i")),
                                            ld(v("x"), v("j")))),
                          assign("dy", fsub(ld(v("y"), v("i")),
                                            ld(v("y"), v("j")))),
                          assign("dz", fsub(ld(v("z"), v("i")),
                                            ld(v("z"), v("j")))),
                          assign("r2", fadd(fadd(fmul(v("dx"), v("dx")),
                                                 fmul(v("dy"), v("dy"))),
                                            fadd(fmul(v("dz"), v("dz")),
                                                 cf(0.01)))),
                          iff(flt(v("r2"), cf(16.0)),
                              seq({
                                  assign("inv", fdiv(cf(1.0), v("r2"))),
                                  assign("fmag",
                                         fmul(v("inv"),
                                              fsub(v("inv"), cf(0.05)))),
                                  assign("fx", fmul(v("fmag"), v("dx"))),
                                  assign("fy", fmul(v("fmag"), v("dy"))),
                                  assign("fz", fmul(v("fmag"), v("dz"))),
                                  store(v("fxA"), v("i"),
                                        fadd(ld(v("fxA"), v("i")),
                                             v("fx"))),
                                  store(v("fyA"), v("i"),
                                        fadd(ld(v("fyA"), v("i")),
                                             v("fy"))),
                                  store(v("fzA"), v("i"),
                                        fadd(ld(v("fzA"), v("i")),
                                             v("fz"))),
                                  store(v("fxA"), v("j"),
                                        fsub(ld(v("fxA"), v("j")),
                                             v("fx"))),
                                  store(v("fyA"), v("j"),
                                        fsub(ld(v("fyA"), v("j")),
                                             v("fy"))),
                                  store(v("fzA"), v("j"),
                                        fsub(ld(v("fzA"), v("j")),
                                             v("fz"))),
                                  assign("epot",
                                         add(v("epot"),
                                             fix16(v("inv")))),
                              })),
                      }))),
              // Integrate.
              forLoop(
                  "i", c(0), lt(v("i"), c(N)), 1,
                  seq({
                      store(v("vx"), v("i"),
                            fadd(ld(v("vx"), v("i")),
                                 fmul(ld(v("fxA"), v("i")), cf(0.001)))),
                      store(v("vy"), v("i"),
                            fadd(ld(v("vy"), v("i")),
                                 fmul(ld(v("fyA"), v("i")), cf(0.001)))),
                      store(v("vz"), v("i"),
                            fadd(ld(v("vz"), v("i")),
                                 fmul(ld(v("fzA"), v("i")), cf(0.001)))),
                      store(v("x"), v("i"),
                            fadd(ld(v("x"), v("i")),
                                 fmul(ld(v("vx"), v("i")), cf(0.05)))),
                      store(v("y"), v("i"),
                            fadd(ld(v("y"), v("i")),
                                 fmul(ld(v("vy"), v("i")), cf(0.05)))),
                      store(v("z"), v("i"),
                            fadd(ld(v("z"), v("i")),
                                 fmul(ld(v("vz"), v("i")), cf(0.05)))),
                  })),
          })),

      assign("sum", v("epot")),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              assign("sum",
                     add(v("sum"),
                         add(fix16(ld(v("x"), v("i"))),
                             add(fix16(ld(v("y"), v("i"))),
                                 fix16(ld(v("z"), v("i")))))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
