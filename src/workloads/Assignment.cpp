//===- workloads/Assignment.cpp - Resource allocation (jBYTEmark) ----------==//
//
// Hungarian-style reduction over a 51x51 cost matrix followed by greedy
// assignment, run for two rounds. Parallelism exists at several nest levels
// (per-row reductions, per-column reductions), which is why the paper marks
// this benchmark data-set sensitive: bigger matrices favour speculating
// lower in the nest.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildAssignmentSized(std::int64_t N) {

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("cost", allocWords(c(N * N))),
      assign("rowMin", allocWords(c(N))),
      assign("colMin", allocWords(c(N))),
      assign("rowOf", allocWords(c(N))),
      assign("usedCol", allocWords(c(N))),
      forLoop("i", c(0), lt(v("i"), c(N * N)), 1,
              store(v("cost"), v("i"), hashMod(v("i"), 1000))),

      assign("total", c(0)),
      forLoop(
          "round", c(0), lt(v("round"), c(2)), 1,
          seq({
              // Row reduction: subtract each row's minimum.
              forLoop(
                  "i", c(0), lt(v("i"), c(N)), 1,
                  seq({
                      assign("m", c(1 << 30)),
                      forLoop("j", c(0), lt(v("j"), c(N)), 1,
                              seq({
                                  assign("x", ld(v("cost"),
                                                 add(mul(v("i"), c(N)),
                                                     v("j")))),
                                  iff(lt(v("x"), v("m")),
                                      assign("m", v("x"))),
                              })),
                      store(v("rowMin"), v("i"), v("m")),
                  })),
              forLoop(
                  "i", c(0), lt(v("i"), c(N)), 1,
                  forLoop("j", c(0), lt(v("j"), c(N)), 1,
                          store(v("cost"), add(mul(v("i"), c(N)), v("j")),
                                sub(ld(v("cost"),
                                       add(mul(v("i"), c(N)), v("j"))),
                                    ld(v("rowMin"), v("i")))))),
              // Column reduction.
              forLoop(
                  "j", c(0), lt(v("j"), c(N)), 1,
                  seq({
                      assign("m", c(1 << 30)),
                      forLoop("i", c(0), lt(v("i"), c(N)), 1,
                              seq({
                                  assign("x", ld(v("cost"),
                                                 add(mul(v("i"), c(N)),
                                                     v("j")))),
                                  iff(lt(v("x"), v("m")),
                                      assign("m", v("x"))),
                              })),
                      store(v("colMin"), v("j"), v("m")),
                  })),
              forLoop(
                  "i", c(0), lt(v("i"), c(N)), 1,
                  forLoop("j", c(0), lt(v("j"), c(N)), 1,
                          store(v("cost"), add(mul(v("i"), c(N)), v("j")),
                                sub(ld(v("cost"),
                                       add(mul(v("i"), c(N)), v("j"))),
                                    ld(v("colMin"), v("j")))))),
              // Greedy assignment: cheapest free column per row.
              forLoop("j", c(0), lt(v("j"), c(N)), 1,
                      store(v("usedCol"), v("j"), c(0))),
              forLoop(
                  "i", c(0), lt(v("i"), c(N)), 1,
                  seq({
                      assign("best", c(-1)),
                      assign("bestCost", c(1 << 30)),
                      forLoop(
                          "j", c(0), lt(v("j"), c(N)), 1,
                          iff(eq(ld(v("usedCol"), v("j")), c(0)),
                              seq({
                                  assign("x", ld(v("cost"),
                                                 add(mul(v("i"), c(N)),
                                                     v("j")))),
                                  iff(lt(v("x"), v("bestCost")),
                                      seq({
                                          assign("bestCost", v("x")),
                                          assign("best", v("j")),
                                      })),
                              }))),
                      store(v("usedCol"), v("best"), c(1)),
                      store(v("rowOf"), v("i"), v("best")),
                      assign("total", add(v("total"), v("bestCost"))),
                  })),
              // Perturb the matrix for the next round.
              forLoop("i", c(0), lt(v("i"), c(N * N)), 1,
                      store(v("cost"), v("i"),
                            add(ld(v("cost"), v("i")),
                                hashMod(add(v("i"), v("round")), 37)))),
          })),

      assign("sum", v("total")),
      forLoop("i", c(0), lt(v("i"), c(N)), 1,
              assign("sum", add(v("sum"),
                                mul(ld(v("rowOf"), v("i")),
                                    add(v("i"), c(3)))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}

ir::Module workloads::buildAssignment() { return buildAssignmentSized(51); }
