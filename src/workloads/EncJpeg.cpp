//===- workloads/EncJpeg.cpp - JPEG-style image encoder (mediabench) -------==//
//
// The encode direction: per 8x8 block, forward integer DCT approximation,
// quantization, zig-zag scan, and run-length counting of zero
// coefficients. The run-length emit counter is loop carried; everything
// else is block parallel.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildEncJpeg() {
  constexpr std::int64_t BW = 9, BH = 9;
  constexpr std::int64_t Blocks = BW * BH;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("img", allocWords(c(Blocks * 64))),
      assign("quant", allocWords(c(64))),
      assign("coef", allocWords(c(Blocks * 64))),
      assign("zig", allocWords(c(64))),
      assign("rle", allocWords(c(Blocks * 130))),
      assign("tmp", allocWords(c(64))),
      forLoop("i", c(0), lt(v("i"), c(Blocks * 64)), 1,
              store(v("img"), v("i"), hashMod(v("i"), 256))),
      forLoop("i", c(0), lt(v("i"), c(64)), 1,
              store(v("quant"), v("i"),
                    add(c(2), srem(mul(v("i"), c(3)), c(30))))),
      // Diagonal zig-zag order table, computed by scanning diagonals.
      assign("zn", c(0)),
      forLoop(
          "d", c(0), lt(v("d"), c(15)), 1,
          forLoop(
              "r", c(0), lt(v("r"), c(8)), 1,
              seq({
                  assign("cc", sub(v("d"), v("r"))),
                  iff(band(ge(v("cc"), c(0)), lt(v("cc"), c(8))),
                      seq({
                          store(v("zig"), v("zn"),
                                add(mul(v("r"), c(8)), v("cc"))),
                          assign("zn", add(v("zn"), c(1))),
                      })),
              }))),

      assign("rn", c(0)),
      forLoop(
          "b", c(0), lt(v("b"), c(Blocks)), 1,
          seq({
              assign("base", mul(v("b"), c(64))),
              // Forward butterflies: rows then columns.
              forLoop("i", c(0), lt(v("i"), c(64)), 1,
                      store(v("tmp"), v("i"),
                            sub(ld(v("img"), add(v("base"), v("i"))),
                                c(128)))),
              forLoop(
                  "r", c(0), lt(v("r"), c(8)), 1,
                  forLoop(
                      "k", c(0), lt(v("k"), c(4)), 1,
                      seq({
                          assign("p", add(mul(v("r"), c(8)), v("k"))),
                          assign("q", add(mul(v("r"), c(8)),
                                          sub(c(7), v("k")))),
                          assign("s", add(ld(v("tmp"), v("p")),
                                          ld(v("tmp"), v("q")))),
                          assign("d2", sub(ld(v("tmp"), v("p")),
                                           ld(v("tmp"), v("q")))),
                          store(v("tmp"), v("p"), v("s")),
                          store(v("tmp"), v("q"), v("d2")),
                      }))),
              forLoop(
                  "cc", c(0), lt(v("cc"), c(8)), 1,
                  forLoop(
                      "k", c(0), lt(v("k"), c(4)), 1,
                      seq({
                          assign("p", add(mul(v("k"), c(8)), v("cc"))),
                          assign("q", add(mul(sub(c(7), v("k")), c(8)),
                                          v("cc"))),
                          assign("s", add(ld(v("tmp"), v("p")),
                                          ld(v("tmp"), v("q")))),
                          assign("d2", sub(ld(v("tmp"), v("p")),
                                           ld(v("tmp"), v("q")))),
                          store(v("tmp"), v("p"), shr(v("s"), c(1))),
                          store(v("tmp"), v("q"), shr(v("d2"), c(1))),
                      }))),
              // Quantize.
              forLoop("i", c(0), lt(v("i"), c(64)), 1,
                      store(v("coef"), add(v("base"), v("i")),
                            sdiv(ld(v("tmp"), v("i")),
                                 ld(v("quant"), v("i"))))),
              // Zig-zag run-length encode into the shared stream.
              assign("run", c(0)),
              forLoop(
                  "i", c(0), lt(v("i"), c(64)), 1,
                  seq({
                      assign("cv",
                             ld(v("coef"),
                                add(v("base"), ld(v("zig"), v("i"))))),
                      iffElse(eq(v("cv"), c(0)),
                              assign("run", add(v("run"), c(1))),
                              seq({
                                  store(v("rle"), v("rn"), v("run")),
                                  store(v("rle"), add(v("rn"), c(1)),
                                        v("cv")),
                                  assign("rn", add(v("rn"), c(2))),
                                  assign("run", c(0)),
                              })),
                  })),
          })),

      assign("sum", v("rn")),
      forLoop("i", c(0), lt(v("i"), v("rn")), 1,
              assign("sum", add(mul(v("sum"), c(7)),
                                band(ld(v("rle"), v("i")), c(0xFFFF))))),
      ret(band(v("sum"), c(0x7FFFFFFFFFFFLL))),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
