//===- workloads/BitOps.cpp - Bit array operations (jBYTEmark) -------------==//
//
// Strided bit set/clear/toggle passes over a packed bit array plus a
// population count. Adjacent iterations read-modify-write the same words,
// so dependency arcs are very short and thread sizes tiny — the classic
// fine-grained STL the paper reports for BitOps (thread size 29 cycles).
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildBitOps() {
  constexpr std::int64_t Bits = 32768;
  constexpr std::int64_t Words = Bits / 64;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      assign("bits", allocWords(c(Words))),
      forLoop("i", c(0), lt(v("i"), c(Words)), 1,
              store(v("bits"), v("i"), c(0))),

      // Set every 3rd bit.
      forLoop("b", c(0), lt(v("b"), c(Bits)), 3,
              seq({
                  assign("w", sdiv(v("b"), c(64))),
                  assign("o", srem(v("b"), c(64))),
                  store(v("bits"), v("w"),
                        bor(ld(v("bits"), v("w")), shl(c(1), v("o")))),
              })),
      // Clear every 7th bit.
      forLoop("b", c(0), lt(v("b"), c(Bits)), 7,
              seq({
                  assign("w", sdiv(v("b"), c(64))),
                  assign("o", srem(v("b"), c(64))),
                  store(v("bits"), v("w"),
                        band(ld(v("bits"), v("w")),
                             bxor(shl(c(1), v("o")), c(-1)))),
              })),
      // Toggle a hash-derived pattern.
      forLoop("b", c(0), lt(v("b"), c(Bits)), 5,
              seq({
                  assign("t", hashMod(v("b"), Bits)),
                  assign("w", sdiv(v("t"), c(64))),
                  assign("o", srem(v("t"), c(64))),
                  store(v("bits"), v("w"),
                        bxor(ld(v("bits"), v("w")), shl(c(1), v("o")))),
              })),

      // Population count (integer sum reduction).
      assign("pop", c(0)),
      forLoop("i", c(0), lt(v("i"), c(Words)), 1,
              seq({
                  assign("x", ld(v("bits"), v("i"))),
                  whileLoop(ne(v("x"), c(0)),
                            seq({
                                assign("pop", add(v("pop"), c(1))),
                                assign("x", band(v("x"),
                                                 sub(v("x"), c(1)))),
                            })),
              })),
      ret(add(v("pop"), mul(ld(v("bits"), c(7)), c(13)))),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
