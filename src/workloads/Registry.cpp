//===- workloads/Registry.cpp - Table 6 benchmark registry -----------------==//

#include "workloads/Workload.h"

#include "workloads/Builders.h"

using namespace jrpm;
using namespace jrpm::workloads;

const std::vector<Workload> &workloads::allWorkloads() {
  static const std::vector<Workload> Table = {
      // Integer.
      {"Assignment", "Integer", "Resource allocation", "51x51", false, true,
       buildAssignment},
      {"BitOps", "Integer", "Bit array operations", "", false, false,
       buildBitOps},
      {"compress", "Integer", "Compression", "", false, false, buildCompress},
      {"db", "Integer", "Database", "5000", false, true, buildDb},
      {"deltaBlue", "Integer", "Constraint solver", "", false, false,
       buildDeltaBlue},
      {"EmFloatPnt", "Integer", "FP emulation", "", false, false,
       buildEmFloatPnt},
      {"Huffman", "Integer", "Compression", "", false, false, buildHuffman},
      {"IDEA", "Integer", "Encryption", "", true, false, buildIdea},
      {"jess", "Integer", "Expert system", "", false, false, buildJess},
      {"jLex", "Integer", "Lexical analyzer gen", "", false, false,
       buildJLex},
      {"MipsSimulator", "Integer", "CPU simulator", "", false, false,
       buildMipsSimulator},
      {"monteCarlo", "Integer", "Monte carlo sim", "", false, false,
       buildMonteCarlo},
      {"NumHeapSort", "Integer", "Heap sort", "", false, false,
       buildNumHeapSort},
      {"raytrace", "Integer", "Raytracer", "", false, false, buildRaytrace},
      // Floating point.
      {"euler", "Floating point", "Fluid dynamics", "33x9", true, true,
       buildEuler},
      {"fft", "Floating point", "Fast fourier transform", "1024", true, true,
       buildFft},
      {"FourierTest", "Floating point", "Fourier coefficients", "", true,
       false, buildFourierTest},
      {"LuFactor", "Floating point", "LU factorization", "101x101", true,
       true, buildLuFactor},
      {"moldyn", "Floating point", "Molecular dynamics", "", true, false,
       buildMoldyn},
      {"NeuralNet", "Floating point", "Neural net", "35x8x8", true, true,
       buildNeuralNet},
      {"shallow", "Floating point", "Shallow water sim", "256x256", true,
       true, buildShallow},
      // Multimedia.
      {"decJpeg", "Multimedia", "Image decoder", "", false, false,
       buildDecJpeg},
      {"encJpeg", "Multimedia", "Image compression", "", false, false,
       buildEncJpeg},
      {"h263dec", "Multimedia", "Video decoder", "", false, false,
       buildH263Dec},
      {"mpegVideo", "Multimedia", "Video decoder", "", false, false,
       buildMpegVideo},
      {"mp3", "Multimedia", "mp3 decoder", "", false, false, buildMp3},
  };
  return Table;
}

const Workload *workloads::findWorkload(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}
