//===- workloads/Raytrace.cpp - Ray tracer (SPECjvm98 205_raytrace) --------==//
//
// A small sphere-scene ray caster: one primary ray per pixel, intersected
// against every sphere, with Lambert shading on the nearest hit. Pixels
// are independent, so the pixel loops are clean STLs; per-pixel work is a
// few hundred cycles, matching the paper's fine raytrace threads.
//
//===----------------------------------------------------------------------===//

#include "workloads/Builders.h"

#include "frontend/Lower.h"
#include "workloads/Common.h"

using namespace jrpm;
using namespace jrpm::front;

ir::Module workloads::buildRaytrace() {
  constexpr std::int64_t W = 36;
  constexpr std::int64_t H = 36;
  constexpr std::int64_t Spheres = 5;

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq({
      // Scene: sphere centers (double), radius^2, and an image plane.
      assign("sx", allocWords(c(Spheres))),
      assign("sy", allocWords(c(Spheres))),
      assign("sz", allocWords(c(Spheres))),
      assign("sr2", allocWords(c(Spheres))),
      forLoop("i", c(0), lt(v("i"), c(Spheres)), 1,
              seq({
                  assign("fi", itof(v("i"))),
                  store(v("sx"), v("i"),
                        fsub(fmul(v("fi"), cf(1.4)), cf(2.8))),
                  store(v("sy"), v("i"),
                        fsub(fmul(v("fi"), cf(0.9)), cf(1.8))),
                  store(v("sz"), v("i"), fadd(cf(6.0), itof(srem(v("i"), c(3))))),
                  store(v("sr2"), v("i"), fadd(cf(0.8), fmul(v("fi"), cf(0.25)))),
              })),

      assign("img", allocWords(c(W * H))),
      forLoop(
          "py", c(0), lt(v("py"), c(H)), 1,
          forLoop(
              "px", c(0), lt(v("px"), c(W)), 1,
              seq({
                  // Ray direction through the pixel, unnormalized is fine
                  // for comparisons after consistent scaling.
                  assign("dx", fsub(fmul(itof(v("px")), cf(2.0 / W)),
                                    cf(1.0))),
                  assign("dy", fsub(fmul(itof(v("py")), cf(2.0 / H)),
                                    cf(1.0))),
                  assign("dz", cf(1.0)),
                  assign("dlen", fsqrt(fadd(fadd(fmul(v("dx"), v("dx")),
                                                 fmul(v("dy"), v("dy"))),
                                            cf(1.0)))),
                  assign("dx", fdiv(v("dx"), v("dlen"))),
                  assign("dy", fdiv(v("dy"), v("dlen"))),
                  assign("dz", fdiv(v("dz"), v("dlen"))),

                  assign("bestT", cf(1.0e30)),
                  assign("bestS", c(-1)),
                  forLoop(
                      "s", c(0), lt(v("s"), c(Spheres)), 1,
                      seq({
                          assign("cx", ld(v("sx"), v("s"))),
                          assign("cy", ld(v("sy"), v("s"))),
                          assign("cz", ld(v("sz"), v("s"))),
                          // b = d . c ; disc = b^2 - (|c|^2 - r^2)
                          assign("b", fadd(fadd(fmul(v("dx"), v("cx")),
                                                fmul(v("dy"), v("cy"))),
                                           fmul(v("dz"), v("cz")))),
                          assign("c2", fadd(fadd(fmul(v("cx"), v("cx")),
                                                 fmul(v("cy"), v("cy"))),
                                            fmul(v("cz"), v("cz")))),
                          assign("disc",
                                 fsub(fmul(v("b"), v("b")),
                                      fsub(v("c2"),
                                           ld(v("sr2"), v("s"))))),
                          iff(flt(cf(0.0), v("disc")),
                              seq({
                                  assign("t", fsub(v("b"),
                                                   fsqrt(v("disc")))),
                                  iff(band(flt(cf(0.05), v("t")),
                                           flt(v("t"), v("bestT"))),
                                      seq({
                                          assign("bestT", v("t")),
                                          assign("bestS", v("s")),
                                      })),
                              })),
                      })),

                  // Lambert shade against a fixed light direction.
                  assign("shade", c(8)),
                  iff(ge(v("bestS"), c(0)),
                      seq({
                          assign("hx", fmul(v("dx"), v("bestT"))),
                          assign("hy", fmul(v("dy"), v("bestT"))),
                          assign("hz", fmul(v("dz"), v("bestT"))),
                          assign("nx", fsub(v("hx"),
                                            ld(v("sx"), v("bestS")))),
                          assign("ny", fsub(v("hy"),
                                            ld(v("sy"), v("bestS")))),
                          assign("nz", fsub(v("hz"),
                                            ld(v("sz"), v("bestS")))),
                          assign("nl", fsqrt(fadd(
                                           fadd(fmul(v("nx"), v("nx")),
                                                fmul(v("ny"), v("ny"))),
                                           fmul(v("nz"), v("nz"))))),
                          assign("dot",
                                 fdiv(fadd(fadd(fmul(v("nx"), cf(0.57)),
                                                fmul(v("ny"), cf(0.57))),
                                           fmul(v("nz"), cf(-0.57))),
                                      v("nl"))),
                          iff(flt(v("dot"), cf(0.0)),
                              assign("dot", cf(0.0))),
                          assign("shade",
                                 add(c(16),
                                     ftoi(fmul(v("dot"), cf(200.0))))),
                      })),
                  store(v("img"),
                        add(mul(v("py"), c(W)), v("px")), v("shade")),
              }))),

      assign("sum", c(0)),
      forLoop("i", c(0), lt(v("i"), c(W * H)), 1,
              assign("sum", add(v("sum"),
                                mul(ld(v("img"), v("i")),
                                    add(srem(v("i"), c(7)), c(1)))))),
      ret(v("sum")),
  });

  ProgramDef P;
  P.Functions.push_back(std::move(Main));
  return lowerProgram(P);
}
