//===- sweep/ThreadPool.h - Work-stealing thread pool ----------------------==//
//
// Executes independent simulation jobs across cores. Each worker owns a
// deque: it pushes and pops work at the back (LIFO, cache-warm), and idle
// workers steal from the front of a victim's deque (FIFO, oldest first) —
// the classic Blumofe/Leiserson discipline. Submissions from outside the
// pool are distributed round-robin so a burst of jobs lands spread across
// workers instead of piled on one; submissions from inside a worker go to
// that worker's own deque so nested fan-out stays local until stolen.
//
// The pool makes no fairness or ordering promises: sweep determinism must
// come from jobs writing into preassigned result slots, never from
// completion order (see SweepRunner).
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SWEEP_THREADPOOL_H
#define JRPM_SWEEP_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace jrpm {
namespace sweep {

class ThreadPool {
public:
  /// \p Threads == 0 selects defaultThreads(). The workers start
  /// immediately and idle until work arrives.
  explicit ThreadPool(unsigned Threads = 0);

  /// Drains outstanding work (wait()), then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned threadCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Enqueues \p Task. Safe from any thread, including pool workers (a
  /// running task may fan out further work).
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished. Safe to call repeatedly; the pool is
  /// reusable afterwards.
  void wait();

  /// std::thread::hardware_concurrency() with a floor of 1.
  static unsigned defaultThreads();

  /// Index of the pool worker executing the caller, or -1 when the calling
  /// thread is not a pool worker. Lets a running job attribute itself to a
  /// per-worker slot (e.g. a timeline track) without any synchronization.
  static int currentWorker();

private:
  struct Deque {
    std::mutex M;
    std::deque<std::function<void()>> Tasks;
  };

  void workerLoop(unsigned Self);
  bool takeTask(unsigned Self, std::function<void()> &Out);

  std::vector<std::unique_ptr<Deque>> Deques; // one per worker
  std::vector<std::thread> Workers;

  // Counters and lifecycle, guarded by one mutex: the per-job work (a whole
  // pipeline simulation) dwarfs any contention on it.
  std::mutex M;
  std::condition_variable WorkCv; ///< wakes idle workers
  std::condition_variable IdleCv; ///< wakes wait()ers
  std::uint64_t Queued = 0;       ///< tasks sitting in some deque
  std::uint64_t Pending = 0;      ///< queued + currently running
  bool Stopping = false;

  std::uint64_t NextDeque = 0; ///< round-robin cursor for external submits
};

} // namespace sweep
} // namespace jrpm

#endif // JRPM_SWEEP_THREADPOOL_H
