//===- sweep/Conformance.cpp ----------------------------------------------==//

#include "sweep/Conformance.h"

using namespace jrpm;
using namespace jrpm::sweep;

std::vector<ConfigPoint> sweep::defaultConformanceGrid() {
  std::vector<ConfigPoint> Grid;
  // Reference hardware (Table 1 / Table 2 defaults).
  Grid.emplace_back();
  // Bank-starved comparator array with the paper's dynamic annotation
  // disabling picking up the slack (Section 5.2).
  ConfigPoint Starved;
  Starved.Knobs = {{"banks", 2}, {"disable-after", 2000}};
  Grid.push_back(std::move(Starved));
  // Stressed point: shallow store history, line-granular violation
  // detection, and synchronized carried locals all at once.
  ConfigPoint Stressed;
  Stressed.Knobs = {{"history", 48}, {"line-grain", 1}, {"sync", 1}};
  Grid.push_back(std::move(Stressed));
  return Grid;
}

SweepPlan sweep::conformancePlan(std::vector<ConfigPoint> Grid,
                                 std::vector<std::string> Workloads) {
  SweepPlan Plan;
  Plan.Workloads = std::move(Workloads);
  Plan.Levels = {jit::AnnotationLevel::Base, jit::AnnotationLevel::Optimized};
  Plan.Configs = std::move(Grid);
  Plan.Mode = JobMode::Conformance;
  return Plan;
}
