//===- sweep/SweepRunner.cpp ----------------------------------------------==//

#include "sweep/SweepRunner.h"

#include "exec/CodeImage.h"
#include "support/AtomicFile.h"
#include "support/Format.h"
#include "trace/Replay.h"
#include "workloads/Workload.h"

#include <chrono>
#include <cstdio>
#include <exception>

#include <unistd.h>

using namespace jrpm;
using namespace jrpm::sweep;

const char *sweep::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Ok:
    return "ok";
  case JobStatus::Failed:
    return "failed";
  case JobStatus::TimedOut:
    return "timed_out";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0)
      .count();
}

void fillPipelineFields(SweepResult &R, const pipeline::PipelineResult &P) {
  R.PlainCycles = P.PlainRun.Cycles;
  R.ProfiledCycles = P.ProfiledRun.Cycles;
  R.TlsCycles = P.TlsRun.Cycles;
  R.Checksum = P.PlainRun.ReturnValue;
  R.Loops = P.Selection.Loops.size();
  R.SelectedLoops = P.Selection.SelectedLoops.size();
  R.PredictedSpeedup = P.Selection.PredictedSpeedup;
  R.ActualSpeedup = P.actualSpeedup();
  R.ProfilingSlowdown = P.profilingSlowdown();
  R.SelectionDigest = tracer::selectionDigest(P.Selection);
}

void appendError(SweepResult &R, const std::string &Msg) {
  if (!R.Error.empty())
    R.Error += "; ";
  R.Error += Msg;
}

/// The full five-step pipeline with a sequential-vs-speculative checksum
/// verification — the Pipeline job mode.
void runPipelineJob(const workloads::Workload &W, const SweepJob &Job,
                    SweepResult &R) {
  pipeline::PipelineConfig Cfg = Job.Cfg;
  Cfg.Metrics = &R.Metrics;
  pipeline::Jrpm J(W.Build(), Cfg);
  pipeline::PipelineResult P = J.runAll();
  fillPipelineFields(R, P);
  if (P.TlsRun.ReturnValue != P.PlainRun.ReturnValue)
    appendError(R, formatString(
                       "speculative checksum %llu != sequential %llu",
                       (unsigned long long)P.TlsRun.ReturnValue,
                       (unsigned long long)P.PlainRun.ReturnValue));
}

/// The differential conformance check: the same program is executed as (1)
/// a clean sequential interpretation, (2) an annotated profiling run
/// recorded to a trace and re-analyzed from that trace, and (3) native TLS
/// on the Hydra engine. All three checksums must be bit-identical and the
/// trace-replayed selection must reproduce the live digest exactly.
void runConformanceJob(const workloads::Workload &W, const SweepJob &Job,
                       SweepResult &R) {
  std::string TracePath = "/tmp/jrpm-sweep-" +
                          std::to_string(static_cast<long>(getpid())) + "-" +
                          std::to_string(Job.Index) + ".jtrace";
  pipeline::PipelineConfig Cfg = Job.Cfg;
  Cfg.RecordTracePath = TracePath;
  Cfg.Metrics = &R.Metrics;

  pipeline::Jrpm J(W.Build(), Cfg);
  interp::RunResult Plain = J.runPlain();
  pipeline::Jrpm::ProfileOutcome Profile = J.profileAndSelect();
  pipeline::Jrpm::TlsOutcome Tls = J.runSpeculative(Profile.Selection);

  pipeline::PipelineResult P;
  P.PlainRun = Plain;
  P.ProfiledRun = Profile.Run;
  P.Selection = Profile.Selection;
  P.TlsRun = Tls.Run;
  fillPipelineFields(R, P);

  if (Profile.Run.ReturnValue != Plain.ReturnValue)
    appendError(R, formatString(
                       "annotated checksum %llu != sequential %llu",
                       (unsigned long long)Profile.Run.ReturnValue,
                       (unsigned long long)Plain.ReturnValue));
  if (Tls.Run.ReturnValue != Plain.ReturnValue)
    appendError(R, formatString(
                       "speculative checksum %llu != sequential %llu",
                       (unsigned long long)Tls.Run.ReturnValue,
                       (unsigned long long)Plain.ReturnValue));

  // Leg 2b: the recorded trace, re-analyzed from scratch, must reproduce
  // the live selection bit-for-bit under the capture configuration.
  trace::CachedTrace Trace(TracePath);
  std::remove(TracePath.c_str());
  trace::ReplayConfig RC;
  RC.Hw = Job.Cfg.Hw;
  RC.ExtendedPcBinning = Job.Cfg.ExtendedPcBinning;
  RC.DisableLoopAfterThreads = Job.Cfg.DisableLoopAfterThreads;
  trace::ReplayOutcome Replayed = trace::selectFromTrace(Trace, RC);
  R.ReplayDigest = tracer::selectionDigest(Replayed.Selection);
  if (R.ReplayDigest != R.SelectionDigest)
    appendError(R, formatString(
                       "replayed selection digest %016llx != live %016llx",
                       (unsigned long long)R.ReplayDigest,
                       (unsigned long long)R.SelectionDigest));
  if (Replayed.Run.Cycles != Profile.Run.Cycles ||
      Replayed.Run.ReturnValue != Profile.Run.ReturnValue)
    appendError(R, "trace footer run diverged from live profiled run");
}

} // namespace

SweepResult sweep::runJob(const SweepJob &Job) {
  SweepResult R;
  R.Index = Job.Index;
  R.Workload = Job.Workload;
  R.Level = Job.Level;
  R.ConfigName = Job.ConfigName;
  R.Mode = Job.Mode;

  Clock::time_point T0 = Clock::now();
  const workloads::Workload *W = workloads::findWorkload(Job.Workload);
  if (!W) {
    R.Error = "unknown workload '" + Job.Workload + "'";
    R.WallMs = msSince(T0);
    return R;
  }
  try {
    if (Job.Mode == JobMode::Conformance)
      runConformanceJob(*W, Job, R);
    else
      runPipelineJob(*W, Job, R);
    R.Status = R.Error.empty() ? JobStatus::Ok : JobStatus::Failed;
  } catch (const std::exception &E) {
    appendError(R, E.what());
    R.Status = JobStatus::Failed;
  }
  R.WallMs = msSince(T0);
  if (R.Status == JobStatus::Ok && Job.TimeoutMs &&
      R.WallMs > static_cast<double>(Job.TimeoutMs)) {
    R.Status = JobStatus::TimedOut;
    appendError(R, formatString("exceeded soft timeout of %u ms",
                                Job.TimeoutMs));
  }
  return R;
}

namespace {

/// Per-call completion latch: lets concurrent runSweepOn() callers share
/// one pool without stealing each other's ThreadPool::wait() wakeups.
struct JobLatch {
  std::mutex M;
  std::condition_variable Cv;
  std::size_t Left;

  explicit JobLatch(std::size_t N) : Left(N) {}
  void done() {
    std::lock_guard<std::mutex> Lock(M);
    if (--Left == 0)
      Cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [this] { return Left == 0; });
  }
};

} // namespace

SweepReport sweep::runSweepOn(ThreadPool &Pool,
                              const std::vector<SweepJob> &Jobs,
                              metrics::Timeline *Timeline) {
  SweepReport Report;
  Report.Results.resize(Jobs.size());
  Report.Threads = Pool.threadCount();
  Clock::time_point T0 = Clock::now();
  {
    // Worker tracks are registered before any job runs, in index order, so
    // the timeline's pid/tid assignment never depends on scheduling.
    std::vector<metrics::TrackId> WorkerTracks;
    if (Timeline)
      for (unsigned W = 0; W < Pool.threadCount(); ++W)
        WorkerTracks.push_back(
            Timeline->track("sweep", W, "worker" + std::to_string(W)));
    JobLatch Latch(Jobs.size());
    for (const SweepJob &Job : Jobs)
      // Each job writes its preassigned slot; completion order is free.
      Pool.submit([&Job, &Report, &Latch, Timeline, &WorkerTracks, T0] {
        int W = ThreadPool::currentWorker();
        bool Spanned = Timeline && W >= 0 &&
                       static_cast<std::size_t>(W) < WorkerTracks.size();
        if (Spanned)
          Timeline->begin(WorkerTracks[static_cast<std::size_t>(W)],
                          "job#" + std::to_string(Job.Index) + " " +
                              Job.Workload,
                          static_cast<std::uint64_t>(
                              std::chrono::duration_cast<
                                  std::chrono::microseconds>(Clock::now() -
                                                             T0)
                                  .count()));
        Report.Results[Job.Index] = runJob(Job);
        if (Spanned)
          Timeline->end(WorkerTracks[static_cast<std::size_t>(W)],
                        static_cast<std::uint64_t>(
                            std::chrono::duration_cast<
                                std::chrono::microseconds>(Clock::now() - T0)
                                .count()));
        Latch.done();
      });
    Latch.wait();
  }
  Report.WallMs = msSince(T0);
  for (const SweepResult &R : Report.Results) {
    switch (R.Status) {
    case JobStatus::Ok:
      ++Report.OkCount;
      break;
    case JobStatus::Failed:
      ++Report.FailedCount;
      break;
    case JobStatus::TimedOut:
      ++Report.TimedOutCount;
      break;
    }
  }
  return Report;
}

SweepReport sweep::runSweep(const std::vector<SweepJob> &Jobs,
                            unsigned Threads,
                            metrics::Timeline *Timeline) {
  ThreadPool Pool(Threads);
  return runSweepOn(Pool, Jobs, Timeline);
}

metrics::Registry sweep::mergedMetrics(const SweepReport &R) {
  metrics::Registry Merged;
  for (const SweepResult &S : R.Results)
    Merged.merge(S.Metrics);
  Merged.counter("sweep.jobs").inc(R.Results.size());
  Merged.counter("sweep.jobs_ok").inc(R.OkCount);
  Merged.counter("sweep.jobs_failed").inc(R.FailedCount);
  Merged.counter("sweep.jobs_timed_out").inc(R.TimedOutCount);
  return Merged;
}

Json sweep::reportToJson(const SweepReport &R, bool IncludeTimings) {
  Json Root = Json::object();
  Root["schema"] = "jrpm-sweep-v1";
  Root["seed"] = R.Seed;

  Json Results = Json::array();
  for (const SweepResult &S : R.Results) {
    Json J = Json::object();
    J["index"] = S.Index;
    J["workload"] = S.Workload;
    J["level"] = annotationLevelName(S.Level);
    J["config"] = S.ConfigName;
    J["mode"] = S.Mode == JobMode::Conformance ? "conformance" : "pipeline";
    J["status"] = jobStatusName(S.Status);
    if (!S.Error.empty())
      J["error"] = S.Error;
    J["cycles_plain"] = S.PlainCycles;
    J["cycles_profiled"] = S.ProfiledCycles;
    J["cycles_tls"] = S.TlsCycles;
    J["checksum"] = S.Checksum;
    J["loops"] = S.Loops;
    J["selected"] = S.SelectedLoops;
    J["predicted_speedup"] = S.PredictedSpeedup;
    J["actual_speedup"] = S.ActualSpeedup;
    J["profiling_slowdown"] = S.ProfilingSlowdown;
    J["selection_digest"] = formatString(
        "%016llx", (unsigned long long)S.SelectionDigest);
    if (S.Mode == JobMode::Conformance)
      J["replay_digest"] = formatString(
          "%016llx", (unsigned long long)S.ReplayDigest);
    if (IncludeTimings)
      J["wall_ms"] = S.WallMs;
    Results.push(std::move(J));
  }
  Root["results"] = std::move(Results);

  Json Summary = Json::object();
  Summary["jobs"] = static_cast<std::uint64_t>(R.Results.size());
  Summary["ok"] = R.OkCount;
  Summary["failed"] = R.FailedCount;
  Summary["timed_out"] = R.TimedOutCount;
  Root["summary"] = std::move(Summary);

  if (IncludeTimings) {
    Json Timing = Json::object();
    Timing["threads"] = R.Threads;
    Timing["wall_ms"] = R.WallMs;
    // Code-image reuse across jobs: content-identical modules (same
    // workload at the same annotation level) share one pre-decoded image.
    // Timing-only diagnostics, kept out of the deterministic golden form.
    exec::ImageCacheStats IC = exec::CodeImage::cacheStats();
    Timing["image_cache_hits"] = IC.Hits;
    Timing["image_cache_misses"] = IC.Misses;
    Root["timing"] = std::move(Timing);
  }
  return Root;
}

bool sweep::writeReport(const SweepReport &R, const std::string &Path,
                        bool IncludeTimings, std::string *Err) {
  return writeFileAtomic(Path, reportToJson(R, IncludeTimings).dump(), Err);
}
