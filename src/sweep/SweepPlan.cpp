//===- sweep/SweepPlan.cpp ------------------------------------------------==//

#include "sweep/SweepPlan.h"

#include "workloads/Workload.h"

#include <algorithm>
#include <set>

using namespace jrpm;
using namespace jrpm::sweep;

const char *sweep::annotationLevelName(jit::AnnotationLevel L) {
  return L == jit::AnnotationLevel::Base ? "base" : "optimized";
}

namespace {

/// The knob table: every name sets one field of the resolved
/// PipelineConfig. Kept alphabetical; knownKnobs() exposes the names.
struct Knob {
  const char *Name;
  void (*Set)(pipeline::PipelineConfig &, std::uint32_t);
};

const Knob Knobs[] = {
    {"assoc",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.Hw.OverflowTableAssoc = V;
     }},
    {"banks",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.Hw.ComparatorBanks = V;
     }},
    {"disable-after",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.DisableLoopAfterThreads = V;
     }},
    {"history",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.Hw.HeapTimestampFifoLines = V;
     }},
    {"line-grain",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.Hw.ViolationGrain = V ? sim::ViolationGranularity::Line
                               : sim::ViolationGranularity::Word;
     }},
    {"load-lines",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.Hw.SpecLoadLines = V;
     }},
    {"oracle",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.AffineOracle = V != 0;
     }},
    {"pc-binning",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.ExtendedPcBinning = V != 0;
     }},
    {"prefilter",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.StaticPrefilter = V != 0;
     }},
    {"slots",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.Hw.LocalVarSlots = V;
     }},
    {"store-lines",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.Hw.SpecStoreLines = V;
     }},
    {"sync",
     [](pipeline::PipelineConfig &C, std::uint32_t V) {
       C.Hw.SyncCarriedLocals = V != 0;
     }},
};

const Knob *findKnob(const std::string &Name) {
  for (const Knob &K : Knobs)
    if (Name == K.Name)
      return &K;
  return nullptr;
}

} // namespace

const std::vector<std::string> &sweep::knownKnobs() {
  static const std::vector<std::string> Names = [] {
    std::vector<std::string> N;
    for (const Knob &K : Knobs)
      N.push_back(K.Name);
    return N;
  }();
  return Names;
}

std::string ConfigPoint::name() const {
  if (Knobs.empty())
    return "default";
  auto Sorted = Knobs;
  std::sort(Sorted.begin(), Sorted.end());
  std::string Out;
  for (const auto &[K, V] : Sorted) {
    if (!Out.empty())
      Out += ',';
    Out += K + "=" + std::to_string(V);
  }
  return Out;
}

bool ConfigPoint::apply(pipeline::PipelineConfig &Cfg,
                        std::string *Err) const {
  for (const auto &[Name, Value] : Knobs) {
    const Knob *K = findKnob(Name);
    if (!K) {
      if (Err)
        *Err = "unknown config knob '" + Name + "'";
      return false;
    }
    K->Set(Cfg, Value);
  }
  return true;
}

bool sweep::parseConfigPoint(const std::string &Spec, ConfigPoint &Out,
                             std::string *Err) {
  Out.Knobs.clear();
  if (Spec.empty() || Spec == "default")
    return true;
  std::size_t Pos = 0;
  while (Pos < Spec.size()) {
    std::size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Item = Spec.substr(Pos, Comma - Pos);
    std::size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Item.size()) {
      if (Err)
        *Err = "malformed knob '" + Item + "' (expected key=value)";
      return false;
    }
    std::string Key = Item.substr(0, Eq);
    std::string ValStr = Item.substr(Eq + 1);
    if (ValStr.find_first_not_of("0123456789") != std::string::npos) {
      if (Err)
        *Err = "non-numeric value in knob '" + Item + "'";
      return false;
    }
    Out.Knobs.emplace_back(
        Key, static_cast<std::uint32_t>(std::stoul(ValStr)));
    Pos = Comma + 1;
  }
  return true;
}

bool SweepPlan::expand(std::vector<SweepJob> &Out, std::string *Err) const {
  Out.clear();

  std::vector<std::string> Names = Workloads;
  if (Names.empty())
    for (const workloads::Workload &W : workloads::allWorkloads())
      Names.push_back(W.Name);

  std::vector<jit::AnnotationLevel> Lv = Levels;
  if (Lv.empty())
    Lv.push_back(jit::AnnotationLevel::Optimized);

  std::vector<ConfigPoint> Pts = Configs;
  if (Pts.empty())
    Pts.emplace_back();

  std::set<std::tuple<std::string, int, std::string>> Seen;
  for (const std::string &W : Names) {
    for (jit::AnnotationLevel L : Lv) {
      for (const ConfigPoint &P : Pts) {
        SweepJob J;
        J.Workload = W;
        J.Level = L;
        J.ConfigName = P.name();
        if (!Seen.insert({W, static_cast<int>(L), J.ConfigName}).second)
          continue; // exact duplicate point
        J.Cfg.Level = L;
        J.Cfg.WorkloadName = W;
        if (!P.apply(J.Cfg, Err))
          return false;
        J.Mode = Mode;
        J.TimeoutMs = TimeoutMs;
        J.Index = static_cast<std::uint32_t>(Out.size());
        Out.push_back(std::move(J));
      }
    }
  }
  return true;
}
