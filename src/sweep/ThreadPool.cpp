//===- sweep/ThreadPool.cpp -----------------------------------------------==//

#include "sweep/ThreadPool.h"

namespace {
/// Index of the deque owned by the current thread, or -1 when the caller is
/// not a pool worker. Thread-local so nested submits from a running job
/// land on the worker's own deque.
thread_local int CurrentWorker = -1;
} // namespace

using namespace jrpm;
using namespace jrpm::sweep;

unsigned ThreadPool::defaultThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

int ThreadPool::currentWorker() { return CurrentWorker; }

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = defaultThreads();
  Deques.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Deques.push_back(std::make_unique<Deque>());
  Workers.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([this, T] { workerLoop(T); });
}

ThreadPool::~ThreadPool() {
  wait();
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Target;
  {
    std::lock_guard<std::mutex> L(M);
    Target = CurrentWorker >= 0
                 ? static_cast<unsigned>(CurrentWorker)
                 : static_cast<unsigned>(NextDeque++ % Deques.size());
    ++Queued;
    ++Pending;
  }
  {
    std::lock_guard<std::mutex> L(Deques[Target]->M);
    Deques[Target]->Tasks.push_back(std::move(Task));
  }
  WorkCv.notify_one();
}

bool ThreadPool::takeTask(unsigned Self, std::function<void()> &Out) {
  // Own deque first, newest task (LIFO keeps the working set warm)...
  {
    Deque &D = *Deques[Self];
    std::lock_guard<std::mutex> L(D.M);
    if (!D.Tasks.empty()) {
      Out = std::move(D.Tasks.back());
      D.Tasks.pop_back();
      return true;
    }
  }
  // ...then steal the oldest task from the first non-empty victim.
  for (std::size_t Step = 1; Step < Deques.size(); ++Step) {
    Deque &D = *Deques[(Self + Step) % Deques.size()];
    std::lock_guard<std::mutex> L(D.M);
    if (!D.Tasks.empty()) {
      Out = std::move(D.Tasks.front());
      D.Tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Self) {
  CurrentWorker = static_cast<int>(Self);
  for (;;) {
    std::function<void()> Task;
    if (takeTask(Self, Task)) {
      {
        std::lock_guard<std::mutex> L(M);
        --Queued;
      }
      Task();
      bool Drained;
      {
        std::lock_guard<std::mutex> L(M);
        Drained = --Pending == 0;
      }
      if (Drained)
        IdleCv.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> L(M);
    if (Stopping)
      return;
    WorkCv.wait(L, [this] { return Stopping || Queued > 0; });
    if (Stopping && Queued == 0)
      return;
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> L(M);
  IdleCv.wait(L, [this] { return Pending == 0; });
}
