//===- sweep/SweepPlan.h - The sweep job model -----------------------------==//
//
// A SweepPlan is the cartesian product of workloads x annotation levels x
// named engine-configuration points. expand() flattens it into a vector of
// fully resolved, independent SweepJobs in a deterministic order (workload
// major, level middle, config minor) with exact duplicates removed, so a
// plan expands to the same job list on every machine and thread count —
// the anchor for the byte-identical-JSON determinism contract.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SWEEP_SWEEPPLAN_H
#define JRPM_SWEEP_SWEEPPLAN_H

#include "jrpm/Pipeline.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jrpm {
namespace sweep {

/// One named point in configuration space: an ordered list of knob
/// assignments applied on top of the default PipelineConfig. The canonical
/// name ("banks=2,history=48", knobs sorted by key; "default" when empty)
/// doubles as the dedup and JSON identity.
struct ConfigPoint {
  std::vector<std::pair<std::string, std::uint32_t>> Knobs;

  std::string name() const;
  /// Applies every knob to \p Cfg. Returns false (and sets *Err) on an
  /// unknown knob name.
  bool apply(pipeline::PipelineConfig &Cfg, std::string *Err = nullptr) const;
};

/// Parses "key=value[,key=value...]" (or "default" / "" for the empty
/// point). Returns false and sets *Err on malformed input; unknown keys are
/// caught later by apply() so plans can be listed before being validated.
bool parseConfigPoint(const std::string &Spec, ConfigPoint &Out,
                      std::string *Err);

/// The knob names ConfigPoint::apply understands, for usage text.
const std::vector<std::string> &knownKnobs();

/// What a job executes.
enum class JobMode {
  Pipeline,    ///< all five Jrpm steps; checksum-verifies TLS vs sequential
  Conformance, ///< sequential vs annotated-trace vs TLS differential check
};

/// One fully resolved unit of work, independent of every other job.
struct SweepJob {
  std::uint32_t Index = 0; ///< position in plan order; result slot id
  std::string Workload;
  jit::AnnotationLevel Level = jit::AnnotationLevel::Optimized;
  std::string ConfigName;
  pipeline::PipelineConfig Cfg; ///< defaults + level + config point applied
  JobMode Mode = JobMode::Pipeline;
  /// Soft per-job wall-clock budget in milliseconds (0 = none). The
  /// simulator has no preemption point, so an overrunning job completes
  /// and is then *reported* as timed out rather than killed mid-run.
  std::uint32_t TimeoutMs = 0;
};

struct SweepPlan {
  /// Workload names; empty selects the full Table 6 registry.
  std::vector<std::string> Workloads;
  /// Annotation levels; empty selects {Optimized}.
  std::vector<jit::AnnotationLevel> Levels;
  /// Configuration points; empty selects {default}.
  std::vector<ConfigPoint> Configs;
  JobMode Mode = JobMode::Pipeline;
  std::uint32_t TimeoutMs = 0;
  /// Stamped into the JSON report; also the base seed for generated-program
  /// plans (the concurrent fuzz harness).
  std::uint64_t Seed = 0;

  /// Cartesian expansion in deterministic order with exact duplicates
  /// (same workload, level, and canonical config name) removed. Returns
  /// false and sets *Err when a config point carries an unknown knob.
  bool expand(std::vector<SweepJob> &Out, std::string *Err) const;
};

const char *annotationLevelName(jit::AnnotationLevel L);

} // namespace sweep
} // namespace jrpm

#endif // JRPM_SWEEP_SWEEPPLAN_H
