//===- sweep/SweepRunner.h - Executing a plan on the pool ------------------==//
//
// Runs every SweepJob of an expanded plan on a work-stealing ThreadPool
// with failure isolation: a job that throws (or whose differential check
// fails) is recorded as a failed result — its siblings always complete and
// the sweep itself never dies with a job. Results land in preassigned
// slots indexed by SweepJob::Index, so the report is identical whatever
// order the pool finishes jobs in, and the JSON rendering (sorted keys,
// fixed double format, timings segregated behind a flag) is byte-identical
// between a 1-thread and an N-thread sweep of the same plan.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SWEEP_SWEEPRUNNER_H
#define JRPM_SWEEP_SWEEPRUNNER_H

#include "metrics/Metrics.h"
#include "metrics/Timeline.h"
#include "support/Json.h"
#include "sweep/SweepPlan.h"
#include "sweep/ThreadPool.h"

namespace jrpm {
namespace sweep {

enum class JobStatus {
  Ok,
  Failed,   ///< threw, unknown workload, or a differential mismatch
  TimedOut, ///< completed but exceeded its soft wall-clock budget
};

const char *jobStatusName(JobStatus S);

/// Structured outcome of one job. Deterministic fields only, except WallMs
/// (excluded from deterministic JSON).
struct SweepResult {
  // Identity (copied from the job).
  std::uint32_t Index = 0;
  std::string Workload;
  jit::AnnotationLevel Level = jit::AnnotationLevel::Optimized;
  std::string ConfigName;
  JobMode Mode = JobMode::Pipeline;

  JobStatus Status = JobStatus::Failed;
  std::string Error; ///< failure / mismatch description; empty when Ok

  // Measurements (valid when the pipeline ran to completion).
  std::uint64_t PlainCycles = 0;
  std::uint64_t ProfiledCycles = 0;
  std::uint64_t TlsCycles = 0;
  std::uint64_t Checksum = 0; ///< sequential run's return value
  std::uint64_t Loops = 0;
  std::uint64_t SelectedLoops = 0;
  double PredictedSpeedup = 1.0;
  double ActualSpeedup = 1.0;
  double ProfilingSlowdown = 1.0;
  std::uint64_t SelectionDigest = 0; ///< live selection digest
  /// Conformance mode: digest of the trace-replayed selection; must equal
  /// SelectionDigest.
  std::uint64_t ReplayDigest = 0;

  double WallMs = 0; ///< job wall-clock (non-deterministic; gated in JSON)

  /// Per-job instrumentation registry, filled by the pipeline while the
  /// job runs in isolation. Not part of the report JSON (the sweep golden
  /// gate byte-compares that); consumers fold the slots together with
  /// mergedMetrics().
  metrics::Registry Metrics;
};

struct SweepReport {
  std::vector<SweepResult> Results; ///< plan order (indexed by job Index)
  std::uint64_t Seed = 0;
  unsigned Threads = 0; ///< pool width actually used
  double WallMs = 0;    ///< whole-sweep wall-clock
  std::uint64_t OkCount = 0;
  std::uint64_t FailedCount = 0;
  std::uint64_t TimedOutCount = 0;

  bool allOk() const { return FailedCount == 0 && TimedOutCount == 0; }
};

/// Executes one job in the calling thread. Never throws: every failure
/// mode is folded into the returned result.
SweepResult runJob(const SweepJob &Job);

/// Executes \p Jobs on a pool of \p Threads workers (0 = hardware width).
/// With \p Timeline set, one track per worker is registered up front (in
/// worker-index order, so pid/tid stay stable) and each job becomes a span
/// on the track of the worker that ran it. Span timestamps are wall-clock
/// microseconds since the sweep started — a profiling aid, deliberately
/// outside the determinism contract (which per-job metrics satisfy
/// instead).
SweepReport runSweep(const std::vector<SweepJob> &Jobs, unsigned Threads,
                     metrics::Timeline *Timeline = nullptr);

/// Same execution model on a caller-owned pool. Completion is tracked by a
/// per-call latch rather than ThreadPool::wait(), so any number of callers
/// (the serve daemon's concurrent requests) can share one long-lived pool:
/// each returns as soon as *its* jobs finish, whatever else is queued.
SweepReport runSweepOn(ThreadPool &Pool, const std::vector<SweepJob> &Jobs,
                       metrics::Timeline *Timeline = nullptr);

/// Folds the per-job registries together in plan order and adds the
/// "sweep.jobs*" summary counters. Merging is order-deterministic, so a
/// 1-thread and an N-thread sweep of the same plan produce byte-identical
/// exports.
metrics::Registry mergedMetrics(const SweepReport &R);

/// Renders a report as a deterministic JSON document. Wall-clock times and
/// pool width are emitted only when \p IncludeTimings is set — with it off
/// the bytes depend solely on the plan and the simulators.
Json reportToJson(const SweepReport &R, bool IncludeTimings);

/// reportToJson + writeFileAtomic.
bool writeReport(const SweepReport &R, const std::string &Path,
                 bool IncludeTimings, std::string *Err = nullptr);

} // namespace sweep
} // namespace jrpm

#endif // JRPM_SWEEP_SWEEPRUNNER_H
