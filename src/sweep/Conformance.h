//===- sweep/Conformance.h - Whole-registry differential conformance -------==//
//
// The differential harness the sweep engine exists to feed: every Table 6
// workload is executed under sequential interpretation, an annotated
// profiling run captured to a trace and re-analyzed from it, and native
// speculative TLS, across a grid of engine configurations and both
// annotation levels. Every leg must produce a bit-identical checksum, and
// the trace-replayed selection must reproduce the live selection digest
// exactly. This replaces the old hand-picked spot checks (a few workloads
// in pipeline_test / bench_ablation_granularity) with the full matrix:
// 26 workloads x 2 levels x >= 3 configs in one pooled sweep.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SWEEP_CONFORMANCE_H
#define JRPM_SWEEP_CONFORMANCE_H

#include "sweep/SweepRunner.h"

namespace jrpm {
namespace sweep {

/// The default conformance grid: the paper's reference hardware plus a
/// bank-starved point with dynamic disabling and a stressed point
/// (shallow history, line-granular violation detection, synchronized
/// carried locals). Each point reconfigures capture and replay together,
/// so digests must still match within a point.
std::vector<ConfigPoint> defaultConformanceGrid();

/// Builds the full-matrix conformance plan: every registry workload (or
/// \p Workloads when non-empty) x both annotation levels x \p Grid.
SweepPlan conformancePlan(std::vector<ConfigPoint> Grid,
                          std::vector<std::string> Workloads = {});

} // namespace sweep
} // namespace jrpm

#endif // JRPM_SWEEP_CONFORMANCE_H
