//===- exec/CodeImage.cpp -------------------------------------------------==//

#include "exec/CodeImage.h"

#include "metrics/Metrics.h"
#include "support/Compiler.h"

#include <list>
#include <mutex>
#include <unordered_map>

using namespace jrpm;
using namespace jrpm::exec;

namespace {

constexpr std::uint64_t FnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t FnvPrime = 1099511628211ULL;

inline void hash(std::uint64_t &H, std::uint64_t V) {
  for (int Byte = 0; Byte < 8; ++Byte) {
    H ^= (V >> (Byte * 8)) & 0xFF;
    H *= FnvPrime;
  }
}

std::uint8_t annotationBit(ir::Opcode Op) {
  switch (Op) {
  case ir::Opcode::SLoop:
    return AnnoSLoop;
  case ir::Opcode::Eoi:
    return AnnoEoi;
  case ir::Opcode::ELoop:
    return AnnoELoop;
  case ir::Opcode::LwlAnno:
  case ir::Opcode::SwlAnno:
    return AnnoLocal;
  case ir::Opcode::ReadStats:
    return AnnoReadStats;
  default:
    return AnnoNone;
  }
}

TermClass classifyTerminator(ir::Opcode Op) {
  switch (Op) {
  case ir::Opcode::Br:
    return TermClass::Jump;
  case ir::Opcode::CondBr:
    return TermClass::CondJump;
  case ir::Opcode::Ret:
    return TermClass::Return;
  default:
    JRPM_UNREACHABLE("block terminator is not a terminator opcode");
  }
}

} // namespace

std::uint64_t exec::moduleDigest(const ir::Module &M) {
  std::uint64_t H = FnvOffset;
  hash(H, M.EntryFunction);
  hash(H, M.Functions.size());
  for (const ir::Function &F : M.Functions) {
    hash(H, F.NumParams);
    hash(H, F.NumRegs);
    hash(H, F.Blocks.size());
    for (const ir::BasicBlock &BB : F.Blocks) {
      hash(H, BB.Instructions.size());
      for (const ir::Instruction &I : BB.Instructions) {
        hash(H, static_cast<std::uint64_t>(I.Op));
        hash(H, (std::uint64_t(I.Dst) << 32) | (std::uint64_t(I.A) << 16) |
                    I.B);
        hash(H, static_cast<std::uint64_t>(I.Imm));
        hash(H, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                     I.Imm2))
                 << 32) |
                    static_cast<std::uint32_t>(I.Pc));
      }
    }
  }
  return H;
}

CodeImage::CodeImage(const ir::Module &M) {
  Digest = moduleDigest(M);

  // Pass 1: lay out blocks and functions, assigning flat start PCs in
  // function/block order (the same order Module::finalize() numbers the
  // tracer PCs in).
  std::uint64_t Pc = 0;
  Funcs.reserve(M.Functions.size());
  for (std::uint32_t FI = 0; FI < M.Functions.size(); ++FI) {
    const ir::Function &F = M.Functions[FI];
    FuncDesc FD;
    FD.EntryPc = static_cast<FlatPc>(Pc);
    FD.NumRegs = F.NumRegs;
    FD.NumParams = F.NumParams;
    FD.FirstBlock = static_cast<std::uint32_t>(Blocks.size());
    FD.NumBlocks = F.numBlocks();
    for (std::uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
      const ir::BasicBlock &BB = F.Blocks[BI];
      if (!BB.hasTerminator())
        JRPM_FATAL("CodeImage: block without terminator (unverified IR)");
      BlockDesc BD;
      BD.StartPc = static_cast<FlatPc>(Pc);
      BD.NumInsts = static_cast<std::uint32_t>(BB.Instructions.size());
      BD.Func = FI;
      BD.BlockInFunc = BI;
      BD.Term = classifyTerminator(BB.Instructions.back().Op);
      for (const ir::Instruction &I : BB.Instructions)
        BD.Annotations |= annotationBit(I.Op);
      Blocks.push_back(BD);
      Pc += BB.Instructions.size();
    }
    Funcs.push_back(FD);
  }
  if (Pc > 0x7FFFFFFF)
    JRPM_FATAL("CodeImage: module exceeds the 2^31 instruction limit");

  // Pass 2: decode, resolving branch targets to flat PCs.
  Insts.reserve(Pc);
  InstBlock.reserve(Pc);
  for (std::uint32_t FI = 0; FI < M.Functions.size(); ++FI) {
    const ir::Function &F = M.Functions[FI];
    const FuncDesc &FD = Funcs[FI];
    for (std::uint32_t BI = 0; BI < F.Blocks.size(); ++BI) {
      const ir::BasicBlock &BB = F.Blocks[BI];
      bool First = true;
      for (const ir::Instruction &I : BB.Instructions) {
        DecodedInst D;
        D.Op = I.Op;
        D.Flags = First ? DecodedInst::BlockStartFlag : 0;
        D.Dst = I.Dst;
        D.A = I.A;
        D.B = I.B;
        D.Imm = I.Imm;
        D.Imm2 = I.Imm2;
        D.Pc = I.Pc;
        switch (I.Op) {
        case ir::Opcode::Br:
          D.Imm = Blocks[FD.FirstBlock + static_cast<std::uint32_t>(I.Imm)]
                      .StartPc;
          break;
        case ir::Opcode::CondBr:
          D.Imm = Blocks[FD.FirstBlock + static_cast<std::uint32_t>(I.Imm)]
                      .StartPc;
          D.Imm2 = static_cast<std::int32_t>(
              Blocks[FD.FirstBlock + static_cast<std::uint32_t>(I.Imm2)]
                  .StartPc);
          break;
        default:
          break;
        }
        Insts.push_back(D);
        InstBlock.push_back(FD.FirstBlock + BI);
        First = false;
      }
    }
  }
}

namespace {

/// LRU-bounded digest-memo cache. Entries carry their position in the
/// recency list; a hit splices the key to the front, an insert beyond
/// capacity drops the back. Evicting only unlinks the cache's reference —
/// consumers holding the shared_ptr keep their image alive.
struct ImageCache {
  struct Entry {
    std::shared_ptr<const CodeImage> Image;
    std::list<std::uint64_t>::iterator LruPos;
  };

  std::mutex Mu;
  std::unordered_map<std::uint64_t, Entry> Map;
  std::list<std::uint64_t> Lru; ///< front = most recently used
  std::size_t Capacity = CodeImage::DefaultCacheCapacity;
  ImageCacheStats Stats;

  void evictOverCapacity() {
    while (Map.size() > Capacity) {
      Map.erase(Lru.back());
      Lru.pop_back();
      ++Stats.Evictions;
    }
  }
};

ImageCache &cache() {
  static ImageCache C; // leaked-by-design process-lifetime cache
  return C;
}

} // namespace

std::shared_ptr<const CodeImage> CodeImage::getShared(const ir::Module &M) {
  std::uint64_t Key = moduleDigest(M);
  ImageCache &C = cache();
  {
    std::lock_guard<std::mutex> Lock(C.Mu);
    auto It = C.Map.find(Key);
    if (It != C.Map.end()) {
      ++C.Stats.Hits;
      C.Lru.splice(C.Lru.begin(), C.Lru, It->second.LruPos);
      return It->second.Image;
    }
  }
  // Build outside the lock: sweep jobs compile distinct workloads
  // concurrently, and a racing duplicate build of the same module is
  // harmless (last insert wins; both images are identical).
  auto Image = std::make_shared<const CodeImage>(M);
  std::lock_guard<std::mutex> Lock(C.Mu);
  ++C.Stats.Misses;
  auto It = C.Map.find(Key);
  if (It != C.Map.end()) {
    // Lost the build race; keep the incumbent and refresh its recency.
    C.Lru.splice(C.Lru.begin(), C.Lru, It->second.LruPos);
    return It->second.Image;
  }
  C.Lru.push_front(Key);
  C.Map[Key] = ImageCache::Entry{Image, C.Lru.begin()};
  C.evictOverCapacity();
  return Image;
}

ImageCacheStats CodeImage::cacheStats() {
  ImageCache &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  ImageCacheStats S = C.Stats;
  S.Entries = C.Map.size();
  S.Capacity = C.Capacity;
  return S;
}

std::size_t CodeImage::setCacheCapacity(std::size_t Capacity) {
  ImageCache &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  std::size_t Prev = C.Capacity;
  C.Capacity = Capacity ? Capacity : 1;
  C.evictOverCapacity();
  return Prev;
}

void CodeImage::clearCache() {
  ImageCache &C = cache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  C.Map.clear();
  C.Lru.clear();
  C.Capacity = DefaultCacheCapacity;
  C.Stats = ImageCacheStats();
}

void exec::exportImageCacheMetrics(metrics::Registry &R) {
  ImageCacheStats S = CodeImage::cacheStats();
  R.gauge("exec.image_cache.hits").peak(S.Hits);
  R.gauge("exec.image_cache.misses").peak(S.Misses);
  R.gauge("exec.image_cache.evictions").peak(S.Evictions);
  R.gauge("exec.image_cache.entries").set(S.Entries);
  R.gauge("exec.image_cache.capacity").set(S.Capacity);
}
