//===- exec/CodeImage.h - Flattened, pre-decoded execution image -----------==//
//
// The nested ir::Module layout (Functions -> Blocks -> Instructions over
// std::vector) is ideal for the analysis and transformation passes but
// costs the interpreters a three-level pointer chase per simulated
// instruction. A CodeImage is compiled once per module: every function's
// blocks are flattened into one contiguous DecodedInst array addressed by
// an absolute flat program counter, branch and call targets are resolved
// to flat PCs at build time, and per-block / per-function metadata moves
// into dense side tables consulted only at control-flow boundaries. The
// hot loop of ExecContext is then a single indexed load plus a switch on
// the opcode tag.
//
// Flattening is purely a layout change: instruction order, operand fields
// and the tracer's module-global Pc values are preserved exactly, so every
// consumer (sequential machine, Hydra TLS cores, tracer event emission)
// behaves bit-identically to the nested layout.
//
// Images are immutable once built. getShared() memoizes them by a content
// digest of the source module, so sweep jobs that rebuild the same
// workload at the same annotation level share one image across threads.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_EXEC_CODEIMAGE_H
#define JRPM_EXEC_CODEIMAGE_H

#include "ir/IR.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace jrpm {
namespace metrics {
class Registry;
} // namespace metrics
} // namespace jrpm

namespace jrpm {
namespace exec {

/// Absolute instruction index into a CodeImage. For a finalized module the
/// flat PC of an instruction equals its ir::Instruction::Pc (both number
/// instructions in function/block order), but the image does not rely on
/// the module having been finalized.
using FlatPc = std::uint32_t;

/// How a basic block transfers control (per-block metadata; the decoded
/// terminator itself carries the resolved targets).
enum class TermClass : std::uint8_t { Jump, CondJump, Return };

/// Bitmask of annotation opcodes present in a block (per-block metadata
/// for consumers that want to skip annotation-free regions cheaply).
enum AnnoMask : std::uint8_t {
  AnnoNone = 0,
  AnnoSLoop = 1 << 0,
  AnnoEoi = 1 << 1,
  AnnoELoop = 1 << 2,
  AnnoLocal = 1 << 3,
  AnnoReadStats = 1 << 4,
};

/// One pre-decoded instruction. Field meaning matches ir::Instruction
/// except that control-flow targets are resolved to flat PCs:
///   Br:     Imm  = target flat PC
///   CondBr: Imm  = taken flat PC, Imm2 = fall-through flat PC
///   Call:   Imm  = callee function index (entry PC via FuncDesc)
/// Everything else keeps its original operands. Pc is the module-global
/// tracer PC copied verbatim so event emission is unchanged.
struct DecodedInst {
  ir::Opcode Op = ir::Opcode::Nop;
  std::uint8_t Flags = 0;
  std::uint16_t Dst = ir::NoReg;
  std::uint16_t A = ir::NoReg;
  std::uint16_t B = ir::NoReg;
  std::int64_t Imm = 0;
  std::int32_t Imm2 = 0;
  std::int32_t Pc = -1;

  static constexpr std::uint8_t BlockStartFlag = 1;
  bool isBlockStart() const { return Flags & BlockStartFlag; }
};
static_assert(sizeof(DecodedInst) == 24, "hot struct stays 24 bytes");

/// Per-block metadata (cold; consulted at control-flow boundaries only).
struct BlockDesc {
  FlatPc StartPc = 0;
  std::uint32_t NumInsts = 0;
  std::uint32_t Func = 0;
  std::uint32_t BlockInFunc = 0;
  TermClass Term = TermClass::Return;
  std::uint8_t Annotations = AnnoNone;
};

/// Per-function metadata: entry PC plus the frame geometry the Call path
/// needs, in one compact record instead of the full ir::Function.
struct FuncDesc {
  FlatPc EntryPc = 0;
  std::uint32_t NumRegs = 0;
  std::uint32_t NumParams = 0;
  std::uint32_t FirstBlock = 0; ///< global block ordinal of block 0
  std::uint32_t NumBlocks = 0;
};

/// Image-cache counters (diagnostics for benches and the serve daemon's
/// stats endpoint; not exported as run metrics to keep the golden exports
/// stable).
struct ImageCacheStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Evictions = 0;
  std::uint64_t Entries = 0;  ///< images currently resident
  std::uint64_t Capacity = 0; ///< LRU bound
};

class CodeImage {
public:
  CodeImage() = default;

  /// Compiles \p M into a flat image. Every block must carry a terminator
  /// (the IR verifier's contract); violations abort.
  explicit CodeImage(const ir::Module &M);

  // --- Hot-path access ----------------------------------------------------
  const DecodedInst *insts() const { return Insts.data(); }
  std::uint32_t numInsts() const {
    return static_cast<std::uint32_t>(Insts.size());
  }
  const DecodedInst &inst(FlatPc Pc) const {
    assert(Pc < Insts.size() && "flat PC out of range");
    return Insts[Pc];
  }
  bool isBlockStart(FlatPc Pc) const { return inst(Pc).isBlockStart(); }

  const FuncDesc &func(std::uint32_t F) const {
    assert(F < Funcs.size() && "function index out of range");
    return Funcs[F];
  }
  std::uint32_t numFuncs() const {
    return static_cast<std::uint32_t>(Funcs.size());
  }

  // --- Cold metadata (control-flow boundaries, diagnostics) ---------------
  const BlockDesc &blockDesc(std::uint32_t GlobalBlock) const {
    assert(GlobalBlock < Blocks.size() && "block ordinal out of range");
    return Blocks[GlobalBlock];
  }
  std::uint32_t numBlocks() const {
    return static_cast<std::uint32_t>(Blocks.size());
  }
  /// Global block ordinal containing \p Pc.
  std::uint32_t blockOrdinalOf(FlatPc Pc) const {
    assert(Pc < InstBlock.size() && "flat PC out of range");
    return InstBlock[Pc];
  }
  const BlockDesc &blockAt(FlatPc Pc) const {
    return Blocks[blockOrdinalOf(Pc)];
  }
  std::uint32_t funcOf(FlatPc Pc) const { return blockAt(Pc).Func; }
  std::uint32_t blockOf(FlatPc Pc) const { return blockAt(Pc).BlockInFunc; }

  /// Flat PC of the first instruction of \p Block in \p Func.
  FlatPc blockStart(std::uint32_t Func, std::uint32_t Block) const {
    const FuncDesc &F = func(Func);
    assert(Block < F.NumBlocks && "block index out of range");
    return Blocks[F.FirstBlock + Block].StartPc;
  }
  FlatPc entry(std::uint32_t Func) const { return func(Func).EntryPc; }

  /// Content digest of the source module this image was compiled from.
  std::uint64_t digest() const { return Digest; }

  // --- Shared image cache -------------------------------------------------
  /// Returns the memoized image for \p M, building it on first use. Keyed
  /// by moduleDigest(M); thread-safe (sweep jobs race on it by design).
  /// The cache is LRU-bounded (see setCacheCapacity): a long-lived process
  /// serving thousands of distinct modules evicts the coldest image
  /// instead of growing without limit. Evicted images stay alive for as
  /// long as a consumer still holds the shared_ptr.
  static std::shared_ptr<const CodeImage> getShared(const ir::Module &M);
  static ImageCacheStats cacheStats();
  /// Default LRU bound: generous for every sweep matrix we run (52
  /// workload x level combinations) while capping a daemon's residency.
  static constexpr std::size_t DefaultCacheCapacity = 256;
  /// Rebounds the LRU (minimum 1), evicting oldest entries immediately if
  /// the cache is over the new capacity. Returns the previous capacity.
  static std::size_t setCacheCapacity(std::size_t Capacity);
  /// Drops every memoized image and resets stats and capacity
  /// (test/bench isolation).
  static void clearCache();

private:
  std::vector<DecodedInst> Insts;
  std::vector<std::uint32_t> InstBlock; ///< global block ordinal per PC
  std::vector<BlockDesc> Blocks;
  std::vector<FuncDesc> Funcs;
  std::uint64_t Digest = 0;
};

/// FNV-1a content digest over everything execution depends on: function
/// geometry, block sizes and every instruction field (including the tracer
/// Pc). Structurally identical modules — e.g. the same workload annotated
/// at the same level by two sweep jobs — digest equal and share an image.
std::uint64_t moduleDigest(const ir::Module &M);

/// Snapshots the shared image cache's counters into \p R as gauges
/// ("exec.image_cache.hits" / ".misses" / ".evictions" / ".entries" /
/// ".capacity") — the daemon-hygiene view of the cache. Gauges, not
/// counters: the snapshot is cumulative process state, not a per-run
/// delta, and gauge merge (max) keeps repeated snapshots monotone.
void exportImageCacheMetrics(metrics::Registry &R);

} // namespace exec
} // namespace jrpm

#endif // JRPM_EXEC_CODEIMAGE_H
