//===- interp/Machine.cpp -------------------------------------------------==//

#include "interp/Machine.h"

#include "interp/EventBlock.h"
#include "metrics/Metrics.h"
#include "metrics/Timeline.h"
#include "support/Compiler.h"

using namespace jrpm;
using namespace jrpm::interp;

RunResult Machine::run(const std::vector<std::uint64_t> &Args) {
  const std::uint64_t StartClock = Clock;
  if (Timeline)
    Timeline->begin(TimelineTrack, "run." + MetricsPhase, StartClock);
  Ctx.start(M.EntryFunction, Args);
  // Watchdog against runaway programs: generous for our largest workloads.
  constexpr std::uint64_t MaxCycles = 40ull * 1000 * 1000 * 1000;
  if (!Dispatcher) {
    // Nothing to consult between blocks: stay inside the interpreter's
    // dispatch loop for the whole run. The context tests the watchdog at
    // block starts, exactly where the stepBlock() loop below would.
    Clock += Ctx.run(Port, Sink, Clock, MaxCycles);
    if (Clock > MaxCycles)
      JRPM_FATAL("simulation exceeded the cycle watchdog");
  }
  // Block-granular loop: start(), stepBlock(), and dispatcher repositioning
  // all leave the context at a block start, so the dispatcher check runs
  // once per block instead of once per instruction.
  while (!Ctx.finished()) {
    assert(Ctx.atBlockStart() && "run loop invariant");
    if (Dispatcher && Dispatcher->onBlockStart(Ctx, *this))
      continue;
    Clock += Ctx.stepBlock(Port, Sink, Clock);
    if (Clock > MaxCycles)
      JRPM_FATAL("simulation exceeded the cycle watchdog");
  }
  // The final return's call-return marker may still be deferred in a
  // batched sink's event block; flush it before anyone reads results.
  if (Sink)
    drainPending(*Sink, Sink->eventBlock());
  RunResult R;
  R.Cycles = Clock;
  R.Instructions = Ctx.instructionsExecuted();
  R.ReturnValue = Ctx.returnValue();
  R.Loads = Port.loads();
  R.Stores = Port.stores();
  R.L1Misses = Port.misses();
  if (Timeline)
    Timeline->end(TimelineTrack, Clock);
  if (Metrics) {
    // Exported once per run from the totals above, so the hot loop never
    // touches the registry.
    const std::string P = "interp." + MetricsPhase + ".";
    Metrics->counter(P + "cycles").inc(Clock - StartClock);
    Metrics->counter(P + "instructions").inc(R.Instructions);
    Metrics->counter(P + "loads").inc(R.Loads);
    Metrics->counter(P + "stores").inc(R.Stores);
    Metrics->counter(P + "l1_misses").inc(R.L1Misses);
  }
  return R;
}
