//===- interp/Machine.cpp -------------------------------------------------==//

#include "interp/Machine.h"

#include "support/Compiler.h"

using namespace jrpm;
using namespace jrpm::interp;

RunResult Machine::run(const std::vector<std::uint64_t> &Args) {
  Ctx.start(M.EntryFunction, Args);
  // Watchdog against runaway programs: generous for our largest workloads.
  constexpr std::uint64_t MaxCycles = 40ull * 1000 * 1000 * 1000;
  while (!Ctx.finished()) {
    if (Dispatcher && Ctx.atBlockStart() && Dispatcher->onBlockStart(Ctx, *this))
      continue;
    Clock += Ctx.step(Port, Sink, Clock);
    if (Clock > MaxCycles)
      JRPM_FATAL("simulation exceeded the cycle watchdog");
  }
  RunResult R;
  R.Cycles = Clock;
  R.Instructions = Ctx.instructionsExecuted();
  R.ReturnValue = Ctx.returnValue();
  R.Loads = Port.loads();
  R.Stores = Port.stores();
  R.L1Misses = Port.misses();
  return R;
}
