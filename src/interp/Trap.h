//===- interp/Trap.h - Deterministic execution traps -----------------------==//
//
// A simulated program that executes an undefined operation (integer divide
// or remainder by zero) must end its run the same way in every build mode.
// The interpreters throw a TrapError instead of relying on an assert that
// vanishes under NDEBUG and leaves real UB behind: the sweep engine's
// failure isolation folds the throw into a failed job, and direct callers
// get a typed, testable error.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_INTERP_TRAP_H
#define JRPM_INTERP_TRAP_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace jrpm {
namespace interp {

enum class TrapKind : std::uint8_t {
  DivideByZero,
  RemainderByZero,
};

inline const char *trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::DivideByZero:
    return "integer division by zero";
  case TrapKind::RemainderByZero:
    return "integer remainder by zero";
  }
  return "unknown trap";
}

/// Thrown by ExecContext when the simulated program traps. Carries the
/// trap kind and the module-global PC of the faulting instruction (-1 when
/// the module was never finalized).
class TrapError : public std::runtime_error {
public:
  TrapError(TrapKind Kind, std::int32_t Pc)
      : std::runtime_error(std::string(trapKindName(Kind)) + " at pc " +
                           std::to_string(Pc)),
        Kind(Kind), FaultPc(Pc) {}

  TrapKind kind() const { return Kind; }
  std::int32_t pc() const { return FaultPc; }

private:
  TrapKind Kind;
  std::int32_t FaultPc;
};

} // namespace interp
} // namespace jrpm

#endif // JRPM_INTERP_TRAP_H
