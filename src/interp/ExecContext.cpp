//===- interp/ExecContext.cpp ---------------------------------------------==//

#include "interp/ExecContext.h"

#include "interp/EventBlock.h"
#include "interp/Trap.h"
#include "support/Bits.h"
#include "support/Compiler.h"

#include <cassert>
#include <cmath>

using namespace jrpm;
using namespace jrpm::interp;
using jrpm::bits::asF;
using jrpm::bits::asI;
using jrpm::bits::asU;

void ExecContext::start(std::uint32_t Func,
                        const std::vector<std::uint64_t> &Args) {
  const exec::FuncDesc &F = Image.func(Func);
  assert(Args.size() == F.NumParams && "wrong argument count");
  Frame Fr;
  Fr.Pc = F.EntryPc;
  Fr.Activation = NextActivation++;
  Fr.Regs.assign(F.NumRegs, 0);
  for (std::uint32_t I = 0; I < Args.size(); ++I)
    Fr.Regs[I] = Args[I];
  Frames.clear();
  Frames.push_back(std::move(Fr));
  Executed = 0;
}

void ExecContext::startAt(std::uint32_t Func, std::uint32_t Block,
                          std::vector<std::uint64_t> Regs) {
  assert(Regs.size() >= Image.func(Func).NumRegs &&
         "register file too small");
  Frame Fr;
  Fr.Pc = Image.blockStart(Func, Block);
  Fr.Activation = NextActivation++;
  Fr.Regs = std::move(Regs);
  Frames.clear();
  Frames.push_back(std::move(Fr));
}

std::vector<std::uint64_t>
ExecContext::resetAtPc(exec::FlatPc Pc, std::vector<std::uint64_t> Regs) {
  assert(Image.isBlockStart(Pc) && "resetAtPc targets a block start");
  assert(Regs.size() >= Image.func(Image.funcOf(Pc)).NumRegs &&
         "register file too small");
  std::vector<std::uint64_t> Recycled;
  if (Frames.size() == 1) {
    // Reuse the frame in place: no vector churn on the spawn-per-commit
    // path of the TLS engine.
    Frame &F = Frames.back();
    Recycled = std::move(F.Regs);
    F.Pc = Pc;
    F.Activation = NextActivation++;
    F.RetDst = ir::NoReg;
    F.Regs = std::move(Regs);
    F.StagedArgs.clear();
    return Recycled;
  }
  if (!Frames.empty())
    Recycled = std::move(Frames.front().Regs);
  Frame Fr;
  Fr.Pc = Pc;
  Fr.Activation = NextActivation++;
  Fr.Regs = std::move(Regs);
  Frames.clear();
  Frames.push_back(std::move(Fr));
  return Recycled;
}

template <ExecContext::StepMode Mode>
std::uint64_t ExecContext::stepImpl(MemoryPort &Mem, TraceSink *Sink,
                                    std::uint64_t Now,
                                    std::uint64_t MaxCycles) {
  assert(!Frames.empty() && "stepping a finished context");
  const exec::DecodedInst *Insts = Image.insts();
  const sim::CostModel &Costs = Cfg.Costs;
  std::uint64_t Total = 0;
  // The program counter, register-file pointer, and retired-instruction
  // counter are carried in locals; Frame::Pc and Executed are written back
  // only at frame changes, step boundaries, and traps, so the
  // per-instruction path never touches memory the compiler cannot keep in
  // registers across the opaque Mem/Sink calls.
  Frame *F = &Frames.back();
  exec::FlatPc Pc = F->Pc;
  std::uint64_t *Regs = F->Regs.data();
  // Batched sinks expose an EventBlock; zero-cost events are appended to it
  // and drained in blocks, control events drain-then-dispatch (see
  // EventBlock.h for the discipline that keeps this bit-identical).
  EventBlock *Blk = Sink ? Sink->eventBlock() : nullptr;

#if defined(__GNUC__) || defined(__clang__)
  std::uint64_t Exec = Executed;
  const exec::DecodedInst *I = nullptr;
  std::uint32_t Cost = 0;

  // Token-threaded dispatch: the pre-decoded opcode indexes a label table
  // and every handler ends in its own indirect jump, so the branch
  // predictor sees one jump site per handler instead of a single shared
  // dispatch point that mispredicts on almost every opcode change.
  static const void *const JumpTable[] = {
      &&Op_Add,     &&Op_Sub,     &&Op_Mul,     &&Op_Div,     &&Op_Rem,
      &&Op_And,     &&Op_Or,      &&Op_Xor,     &&Op_Shl,     &&Op_Shr,
      &&Op_AddImm,  &&Op_FAdd,    &&Op_FSub,    &&Op_FMul,    &&Op_FDiv,
      &&Op_FNeg,    &&Op_FSqrt,   &&Op_IToF,    &&Op_FToI,    &&Op_CmpEQ,
      &&Op_CmpNE,   &&Op_CmpLT,   &&Op_CmpLE,   &&Op_CmpGT,   &&Op_CmpGE,
      &&Op_FCmpEQ,  &&Op_FCmpLT,  &&Op_FCmpLE,  &&Op_ConstI,  &&Op_ConstF,
      &&Op_Mov,     &&Op_Load,    &&Op_Store,   &&Op_Alloc,   &&Op_Br,
      &&Op_CondBr,  &&Op_Call,    &&Op_Arg,     &&Op_Ret,     &&Op_SLoop,
      &&Op_Eoi,     &&Op_ELoop,   &&Op_LwlAnno, &&Op_SwlAnno,
      &&Op_ReadStats, &&Op_Nop,
  };
  static_assert(sizeof(JumpTable) / sizeof(JumpTable[0]) ==
                    static_cast<std::size_t>(ir::Opcode::Nop) + 1,
                "jump table must cover every opcode in enum order");

#define JRPM_RETURN(Val)                                                     \
  do {                                                                       \
    Executed = Exec;                                                         \
    return (Val);                                                            \
  } while (0)

#define JRPM_FETCH()                                                         \
  do {                                                                       \
    I = &Insts[Pc];                                                          \
    ++Exec;                                                                  \
    Cost = Costs.Basic;                                                      \
    goto *JumpTable[static_cast<std::uint8_t>(I->Op)];                       \
  } while (0)

#define JRPM_NEXT()                                                          \
  do {                                                                       \
    Total += Cost;                                                           \
    if constexpr (Mode == StepMode::Single) {                                \
      F->Pc = Pc;                                                            \
      JRPM_RETURN(Total);                                                    \
    }                                                                        \
    Now += Cost;                                                             \
    if (Insts[Pc].Flags & exec::DecodedInst::BlockStartFlag) {               \
      if constexpr (Mode == StepMode::Block) {                               \
        F->Pc = Pc;                                                          \
        JRPM_RETURN(Total);                                                  \
      } else if (Now > MaxCycles) { /* budget test once per block */         \
        F->Pc = Pc;                                                          \
        JRPM_RETURN(Total);                                                  \
      }                                                                      \
    }                                                                        \
    JRPM_FETCH();                                                            \
  } while (0)

  JRPM_FETCH();

Op_Add:
  Regs[I->Dst] = Regs[I->A] + Regs[I->B];
  ++Pc;
  JRPM_NEXT();
Op_Sub:
  Regs[I->Dst] = Regs[I->A] - Regs[I->B];
  ++Pc;
  JRPM_NEXT();
Op_Mul:
  Regs[I->Dst] = Regs[I->A] * Regs[I->B];
  ++Pc;
  JRPM_NEXT();
Op_Div: {
  std::int64_t D = asI(Regs[I->B]);
  if (D == 0) {
    F->Pc = Pc; // park the context on the faulting instruction
    Executed = Exec;
    throw TrapError(TrapKind::DivideByZero, I->Pc);
  }
  Regs[I->Dst] = static_cast<std::uint64_t>(asI(Regs[I->A]) / D);
  Cost = Costs.IntDiv;
  ++Pc;
  JRPM_NEXT();
}
Op_Rem: {
  std::int64_t D = asI(Regs[I->B]);
  if (D == 0) {
    F->Pc = Pc;
    Executed = Exec;
    throw TrapError(TrapKind::RemainderByZero, I->Pc);
  }
  Regs[I->Dst] = static_cast<std::uint64_t>(asI(Regs[I->A]) % D);
  Cost = Costs.IntDiv;
  ++Pc;
  JRPM_NEXT();
}
Op_And:
  Regs[I->Dst] = Regs[I->A] & Regs[I->B];
  ++Pc;
  JRPM_NEXT();
Op_Or:
  Regs[I->Dst] = Regs[I->A] | Regs[I->B];
  ++Pc;
  JRPM_NEXT();
Op_Xor:
  Regs[I->Dst] = Regs[I->A] ^ Regs[I->B];
  ++Pc;
  JRPM_NEXT();
Op_Shl:
  Regs[I->Dst] = Regs[I->A] << (Regs[I->B] & 63);
  ++Pc;
  JRPM_NEXT();
Op_Shr:
  Regs[I->Dst] =
      static_cast<std::uint64_t>(asI(Regs[I->A]) >> (Regs[I->B] & 63));
  ++Pc;
  JRPM_NEXT();
Op_AddImm:
  Regs[I->Dst] = Regs[I->A] + static_cast<std::uint64_t>(I->Imm);
  ++Pc;
  JRPM_NEXT();
Op_FAdd:
  Regs[I->Dst] = asU(asF(Regs[I->A]) + asF(Regs[I->B]));
  ++Pc;
  JRPM_NEXT();
Op_FSub:
  Regs[I->Dst] = asU(asF(Regs[I->A]) - asF(Regs[I->B]));
  ++Pc;
  JRPM_NEXT();
Op_FMul:
  Regs[I->Dst] = asU(asF(Regs[I->A]) * asF(Regs[I->B]));
  ++Pc;
  JRPM_NEXT();
Op_FDiv:
  Regs[I->Dst] = asU(asF(Regs[I->A]) / asF(Regs[I->B]));
  Cost = Costs.FloatDiv;
  ++Pc;
  JRPM_NEXT();
Op_FNeg:
  Regs[I->Dst] = asU(-asF(Regs[I->A]));
  ++Pc;
  JRPM_NEXT();
Op_FSqrt:
  Regs[I->Dst] = asU(std::sqrt(asF(Regs[I->A])));
  Cost = Costs.FloatSqrt;
  ++Pc;
  JRPM_NEXT();
Op_IToF:
  Regs[I->Dst] = asU(static_cast<double>(asI(Regs[I->A])));
  ++Pc;
  JRPM_NEXT();
Op_FToI:
  Regs[I->Dst] =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(asF(Regs[I->A])));
  ++Pc;
  JRPM_NEXT();
Op_CmpEQ:
  Regs[I->Dst] = Regs[I->A] == Regs[I->B];
  ++Pc;
  JRPM_NEXT();
Op_CmpNE:
  Regs[I->Dst] = Regs[I->A] != Regs[I->B];
  ++Pc;
  JRPM_NEXT();
Op_CmpLT:
  Regs[I->Dst] = asI(Regs[I->A]) < asI(Regs[I->B]);
  ++Pc;
  JRPM_NEXT();
Op_CmpLE:
  Regs[I->Dst] = asI(Regs[I->A]) <= asI(Regs[I->B]);
  ++Pc;
  JRPM_NEXT();
Op_CmpGT:
  Regs[I->Dst] = asI(Regs[I->A]) > asI(Regs[I->B]);
  ++Pc;
  JRPM_NEXT();
Op_CmpGE:
  Regs[I->Dst] = asI(Regs[I->A]) >= asI(Regs[I->B]);
  ++Pc;
  JRPM_NEXT();
Op_FCmpEQ:
  Regs[I->Dst] = asF(Regs[I->A]) == asF(Regs[I->B]);
  ++Pc;
  JRPM_NEXT();
Op_FCmpLT:
  Regs[I->Dst] = asF(Regs[I->A]) < asF(Regs[I->B]);
  ++Pc;
  JRPM_NEXT();
Op_FCmpLE:
  Regs[I->Dst] = asF(Regs[I->A]) <= asF(Regs[I->B]);
  ++Pc;
  JRPM_NEXT();
Op_ConstI:
Op_ConstF:
  Regs[I->Dst] = static_cast<std::uint64_t>(I->Imm);
  ++Pc;
  JRPM_NEXT();
Op_Mov:
  Regs[I->Dst] = Regs[I->A];
  ++Pc;
  JRPM_NEXT();
Op_Load: {
  std::uint64_t Ea = static_cast<std::uint64_t>(I->Imm);
  if (I->A != ir::NoReg)
    Ea += Regs[I->A];
  if (I->B != ir::NoReg)
    Ea += Regs[I->B];
  std::uint32_t Addr = static_cast<std::uint32_t>(Ea);
  std::uint32_t Extra = 0;
  Regs[I->Dst] = Mem.load(Addr, Extra);
  Cost += Extra;
  if (Sink)
    Cost += emitHeapLoad(*Sink, Blk, Addr, Now, I->Pc);
  ++Pc;
  JRPM_NEXT();
}
Op_Store: {
  std::uint64_t Ea = static_cast<std::uint64_t>(I->Imm);
  if (I->A != ir::NoReg)
    Ea += Regs[I->A];
  if (I->B != ir::NoReg)
    Ea += Regs[I->B];
  std::uint32_t Addr = static_cast<std::uint32_t>(Ea);
  std::uint32_t Extra = 0;
  Mem.store(Addr, Regs[I->Dst], Extra);
  Cost += Extra;
  if (Sink)
    Cost += emitHeapStore(*Sink, Blk, Addr, Now, I->Pc);
  ++Pc;
  JRPM_NEXT();
}
Op_Alloc: {
  std::uint32_t Count = I->A != ir::NoReg
                            ? static_cast<std::uint32_t>(Regs[I->A])
                            : static_cast<std::uint32_t>(I->Imm);
  Regs[I->Dst] = Mem.allocWords(Count);
  ++Pc;
  JRPM_NEXT();
}
Op_Br:
  Pc = static_cast<exec::FlatPc>(I->Imm); // pre-resolved target
  JRPM_NEXT();
Op_CondBr:
  Pc = Regs[I->A] != 0 ? static_cast<exec::FlatPc>(I->Imm)
                       : static_cast<exec::FlatPc>(I->Imm2);
  JRPM_NEXT();
Op_Arg:
  F->StagedArgs.push_back(Regs[I->A]);
  ++Pc;
  JRPM_NEXT();
Op_Call: {
  std::uint32_t Callee = static_cast<std::uint32_t>(I->Imm);
  const exec::FuncDesc &CF = Image.func(Callee);
  assert(F->StagedArgs.size() == CF.NumParams && "bad call arity");
  Frame NewF;
  NewF.Pc = CF.EntryPc;
  NewF.Activation = NextActivation++;
  NewF.RetDst = I->Dst;
  NewF.Regs.assign(CF.NumRegs, 0);
  for (std::uint32_t A = 0; A < F->StagedArgs.size(); ++A)
    NewF.Regs[A] = F->StagedArgs[A];
  F->StagedArgs.clear();
  F->Pc = Pc + 1; // resume point after the call
  Cost = Costs.CallOverhead;
  if (Sink)
    emitCallSite(*Sink, Blk, I->Pc, Now);
  Frames.push_back(std::move(NewF)); // invalidates F
  F = &Frames.back();
  Pc = F->Pc;
  Total += Cost;
  // The callee entry is a function's first block start, so block-granular
  // stepping stops here just like single stepping does.
  assert(Insts[Pc].Flags & exec::DecodedInst::BlockStartFlag);
  if constexpr (Mode == StepMode::Run) {
    Regs = F->Regs.data();
    Now += Cost;
    if (Now > MaxCycles)
      JRPM_RETURN(Total); // F->Pc already holds the callee entry
    JRPM_FETCH();
  }
  JRPM_RETURN(Total);
}
Op_Ret: {
  std::uint64_t Value = I->A != ir::NoReg ? Regs[I->A] : 0;
  if (Sink) {
    drainPending(*Sink, Blk);
    Sink->onReturn(F->Activation);
    emitCallReturn(*Sink, Blk, Now);
  }
  std::uint16_t RetDst = F->RetDst;
  Frames.pop_back();
  Cost = Costs.CallOverhead;
  Total += Cost;
  if (Frames.empty()) {
    RetVal = Value;
    JRPM_RETURN(Total);
  }
  F = &Frames.back();
  Pc = F->Pc; // the caller parked its resume PC before the call
  Regs = F->Regs.data();
  if (RetDst != ir::NoReg)
    Regs[RetDst] = Value;
  if constexpr (Mode == StepMode::Single)
    JRPM_RETURN(Total);
  Now += Cost;
  if (Insts[Pc].Flags & exec::DecodedInst::BlockStartFlag) {
    if constexpr (Mode == StepMode::Block)
      JRPM_RETURN(Total);
    else if (Now > MaxCycles)
      JRPM_RETURN(Total);
  }
  JRPM_FETCH();
}
// Annotation instructions cost one cycle by themselves (the nop they
// degrade to when the runtime disables a loop's tracing); the tracer
// charges the coprocessor interaction on top while it is listening.
Op_SLoop:
  if (Sink) {
    drainPending(*Sink, Blk);
    Cost += Sink->onLoopStart(static_cast<std::uint32_t>(I->Imm),
                              F->Activation, Now);
  }
  ++Pc;
  JRPM_NEXT();
Op_Eoi:
  if (Sink)
    Cost += emitLoopIter(*Sink, Blk, static_cast<std::uint32_t>(I->Imm), Now);
  ++Pc;
  JRPM_NEXT();
Op_ELoop:
  if (Sink) {
    drainPending(*Sink, Blk);
    Cost += Sink->onLoopEnd(static_cast<std::uint32_t>(I->Imm), Now);
  }
  ++Pc;
  JRPM_NEXT();
Op_LwlAnno:
  Cost = Cfg.LocalAnnoCost;
  if (Sink)
    Cost += emitLocalLoad(*Sink, Blk, F->Activation, I->A, Now, I->Pc);
  ++Pc;
  JRPM_NEXT();
Op_SwlAnno:
  Cost = Cfg.LocalAnnoCost;
  if (Sink)
    Cost += emitLocalStore(*Sink, Blk, F->Activation, I->A, Now, I->Pc);
  ++Pc;
  JRPM_NEXT();
Op_ReadStats:
  if (Sink) {
    drainPending(*Sink, Blk);
    Cost += Sink->onReadStats(static_cast<std::uint32_t>(I->Imm), Now);
  }
  ++Pc;
  JRPM_NEXT();
Op_Nop:
  ++Pc;
  JRPM_NEXT();

#undef JRPM_NEXT
#undef JRPM_FETCH
#undef JRPM_RETURN

#else // portable fallback: shared-dispatch switch loop

  bool FrameChanged = false;
  for (;;) {
    const exec::DecodedInst &I = Insts[Pc];
    ++Executed;
    std::uint32_t Cost = Costs.Basic;
    auto R = [&](std::uint16_t Reg) -> std::uint64_t & { return Regs[Reg]; };

    switch (I.Op) {
    case ir::Opcode::Add:
      R(I.Dst) = R(I.A) + R(I.B);
      ++Pc;
      break;
    case ir::Opcode::Sub:
      R(I.Dst) = R(I.A) - R(I.B);
      ++Pc;
      break;
    case ir::Opcode::Mul:
      R(I.Dst) = R(I.A) * R(I.B);
      ++Pc;
      break;
    case ir::Opcode::Div: {
      std::int64_t D = asI(R(I.B));
      if (D == 0) {
        F->Pc = Pc;
        throw TrapError(TrapKind::DivideByZero, I.Pc);
      }
      R(I.Dst) = static_cast<std::uint64_t>(asI(R(I.A)) / D);
      Cost = Costs.IntDiv;
      ++Pc;
      break;
    }
    case ir::Opcode::Rem: {
      std::int64_t D = asI(R(I.B));
      if (D == 0) {
        F->Pc = Pc;
        throw TrapError(TrapKind::RemainderByZero, I.Pc);
      }
      R(I.Dst) = static_cast<std::uint64_t>(asI(R(I.A)) % D);
      Cost = Costs.IntDiv;
      ++Pc;
      break;
    }
    case ir::Opcode::And:
      R(I.Dst) = R(I.A) & R(I.B);
      ++Pc;
      break;
    case ir::Opcode::Or:
      R(I.Dst) = R(I.A) | R(I.B);
      ++Pc;
      break;
    case ir::Opcode::Xor:
      R(I.Dst) = R(I.A) ^ R(I.B);
      ++Pc;
      break;
    case ir::Opcode::Shl:
      R(I.Dst) = R(I.A) << (R(I.B) & 63);
      ++Pc;
      break;
    case ir::Opcode::Shr:
      R(I.Dst) = static_cast<std::uint64_t>(asI(R(I.A)) >> (R(I.B) & 63));
      ++Pc;
      break;
    case ir::Opcode::AddImm:
      R(I.Dst) = R(I.A) + static_cast<std::uint64_t>(I.Imm);
      ++Pc;
      break;
    case ir::Opcode::FAdd:
      R(I.Dst) = asU(asF(R(I.A)) + asF(R(I.B)));
      ++Pc;
      break;
    case ir::Opcode::FSub:
      R(I.Dst) = asU(asF(R(I.A)) - asF(R(I.B)));
      ++Pc;
      break;
    case ir::Opcode::FMul:
      R(I.Dst) = asU(asF(R(I.A)) * asF(R(I.B)));
      ++Pc;
      break;
    case ir::Opcode::FDiv:
      R(I.Dst) = asU(asF(R(I.A)) / asF(R(I.B)));
      Cost = Costs.FloatDiv;
      ++Pc;
      break;
    case ir::Opcode::FNeg:
      R(I.Dst) = asU(-asF(R(I.A)));
      ++Pc;
      break;
    case ir::Opcode::FSqrt:
      R(I.Dst) = asU(std::sqrt(asF(R(I.A))));
      Cost = Costs.FloatSqrt;
      ++Pc;
      break;
    case ir::Opcode::IToF:
      R(I.Dst) = asU(static_cast<double>(asI(R(I.A))));
      ++Pc;
      break;
    case ir::Opcode::FToI:
      R(I.Dst) = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(asF(R(I.A))));
      ++Pc;
      break;
    case ir::Opcode::CmpEQ:
      R(I.Dst) = R(I.A) == R(I.B);
      ++Pc;
      break;
    case ir::Opcode::CmpNE:
      R(I.Dst) = R(I.A) != R(I.B);
      ++Pc;
      break;
    case ir::Opcode::CmpLT:
      R(I.Dst) = asI(R(I.A)) < asI(R(I.B));
      ++Pc;
      break;
    case ir::Opcode::CmpLE:
      R(I.Dst) = asI(R(I.A)) <= asI(R(I.B));
      ++Pc;
      break;
    case ir::Opcode::CmpGT:
      R(I.Dst) = asI(R(I.A)) > asI(R(I.B));
      ++Pc;
      break;
    case ir::Opcode::CmpGE:
      R(I.Dst) = asI(R(I.A)) >= asI(R(I.B));
      ++Pc;
      break;
    case ir::Opcode::FCmpEQ:
      R(I.Dst) = asF(R(I.A)) == asF(R(I.B));
      ++Pc;
      break;
    case ir::Opcode::FCmpLT:
      R(I.Dst) = asF(R(I.A)) < asF(R(I.B));
      ++Pc;
      break;
    case ir::Opcode::FCmpLE:
      R(I.Dst) = asF(R(I.A)) <= asF(R(I.B));
      ++Pc;
      break;
    case ir::Opcode::ConstI:
    case ir::Opcode::ConstF:
      R(I.Dst) = static_cast<std::uint64_t>(I.Imm);
      ++Pc;
      break;
    case ir::Opcode::Mov:
      R(I.Dst) = R(I.A);
      ++Pc;
      break;
    case ir::Opcode::Load: {
      std::uint64_t Ea = static_cast<std::uint64_t>(I.Imm);
      if (I.A != ir::NoReg)
        Ea += R(I.A);
      if (I.B != ir::NoReg)
        Ea += R(I.B);
      std::uint32_t Addr = static_cast<std::uint32_t>(Ea);
      std::uint32_t Extra = 0;
      R(I.Dst) = Mem.load(Addr, Extra);
      Cost += Extra;
      if (Sink)
        Cost += emitHeapLoad(*Sink, Blk, Addr, Now, I.Pc);
      ++Pc;
      break;
    }
    case ir::Opcode::Store: {
      std::uint64_t Ea = static_cast<std::uint64_t>(I.Imm);
      if (I.A != ir::NoReg)
        Ea += R(I.A);
      if (I.B != ir::NoReg)
        Ea += R(I.B);
      std::uint32_t Addr = static_cast<std::uint32_t>(Ea);
      std::uint32_t Extra = 0;
      Mem.store(Addr, R(I.Dst), Extra);
      Cost += Extra;
      if (Sink)
        Cost += emitHeapStore(*Sink, Blk, Addr, Now, I.Pc);
      ++Pc;
      break;
    }
    case ir::Opcode::Alloc: {
      std::uint32_t Count = I.A != ir::NoReg
                                ? static_cast<std::uint32_t>(R(I.A))
                                : static_cast<std::uint32_t>(I.Imm);
      R(I.Dst) = Mem.allocWords(Count);
      ++Pc;
      break;
    }
    case ir::Opcode::Br:
      Pc = static_cast<exec::FlatPc>(I.Imm); // pre-resolved target
      break;
    case ir::Opcode::CondBr:
      Pc = R(I.A) != 0 ? static_cast<exec::FlatPc>(I.Imm)
                       : static_cast<exec::FlatPc>(I.Imm2);
      break;
    case ir::Opcode::Arg:
      F->StagedArgs.push_back(R(I.A));
      ++Pc;
      break;
    case ir::Opcode::Call: {
      std::uint32_t Callee = static_cast<std::uint32_t>(I.Imm);
      const exec::FuncDesc &CF = Image.func(Callee);
      assert(F->StagedArgs.size() == CF.NumParams && "bad call arity");
      Frame NewF;
      NewF.Pc = CF.EntryPc;
      NewF.Activation = NextActivation++;
      NewF.RetDst = I.Dst;
      NewF.Regs.assign(CF.NumRegs, 0);
      for (std::uint32_t A = 0; A < F->StagedArgs.size(); ++A)
        NewF.Regs[A] = F->StagedArgs[A];
      F->StagedArgs.clear();
      F->Pc = Pc + 1; // resume point after the call
      Cost = Costs.CallOverhead;
      if (Sink)
        emitCallSite(*Sink, Blk, I.Pc, Now);
      Frames.push_back(std::move(NewF)); // invalidates F; reloaded below
      FrameChanged = true;
      break;
    }
    case ir::Opcode::Ret: {
      std::uint64_t Value = I.A != ir::NoReg ? R(I.A) : 0;
      if (Sink) {
        drainPending(*Sink, Blk);
        Sink->onReturn(F->Activation);
        emitCallReturn(*Sink, Blk, Now);
      }
      std::uint16_t RetDst = F->RetDst;
      Frames.pop_back();
      if (Frames.empty())
        RetVal = Value;
      else if (RetDst != ir::NoReg)
        Frames.back().Regs[RetDst] = Value;
      Cost = Costs.CallOverhead;
      FrameChanged = true;
      break;
    }
    case ir::Opcode::SLoop:
      if (Sink) {
        drainPending(*Sink, Blk);
        Cost += Sink->onLoopStart(static_cast<std::uint32_t>(I.Imm),
                                  F->Activation, Now);
      }
      ++Pc;
      break;
    case ir::Opcode::Eoi:
      if (Sink)
        Cost +=
            emitLoopIter(*Sink, Blk, static_cast<std::uint32_t>(I.Imm), Now);
      ++Pc;
      break;
    case ir::Opcode::ELoop:
      if (Sink) {
        drainPending(*Sink, Blk);
        Cost += Sink->onLoopEnd(static_cast<std::uint32_t>(I.Imm), Now);
      }
      ++Pc;
      break;
    case ir::Opcode::LwlAnno:
      Cost = Cfg.LocalAnnoCost;
      if (Sink)
        Cost += emitLocalLoad(*Sink, Blk, F->Activation, I.A, Now, I.Pc);
      ++Pc;
      break;
    case ir::Opcode::SwlAnno:
      Cost = Cfg.LocalAnnoCost;
      if (Sink)
        Cost += emitLocalStore(*Sink, Blk, F->Activation, I.A, Now, I.Pc);
      ++Pc;
      break;
    case ir::Opcode::ReadStats:
      if (Sink) {
        drainPending(*Sink, Blk);
        Cost += Sink->onReadStats(static_cast<std::uint32_t>(I.Imm), Now);
      }
      ++Pc;
      break;
    case ir::Opcode::Nop:
      ++Pc;
      break;
    }

    Total += Cost;
    if (FrameChanged) {
      if (Frames.empty())
        return Total;
      F = &Frames.back();
      Pc = F->Pc;
      Regs = F->Regs.data();
      FrameChanged = false;
    }
    if constexpr (Mode == StepMode::Single) {
      F->Pc = Pc;
      return Total;
    }
    Now += Cost;
    if (Insts[Pc].Flags & exec::DecodedInst::BlockStartFlag) {
      if constexpr (Mode == StepMode::Block) {
        F->Pc = Pc;
        return Total;
      } else if (Now > MaxCycles) { // budget test once per block
        F->Pc = Pc;
        return Total;
      }
    }
  }

#endif
}

std::uint32_t ExecContext::step(MemoryPort &Mem, TraceSink *Sink,
                                std::uint64_t Now) {
  return static_cast<std::uint32_t>(
      stepImpl<StepMode::Single>(Mem, Sink, Now, 0));
}

std::uint32_t ExecContext::stepBlock(MemoryPort &Mem, TraceSink *Sink,
                                     std::uint64_t Now) {
  return static_cast<std::uint32_t>(
      stepImpl<StepMode::Block>(Mem, Sink, Now, 0));
}

std::uint64_t ExecContext::run(MemoryPort &Mem, TraceSink *Sink,
                               std::uint64_t Now, std::uint64_t MaxCycles) {
  return stepImpl<StepMode::Run>(Mem, Sink, Now, MaxCycles);
}
