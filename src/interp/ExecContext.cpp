//===- interp/ExecContext.cpp ---------------------------------------------==//

#include "interp/ExecContext.h"

#include "support/Compiler.h"

#include <bit>
#include <cassert>
#include <cmath>

using namespace jrpm;
using namespace jrpm::interp;

void ExecContext::start(std::uint32_t Func,
                        const std::vector<std::uint64_t> &Args) {
  const ir::Function &F = M.Functions[Func];
  assert(Args.size() == F.NumParams && "wrong argument count");
  Frame Fr;
  Fr.Func = Func;
  Fr.Activation = NextActivation++;
  Fr.Regs.assign(F.NumRegs, 0);
  for (std::uint32_t I = 0; I < Args.size(); ++I)
    Fr.Regs[I] = Args[I];
  Frames.clear();
  Frames.push_back(std::move(Fr));
  Executed = 0;
}

void ExecContext::startAt(std::uint32_t Func, std::uint32_t Block,
                          std::vector<std::uint64_t> Regs) {
  assert(Regs.size() >= M.Functions[Func].NumRegs && "register file too small");
  Frame Fr;
  Fr.Func = Func;
  Fr.Block = Block;
  Fr.Activation = NextActivation++;
  Fr.Regs = std::move(Regs);
  Frames.clear();
  Frames.push_back(std::move(Fr));
}

namespace {

double asF(std::uint64_t V) { return std::bit_cast<double>(V); }
std::uint64_t asU(double V) { return std::bit_cast<std::uint64_t>(V); }
std::int64_t asI(std::uint64_t V) { return static_cast<std::int64_t>(V); }

} // namespace

std::uint32_t ExecContext::step(MemoryPort &Mem, TraceSink *Sink,
                                std::uint64_t Now) {
  assert(!Frames.empty() && "stepping a finished context");
  Frame &F = Frames.back();
  const ir::Instruction &I =
      M.Functions[F.Func].Blocks[F.Block].Instructions[F.Instr];
  ++Executed;
  const sim::CostModel &Costs = Cfg.Costs;
  std::uint32_t Cost = Costs.Basic;
  auto R = [&](std::uint16_t Reg) -> std::uint64_t & { return F.Regs[Reg]; };
  auto Advance = [&] { ++F.Instr; };

  switch (I.Op) {
  case ir::Opcode::Add:
    R(I.Dst) = R(I.A) + R(I.B);
    Advance();
    break;
  case ir::Opcode::Sub:
    R(I.Dst) = R(I.A) - R(I.B);
    Advance();
    break;
  case ir::Opcode::Mul:
    R(I.Dst) = R(I.A) * R(I.B);
    Advance();
    break;
  case ir::Opcode::Div: {
    std::int64_t D = asI(R(I.B));
    assert(D != 0 && "integer division by zero");
    R(I.Dst) = static_cast<std::uint64_t>(asI(R(I.A)) / D);
    Cost = Costs.IntDiv;
    Advance();
    break;
  }
  case ir::Opcode::Rem: {
    std::int64_t D = asI(R(I.B));
    assert(D != 0 && "integer remainder by zero");
    R(I.Dst) = static_cast<std::uint64_t>(asI(R(I.A)) % D);
    Cost = Costs.IntDiv;
    Advance();
    break;
  }
  case ir::Opcode::And:
    R(I.Dst) = R(I.A) & R(I.B);
    Advance();
    break;
  case ir::Opcode::Or:
    R(I.Dst) = R(I.A) | R(I.B);
    Advance();
    break;
  case ir::Opcode::Xor:
    R(I.Dst) = R(I.A) ^ R(I.B);
    Advance();
    break;
  case ir::Opcode::Shl:
    R(I.Dst) = R(I.A) << (R(I.B) & 63);
    Advance();
    break;
  case ir::Opcode::Shr:
    R(I.Dst) = static_cast<std::uint64_t>(asI(R(I.A)) >> (R(I.B) & 63));
    Advance();
    break;
  case ir::Opcode::AddImm:
    R(I.Dst) = R(I.A) + static_cast<std::uint64_t>(I.Imm);
    Advance();
    break;
  case ir::Opcode::FAdd:
    R(I.Dst) = asU(asF(R(I.A)) + asF(R(I.B)));
    Advance();
    break;
  case ir::Opcode::FSub:
    R(I.Dst) = asU(asF(R(I.A)) - asF(R(I.B)));
    Advance();
    break;
  case ir::Opcode::FMul:
    R(I.Dst) = asU(asF(R(I.A)) * asF(R(I.B)));
    Advance();
    break;
  case ir::Opcode::FDiv:
    R(I.Dst) = asU(asF(R(I.A)) / asF(R(I.B)));
    Cost = Costs.FloatDiv;
    Advance();
    break;
  case ir::Opcode::FNeg:
    R(I.Dst) = asU(-asF(R(I.A)));
    Advance();
    break;
  case ir::Opcode::FSqrt:
    R(I.Dst) = asU(std::sqrt(asF(R(I.A))));
    Cost = Costs.FloatSqrt;
    Advance();
    break;
  case ir::Opcode::IToF:
    R(I.Dst) = asU(static_cast<double>(asI(R(I.A))));
    Advance();
    break;
  case ir::Opcode::FToI:
    R(I.Dst) = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(asF(R(I.A))));
    Advance();
    break;
  case ir::Opcode::CmpEQ:
    R(I.Dst) = R(I.A) == R(I.B);
    Advance();
    break;
  case ir::Opcode::CmpNE:
    R(I.Dst) = R(I.A) != R(I.B);
    Advance();
    break;
  case ir::Opcode::CmpLT:
    R(I.Dst) = asI(R(I.A)) < asI(R(I.B));
    Advance();
    break;
  case ir::Opcode::CmpLE:
    R(I.Dst) = asI(R(I.A)) <= asI(R(I.B));
    Advance();
    break;
  case ir::Opcode::CmpGT:
    R(I.Dst) = asI(R(I.A)) > asI(R(I.B));
    Advance();
    break;
  case ir::Opcode::CmpGE:
    R(I.Dst) = asI(R(I.A)) >= asI(R(I.B));
    Advance();
    break;
  case ir::Opcode::FCmpEQ:
    R(I.Dst) = asF(R(I.A)) == asF(R(I.B));
    Advance();
    break;
  case ir::Opcode::FCmpLT:
    R(I.Dst) = asF(R(I.A)) < asF(R(I.B));
    Advance();
    break;
  case ir::Opcode::FCmpLE:
    R(I.Dst) = asF(R(I.A)) <= asF(R(I.B));
    Advance();
    break;
  case ir::Opcode::ConstI:
    R(I.Dst) = static_cast<std::uint64_t>(I.Imm);
    Advance();
    break;
  case ir::Opcode::ConstF:
    R(I.Dst) = static_cast<std::uint64_t>(I.Imm);
    Advance();
    break;
  case ir::Opcode::Mov:
    R(I.Dst) = R(I.A);
    Advance();
    break;
  case ir::Opcode::Load: {
    std::uint64_t Ea = static_cast<std::uint64_t>(I.Imm);
    if (I.A != ir::NoReg)
      Ea += R(I.A);
    if (I.B != ir::NoReg)
      Ea += R(I.B);
    std::uint32_t Addr = static_cast<std::uint32_t>(Ea);
    std::uint32_t Extra = 0;
    R(I.Dst) = Mem.load(Addr, Extra);
    Cost += Extra;
    if (Sink)
      Cost += Sink->onHeapLoad(Addr, Now, I.Pc);
    Advance();
    break;
  }
  case ir::Opcode::Store: {
    std::uint64_t Ea = static_cast<std::uint64_t>(I.Imm);
    if (I.A != ir::NoReg)
      Ea += R(I.A);
    if (I.B != ir::NoReg)
      Ea += R(I.B);
    std::uint32_t Addr = static_cast<std::uint32_t>(Ea);
    std::uint32_t Extra = 0;
    Mem.store(Addr, R(I.Dst), Extra);
    Cost += Extra;
    if (Sink)
      Cost += Sink->onHeapStore(Addr, Now, I.Pc);
    Advance();
    break;
  }
  case ir::Opcode::Alloc: {
    std::uint32_t Count = I.A != ir::NoReg
                              ? static_cast<std::uint32_t>(R(I.A))
                              : static_cast<std::uint32_t>(I.Imm);
    R(I.Dst) = Mem.allocWords(Count);
    Advance();
    break;
  }
  case ir::Opcode::Br:
    F.Block = static_cast<std::uint32_t>(I.Imm);
    F.Instr = 0;
    break;
  case ir::Opcode::CondBr:
    F.Block = R(I.A) != 0 ? static_cast<std::uint32_t>(I.Imm)
                          : static_cast<std::uint32_t>(I.Imm2);
    F.Instr = 0;
    break;
  case ir::Opcode::Arg:
    F.StagedArgs.push_back(R(I.A));
    Advance();
    break;
  case ir::Opcode::Call: {
    std::uint32_t Callee = static_cast<std::uint32_t>(I.Imm);
    const ir::Function &CF = M.Functions[Callee];
    assert(F.StagedArgs.size() == CF.NumParams && "bad call arity");
    Frame NewF;
    NewF.Func = Callee;
    NewF.Activation = NextActivation++;
    NewF.RetDst = I.Dst;
    NewF.Regs.assign(CF.NumRegs, 0);
    for (std::uint32_t A = 0; A < F.StagedArgs.size(); ++A)
      NewF.Regs[A] = F.StagedArgs[A];
    F.StagedArgs.clear();
    Advance(); // resume point after the call
    Cost = Costs.CallOverhead;
    if (Sink)
      Sink->onCallSite(I.Pc, Now);
    Frames.push_back(std::move(NewF));
    break;
  }
  case ir::Opcode::Ret: {
    std::uint64_t Value = I.A != ir::NoReg ? R(I.A) : 0;
    if (Sink) {
      Sink->onReturn(F.Activation);
      Sink->onCallReturn(Now);
    }
    std::uint16_t RetDst = F.RetDst;
    Frames.pop_back();
    if (Frames.empty())
      RetVal = Value;
    else if (RetDst != ir::NoReg)
      Frames.back().Regs[RetDst] = Value;
    Cost = Costs.CallOverhead;
    break;
  }
  // Annotation instructions cost one cycle by themselves (the nop they
  // degrade to when the runtime disables a loop's tracing); the tracer
  // charges the coprocessor interaction on top while it is listening.
  case ir::Opcode::SLoop:
    Cost = Costs.Basic;
    if (Sink)
      Cost += Sink->onLoopStart(static_cast<std::uint32_t>(I.Imm),
                                F.Activation, Now);
    Advance();
    break;
  case ir::Opcode::Eoi:
    Cost = Costs.Basic;
    if (Sink)
      Cost += Sink->onLoopIter(static_cast<std::uint32_t>(I.Imm), Now);
    Advance();
    break;
  case ir::Opcode::ELoop:
    Cost = Costs.Basic;
    if (Sink)
      Cost += Sink->onLoopEnd(static_cast<std::uint32_t>(I.Imm), Now);
    Advance();
    break;
  case ir::Opcode::LwlAnno:
    Cost = Cfg.LocalAnnoCost;
    if (Sink)
      Cost += Sink->onLocalLoad(F.Activation, I.A, Now, I.Pc);
    Advance();
    break;
  case ir::Opcode::SwlAnno:
    Cost = Cfg.LocalAnnoCost;
    if (Sink)
      Cost += Sink->onLocalStore(F.Activation, I.A, Now, I.Pc);
    Advance();
    break;
  case ir::Opcode::ReadStats:
    Cost = Costs.Basic;
    if (Sink)
      Cost += Sink->onReadStats(static_cast<std::uint32_t>(I.Imm), Now);
    Advance();
    break;
  case ir::Opcode::Nop:
    Advance();
    break;
  }
  return Cost;
}
