//===- interp/EventBlock.h - Batched trace-event transport -----------------==//
//
// The hot path between the interpreter and the TEST hardware model is a
// stream of memory events whose cycle charge is always zero (the comparator
// banks listen passively; only annotation instructions interact with the
// coprocessor). That makes the stream batchable: instead of one virtual
// TraceSink call per event, producers append plain tagged structs to a
// fixed-capacity EventBlock owned by the sink and drain it in blocks.
//
// Drain discipline (the contract that keeps batching bit-identical to the
// per-event path):
//   - Only zero-cost event kinds are ever appended: heap/local loads and
//     stores plus the call-boundary markers. A sink that exposes a block
//     guarantees these kinds return 0 cycles on its virtual interface.
//   - Control events (`sloop`/`eloop`/`eoi`/`readstats`/return) force a
//     drain of any pending events *before* they are delivered virtually,
//     so the comparator-bank stack observes the exact event order of the
//     unbatched path and the state-dependent annotation costs are computed
//     against fully caught-up state.
//   - Exception: a sink whose `eoi` charge is state-independent may opt in
//     to deferred `eoi` by publishing that fixed charge on its block
//     (setDeferredEoiCost). `eoi` events are then appended like memory
//     events — the drain sweep processes them at the same stream position,
//     so every statistic is unchanged — and the producer charges the
//     published cost itself. `eoi` is the most frequent control event by
//     far, so this multiplies the achievable block length.
//   - A full block drains immediately, bounding the deferral window.
//
// Both producers — live execution (interp::ExecContext) and .jtrace replay
// (trace::dispatchEventBatched) — go through the emit helpers below, so
// record/replay event orderings agree by construction.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_INTERP_EVENTBLOCK_H
#define JRPM_INTERP_EVENTBLOCK_H

#include "interp/TraceSink.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace jrpm {
namespace interp {

/// Kinds that may be deferred in an EventBlock. Control events are never
/// enqueued — they drain the block and travel on the virtual interface —
/// except `eoi` (LoopIter), which a sink may opt in to defer by publishing
/// a fixed cycle charge for it (EventBlock::setDeferredEoiCost).
enum class EventTag : std::uint8_t {
  HeapLoad,
  HeapStore,
  LocalLoad,
  LocalStore,
  CallSite,
  CallReturn,
  LoopIter,
};

/// One deferred event: a tag plus the union of operands the TraceSink
/// callbacks take. Plain data, no indirection — a drained block is a
/// contiguous array the consumer sweeps with a tag switch.
struct BatchedEvent {
  std::uint64_t Cycle = 0;
  std::uint64_t Activation = 0; ///< local-variable events only
  std::uint32_t Addr = 0;       ///< heap events: word address; eoi: loop id
  std::int32_t Pc = -1;
  std::uint16_t Reg = 0; ///< local-variable events only
  EventTag Tag = EventTag::HeapLoad;
};

/// Fixed-capacity append buffer of BatchedEvents. Owned by the consuming
/// sink (or by a recording tee when there is no downstream consumer) and
/// exposed to producers via TraceSink::eventBlock().
class EventBlock {
public:
  static constexpr std::uint32_t DefaultCapacity = 256;

  explicit EventBlock(std::uint32_t Capacity = DefaultCapacity)
      : Buf(Capacity ? Capacity : 1) {}

  bool empty() const { return Count == 0; }
  bool full() const { return Count == Buf.size(); }
  std::uint32_t size() const { return Count; }
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(Buf.size());
  }
  const BatchedEvent *data() const { return Buf.data(); }
  void clear() { Count = 0; }

  /// Resizes the block. Only legal while empty (between drains); capacity
  /// is clamped to at least one event.
  void setCapacity(std::uint32_t Capacity) {
    assert(empty() && "resizing a non-empty event block");
    Buf.assign(Capacity ? Capacity : 1, BatchedEvent{});
    Count = 0;
  }

  void pushHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                    std::int32_t Pc) {
    BatchedEvent &E = append();
    E.Tag = EventTag::HeapLoad;
    E.Addr = Addr;
    E.Cycle = Cycle;
    E.Pc = Pc;
  }
  void pushHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                     std::int32_t Pc) {
    BatchedEvent &E = append();
    E.Tag = EventTag::HeapStore;
    E.Addr = Addr;
    E.Cycle = Cycle;
    E.Pc = Pc;
  }
  void pushLocalLoad(std::uint64_t Activation, std::uint16_t Reg,
                     std::uint64_t Cycle, std::int32_t Pc) {
    BatchedEvent &E = append();
    E.Tag = EventTag::LocalLoad;
    E.Activation = Activation;
    E.Reg = Reg;
    E.Cycle = Cycle;
    E.Pc = Pc;
  }
  void pushLocalStore(std::uint64_t Activation, std::uint16_t Reg,
                      std::uint64_t Cycle, std::int32_t Pc) {
    BatchedEvent &E = append();
    E.Tag = EventTag::LocalStore;
    E.Activation = Activation;
    E.Reg = Reg;
    E.Cycle = Cycle;
    E.Pc = Pc;
  }
  /// Owning-sink opt-in for deferred `eoi`: the fixed cycle charge the
  /// sink's onLoopIter would return, or -1 (the default) when `eoi` must
  /// stay on the synchronous drain-then-dispatch path (e.g. because the
  /// charge depends on sink state). Producers read this through
  /// emitLoopIter.
  void setDeferredEoiCost(std::int32_t Cost) { DeferredEoiCost = Cost; }
  std::int32_t deferredEoiCost() const { return DeferredEoiCost; }

  void pushLoopIter(std::uint32_t LoopId, std::uint64_t Cycle) {
    BatchedEvent &E = append();
    E.Tag = EventTag::LoopIter;
    E.Addr = LoopId;
    E.Cycle = Cycle;
  }
  void pushCallSite(std::int32_t CallPc, std::uint64_t Cycle) {
    BatchedEvent &E = append();
    E.Tag = EventTag::CallSite;
    E.Pc = CallPc;
    E.Cycle = Cycle;
  }
  void pushCallReturn(std::uint64_t Cycle) {
    BatchedEvent &E = append();
    E.Tag = EventTag::CallReturn;
    E.Cycle = Cycle;
  }

private:
  BatchedEvent &append() {
    assert(!full() && "appending to a full event block");
    return Buf[Count++];
  }

  std::vector<BatchedEvent> Buf;
  std::uint32_t Count = 0;
  std::int32_t DeferredEoiCost = -1;
};

/// Drains any deferred events so the sink is fully caught up. Producers
/// call this before every control event and once after the final event.
inline void drainPending(TraceSink &Sink, EventBlock *Blk) {
  if (Blk && !Blk->empty())
    Sink.drainBlock();
}

// Emit helpers: append when the sink is batch-capable, fall back to the
// per-event virtual call otherwise. The returned cycle charge is zero on
// the batched path by the block contract above.
inline std::uint32_t emitHeapLoad(TraceSink &Sink, EventBlock *Blk,
                                  std::uint32_t Addr, std::uint64_t Cycle,
                                  std::int32_t Pc) {
  if (!Blk)
    return Sink.onHeapLoad(Addr, Cycle, Pc);
  Blk->pushHeapLoad(Addr, Cycle, Pc);
  if (Blk->full())
    Sink.drainBlock();
  return 0;
}
inline std::uint32_t emitHeapStore(TraceSink &Sink, EventBlock *Blk,
                                   std::uint32_t Addr, std::uint64_t Cycle,
                                   std::int32_t Pc) {
  if (!Blk)
    return Sink.onHeapStore(Addr, Cycle, Pc);
  Blk->pushHeapStore(Addr, Cycle, Pc);
  if (Blk->full())
    Sink.drainBlock();
  return 0;
}
inline std::uint32_t emitLocalLoad(TraceSink &Sink, EventBlock *Blk,
                                   std::uint64_t Activation, std::uint16_t Reg,
                                   std::uint64_t Cycle, std::int32_t Pc) {
  if (!Blk)
    return Sink.onLocalLoad(Activation, Reg, Cycle, Pc);
  Blk->pushLocalLoad(Activation, Reg, Cycle, Pc);
  if (Blk->full())
    Sink.drainBlock();
  return 0;
}
inline std::uint32_t emitLocalStore(TraceSink &Sink, EventBlock *Blk,
                                    std::uint64_t Activation,
                                    std::uint16_t Reg, std::uint64_t Cycle,
                                    std::int32_t Pc) {
  if (!Blk)
    return Sink.onLocalStore(Activation, Reg, Cycle, Pc);
  Blk->pushLocalStore(Activation, Reg, Cycle, Pc);
  if (Blk->full())
    Sink.drainBlock();
  return 0;
}
inline std::uint32_t emitLoopIter(TraceSink &Sink, EventBlock *Blk,
                                  std::uint32_t LoopId, std::uint64_t Cycle) {
  if (!Blk || Blk->deferredEoiCost() < 0) {
    drainPending(Sink, Blk);
    return Sink.onLoopIter(LoopId, Cycle);
  }
  Blk->pushLoopIter(LoopId, Cycle);
  std::uint32_t Cost = static_cast<std::uint32_t>(Blk->deferredEoiCost());
  if (Blk->full())
    Sink.drainBlock();
  return Cost;
}
inline void emitCallSite(TraceSink &Sink, EventBlock *Blk, std::int32_t CallPc,
                         std::uint64_t Cycle) {
  if (!Blk) {
    Sink.onCallSite(CallPc, Cycle);
    return;
  }
  Blk->pushCallSite(CallPc, Cycle);
  if (Blk->full())
    Sink.drainBlock();
}
inline void emitCallReturn(TraceSink &Sink, EventBlock *Blk,
                           std::uint64_t Cycle) {
  if (!Blk) {
    Sink.onCallReturn(Cycle);
    return;
  }
  Blk->pushCallReturn(Cycle);
  if (Blk->full())
    Sink.drainBlock();
}

} // namespace interp
} // namespace jrpm

#endif // JRPM_INTERP_EVENTBLOCK_H
