//===- interp/ExecContext.h - IR instruction stepping ----------------------==//
//
// A call stack plus step functions that execute instructions of a
// pre-decoded exec::CodeImage through a MemoryPort, optionally emitting
// profiling events to a TraceSink. The sequential machine and every
// speculative thread of the Hydra TLS engine are instances of this class.
//
// Frames hold a single flat program counter into the image instead of the
// historical (function, block, instruction) triple; block and function
// identity are recovered from the image's side tables only at control-flow
// boundaries. step() executes exactly one instruction (the TLS engine
// schedules cores cycle by cycle); stepBlock() runs to the next block
// start, which is what the sequential machine wants between dispatcher
// checks; run() executes to completion (or a cycle budget) without ever
// leaving the dispatch loop, for sequential runs with no dispatcher
// attached.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_INTERP_EXECCONTEXT_H
#define JRPM_INTERP_EXECCONTEXT_H

#include "exec/CodeImage.h"
#include "interp/MemoryPort.h"
#include "interp/TraceSink.h"
#include "ir/IR.h"
#include "sim/Config.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace jrpm {
namespace interp {

/// One function activation.
struct Frame {
  exec::FlatPc Pc = 0;
  std::uint64_t Activation = 0;
  std::uint16_t RetDst = ir::NoReg;
  std::vector<std::uint64_t> Regs;
  std::vector<std::uint64_t> StagedArgs;
};

class ExecContext {
public:
  /// Runs on an externally owned image (the Hydra engine shares one image
  /// across its cores and rebuilds it when clones are appended).
  ExecContext(const exec::CodeImage &Image, const sim::HydraConfig &Cfg)
      : Image(Image), Cfg(Cfg) {}

  /// Convenience: compiles (or reuses the memoized) image for \p M.
  ExecContext(const ir::Module &M, const sim::HydraConfig &Cfg)
      : OwnedImage(exec::CodeImage::getShared(M)), Image(*OwnedImage),
        Cfg(Cfg) {}

  const exec::CodeImage &image() const { return Image; }

  /// Begins execution at the entry of function \p Func.
  void start(std::uint32_t Func, const std::vector<std::uint64_t> &Args);

  /// Positions the context at the start of \p Block in \p Func with the
  /// given register file (used by the TLS engine to spawn iteration
  /// threads). The file may be larger than the function needs.
  void startAt(std::uint32_t Func, std::uint32_t Block,
               std::vector<std::uint64_t> Regs);

  /// startAt by flat PC, recycling the previous activation's register file:
  /// the old top-frame file is returned so spawn-heavy callers (the TLS
  /// engine respawning an iteration thread per commit) can reuse its
  /// buffer instead of allocating a fresh vector per spawn.
  std::vector<std::uint64_t> resetAtPc(exec::FlatPc Pc,
                                       std::vector<std::uint64_t> Regs);

  bool finished() const { return Frames.empty(); }
  std::uint64_t returnValue() const { return RetVal; }
  std::uint64_t instructionsExecuted() const { return Executed; }

  std::size_t callDepth() const { return Frames.size(); }
  exec::FlatPc pc() const { return Frames.back().Pc; }
  std::uint32_t currentFunc() const { return Image.funcOf(pc()); }
  std::uint32_t currentBlock() const { return Image.blockOf(pc()); }
  std::uint32_t currentInstr() const {
    return pc() - Image.blockAt(pc()).StartPc;
  }
  bool atBlockStart() const {
    return !Frames.empty() && Image.isBlockStart(Frames.back().Pc);
  }

  /// Register file of the outermost frame (frame 0).
  std::vector<std::uint64_t> &baseRegs() { return Frames.front().Regs; }
  const std::vector<std::uint64_t> &baseRegs() const {
    return Frames.front().Regs;
  }

  /// Register file of the innermost (current) frame.
  std::vector<std::uint64_t> &topRegs() { return Frames.back().Regs; }
  const std::vector<std::uint64_t> &topRegs() const {
    return Frames.back().Regs;
  }

  /// Repositions the innermost frame at the start of \p Block of its
  /// current function with register file \p Regs (used to resume
  /// sequential execution at a loop exit after speculative execution of
  /// the loop).
  void repositionTop(std::uint32_t Block, std::vector<std::uint64_t> Regs) {
    Frame &F = Frames.back();
    F.Pc = Image.blockStart(Image.funcOf(F.Pc), Block);
    F.Regs = std::move(Regs);
  }

  /// Executes one instruction; returns the cycles it consumed. Must not be
  /// called when finished(). Throws TrapError when the program executes an
  /// undefined operation (divide/remainder by zero).
  std::uint32_t step(MemoryPort &Mem, TraceSink *Sink, std::uint64_t Now);

  /// Executes instructions until the next block start (or until the
  /// program finishes), accumulating \p Now per instruction exactly as a
  /// sequence of step() calls would; returns the total cycles consumed.
  /// The context is at a block start (or finished) on return, so callers
  /// need to consult dispatchers only once per block.
  std::uint32_t stepBlock(MemoryPort &Mem, TraceSink *Sink,
                          std::uint64_t Now);

  /// Executes until the program finishes or the running clock (starting at
  /// \p Now, advanced per instruction) exceeds \p MaxCycles — the budget is
  /// tested at block starts, matching a stepBlock() loop that checks after
  /// every block. Returns the total cycles consumed. Equivalent to a
  /// step() loop cycle for cycle, but never leaves the dispatch loop, so
  /// sequential runs pay no per-block call boundary.
  std::uint64_t run(MemoryPort &Mem, TraceSink *Sink, std::uint64_t Now,
                    std::uint64_t MaxCycles);

  /// Rewinds the innermost frame by one instruction, undoing the program
  /// counter advance of the last step(). Only valid when that step did not
  /// transfer control (loads/stores/arithmetic) — the TLS engine uses this
  /// to re-issue a load whose value is not yet available under
  /// synchronized local communication.
  void rewindTop() {
    Frame &F = Frames.back();
    assert(!Image.isBlockStart(F.Pc) && "cannot rewind across a block boundary");
    --F.Pc;
  }

  /// Execution granularity of stepImpl: one instruction, one basic block,
  /// or a whole run bounded by a cycle budget.
  enum class StepMode : std::uint8_t { Single, Block, Run };

private:
  template <StepMode Mode>
  std::uint64_t stepImpl(MemoryPort &Mem, TraceSink *Sink, std::uint64_t Now,
                         std::uint64_t MaxCycles);

  std::shared_ptr<const exec::CodeImage> OwnedImage; ///< null when external
  const exec::CodeImage &Image;
  const sim::HydraConfig &Cfg;
  std::vector<Frame> Frames;
  std::uint64_t RetVal = 0;
  std::uint64_t Executed = 0;
  std::uint64_t NextActivation = 1;
};

} // namespace interp
} // namespace jrpm

#endif // JRPM_INTERP_EXECCONTEXT_H
