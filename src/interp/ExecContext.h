//===- interp/ExecContext.h - IR instruction stepping ----------------------==//
//
// A call stack plus a step() function that executes one instruction through
// a MemoryPort, optionally emitting profiling events to a TraceSink. The
// sequential machine and every speculative thread of the Hydra TLS engine
// are instances of this class.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_INTERP_EXECCONTEXT_H
#define JRPM_INTERP_EXECCONTEXT_H

#include "interp/MemoryPort.h"
#include "interp/TraceSink.h"
#include "ir/IR.h"
#include "sim/Config.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace interp {

/// One function activation.
struct Frame {
  std::uint32_t Func = 0;
  std::uint32_t Block = 0;
  std::uint32_t Instr = 0;
  std::uint64_t Activation = 0;
  std::uint16_t RetDst = ir::NoReg;
  std::vector<std::uint64_t> Regs;
  std::vector<std::uint64_t> StagedArgs;
};

class ExecContext {
public:
  ExecContext(const ir::Module &M, const sim::HydraConfig &Cfg)
      : M(M), Cfg(Cfg) {}

  /// Begins execution at the entry of function \p Func.
  void start(std::uint32_t Func, const std::vector<std::uint64_t> &Args);

  /// Positions the context at the start of \p Block in \p Func with the
  /// given register file (used by the TLS engine to spawn iteration
  /// threads).
  void startAt(std::uint32_t Func, std::uint32_t Block,
               std::vector<std::uint64_t> Regs);

  bool finished() const { return Frames.empty(); }
  std::uint64_t returnValue() const { return RetVal; }
  std::uint64_t instructionsExecuted() const { return Executed; }

  std::size_t callDepth() const { return Frames.size(); }
  std::uint32_t currentFunc() const { return Frames.back().Func; }
  std::uint32_t currentBlock() const { return Frames.back().Block; }
  std::uint32_t currentInstr() const { return Frames.back().Instr; }
  bool atBlockStart() const {
    return !Frames.empty() && Frames.back().Instr == 0;
  }

  /// Register file of the outermost frame (frame 0).
  std::vector<std::uint64_t> &baseRegs() { return Frames.front().Regs; }
  const std::vector<std::uint64_t> &baseRegs() const {
    return Frames.front().Regs;
  }

  /// Register file of the innermost (current) frame.
  std::vector<std::uint64_t> &topRegs() { return Frames.back().Regs; }
  const std::vector<std::uint64_t> &topRegs() const {
    return Frames.back().Regs;
  }

  /// Repositions the innermost frame at the start of \p Block with register
  /// file \p Regs (used to resume sequential execution at a loop exit after
  /// speculative execution of the loop).
  void repositionTop(std::uint32_t Block, std::vector<std::uint64_t> Regs) {
    Frames.back().Block = Block;
    Frames.back().Instr = 0;
    Frames.back().Regs = std::move(Regs);
  }

  /// Executes one instruction; returns the cycles it consumed. Must not be
  /// called when finished().
  std::uint32_t step(MemoryPort &Mem, TraceSink *Sink, std::uint64_t Now);

  /// Rewinds the innermost frame by one instruction, undoing the program
  /// counter advance of the last step(). Only valid when that step did not
  /// transfer control (loads/stores/arithmetic) — the TLS engine uses this
  /// to re-issue a load whose value is not yet available under
  /// synchronized local communication.
  void rewindTop() {
    Frame &F = Frames.back();
    assert(F.Instr > 0 && "cannot rewind across a block boundary");
    --F.Instr;
  }

private:
  const ir::Module &M;
  const sim::HydraConfig &Cfg;
  std::vector<Frame> Frames;
  std::uint64_t RetVal = 0;
  std::uint64_t Executed = 0;
  std::uint64_t NextActivation = 1;
};

} // namespace interp
} // namespace jrpm

#endif // JRPM_INTERP_EXECCONTEXT_H
