//===- interp/TraceSink.h - Profiling event interface ----------------------==//
//
// Events emitted by annotated sequential execution (Section 5.1's annotating
// instructions plus automatic memory events). The TEST hardware model
// consumes them at zero cost; the software-only profiler model charges a
// callback penalty per event via the return values.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_INTERP_TRACESINK_H
#define JRPM_INTERP_TRACESINK_H

#include <cstdint>

namespace jrpm {
namespace interp {

class EventBlock;

class TraceSink {
public:
  virtual ~TraceSink() = default;

  /// Batched transport (EventBlock.h). A sink that returns a block opts
  /// into deferred delivery of the zero-cost event kinds: producers append
  /// to the block and call drainBlock() when it fills and before every
  /// control event (`sloop`/`eloop`/`eoi`/`readstats`/return), so the sink
  /// observes the exact per-event order. Sinks that charge nonzero cycles
  /// for memory events (the software profiler model) must keep the default
  /// nullptr and stay on the virtual per-event path.
  virtual EventBlock *eventBlock() { return nullptr; }
  /// Consumes and clears the pending events of eventBlock() in order.
  virtual void drainBlock() {}

  /// Every method returns extra cycles charged to the traced program (0 for
  /// the hardware tracer, the callback cost for software-only profiling).
  virtual std::uint32_t onHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                                   std::int32_t Pc) = 0;
  virtual std::uint32_t onHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                                    std::int32_t Pc) = 0;
  virtual std::uint32_t onLocalLoad(std::uint64_t Activation,
                                    std::uint16_t Reg, std::uint64_t Cycle,
                                    std::int32_t Pc) = 0;
  virtual std::uint32_t onLocalStore(std::uint64_t Activation,
                                     std::uint16_t Reg, std::uint64_t Cycle,
                                     std::int32_t Pc) = 0;
  virtual std::uint32_t onLoopStart(std::uint32_t LoopId,
                                    std::uint64_t Activation,
                                    std::uint64_t Cycle) = 0;
  virtual std::uint32_t onLoopIter(std::uint32_t LoopId,
                                   std::uint64_t Cycle) = 0;
  virtual std::uint32_t onLoopEnd(std::uint32_t LoopId,
                                  std::uint64_t Cycle) = 0;
  /// Fired when a function activation returns so the tracer can release
  /// any loop state the activation failed to close explicitly.
  virtual void onReturn(std::uint64_t Activation) = 0;

  /// Optional call-boundary events used by the method-level speculation
  /// coverage analysis (Section 4.1 considers call-return decompositions
  /// before focusing on loops). Default: ignored.
  virtual void onCallSite(std::int32_t CallPc, std::uint64_t Cycle) {
    (void)CallPc;
    (void)Cycle;
  }
  virtual void onCallReturn(std::uint64_t Cycle) { (void)Cycle; }

  /// Statistics read-out at an STL exit. Returns the cycles the read-out
  /// routine consumes (0 when the loop's annotations have been disabled —
  /// the paper nops them out once enough data is collected).
  virtual std::uint32_t onReadStats(std::uint32_t LoopId,
                                    std::uint64_t Cycle) {
    (void)LoopId;
    (void)Cycle;
    return 0;
  }
};

} // namespace interp
} // namespace jrpm

#endif // JRPM_INTERP_TRACESINK_H
