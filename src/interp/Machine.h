//===- interp/Machine.h - Sequential whole-program simulator ---------------==//
//
// Runs a module to completion on one Hydra core: one instruction per cycle
// plus L1 miss latency, with optional profiling (TraceSink) and optional
// speculative dispatch of selected STLs (LoopDispatcher, implemented by the
// Hydra TLS engine).
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_INTERP_MACHINE_H
#define JRPM_INTERP_MACHINE_H

#include "interp/ExecContext.h"
#include "interp/Heap.h"
#include "interp/MemoryPort.h"
#include "interp/TraceSink.h"
#include "sim/CacheModel.h"
#include "sim/Config.h"

#include <cstdint>
#include <string>

namespace jrpm {
namespace metrics {
class Registry;
class Timeline;
} // namespace metrics

namespace interp {

class Machine;

/// Hook invoked whenever sequential execution reaches the start of a basic
/// block; the Hydra engine uses it to take over selected loop headers.
class LoopDispatcher {
public:
  virtual ~LoopDispatcher() = default;

  /// Returns true if the dispatcher executed the loop speculatively: the
  /// context is then positioned at the loop exit and the consumed cycles
  /// were added via Machine::addCycles().
  virtual bool onBlockStart(ExecContext &Ctx, Machine &M) = 0;
};

/// Direct (non-speculative) memory port: the heap plus one core's L1
/// timing model.
class DirectMemoryPort : public MemoryPort {
public:
  DirectMemoryPort(Heap &H, const sim::HydraConfig &Cfg)
      : H(H), L1(Cfg), MissCycles(Cfg.L2HitExtraCycles) {}

  std::uint64_t load(std::uint32_t Addr, std::uint32_t &ExtraCycles) override {
    ++Loads;
    if (!L1.access(Addr)) {
      ++Misses;
      ExtraCycles += MissCycles;
    }
    return H.load(Addr);
  }

  void store(std::uint32_t Addr, std::uint64_t Value,
             std::uint32_t &ExtraCycles) override {
    (void)ExtraCycles; // write-through via the write buffer: 1 cycle
    ++Stores;
    L1.access(Addr);
    H.store(Addr, Value);
  }

  std::uint32_t allocWords(std::uint32_t Count) override {
    return H.allocWords(Count);
  }

  std::uint64_t loads() const { return Loads; }
  std::uint64_t stores() const { return Stores; }
  std::uint64_t misses() const { return Misses; }

private:
  Heap &H;
  sim::L1CacheModel L1;
  std::uint32_t MissCycles;
  std::uint64_t Loads = 0;
  std::uint64_t Stores = 0;
  std::uint64_t Misses = 0;
};

/// Result of a whole-program run.
struct RunResult {
  std::uint64_t Cycles = 0;
  std::uint64_t Instructions = 0;
  std::uint64_t ReturnValue = 0;
  std::uint64_t Loads = 0;
  std::uint64_t Stores = 0;
  std::uint64_t L1Misses = 0;
};

class Machine {
public:
  Machine(const ir::Module &M, const sim::HydraConfig &Cfg)
      : M(M), Cfg(Cfg), Ctx(M, this->Cfg), Port(TheHeap, this->Cfg) {}

  void setTraceSink(TraceSink *S) { Sink = S; }
  void setDispatcher(LoopDispatcher *D) { Dispatcher = D; }

  /// Attaches the observability layer: at the end of run() the machine
  /// exports its run counters under "interp.<phase>." into \p Reg and, when
  /// \p TL is non-null, emits one whole-run span on \p TrackId. Costs
  /// nothing on the per-instruction path — everything is derived from the
  /// totals run() already accumulates.
  void setObservability(metrics::Registry *Reg, std::string Phase,
                        metrics::Timeline *TL = nullptr,
                        std::uint32_t TrackId = 0) {
    Metrics = Reg;
    MetricsPhase = std::move(Phase);
    Timeline = TL;
    TimelineTrack = TrackId;
  }

  /// Runs the entry function to completion.
  RunResult run(const std::vector<std::uint64_t> &Args = {});

  Heap &heap() { return TheHeap; }
  const ir::Module &module() const { return M; }
  const sim::HydraConfig &config() const { return Cfg; }
  std::uint64_t clock() const { return Clock; }
  void addCycles(std::uint64_t C) { Clock += C; }

private:
  const ir::Module &M;
  /// Held by value: callers routinely pass temporaries, and the contexts
  /// below keep references into this copy for the machine's lifetime.
  sim::HydraConfig Cfg;
  Heap TheHeap;
  ExecContext Ctx;
  DirectMemoryPort Port;
  TraceSink *Sink = nullptr;
  LoopDispatcher *Dispatcher = nullptr;
  metrics::Registry *Metrics = nullptr;
  metrics::Timeline *Timeline = nullptr;
  std::uint32_t TimelineTrack = 0;
  std::string MetricsPhase;
  std::uint64_t Clock = 0;
};

} // namespace interp
} // namespace jrpm

#endif // JRPM_INTERP_MACHINE_H
