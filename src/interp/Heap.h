//===- interp/Heap.h - Word-addressed simulated heap -----------------------==//

#ifndef JRPM_INTERP_HEAP_H
#define JRPM_INTERP_HEAP_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace jrpm {
namespace interp {

/// The simulated program heap: a flat array of 8-byte words with a bump
/// allocator. Address 0 is reserved as null; allocations are cache-line
/// (4-word) aligned so the cache and tracer models see realistic layouts.
class Heap {
public:
  Heap() : Words(FirstAddress, 0) {}

  /// Allocates \p Count words and returns the base word address.
  std::uint32_t allocWords(std::uint32_t Count) {
    std::uint32_t Base = Bump;
    std::uint32_t Padded = (Count + 3) & ~3u;
    Bump += Padded;
    if (Bump > Words.size())
      Words.resize(Bump, 0);
    return Base;
  }

  std::uint64_t load(std::uint32_t Addr) const {
    assert(Addr < Words.size() && "heap load out of bounds");
    return Words[Addr];
  }

  void store(std::uint32_t Addr, std::uint64_t Value) {
    assert(Addr < Words.size() && "heap store out of bounds");
    assert(Addr >= FirstAddress && "store to the null line");
    Words[Addr] = Value;
  }

  std::uint32_t allocatedWords() const { return Bump; }

private:
  static constexpr std::uint32_t FirstAddress = 4;
  std::vector<std::uint64_t> Words;
  std::uint32_t Bump = FirstAddress;
};

} // namespace interp
} // namespace jrpm

#endif // JRPM_INTERP_HEAP_H
