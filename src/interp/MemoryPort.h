//===- interp/MemoryPort.h - Memory access indirection ---------------------==//
//
// The execution context performs all heap traffic through this interface so
// the same instruction-stepping code serves both the sequential machine
// (direct heap + L1 timing) and the Hydra TLS engine (speculative buffers,
// forwarding, violation detection).
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_INTERP_MEMORYPORT_H
#define JRPM_INTERP_MEMORYPORT_H

#include <cstdint>

namespace jrpm {
namespace interp {

class MemoryPort {
public:
  virtual ~MemoryPort() = default;

  /// Loads the word at \p Addr. \p ExtraCycles receives latency beyond the
  /// base instruction cost (e.g. an L1 miss or a store-buffer forward).
  virtual std::uint64_t load(std::uint32_t Addr,
                             std::uint32_t &ExtraCycles) = 0;

  /// Stores \p Value to \p Addr.
  virtual void store(std::uint32_t Addr, std::uint64_t Value,
                     std::uint32_t &ExtraCycles) = 0;

  /// Allocates \p Count heap words.
  virtual std::uint32_t allocWords(std::uint32_t Count) = 0;
};

} // namespace interp
} // namespace jrpm

#endif // JRPM_INTERP_MEMORYPORT_H
