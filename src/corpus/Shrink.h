//===- corpus/Shrink.h - Hole-wise minimization of failing variants --------==//
//
// When an oracle flags a variant, the shrinker reduces it to a smallest
// failing assignment by delta debugging over the template's holes: for
// each hole it tries jumping straight to the minimum, then halving toward
// it, then single steps, keeping any candidate that still fails, and
// repeats to a fixpoint. The metric is VariantSpec::weight — the total
// distance of all holes from their template minima — which every accepted
// step strictly decreases, so termination is structural.
//
// Shrinking is a pure function of (template, spec, oracle config): the
// minimized repro is as deterministic as the corpus itself, and the
// emitted `.jrpm` document carries the explicit hole assignment alongside
// the original {template_id, seed} provenance.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_CORPUS_SHRINK_H
#define JRPM_CORPUS_SHRINK_H

#include "corpus/Oracles.h"

#include <cstdint>

namespace jrpm {
namespace corpus {

struct ShrinkResult {
  /// Smallest failing assignment found (== the input when no smaller
  /// failing neighbor exists, or when the input did not fail at all).
  VariantSpec Minimized;
  /// Oracle outcome at Minimized.
  OracleOutcome Outcome;
  /// Accepted shrink steps (each strictly decreased the weight).
  std::uint32_t Steps = 0;
  /// Oracle evaluations spent (the shrink cost).
  std::uint32_t Evaluations = 0;
  /// True when Minimized still fails the oracles (the normal case; false
  /// means the input itself passed and there was nothing to shrink).
  bool StillFailing = false;

  Json toJson() const;
};

/// Evaluation budget: delta debugging over <= 10 holes with ranges this
/// size converges in far fewer, so hitting the cap indicates a flapping
/// (non-deterministic) oracle and the shrinker stops with the best-so-far.
inline constexpr std::uint32_t MaxShrinkEvaluations = 256;

/// Minimizes \p Failing against the oracle stack.
ShrinkResult shrinkVariant(const Template &T, const VariantSpec &Failing,
                           const OracleConfig &Cfg);

} // namespace corpus
} // namespace jrpm

#endif // JRPM_CORPUS_SHRINK_H
