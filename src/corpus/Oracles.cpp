//===- corpus/Oracles.cpp --------------------------------------------------==//

#include "corpus/Oracles.h"

#include "analysis/Candidates.h"
#include "hydra/TlsEngine.h"
#include "interp/Machine.h"
#include "jit/Annotator.h"
#include "jit/TlsPlan.h"
#include "support/Format.h"
#include "trace/Reader.h"
#include "tracer/Selector.h"
#include "tracer/TraceEngine.h"

#include <set>

using namespace jrpm;
using namespace jrpm::corpus;

const char *corpus::oracleKindName(OracleKind K) {
  switch (K) {
  case OracleKind::Execution:
    return "execution";
  case OracleKind::StaticConformance:
    return "static-conformance";
  case OracleKind::Replay:
    return "replay";
  case OracleKind::Injected:
    return "injected";
  }
  return "unknown";
}

Json OracleOutcome::toJson() const {
  Json J = Json::object();
  J["passed"] = Passed;
  Json F = Json::array();
  for (const OracleFailure &Fail : Failures) {
    Json FJ = Json::object();
    FJ["oracle"] = oracleKindName(Fail.Kind);
    FJ["detail"] = Fail.Detail;
    F.push(std::move(FJ));
  }
  J["failures"] = std::move(F);
  J["seq_return"] = SeqReturn;
  J["seq_cycles"] = SeqCycles;
  J["selection_digest"] =
      formatString("%016llx", (unsigned long long)SelectionDigest);
  J["events_replayed"] = EventsReplayed;
  J["candidates"] = Candidates;
  J["dyn_selected"] = DynSelected;
  J["static_rejects"] = StaticRejects;
  J["false_rejects"] = FalseRejects;
  return J;
}

std::int64_t corpus::tripProduct(const Template &T, const VariantSpec &Spec) {
  std::int64_t P = 1;
  for (const Hole &H : T.Holes)
    if (H.Kind == HoleKind::TripCount)
      P *= H.clamp(Spec.valueOf(H.Name, H.Observed));
  return P;
}

namespace {

/// In-memory analogue of trace::RecordingSink: captures every event into a
/// vector while forwarding it (and the downstream engine's cycle charges)
/// unchanged, so the recorded run is cycle-identical to an unrecorded one.
class VectorSink : public interp::TraceSink {
public:
  explicit VectorSink(interp::TraceSink *Downstream) : Down(Downstream) {}

  const std::vector<trace::Event> &events() const { return Events; }

  std::uint32_t onHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                           std::int32_t Pc) override {
    trace::Event E;
    E.Kind = trace::EventKind::HeapLoad;
    E.Addr = Addr;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Events.push_back(E);
    return Down ? Down->onHeapLoad(Addr, Cycle, Pc) : 0;
  }
  std::uint32_t onHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                            std::int32_t Pc) override {
    trace::Event E;
    E.Kind = trace::EventKind::HeapStore;
    E.Addr = Addr;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Events.push_back(E);
    return Down ? Down->onHeapStore(Addr, Cycle, Pc) : 0;
  }
  std::uint32_t onLocalLoad(std::uint64_t Activation, std::uint16_t Reg,
                            std::uint64_t Cycle, std::int32_t Pc) override {
    trace::Event E;
    E.Kind = trace::EventKind::LocalLoad;
    E.Activation = Activation;
    E.Reg = Reg;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Events.push_back(E);
    return Down ? Down->onLocalLoad(Activation, Reg, Cycle, Pc) : 0;
  }
  std::uint32_t onLocalStore(std::uint64_t Activation, std::uint16_t Reg,
                             std::uint64_t Cycle, std::int32_t Pc) override {
    trace::Event E;
    E.Kind = trace::EventKind::LocalStore;
    E.Activation = Activation;
    E.Reg = Reg;
    E.Cycle = Cycle;
    E.Pc = Pc;
    Events.push_back(E);
    return Down ? Down->onLocalStore(Activation, Reg, Cycle, Pc) : 0;
  }
  std::uint32_t onLoopStart(std::uint32_t LoopId, std::uint64_t Activation,
                            std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::LoopStart;
    E.LoopId = LoopId;
    E.Activation = Activation;
    E.Cycle = Cycle;
    Events.push_back(E);
    return Down ? Down->onLoopStart(LoopId, Activation, Cycle) : 0;
  }
  std::uint32_t onLoopIter(std::uint32_t LoopId,
                           std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::LoopIter;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    Events.push_back(E);
    return Down ? Down->onLoopIter(LoopId, Cycle) : 0;
  }
  std::uint32_t onLoopEnd(std::uint32_t LoopId, std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::LoopEnd;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    Events.push_back(E);
    return Down ? Down->onLoopEnd(LoopId, Cycle) : 0;
  }
  void onReturn(std::uint64_t Activation) override {
    trace::Event E;
    E.Kind = trace::EventKind::Return;
    E.Activation = Activation;
    Events.push_back(E);
    if (Down)
      Down->onReturn(Activation);
  }
  void onCallSite(std::int32_t CallPc, std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::CallSite;
    E.Pc = CallPc;
    E.Cycle = Cycle;
    Events.push_back(E);
    if (Down)
      Down->onCallSite(CallPc, Cycle);
  }
  void onCallReturn(std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::CallReturn;
    E.Cycle = Cycle;
    Events.push_back(E);
    if (Down)
      Down->onCallReturn(Cycle);
  }
  std::uint32_t onReadStats(std::uint32_t LoopId,
                            std::uint64_t Cycle) override {
    trace::Event E;
    E.Kind = trace::EventKind::ReadStats;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    Events.push_back(E);
    return Down ? Down->onReadStats(LoopId, Cycle) : 0;
  }

private:
  interp::TraceSink *Down;
  std::vector<trace::Event> Events;
};

/// Speculative execution under \p Cfg with the paper's optimistic policy
/// (every non-rejected candidate gets a plan) — the fuzz suite's contract.
interp::RunResult runTls(const ir::Module &M, const sim::HydraConfig &Cfg) {
  analysis::ModuleAnalysis MA(M);
  std::vector<jit::TlsLoopPlan> Plans;
  for (const analysis::CandidateStl &C : MA.candidates())
    if (!C.Rejected)
      Plans.push_back(jit::buildTlsPlan(MA, C));
  hydra::TlsEngine Engine(M, Cfg, std::move(Plans));
  interp::Machine Machine(M, Cfg);
  Machine.setDispatcher(&Engine);
  return Machine.run();
}

bool isSerialReject(analysis::RejectKind K) {
  return K == analysis::RejectKind::SerialMemoryRecurrence ||
         K == analysis::RejectKind::AffineSerialZiv ||
         K == analysis::RejectKind::AffineSerialSiv;
}

} // namespace

OracleOutcome corpus::runOracles(const Template &T, const Variant &V,
                                 const OracleConfig &Cfg) {
  OracleOutcome Out;
  const ir::Module &M = V.Module;
  auto Fail = [&Out](OracleKind K, std::string Detail) {
    Out.Passed = false;
    Out.Failures.push_back({K, std::move(Detail)});
  };

  // Sequential reference run.
  interp::Machine SeqMachine(M, Cfg.Hw);
  interp::RunResult Seq = SeqMachine.run();
  Out.SeqReturn = Seq.ReturnValue;
  Out.SeqCycles = Seq.Cycles;

  // Oracle 1: sequential vs speculative bit-identity on the config grid.
  struct GridPoint {
    const char *Name;
    sim::HydraConfig Hw;
  };
  GridPoint Grid[3] = {{"restart", Cfg.Hw}, {"sync", Cfg.Hw},
                       {"line", Cfg.Hw}};
  Grid[1].Hw.SyncCarriedLocals = true;
  Grid[2].Hw.ViolationGrain = sim::ViolationGranularity::Line;
  for (const GridPoint &G : Grid) {
    interp::RunResult Tls = runTls(M, G.Hw);
    if (Tls.ReturnValue != Seq.ReturnValue)
      Fail(OracleKind::Execution,
           formatString("%s mode returned %llu, sequential %llu", G.Name,
                        (unsigned long long)Tls.ReturnValue,
                        (unsigned long long)Seq.ReturnValue));
  }

  // Profiled run: dynamic TEST ground truth, recorded once into memory.
  analysis::ModuleAnalysis MA(M);
  jit::AnnotatedModule AM =
      jit::annotateModule(M, MA, jit::AnnotationLevel::Optimized);
  tracer::TraceEngine Live(Cfg.Hw, AM.LoopInfos);
  VectorSink Recorder(&Live);
  interp::Machine Prof(AM.Module, Cfg.Hw);
  Prof.setTraceSink(&Recorder);
  interp::RunResult ProfRun = Prof.run();
  if (ProfRun.ReturnValue != Seq.ReturnValue)
    Fail(OracleKind::Execution,
         formatString("annotated run returned %llu, sequential %llu",
                      (unsigned long long)ProfRun.ReturnValue,
                      (unsigned long long)Seq.ReturnValue));
  tracer::SelectionResult LiveSel =
      tracer::selectStls(Live, ProfRun.Cycles, Cfg.Hw);
  Out.SelectionDigest = tracer::selectionDigest(LiveSel);
  Out.Candidates = static_cast<std::uint32_t>(MA.candidates().size());
  Out.DynSelected = static_cast<std::uint32_t>(LiveSel.SelectedLoops.size());

  // Oracle 2: static verdicts vs the dynamic selection — zero false
  // rejections, per mode.
  std::set<std::uint32_t> Selected(LiveSel.SelectedLoops.begin(),
                                   LiveSel.SelectedLoops.end());
  struct Mode {
    const char *Name;
    analysis::AnalysisOptions Opts;
  };
  Mode Modes[2];
  Modes[0].Name = "prefilter";
  Modes[0].Opts.StaticPrefilter = true;
  Modes[1].Name = "affine-oracle";
  Modes[1].Opts.AffineOracle = true;
  for (const Mode &Md : Modes) {
    analysis::ModuleAnalysis SMA(M, Md.Opts);
    for (const analysis::CandidateStl &C : SMA.candidates()) {
      if (!isSerialReject(C.Kind))
        continue;
      ++Out.StaticRejects;
      if (Selected.count(C.LoopId)) {
        ++Out.FalseRejects;
        Fail(OracleKind::StaticConformance,
             formatString("%s rejected loop %u but TEST selected it",
                          Md.Name, C.LoopId));
      }
    }
  }

  // Oracle 3: record-once / replay-many — a fresh engine fed the recorded
  // events must reproduce the live selection digest exactly.
  tracer::TraceEngine Fresh(Cfg.Hw, AM.LoopInfos);
  interp::EventBlock *FreshBlk = Fresh.eventBlock();
  for (const trace::Event &E : Recorder.events())
    trace::dispatchEventBatched(E, Fresh, FreshBlk);
  interp::drainPending(Fresh, FreshBlk);
  Out.EventsReplayed = Recorder.events().size();
  tracer::SelectionResult ReplaySel =
      tracer::selectStls(Fresh, ProfRun.Cycles, Cfg.Hw);
  std::uint64_t ReplayDigest = tracer::selectionDigest(ReplaySel);
  if (ReplayDigest != Out.SelectionDigest)
    Fail(OracleKind::Replay,
         formatString("replayed selection digest %016llx != live %016llx",
                      (unsigned long long)ReplayDigest,
                      (unsigned long long)Out.SelectionDigest));

  // Planted fault, for testing the harness/shrinker end to end.
  if (Cfg.InjectTripAtLeast > 0) {
    std::int64_t P = tripProduct(T, V.Spec);
    if (P >= Cfg.InjectTripAtLeast)
      Fail(OracleKind::Injected,
           formatString("planted fault: trip product %lld >= %lld",
                        (long long)P, (long long)Cfg.InjectTripAtLeast));
  }

  return Out;
}
