//===- corpus/CorpusRunner.cpp ---------------------------------------------==//

#include "corpus/CorpusRunner.h"

#include "support/Format.h"
#include "sweep/ThreadPool.h"

using namespace jrpm;
using namespace jrpm::corpus;

namespace {

/// One preassigned result slot; written by exactly one job.
struct VariantResult {
  VariantSpec Spec;
  std::uint64_t Digest = 0;
  OracleOutcome Outcome;
  bool HasShrunk = false;
  ShrinkResult Shrunk;
};

std::uint64_t fnv1aMix(std::uint64_t H, std::uint64_t V) {
  for (int I = 0; I < 8; ++I) {
    H ^= (V >> (I * 8)) & 0xFF;
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

Json CorpusReport::toJson() const {
  Json J = Json::object();
  J["base_seed"] = BaseSeed;
  J["variants_per_template"] = VariantsPerTemplate;
  J["total_variants"] = TotalVariants;
  J["passed"] = Passed;
  J["failed"] = Failed;
  J["false_rejects"] = FalseRejects;
  J["corpus_digest"] =
      formatString("%016llx", (unsigned long long)CorpusDigest);

  Json TArr = Json::array();
  for (const TemplateSummary &T : Templates) {
    Json TJ = Json::object();
    TJ["id"] = T.Id;
    TJ["family"] = T.Family;
    TJ["variants"] = T.Variants;
    TJ["failed"] = T.Failed;
    TJ["digest"] = formatString("%016llx", (unsigned long long)T.Digest);
    TJ["candidates"] = T.Candidates;
    TJ["dyn_selected"] = T.DynSelected;
    TJ["static_rejects"] = T.StaticRejects;
    TJ["false_rejects"] = T.FalseRejects;
    TJ["events_replayed"] = T.EventsReplayed;
    TArr.push(std::move(TJ));
  }
  J["templates"] = std::move(TArr);

  Json FArr = Json::array();
  for (const FailureRecord &F : Failures) {
    Json FJ = F.Spec.toJson();
    FJ["digest"] = formatString("%016llx", (unsigned long long)F.Digest);
    Json Kinds = Json::array();
    for (const OracleFailure &Fail : F.Failures) {
      Json K = Json::object();
      K["oracle"] = oracleKindName(Fail.Kind);
      K["detail"] = Fail.Detail;
      Kinds.push(std::move(K));
    }
    FJ["failures"] = std::move(Kinds);
    if (F.HasShrunk) {
      Json SJ = F.ShrunkSpec.toJson();
      SJ["digest"] =
          formatString("%016llx", (unsigned long long)F.ShrunkDigest);
      SJ["weight"] = F.ShrunkWeight;
      SJ["steps"] = F.ShrinkSteps;
      SJ["evaluations"] = F.ShrinkEvaluations;
      FJ["shrunk"] = std::move(SJ);
    }
    FArr.push(std::move(FJ));
  }
  J["failures"] = std::move(FArr);
  return J;
}

CorpusReport corpus::runCorpus(const std::vector<Template> &Templates,
                               const CorpusOptions &Opts) {
  // The plan: template-major, seed-minor. Slot i*VPT+j belongs to
  // (Templates[i], BaseSeed+j), whatever thread runs it.
  const std::uint32_t Vpt = Opts.VariantsPerTemplate;
  std::vector<VariantResult> Slots(Templates.size() * Vpt);

  auto RunOne = [&](std::size_t TIdx, std::uint32_t SIdx) {
    const Template &T = Templates[TIdx];
    VariantResult &R = Slots[TIdx * Vpt + SIdx];
    Variant V = instantiate(T, Opts.BaseSeed + SIdx);
    R.Spec = V.Spec;
    R.Digest = V.Digest;
    R.Outcome = runOracles(T, V, Opts.Oracle);
    if (!R.Outcome.Passed && Opts.ShrinkFailures) {
      R.Shrunk = shrinkVariant(T, V.Spec, Opts.Oracle);
      R.HasShrunk = R.Shrunk.StillFailing;
    }
  };

  if (Opts.Threads == 1) {
    for (std::size_t TIdx = 0; TIdx < Templates.size(); ++TIdx)
      for (std::uint32_t SIdx = 0; SIdx < Vpt; ++SIdx)
        RunOne(TIdx, SIdx);
  } else {
    sweep::ThreadPool Pool(Opts.Threads);
    for (std::size_t TIdx = 0; TIdx < Templates.size(); ++TIdx)
      for (std::uint32_t SIdx = 0; SIdx < Vpt; ++SIdx)
        Pool.submit([&RunOne, TIdx, SIdx]() { RunOne(TIdx, SIdx); });
    Pool.wait();
  }

  // Aggregation walks the slots in plan order — completion order never
  // reaches the report.
  CorpusReport Report;
  Report.BaseSeed = Opts.BaseSeed;
  Report.VariantsPerTemplate = Vpt;
  std::uint64_t CorpusH = 14695981039346656037ull;
  std::uint32_t ShrinkSteps = 0, ShrinkEvals = 0;
  for (std::size_t TIdx = 0; TIdx < Templates.size(); ++TIdx) {
    const Template &T = Templates[TIdx];
    TemplateSummary S;
    S.Id = T.Id;
    S.Family = T.Family;
    std::uint64_t TH = 14695981039346656037ull;
    for (std::uint32_t SIdx = 0; SIdx < Vpt; ++SIdx) {
      const VariantResult &R = Slots[TIdx * Vpt + SIdx];
      ++S.Variants;
      ++Report.TotalVariants;
      TH = fnv1aMix(TH, R.Digest);
      CorpusH = fnv1aMix(CorpusH, R.Digest);
      S.Candidates += R.Outcome.Candidates;
      S.DynSelected += R.Outcome.DynSelected;
      S.StaticRejects += R.Outcome.StaticRejects;
      S.FalseRejects += R.Outcome.FalseRejects;
      S.EventsReplayed += R.Outcome.EventsReplayed;
      Report.FalseRejects += R.Outcome.FalseRejects;
      if (R.Outcome.Passed) {
        ++Report.Passed;
        continue;
      }
      ++S.Failed;
      ++Report.Failed;
      FailureRecord F;
      F.Spec = R.Spec;
      F.Digest = R.Digest;
      F.Failures = R.Outcome.Failures;
      if (R.HasShrunk) {
        F.HasShrunk = true;
        F.ShrunkSpec = R.Shrunk.Minimized;
        F.ShrunkDigest = instantiate(T, R.Shrunk.Minimized).Digest;
        F.ShrunkWeight = R.Shrunk.Minimized.weight(T);
        F.ShrinkSteps = R.Shrunk.Steps;
        F.ShrinkEvaluations = R.Shrunk.Evaluations;
        ShrinkSteps += R.Shrunk.Steps;
        ShrinkEvals += R.Shrunk.Evaluations;
      }
      Report.Failures.push_back(std::move(F));
    }
    S.Digest = TH;
    Report.Templates.push_back(std::move(S));
  }
  Report.CorpusDigest = CorpusH;

  if (Opts.Metrics) {
    metrics::Registry &M = *Opts.Metrics;
    M.counter("corpus.templates").inc(Templates.size());
    M.counter("corpus.variants").inc(Report.TotalVariants);
    M.counter("corpus.failures").inc(Report.Failed);
    M.counter("corpus.false_rejects").inc(Report.FalseRejects);
    M.counter("corpus.shrink_steps").inc(ShrinkSteps);
    M.counter("corpus.shrink_evaluations").inc(ShrinkEvals);
    std::uint64_t Events = 0;
    for (const TemplateSummary &S : Report.Templates)
      Events += S.EventsReplayed;
    M.counter("corpus.events_replayed").inc(Events);
  }
  return Report;
}
