//===- corpus/Generator.cpp ------------------------------------------------==//
//
// Method bodies are a verbatim move of the original tests/RandomProgram.h
// inline definitions: the seed-to-module mapping is a compatibility
// contract (see the header) and must not drift.
//
//===----------------------------------------------------------------------===//

#include "corpus/Generator.h"

#include "frontend/Lower.h"

using namespace jrpm;
using namespace jrpm::corpus;

ir::Module ProgramGenerator::generate() {
  using namespace front;
  Locals = {"x0", "x1", "x2"};
  NextLocal = 3;
  NextLoopVar = 0;
  NumHelpers = static_cast<int>(Rng.nextBelow(3)); // 0..2 helpers

  std::vector<St> Body;
  // Arrays, power-of-two sized so masked indices are always in bounds.
  for (int A = 0; A < NumArrays; ++A) {
    std::string Name = arrayName(A);
    std::string IV = freshLoopVar();
    Body.push_back(assign(Name, allocWords(c(ArraySize))));
    Body.push_back(forLoop(
        IV, c(0), lt(v(IV), c(ArraySize)), 1,
        store(v(Name), v(IV),
              band(mul(add(v(IV), c(3)), c(2654435761LL)),
                   c(0xFFFFF)))));
  }
  for (const std::string &L : Locals)
    Body.push_back(assign(L, c(static_cast<std::int64_t>(Rng.nextBelow(100)))));

  int Stmts = 3 + static_cast<int>(Rng.nextBelow(4));
  std::uint64_t Budget = 3000;
  for (int S = 0; S < Stmts; ++S)
    Body.push_back(genStmt(/*Depth=*/0, Budget));

  // Order-sensitive checksum over arrays and locals.
  Body.push_back(assign("chk", c(1)));
  for (int A = 0; A < NumArrays; ++A) {
    std::string IV = freshLoopVar();
    Body.push_back(forLoop(
        IV, c(0), lt(v(IV), c(ArraySize)), 1,
        assign("chk", add(mul(v("chk"), c(31)),
                          band(ld(v(arrayName(A)), v(IV)),
                               c(0xFFFFFFFF))))));
  }
  for (const std::string &L : Locals)
    Body.push_back(
        assign("chk", add(mul(v("chk"), c(33)), band(v(L), c(0xFFFFFFFF)))));
  Body.push_back(ret(v("chk")));

  front::ProgramDef P;
  for (int H = 0; H < NumHelpers; ++H)
    P.Functions.push_back(makeHelper(H));
  front::FuncDef Main;
  Main.Name = "main";
  Main.Body = seq(std::move(Body));
  P.Functions.push_back(std::move(Main));
  return front::lowerProgram(P);
}

front::FuncDef ProgramGenerator::makeHelper(int Index) {
  using namespace front;
  FuncDef F;
  F.Name = "helper" + std::to_string(Index);
  F.Params = {"p0", "p1"};
  std::int64_t Trip = 2 + static_cast<std::int64_t>(Rng.nextBelow(5));
  std::int64_t MulC = 3 + static_cast<std::int64_t>(Rng.nextBelow(60));
  F.Body = seq({
      assign("acc", bxor(v("p0"), c(static_cast<std::int64_t>(
                                      Rng.nextBelow(1000))))),
      forLoop("h", c(0), lt(v("h"), c(Trip)), 1,
              assign("acc", band(add(mul(v("acc"), c(MulC)), v("p1")),
                                 c(0xFFFFF)))),
      ret(v("acc")),
  });
  return F;
}

front::Ex ProgramGenerator::randLocal() {
  return front::v(Locals[Rng.nextBelow(Locals.size())]);
}

front::Ex ProgramGenerator::genExpr(int Depth,
                                    const std::vector<std::string> &LoopVars) {
  using namespace front;
  if (Depth >= 3 || Rng.nextBelow(100) < 30) {
    switch (Rng.nextBelow(3)) {
    case 0:
      return c(static_cast<std::int64_t>(Rng.nextBelow(200)) - 100);
    case 1:
      return randLocal();
    default:
      if (!LoopVars.empty())
        return v(LoopVars[Rng.nextBelow(LoopVars.size())]);
      return randLocal();
    }
  }
  switch (Rng.nextBelow(10)) {
  case 0:
    return add(genExpr(Depth + 1, LoopVars), genExpr(Depth + 1, LoopVars));
  case 1:
    return sub(genExpr(Depth + 1, LoopVars), genExpr(Depth + 1, LoopVars));
  case 2:
    return mul(band(genExpr(Depth + 1, LoopVars), c(0xFFFF)),
               band(genExpr(Depth + 1, LoopVars), c(0xFFFF)));
  case 3:
    return band(genExpr(Depth + 1, LoopVars), c(0x7FFFFFFF));
  case 4:
    return bxor(genExpr(Depth + 1, LoopVars), genExpr(Depth + 1, LoopVars));
  case 5: // division by a nonzero constant only
    return sdiv(genExpr(Depth + 1, LoopVars),
                c(1 + static_cast<std::int64_t>(Rng.nextBelow(9))));
  case 6:
    return srem(genExpr(Depth + 1, LoopVars),
                c(2 + static_cast<std::int64_t>(Rng.nextBelow(17))));
  case 7: // array load with a masked index
    return ld(v(arrayName(static_cast<int>(Rng.nextBelow(NumArrays)))),
              band(genExpr(Depth + 1, LoopVars), c(ArraySize - 1)));
  case 8:
    if (NumHelpers > 0)
      return call("helper" +
                      std::to_string(Rng.nextBelow(
                          static_cast<std::uint64_t>(NumHelpers))),
                  {genExpr(Depth + 1, LoopVars),
                   genExpr(Depth + 1, LoopVars)});
    return randLocal();
  default:
    return lt(genExpr(Depth + 1, LoopVars), genExpr(Depth + 1, LoopVars));
  }
}

front::St ProgramGenerator::genStmt(int Depth, std::uint64_t &Budget) {
  using namespace front;
  std::vector<std::string> LoopVars(ActiveLoopVars);
  std::uint64_t Kind = Rng.nextBelow(100);

  if (Kind < 35 && Depth < 3 && Budget >= 4) {
    // A counted loop.
    std::int64_t Trip = 2 + static_cast<std::int64_t>(Rng.nextBelow(10));
    Trip = std::min<std::int64_t>(Trip,
                                  static_cast<std::int64_t>(Budget / 2));
    std::uint64_t InnerBudget = Budget / static_cast<std::uint64_t>(Trip);
    Budget = InnerBudget; // consumed multiplicatively
    std::string IVar = freshLoopVar();
    ActiveLoopVars.push_back(IVar);
    int N = 1 + static_cast<int>(Rng.nextBelow(3));
    // Choose the loop shape up front: the do/while variant increments
    // its counter in the body, so it must not contain a break or
    // continue that could skip the increment.
    bool AsDoWhile = Rng.nextBelow(100) < 25;
    std::vector<St> Body;
    for (int S = 0; S < N; ++S)
      Body.push_back(genStmt(Depth + 1, InnerBudget));
    if (!AsDoWhile && Rng.nextBelow(100) < 20)
      Body.push_back(iff(eq(band(v(IVar), c(7)), c(6)),
                         Rng.nextBelow(2) ? brk() : cont()));
    ActiveLoopVars.pop_back();
    if (AsDoWhile) {
      // Counted do/while: the latch carries the condition, exercising
      // the annotator's conditional-backedge path.
      Body.push_back(assign(IVar, add(v(IVar), c(1))));
      return seq({assign(IVar, c(0)),
                  doWhile(lt(v(IVar), c(Trip)), seq(Body))});
    }
    return forLoop(IVar, c(0), lt(v(IVar), c(Trip)), 1, seq(Body));
  }
  if (Kind < 55) {
    // Conditional. The condition is generated first: it lowers before
    // the branches, so it must not reference locals first defined there.
    Ex Cond = genExpr(1, LoopVars);
    St Then = genStmt(Depth + 1, Budget);
    if (Rng.nextBelow(2))
      return iff(Cond, Then);
    St Else = genStmt(Depth + 1, Budget);
    return iffElse(Cond, Then, Else);
  }
  if (Kind < 75) {
    // Array store with masked index.
    return store(v(arrayName(static_cast<int>(Rng.nextBelow(NumArrays)))),
                 band(genExpr(1, LoopVars), c(ArraySize - 1)),
                 genExpr(1, LoopVars));
  }
  if (Kind < 90) {
    // Assignment to an existing local (possibly self-referential: a
    // carried chain or reduction when inside a loop).
    std::string Target = Locals[Rng.nextBelow(Locals.size())];
    if (Rng.nextBelow(2))
      return assign(Target, add(v(Target), genExpr(1, LoopVars)));
    return assign(Target, genExpr(0, LoopVars));
  }
  // Fresh local definition.
  std::string Name = "x" + std::to_string(NextLocal++);
  Locals.push_back(Name);
  return assign(Name, genExpr(0, LoopVars));
}
