//===- corpus/Oracles.h - Differential oracle stack over variants ----------==//
//
// Three oracles decide whether a corpus variant exposes a bug. Each one
// compares two independent computations of the same fact, so a failure
// localizes the defect to a specific layer:
//
//   1. Execution: sequential interpretation vs speculative TLS execution
//      must be bit-identical, checked across a 3-point HydraConfig grid
//      (restart, carried-local sync, line-granular violations).
//   2. Static conformance: the static prefilter's and the affine oracle's
//      serial rejections are scored against the dynamic TEST selection;
//      a rejected-but-selected loop (false rejection) is a hard failure —
//      the zero-false-rejection gate from bench_static_vs_test, now
//      enforced per variant.
//   3. Replay: the profiling run's trace is recorded once into memory and
//      replayed into a fresh TraceEngine; the replayed selection digest
//      must equal the live one (record-once / replay-many identity).
//
// All three run from one profiled execution plus three TLS executions, no
// files involved, so the stack is cheap enough for thousands of variants
// and safe to run concurrently on the sweep pool.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_CORPUS_ORACLES_H
#define JRPM_CORPUS_ORACLES_H

#include "corpus/Variant.h"
#include "sim/Config.h"
#include "support/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jrpm {
namespace corpus {

/// Which oracle flagged a divergence.
enum class OracleKind : std::uint8_t {
  Execution,         ///< sequential vs speculative checksum
  StaticConformance, ///< false static rejection vs dynamic TEST
  Replay,            ///< replayed selection digest diverged
  Injected,          ///< planted fault (testing the harness itself)
};

const char *oracleKindName(OracleKind K);

struct OracleFailure {
  OracleKind Kind = OracleKind::Execution;
  std::string Detail;
};

/// Per-variant tallies plus the verdict.
struct OracleOutcome {
  bool Passed = true;
  std::vector<OracleFailure> Failures;

  std::uint64_t SeqReturn = 0;
  std::uint64_t SeqCycles = 0;
  std::uint64_t SelectionDigest = 0; ///< live selection digest
  std::uint64_t EventsReplayed = 0;
  std::uint32_t Candidates = 0;     ///< candidate loops in the variant
  std::uint32_t DynSelected = 0;    ///< loops dynamic TEST selected
  std::uint32_t StaticRejects = 0;  ///< serial rejections (both modes)
  std::uint32_t FalseRejects = 0;   ///< rejections TEST contradicts

  Json toJson() const;
};

/// Harness configuration. InjectTripAtLeast is the planted-fault knob the
/// shrinker tests and `jrpm-corpus shrink --inject-trip` use: when > 0,
/// any variant whose TripCount holes multiply to >= the threshold is
/// reported as failing (OracleKind::Injected). The product is monotone in
/// every hole, so hole-wise minimization provably converges to a smallest
/// failing assignment.
struct OracleConfig {
  sim::HydraConfig Hw;
  std::int64_t InjectTripAtLeast = 0;
};

/// Product of the clamped TripCount hole values of \p Spec under \p T
/// (1 when the template has none) — the planted-fault trigger metric.
std::int64_t tripProduct(const Template &T, const VariantSpec &Spec);

/// Runs the full oracle stack on one variant.
OracleOutcome runOracles(const Template &T, const Variant &V,
                         const OracleConfig &Cfg);

} // namespace corpus
} // namespace jrpm

#endif // JRPM_CORPUS_ORACLES_H
