//===- corpus/Variant.h - Seeded template instantiation --------------------==//
//
// A variant is a template with every hole filled. The filler draws hole
// values with the deterministic xorshift64* generator seeded from
// {template id, seed}, so the same pair always produces a byte-identical
// module (and therefore the same FNV-1a program digest) on every machine,
// thread count, and rerun — the reproducibility contract the corpus
// report, the shrinker, and the `.jrpm` repro files are built on.
//
// Every artifact derived from a variant embeds its {template_id, seed}
// provenance: a failure in a corpus report reproduces from the report
// alone (re-extract, re-fill, re-run), and a shrunk repro additionally
// carries its explicit hole assignment because minimization leaves the
// seed's original draw behind.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_CORPUS_VARIANT_H
#define JRPM_CORPUS_VARIANT_H

#include "corpus/Template.h"
#include "ir/IR.h"
#include "support/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jrpm {
namespace corpus {

/// FNV-1a over \p Text — the corpus' program-digest primitive.
std::uint64_t fnv1a(const std::string &Text);

/// One filled hole.
struct HoleValue {
  std::string Name;
  std::int64_t Value = 0;

  bool operator==(const HoleValue &O) const = default;
};

/// A fully specified variant: provenance plus the hole assignment. Holes
/// are stored in template hole order.
struct VariantSpec {
  std::string TemplateId;
  std::uint64_t Seed = 0;
  std::vector<HoleValue> Holes;

  bool operator==(const VariantSpec &O) const = default;

  const HoleValue *find(const std::string &Name) const;
  std::int64_t valueOf(const std::string &Name, std::int64_t Default) const;
  /// Shrink metric: total distance of every hole from its template minimum
  /// (0 = fully minimized). Holes absent from \p T count as 0.
  std::int64_t weight(const Template &T) const;

  Json toJson() const;
};

/// Fills every hole of \p T from the seeded generator.
VariantSpec fillHoles(const Template &T, std::uint64_t Seed);

/// An instantiated variant: the module, its canonical source rendering,
/// and the FNV-1a digest of that rendering.
struct Variant {
  VariantSpec Spec;
  ir::Module Module;
  std::string Source;        ///< ir::Module::dump() of the module
  std::uint64_t Digest = 0;  ///< fnv1a(Source)
};

/// Synthesizes the family skeleton of \p T with \p Spec's hole values
/// (clamped into each hole's validity range), lowers and finalizes it.
/// The result is terminating, trap-free, and returns an order-sensitive
/// checksum — the properties every oracle relies on.
Variant instantiate(const Template &T, const VariantSpec &Spec);

/// Convenience: fillHoles + instantiate.
Variant instantiate(const Template &T, std::uint64_t Seed);

/// Renders the reproducible `.jrpm` repro document: provenance
/// ({template_id, seed}), the explicit hole assignment, the program
/// digest, and the module source.
std::string reproDocument(const Variant &V);

/// Parses a repro document back into its spec. \p Digest (optional)
/// receives the recorded program digest. Returns false with *Err set on
/// malformed input.
bool parseReproDocument(const std::string &Text, VariantSpec &Out,
                        std::uint64_t *Digest = nullptr,
                        std::string *Err = nullptr);

} // namespace corpus
} // namespace jrpm

#endif // JRPM_CORPUS_VARIANT_H
