//===- corpus/Shrink.cpp ---------------------------------------------------==//

#include "corpus/Shrink.h"

using namespace jrpm;
using namespace jrpm::corpus;

Json ShrinkResult::toJson() const {
  Json J = Json::object();
  J["minimized"] = Minimized.toJson();
  J["steps"] = Steps;
  J["evaluations"] = Evaluations;
  J["still_failing"] = StillFailing;
  return J;
}

namespace {

/// Canonicalizes \p Spec against \p T: every template hole present exactly
/// once, clamped, in template order. Extra holes are dropped. This is the
/// domain the shrinker walks, so weight comparisons are meaningful.
VariantSpec canonicalize(const Template &T, const VariantSpec &Spec) {
  VariantSpec Out;
  Out.TemplateId = Spec.TemplateId.empty() ? T.Id : Spec.TemplateId;
  Out.Seed = Spec.Seed;
  for (const Hole &H : T.Holes)
    Out.Holes.push_back({H.Name, H.clamp(Spec.valueOf(H.Name, H.Observed))});
  return Out;
}

} // namespace

ShrinkResult corpus::shrinkVariant(const Template &T,
                                   const VariantSpec &Failing,
                                   const OracleConfig &Cfg) {
  ShrinkResult R;
  VariantSpec Cur = canonicalize(T, Failing);

  auto Evaluate = [&](const VariantSpec &Spec) {
    ++R.Evaluations;
    return runOracles(T, instantiate(T, Spec), Cfg);
  };

  OracleOutcome CurOutcome = Evaluate(Cur);
  if (CurOutcome.Passed) {
    R.Minimized = Cur;
    R.Outcome = std::move(CurOutcome);
    R.StillFailing = false;
    return R;
  }

  // Greedy hole-wise descent to a fixpoint. For each hole, candidates in
  // decreasing ambition: the minimum, the midpoint toward it, one step
  // down. Accepting any of them strictly decreases the weight, so the
  // loop terminates without further bookkeeping.
  bool Improved = true;
  while (Improved && R.Evaluations < MaxShrinkEvaluations) {
    Improved = false;
    for (std::size_t I = 0; I < T.Holes.size(); ++I) {
      const Hole &H = T.Holes[I];
      bool HoleImproved = true;
      while (HoleImproved && R.Evaluations < MaxShrinkEvaluations) {
        HoleImproved = false;
        std::int64_t V = Cur.Holes[I].Value;
        if (V <= H.Min)
          break;
        const std::int64_t Candidates[3] = {H.Min, (V + H.Min) / 2, V - 1};
        for (std::int64_t C : Candidates) {
          if (C >= V || C < H.Min)
            continue;
          VariantSpec Next = Cur;
          Next.Holes[I].Value = C;
          OracleOutcome O = Evaluate(Next);
          if (!O.Passed) {
            Cur = std::move(Next);
            CurOutcome = std::move(O);
            ++R.Steps;
            HoleImproved = true;
            Improved = true;
            break;
          }
          if (R.Evaluations >= MaxShrinkEvaluations)
            break;
        }
      }
    }
  }

  R.Minimized = std::move(Cur);
  R.Outcome = std::move(CurOutcome);
  R.StillFailing = true;
  return R;
}
