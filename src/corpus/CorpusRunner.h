//===- corpus/CorpusRunner.h - Deterministic corpus sweeps -----------------==//
//
// Runs the differential oracle stack over (template x seed) variant grids
// on the work-stealing sweep pool. Determinism follows the sweep engine's
// discipline: the variant plan is enumerated up front in template-major
// order, every job writes only its preassigned result slot, and the report
// is aggregated by walking the slots in plan order — so the report JSON
// (sorted keys, fixed float format) is byte-identical whether the corpus
// ran on 1 thread or N, and across reruns. The corpus digest (FNV-1a over
// every variant's program digest in plan order) is the one-line currency
// the golden gate and the CLI compare.
//
// Failures are auto-shrunk in place (Shrink.h) and reported with full
// {template_id, seed} provenance plus the minimized hole assignment, so a
// red report reproduces from the report alone.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_CORPUS_CORPUSRUNNER_H
#define JRPM_CORPUS_CORPUSRUNNER_H

#include "corpus/Shrink.h"
#include "metrics/Metrics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jrpm {
namespace corpus {

struct CorpusOptions {
  /// Variant seeds are BaseSeed .. BaseSeed + VariantsPerTemplate - 1,
  /// applied to every template (fillHoles keys the stream on the template
  /// id, so equal seeds still draw independently per template).
  std::uint64_t BaseSeed = 1;
  std::uint32_t VariantsPerTemplate = 25;
  /// Sweep pool width; 0 selects ThreadPool::defaultThreads().
  std::uint32_t Threads = 1;
  OracleConfig Oracle;
  /// Auto-shrink failing variants (off for raw triage speed).
  bool ShrinkFailures = true;
  /// Optional corpus.* counters destination.
  metrics::Registry *Metrics = nullptr;
};

/// Plan-order aggregate for one template.
struct TemplateSummary {
  std::string Id;
  std::string Family;
  std::uint32_t Variants = 0;
  std::uint32_t Failed = 0;
  /// FNV-1a over the template's variant digests, in seed order.
  std::uint64_t Digest = 0;
  std::uint64_t Candidates = 0;
  std::uint64_t DynSelected = 0;
  std::uint64_t StaticRejects = 0;
  std::uint64_t FalseRejects = 0;
  std::uint64_t EventsReplayed = 0;
};

/// One failing variant, with provenance and its shrunk form.
struct FailureRecord {
  VariantSpec Spec;
  std::uint64_t Digest = 0;
  std::vector<OracleFailure> Failures;
  bool HasShrunk = false;
  VariantSpec ShrunkSpec;
  std::uint64_t ShrunkDigest = 0;
  std::int64_t ShrunkWeight = 0;
  std::uint32_t ShrinkSteps = 0;
  std::uint32_t ShrinkEvaluations = 0;
};

struct CorpusReport {
  std::uint64_t BaseSeed = 0;
  std::uint32_t VariantsPerTemplate = 0;
  std::uint64_t TotalVariants = 0;
  std::uint64_t Passed = 0;
  std::uint64_t Failed = 0;
  std::uint64_t FalseRejects = 0;
  /// FNV-1a over every variant digest in plan order — the whole-corpus
  /// determinism currency.
  std::uint64_t CorpusDigest = 0;
  std::vector<TemplateSummary> Templates; ///< in template plan order
  std::vector<FailureRecord> Failures;    ///< in plan order

  /// Deterministic report document. Thread count is deliberately not part
  /// of it: 1-thread and N-thread runs must serialize byte-identically.
  Json toJson() const;
};

/// Runs the corpus over \p Templates. Deterministic for fixed
/// (Templates, Opts.BaseSeed, Opts.VariantsPerTemplate, Opts.Oracle)
/// regardless of Opts.Threads.
CorpusReport runCorpus(const std::vector<Template> &Templates,
                       const CorpusOptions &Opts);

} // namespace corpus
} // namespace jrpm

#endif // JRPM_CORPUS_CORPUSRUNNER_H
