//===- corpus/Generator.h - Seeded structured-program generator ------------==//
//
// The shared seeded program generator: deterministic pseudo-random programs
// against the frontend DSL for property testing and corpus work. Every
// generated program terminates (constant loop bounds with a work budget),
// never traps (power-of-two-masked array indices, division by nonzero
// constants, bounded shifts), and returns an order-sensitive integer
// checksum, so sequential and speculative executions can be compared
// bit-for-bit.
//
// Promoted from tests/RandomProgram.h so the fuzz suites and the corpus
// engine (Template.h / Variant.h) consume one generator instead of two
// drifting copies. The generation algorithm is frozen: a given seed must
// produce byte-identical modules forever, because recorded failure seeds
// (fuzz regressions, corpus repro files) reproduce from the seed alone.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_CORPUS_GENERATOR_H
#define JRPM_CORPUS_GENERATOR_H

#include "frontend/Ast.h"
#include "ir/IR.h"
#include "support/Prng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jrpm {
namespace corpus {

class ProgramGenerator {
public:
  explicit ProgramGenerator(std::uint64_t Seed) : Rng(Seed ^ 0xA5A5A5A5) {}

  ir::Module generate();

private:
  static std::string arrayName(int A) { return "arr" + std::to_string(A); }

  /// A small pure helper function over two integer parameters: a bounded
  /// mixing loop, so calls inside generated loops nest activations.
  front::FuncDef makeHelper(int Index);

  std::string freshLoopVar() {
    CurLoopVar = "i" + std::to_string(NextLoopVar++);
    return CurLoopVar;
  }
  const std::string &loopVar() const { return CurLoopVar; }

  front::Ex randLocal();

  /// Random integer expression of bounded depth; never traps.
  front::Ex genExpr(int Depth, const std::vector<std::string> &LoopVars);

  front::St genStmt(int Depth, std::uint64_t &Budget);

  static constexpr int NumArrays = 3;
  static constexpr std::int64_t ArraySize = 64; // power of two
  Prng Rng;
  std::vector<std::string> Locals;
  std::vector<std::string> ActiveLoopVars;
  std::string CurLoopVar = "i_none";
  int NextLocal = 0;
  int NextLoopVar = 0;
  int NumHelpers = 0;
};

} // namespace corpus
} // namespace jrpm

#endif // JRPM_CORPUS_GENERATOR_H
