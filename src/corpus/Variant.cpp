//===- corpus/Variant.cpp --------------------------------------------------==//

#include "corpus/Variant.h"

#include "frontend/Ast.h"
#include "frontend/Lower.h"
#include "support/Format.h"

#include <cassert>

using namespace jrpm;
using namespace jrpm::corpus;

std::uint64_t corpus::fnv1a(const std::string &Text) {
  std::uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

const HoleValue *VariantSpec::find(const std::string &Name) const {
  for (const HoleValue &H : Holes)
    if (H.Name == Name)
      return &H;
  return nullptr;
}

std::int64_t VariantSpec::valueOf(const std::string &Name,
                                  std::int64_t Default) const {
  const HoleValue *H = find(Name);
  return H ? H->Value : Default;
}

std::int64_t VariantSpec::weight(const Template &T) const {
  std::int64_t W = 0;
  for (const HoleValue &H : Holes)
    if (const Hole *TH = T.findHole(H.Name))
      W += TH->clamp(H.Value) - TH->Min;
  return W;
}

Json VariantSpec::toJson() const {
  Json J = Json::object();
  J["template_id"] = TemplateId;
  J["seed"] = Seed;
  // An array, not an object: JSON objects serialize with sorted keys, and
  // the hole list must round-trip in template order (VariantSpec equality
  // is order-sensitive, deliberately — it mirrors fill order).
  Json HJ = Json::array();
  for (const HoleValue &H : Holes) {
    Json One = Json::object();
    One["name"] = H.Name;
    One["value"] = H.Value;
    HJ.push(std::move(One));
  }
  J["holes"] = std::move(HJ);
  return J;
}

VariantSpec corpus::fillHoles(const Template &T, std::uint64_t Seed) {
  // The stream is keyed by both the seed and the template id, so the same
  // seed paints different templates with independent draws.
  Prng Rng(Seed ^ fnv1a(T.Id));
  VariantSpec Spec;
  Spec.TemplateId = T.Id;
  Spec.Seed = Seed;
  for (const Hole &H : T.Holes)
    Spec.Holes.push_back({H.Name, H.pick(Rng)});
  return Spec;
}

namespace {

/// Hole lookup with clamping: the shrinker proposes raw values, and a
/// repro file may carry values from an older hole range; every consumer
/// sees only valid ones.
struct HoleEnv {
  const Template &T;
  const VariantSpec &Spec;

  std::int64_t get(const char *Name) const {
    const Hole *H = T.findHole(Name);
    if (!H)
      return 0;
    return H->clamp(Spec.valueOf(Name, H->Observed));
  }
};

/// Independent filler statements: stores into the secondary array at
/// indices derived from \p Iv, alias-disjoint from every family's primary
/// dependence so they add traffic without changing the family's verdict
/// class.
void appendExtras(std::vector<front::St> &Body, front::Ex Iv,
                  std::int64_t Extra, std::int64_t Mask, std::int64_t Mix) {
  using namespace front;
  for (std::int64_t K = 0; K < Extra; ++K)
    Body.push_back(store(v("b"), band(add(Iv, c(K * 7 + 1)), c(Mask)),
                         band(add(mul(Iv, c(Mix + 2 * K)), c(K)),
                              c(0xFFFFF))));
}

} // namespace

Variant corpus::instantiate(const Template &T, const VariantSpec &Spec) {
  using namespace front;
  HoleEnv E{T, Spec};
  const std::int64_t Trip = E.get("trip");
  const std::int64_t Size = std::int64_t(1) << E.get("arr_log2");
  const std::int64_t Mask = Size - 1;
  const std::int64_t Mix = E.get("mix");
  const std::int64_t Extra = E.get("extra");
  const std::int64_t Stride = E.get("stride");
  const std::int64_t Dist = E.get("dist");

  ProgramDef P;
  std::vector<St> Body;

  // Prologue: two power-of-two arrays with deterministic contents, two
  // seeded locals. Masked indexing against Mask keeps every access in
  // bounds whatever the holes say.
  Body.push_back(assign("a", allocWords(c(Size))));
  Body.push_back(forLoop("f0", c(0), lt(v("f0"), c(Size)), 1,
                         store(v("a"), v("f0"),
                               band(mul(add(v("f0"), c(3)), c(Mix)),
                                    c(0xFFFFF)))));
  Body.push_back(assign("b", allocWords(c(Size))));
  Body.push_back(forLoop("f1", c(0), lt(v("f1"), c(Size)), 1,
                         store(v("b"), v("f1"),
                               band(mul(add(mul(v("f1"), c(2)), c(1)),
                                        c(Mix)),
                                    c(0xFFFFF)))));
  Body.push_back(assign("x0", c(Mix & 0xFF)));
  Body.push_back(assign("x1", c((Mix * 7) & 0xFF)));

  if (T.Family == "serial-walk" || T.Family == "guarded-recurrence") {
    // The textbook heap recurrence: every iteration reloads the cell the
    // previous iteration stored, at the pinned distance of 1.
    Body.push_back(assign("p", allocWords(c(8))));
    Body.push_back(store(v("p"), Ex(), 0, c(0)));
    Body.push_back(assign("q", c(0)));
    std::vector<St> Walk;
    Walk.push_back(assign("q", add(v("q"), c(1))));
    appendExtras(Walk, v("q"), Extra, Mask, Mix);
    Walk.push_back(store(v("p"), Ex(), 0, add(ld(v("p")), c(1))));
    if (T.Family == "guarded-recurrence") {
      // A periodically firing guard after the store hoists it out of the
      // latch block: the shape rule goes blind, the affine oracle must
      // still prove the distance-1 arc.
      const std::int64_t Period = std::int64_t(1) << E.get("guard_log2");
      Walk.push_back(iff(eq(band(v("q"), c(Period - 1)), c(Period - 1)),
                         store(v("b"), band(v("q"), c(Mask)), 0,
                               band(mul(v("q"), c(Mix)), c(0xFFFFF)))));
    }
    Body.push_back(whileLoop(lt(ld(v("p")), c(Trip)), seq(std::move(Walk))));
  } else if (T.Family == "may-recurrence") {
    // Store address depends on loaded data: the affine tests fall back to
    // May and only dynamic TEST can price the loop.
    std::vector<St> Loop;
    Loop.push_back(assign("t", band(ld(v("a"), band(mul(v("i"), c(Dist)),
                                                    c(Mask))),
                                    c(Mask))));
    Loop.push_back(store(v("a"),
                         band(add(mul(v("i"), c(Stride)), v("t")), c(Mask)),
                         band(add(ld(v("a"), band(mul(v("i"), c(Stride)),
                                                  c(Mask))),
                                  c(Mix)),
                              c(0xFFFFF))));
    appendExtras(Loop, v("i"), Extra, Mask, Mix);
    Body.push_back(
        forLoop("i", c(0), lt(v("i"), c(Trip)), 1, seq(std::move(Loop))));
  } else if (T.Family == "reduction") {
    std::vector<St> Loop;
    Loop.push_back(assign("x0", add(v("x0"),
                                    ld(v("a"), band(mul(v("i"), c(Stride)),
                                                    c(Mask))))));
    appendExtras(Loop, v("i"), Extra, Mask, Mix);
    Body.push_back(
        forLoop("i", c(0), lt(v("i"), c(Trip)), 1, seq(std::move(Loop))));
  } else if (T.Family == "call-mix") {
    const std::int64_t HelperTrip = E.get("helper_trip");
    FuncDef Helper;
    Helper.Name = "mixer";
    Helper.Params = {"p0", "p1"};
    Helper.Body = seq({
        assign("acc", bxor(v("p0"), c(Mix))),
        forLoop("h", c(0), lt(v("h"), c(HelperTrip)), 1,
                assign("acc", band(add(mul(v("acc"), c(Mix)), v("p1")),
                                   c(0xFFFFF)))),
        ret(v("acc")),
    });
    P.Functions.push_back(std::move(Helper));
    std::vector<St> Loop;
    Loop.push_back(assign("x0", band(add(v("x0"),
                                         call("mixer", {v("i"), v("x0")})),
                                     c(0xFFFFF))));
    appendExtras(Loop, v("i"), Extra, Mask, Mix);
    Body.push_back(
        forLoop("i", c(0), lt(v("i"), c(Trip)), 1, seq(std::move(Loop))));
  } else if (T.Family == "loop-nest") {
    const std::int64_t TripInner = E.get("trip_inner");
    std::vector<St> Outer;
    Outer.push_back(forLoop(
        "j", c(0), lt(v("j"), c(TripInner)), 1,
        store(v("a"),
              band(add(mul(v("i"), c(Stride)), v("j")), c(Mask)),
              band(add(ld(v("a"),
                          band(add(add(mul(v("i"), c(Stride)), v("j")),
                                   c(Dist)),
                               c(Mask))),
                       c(Mix)),
                   c(0xFFFFF)))));
    Outer.push_back(assign("x0", band(add(v("x0"), v("i")), c(0xFFFFF))));
    appendExtras(Outer, v("i"), Extra, Mask, Mix);
    Body.push_back(
        forLoop("i", c(0), lt(v("i"), c(Trip)), 1, seq(std::move(Outer))));
  } else if (T.Family == "affine-stride") {
    std::vector<St> Loop;
    Loop.push_back(store(v("a"), band(mul(v("i"), c(Stride)), c(Mask)),
                         band(add(ld(v("a"),
                                     band(add(mul(v("i"), c(Stride)),
                                              c(Dist)),
                                          c(Mask))),
                                  c(Mix)),
                              c(0xFFFFF))));
    appendExtras(Loop, v("i"), Extra, Mask, Mix);
    Body.push_back(
        forLoop("i", c(0), lt(v("i"), c(Trip)), 1, seq(std::move(Loop))));
  } else { // scalar-chain (and the fallback family)
    std::vector<St> Loop;
    Loop.push_back(assign("x0", band(add(mul(v("x0"), c(Mix)), v("i")),
                                     c(0xFFFFF))));
    Loop.push_back(assign("x1", band(add(v("x1"), v("x0")), c(0xFFFFF))));
    appendExtras(Loop, v("i"), Extra, Mask, Mix);
    Body.push_back(
        forLoop("i", c(0), lt(v("i"), c(Trip)), 1, seq(std::move(Loop))));
  }

  // Order-sensitive checksum epilogue over both arrays and the locals.
  Body.push_back(assign("chk", c(1)));
  Body.push_back(forLoop("c0", c(0), lt(v("c0"), c(Size)), 1,
                         assign("chk", add(mul(v("chk"), c(31)),
                                           band(ld(v("a"), v("c0")),
                                                c(0xFFFFFFFF))))));
  Body.push_back(forLoop("c1", c(0), lt(v("c1"), c(Size)), 1,
                         assign("chk", add(mul(v("chk"), c(31)),
                                           band(ld(v("b"), v("c1")),
                                                c(0xFFFFFFFF))))));
  Body.push_back(
      assign("chk", add(mul(v("chk"), c(33)), band(v("x0"), c(0xFFFFFFFF)))));
  Body.push_back(
      assign("chk", add(mul(v("chk"), c(33)), band(v("x1"), c(0xFFFFFFFF)))));
  Body.push_back(ret(v("chk")));

  FuncDef Main;
  Main.Name = "main";
  Main.Body = seq(std::move(Body));
  P.Functions.push_back(std::move(Main));

  Variant V;
  V.Spec = Spec;
  V.Module = front::lowerProgram(P);
  V.Source = V.Module.dump();
  V.Digest = fnv1a(V.Source);
  return V;
}

Variant corpus::instantiate(const Template &T, std::uint64_t Seed) {
  return instantiate(T, fillHoles(T, Seed));
}

std::string corpus::reproDocument(const Variant &V) {
  Json J = V.Spec.toJson();
  J["jrpm_corpus_repro"] = 1u;
  J["digest"] = formatString("%016llx", (unsigned long long)V.Digest);
  J["source"] = V.Source;
  return J.dump();
}

bool corpus::parseReproDocument(const std::string &Text, VariantSpec &Out,
                                std::uint64_t *Digest, std::string *Err) {
  Json J;
  if (!Json::parse(Text, J, Err))
    return false;
  auto Fail = [&](const char *Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (!J.isObject() || !J.find("jrpm_corpus_repro"))
    return Fail("not a jrpm corpus repro document");
  const Json *Id = J.find("template_id");
  const Json *Seed = J.find("seed");
  const Json *Holes = J.find("holes");
  if (!Id || !Id->isString() || !Seed || !Seed->isNumber() || !Holes ||
      !Holes->isArray())
    return Fail("repro document missing template_id/seed/holes");
  Out = VariantSpec();
  Out.TemplateId = Id->str();
  Out.Seed = Seed->asUint();
  for (const Json &HJ : Holes->items()) {
    const Json *Name = HJ.find("name");
    const Json *Value = HJ.find("value");
    if (!Name || !Name->isString() || !Value || !Value->isNumber())
      return Fail("malformed hole entry");
    Out.Holes.push_back(
        {Name->str(), static_cast<std::int64_t>(Value->number())});
  }
  if (Digest) {
    *Digest = 0;
    if (const Json *D = J.find("digest"); D && D->isString())
      *Digest = std::strtoull(D->str().c_str(), nullptr, 16);
  }
  return true;
}
