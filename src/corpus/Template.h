//===- corpus/Template.h - Loop/dependence templates lifted from the IR ----==//
//
// Template extraction in the style of "Java JIT Testing with Template
// Extraction" (PAPERS.md), applied to the speculative-thread domain: walk
// each registry workload's lowered IR through the full static stack
// (LoopInfo / InductionInfo / MemDep / affine oracle) and lift every
// candidate loop's shape into a parameterized *template* — a point in the
// feature lattice {nest depth, memory-access mix, carried-dependence kind,
// guard shape, call structure, reduction presence} whose concrete numbers
// (trip counts, strides, array sizes, dependence distances, guard periods)
// become typed holes with validity constraints.
//
// A template deliberately does not keep the source loop's body: filling
// the holes re-synthesizes a canonical loop nest with the same lattice
// coordinates (Variant.h), which is what makes thousands of seeded
// variants per extracted shape possible while every variant stays
// terminating, trap-free, and checksum-comparable.
//
// Extraction is deterministic and total: the same registry always yields
// the same template list (ids, ordering, hole bounds — byte-identical
// JSON), and every workload contributes at least one template; the test
// suite holds it to both.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_CORPUS_TEMPLATE_H
#define JRPM_CORPUS_TEMPLATE_H

#include "ir/IR.h"
#include "support/Json.h"
#include "support/Prng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jrpm {
namespace corpus {

/// What a hole parameterizes. The kind fixes the validity constraint the
/// filler and the shrinker must respect beyond the [Min, Max] range:
/// ArraySizeLog2 values are exponents (the array size is 1 << v, so masked
/// indexing stays in bounds for any value), DepDistance of a serial family
/// is pinned to 1 by construction, GuardPeriod values are log2 of the
/// firing period so `(i & (p-1)) == p-1` fires every p-th iteration.
enum class HoleKind : std::uint8_t {
  TripCount,     ///< iterations of one loop level
  ArraySizeLog2, ///< log2 of the backing array's word count
  Stride,        ///< affine index multiplier
  DepDistance,   ///< store-to-load iteration distance
  GuardPeriod,   ///< power-of-two firing period of a body guard
  MixConst,      ///< multiplicative mixing constant for data values
  ExtraStmts,    ///< independent filler statements in the body
};

/// Returns a short stable name for \p K (JSON, tables).
const char *holeKindName(HoleKind K);

/// Inverse of holeKindName. Returns false when \p Name matches no kind.
bool holeKindFromName(const std::string &Name, HoleKind &Out);

/// Every HoleKind value, in declaration order (round-trip tests).
inline constexpr HoleKind AllHoleKinds[] = {
    HoleKind::TripCount,  HoleKind::ArraySizeLog2, HoleKind::Stride,
    HoleKind::DepDistance, HoleKind::GuardPeriod,  HoleKind::MixConst,
    HoleKind::ExtraStmts,
};

/// One typed hole: a name, a kind, and an inclusive validity range.
/// Observed is the value (or closest representative) seen in the source
/// loop, kept for diagnostics and as the shrinker's starting intuition.
struct Hole {
  std::string Name;
  HoleKind Kind = HoleKind::TripCount;
  std::int64_t Min = 0;
  std::int64_t Max = 0;
  std::int64_t Observed = 0;

  /// Draws a uniformly distributed valid value from \p Rng.
  std::int64_t pick(Prng &Rng) const;
  /// Clamps \p V into [Min, Max] (the shrinker proposes raw values).
  std::int64_t clamp(std::int64_t V) const;
};

/// The lattice coordinates lifted from one source loop.
struct TemplateFeatures {
  std::uint32_t Depth = 1; ///< synthesized nest depth (1 or 2)
  std::uint32_t NumLoads = 0;
  std::uint32_t NumStores = 0;
  bool HasCall = false;
  bool HasGuard = false;          ///< conditional inside the body
  bool HasCarriedScalar = false;  ///< beyond inductors and reductions
  bool HasMemRecurrence = false;  ///< carried RAW through the heap
  bool HasReduction = false;
  std::string OracleVerdict; ///< affine-oracle verdict name at extraction
};

/// A parameterized loop/dependence template.
struct Template {
  /// "<workload>/<family>" — stable across extractions, embedded in every
  /// generated artifact as provenance.
  std::string Id;
  /// The shape family; decides which skeleton Variant.h synthesizes.
  /// One of: serial-walk, guarded-recurrence, may-recurrence, reduction,
  /// call-mix, loop-nest, affine-stride, scalar-chain.
  std::string Family;
  /// Loop id of the representative source loop (diagnostics only).
  std::uint32_t SourceLoopId = 0;
  /// Number of source loops in the workload that mapped to this template
  /// (the family's population before dedup).
  std::uint32_t SourceLoops = 0;
  TemplateFeatures Features;
  std::vector<Hole> Holes;

  Json toJson() const;
  const Hole *findHole(const std::string &Name) const;
};

/// All template family names, in extraction precedence order.
const std::vector<std::string> &templateFamilies();

/// Extracts the templates of one module: every natural loop is classified
/// into a family; one representative template per family is kept (the
/// first in candidate order), with SourceLoops counting the population.
std::vector<Template> extractTemplates(const std::string &WorkloadName,
                                       const ir::Module &M);

/// Extracts over the full 26-workload Table 6 registry, in registry order.
/// Deterministic and total (>= 1 template per workload).
std::vector<Template> extractRegistryTemplates();

/// Finds a template by id; returns nullptr when absent.
const Template *findTemplate(const std::vector<Template> &Templates,
                             const std::string &Id);

/// The extraction manifest: {"templates": [...], "count": n}.
Json templatesToJson(const std::vector<Template> &Templates);

} // namespace corpus
} // namespace jrpm

#endif // JRPM_CORPUS_TEMPLATE_H
