//===- corpus/Template.cpp -------------------------------------------------==//

#include "corpus/Template.h"

#include "analysis/Candidates.h"
#include "workloads/Workload.h"

#include <cassert>

using namespace jrpm;
using namespace jrpm::corpus;

const char *corpus::holeKindName(HoleKind K) {
  switch (K) {
  case HoleKind::TripCount:
    return "trip-count";
  case HoleKind::ArraySizeLog2:
    return "array-size-log2";
  case HoleKind::Stride:
    return "stride";
  case HoleKind::DepDistance:
    return "dep-distance";
  case HoleKind::GuardPeriod:
    return "guard-period";
  case HoleKind::MixConst:
    return "mix-const";
  case HoleKind::ExtraStmts:
    return "extra-stmts";
  }
  return "unknown";
}

bool corpus::holeKindFromName(const std::string &Name, HoleKind &Out) {
  for (HoleKind K : AllHoleKinds)
    if (Name == holeKindName(K)) {
      Out = K;
      return true;
    }
  return false;
}

std::int64_t Hole::pick(Prng &Rng) const {
  assert(Max >= Min && "malformed hole range");
  std::uint64_t Span = static_cast<std::uint64_t>(Max - Min) + 1;
  return Min + static_cast<std::int64_t>(Rng.nextBelow(Span));
}

std::int64_t Hole::clamp(std::int64_t V) const {
  if (V < Min)
    return Min;
  if (V > Max)
    return Max;
  return V;
}

const std::vector<std::string> &corpus::templateFamilies() {
  static const std::vector<std::string> Families = {
      "serial-walk",  "guarded-recurrence", "may-recurrence", "reduction",
      "call-mix",     "loop-nest",          "affine-stride",  "scalar-chain",
  };
  return Families;
}

Json Template::toJson() const {
  Json J = Json::object();
  J["id"] = Id;
  J["family"] = Family;
  J["source_loop_id"] = SourceLoopId;
  J["source_loops"] = SourceLoops;
  Json F = Json::object();
  F["depth"] = Features.Depth;
  F["loads"] = Features.NumLoads;
  F["stores"] = Features.NumStores;
  F["has_call"] = Features.HasCall;
  F["has_guard"] = Features.HasGuard;
  F["has_carried_scalar"] = Features.HasCarriedScalar;
  F["has_mem_recurrence"] = Features.HasMemRecurrence;
  F["has_reduction"] = Features.HasReduction;
  F["oracle_verdict"] = Features.OracleVerdict;
  J["features"] = std::move(F);
  Json Holes = Json::array();
  for (const Hole &H : this->Holes) {
    Json HJ = Json::object();
    HJ["name"] = H.Name;
    HJ["kind"] = holeKindName(H.Kind);
    HJ["min"] = H.Min;
    HJ["max"] = H.Max;
    HJ["observed"] = H.Observed;
    Holes.push(std::move(HJ));
  }
  J["holes"] = std::move(Holes);
  return J;
}

const Hole *Template::findHole(const std::string &Name) const {
  for (const Hole &H : Holes)
    if (H.Name == Name)
      return &H;
  return nullptr;
}

namespace {

Hole makeHole(const char *Name, HoleKind Kind, std::int64_t Min,
              std::int64_t Max, std::int64_t Observed) {
  Hole H;
  H.Name = Name;
  H.Kind = Kind;
  H.Min = Min;
  H.Max = Max;
  H.Observed = Observed;
  return H;
}

/// True when a non-latch block inside \p L branches conditionally to two
/// in-loop targets: the loop body forks (an if/guard), rather than only
/// the header/latch deciding exit-vs-iterate.
bool hasBodyGuard(const ir::Function &F, const analysis::Loop &L) {
  for (std::uint32_t B : L.Blocks) {
    bool IsLatch = false;
    for (std::uint32_t Latch : L.Latches)
      IsLatch |= Latch == B;
    if (B == L.Header || IsLatch)
      continue;
    const ir::BasicBlock &BB = F.Blocks[B];
    if (!BB.hasTerminator())
      continue;
    const ir::Instruction &T = BB.terminator();
    if (T.Op != ir::Opcode::CondBr)
      continue;
    if (L.contains(static_cast<std::uint32_t>(T.Imm)) &&
        L.contains(static_cast<std::uint32_t>(T.Imm2)))
      return true;
  }
  return false;
}

/// Classifies one candidate loop into its template family. Precedence
/// mirrors templateFamilies(): the most scenario-specific family wins, so
/// a provably-serial recurrence with a guard lands in guarded-recurrence
/// even though it also stores to the heap.
std::string classifyFamily(const TemplateFeatures &Feat) {
  if (Feat.HasMemRecurrence && Feat.OracleVerdict == "provably-serial")
    return Feat.HasGuard ? "guarded-recurrence" : "serial-walk";
  if (Feat.HasMemRecurrence)
    return "may-recurrence";
  if (Feat.HasReduction)
    return "reduction";
  if (Feat.HasCall)
    return "call-mix";
  if (Feat.Depth >= 2)
    return "loop-nest";
  if (Feat.NumStores > 0)
    return "affine-stride";
  return "scalar-chain";
}

/// Builds the hole list of one family. Every family carries the common
/// four holes (trip, array size, mixing constant, filler statements); the
/// dependence-shaped families add strides, distances, and guard periods
/// with family-specific validity constraints.
std::vector<Hole> holesForFamily(const std::string &Family) {
  std::vector<Hole> H;
  H.push_back(makeHole("trip", HoleKind::TripCount, 2, 24, 8));
  H.push_back(makeHole("arr_log2", HoleKind::ArraySizeLog2, 4, 8, 6));
  H.push_back(makeHole("mix", HoleKind::MixConst, 3, 61, 17));
  H.push_back(makeHole("extra", HoleKind::ExtraStmts, 0, 3, 1));
  if (Family == "serial-walk" || Family == "guarded-recurrence") {
    // The recurrence distance is what makes the family serial: pinned.
    H.push_back(makeHole("dist", HoleKind::DepDistance, 1, 1, 1));
  } else if (Family == "may-recurrence" || Family == "affine-stride" ||
             Family == "reduction" || Family == "loop-nest") {
    H.push_back(makeHole("stride", HoleKind::Stride, 1, 4, 1));
    H.push_back(makeHole("dist", HoleKind::DepDistance, 1, 4, 1));
  }
  if (Family == "guarded-recurrence")
    H.push_back(makeHole("guard_log2", HoleKind::GuardPeriod, 1, 3, 2));
  if (Family == "loop-nest")
    H.push_back(makeHole("trip_inner", HoleKind::TripCount, 2, 12, 4));
  if (Family == "call-mix")
    H.push_back(makeHole("helper_trip", HoleKind::TripCount, 1, 6, 3));
  return H;
}

} // namespace

std::vector<Template> corpus::extractTemplates(const std::string &WorkloadName,
                                               const ir::Module &M) {
  analysis::AnalysisOptions Opts;
  Opts.AffineOracle = true;
  analysis::ModuleAnalysis MA(M, Opts);

  // One representative per family, in first-seen candidate order.
  std::vector<Template> Out;
  for (const analysis::CandidateStl &C : MA.candidates()) {
    const analysis::FunctionAnalysis &FA = MA.func(C.FuncIndex);
    const analysis::Loop &L = MA.loopOf(C);
    const analysis::LoopMemDep &D = FA.MemDep->loopDep(C.LoopIdx);
    const analysis::InductionInfo &S = MA.scalarsOf(C);
    const ir::Function &F = M.Functions[C.FuncIndex];

    TemplateFeatures Feat;
    Feat.Depth = L.Children.empty() ? 1 : 2;
    Feat.NumLoads = D.NumLoads;
    Feat.NumStores = D.NumStores;
    Feat.HasCall = D.HasCall;
    Feat.HasGuard = hasBodyGuard(F, L);
    Feat.HasCarriedScalar = !S.OtherCarried.empty();
    Feat.HasMemRecurrence = D.Serial.Found || D.NumRaw > 0;
    Feat.HasReduction = !S.Reductions.empty();
    const analysis::LoopOracleResult *O = MA.oracleResult(C.LoopId);
    Feat.OracleVerdict =
        analysis::oracleVerdictName(O ? O->Verdict
                                      : analysis::OracleVerdict::Unknown);

    std::string Family = classifyFamily(Feat);
    Template *Existing = nullptr;
    for (Template &T : Out)
      if (T.Family == Family)
        Existing = &T;
    if (Existing) {
      ++Existing->SourceLoops;
      continue;
    }

    Template T;
    T.Id = WorkloadName + "/" + Family;
    T.Family = Family;
    T.SourceLoopId = C.LoopId;
    T.SourceLoops = 1;
    T.Features = Feat;
    T.Holes = holesForFamily(Family);
    Out.push_back(std::move(T));
  }

  // Totality: a (hypothetical) loop-free workload still contributes the
  // scalar-chain shape, so downstream consumers can rely on >= 1 template
  // per workload.
  if (Out.empty()) {
    Template T;
    T.Id = WorkloadName + "/scalar-chain";
    T.Family = "scalar-chain";
    T.SourceLoops = 0;
    T.Features.OracleVerdict =
        analysis::oracleVerdictName(analysis::OracleVerdict::Unknown);
    T.Holes = holesForFamily(T.Family);
    Out.push_back(std::move(T));
  }
  return Out;
}

std::vector<Template> corpus::extractRegistryTemplates() {
  std::vector<Template> Out;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    std::vector<Template> Ts = extractTemplates(W.Name, W.Build());
    for (Template &T : Ts)
      Out.push_back(std::move(T));
  }
  return Out;
}

const Template *corpus::findTemplate(const std::vector<Template> &Templates,
                                     const std::string &Id) {
  for (const Template &T : Templates)
    if (T.Id == Id)
      return &T;
  return nullptr;
}

Json corpus::templatesToJson(const std::vector<Template> &Templates) {
  Json J = Json::object();
  J["count"] = static_cast<std::uint64_t>(Templates.size());
  Json Arr = Json::array();
  for (const Template &T : Templates)
    Arr.push(T.toJson());
  J["templates"] = std::move(Arr);
  return J;
}
