//===- trace/Wire.cpp ------------------------------------------------------==//

#include "trace/Wire.h"

using namespace jrpm;
using namespace jrpm::trace;

//===----------------------------------------------------------------------===//
// Header
//===----------------------------------------------------------------------===//

namespace {

/// Stable field order of the serialized sim::HydraConfig. Bump
/// FormatVersion when this list changes shape incompatibly; appending
/// fields is compatible because the count is part of the payload.
constexpr std::uint32_t NumHwFields = 31;

void appendHw(std::vector<std::uint8_t> &Out, const sim::HydraConfig &Hw) {
  appendVarint(Out, NumHwFields);
  const std::uint64_t Fields[NumHwFields] = {
      Hw.NumCores,
      Hw.WordsPerLine,
      Hw.L1Lines,
      Hw.L1Assoc,
      Hw.L2HitExtraCycles,
      Hw.SpecLoadLines,
      Hw.SpecStoreLines,
      Hw.LoopStartupCycles,
      Hw.LoopShutdownCycles,
      Hw.EndOfIterationCycles,
      Hw.ViolationRestartCycles,
      Hw.StoreLoadCommCycles,
      static_cast<std::uint64_t>(Hw.ViolationGrain),
      Hw.SyncCarriedLocals ? 1u : 0u,
      Hw.HeapTimestampFifoLines,
      Hw.LoadTimestampEntries,
      Hw.StoreTimestampEntries,
      Hw.OverflowTableAssoc,
      Hw.LocalVarSlots,
      Hw.ComparatorBanks,
      Hw.SLoopCost,
      Hw.ELoopCost,
      Hw.EoiCost,
      Hw.LocalAnnoCost,
      Hw.ReadStatsCost,
      Hw.SoftwareProfilerCallbackCycles,
      Hw.Costs.Basic,
      Hw.Costs.IntDiv,
      Hw.Costs.FloatDiv,
      Hw.Costs.FloatSqrt,
      Hw.Costs.CallOverhead,
  };
  for (std::uint64_t F : Fields)
    appendVarint(Out, F);
}

sim::HydraConfig parseHw(const std::uint8_t *&P, const std::uint8_t *End) {
  std::uint64_t Count = parseVarint(P, End);
  if (Count < NumHwFields)
    throw Error(ErrorKind::BadRecord, "hardware config field count " +
                                          std::to_string(Count));
  std::uint64_t Fields[NumHwFields];
  for (std::uint64_t I = 0; I < Count; ++I) {
    std::uint64_t V = parseVarint(P, End);
    if (I < NumHwFields)
      Fields[I] = V; // later writers may append fields; ignore extras
  }
  sim::HydraConfig Hw;
  std::size_t I = 0;
  auto U32 = [&] { return static_cast<std::uint32_t>(Fields[I++]); };
  Hw.NumCores = U32();
  Hw.WordsPerLine = U32();
  Hw.L1Lines = U32();
  Hw.L1Assoc = U32();
  Hw.L2HitExtraCycles = U32();
  Hw.SpecLoadLines = U32();
  Hw.SpecStoreLines = U32();
  Hw.LoopStartupCycles = U32();
  Hw.LoopShutdownCycles = U32();
  Hw.EndOfIterationCycles = U32();
  Hw.ViolationRestartCycles = U32();
  Hw.StoreLoadCommCycles = U32();
  std::uint64_t Grain = Fields[I++];
  if (Grain > 1)
    throw Error(ErrorKind::BadRecord, "violation granularity " +
                                          std::to_string(Grain));
  Hw.ViolationGrain = static_cast<sim::ViolationGranularity>(Grain);
  Hw.SyncCarriedLocals = Fields[I++] != 0;
  Hw.HeapTimestampFifoLines = U32();
  Hw.LoadTimestampEntries = U32();
  Hw.StoreTimestampEntries = U32();
  Hw.OverflowTableAssoc = U32();
  Hw.LocalVarSlots = U32();
  Hw.ComparatorBanks = U32();
  Hw.SLoopCost = U32();
  Hw.ELoopCost = U32();
  Hw.EoiCost = U32();
  Hw.LocalAnnoCost = U32();
  Hw.ReadStatsCost = U32();
  Hw.SoftwareProfilerCallbackCycles = U32();
  Hw.Costs.Basic = U32();
  Hw.Costs.IntDiv = U32();
  Hw.Costs.FloatDiv = U32();
  Hw.Costs.FloatSqrt = U32();
  Hw.Costs.CallOverhead = U32();
  return Hw;
}

/// Sanity bound: no workload has anywhere near this many loops; a huge
/// decoded count signals corruption before we try to allocate it.
constexpr std::uint64_t MaxLoops = 1u << 20;
constexpr std::uint64_t MaxLocalsPerLoop = 1u << 16;

} // namespace

void trace::encodeHeader(std::vector<std::uint8_t> &Out,
                         const TraceHeader &H) {
  appendVarint(Out, 0); // reserved flags
  appendVarint(Out, H.WorkloadName.size());
  Out.insert(Out.end(), H.WorkloadName.begin(), H.WorkloadName.end());
  appendVarint(Out, H.AnnotationLevel);
  appendVarint(Out, H.ExtendedPcBinning ? 1 : 0);
  appendVarint(Out, H.DisableLoopAfterThreads);
  appendHw(Out, H.Hw);
  appendVarint(Out, H.LoopLocals.size());
  for (const std::vector<std::uint16_t> &Locals : H.LoopLocals) {
    appendVarint(Out, Locals.size());
    for (std::uint16_t Reg : Locals)
      appendVarint(Out, Reg);
  }
}

TraceHeader trace::decodeHeader(const std::uint8_t *P,
                                const std::uint8_t *End) {
  TraceHeader H;
  parseVarint(P, End); // reserved flags
  std::uint64_t NameLen = parseVarint(P, End);
  if (NameLen > static_cast<std::uint64_t>(End - P))
    throw Error(ErrorKind::Truncated, "workload name runs past header");
  H.WorkloadName.assign(reinterpret_cast<const char *>(P), NameLen);
  P += NameLen;
  std::uint64_t Level = parseVarint(P, End);
  if (Level > 1)
    throw Error(ErrorKind::BadRecord,
                "annotation level " + std::to_string(Level));
  H.AnnotationLevel = static_cast<std::uint8_t>(Level);
  H.ExtendedPcBinning = parseVarint(P, End) != 0;
  H.DisableLoopAfterThreads = parseVarint(P, End);
  H.Hw = parseHw(P, End);
  std::uint64_t NumLoops = parseVarint(P, End);
  if (NumLoops > MaxLoops)
    throw Error(ErrorKind::BadRecord,
                "implausible loop count " + std::to_string(NumLoops));
  H.LoopLocals.resize(NumLoops);
  for (std::uint64_t L = 0; L < NumLoops; ++L) {
    std::uint64_t NumLocals = parseVarint(P, End);
    if (NumLocals > MaxLocalsPerLoop)
      throw Error(ErrorKind::BadRecord, "implausible local count " +
                                            std::to_string(NumLocals));
    H.LoopLocals[L].reserve(NumLocals);
    for (std::uint64_t I = 0; I < NumLocals; ++I)
      H.LoopLocals[L].push_back(
          static_cast<std::uint16_t>(parseVarint(P, End)));
  }
  if (P != End)
    throw Error(ErrorKind::TrailingData, "extra bytes in header payload");
  return H;
}

//===----------------------------------------------------------------------===//
// Footer
//===----------------------------------------------------------------------===//

void trace::encodeFooter(std::vector<std::uint8_t> &Out,
                         const TraceFooter &F) {
  appendVarint(Out, NumEventKinds);
  for (std::uint64_t C : F.EventCounts)
    appendVarint(Out, C);
  appendVarint(Out, F.TotalEvents);
  appendVarint(Out, F.LastCycle);
  appendVarint(Out, F.Run.Cycles);
  appendVarint(Out, F.Run.Instructions);
  appendVarint(Out, F.Run.ReturnValue);
  appendVarint(Out, F.Run.Loads);
  appendVarint(Out, F.Run.Stores);
  appendVarint(Out, F.Run.L1Misses);
}

TraceFooter trace::decodeFooter(const std::uint8_t *P,
                                const std::uint8_t *End) {
  TraceFooter F;
  std::uint64_t Kinds = parseVarint(P, End);
  if (Kinds < NumEventKinds)
    throw Error(ErrorKind::BadRecord,
                "event kind count " + std::to_string(Kinds));
  for (std::uint64_t K = 0; K < Kinds; ++K) {
    std::uint64_t C = parseVarint(P, End);
    if (K < NumEventKinds)
      F.EventCounts[K] = C;
  }
  F.TotalEvents = parseVarint(P, End);
  F.LastCycle = parseVarint(P, End);
  F.Run.Cycles = parseVarint(P, End);
  F.Run.Instructions = parseVarint(P, End);
  F.Run.ReturnValue = parseVarint(P, End);
  F.Run.Loads = parseVarint(P, End);
  F.Run.Stores = parseVarint(P, End);
  F.Run.L1Misses = parseVarint(P, End);
  if (P != End)
    throw Error(ErrorKind::TrailingData, "extra bytes in footer payload");
  return F;
}
