//===- trace/Replay.h - Trace-driven STL selection -------------------------==//
//
// Rebuilds the full TEST analysis stack (TraceEngine + Equation 1/2
// selection) from a recorded trace alone — no program, no interpretation.
// The header's annotated-locals table constructs the engine; the footer's
// recorded program cycles anchor the selection. Replaying under the
// recorded hardware config reproduces the live run's SelectionResult
// bit-for-bit; replaying under an overridden config is how one recorded
// trace feeds N ablation configurations.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACE_REPLAY_H
#define JRPM_TRACE_REPLAY_H

#include "tracer/Selector.h"
#include "trace/Reader.h"

#include <cstddef>
#include <memory>

namespace jrpm {
namespace metrics {
class Registry;
} // namespace metrics

namespace trace {

/// Tracer-side knobs for a replayed analysis. Defaults are filled from the
/// trace header by selectFromTrace(); override fields to sweep them.
struct ReplayConfig {
  sim::HydraConfig Hw;
  bool ExtendedPcBinning = false;
  std::uint64_t DisableLoopAfterThreads = 0;
  /// When set, the replayed engine exports its "tracer.*" metrics here
  /// (plus a "trace.events_replayed" counter). A replay under the recorded
  /// config exports bytes identical to the live run's tracer metrics.
  metrics::Registry *Metrics = nullptr;
};

struct ReplayOutcome {
  tracer::SelectionResult Selection;
  RunInfo Run; ///< the capture run's results, from the footer
  std::uint32_t PeakBanksInUse = 0;
  std::uint32_t PeakLocalSlots = 0;
  std::uint32_t PeakDynamicNest = 0;
  std::uint64_t EventsReplayed = 0;
};

/// The replay config a trace was captured under.
ReplayConfig recordedConfig(const Reader &R);

/// Replays \p R into a fresh TraceEngine under \p Cfg and runs STL
/// selection against the recorded program cycles. Throws Error on any
/// corruption.
ReplayOutcome selectFromTrace(Reader &R, const ReplayConfig &Cfg);

/// Replay under the exact capture-time configuration: bit-identical to the
/// live profiled run's selection.
inline ReplayOutcome selectFromTrace(Reader &R) {
  return selectFromTrace(R, recordedConfig(R));
}

/// A fully decoded in-memory trace for sweep-style consumers: pays the
/// disk read, checksum, and varint decode exactly once, then feeds any
/// number of analysis configurations straight from memory. Construction
/// performs the same strict validation as streaming the whole file.
class CachedTrace {
public:
  /// Drains \p R (which must be freshly opened) and validates the stream
  /// against its footer. Throws Error on any corruption.
  explicit CachedTrace(Reader &R);
  /// Convenience: open, drain, and close \p Path.
  explicit CachedTrace(const std::string &Path);

  const TraceHeader &header() const { return Header; }
  const TraceFooter &footer() const { return Footer; }
  const std::vector<Event> &events() const { return Events; }

  /// Feeds every event to \p Sink. Returns the number of events.
  std::uint64_t replay(interp::TraceSink &Sink) const;

private:
  TraceHeader Header;
  TraceFooter Footer;
  std::vector<Event> Events;
};

/// Engine construction + replay + selection from an in-memory trace: the
/// per-configuration cost of a record-once/analyze-many sweep.
ReplayOutcome selectFromTrace(const CachedTrace &T, const ReplayConfig &Cfg);

// --- Shared decoded-trace cache -------------------------------------------
//
// A long-lived process (the serve daemon) replays the same recorded trace
// under many analysis configurations: distinct requests share one capture.
// getSharedTrace memoizes the decoded CachedTrace by a caller-chosen
// content key (the artifact store's trace digest), so the disk read,
// checksum pass, and varint decode are paid once per resident trace, not
// once per request. LRU-bounded like exec::CodeImage::getShared; evicted
// traces stay alive while a consumer holds the shared_ptr.

struct TraceCacheStats {
  std::uint64_t Hits = 0;
  std::uint64_t Misses = 0;
  std::uint64_t Evictions = 0;
  std::uint64_t Entries = 0;
  std::uint64_t Capacity = 0;
};

/// Decoded traces are an order of magnitude heavier than code images
/// (millions of events), so the default residency bound is much tighter.
constexpr std::size_t DefaultTraceCacheCapacity = 16;

/// Returns the memoized decode of the trace at \p Path, keyed by \p Key
/// (NOT by path — the artifact store addresses content, and a re-recorded
/// byte-identical trace must hit). Builds (and validates) on first use;
/// throws Error on corruption without caching the failure. Thread-safe.
std::shared_ptr<const CachedTrace> getSharedTrace(const std::string &Path,
                                                  std::uint64_t Key);
TraceCacheStats traceCacheStats();
/// Rebounds the LRU (minimum 1); returns the previous capacity.
std::size_t setTraceCacheCapacity(std::size_t Capacity);
/// Drops every memoized trace and resets stats/capacity (test isolation).
void clearTraceCache();

inline ReplayOutcome selectFromTrace(const CachedTrace &T) {
  ReplayConfig Cfg;
  Cfg.Hw = T.header().Hw;
  Cfg.ExtendedPcBinning = T.header().ExtendedPcBinning;
  Cfg.DisableLoopAfterThreads = T.header().DisableLoopAfterThreads;
  return selectFromTrace(T, Cfg);
}

} // namespace trace
} // namespace jrpm

#endif // JRPM_TRACE_REPLAY_H
