//===- trace/Replay.cpp ----------------------------------------------------==//

#include "trace/Replay.h"

using namespace jrpm;
using namespace jrpm::trace;

ReplayConfig trace::recordedConfig(const Reader &R) {
  ReplayConfig Cfg;
  Cfg.Hw = R.header().Hw;
  Cfg.ExtendedPcBinning = R.header().ExtendedPcBinning;
  Cfg.DisableLoopAfterThreads = R.header().DisableLoopAfterThreads;
  return Cfg;
}

namespace {

/// Builds the engine's loop tables for \p Header. (The engine copies its
/// HydraConfig, so callers may pass configs in temporaries — a sweep-job
/// requirement; see the reentrancy note in TraceEngine.h.)
std::vector<tracer::LoopTraceInfo> loopInfos(const TraceHeader &Header) {
  std::vector<tracer::LoopTraceInfo> Loops;
  Loops.reserve(Header.LoopLocals.size());
  for (const std::vector<std::uint16_t> &Locals : Header.LoopLocals)
    Loops.push_back({Locals});
  return Loops;
}

ReplayOutcome finishOutcome(tracer::TraceEngine &Engine,
                            const ReplayConfig &Cfg, const RunInfo &Run,
                            std::uint64_t EventsReplayed) {
  ReplayOutcome Out;
  Out.EventsReplayed = EventsReplayed;
  Out.Run = Run;
  Out.Selection = tracer::selectStls(Engine, Out.Run.Cycles, Cfg.Hw);
  Out.PeakBanksInUse = Engine.peakBanksInUse();
  Out.PeakLocalSlots = Engine.peakLocalSlots();
  Out.PeakDynamicNest = Engine.peakDynamicNest();
  if (Cfg.Metrics) {
    Engine.exportMetrics(*Cfg.Metrics);
    Cfg.Metrics->counter("trace.events_replayed").inc(EventsReplayed);
  }
  return Out;
}

} // namespace

ReplayOutcome trace::selectFromTrace(Reader &R, const ReplayConfig &Cfg) {
  tracer::TraceEngine Engine(Cfg.Hw, loopInfos(R.header()),
                             Cfg.ExtendedPcBinning);
  if (Cfg.DisableLoopAfterThreads)
    Engine.setDisableLoopAfterThreads(Cfg.DisableLoopAfterThreads);
  std::uint64_t N = replay(R, Engine);
  return finishOutcome(Engine, Cfg, R.footer().Run, N);
}

//===----------------------------------------------------------------------===//
// CachedTrace
//===----------------------------------------------------------------------===//

CachedTrace::CachedTrace(Reader &R) : Header(R.header()) {
  Events.reserve(R.footer().TotalEvents);
  Event E;
  while (R.next(E))
    Events.push_back(E);
  Footer = R.footer();
}

CachedTrace::CachedTrace(const std::string &Path) {
  Reader R(Path);
  *this = CachedTrace(R);
}

std::uint64_t CachedTrace::replay(interp::TraceSink &Sink) const {
  for (const Event &E : Events)
    dispatchEvent(E, Sink);
  return Events.size();
}

ReplayOutcome trace::selectFromTrace(const CachedTrace &T,
                                     const ReplayConfig &Cfg) {
  tracer::TraceEngine Engine(Cfg.Hw, loopInfos(T.header()),
                             Cfg.ExtendedPcBinning);
  if (Cfg.DisableLoopAfterThreads)
    Engine.setDisableLoopAfterThreads(Cfg.DisableLoopAfterThreads);
  std::uint64_t N = T.replay(Engine);
  return finishOutcome(Engine, Cfg, T.footer().Run, N);
}
