//===- trace/Replay.cpp ----------------------------------------------------==//

#include "trace/Replay.h"

#include <list>
#include <mutex>
#include <unordered_map>

using namespace jrpm;
using namespace jrpm::trace;

ReplayConfig trace::recordedConfig(const Reader &R) {
  ReplayConfig Cfg;
  Cfg.Hw = R.header().Hw;
  Cfg.ExtendedPcBinning = R.header().ExtendedPcBinning;
  Cfg.DisableLoopAfterThreads = R.header().DisableLoopAfterThreads;
  return Cfg;
}

namespace {

/// Builds the engine's loop tables for \p Header. (The engine copies its
/// HydraConfig, so callers may pass configs in temporaries — a sweep-job
/// requirement; see the reentrancy note in TraceEngine.h.)
std::vector<tracer::LoopTraceInfo> loopInfos(const TraceHeader &Header) {
  std::vector<tracer::LoopTraceInfo> Loops;
  Loops.reserve(Header.LoopLocals.size());
  for (const std::vector<std::uint16_t> &Locals : Header.LoopLocals)
    Loops.push_back({Locals});
  return Loops;
}

ReplayOutcome finishOutcome(tracer::TraceEngine &Engine,
                            const ReplayConfig &Cfg, const RunInfo &Run,
                            std::uint64_t EventsReplayed) {
  ReplayOutcome Out;
  Out.EventsReplayed = EventsReplayed;
  Out.Run = Run;
  Out.Selection = tracer::selectStls(Engine, Out.Run.Cycles, Cfg.Hw);
  Out.PeakBanksInUse = Engine.peakBanksInUse();
  Out.PeakLocalSlots = Engine.peakLocalSlots();
  Out.PeakDynamicNest = Engine.peakDynamicNest();
  if (Cfg.Metrics) {
    Engine.exportMetrics(*Cfg.Metrics);
    Cfg.Metrics->counter("trace.events_replayed").inc(EventsReplayed);
  }
  return Out;
}

} // namespace

ReplayOutcome trace::selectFromTrace(Reader &R, const ReplayConfig &Cfg) {
  tracer::TraceEngine Engine(Cfg.Hw, loopInfos(R.header()),
                             Cfg.ExtendedPcBinning);
  if (Cfg.DisableLoopAfterThreads)
    Engine.setDisableLoopAfterThreads(Cfg.DisableLoopAfterThreads);
  std::uint64_t N = replay(R, Engine);
  return finishOutcome(Engine, Cfg, R.footer().Run, N);
}

//===----------------------------------------------------------------------===//
// CachedTrace
//===----------------------------------------------------------------------===//

CachedTrace::CachedTrace(Reader &R) : Header(R.header()) {
  Events.reserve(R.footer().TotalEvents);
  Event E;
  while (R.next(E))
    Events.push_back(E);
  Footer = R.footer();
}

CachedTrace::CachedTrace(const std::string &Path) {
  Reader R(Path);
  *this = CachedTrace(R);
}

std::uint64_t CachedTrace::replay(interp::TraceSink &Sink) const {
  interp::EventBlock *Blk = Sink.eventBlock();
  for (const Event &E : Events)
    dispatchEventBatched(E, Sink, Blk);
  interp::drainPending(Sink, Blk);
  return Events.size();
}

ReplayOutcome trace::selectFromTrace(const CachedTrace &T,
                                     const ReplayConfig &Cfg) {
  tracer::TraceEngine Engine(Cfg.Hw, loopInfos(T.header()),
                             Cfg.ExtendedPcBinning);
  if (Cfg.DisableLoopAfterThreads)
    Engine.setDisableLoopAfterThreads(Cfg.DisableLoopAfterThreads);
  std::uint64_t N = T.replay(Engine);
  return finishOutcome(Engine, Cfg, T.footer().Run, N);
}

//===----------------------------------------------------------------------===//
// Shared decoded-trace cache
//===----------------------------------------------------------------------===//

namespace {

struct TraceCache {
  struct Entry {
    std::shared_ptr<const CachedTrace> Trace;
    std::list<std::uint64_t>::iterator LruPos;
  };

  std::mutex Mu;
  std::unordered_map<std::uint64_t, Entry> Map;
  std::list<std::uint64_t> Lru; ///< front = most recently used
  std::size_t Capacity = DefaultTraceCacheCapacity;
  TraceCacheStats Stats;

  void evictOverCapacity() {
    while (Map.size() > Capacity) {
      Map.erase(Lru.back());
      Lru.pop_back();
      ++Stats.Evictions;
    }
  }
};

TraceCache &traceCache() {
  static TraceCache C; // leaked-by-design process-lifetime cache
  return C;
}

} // namespace

std::shared_ptr<const CachedTrace>
trace::getSharedTrace(const std::string &Path, std::uint64_t Key) {
  TraceCache &C = traceCache();
  {
    std::lock_guard<std::mutex> Lock(C.Mu);
    auto It = C.Map.find(Key);
    if (It != C.Map.end()) {
      ++C.Stats.Hits;
      C.Lru.splice(C.Lru.begin(), C.Lru, It->second.LruPos);
      return It->second.Trace;
    }
  }
  // Decode outside the lock (it can be hundreds of milliseconds); a racing
  // duplicate decode of the same trace is harmless and the loser adopts
  // the incumbent. Corruption throws here and caches nothing.
  auto Decoded = std::make_shared<const CachedTrace>(Path);
  std::lock_guard<std::mutex> Lock(C.Mu);
  ++C.Stats.Misses;
  auto It = C.Map.find(Key);
  if (It != C.Map.end()) {
    C.Lru.splice(C.Lru.begin(), C.Lru, It->second.LruPos);
    return It->second.Trace;
  }
  C.Lru.push_front(Key);
  C.Map[Key] = TraceCache::Entry{Decoded, C.Lru.begin()};
  C.evictOverCapacity();
  return Decoded;
}

TraceCacheStats trace::traceCacheStats() {
  TraceCache &C = traceCache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  TraceCacheStats S = C.Stats;
  S.Entries = C.Map.size();
  S.Capacity = C.Capacity;
  return S;
}

std::size_t trace::setTraceCacheCapacity(std::size_t Capacity) {
  TraceCache &C = traceCache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  std::size_t Prev = C.Capacity;
  C.Capacity = Capacity ? Capacity : 1;
  C.evictOverCapacity();
  return Prev;
}

void trace::clearTraceCache() {
  TraceCache &C = traceCache();
  std::lock_guard<std::mutex> Lock(C.Mu);
  C.Map.clear();
  C.Lru.clear();
  C.Capacity = DefaultTraceCacheCapacity;
  C.Stats = TraceCacheStats();
}
