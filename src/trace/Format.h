//===- trace/Format.h - Binary .jtrace format definitions ------------------==//
//
// The persistent form of the annotated-execution event stream (everything
// interp::TraceSink sees). A trace is: a header (format version, workload
// identity, capture configuration, per-loop annotation tables), a sequence
// of independently-decodable chunks of varint/delta-encoded events with a
// CRC32 each, and a footer (per-kind event counts, final cycle, the
// capture run's RunResult) addressable in O(1) from the end of the file.
//
// Layout:
//
//   +--------------------------------------------------------------+
//   | magic "JRPMTRC1" | u32 version | u32 size | u32 crc | header |
//   +--------------------------------------------------------------+
//   | tag 0x01 | u32 size | u32 events | u32 crc | chunk payload   |  (xN)
//   +--------------------------------------------------------------+
//   | tag 0x02 | u32 size | u32 crc | footer payload               |
//   +--------------------------------------------------------------+
//   | u32 footer block size | magic "JRPMTEND"                     |
//   +--------------------------------------------------------------+
//
// All multi-byte integers inside payloads are LEB128 varints; deltas
// (cycle, pc, address, activation) are zigzag-encoded against per-chunk
// predictors that reset at every chunk boundary, so chunks decode
// independently and a corrupt chunk cannot poison its successors.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACE_FORMAT_H
#define JRPM_TRACE_FORMAT_H

#include "sim/Config.h"

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace jrpm {
namespace trace {

// --- Constants -------------------------------------------------------------

/// Leading file magic ("JRPM trace, major format 1").
inline constexpr char FileMagic[8] = {'J', 'R', 'P', 'M', 'T', 'R', 'C', '1'};
/// Trailing file magic; its presence certifies the footer was written.
inline constexpr char EndMagic[8] = {'J', 'R', 'P', 'M', 'T', 'E', 'N', 'D'};
/// Bump on any incompatible layout change; readers reject other versions.
inline constexpr std::uint32_t FormatVersion = 1;

inline constexpr std::uint8_t ChunkTag = 0x01;
inline constexpr std::uint8_t FooterTag = 0x02;

/// Writer flushes a chunk once its payload reaches this size.
inline constexpr std::size_t ChunkTargetBytes = 64 * 1024;

// --- Events ----------------------------------------------------------------

/// Every event kind interp::TraceSink can observe, in stable wire order.
enum class EventKind : std::uint8_t {
  HeapLoad = 0,
  HeapStore = 1,
  LocalLoad = 2,
  LocalStore = 3,
  LoopStart = 4,
  LoopIter = 5,
  LoopEnd = 6,
  Return = 7,
  CallSite = 8,
  CallReturn = 9,
  ReadStats = 10,
};
inline constexpr std::uint32_t NumEventKinds = 11;

const char *eventKindName(EventKind K);

/// One decoded trace event. Only the fields relevant to `Kind` are
/// meaningful; the rest stay at their defaults.
struct Event {
  EventKind Kind = EventKind::HeapLoad;
  std::uint64_t Cycle = 0;      ///< all kinds except Return
  std::uint64_t Activation = 0; ///< LocalLoad/Store, LoopStart, Return
  std::uint32_t Addr = 0;       ///< HeapLoad/Store
  std::uint32_t LoopId = 0;     ///< LoopStart/Iter/End, ReadStats
  std::uint16_t Reg = 0;        ///< LocalLoad/Store
  std::int32_t Pc = -1;         ///< HeapLoad/Store, LocalLoad/Store, CallSite

  bool operator==(const Event &O) const = default;
};

// --- Header & footer -------------------------------------------------------

/// Everything a replay needs to rebuild the capture-time analysis stack
/// without the program: the annotated-locals table drives TraceEngine
/// construction and the captured HydraConfig reproduces the exact hardware
/// model (replays may override it to feed one trace into many configs).
struct TraceHeader {
  std::string WorkloadName;
  /// jit::AnnotationLevel as an integer (0 = Base, 1 = Optimized).
  std::uint8_t AnnotationLevel = 1;
  bool ExtendedPcBinning = false;
  std::uint64_t DisableLoopAfterThreads = 0;
  sim::HydraConfig Hw;
  /// Per-loop annotated locals, indexed by module-global loop id.
  std::vector<std::vector<std::uint16_t>> LoopLocals;
};

/// Summary of the capture run, mirrored from interp::RunResult so the trace
/// library does not depend on the interpreter.
struct RunInfo {
  std::uint64_t Cycles = 0;
  std::uint64_t Instructions = 0;
  std::uint64_t ReturnValue = 0;
  std::uint64_t Loads = 0;
  std::uint64_t Stores = 0;
  std::uint64_t L1Misses = 0;

  bool operator==(const RunInfo &O) const = default;
};

struct TraceFooter {
  std::uint64_t EventCounts[NumEventKinds] = {};
  std::uint64_t TotalEvents = 0;
  /// Cycle stamp of the last cycle-bearing event (0 when none).
  std::uint64_t LastCycle = 0;
  RunInfo Run;
};

// --- Errors ----------------------------------------------------------------

enum class ErrorKind {
  Io,                ///< open/read/write/seek failure
  BadMagic,          ///< leading or trailing magic missing
  BadVersion,        ///< format version not understood
  Truncated,         ///< file ends inside a record
  BadChecksum,       ///< CRC32 mismatch (header, chunk, or footer)
  BadRecord,         ///< unknown record tag or malformed record framing
  BadVarint,         ///< varint runs past its payload or overflows
  UnknownEventKind,  ///< event kind byte outside the known range
  EventOutOfRange,   ///< event references a loop id outside the header table
  NonMonotonicCycle, ///< cycle stamps decrease (spliced/reordered chunks)
  FooterMismatch,    ///< footer totals disagree with the decoded stream
  TrailingData,      ///< bytes after the end magic
  MissingFooter,     ///< stream ended without a footer record
};

const char *errorKindName(ErrorKind K);

/// Every malformed input the reader can encounter surfaces as this typed
/// exception — never UB, never an abort.
class Error : public std::runtime_error {
public:
  Error(ErrorKind K, const std::string &Message)
      : std::runtime_error(std::string(errorKindName(K)) + ": " + Message),
        Kind(K) {}

  ErrorKind kind() const { return Kind; }

private:
  ErrorKind Kind;
};

// --- CRC32 (IEEE 802.3, the zlib polynomial) -------------------------------

std::uint32_t crc32(const std::uint8_t *Data, std::size_t Size);

// --- Varint / zigzag helpers ----------------------------------------------

inline void appendVarint(std::vector<std::uint8_t> &Out, std::uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<std::uint8_t>(V) | 0x80);
    V >>= 7;
  }
  Out.push_back(static_cast<std::uint8_t>(V));
}

/// Raw-pointer varint writer for the event hot path: the caller guarantees
/// at least 10 bytes of room behind \p P. Returns the advanced pointer.
inline std::uint8_t *writeVarint(std::uint8_t *P, std::uint64_t V) {
  while (V >= 0x80) {
    *P++ = static_cast<std::uint8_t>(V) | 0x80;
    V >>= 7;
  }
  *P++ = static_cast<std::uint8_t>(V);
  return P;
}

inline std::uint64_t zigzag(std::int64_t V) {
  return (static_cast<std::uint64_t>(V) << 1) ^
         static_cast<std::uint64_t>(V >> 63);
}

inline std::int64_t unzigzag(std::uint64_t V) {
  return static_cast<std::int64_t>(V >> 1) ^
         -static_cast<std::int64_t>(V & 1);
}

inline void appendZigzag(std::vector<std::uint8_t> &Out, std::int64_t V) {
  appendVarint(Out, zigzag(V));
}

inline std::uint8_t *writeZigzag(std::uint8_t *P, std::int64_t V) {
  return writeVarint(P, zigzag(V));
}

/// Decodes one varint from [*P, End); throws Error::BadVarint when the
/// encoding runs past End or exceeds 64 bits.
inline std::uint64_t parseVarint(const std::uint8_t *&P,
                                 const std::uint8_t *End) {
  std::uint64_t V = 0;
  unsigned Shift = 0;
  while (P != End) {
    std::uint8_t B = *P++;
    if (Shift == 63 && (B & 0x7E))
      throw Error(ErrorKind::BadVarint, "varint overflows 64 bits");
    V |= static_cast<std::uint64_t>(B & 0x7F) << Shift;
    if (!(B & 0x80))
      return V;
    Shift += 7;
    if (Shift > 63)
      throw Error(ErrorKind::BadVarint, "varint overflows 64 bits");
  }
  throw Error(ErrorKind::BadVarint, "varint runs past end of payload");
}

inline std::int64_t parseZigzag(const std::uint8_t *&P,
                                const std::uint8_t *End) {
  return unzigzag(parseVarint(P, End));
}

} // namespace trace
} // namespace jrpm

#endif // JRPM_TRACE_FORMAT_H
