//===- trace/Reader.h - Validating .jtrace reader and replay ---------------==//
//
// Reader decodes a recorded trace with strict validation: every framing,
// checksum, range, or ordering violation throws a typed trace::Error, so a
// corrupt or truncated file can never crash a consumer or silently skew an
// analysis. replay() re-drives any TraceSink from disk, which is how one
// recorded interpretation feeds arbitrarily many analysis configurations.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACE_READER_H
#define JRPM_TRACE_READER_H

#include "interp/EventBlock.h"
#include "interp/TraceSink.h"
#include "trace/Wire.h"

#include <cstdio>

namespace jrpm {
namespace trace {

class Reader {
public:
  /// Opens \p Path and reads + validates the header. Throws Error.
  explicit Reader(const std::string &Path);
  ~Reader();

  Reader(const Reader &) = delete;
  Reader &operator=(const Reader &) = delete;

  const std::string &path() const { return Path; }
  const TraceHeader &header() const { return Header; }

  /// O(1) footer access via the trailing block-size field — no event
  /// decoding. Independent of the sequential cursor.
  const TraceFooter &footer();

  /// Decodes the next event into \p E. Returns false once the footer is
  /// reached, after cross-checking it against the decoded stream (event
  /// counts per kind, total events, final cycle) and verifying the file
  /// ends exactly at the end magic.
  bool next(Event &E);

  /// Events decoded by next() so far.
  std::uint64_t eventsRead() const { return Tally.TotalEvents; }

private:
  void readAt(std::uint64_t Offset, void *Out, std::size_t Size);
  std::uint32_t readU32At(std::uint64_t Offset);
  void loadNextBlock();
  void finishStream(std::uint64_t FooterStart);

  std::string Path;
  std::FILE *File = nullptr;
  std::uint64_t FileSize = 0;
  TraceHeader Header;

  // Sequential cursor state.
  std::uint64_t Offset = 0; ///< next unread file offset
  std::vector<std::uint8_t> Chunk;
  const std::uint8_t *Cur = nullptr;
  const std::uint8_t *End = nullptr;
  std::uint32_t ChunkEventsLeft = 0;
  DeltaState Deltas;
  TraceFooter Tally; ///< accumulated while decoding, checked vs footer
  bool HasLastCycle = false;
  bool Done = false;

  // Cached O(1) footer.
  TraceFooter CachedFooter;
  bool FooterCached = false;
};

/// Delivers one decoded event to \p Sink, mapping wire kinds back onto the
/// TraceSink interface. Cycle-charge return values are ignored: the
/// recorded cycle stream already includes them. Shared by the streaming
/// replay() and CachedTrace so there is exactly one kind→callback mapping.
inline void dispatchEvent(const Event &E, interp::TraceSink &Sink) {
  switch (E.Kind) {
  case EventKind::HeapLoad:
    Sink.onHeapLoad(E.Addr, E.Cycle, E.Pc);
    break;
  case EventKind::HeapStore:
    Sink.onHeapStore(E.Addr, E.Cycle, E.Pc);
    break;
  case EventKind::LocalLoad:
    Sink.onLocalLoad(E.Activation, E.Reg, E.Cycle, E.Pc);
    break;
  case EventKind::LocalStore:
    Sink.onLocalStore(E.Activation, E.Reg, E.Cycle, E.Pc);
    break;
  case EventKind::LoopStart:
    Sink.onLoopStart(E.LoopId, E.Activation, E.Cycle);
    break;
  case EventKind::LoopIter:
    Sink.onLoopIter(E.LoopId, E.Cycle);
    break;
  case EventKind::LoopEnd:
    Sink.onLoopEnd(E.LoopId, E.Cycle);
    break;
  case EventKind::Return:
    Sink.onReturn(E.Activation);
    break;
  case EventKind::CallSite:
    Sink.onCallSite(E.Pc, E.Cycle);
    break;
  case EventKind::CallReturn:
    Sink.onCallReturn(E.Cycle);
    break;
  case EventKind::ReadStats:
    Sink.onReadStats(E.LoopId, E.Cycle);
    break;
  }
}

/// Block-aware dispatch: the zero-cost kinds (and `eoi`, when the sink
/// opts in to deferring it) go through the shared emit helpers (appended
/// to \p Blk, drained when it fills), the remaining control kinds drain
/// pending events first and then dispatch virtually — the exact
/// discipline the live interpreter uses, so a replayed stream reaches the
/// sink in the same batches as a live one. With \p Blk == nullptr this
/// degenerates to dispatchEvent(). Callers must drainPending() after the
/// final event.
inline void dispatchEventBatched(const Event &E, interp::TraceSink &Sink,
                                 interp::EventBlock *Blk) {
  switch (E.Kind) {
  case EventKind::HeapLoad:
    interp::emitHeapLoad(Sink, Blk, E.Addr, E.Cycle, E.Pc);
    break;
  case EventKind::HeapStore:
    interp::emitHeapStore(Sink, Blk, E.Addr, E.Cycle, E.Pc);
    break;
  case EventKind::LocalLoad:
    interp::emitLocalLoad(Sink, Blk, E.Activation, E.Reg, E.Cycle, E.Pc);
    break;
  case EventKind::LocalStore:
    interp::emitLocalStore(Sink, Blk, E.Activation, E.Reg, E.Cycle, E.Pc);
    break;
  case EventKind::CallSite:
    interp::emitCallSite(Sink, Blk, E.Pc, E.Cycle);
    break;
  case EventKind::CallReturn:
    interp::emitCallReturn(Sink, Blk, E.Cycle);
    break;
  case EventKind::LoopIter:
    interp::emitLoopIter(Sink, Blk, E.LoopId, E.Cycle);
    break;
  case EventKind::LoopStart:
  case EventKind::LoopEnd:
  case EventKind::Return:
  case EventKind::ReadStats:
    interp::drainPending(Sink, Blk);
    dispatchEvent(E, Sink);
    break;
  }
}

/// Re-drives \p Sink with every event of \p R. Returns the number of
/// events replayed. Throws Error on any corruption. Batch-capable sinks
/// are fed through their EventBlock.
std::uint64_t replay(Reader &R, interp::TraceSink &Sink);

/// Event-by-event comparison of two traces for golden-trace regression.
struct DiffResult {
  bool Identical = false;
  /// Index of the first diverging event (or the shorter stream's length).
  std::uint64_t FirstDivergence = 0;
  /// Human-readable description of the first divergence; empty when equal.
  std::string Detail;
};

DiffResult diffTraces(Reader &A, Reader &B);

} // namespace trace
} // namespace jrpm

#endif // JRPM_TRACE_READER_H
