//===- trace/Dump.cpp ------------------------------------------------------==//

#include "trace/Dump.h"

#include "support/Compiler.h"
#include "support/Format.h"

using namespace jrpm;
using namespace jrpm::trace;

std::string trace::formatEvent(const Event &E) {
  std::string Cycle =
      E.Kind == EventKind::Return
          ? formatString("%8s", "-")
          : formatString("%8llu", static_cast<unsigned long long>(E.Cycle));
  switch (E.Kind) {
  case EventKind::HeapLoad:
  case EventKind::HeapStore:
    return formatString("%s  %-5s addr=%u pc=%d", Cycle.c_str(),
                        eventKindName(E.Kind), E.Addr, E.Pc);
  case EventKind::LocalLoad:
  case EventKind::LocalStore:
    return formatString("%s  %-5s r%u act=%llu pc=%d", Cycle.c_str(),
                        eventKindName(E.Kind), E.Reg,
                        static_cast<unsigned long long>(E.Activation), E.Pc);
  case EventKind::LoopStart:
    return formatString("%s  %-5s #%u act=%llu", Cycle.c_str(),
                        eventKindName(E.Kind), E.LoopId,
                        static_cast<unsigned long long>(E.Activation));
  case EventKind::LoopIter:
  case EventKind::LoopEnd:
  case EventKind::ReadStats:
    return formatString("%s  %-5s #%u", Cycle.c_str(), eventKindName(E.Kind),
                        E.LoopId);
  case EventKind::Return:
    return formatString("%s  %-5s act=%llu", Cycle.c_str(),
                        eventKindName(E.Kind),
                        static_cast<unsigned long long>(E.Activation));
  case EventKind::CallSite:
    return formatString("%s  %-5s pc=%d", Cycle.c_str(),
                        eventKindName(E.Kind), E.Pc);
  case EventKind::CallReturn:
    return formatString("%s  %-5s", Cycle.c_str(), eventKindName(E.Kind));
  }
  JRPM_UNREACHABLE("bad EventKind");
}

std::uint64_t trace::dumpTrace(Reader &R, std::FILE *Out,
                               std::uint64_t MaxEvents) {
  Event E;
  std::uint64_t N = 0;
  while (N < MaxEvents && R.next(E)) {
    std::string Line = formatEvent(E);
    std::fprintf(Out, "%s\n", Line.c_str());
    ++N;
  }
  return N;
}
