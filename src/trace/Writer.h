//===- trace/Writer.h - Streaming .jtrace capture --------------------------==//
//
// Writer streams TraceSink events to disk in buffered, delta-encoded
// chunks; RecordingSink is the tee that feeds it from a live annotated run
// while forwarding every event (and the downstream sink's cycle charges)
// unchanged, so recording never perturbs the run being recorded.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACE_WRITER_H
#define JRPM_TRACE_WRITER_H

#include "interp/EventBlock.h"
#include "interp/TraceSink.h"
#include "trace/Wire.h"

#include <cstdio>

namespace jrpm {
namespace trace {

class Writer {
public:
  /// Opens \p Path and writes the header; throws Error(Io) on failure.
  Writer(const std::string &Path, const TraceHeader &Header);
  ~Writer();

  Writer(const Writer &) = delete;
  Writer &operator=(const Writer &) = delete;

  /// Appends one event to the current chunk (flushed automatically).
  void append(const Event &E);

  /// Flushes the final chunk, writes the footer and end magic, and closes
  /// the file. Must be called exactly once; a Writer destroyed without
  /// finish() leaves a file any Reader rejects as truncated.
  void finish(const RunInfo &Run);

  std::uint64_t eventsWritten() const { return Footer.TotalEvents; }
  std::uint64_t bytesWritten() const { return BytesWritten; }

private:
  void write(const void *Data, std::size_t Size);
  void writeU32(std::uint32_t V);
  void flushChunk();

  std::FILE *File = nullptr;
  std::string Path;
  std::vector<std::uint8_t> Chunk;
  std::uint32_t ChunkEvents = 0;
  DeltaState Deltas;
  TraceFooter Footer;
  std::uint64_t BytesWritten = 0;
};

/// TraceSink tee: records every event into \p W and forwards it to the
/// optional downstream sink, returning the downstream's cycle charges so
/// the captured run is cycle-identical to an unrecorded one.
///
/// Batching is zero-copy: when the downstream sink exposes an EventBlock
/// the tee hands that same block to the producer, and on drain writes the
/// pending events to the Writer before delegating the drain downstream —
/// so the recorded order equals the consumed order by construction. With
/// no downstream the tee batches into its own block; with an unbatched
/// downstream it stays on the per-event path (eventBlock() == nullptr) so
/// the downstream's cycle charges keep flowing back per event.
class RecordingSink : public interp::TraceSink {
public:
  explicit RecordingSink(Writer &W, interp::TraceSink *Downstream = nullptr)
      : W(W), Down(Downstream),
        DownBlk(Downstream ? Downstream->eventBlock() : nullptr) {}

  interp::EventBlock *eventBlock() override {
    return Down ? DownBlk : &OwnBlock;
  }

  void drainBlock() override {
    interp::EventBlock *Blk = Down ? DownBlk : &OwnBlock;
    if (!Blk)
      return;
    const interp::BatchedEvent *Ev = Blk->data();
    for (std::uint32_t I = 0, N = Blk->size(); I < N; ++I) {
      Event E;
      switch (Ev[I].Tag) {
      case interp::EventTag::HeapLoad:
        E.Kind = EventKind::HeapLoad;
        E.Addr = Ev[I].Addr;
        E.Cycle = Ev[I].Cycle;
        E.Pc = Ev[I].Pc;
        break;
      case interp::EventTag::HeapStore:
        E.Kind = EventKind::HeapStore;
        E.Addr = Ev[I].Addr;
        E.Cycle = Ev[I].Cycle;
        E.Pc = Ev[I].Pc;
        break;
      case interp::EventTag::LocalLoad:
        E.Kind = EventKind::LocalLoad;
        E.Activation = Ev[I].Activation;
        E.Reg = Ev[I].Reg;
        E.Cycle = Ev[I].Cycle;
        E.Pc = Ev[I].Pc;
        break;
      case interp::EventTag::LocalStore:
        E.Kind = EventKind::LocalStore;
        E.Activation = Ev[I].Activation;
        E.Reg = Ev[I].Reg;
        E.Cycle = Ev[I].Cycle;
        E.Pc = Ev[I].Pc;
        break;
      case interp::EventTag::CallSite:
        E.Kind = EventKind::CallSite;
        E.Pc = Ev[I].Pc;
        E.Cycle = Ev[I].Cycle;
        break;
      case interp::EventTag::CallReturn:
        E.Kind = EventKind::CallReturn;
        E.Cycle = Ev[I].Cycle;
        break;
      case interp::EventTag::LoopIter:
        // Present only when the downstream sink opted in to deferred eoi
        // (the tee itself never sets the flag on its own block).
        E.Kind = EventKind::LoopIter;
        E.LoopId = Ev[I].Addr;
        E.Cycle = Ev[I].Cycle;
        break;
      }
      W.append(E);
    }
    if (Down)
      Down->drainBlock();
    else
      OwnBlock.clear();
  }

  std::uint32_t onHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                           std::int32_t Pc) override {
    Event E;
    E.Kind = EventKind::HeapLoad;
    E.Addr = Addr;
    E.Cycle = Cycle;
    E.Pc = Pc;
    W.append(E);
    return Down ? Down->onHeapLoad(Addr, Cycle, Pc) : 0;
  }
  std::uint32_t onHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                            std::int32_t Pc) override {
    Event E;
    E.Kind = EventKind::HeapStore;
    E.Addr = Addr;
    E.Cycle = Cycle;
    E.Pc = Pc;
    W.append(E);
    return Down ? Down->onHeapStore(Addr, Cycle, Pc) : 0;
  }
  std::uint32_t onLocalLoad(std::uint64_t Activation, std::uint16_t Reg,
                            std::uint64_t Cycle, std::int32_t Pc) override {
    Event E;
    E.Kind = EventKind::LocalLoad;
    E.Activation = Activation;
    E.Reg = Reg;
    E.Cycle = Cycle;
    E.Pc = Pc;
    W.append(E);
    return Down ? Down->onLocalLoad(Activation, Reg, Cycle, Pc) : 0;
  }
  std::uint32_t onLocalStore(std::uint64_t Activation, std::uint16_t Reg,
                             std::uint64_t Cycle, std::int32_t Pc) override {
    Event E;
    E.Kind = EventKind::LocalStore;
    E.Activation = Activation;
    E.Reg = Reg;
    E.Cycle = Cycle;
    E.Pc = Pc;
    W.append(E);
    return Down ? Down->onLocalStore(Activation, Reg, Cycle, Pc) : 0;
  }
  std::uint32_t onLoopStart(std::uint32_t LoopId, std::uint64_t Activation,
                            std::uint64_t Cycle) override {
    Event E;
    E.Kind = EventKind::LoopStart;
    E.LoopId = LoopId;
    E.Activation = Activation;
    E.Cycle = Cycle;
    W.append(E);
    return Down ? Down->onLoopStart(LoopId, Activation, Cycle) : 0;
  }
  std::uint32_t onLoopIter(std::uint32_t LoopId,
                           std::uint64_t Cycle) override {
    Event E;
    E.Kind = EventKind::LoopIter;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    W.append(E);
    return Down ? Down->onLoopIter(LoopId, Cycle) : 0;
  }
  std::uint32_t onLoopEnd(std::uint32_t LoopId, std::uint64_t Cycle) override {
    Event E;
    E.Kind = EventKind::LoopEnd;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    W.append(E);
    return Down ? Down->onLoopEnd(LoopId, Cycle) : 0;
  }
  void onReturn(std::uint64_t Activation) override {
    Event E;
    E.Kind = EventKind::Return;
    E.Activation = Activation;
    W.append(E);
    if (Down)
      Down->onReturn(Activation);
  }
  void onCallSite(std::int32_t CallPc, std::uint64_t Cycle) override {
    Event E;
    E.Kind = EventKind::CallSite;
    E.Pc = CallPc;
    E.Cycle = Cycle;
    W.append(E);
    if (Down)
      Down->onCallSite(CallPc, Cycle);
  }
  void onCallReturn(std::uint64_t Cycle) override {
    Event E;
    E.Kind = EventKind::CallReturn;
    E.Cycle = Cycle;
    W.append(E);
    if (Down)
      Down->onCallReturn(Cycle);
  }
  std::uint32_t onReadStats(std::uint32_t LoopId,
                            std::uint64_t Cycle) override {
    Event E;
    E.Kind = EventKind::ReadStats;
    E.LoopId = LoopId;
    E.Cycle = Cycle;
    W.append(E);
    return Down ? Down->onReadStats(LoopId, Cycle) : 0;
  }

private:
  Writer &W;
  interp::TraceSink *Down;
  interp::EventBlock *DownBlk;
  interp::EventBlock OwnBlock; ///< used only when there is no downstream
};

} // namespace trace
} // namespace jrpm

#endif // JRPM_TRACE_WRITER_H
