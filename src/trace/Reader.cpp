//===- trace/Reader.cpp ----------------------------------------------------==//

#include "trace/Reader.h"

#include "trace/Dump.h"

#include <cstring>

using namespace jrpm;
using namespace jrpm::trace;

Reader::Reader(const std::string &Path) : Path(Path) {
  File = std::fopen(Path.c_str(), "rb");
  if (!File)
    throw Error(ErrorKind::Io, "cannot open '" + Path + "' for reading");
  if (std::fseek(File, 0, SEEK_END) != 0)
    throw Error(ErrorKind::Io, "cannot seek '" + Path + "'");
  long Size = std::ftell(File);
  if (Size < 0)
    throw Error(ErrorKind::Io, "cannot size '" + Path + "'");
  FileSize = static_cast<std::uint64_t>(Size);

  char Magic[sizeof(FileMagic)];
  readAt(0, Magic, sizeof(Magic));
  if (std::memcmp(Magic, FileMagic, sizeof(FileMagic)) != 0)
    throw Error(ErrorKind::BadMagic, "'" + Path + "' is not a jtrace file");
  std::uint32_t Version = readU32At(8);
  if (Version != FormatVersion)
    throw Error(ErrorKind::BadVersion,
                "version " + std::to_string(Version) + " (expected " +
                    std::to_string(FormatVersion) + ")");
  std::uint32_t PayloadSize = readU32At(12);
  std::uint32_t Crc = readU32At(16);
  Offset = 20;
  if (PayloadSize > FileSize - Offset)
    throw Error(ErrorKind::Truncated, "header payload runs past end of file");
  std::vector<std::uint8_t> Payload(PayloadSize);
  readAt(Offset, Payload.data(), PayloadSize);
  Offset += PayloadSize;
  if (crc32(Payload.data(), PayloadSize) != Crc)
    throw Error(ErrorKind::BadChecksum, "header payload");
  Header = decodeHeader(Payload.data(), Payload.data() + PayloadSize);
}

Reader::~Reader() {
  if (File)
    std::fclose(File);
}

void Reader::readAt(std::uint64_t At, void *Out, std::size_t Size) {
  if (At > FileSize || Size > FileSize - At)
    throw Error(ErrorKind::Truncated,
                "read of " + std::to_string(Size) + " bytes at offset " +
                    std::to_string(At) + " runs past end of file");
  if (std::fseek(File, static_cast<long>(At), SEEK_SET) != 0)
    throw Error(ErrorKind::Io, "cannot seek '" + Path + "'");
  if (std::fread(Out, 1, Size, File) != Size)
    throw Error(ErrorKind::Io, "short read from '" + Path + "'");
}

std::uint32_t Reader::readU32At(std::uint64_t At) {
  std::uint8_t B[4];
  readAt(At, B, 4);
  return static_cast<std::uint32_t>(B[0]) |
         (static_cast<std::uint32_t>(B[1]) << 8) |
         (static_cast<std::uint32_t>(B[2]) << 16) |
         (static_cast<std::uint32_t>(B[3]) << 24);
}

void Reader::loadNextBlock() {
  if (Offset >= FileSize)
    throw Error(ErrorKind::MissingFooter,
                "stream ended without a footer record");
  std::uint64_t TagOffset = Offset;
  std::uint8_t Tag = 0;
  readAt(Offset, &Tag, 1);
  ++Offset;

  if (Tag == ChunkTag) {
    std::uint32_t Size = readU32At(Offset);
    std::uint32_t Events = readU32At(Offset + 4);
    std::uint32_t Crc = readU32At(Offset + 8);
    Offset += 12;
    if (Size > FileSize - Offset)
      throw Error(ErrorKind::Truncated, "chunk payload runs past end of file");
    Chunk.resize(Size);
    readAt(Offset, Chunk.data(), Size);
    Offset += Size;
    if (crc32(Chunk.data(), Size) != Crc)
      throw Error(ErrorKind::BadChecksum, "chunk at offset " +
                                              std::to_string(TagOffset));
    Cur = Chunk.data();
    End = Cur + Size;
    ChunkEventsLeft = Events;
    Deltas = DeltaState();
    return;
  }
  if (Tag == FooterTag) {
    finishStream(TagOffset);
    return;
  }
  throw Error(ErrorKind::BadRecord, "unknown record tag " +
                                        std::to_string(Tag) + " at offset " +
                                        std::to_string(TagOffset));
}

void Reader::finishStream(std::uint64_t FooterStart) {
  std::uint32_t Size = readU32At(Offset);
  std::uint32_t Crc = readU32At(Offset + 4);
  Offset += 8;
  if (Size > FileSize - Offset)
    throw Error(ErrorKind::Truncated, "footer payload runs past end of file");
  std::vector<std::uint8_t> Payload(Size);
  readAt(Offset, Payload.data(), Size);
  Offset += Size;
  if (crc32(Payload.data(), Size) != Crc)
    throw Error(ErrorKind::BadChecksum, "footer payload");
  TraceFooter F = decodeFooter(Payload.data(), Payload.data() + Size);

  std::uint32_t BlockSize = readU32At(Offset);
  if (BlockSize != Offset - FooterStart)
    throw Error(ErrorKind::BadRecord, "footer block size disagrees with "
                                      "footer position");
  Offset += 4;
  char Magic[sizeof(EndMagic)];
  readAt(Offset, Magic, sizeof(Magic));
  Offset += sizeof(Magic);
  if (std::memcmp(Magic, EndMagic, sizeof(EndMagic)) != 0)
    throw Error(ErrorKind::BadMagic, "end magic missing");
  if (Offset != FileSize)
    throw Error(ErrorKind::TrailingData,
                std::to_string(FileSize - Offset) +
                    " bytes after the end magic");

  for (std::uint32_t K = 0; K < NumEventKinds; ++K)
    if (F.EventCounts[K] != Tally.EventCounts[K])
      throw Error(ErrorKind::FooterMismatch,
                  std::string("event count for kind '") +
                      eventKindName(static_cast<EventKind>(K)) +
                      "' disagrees with the decoded stream");
  if (F.TotalEvents != Tally.TotalEvents)
    throw Error(ErrorKind::FooterMismatch, "total event count disagrees "
                                           "with the decoded stream");
  if (F.LastCycle != Tally.LastCycle)
    throw Error(ErrorKind::FooterMismatch, "final cycle disagrees with the "
                                           "decoded stream");
  CachedFooter = F;
  FooterCached = true;
  Done = true;
}

const TraceFooter &Reader::footer() {
  if (FooterCached)
    return CachedFooter;
  // O(1) path: [u32 footer block size][8-byte end magic] at the very end.
  constexpr std::uint64_t TrailerSize = 4 + sizeof(EndMagic);
  if (FileSize < TrailerSize)
    throw Error(ErrorKind::Truncated, "file too small to hold a footer");
  char Magic[sizeof(EndMagic)];
  readAt(FileSize - sizeof(EndMagic), Magic, sizeof(Magic));
  if (std::memcmp(Magic, EndMagic, sizeof(EndMagic)) != 0)
    throw Error(ErrorKind::BadMagic,
                "end magic missing (truncated or unfinished trace)");
  std::uint32_t BlockSize = readU32At(FileSize - TrailerSize);
  if (BlockSize < 9 || BlockSize + TrailerSize > FileSize)
    throw Error(ErrorKind::BadRecord, "implausible footer block size " +
                                          std::to_string(BlockSize));
  std::uint64_t TagOffset = FileSize - TrailerSize - BlockSize;
  std::uint8_t Tag = 0;
  readAt(TagOffset, &Tag, 1);
  if (Tag != FooterTag)
    throw Error(ErrorKind::BadRecord, "footer tag missing at offset " +
                                          std::to_string(TagOffset));
  std::uint32_t Size = readU32At(TagOffset + 1);
  std::uint32_t Crc = readU32At(TagOffset + 5);
  if (TagOffset + 9 + Size != FileSize - TrailerSize)
    throw Error(ErrorKind::BadRecord, "footer payload size disagrees with "
                                      "footer block size");
  std::vector<std::uint8_t> Payload(Size);
  readAt(TagOffset + 9, Payload.data(), Size);
  if (crc32(Payload.data(), Size) != Crc)
    throw Error(ErrorKind::BadChecksum, "footer payload");
  CachedFooter = decodeFooter(Payload.data(), Payload.data() + Size);
  FooterCached = true;
  return CachedFooter;
}

bool Reader::next(Event &E) {
  if (Done)
    return false;
  while (ChunkEventsLeft == 0) {
    if (Cur != End)
      throw Error(ErrorKind::BadRecord, "chunk payload longer than its "
                                        "declared event count");
    loadNextBlock();
    if (Done)
      return false;
  }
  E = decodeEvent(Cur, End, Deltas);
  --ChunkEventsLeft;

  switch (E.Kind) {
  case EventKind::LoopStart:
  case EventKind::LoopIter:
  case EventKind::LoopEnd:
  case EventKind::ReadStats:
    if (E.LoopId >= Header.LoopLocals.size())
      throw Error(ErrorKind::EventOutOfRange,
                  "loop id " + std::to_string(E.LoopId) + " outside the " +
                      std::to_string(Header.LoopLocals.size()) +
                      "-entry loop table");
    break;
  default:
    break;
  }
  if (E.Kind != EventKind::Return) {
    if (HasLastCycle && E.Cycle < Tally.LastCycle)
      throw Error(ErrorKind::NonMonotonicCycle,
                  "cycle " + std::to_string(E.Cycle) + " after cycle " +
                      std::to_string(Tally.LastCycle));
    Tally.LastCycle = E.Cycle;
    HasLastCycle = true;
  }
  ++Tally.EventCounts[static_cast<std::uint8_t>(E.Kind)];
  ++Tally.TotalEvents;
  return true;
}

//===----------------------------------------------------------------------===//
// Replay & diff
//===----------------------------------------------------------------------===//

std::uint64_t trace::replay(Reader &R, interp::TraceSink &Sink) {
  Event E;
  std::uint64_t N = 0;
  interp::EventBlock *Blk = Sink.eventBlock();
  while (R.next(E)) {
    dispatchEventBatched(E, Sink, Blk);
    ++N;
  }
  interp::drainPending(Sink, Blk);
  return N;
}

DiffResult trace::diffTraces(Reader &A, Reader &B) {
  DiffResult R;
  std::vector<std::uint8_t> HA, HB;
  encodeHeader(HA, A.header());
  encodeHeader(HB, B.header());
  if (HA != HB) {
    R.Detail = "headers differ (workload, capture config, or loop tables)";
    return R;
  }
  Event EA, EB;
  std::uint64_t I = 0;
  for (;;) {
    bool MoreA = A.next(EA);
    bool MoreB = B.next(EB);
    if (!MoreA || !MoreB) {
      if (MoreA != MoreB) {
        R.FirstDivergence = I;
        R.Detail = "event streams have different lengths (" +
                   (MoreA ? A.path() : B.path()) + " continues past event " +
                   std::to_string(I) + ")";
        return R;
      }
      break;
    }
    if (!(EA == EB)) {
      R.FirstDivergence = I;
      R.Detail = "event " + std::to_string(I) + ":\n  a: " +
                 formatEvent(EA) + "\n  b: " + formatEvent(EB);
      return R;
    }
    ++I;
  }
  if (!(A.footer().Run == B.footer().Run)) {
    R.FirstDivergence = I;
    R.Detail = "capture run results differ";
    return R;
  }
  R.Identical = true;
  R.FirstDivergence = I;
  return R;
}
