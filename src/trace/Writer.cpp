//===- trace/Writer.cpp ----------------------------------------------------==//

#include "trace/Writer.h"

using namespace jrpm;
using namespace jrpm::trace;

Writer::Writer(const std::string &Path, const TraceHeader &Header)
    : Path(Path) {
  File = std::fopen(Path.c_str(), "wb");
  if (!File)
    throw Error(ErrorKind::Io, "cannot open '" + Path + "' for writing");
  Chunk.reserve(ChunkTargetBytes + 64);

  std::vector<std::uint8_t> Payload;
  encodeHeader(Payload, Header);
  write(FileMagic, sizeof(FileMagic));
  writeU32(FormatVersion);
  writeU32(static_cast<std::uint32_t>(Payload.size()));
  writeU32(crc32(Payload.data(), Payload.size()));
  write(Payload.data(), Payload.size());
}

Writer::~Writer() {
  if (File)
    std::fclose(File);
}

void Writer::write(const void *Data, std::size_t Size) {
  if (std::fwrite(Data, 1, Size, File) != Size)
    throw Error(ErrorKind::Io, "short write to '" + Path + "'");
  BytesWritten += Size;
}

void Writer::writeU32(std::uint32_t V) {
  std::uint8_t B[4] = {static_cast<std::uint8_t>(V),
                       static_cast<std::uint8_t>(V >> 8),
                       static_cast<std::uint8_t>(V >> 16),
                       static_cast<std::uint8_t>(V >> 24)};
  write(B, 4);
}

void Writer::append(const Event &E) {
  if (!File)
    throw Error(ErrorKind::Io, "append after finish on '" + Path + "'");
  encodeEvent(Chunk, E, Deltas);
  ++ChunkEvents;
  ++Footer.EventCounts[static_cast<std::uint8_t>(E.Kind)];
  ++Footer.TotalEvents;
  if (E.Kind != EventKind::Return)
    Footer.LastCycle = E.Cycle;
  if (Chunk.size() >= ChunkTargetBytes)
    flushChunk();
}

void Writer::flushChunk() {
  if (Chunk.empty())
    return;
  std::uint8_t Tag = ChunkTag;
  write(&Tag, 1);
  writeU32(static_cast<std::uint32_t>(Chunk.size()));
  writeU32(ChunkEvents);
  writeU32(crc32(Chunk.data(), Chunk.size()));
  write(Chunk.data(), Chunk.size());
  Chunk.clear();
  ChunkEvents = 0;
  Deltas = DeltaState(); // chunks decode independently
}

void Writer::finish(const RunInfo &Run) {
  if (!File)
    throw Error(ErrorKind::Io, "finish called twice on '" + Path + "'");
  flushChunk();
  Footer.Run = Run;

  std::vector<std::uint8_t> Payload;
  encodeFooter(Payload, Footer);
  std::uint64_t FooterStart = BytesWritten;
  std::uint8_t Tag = FooterTag;
  write(&Tag, 1);
  writeU32(static_cast<std::uint32_t>(Payload.size()));
  writeU32(crc32(Payload.data(), Payload.size()));
  write(Payload.data(), Payload.size());
  writeU32(static_cast<std::uint32_t>(BytesWritten - FooterStart));
  write(EndMagic, sizeof(EndMagic));

  std::FILE *F = File;
  File = nullptr;
  if (std::fclose(F) != 0)
    throw Error(ErrorKind::Io, "cannot close '" + Path + "'");
}
