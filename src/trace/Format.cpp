//===- trace/Format.cpp ----------------------------------------------------==//

#include "trace/Format.h"

#include "support/Compiler.h"

#include <array>

using namespace jrpm;
using namespace jrpm::trace;

const char *trace::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::HeapLoad:
    return "LD";
  case EventKind::HeapStore:
    return "ST";
  case EventKind::LocalLoad:
    return "lwl";
  case EventKind::LocalStore:
    return "swl";
  case EventKind::LoopStart:
    return "sloop";
  case EventKind::LoopIter:
    return "eoi";
  case EventKind::LoopEnd:
    return "eloop";
  case EventKind::Return:
    return "ret";
  case EventKind::CallSite:
    return "call";
  case EventKind::CallReturn:
    return "cret";
  case EventKind::ReadStats:
    return "rstat";
  }
  JRPM_UNREACHABLE("bad EventKind");
}

const char *trace::errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::Io:
    return "io error";
  case ErrorKind::BadMagic:
    return "bad magic";
  case ErrorKind::BadVersion:
    return "unsupported format version";
  case ErrorKind::Truncated:
    return "truncated trace";
  case ErrorKind::BadChecksum:
    return "checksum mismatch";
  case ErrorKind::BadRecord:
    return "malformed record";
  case ErrorKind::BadVarint:
    return "malformed varint";
  case ErrorKind::UnknownEventKind:
    return "unknown event kind";
  case ErrorKind::EventOutOfRange:
    return "event out of range";
  case ErrorKind::NonMonotonicCycle:
    return "non-monotonic cycle";
  case ErrorKind::FooterMismatch:
    return "footer mismatch";
  case ErrorKind::TrailingData:
    return "trailing data";
  case ErrorKind::MissingFooter:
    return "missing footer";
  }
  JRPM_UNREACHABLE("bad ErrorKind");
}

namespace {

/// Slicing-by-8 tables: Table[0] is the classic byte-at-a-time table;
/// Table[K][B] is the CRC of byte B followed by K zero bytes. Eight bytes
/// are then folded per iteration instead of one, which matters because
/// every chunk is checksummed on both the record and the replay path.
std::array<std::array<std::uint32_t, 256>, 8> makeCrcTables() {
  std::array<std::array<std::uint32_t, 256>, 8> T{};
  for (std::uint32_t I = 0; I < 256; ++I) {
    std::uint32_t C = I;
    for (int K = 0; K < 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    T[0][I] = C;
  }
  for (std::uint32_t I = 0; I < 256; ++I)
    for (std::size_t K = 1; K < 8; ++K)
      T[K][I] = T[0][T[K - 1][I] & 0xFF] ^ (T[K - 1][I] >> 8);
  return T;
}

} // namespace

std::uint32_t trace::crc32(const std::uint8_t *Data, std::size_t Size) {
  static const std::array<std::array<std::uint32_t, 256>, 8> T =
      makeCrcTables();
  std::uint32_t C = 0xFFFFFFFFu;
  while (Size >= 8) {
    std::uint32_t Lo = C ^ (static_cast<std::uint32_t>(Data[0]) |
                            (static_cast<std::uint32_t>(Data[1]) << 8) |
                            (static_cast<std::uint32_t>(Data[2]) << 16) |
                            (static_cast<std::uint32_t>(Data[3]) << 24));
    C = T[7][Lo & 0xFF] ^ T[6][(Lo >> 8) & 0xFF] ^ T[5][(Lo >> 16) & 0xFF] ^
        T[4][Lo >> 24] ^ T[3][Data[4]] ^ T[2][Data[5]] ^ T[1][Data[6]] ^
        T[0][Data[7]];
    Data += 8;
    Size -= 8;
  }
  for (std::size_t I = 0; I < Size; ++I)
    C = T[0][(C ^ Data[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}
