//===- trace/Wire.h - Payload-level encode/decode of the .jtrace format ----==//
//
// The wire form of events, headers, and footers, shared by Writer and
// Reader so there is exactly one implementation of each direction. Framing
// (record tags, sizes, CRCs) lives in Writer.cpp/Reader.cpp; this header
// only deals in payload bytes.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACE_WIRE_H
#define JRPM_TRACE_WIRE_H

#include "trace/Format.h"

namespace jrpm {
namespace trace {

/// Delta predictors for the event encoding. Reset at every chunk boundary
/// so chunks decode independently.
struct DeltaState {
  std::uint64_t Cycle = 0;
  std::int64_t Pc = 0;
  std::int64_t Addr = 0;
  std::int64_t Activation = 0;
};

/// Upper bound on one encoded event: a kind byte plus at most four 10-byte
/// varints. Used to size the stack staging buffer in encodeEvent.
inline constexpr std::size_t MaxEventWireBytes = 1 + 4 * 10;

/// Appends the wire form of \p E to \p Out. Inline and staged through a
/// stack buffer: the encoder runs on every event of every recorded run, so
/// it must cost nanoseconds, not a vector bounds check per byte.
inline void encodeEvent(std::vector<std::uint8_t> &Out, const Event &E,
                        DeltaState &D) {
  std::uint8_t Tmp[MaxEventWireBytes];
  std::uint8_t *P = Tmp;
  *P++ = static_cast<std::uint8_t>(E.Kind);
  auto Cycle = [&] {
    P = writeZigzag(P, static_cast<std::int64_t>(E.Cycle) -
                           static_cast<std::int64_t>(D.Cycle));
    D.Cycle = E.Cycle;
  };
  auto Pc = [&] {
    P = writeZigzag(P, static_cast<std::int64_t>(E.Pc) - D.Pc);
    D.Pc = E.Pc;
  };
  auto Addr = [&] {
    P = writeZigzag(P, static_cast<std::int64_t>(E.Addr) - D.Addr);
    D.Addr = E.Addr;
  };
  auto Act = [&] {
    P = writeZigzag(P, static_cast<std::int64_t>(E.Activation) -
                           D.Activation);
    D.Activation = static_cast<std::int64_t>(E.Activation);
  };
  switch (E.Kind) {
  case EventKind::HeapLoad:
  case EventKind::HeapStore:
    Cycle();
    Addr();
    Pc();
    break;
  case EventKind::LocalLoad:
  case EventKind::LocalStore:
    Cycle();
    Act();
    P = writeVarint(P, E.Reg);
    Pc();
    break;
  case EventKind::LoopStart:
    Cycle();
    P = writeVarint(P, E.LoopId);
    Act();
    break;
  case EventKind::LoopIter:
  case EventKind::LoopEnd:
  case EventKind::ReadStats:
    Cycle();
    P = writeVarint(P, E.LoopId);
    break;
  case EventKind::Return:
    Act();
    break;
  case EventKind::CallSite:
    Cycle();
    Pc();
    break;
  case EventKind::CallReturn:
    Cycle();
    break;
  }
  Out.insert(Out.end(), Tmp, P);
}

/// Decodes one event from [*P, End). Throws Error on malformed input;
/// advances \p P past the event. Inline for the same reason as encodeEvent.
inline Event decodeEvent(const std::uint8_t *&P, const std::uint8_t *End,
                         DeltaState &D) {
  if (P == End)
    throw Error(ErrorKind::Truncated, "event kind byte missing");
  std::uint8_t KindByte = *P++;
  if (KindByte >= NumEventKinds)
    throw Error(ErrorKind::UnknownEventKind,
                "event kind " + std::to_string(KindByte));
  Event E;
  E.Kind = static_cast<EventKind>(KindByte);
  auto Cycle = [&] {
    D.Cycle = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(D.Cycle) + parseZigzag(P, End));
    E.Cycle = D.Cycle;
  };
  auto Pc = [&] {
    D.Pc += parseZigzag(P, End);
    E.Pc = static_cast<std::int32_t>(D.Pc);
  };
  auto Addr = [&] {
    D.Addr += parseZigzag(P, End);
    E.Addr = static_cast<std::uint32_t>(D.Addr);
  };
  auto Act = [&] {
    D.Activation += parseZigzag(P, End);
    E.Activation = static_cast<std::uint64_t>(D.Activation);
  };
  switch (E.Kind) {
  case EventKind::HeapLoad:
  case EventKind::HeapStore:
    Cycle();
    Addr();
    Pc();
    return E;
  case EventKind::LocalLoad:
  case EventKind::LocalStore:
    Cycle();
    Act();
    E.Reg = static_cast<std::uint16_t>(parseVarint(P, End));
    Pc();
    return E;
  case EventKind::LoopStart:
    Cycle();
    E.LoopId = static_cast<std::uint32_t>(parseVarint(P, End));
    Act();
    return E;
  case EventKind::LoopIter:
  case EventKind::LoopEnd:
  case EventKind::ReadStats:
    Cycle();
    E.LoopId = static_cast<std::uint32_t>(parseVarint(P, End));
    return E;
  case EventKind::Return:
    Act();
    return E;
  case EventKind::CallSite:
    Cycle();
    Pc();
    return E;
  case EventKind::CallReturn:
    Cycle();
    return E;
  }
  return E; // unreachable: KindByte was range-checked above
}

void encodeHeader(std::vector<std::uint8_t> &Out, const TraceHeader &H);
TraceHeader decodeHeader(const std::uint8_t *P, const std::uint8_t *End);

void encodeFooter(std::vector<std::uint8_t> &Out, const TraceFooter &F);
TraceFooter decodeFooter(const std::uint8_t *P, const std::uint8_t *End);

} // namespace trace
} // namespace jrpm

#endif // JRPM_TRACE_WIRE_H
