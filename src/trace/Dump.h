//===- trace/Dump.h - The one human-readable event formatter ---------------==//
//
// Every tool that pretty-prints trace events (`jrpm-run trace`,
// `jrpm-trace dump`, `jrpm-trace diff`) goes through formatEvent(), so the
// textual form of the event stream has exactly one implementation.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACE_DUMP_H
#define JRPM_TRACE_DUMP_H

#include "trace/Reader.h"

#include <cstdio>
#include <string>

namespace jrpm {
namespace trace {

/// One line per event, cycle column first ("-" for cycle-less events).
std::string formatEvent(const Event &E);

/// Pretty-prints up to \p MaxEvents events from \p R to \p Out. Returns
/// the number of events printed. Throws Error on corruption.
std::uint64_t dumpTrace(Reader &R, std::FILE *Out, std::uint64_t MaxEvents);

} // namespace trace
} // namespace jrpm

#endif // JRPM_TRACE_DUMP_H
