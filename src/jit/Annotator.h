//===- jit/Annotator.h - Inserting TEST annotation instructions ------------==//
//
// The microJIT-analog pass of Section 5.1: clones the module and instruments
// every non-rejected candidate STL with `sloop`/`eoi`/`eloop` markers,
// `lwl`/`swl` local-variable annotations, and statistics read-out calls.
// Two annotation levels reproduce Figure 6's bars: Base annotates every
// access of a tracked local and reads statistics at every STL exit;
// Optimized annotates only the first load of a local per basic block and
// hoists statistics reads to outermost candidate loops.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_JIT_ANNOTATOR_H
#define JRPM_JIT_ANNOTATOR_H

#include "analysis/Candidates.h"
#include "ir/IR.h"
#include "tracer/TraceEngine.h"

#include <vector>

namespace jrpm {
namespace jit {

enum class AnnotationLevel { Base, Optimized };

struct AnnotatedModule {
  ir::Module Module;
  /// Per-loop tracking info for the TraceEngine, indexed by loop id.
  std::vector<tracer::LoopTraceInfo> LoopInfos;
  /// Number of annotation instructions inserted (for reporting).
  std::uint64_t LocalAnnotations = 0;
  std::uint64_t LoopMarkers = 0;
  std::uint64_t StatReads = 0;
};

/// Produces the instrumented copy of \p M. \p MA must be the analysis of
/// \p M itself.
AnnotatedModule annotateModule(const ir::Module &M,
                               const analysis::ModuleAnalysis &MA,
                               AnnotationLevel Level);

/// Builds the tracer's per-loop info (annotated locals) without cloning the
/// module — used when only the tracer tables are needed.
std::vector<tracer::LoopTraceInfo>
buildLoopTraceInfos(const analysis::ModuleAnalysis &MA);

} // namespace jit
} // namespace jrpm

#endif // JRPM_JIT_ANNOTATOR_H
