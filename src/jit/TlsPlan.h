//===- jit/TlsPlan.h - Speculative recompilation plan ----------------------==//
//
// What the microJIT-analog produces when a selected STL is recompiled into
// speculative threads (Section 3.2): which locals are globalized (carried
// non-inductor scalars communicated through memory), which are rewritten as
// non-violating inductors, which are privatized reductions, and which are
// register-allocated invariants. The Hydra TLS engine executes the original
// loop body under these rules instead of textually rewriting the IR, which
// is behaviourally equivalent and keeps a single body encoding.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_JIT_TLSPLAN_H
#define JRPM_JIT_TLSPLAN_H

#include "analysis/Candidates.h"
#include "ir/IR.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace jrpm {
namespace jit {

struct TlsLoopPlan {
  std::uint32_t LoopId = 0;
  std::uint32_t Func = 0;
  std::uint32_t Header = 0;
  /// Sorted blocks of the loop body.
  std::vector<std::uint32_t> Blocks;
  /// Globalized carried locals, in spill-slot order.
  std::vector<std::uint16_t> CarriedLocals;
  /// Non-violating inductors: (register, per-iteration step).
  std::vector<std::pair<std::uint16_t, std::int64_t>> Inductors;
  /// Privatized reductions combined in commit order.
  std::vector<std::pair<std::uint16_t, analysis::ReductionKind>> Reductions;
  /// Count of register-allocated loop invariants (restart reload cost).
  std::uint32_t NumInvariants = 0;

  bool containsBlock(std::uint32_t B) const {
    return std::binary_search(Blocks.begin(), Blocks.end(), B);
  }
};

/// Builds the recompilation plan for candidate \p C of \p MA.
TlsLoopPlan buildTlsPlan(const analysis::ModuleAnalysis &MA,
                         const analysis::CandidateStl &C);

/// Lints \p Plan against \p M before the Hydra TLS engine trusts it
/// (pipeline step 4): indices in range, body blocks sorted and containing
/// the header, the register classes (globalized / inductor / reduction)
/// disjoint, and no instruction the TLS recompiler cannot speculate
/// (returns, heap allocation) inside the body. Returns all violations.
std::vector<std::string> verifyTlsPlan(const ir::Module &M,
                                       const TlsLoopPlan &Plan);

} // namespace jit
} // namespace jrpm

#endif // JRPM_JIT_TLSPLAN_H
