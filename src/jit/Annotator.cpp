//===- jit/Annotator.cpp --------------------------------------------------==//

#include "jit/Annotator.h"

#include "analysis/RegUse.h"
#include "ir/Verifier.h"
#include "support/Compiler.h"

#include <algorithm>
#include <map>
#include <set>

using namespace jrpm;
using namespace jrpm::jit;

std::vector<tracer::LoopTraceInfo>
jit::buildLoopTraceInfos(const analysis::ModuleAnalysis &MA) {
  std::vector<tracer::LoopTraceInfo> Infos;
  Infos.reserve(MA.candidates().size());
  for (const analysis::CandidateStl &C : MA.candidates()) {
    tracer::LoopTraceInfo Info;
    Info.AnnotatedLocals = C.AnnotatedLocals;
    Infos.push_back(std::move(Info));
  }
  return Infos;
}

namespace {

/// Instruments the candidate loops of one function.
class FunctionAnnotator {
public:
  FunctionAnnotator(ir::Function &F, const analysis::ModuleAnalysis &MA,
                    std::uint32_t FuncIndex, AnnotationLevel Level,
                    AnnotatedModule &Out)
      : F(F), MA(MA), FuncIndex(FuncIndex), Level(Level), Out(Out) {}

  void run() {
    collectCandidates();
    if (Cands.empty())
      return;
    planWatchedRegs();
    insertLocalAnnotations();
    insertLoopMarkers();
  }

private:
  struct CandInfo {
    const analysis::CandidateStl *C;
    const analysis::Loop *L;
    bool Outermost; // no enclosing candidate loop in this function
  };

  void collectCandidates() {
    const analysis::FunctionAnalysis &FA = MA.func(FuncIndex);
    for (const analysis::CandidateStl &C : MA.candidates()) {
      if (C.FuncIndex != FuncIndex || C.Rejected)
        continue;
      CandInfo Info;
      Info.C = &C;
      Info.L = &FA.LI.loops()[C.LoopIdx];
      Info.Outermost = true;
      Cands.push_back(Info);
    }
    // A candidate is outermost when no other candidate loop in this
    // function strictly contains its header.
    for (CandInfo &A : Cands)
      for (const CandInfo &B : Cands)
        if (A.C != B.C && B.L->contains(A.L->Header) &&
            B.L->Header != A.L->Header)
          A.Outermost = false;
    // Outer loops are instrumented first so that markers on shared exit
    // edges chain inner-to-outer (inner eloop fires before outer eloop).
    std::sort(Cands.begin(), Cands.end(),
              [](const CandInfo &A, const CandInfo &B) {
                return A.L->Depth < B.L->Depth;
              });
  }

  /// For every block, the union of annotated locals of candidate loops
  /// containing it.
  void planWatchedRegs() {
    Watched.assign(F.numBlocks(), {});
    for (const CandInfo &Info : Cands)
      for (std::uint32_t B : Info.L->Blocks)
        for (std::uint16_t Reg : Info.C->AnnotatedLocals)
          Watched[B].insert(Reg);
  }

  void insertLocalAnnotations() {
    for (std::uint32_t B = 0; B < F.numBlocks(); ++B) {
      if (Watched[B].empty())
        continue;
      const std::set<std::uint16_t> &Regs = Watched[B];
      const std::vector<ir::Instruction> &Old = F.Blocks[B].Instructions;

      // Optimized mode annotates only the last definition of a register in
      // a block: intermediate timestamps can only be read by same-thread
      // loads, which never form inter-thread arcs, so dropping them is
      // lossless for the analysis.
      std::map<std::uint16_t, std::uint32_t> LastDef;
      if (Level == AnnotationLevel::Optimized)
        for (std::uint32_t Idx = 0; Idx < Old.size(); ++Idx) {
          std::uint16_t D = analysis::definedReg(Old[Idx]);
          if (D != ir::NoReg && Regs.count(D))
            LastDef[D] = Idx;
        }

      std::vector<ir::Instruction> NewInstrs;
      std::set<std::uint16_t> LoadAnnotatedInBlock;
      for (std::uint32_t Idx = 0; Idx < Old.size(); ++Idx) {
        const ir::Instruction &I = Old[Idx];
        // lwl before the instruction for every watched register it reads;
        // optimized mode only annotates the first load in the block (the
        // shortest possible arc).
        std::set<std::uint16_t> Reads;
        analysis::forEachUsedReg(I, [&](std::uint16_t R) {
          if (Regs.count(R))
            Reads.insert(R);
        });
        for (std::uint16_t R : Reads) {
          if (Level == AnnotationLevel::Optimized &&
              LoadAnnotatedInBlock.count(R))
            continue;
          LoadAnnotatedInBlock.insert(R);
          ir::Instruction Anno;
          Anno.Op = ir::Opcode::LwlAnno;
          Anno.A = R;
          NewInstrs.push_back(Anno);
          ++Out.LocalAnnotations;
        }
        NewInstrs.push_back(I);
        std::uint16_t D = analysis::definedReg(I);
        if (D != ir::NoReg && Regs.count(D)) {
          bool Skip = Level == AnnotationLevel::Optimized &&
                      LastDef.count(D) && LastDef[D] != Idx;
          if (!Skip) {
            ir::Instruction Anno;
            Anno.Op = ir::Opcode::SwlAnno;
            Anno.A = D;
            NewInstrs.push_back(Anno);
            ++Out.LocalAnnotations;
          }
        }
      }
      F.Blocks[B].Instructions = std::move(NewInstrs);
    }
  }

  /// Retargets every branch in \p Block that points to \p From so it points
  /// to \p To.
  void retarget(std::uint32_t Block, std::uint32_t From, std::uint32_t To) {
    ir::Instruction &Term = F.Blocks[Block].Instructions.back();
    switch (Term.Op) {
    case ir::Opcode::Br:
      if (Term.Imm == From)
        Term.Imm = To;
      break;
    case ir::Opcode::CondBr:
      if (Term.Imm == From)
        Term.Imm = To;
      if (Term.Imm2 == static_cast<std::int32_t>(From))
        Term.Imm2 = static_cast<std::int32_t>(To);
      break;
    default:
      break;
    }
  }

  std::uint32_t appendBlock() {
    F.Blocks.emplace_back();
    return F.numBlocks() - 1;
  }

  void insertLoopMarkers() {
    for (const CandInfo &Info : Cands) {
      const analysis::Loop &L = *Info.L;
      std::uint32_t LoopId = Info.C->LoopId;
      // Predecessors must be recomputed for every loop: earlier loops may
      // have re-routed edges through freshly created marker blocks.
      auto Preds = F.computePredecessors();

      // Preheader with sloop: redirect non-backedge edges into the header.
      std::uint32_t Pre = appendBlock();
      {
        ir::Instruction SLoop;
        SLoop.Op = ir::Opcode::SLoop;
        SLoop.Imm = LoopId;
        SLoop.Imm2 =
            static_cast<std::int32_t>(Info.C->AnnotatedLocals.size());
        F.Blocks[Pre].Instructions.push_back(SLoop);
        ir::Instruction Br;
        Br.Op = ir::Opcode::Br;
        Br.Imm = L.Header;
        F.Blocks[Pre].Instructions.push_back(Br);
        ++Out.LoopMarkers;
      }
      for (std::uint32_t P : Preds[L.Header]) {
        if (L.contains(P))
          continue; // backedge
        retarget(P, L.Header, Pre);
      }

      // eloop (+ statistics read) blocks on every exiting edge. This must
      // happen before the eoi blocks are created: the backedge re-route
      // would otherwise make latch successors look like loop exits.
      bool EmitReadStats =
          Level == AnnotationLevel::Base || Info.Outermost;
      for (std::uint32_t B : L.Blocks) {
        std::vector<std::uint32_t> Succs;
        F.Blocks[B].appendSuccessors(Succs);
        for (std::uint32_t S : Succs) {
          if (L.contains(S))
            continue;
          ir::Instruction ELoop;
          ELoop.Op = ir::Opcode::ELoop;
          ELoop.Imm = LoopId;
          ir::Instruction Read;
          Read.Op = ir::Opcode::ReadStats;
          Read.Imm = LoopId;
          ++Out.LoopMarkers;
          if (EmitReadStats)
            ++Out.StatReads;
          // When the exit edge leaves an unconditional branch, the markers
          // go straight into the source block; only conditional exits need
          // a split block.
          if (F.Blocks[B].terminator().Op == ir::Opcode::Br) {
            auto &Instrs = F.Blocks[B].Instructions;
            auto At = Instrs.end() - 1;
            if (EmitReadStats)
              At = Instrs.insert(At, Read);
            Instrs.insert(At, ELoop);
            continue;
          }
          std::uint32_t ExitBlock = appendBlock();
          F.Blocks[ExitBlock].Instructions.push_back(ELoop);
          if (EmitReadStats)
            F.Blocks[ExitBlock].Instructions.push_back(Read);
          ir::Instruction Br;
          Br.Op = ir::Opcode::Br;
          Br.Imm = S;
          F.Blocks[ExitBlock].Instructions.push_back(Br);
          retarget(B, S, ExitBlock);
        }
      }

      // eoi on every backedge: inline into unconditional latches, a split
      // block on conditional ones (a do/while's latch also exits).
      for (std::uint32_t Latch : L.Latches) {
        ir::Instruction Eoi;
        Eoi.Op = ir::Opcode::Eoi;
        Eoi.Imm = LoopId;
        ++Out.LoopMarkers;
        if (F.Blocks[Latch].terminator().Op == ir::Opcode::Br) {
          auto &Instrs = F.Blocks[Latch].Instructions;
          Instrs.insert(Instrs.end() - 1, Eoi);
          continue;
        }
        std::uint32_t EoiBlock = appendBlock();
        F.Blocks[EoiBlock].Instructions.push_back(Eoi);
        ir::Instruction Br;
        Br.Op = ir::Opcode::Br;
        Br.Imm = L.Header;
        F.Blocks[EoiBlock].Instructions.push_back(Br);
        retarget(Latch, L.Header, EoiBlock);
      }
    }
  }

  ir::Function &F;
  const analysis::ModuleAnalysis &MA;
  std::uint32_t FuncIndex;
  AnnotationLevel Level;
  AnnotatedModule &Out;
  std::vector<CandInfo> Cands;
  std::vector<std::set<std::uint16_t>> Watched;
};

} // namespace

AnnotatedModule jit::annotateModule(const ir::Module &M,
                                    const analysis::ModuleAnalysis &MA,
                                    AnnotationLevel Level) {
  AnnotatedModule Out;
  Out.Module = M; // deep copy
  Out.LoopInfos = buildLoopTraceInfos(MA);

  for (std::uint32_t FI = 0; FI < Out.Module.Functions.size(); ++FI) {
    FunctionAnnotator FA(Out.Module.Functions[FI], MA, FI, Level, Out);
    FA.run();
  }

  Out.Module.finalize();
  std::vector<std::string> Errors = ir::verifyModule(Out.Module);
  if (!Errors.empty()) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "annotator verifier: %s\n", E.c_str());
    JRPM_FATAL("annotated module failed verification");
  }
  return Out;
}
