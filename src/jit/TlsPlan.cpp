//===- jit/TlsPlan.cpp ----------------------------------------------------==//

#include "jit/TlsPlan.h"

using namespace jrpm;
using namespace jrpm::jit;

TlsLoopPlan jit::buildTlsPlan(const analysis::ModuleAnalysis &MA,
                              const analysis::CandidateStl &C) {
  const analysis::Loop &L = MA.loopOf(C);
  const analysis::InductionInfo &Scalars = MA.scalarsOf(C);

  TlsLoopPlan Plan;
  Plan.LoopId = C.LoopId;
  Plan.Func = C.FuncIndex;
  Plan.Header = L.Header;
  Plan.Blocks = L.Blocks;
  Plan.CarriedLocals = Scalars.OtherCarried;
  for (const auto &[Reg, Step] : Scalars.Inductors)
    Plan.Inductors.emplace_back(Reg, Step);
  for (const auto &[Reg, Kind] : Scalars.Reductions)
    Plan.Reductions.emplace_back(Reg, Kind);
  Plan.NumInvariants = static_cast<std::uint32_t>(Scalars.Invariants.size());
  return Plan;
}
