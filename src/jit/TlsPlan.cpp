//===- jit/TlsPlan.cpp ----------------------------------------------------==//

#include "jit/TlsPlan.h"

#include "support/Format.h"

#include <set>
#include <string>

using namespace jrpm;
using namespace jrpm::jit;

TlsLoopPlan jit::buildTlsPlan(const analysis::ModuleAnalysis &MA,
                              const analysis::CandidateStl &C) {
  const analysis::Loop &L = MA.loopOf(C);
  const analysis::InductionInfo &Scalars = MA.scalarsOf(C);

  TlsLoopPlan Plan;
  Plan.LoopId = C.LoopId;
  Plan.Func = C.FuncIndex;
  Plan.Header = L.Header;
  Plan.Blocks = L.Blocks;
  Plan.CarriedLocals = Scalars.OtherCarried;
  for (const auto &[Reg, Step] : Scalars.Inductors)
    Plan.Inductors.emplace_back(Reg, Step);
  for (const auto &[Reg, Kind] : Scalars.Reductions)
    Plan.Reductions.emplace_back(Reg, Kind);
  Plan.NumInvariants = static_cast<std::uint32_t>(Scalars.Invariants.size());
  return Plan;
}

std::vector<std::string> jit::verifyTlsPlan(const ir::Module &M,
                                            const TlsLoopPlan &Plan) {
  std::vector<std::string> Errors;
  auto Report = [&](std::string Msg) { Errors.push_back(std::move(Msg)); };

  if (Plan.Func >= M.Functions.size()) {
    Report(formatString("plan %u: function index %u out of range", Plan.LoopId,
                        Plan.Func));
    return Errors;
  }
  const ir::Function &F = M.Functions[Plan.Func];

  if (!std::is_sorted(Plan.Blocks.begin(), Plan.Blocks.end()))
    Report(formatString("plan %u: body blocks not sorted", Plan.LoopId));
  if (Plan.Blocks.empty() || !Plan.containsBlock(Plan.Header))
    Report(formatString("plan %u: header bb%u not in body", Plan.LoopId,
                        Plan.Header));
  for (std::uint32_t B : Plan.Blocks)
    if (B >= F.numBlocks())
      Report(formatString("plan %u: body block bb%u out of range", Plan.LoopId,
                          B));

  std::set<std::uint16_t> Classes;
  auto CheckReg = [&](std::uint16_t Reg, const char *Class) {
    if (Reg >= F.NumRegs) {
      Report(formatString("plan %u: %s register r%u out of range",
                          Plan.LoopId, Class, Reg));
      return;
    }
    if (!Classes.insert(Reg).second)
      Report(formatString("plan %u: register r%u appears in two register "
                          "classes (%s and earlier)",
                          Plan.LoopId, Reg, Class));
  };
  for (std::uint16_t Reg : Plan.CarriedLocals)
    CheckReg(Reg, "globalized");
  for (const auto &[Reg, Step] : Plan.Inductors) {
    CheckReg(Reg, "inductor");
    (void)Step;
  }
  for (const auto &[Reg, Kind] : Plan.Reductions) {
    CheckReg(Reg, "reduction");
    (void)Kind;
  }

  for (std::uint32_t B : Plan.Blocks) {
    if (B >= F.numBlocks())
      continue;
    for (const ir::Instruction &I : F.Blocks[B].Instructions) {
      if (I.Op == ir::Opcode::Ret)
        Report(formatString("plan %u: body bb%u returns from the function",
                            Plan.LoopId, B));
      else if (I.Op == ir::Opcode::Alloc)
        Report(formatString("plan %u: body bb%u allocates heap memory",
                            Plan.LoopId, B));
    }
  }
  return Errors;
}
