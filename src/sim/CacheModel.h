//===- sim/CacheModel.h - Set-associative L1 timing model ------------------==//

#ifndef JRPM_SIM_CACHEMODEL_H
#define JRPM_SIM_CACHEMODEL_H

#include "sim/Config.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace sim {

/// Tag-only set-associative cache with LRU replacement, used to decide
/// whether a load hits the L1 (1 cycle) or pays the L2 penalty. The 2MB
/// on-chip L2 is modelled as always hitting: all working sets in this
/// reproduction fit comfortably within it.
class L1CacheModel {
public:
  explicit L1CacheModel(const HydraConfig &Cfg)
      : WordsPerLine(Cfg.WordsPerLine), Assoc(Cfg.L1Assoc),
        NumSets(Cfg.L1Lines / Cfg.L1Assoc),
        Sets(NumSets * Cfg.L1Assoc, EmptyTag),
        Ages(NumSets * Cfg.L1Assoc, 0) {}

  /// Touches the line containing word \p Addr; returns true on hit.
  bool access(std::uint32_t Addr) {
    std::uint32_t Line = Addr / WordsPerLine;
    std::uint32_t Set = Line % NumSets;
    std::uint64_t Tag = Line / NumSets;
    std::uint32_t Base = Set * Assoc;
    ++Clock;
    for (std::uint32_t W = 0; W < Assoc; ++W) {
      if (Sets[Base + W] == Tag) {
        Ages[Base + W] = Clock;
        return true;
      }
    }
    // Miss: replace the least recently used way.
    std::uint32_t Victim = 0;
    for (std::uint32_t W = 1; W < Assoc; ++W)
      if (Ages[Base + W] < Ages[Base + Victim])
        Victim = W;
    Sets[Base + Victim] = Tag;
    Ages[Base + Victim] = Clock;
    return false;
  }

  void reset() {
    for (auto &T : Sets)
      T = EmptyTag;
    for (auto &A : Ages)
      A = 0;
    Clock = 0;
  }

private:
  static constexpr std::uint64_t EmptyTag = ~std::uint64_t(0);
  std::uint32_t WordsPerLine;
  std::uint32_t Assoc;
  std::uint32_t NumSets;
  std::vector<std::uint64_t> Sets;
  std::vector<std::uint64_t> Ages;
  std::uint64_t Clock = 0;
};

} // namespace sim
} // namespace jrpm

#endif // JRPM_SIM_CACHEMODEL_H
