//===- sim/Config.h - Hydra CMP and TEST hardware parameters ---------------==//
//
// All hardware constants from the paper in one place: Table 1 (speculation
// buffer limits), Table 2 (TLS overheads), Section 5.3 (TEST timestamp
// store-buffer partitioning) and Section 3.1 (cache geometry). Everything is
// a plain struct so benches can sweep parameters for ablations.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SIM_CONFIG_H
#define JRPM_SIM_CONFIG_H

#include <cstdint>

namespace jrpm {
namespace sim {

/// Violation detection granularity in the TLS hardware (ablation knob; the
/// default matches Hydra's per-word speculation write bits).
enum class ViolationGranularity { Word, Line };

/// Per-opcode latency model for the single-issue cores: most instructions
/// take one cycle; divides and square roots are multi-cycle.
struct CostModel {
  std::uint32_t Basic = 1;
  std::uint32_t IntDiv = 8;
  std::uint32_t FloatDiv = 10;
  std::uint32_t FloatSqrt = 12;
  std::uint32_t CallOverhead = 2;
};

struct HydraConfig {
  // --- CMP geometry (Section 3.1) ---------------------------------------
  std::uint32_t NumCores = 4;
  /// 32-byte cache lines over 8-byte words.
  std::uint32_t WordsPerLine = 4;
  /// L1 data cache: 16kB of 32B lines, 4-way (Table 1 load buffer).
  std::uint32_t L1Lines = 512;
  std::uint32_t L1Assoc = 4;
  /// Extra cycles for an L1 miss serviced by the on-chip L2.
  std::uint32_t L2HitExtraCycles = 4;

  // --- TLS buffers (Table 1) ---------------------------------------------
  /// Speculative load state limit: L1 lines that may carry read bits.
  std::uint32_t SpecLoadLines = 512;
  /// Store buffer: 2kB = 64 lines x 32B, fully associative.
  std::uint32_t SpecStoreLines = 64;

  // --- TLS overheads (Table 2) -------------------------------------------
  std::uint32_t LoopStartupCycles = 25;
  std::uint32_t LoopShutdownCycles = 25;
  std::uint32_t EndOfIterationCycles = 5;
  std::uint32_t ViolationRestartCycles = 5;
  std::uint32_t StoreLoadCommCycles = 10;

  ViolationGranularity ViolationGrain = ViolationGranularity::Word;

  /// Section 3.2: the speculative compiler can insert synchronization
  /// locks on globalized loop locals so a consuming thread spins until its
  /// predecessor produces the value instead of speculating through it and
  /// restarting on the inevitable violation.
  bool SyncCarriedLocals = false;

  // --- TEST tracer geometry (Sections 5.2 / 5.3) --------------------------
  /// Heap store timestamps: 6kB = 192 cache lines of write history, FIFO.
  std::uint32_t HeapTimestampFifoLines = 192;
  /// Cache-line timestamp table used by the overflow analysis: load state
  /// is indexed with 512 entries (Figure 4 bits 13:5), store state with 64
  /// entries (bits 10:5); both direct mapped.
  std::uint32_t LoadTimestampEntries = 512;
  std::uint32_t StoreTimestampEntries = 64;
  /// Associativity of the overflow-analysis timestamp tables. The paper's
  /// hardware is direct mapped "to keep logic additions simple", accepting
  /// some error; raising this is the ablation of that choice.
  std::uint32_t OverflowTableAssoc = 1;
  /// Local variable store timestamps: one 2kB buffer, 64 slots.
  std::uint32_t LocalVarSlots = 64;
  /// Number of comparator banks (Section 5.2 sizes the array at eight).
  std::uint32_t ComparatorBanks = 8;

  // --- Annotation instruction costs (Section 5.1, Figure 6) ---------------
  std::uint32_t SLoopCost = 2;
  std::uint32_t ELoopCost = 2;
  std::uint32_t EoiCost = 1;
  std::uint32_t LocalAnnoCost = 1;
  /// Reading the collected statistics out of a comparator bank at STL exit
  /// (the "Read Counters" component of Figure 6).
  std::uint32_t ReadStatsCost = 24;

  // --- Software-only profiling model (Section 5 claim of >100x) -----------
  /// Callback cost charged per memory/local access when profiling without
  /// the TEST hardware: the call itself plus software timestamp-table
  /// lookups and comparisons against every active loop's thread starts.
  std::uint32_t SoftwareProfilerCallbackCycles = 250;

  /// Instruction latency model shared by the sequential and TLS engines.
  CostModel Costs;
};

} // namespace sim
} // namespace jrpm

#endif // JRPM_SIM_CONFIG_H
