//===- hwcost/TransistorModel.h - Table 5 transistor estimates -------------==//
//
// Analytic transistor-count model reproducing Table 5: SRAM arrays at six
// transistors per bit, CAM tag bits at ten, and a gate-level estimate for
// one comparator bank's registers, comparators, counters, and adder
// (Figure 7). The headline claim: TEST adds < 1% to the CMP's transistors.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_HWCOST_TRANSISTORMODEL_H
#define JRPM_HWCOST_TRANSISTORMODEL_H

#include "sim/Config.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jrpm {
namespace hwcost {

struct StructureCost {
  std::string Name;
  std::uint32_t Count = 1;      ///< instances on the die
  std::uint64_t Each = 0;       ///< transistors per instance
  std::uint64_t total() const { return Count * Each; }
};

struct CostBreakdown {
  std::vector<StructureCost> Structures;
  std::uint64_t total() const;
  /// Fraction of the total contributed by structures whose name matches
  /// \p NameSubstring.
  double fractionOf(const std::string &NameSubstring) const;
};

/// Transistor model parameters.
struct CostParams {
  std::uint64_t SramTransistorsPerBit = 6;
  std::uint64_t CamTransistorsPerBit = 10;
  /// One CPU integer+FP core (the paper uses 2500K).
  std::uint64_t CpuCoreTransistors = 2500 * 1000;
  /// Flip-flop cost per register bit and gates per comparator/counter bit.
  std::uint64_t FlopTransistorsPerBit = 8;
  std::uint64_t ComparatorTransistorsPerBit = 14;
  std::uint64_t AdderTransistorsPerBit = 28;
};

/// Builds the full Hydra + TLS + TEST cost breakdown for \p Cfg.
CostBreakdown estimateHydraCost(const sim::HydraConfig &Cfg,
                                const CostParams &P = CostParams());

/// Transistors for one comparator bank (Figure 7): thread-start registers,
/// arc-length comparators, buffer-limit comparators, accumulation counters
/// and the arc-length adder.
std::uint64_t comparatorBankTransistors(const CostParams &P);

} // namespace hwcost
} // namespace jrpm

#endif // JRPM_HWCOST_TRANSISTORMODEL_H
