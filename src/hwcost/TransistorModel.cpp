//===- hwcost/TransistorModel.cpp -----------------------------------------==//

#include "hwcost/TransistorModel.h"

using namespace jrpm;
using namespace jrpm::hwcost;

std::uint64_t CostBreakdown::total() const {
  std::uint64_t T = 0;
  for (const StructureCost &S : Structures)
    T += S.total();
  return T;
}

double CostBreakdown::fractionOf(const std::string &NameSubstring) const {
  std::uint64_t T = total();
  if (!T)
    return 0.0;
  std::uint64_t Part = 0;
  for (const StructureCost &S : Structures)
    if (S.Name.find(NameSubstring) != std::string::npos)
      Part += S.total();
  return static_cast<double>(Part) / static_cast<double>(T);
}

std::uint64_t hwcost::comparatorBankTransistors(const CostParams &P) {
  // Figure 7 inventory, all datapaths 32 bits wide:
  constexpr std::uint64_t Width = 32;
  // Registers: thread start timestamps (t, t-1, entry), last LD/ST
  // timestamps, critical arc lengths (t-1, < t-1) and their PCs.
  constexpr std::uint64_t Registers = 9;
  // Comparators: dependency-arc identification (2), critical-arc minimum
  // (2), buffer-limit checks (2), cache-line timestamp checks (2).
  constexpr std::uint64_t Comparators = 8;
  // Counters: cycles, threads, entries, arcs/lengths for two bins, new
  // load/store lines, overflows.
  constexpr std::uint64_t Counters = 10;
  // One adder for arc-length accumulation.
  constexpr std::uint64_t Adders = 1;
  // A counter is an incrementer plus its register; decode/mux/control adds
  // roughly 40% on top of the raw datapath.
  std::uint64_t Datapath =
      Registers * Width * P.FlopTransistorsPerBit +
      Comparators * Width * P.ComparatorTransistorsPerBit +
      Counters * Width * (P.AdderTransistorsPerBit + P.FlopTransistorsPerBit) +
      Adders * Width * P.AdderTransistorsPerBit;
  return Datapath + (Datapath * 2) / 5;
}

CostBreakdown hwcost::estimateHydraCost(const sim::HydraConfig &Cfg,
                                        const CostParams &P) {
  CostBreakdown B;
  auto SramBits = [&](std::uint64_t Bytes) {
    return Bytes * 8 * P.SramTransistorsPerBit;
  };

  // CPU cores with FP units.
  B.Structures.push_back({"CPU + FP core", Cfg.NumCores,
                          P.CpuCoreTransistors});

  // Per-core 16kB I + 16kB D caches (32kB of SRAM each core).
  std::uint64_t L1Bytes = 2ull * Cfg.L1Lines * Cfg.WordsPerLine * 8;
  B.Structures.push_back({"16kB I / 16kB D cache", Cfg.NumCores,
                          SramBits(L1Bytes)});

  // 2MB shared L2.
  B.Structures.push_back({"2MB L2 cache", 1, SramBits(2ull * 1024 * 1024)});

  // Five speculation write buffers: 2kB data each plus fully associative
  // CAM tags (one 27-bit line tag per 32B line).
  std::uint64_t BufBytes = Cfg.SpecStoreLines * Cfg.WordsPerLine * 8;
  std::uint64_t BufCamBits = static_cast<std::uint64_t>(Cfg.SpecStoreLines) *
                             27 * P.CamTransistorsPerBit;
  // Per-line control: word valid/modified bits, priority/forwarding match
  // logic, plus the drain state machine (sized to land near the paper's
  // 172K per buffer).
  std::uint64_t BufControl = Cfg.SpecStoreLines * 850 + 12000;
  B.Structures.push_back({"Write buffer", 5,
                          SramBits(BufBytes) + BufCamBits + BufControl});

  // TEST: the comparator bank array.
  B.Structures.push_back({"Comparator bank", Cfg.ComparatorBanks,
                          comparatorBankTransistors(P)});
  return B;
}
