//===- serve/Protocol.h - jrpm-serve wire protocol --------------------------==//
//
// The daemon speaks a deliberately small protocol over a Unix-domain
// stream socket:
//
//   frame    := u32-LE payload length (1..MaxFrameBytes) ++ payload bytes
//   request  := one frame holding a JSON object {"kind": ..., ...body}
//   response := one frame holding a JSON header object
//                 {"cache","code","digest","message","payload_bytes","status"}
//               ++ exactly payload_bytes raw bytes
//
// The response payload rides *outside* the JSON header, as raw bytes: a
// cached artifact is served exactly as stored — byte-identical to the cold
// computation that produced it — with no escape/unescape round trip in
// between, and binary artifacts need no encoding. Every malformed input
// (bad length prefix, oversize frame, non-JSON payload, depth bomb) maps
// to a typed error code; the daemon never dies on a bad client.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SERVE_PROTOCOL_H
#define JRPM_SERVE_PROTOCOL_H

#include "support/Json.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace jrpm {
namespace serve {

/// Upper bound a peer may claim for one frame. Requests are small JSON
/// documents and responses inline one artifact; 16 MiB bounds a hostile
/// length prefix without constraining any real payload.
constexpr std::uint32_t MaxFrameBytes = 16u << 20;

/// Typed protocol/request error codes (the "code" field of an error
/// response). Names are the wire form.
enum class ErrCode {
  MalformedFrame, ///< bad length prefix (zero, or stream ended mid-frame)
  Oversize,       ///< frame length beyond MaxFrameBytes
  BadJson,        ///< frame payload failed Json::parse
  BadRequest,     ///< well-formed JSON, invalid fields for its kind
  UnknownKind,    ///< "kind" is none of ping/stats/sweep/analyze/replay
  Saturated,      ///< admission control rejected the request (queue bound)
  Draining,       ///< daemon is shutting down; no new work admitted
  Internal,       ///< the computation itself failed
};

const char *errCodeName(ErrCode C);

/// One fully decoded response: header fields plus the raw payload bytes.
struct Response {
  bool Ok = false;
  std::string Code;    ///< errCodeName(...) when !Ok, empty when Ok
  std::string Message; ///< human-readable detail; empty when Ok
  std::string Digest;  ///< 16-hex-digit request digest ("-" for ping/stats)
  std::string Cache;   ///< "hit" | "miss" | "join" | "none"
  std::string Payload;

  static Response ok(std::string Digest, std::string Cache,
                     std::string Payload);
  static Response error(ErrCode Code, std::string Message);
};

// --- Framing (buffer level; testable without sockets) ---------------------

enum class FrameStatus {
  Ok,        ///< one complete frame decoded
  NeedMore,  ///< prefix of a valid frame; read more bytes
  Malformed, ///< zero-length frame
  Oversize,  ///< declared length beyond \p MaxBytes
};

/// Encodes \p Payload as a length-prefixed frame.
std::string encodeFrame(const std::string &Payload);

/// Attempts to decode one frame from the front of [Data, Data+Size). On
/// Ok, sets \p Payload and \p Consumed (prefix bytes eaten). On NeedMore,
/// nothing is consumed. Malformed/Oversize are terminal for the stream.
FrameStatus decodeFrame(const std::uint8_t *Data, std::size_t Size,
                        std::size_t &Consumed, std::string &Payload,
                        std::uint32_t MaxBytes = MaxFrameBytes);

// --- Framing (fd level) ----------------------------------------------------

enum class FrameRead {
  Ok,
  Eof,       ///< clean end of stream before any frame byte
  Malformed, ///< zero length, or stream ended inside a frame
  Oversize,
  IoError,
};

/// Blocking read of one frame from \p Fd.
FrameRead readFrame(int Fd, std::string &Payload,
                    std::uint32_t MaxBytes = MaxFrameBytes);

/// Blocking write of all \p Size bytes (retries short writes/EINTR).
bool writeAll(int Fd, const void *Data, std::size_t Size);

/// writeAll of encodeFrame(Payload).
bool writeFrame(int Fd, const std::string &Payload);

// --- Response encode/decode ------------------------------------------------

/// Serializes the header for \p R (payload_bytes filled from R.Payload).
Json responseHeader(const Response &R);

/// Sends header frame + raw payload bytes.
bool writeResponse(int Fd, const Response &R);

/// Reads a full response (header frame + payload bytes). Returns false on
/// any framing, JSON, or I/O problem, with *Err describing it.
bool readResponse(int Fd, Response &Out, std::string *Err,
                  std::uint32_t MaxBytes = MaxFrameBytes);

// --- Content digests -------------------------------------------------------

/// FNV-1a over \p Bytes — the request-digest primitive. Callers digest the
/// *canonical* dump of a request body (sorted keys, defaults filled), so
/// two requests meaning the same thing always collide onto one artifact.
std::uint64_t fnv1a(const std::string &Bytes);

/// 16-hex-digit rendering used in response headers and store filenames.
std::string digestHex(std::uint64_t Digest);

} // namespace serve
} // namespace jrpm

#endif // JRPM_SERVE_PROTOCOL_H
