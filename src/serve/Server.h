//===- serve/Server.h - The jrpm-serve analysis daemon ---------------------==//
//
// A long-running daemon that accepts analysis requests (sweeps, single-job
// analyses, trace replays) over a Unix-domain socket and serves results
// from a content-addressed artifact store. The execution model:
//
//   * Every request body is canonicalized (defaults filled, config points
//     renamed to canonical form, sorted-key dump) and digested; the digest
//     addresses the artifact store, so repeated requests — across clients,
//     connections, and daemon restarts — are O(1) cache hits returning
//     byte-identical payloads.
//   * Identical requests in flight are deduplicated (single-flight): one
//     leader computes, every concurrent joiner waits on its completion and
//     receives the same bytes. The daemon never computes the same digest
//     twice concurrently.
//   * Admission control bounds the number of concurrently admitted compute
//     requests; beyond the bound, requests are rejected with the typed
//     "saturated" error rather than queued without bound.
//   * Compute requests dispatch their jobs onto one shared work-stealing
//     ThreadPool via runSweepOn (per-call latch), so N concurrent requests
//     time-share the pool instead of spawning N pools.
//   * SIGTERM-style shutdown is graceful: requestStop() is async-signal-
//     safe; new requests are rejected with "draining", in-flight work
//     completes and persists, then drain() joins every thread.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SERVE_SERVER_H
#define JRPM_SERVE_SERVER_H

#include "metrics/Metrics.h"
#include "serve/ArtifactStore.h"
#include "serve/Protocol.h"
#include "sweep/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace jrpm {
namespace serve {

struct ServerConfig {
  std::string SocketPath;
  std::string StoreDir;
  /// Worker threads in the shared pool (0 = hardware width).
  unsigned Threads = 0;
  /// Admission bound: concurrently admitted compute requests beyond this
  /// are rejected with ErrCode::Saturated. Cache hits and joins are always
  /// admitted (they cost no pool time).
  unsigned MaxActive = 8;
  std::uint32_t FrameLimit = MaxFrameBytes;
};

class Server {
public:
  explicit Server(ServerConfig Config);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  const ServerConfig &config() const { return Cfg; }
  ArtifactStore &store() { return Store; }

  /// Binds the socket, spawns the accept loop. False with *Err on failure.
  bool start(std::string *Err);

  /// Initiates shutdown. Async-signal-safe (atomic store + pipe write):
  /// this is the SIGTERM handler's entire job.
  void requestStop();

  bool stopRequested() const {
    return Stopping.load(std::memory_order_acquire);
  }

  /// Blocks until the accept loop has exited (i.e. until requestStop(),
  /// from any thread or a signal handler, has taken effect).
  void waitForStop();

  /// Graceful teardown: requestStop(), join the accept loop, shut down
  /// idle connections, join every connection thread (in-flight computes
  /// finish and persist first), unlink the socket. Idempotent; the
  /// destructor calls it.
  void drain();

  /// Handles one decoded request frame — the protocol core, exposed so
  /// tests can drive the daemon without sockets.
  Response handle(const std::string &FrameBytes);

  /// Point-in-time stats document: the daemon's "serve.*" registry (with
  /// per-request metrics folded in), store stats, and the process-wide
  /// image/trace cache stats, rendered as a jrpm-metrics-v1 document that
  /// jrpm-metrics show/diff can read.
  Json statsJson();

private:
  struct Conn {
    int Fd = -1;
    std::thread T;
    std::atomic<bool> Done{false};
  };

  /// One single-flight slot: the leader fills R and flips DoneFlag; every
  /// joiner waits on Cv and copies R.
  struct Inflight {
    std::mutex M;
    std::condition_variable Cv;
    bool DoneFlag = false;
    Response R;
  };

  void acceptLoop();
  void handleConnection(Conn &C);
  void reapFinishedLocked();

  Response handleSweep(const Json &Req);
  Response handleAnalyze(const Json &Req);
  Response handleReplay(const Json &Req);
  Response handleStats();

  /// The store-first / single-flight / admission-control core shared by
  /// every compute kind. \p Compute returns the payload bytes (and may
  /// throw); its result is persisted under (\p Kind, \p Digest) before
  /// joiners are released.
  Response computeGated(const char *Kind, std::uint64_t Digest,
                        const std::function<std::string()> &Compute);

  /// computeGated with admission control optional: nested computations
  /// (a replay capturing its trace) already hold a slot and must not be
  /// double-counted — or spuriously saturated — by the inner call.
  Response computeGatedImpl(const char *Kind, std::uint64_t Digest,
                            const std::function<std::string()> &Compute,
                            bool Admit);

  /// Ensures the recorded trace for (workload, level) exists in the store;
  /// returns its digest. Throws on record failure.
  std::uint64_t ensureTrace(const std::string &Workload,
                            const std::string &LevelName);

  void count(const char *Name, std::uint64_t N = 1);
  void foldRequestMetrics(const metrics::Registry &R);

  ServerConfig Cfg;
  ArtifactStore Store;
  sweep::ThreadPool Pool;

  int ListenFd = -1;
  int WakeR = -1, WakeW = -1; ///< self-pipe: signal handler -> accept loop
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Drained{false};
  std::thread AcceptThread;

  std::mutex ConnM;
  std::list<std::unique_ptr<Conn>> Conns;

  std::mutex FlightM;
  std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>> Flights;
  unsigned Active = 0; ///< admitted compute leaders in flight

  std::mutex RegM;
  metrics::Registry Reg; ///< daemon-lifetime "serve.*" namespace
};

} // namespace serve
} // namespace jrpm

#endif // JRPM_SERVE_SERVER_H
