//===- serve/ArtifactStore.cpp ---------------------------------------------==//

#include "serve/ArtifactStore.h"

#include "serve/Protocol.h"
#include "support/AtomicFile.h"
#include "support/Format.h"

#include <cstring>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

using namespace jrpm;
using namespace jrpm::serve;

namespace {

/// mkdir -p via repeated mkdir(2): std::filesystem would work too, but the
/// store only ever needs three fixed levels and this keeps the error text
/// precise.
bool makeDirs(const std::string &Path, std::string *Err) {
  std::string Partial;
  for (std::size_t I = 0; I <= Path.size(); ++I) {
    if (I != Path.size() && Path[I] != '/') {
      Partial.push_back(Path[I]);
      continue;
    }
    if (I != Path.size())
      Partial.push_back('/');
    if (Partial.empty() || Partial == "/")
      continue;
    if (::mkdir(Partial.c_str(), 0755) != 0 && errno != EEXIST) {
      if (Err)
        *Err = "cannot create " + Partial + ": " + std::strerror(errno);
      return false;
    }
  }
  return true;
}

} // namespace

bool ArtifactStore::ensureRoot(std::string *Err) {
  if (Root.empty()) {
    if (Err)
      *Err = "artifact store has no root directory";
    return false;
  }
  return makeDirs(Root, Err);
}

std::string ArtifactStore::pathFor(const char *Kind,
                                   std::uint64_t Digest) const {
  const char *Ext = std::strcmp(Kind, kind::Trace) == 0 ? "jtrace" : "json";
  return formatString("%s/%s/%02x/%s.%s", Root.c_str(), Kind,
                      (unsigned)(Digest >> 56), digestHex(Digest).c_str(),
                      Ext);
}

bool ArtifactStore::has(const char *Kind, std::uint64_t Digest) const {
  return ::access(pathFor(Kind, Digest).c_str(), F_OK) == 0;
}

bool ArtifactStore::load(const char *Kind, std::uint64_t Digest,
                         std::string &Out, std::string *Err) {
  std::string Path = pathFor(Kind, Digest);
  if (::access(Path.c_str(), F_OK) != 0) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Stats.Misses;
    if (Err)
      Err->clear();
    return false;
  }
  if (!readFileToString(Path, Out, Err))
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.Hits;
  return true;
}

bool ArtifactStore::put(const char *Kind, std::uint64_t Digest,
                        const std::string &Bytes, std::string *Err) {
  std::string Path = pathFor(Kind, Digest);
  std::string Dir = Path.substr(0, Path.rfind('/'));
  if (!makeDirs(Dir, Err))
    return false;
  if (!writeFileAtomic(Path, Bytes, Err))
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  ++Stats.Puts;
  Stats.PutBytes += Bytes.size();
  return true;
}

StoreStats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stats;
}
