//===- serve/ArtifactStore.h - Content-addressed artifact store ------------==//
//
// The daemon's on-disk cache: every completed computation is persisted
// under the digest of its canonical request, so a repeated request is an
// O(1) file read returning byte-identical payload bytes — across requests,
// connections, and daemon restarts. Layout:
//
//   <root>/<kind>/<hh>/<digest16>.<ext>
//
// where <kind> is one of {sweep, metrics, analyze, replay, trace, failed},
// <hh> is the top byte of the digest in hex (a fan-out shard so no single
// directory grows unboundedly), <digest16> the full 16-hex-digit digest,
// and <ext> "jtrace" for recorded traces, "json" otherwise. Writes go
// through writeFileAtomic (temp + fsync + rename), so a crash mid-write
// never leaves a truncated artifact to be served later.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SERVE_ARTIFACTSTORE_H
#define JRPM_SERVE_ARTIFACTSTORE_H

#include <cstdint>
#include <mutex>
#include <string>

namespace jrpm {
namespace serve {

/// Artifact namespaces. Digests are only unique within a kind (the same
/// request digest keys both the "sweep" report and its "metrics" export).
namespace kind {
inline constexpr const char *Sweep = "sweep";
inline constexpr const char *Metrics = "metrics";
inline constexpr const char *Analyze = "analyze";
inline constexpr const char *Replay = "replay";
inline constexpr const char *Trace = "trace";
inline constexpr const char *Failed = "failed";
} // namespace kind

struct StoreStats {
  std::uint64_t Hits = 0;   ///< load() found the artifact
  std::uint64_t Misses = 0; ///< load() did not
  std::uint64_t Puts = 0;
  std::uint64_t PutBytes = 0;
};

class ArtifactStore {
public:
  ArtifactStore() = default;
  explicit ArtifactStore(std::string Root) : Root(std::move(Root)) {}

  const std::string &root() const { return Root; }

  /// Creates the root directory (and parents). Returns false with *Err on
  /// failure; artifact subdirectories are created lazily by put().
  bool ensureRoot(std::string *Err = nullptr);

  /// The artifact path for (\p Kind, \p Digest). Pure; the file may or may
  /// not exist.
  std::string pathFor(const char *Kind, std::uint64_t Digest) const;

  bool has(const char *Kind, std::uint64_t Digest) const;

  /// Reads the artifact into \p Out. A miss is not an error (returns false
  /// with *Err empty); only I/O problems set *Err.
  bool load(const char *Kind, std::uint64_t Digest, std::string &Out,
            std::string *Err = nullptr);

  /// Atomically persists \p Bytes. Creates the shard directory on demand.
  bool put(const char *Kind, std::uint64_t Digest, const std::string &Bytes,
           std::string *Err = nullptr);

  StoreStats stats() const;

private:
  std::string Root;
  mutable std::mutex Mu; ///< guards Stats only; the fs provides file atomicity
  StoreStats Stats;
};

} // namespace serve
} // namespace jrpm

#endif // JRPM_SERVE_ARTIFACTSTORE_H
