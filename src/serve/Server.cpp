//===- serve/Server.cpp ----------------------------------------------------==//

#include "serve/Server.h"

#include "exec/CodeImage.h"
#include "jrpm/Pipeline.h"
#include "support/AtomicFile.h"
#include "support/Format.h"
#include "sweep/SweepRunner.h"
#include "trace/Replay.h"
#include "workloads/Workload.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace jrpm;
using namespace jrpm::serve;

//===----------------------------------------------------------------------===//
// Request parsing & canonicalization
//===----------------------------------------------------------------------===//
//
// Every compute request is reduced to a *canonical* body before digesting:
// defaults are filled in explicitly, workload selections are expanded,
// config points are renamed to their canonical (knob-sorted) form. Two
// requests that mean the same computation therefore always produce the
// same digest — and hit the same artifact — however they were spelled.

namespace {

bool checkKeys(const Json &Req, std::initializer_list<const char *> Allowed,
               std::string &Err) {
  for (const auto &KV : Req.members()) {
    bool Known = false;
    for (const char *A : Allowed)
      Known |= KV.first == A;
    if (!Known) {
      Err = "unknown field \"" + KV.first + "\"";
      return false;
    }
  }
  return true;
}

/// Optional array-of-strings field; absent leaves \p Out empty.
bool getStringArray(const Json &Req, const char *Key,
                    std::vector<std::string> &Out, std::string &Err) {
  const Json *V = Req.find(Key);
  if (!V)
    return true;
  if (!V->isArray()) {
    Err = std::string("\"") + Key + "\" must be an array of strings";
    return false;
  }
  for (const Json &Item : V->items()) {
    if (!Item.isString()) {
      Err = std::string("\"") + Key + "\" must be an array of strings";
      return false;
    }
    Out.push_back(Item.str());
  }
  return true;
}

/// Optional string field; absent leaves \p Out unchanged.
bool getString(const Json &Req, const char *Key, std::string &Out,
               std::string &Err) {
  const Json *V = Req.find(Key);
  if (!V)
    return true;
  if (!V->isString()) {
    Err = std::string("\"") + Key + "\" must be a string";
    return false;
  }
  Out = V->str();
  return true;
}

/// Optional unsigned field; absent leaves \p Out unchanged.
bool getUint(const Json &Req, const char *Key, std::uint64_t &Out,
             std::string &Err) {
  const Json *V = Req.find(Key);
  if (!V)
    return true;
  if (!V->isNumber()) {
    Err = std::string("\"") + Key + "\" must be a number";
    return false;
  }
  Out = V->asUint();
  return true;
}

bool levelFromName(const std::string &Name, jit::AnnotationLevel &Out) {
  if (Name == "base") {
    Out = jit::AnnotationLevel::Base;
    return true;
  }
  if (Name == "optimized") {
    Out = jit::AnnotationLevel::Optimized;
    return true;
  }
  return false;
}

/// Parses and validates a config-point spec; returns the canonical name.
bool canonConfig(const std::string &Spec, sweep::ConfigPoint &CP,
                 std::string &Name, std::string &Err) {
  if (!sweep::parseConfigPoint(Spec, CP, &Err))
    return false;
  pipeline::PipelineConfig Scratch;
  if (!CP.apply(Scratch, &Err)) // catches unknown knobs up front
    return false;
  Name = CP.name();
  return true;
}

Json stringArrayJson(const std::vector<std::string> &V) {
  Json A = Json::array();
  for (const std::string &S : V)
    A.push(S);
  return A;
}

/// A parsed + canonicalized sweep request.
struct SweepRequest {
  sweep::SweepPlan Plan;
  Json Canon;
};

bool parseSweepRequest(const Json &Req, SweepRequest &Out, std::string &Err) {
  if (!checkKeys(Req,
                 {"kind", "workloads", "levels", "configs", "mode", "seed",
                  "timeout_ms"},
                 Err))
    return false;

  std::vector<std::string> Workloads, LevelNames, ConfigSpecs;
  if (!getStringArray(Req, "workloads", Workloads, Err) ||
      !getStringArray(Req, "levels", LevelNames, Err) ||
      !getStringArray(Req, "configs", ConfigSpecs, Err))
    return false;

  // Empty workload selection means the full registry; canonicalize by
  // expanding it, so {"workloads": []} and the explicit full list digest
  // identically.
  if (Workloads.empty())
    for (const workloads::Workload &W : workloads::allWorkloads())
      Workloads.push_back(W.Name);
  for (const std::string &W : Workloads)
    if (!workloads::findWorkload(W)) {
      Err = "unknown workload \"" + W + "\"";
      return false;
    }

  if (LevelNames.empty())
    LevelNames.push_back("optimized");
  std::vector<jit::AnnotationLevel> Levels;
  for (const std::string &L : LevelNames) {
    jit::AnnotationLevel Level;
    if (!levelFromName(L, Level)) {
      Err = "unknown level \"" + L + "\" (expected base or optimized)";
      return false;
    }
    Levels.push_back(Level);
  }

  if (ConfigSpecs.empty())
    ConfigSpecs.push_back("default");
  std::vector<sweep::ConfigPoint> Configs;
  std::vector<std::string> ConfigNames;
  for (const std::string &Spec : ConfigSpecs) {
    sweep::ConfigPoint CP;
    std::string Name;
    if (!canonConfig(Spec, CP, Name, Err))
      return false;
    Configs.push_back(std::move(CP));
    ConfigNames.push_back(std::move(Name));
  }

  std::string Mode = "pipeline";
  std::uint64_t Seed = 0, TimeoutMs = 0;
  if (!getString(Req, "mode", Mode, Err) ||
      !getUint(Req, "seed", Seed, Err) ||
      !getUint(Req, "timeout_ms", TimeoutMs, Err))
    return false;
  if (Mode != "pipeline" && Mode != "conformance") {
    Err = "unknown mode \"" + Mode + "\"";
    return false;
  }

  Out.Plan.Workloads = Workloads;
  Out.Plan.Levels = Levels;
  Out.Plan.Configs = Configs;
  Out.Plan.Mode = Mode == "pipeline" ? sweep::JobMode::Pipeline
                                     : sweep::JobMode::Conformance;
  Out.Plan.TimeoutMs = static_cast<std::uint32_t>(TimeoutMs);
  Out.Plan.Seed = Seed;

  Out.Canon = Json::object();
  Out.Canon["kind"] = "sweep";
  Out.Canon["workloads"] = stringArrayJson(Workloads);
  Out.Canon["levels"] = stringArrayJson(LevelNames);
  Out.Canon["configs"] = stringArrayJson(ConfigNames);
  Out.Canon["mode"] = Mode;
  Out.Canon["seed"] = Seed;
  Out.Canon["timeout_ms"] = TimeoutMs;
  return true;
}

/// A parsed + canonicalized analyze/replay request (one workload x level x
/// config point).
struct PointRequest {
  std::string Workload;
  std::string LevelName = "optimized";
  jit::AnnotationLevel Level = jit::AnnotationLevel::Optimized;
  sweep::ConfigPoint Config;
  std::string ConfigName;
  std::uint64_t TimeoutMs = 0;
  Json Canon;
};

bool parsePointRequest(const Json &Req, const char *Kind, bool AllowTimeout,
                       PointRequest &Out, std::string &Err) {
  if (AllowTimeout) {
    if (!checkKeys(Req, {"kind", "workload", "level", "config", "timeout_ms"},
                   Err))
      return false;
  } else if (!checkKeys(Req, {"kind", "workload", "level", "config"}, Err)) {
    return false;
  }

  if (!getString(Req, "workload", Out.Workload, Err))
    return false;
  if (Out.Workload.empty()) {
    Err = "missing \"workload\"";
    return false;
  }
  if (!workloads::findWorkload(Out.Workload)) {
    Err = "unknown workload \"" + Out.Workload + "\"";
    return false;
  }

  if (!getString(Req, "level", Out.LevelName, Err))
    return false;
  if (!levelFromName(Out.LevelName, Out.Level)) {
    Err = "unknown level \"" + Out.LevelName +
          "\" (expected base or optimized)";
    return false;
  }

  std::string Spec = "default";
  if (!getString(Req, "config", Spec, Err))
    return false;
  if (!canonConfig(Spec, Out.Config, Out.ConfigName, Err))
    return false;

  if (AllowTimeout && !getUint(Req, "timeout_ms", Out.TimeoutMs, Err))
    return false;

  Out.Canon = Json::object();
  Out.Canon["kind"] = Kind;
  Out.Canon["workload"] = Out.Workload;
  Out.Canon["level"] = Out.LevelName;
  Out.Canon["config"] = Out.ConfigName;
  if (AllowTimeout)
    Out.Canon["timeout_ms"] = Out.TimeoutMs;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(ServerConfig Config)
    : Cfg(std::move(Config)), Store(Cfg.StoreDir), Pool(Cfg.Threads) {}

Server::~Server() { drain(); }

bool Server::start(std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    if (WakeR >= 0) {
      ::close(WakeR);
      ::close(WakeW);
      WakeR = WakeW = -1;
    }
    return false;
  };

  if (!Store.ensureRoot(Err))
    return false;

  int P[2];
  if (::pipe(P) != 0)
    return Fail(std::string("pipe: ") + std::strerror(errno));
  WakeR = P[0];
  WakeW = P[1];

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Fail(std::string("socket: ") + std::strerror(errno));

  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Cfg.SocketPath.empty() ||
      Cfg.SocketPath.size() >= sizeof(Addr.sun_path))
    return Fail("bad socket path \"" + Cfg.SocketPath + "\"");
  std::strncpy(Addr.sun_path, Cfg.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  ::unlink(Cfg.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<struct sockaddr *>(&Addr),
             sizeof(Addr)) != 0)
    return Fail("bind " + Cfg.SocketPath + ": " + std::strerror(errno));
  if (::listen(ListenFd, 64) != 0)
    return Fail(std::string("listen: ") + std::strerror(errno));

  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::requestStop() {
  Stopping.store(true, std::memory_order_release);
  if (WakeW >= 0) {
    char C = 'x';
    ssize_t N = ::write(WakeW, &C, 1);
    (void)N;
  }
}

void Server::waitForStop() {
  if (AcceptThread.joinable())
    AcceptThread.join();
}

void Server::drain() {
  if (Drained.exchange(true))
    return;
  requestStop();
  waitForStop();

  std::lock_guard<std::mutex> Lock(ConnM);
  // Wake idle connections: SHUT_RD turns their blocking read into EOF. A
  // connection mid-compute finishes, writes its response (the write half
  // stays open), then sees EOF and exits.
  for (std::unique_ptr<Conn> &C : Conns)
    if (C->Fd >= 0)
      ::shutdown(C->Fd, SHUT_RD);
  for (std::unique_ptr<Conn> &C : Conns) {
    if (C->T.joinable())
      C->T.join();
    if (C->Fd >= 0)
      ::close(C->Fd);
  }
  Conns.clear();

  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (!Cfg.SocketPath.empty())
    ::unlink(Cfg.SocketPath.c_str());
  if (WakeR >= 0) {
    ::close(WakeR);
    WakeR = -1;
  }
  if (WakeW >= 0) {
    ::close(WakeW);
    WakeW = -1;
  }
}

//===----------------------------------------------------------------------===//
// Accept loop & connections
//===----------------------------------------------------------------------===//

void Server::acceptLoop() {
  for (;;) {
    struct pollfd P[2];
    P[0].fd = ListenFd;
    P[0].events = POLLIN;
    P[0].revents = 0;
    P[1].fd = WakeR;
    P[1].events = POLLIN;
    P[1].revents = 0;
    if (::poll(P, 2, -1) < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (stopRequested() || P[1].revents != 0)
      break;
    if ((P[0].revents & POLLIN) == 0)
      continue;

    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      if (stopRequested())
        break;
      continue;
    }

    auto C = std::make_unique<Conn>();
    C->Fd = Fd;
    Conn *CP = C.get();
    {
      std::lock_guard<std::mutex> Lock(ConnM);
      reapFinishedLocked();
      Conns.push_back(std::move(C));
    }
    CP->T = std::thread([this, CP] { handleConnection(*CP); });
  }
}

void Server::reapFinishedLocked() {
  for (auto It = Conns.begin(); It != Conns.end();) {
    Conn &C = **It;
    if (C.Done.load(std::memory_order_acquire) && C.T.joinable()) {
      C.T.join();
      if (C.Fd >= 0)
        ::close(C.Fd);
      It = Conns.erase(It);
    } else {
      ++It;
    }
  }
}

void Server::handleConnection(Conn &C) {
  for (;;) {
    std::string Frame;
    FrameRead R = readFrame(C.Fd, Frame, Cfg.FrameLimit);
    if (R == FrameRead::Eof)
      break;
    if (R != FrameRead::Ok) {
      // Framing is lost; answer with a typed error and drop the
      // connection. The daemon itself shrugs this off.
      count("serve.protocol_errors");
      ErrCode Code = R == FrameRead::Oversize ? ErrCode::Oversize
                                              : ErrCode::MalformedFrame;
      writeResponse(C.Fd, Response::error(
                              Code, R == FrameRead::Oversize
                                        ? "frame exceeds size limit"
                                        : "malformed frame"));
      break;
    }
    Response Resp = handle(Frame);
    if (!writeResponse(C.Fd, Resp))
      break;
  }
  // The accept loop (or drain) owns the fd and the join; only flag here.
  C.Done.store(true, std::memory_order_release);
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

void Server::count(const char *Name, std::uint64_t N) {
  std::lock_guard<std::mutex> Lock(RegM);
  Reg.counter(Name).inc(N);
}

void Server::foldRequestMetrics(const metrics::Registry &R) {
  std::lock_guard<std::mutex> Lock(RegM);
  Reg.mergePrefixed(R, "serve.");
}

Response Server::handle(const std::string &FrameBytes) {
  count("serve.requests");
  Response Resp = [&] {
    Json Req;
    std::string Err;
    if (!Json::parse(FrameBytes, Req, &Err))
      return Response::error(ErrCode::BadJson, Err);
    if (!Req.isObject())
      return Response::error(ErrCode::BadRequest,
                             "request must be a JSON object");
    const Json *Kind = Req.find("kind");
    if (!Kind || !Kind->isString())
      return Response::error(ErrCode::BadRequest,
                             "missing string field \"kind\"");
    const std::string &K = Kind->str();

    // Monitoring kinds stay available while draining.
    if (K == "ping") {
      Json D = Json::object();
      D["pong"] = true;
      D["threads"] = static_cast<std::uint64_t>(Pool.threadCount());
      return Response::ok("-", "none", D.dump());
    }
    if (K == "stats")
      return handleStats();

    if (stopRequested())
      return Response::error(ErrCode::Draining, "daemon is shutting down");

    if (K == "sweep")
      return handleSweep(Req);
    if (K == "analyze")
      return handleAnalyze(Req);
    if (K == "replay")
      return handleReplay(Req);
    return Response::error(ErrCode::UnknownKind,
                           "unknown kind \"" + K + "\"");
  }();

  count(Resp.Ok ? "serve.requests_ok" : "serve.requests_error");
  {
    std::lock_guard<std::mutex> Lock(RegM);
    Reg.histogram("serve.payload_bytes").record(Resp.Payload.size());
  }
  return Resp;
}

Response Server::handleStats() {
  return Response::ok("-", "none", statsJson().dump());
}

Response Server::computeGated(const char *Kind, std::uint64_t Digest,
                              const std::function<std::string()> &Compute) {
  return computeGatedImpl(Kind, Digest, Compute, /*Admit=*/true);
}

Response Server::computeGatedImpl(const char *Kind, std::uint64_t Digest,
                                  const std::function<std::string()> &Compute,
                                  bool Admit) {
  std::string Hex = digestHex(Digest);

  // Fast path: a persisted artifact is served as-is — byte-identical to
  // the computation that produced it.
  std::string Bytes;
  std::string Err;
  if (Store.load(Kind, Digest, Bytes, &Err)) {
    count("serve.cache_hits");
    Response R = Response::ok(Hex, "hit", std::move(Bytes));
    return R;
  }
  if (!Err.empty()) {
    count("serve.store_errors");
    return Response::error(ErrCode::Internal, Err);
  }

  std::shared_ptr<Inflight> F;
  bool Leader = false;
  unsigned ActiveNow = 0;
  {
    std::lock_guard<std::mutex> Lock(FlightM);
    auto It = Flights.find(Digest);
    if (It != Flights.end()) {
      F = It->second;
    } else if (Admit && Active >= Cfg.MaxActive) {
      count("serve.rejected_saturated");
      return Response::error(
          ErrCode::Saturated,
          formatString("%u compute requests already admitted",
                       Cfg.MaxActive));
    } else {
      F = std::make_shared<Inflight>();
      Flights.emplace(Digest, F);
      ActiveNow = Admit ? ++Active : Active;
      Leader = true;
    }
  }

  if (!Leader) {
    // Single-flight join: wait for the leader, return the same bytes.
    count("serve.dedup_joined");
    std::unique_lock<std::mutex> L(F->M);
    F->Cv.wait(L, [&] { return F->DoneFlag; });
    Response R = F->R;
    R.Cache = "join";
    return R;
  }

  {
    std::lock_guard<std::mutex> Lock(RegM);
    Reg.gauge("serve.active_peak").peak(ActiveNow);
  }
  count("serve.computed");

  Response R;
  try {
    std::string Payload = Compute();
    std::string PutErr;
    // A failed persist still serves the freshly computed bytes; the next
    // identical request just recomputes.
    if (!Store.put(Kind, Digest, Payload, &PutErr))
      count("serve.store_errors");
    R = Response::ok(Hex, "miss", std::move(Payload));
  } catch (const std::exception &E) {
    // Persist the failure for post-mortem inspection, then report it.
    Json Fail = Json::object();
    Fail["digest"] = Hex;
    Fail["error"] = std::string(E.what());
    Fail["kind"] = Kind;
    std::string PutErr;
    Store.put(kind::Failed, Digest, Fail.dump(), &PutErr);
    count("serve.compute_failures");
    R = Response::error(ErrCode::Internal, E.what());
    R.Digest = Hex;
    R.Cache = "miss";
  }

  // Persist-then-publish: the artifact hits the store before the flight
  // slot is retired, so a request arriving in between either joins the
  // flight or takes the fast path — never recomputes.
  {
    std::lock_guard<std::mutex> Lock(FlightM);
    Flights.erase(Digest);
    if (Admit)
      --Active;
  }
  {
    std::lock_guard<std::mutex> L(F->M);
    F->R = R;
    F->DoneFlag = true;
  }
  F->Cv.notify_all();
  return R;
}

Response Server::handleSweep(const Json &Req) {
  SweepRequest S;
  std::string Err;
  if (!parseSweepRequest(Req, S, Err))
    return Response::error(ErrCode::BadRequest, Err);
  std::vector<sweep::SweepJob> Jobs;
  if (!S.Plan.expand(Jobs, &Err))
    return Response::error(ErrCode::BadRequest, Err);

  std::uint64_t Digest = fnv1a(S.Canon.dump());
  return computeGated(kind::Sweep, Digest, [&]() -> std::string {
    sweep::SweepReport Rep = sweep::runSweepOn(Pool, Jobs);
    Rep.Seed = S.Plan.Seed;
    metrics::Registry Merged = sweep::mergedMetrics(Rep);
    foldRequestMetrics(Merged);
    std::string PutErr;
    if (!Store.put(kind::Metrics, Digest, Merged.toJson().dump(), &PutErr))
      count("serve.store_errors");
    return sweep::reportToJson(Rep, false).dump();
  });
}

Response Server::handleAnalyze(const Json &Req) {
  PointRequest P;
  std::string Err;
  if (!parsePointRequest(Req, "analyze", /*AllowTimeout=*/true, P, Err))
    return Response::error(ErrCode::BadRequest, Err);

  std::uint64_t Digest = fnv1a(P.Canon.dump());
  return computeGated(kind::Analyze, Digest, [&]() -> std::string {
    sweep::SweepJob Job;
    Job.Index = 0;
    Job.Workload = P.Workload;
    Job.Level = P.Level;
    Job.ConfigName = P.ConfigName;
    Job.Cfg.Level = P.Level;
    std::string ApplyErr;
    if (!P.Config.apply(Job.Cfg, &ApplyErr)) // validated; belt and braces
      throw std::runtime_error(ApplyErr);
    Job.Mode = sweep::JobMode::Pipeline;
    Job.TimeoutMs = static_cast<std::uint32_t>(P.TimeoutMs);

    sweep::SweepReport Rep = sweep::runSweepOn(Pool, {Job});
    const sweep::SweepResult &R = Rep.Results.at(0);
    foldRequestMetrics(R.Metrics);
    if (R.Status == sweep::JobStatus::Failed)
      throw std::runtime_error(R.Error.empty() ? "job failed" : R.Error);

    Json D = Json::object();
    D["schema"] = "jrpm-serve-analyze-v1";
    D["workload"] = R.Workload;
    D["level"] = P.LevelName;
    D["config"] = R.ConfigName;
    D["status"] = sweep::jobStatusName(R.Status);
    Json Cycles = Json::object();
    Cycles["plain"] = R.PlainCycles;
    Cycles["profiled"] = R.ProfiledCycles;
    Cycles["tls"] = R.TlsCycles;
    D["cycles"] = Cycles;
    D["checksum"] = R.Checksum;
    D["loops"] = R.Loops;
    D["selected_loops"] = R.SelectedLoops;
    D["predicted_speedup"] = R.PredictedSpeedup;
    D["actual_speedup"] = R.ActualSpeedup;
    D["profiling_slowdown"] = R.ProfilingSlowdown;
    D["selection_digest"] = digestHex(R.SelectionDigest);
    return D.dump();
  });
}

std::uint64_t Server::ensureTrace(const std::string &Workload,
                                  const std::string &LevelName) {
  Json Canon = Json::object();
  Canon["kind"] = "trace";
  Canon["workload"] = Workload;
  Canon["level"] = LevelName;
  std::uint64_t TraceDigest = fnv1a(Canon.dump());
  if (Store.has(kind::Trace, TraceDigest))
    return TraceDigest;

  jit::AnnotationLevel Level;
  levelFromName(LevelName, Level); // caller validated

  // Record through the single-flight machinery (without taking a second
  // admission slot — the replay request already holds one), so concurrent
  // replays of the same capture record it once.
  auto Record = [&]() -> std::string {
    const workloads::Workload *W = workloads::findWorkload(Workload);
    if (!W)
      throw std::runtime_error("unknown workload \"" + Workload + "\"");
    std::string Tmp = Store.root() + "/.rec-" + digestHex(TraceDigest) +
                      "-" + std::to_string(static_cast<long>(getpid())) +
                      ".jtrace";
    pipeline::PipelineConfig PC;
    PC.Level = Level;
    PC.RecordTracePath = Tmp;
    PC.WorkloadName = Workload;
    pipeline::Jrpm J(W->Build(), PC);
    J.profileAndSelect();
    std::string Bytes, ReadErr;
    if (!readFileToString(Tmp, Bytes, &ReadErr))
      throw std::runtime_error("recorded trace unreadable: " + ReadErr);
    std::remove(Tmp.c_str());
    return Bytes;
  };
  Response R =
      computeGatedImpl(kind::Trace, TraceDigest, Record, /*Admit=*/false);
  if (!R.Ok)
    throw std::runtime_error("trace capture failed: " + R.Message);
  return TraceDigest;
}

Response Server::handleReplay(const Json &Req) {
  PointRequest P;
  std::string Err;
  if (!parsePointRequest(Req, "replay", /*AllowTimeout=*/false, P, Err))
    return Response::error(ErrCode::BadRequest, Err);

  std::uint64_t Digest = fnv1a(P.Canon.dump());
  return computeGated(kind::Replay, Digest, [&]() -> std::string {
    std::uint64_t TraceDigest = ensureTrace(P.Workload, P.LevelName);
    std::shared_ptr<const trace::CachedTrace> T = trace::getSharedTrace(
        Store.pathFor(kind::Trace, TraceDigest), TraceDigest);

    // The request's config point contributes its tracer-side knobs; the
    // capture itself is addressed by (workload, level) alone, so any
    // number of replay configurations share one recorded trace.
    pipeline::PipelineConfig PC;
    std::string ApplyErr;
    if (!P.Config.apply(PC, &ApplyErr))
      throw std::runtime_error(ApplyErr);
    metrics::Registry ReqReg;
    trace::ReplayConfig RC;
    RC.Hw = PC.Hw;
    RC.ExtendedPcBinning = PC.ExtendedPcBinning;
    RC.DisableLoopAfterThreads = PC.DisableLoopAfterThreads;
    RC.Metrics = &ReqReg;

    trace::ReplayOutcome Out = trace::selectFromTrace(*T, RC);
    foldRequestMetrics(ReqReg);

    Json D = Json::object();
    D["schema"] = "jrpm-serve-replay-v1";
    D["workload"] = P.Workload;
    D["level"] = P.LevelName;
    D["config"] = P.ConfigName;
    D["events_replayed"] = Out.EventsReplayed;
    D["loops"] = static_cast<std::uint64_t>(Out.Selection.Loops.size());
    D["selected_loops"] =
        static_cast<std::uint64_t>(Out.Selection.SelectedLoops.size());
    D["predicted_speedup"] = Out.Selection.PredictedSpeedup;
    D["selection_digest"] = digestHex(tracer::selectionDigest(Out.Selection));
    Json Capture = Json::object();
    Capture["cycles"] = Out.Run.Cycles;
    Capture["checksum"] = Out.Run.ReturnValue;
    Capture["trace_digest"] = digestHex(TraceDigest);
    D["capture"] = Capture;
    return D.dump();
  });
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

Json Server::statsJson() {
  metrics::Registry Snap;
  {
    std::lock_guard<std::mutex> Lock(RegM);
    Snap = Reg;
  }

  StoreStats SS = Store.stats();
  Snap.gauge("serve.store.hits").set(SS.Hits);
  Snap.gauge("serve.store.misses").set(SS.Misses);
  Snap.gauge("serve.store.puts").set(SS.Puts);
  Snap.gauge("serve.store.put_bytes").set(SS.PutBytes);

  unsigned ActiveNow = 0;
  std::uint64_t Keys = 0;
  {
    std::lock_guard<std::mutex> Lock(FlightM);
    ActiveNow = Active;
    Keys = Flights.size();
  }
  Snap.gauge("serve.active").set(ActiveNow);
  Snap.gauge("serve.inflight_keys").set(Keys);
  Snap.gauge("serve.max_active").set(Cfg.MaxActive);
  Snap.gauge("serve.pool_threads").set(Pool.threadCount());

  exec::exportImageCacheMetrics(Snap);

  trace::TraceCacheStats TS = trace::traceCacheStats();
  Snap.gauge("trace.trace_cache.hits").set(TS.Hits);
  Snap.gauge("trace.trace_cache.misses").set(TS.Misses);
  Snap.gauge("trace.trace_cache.evictions").set(TS.Evictions);
  Snap.gauge("trace.trace_cache.entries").set(TS.Entries);
  Snap.gauge("trace.trace_cache.capacity").set(TS.Capacity);

  return Snap.toJson();
}
