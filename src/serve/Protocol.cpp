//===- serve/Protocol.cpp --------------------------------------------------==//

#include "serve/Protocol.h"

#include "support/Format.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

using namespace jrpm;
using namespace jrpm::serve;

const char *serve::errCodeName(ErrCode C) {
  switch (C) {
  case ErrCode::MalformedFrame:
    return "malformed_frame";
  case ErrCode::Oversize:
    return "oversize";
  case ErrCode::BadJson:
    return "bad_json";
  case ErrCode::BadRequest:
    return "bad_request";
  case ErrCode::UnknownKind:
    return "unknown_kind";
  case ErrCode::Saturated:
    return "saturated";
  case ErrCode::Draining:
    return "draining";
  case ErrCode::Internal:
    return "internal";
  }
  return "unknown";
}

Response Response::ok(std::string Digest, std::string Cache,
                      std::string Payload) {
  Response R;
  R.Ok = true;
  R.Digest = std::move(Digest);
  R.Cache = std::move(Cache);
  R.Payload = std::move(Payload);
  return R;
}

Response Response::error(ErrCode Code, std::string Message) {
  Response R;
  R.Ok = false;
  R.Code = errCodeName(Code);
  R.Message = std::move(Message);
  // Assign as char: GCC 12 raises a spurious -Wrestrict on the literal.
  R.Digest = '-';
  R.Cache = "none";
  return R;
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

std::string serve::encodeFrame(const std::string &Payload) {
  std::uint32_t N = static_cast<std::uint32_t>(Payload.size());
  std::string Out;
  Out.reserve(4 + Payload.size());
  Out.push_back(static_cast<char>(N & 0xff));
  Out.push_back(static_cast<char>((N >> 8) & 0xff));
  Out.push_back(static_cast<char>((N >> 16) & 0xff));
  Out.push_back(static_cast<char>((N >> 24) & 0xff));
  Out += Payload;
  return Out;
}

FrameStatus serve::decodeFrame(const std::uint8_t *Data, std::size_t Size,
                               std::size_t &Consumed, std::string &Payload,
                               std::uint32_t MaxBytes) {
  Consumed = 0;
  if (Size < 4)
    return FrameStatus::NeedMore;
  std::uint32_t N = static_cast<std::uint32_t>(Data[0]) |
                    (static_cast<std::uint32_t>(Data[1]) << 8) |
                    (static_cast<std::uint32_t>(Data[2]) << 16) |
                    (static_cast<std::uint32_t>(Data[3]) << 24);
  if (N == 0)
    return FrameStatus::Malformed;
  if (N > MaxBytes)
    return FrameStatus::Oversize;
  if (Size - 4 < N)
    return FrameStatus::NeedMore;
  Payload.assign(reinterpret_cast<const char *>(Data + 4), N);
  Consumed = 4 + static_cast<std::size_t>(N);
  return FrameStatus::Ok;
}

namespace {

/// Reads exactly \p Size bytes. Returns Size on success, 0 on clean EOF
/// before the first byte, and -1 on error or mid-read EOF.
long readExact(int Fd, void *Data, std::size_t Size) {
  std::size_t Got = 0;
  char *P = static_cast<char *>(Data);
  while (Got < Size) {
    ssize_t N = ::read(Fd, P + Got, Size - Got);
    if (N == 0)
      return Got == 0 ? 0 : -1;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    Got += static_cast<std::size_t>(N);
  }
  return static_cast<long>(Got);
}

} // namespace

FrameRead serve::readFrame(int Fd, std::string &Payload,
                           std::uint32_t MaxBytes) {
  std::uint8_t Len[4];
  long R = readExact(Fd, Len, 4);
  if (R == 0)
    return FrameRead::Eof;
  if (R < 0)
    return FrameRead::Malformed;
  std::uint32_t N = static_cast<std::uint32_t>(Len[0]) |
                    (static_cast<std::uint32_t>(Len[1]) << 8) |
                    (static_cast<std::uint32_t>(Len[2]) << 16) |
                    (static_cast<std::uint32_t>(Len[3]) << 24);
  if (N == 0)
    return FrameRead::Malformed;
  if (N > MaxBytes)
    return FrameRead::Oversize;
  Payload.resize(N);
  if (readExact(Fd, Payload.data(), N) != static_cast<long>(N))
    return FrameRead::Malformed;
  return FrameRead::Ok;
}

bool serve::writeAll(int Fd, const void *Data, std::size_t Size) {
  const char *P = static_cast<const char *>(Data);
  std::size_t Sent = 0;
  while (Sent < Size) {
    ssize_t N = ::write(Fd, P + Sent, Size - Sent);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Sent += static_cast<std::size_t>(N);
  }
  return true;
}

bool serve::writeFrame(int Fd, const std::string &Payload) {
  std::string F = encodeFrame(Payload);
  return writeAll(Fd, F.data(), F.size());
}

//===----------------------------------------------------------------------===//
// Responses
//===----------------------------------------------------------------------===//

Json serve::responseHeader(const Response &R) {
  Json H = Json::object();
  H["status"] = R.Ok ? "ok" : "error";
  H["code"] = R.Code;
  H["message"] = R.Message;
  H["digest"] = R.Digest;
  H["cache"] = R.Cache;
  H["payload_bytes"] = static_cast<std::uint64_t>(R.Payload.size());
  return H;
}

bool serve::writeResponse(int Fd, const Response &R) {
  if (!writeFrame(Fd, responseHeader(R).dump()))
    return false;
  if (R.Payload.empty())
    return true;
  return writeAll(Fd, R.Payload.data(), R.Payload.size());
}

bool serve::readResponse(int Fd, Response &Out, std::string *Err,
                         std::uint32_t MaxBytes) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  std::string HeaderBytes;
  switch (readFrame(Fd, HeaderBytes, MaxBytes)) {
  case FrameRead::Ok:
    break;
  case FrameRead::Eof:
    return Fail("connection closed before response");
  case FrameRead::Oversize:
    return Fail("oversize response header");
  default:
    return Fail("malformed response frame");
  }
  Json H;
  std::string JsonErr;
  if (!Json::parse(HeaderBytes, H, &JsonErr))
    return Fail("bad response header: " + JsonErr);
  const Json *Status = H.find("status");
  if (!Status || !Status->isString())
    return Fail("response header missing status");
  Out.Ok = Status->str() == "ok";
  auto Str = [&](const char *Key) {
    const Json *V = H.find(Key);
    return V && V->isString() ? V->str() : std::string();
  };
  Out.Code = Str("code");
  Out.Message = Str("message");
  Out.Digest = Str("digest");
  Out.Cache = Str("cache");
  const Json *Bytes = H.find("payload_bytes");
  std::uint64_t N = Bytes ? Bytes->asUint() : 0;
  if (N > MaxBytes)
    return Fail("oversize response payload");
  Out.Payload.resize(static_cast<std::size_t>(N));
  if (N && readExact(Fd, Out.Payload.data(),
                     static_cast<std::size_t>(N)) != static_cast<long>(N))
    return Fail("truncated response payload");
  return true;
}

//===----------------------------------------------------------------------===//
// Digests
//===----------------------------------------------------------------------===//

std::uint64_t serve::fnv1a(const std::string &Bytes) {
  std::uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string serve::digestHex(std::uint64_t Digest) {
  return formatString("%016llx", (unsigned long long)Digest);
}
