//===- serve/Client.h - jrpm-serve client connection -----------------------==//
//
// A thin synchronous client for the daemon's protocol: connect to the
// Unix-domain socket, send one JSON request per call, read back the header
// frame and raw payload bytes. One connection can carry any number of
// sequential requests. Used by the `jrpm-serve submit/status/stats`
// subcommands and by the stress tests.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_SERVE_CLIENT_H
#define JRPM_SERVE_CLIENT_H

#include "serve/Protocol.h"

#include <string>

namespace jrpm {
namespace serve {

class Client {
public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon at \p SocketPath. False with *Err on failure.
  bool connect(const std::string &SocketPath, std::string *Err = nullptr);

  bool connected() const { return Fd >= 0; }

  /// Sends \p Request and reads the full response. False with *Err only on
  /// transport problems; a daemon-side error (typed code) is a successful
  /// round trip with Out.Ok == false.
  bool request(const Json &Request, Response &Out, std::string *Err = nullptr);

  /// request() with pre-serialized bytes — the fuzz and protocol tests use
  /// this to send frames no Json value could produce.
  bool requestRaw(const std::string &FrameBytes, Response &Out,
                  std::string *Err = nullptr);

  void close();

private:
  int Fd = -1;
};

} // namespace serve
} // namespace jrpm

#endif // JRPM_SERVE_CLIENT_H
