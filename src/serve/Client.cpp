//===- serve/Client.cpp ----------------------------------------------------==//

#include "serve/Client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace jrpm;
using namespace jrpm::serve;

bool Client::connect(const std::string &SocketPath, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    close();
    return false;
  };
  close();
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail(std::string("socket: ") + std::strerror(errno));
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path))
    return Fail("bad socket path \"" + SocketPath + "\"");
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) != 0)
    return Fail("connect " + SocketPath + ": " + std::strerror(errno));
  return true;
}

bool Client::request(const Json &Request, Response &Out, std::string *Err) {
  return requestRaw(Request.dump(), Out, Err);
}

bool Client::requestRaw(const std::string &FrameBytes, Response &Out,
                        std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  if (!writeFrame(Fd, FrameBytes)) {
    if (Err)
      *Err = std::string("send: ") + std::strerror(errno);
    return false;
  }
  return readResponse(Fd, Out, Err);
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}
