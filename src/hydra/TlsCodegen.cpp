//===- hydra/TlsCodegen.cpp -----------------------------------------------==//

#include "hydra/TlsCodegen.h"

#include "analysis/RegUse.h"

#include <cassert>
#include <map>
#include <set>

using namespace jrpm;
using namespace jrpm::hydra;

ir::Function hydra::globalizeLoopBody(
    const ir::Function &F, const jit::TlsLoopPlan &Plan,
    const std::vector<std::uint32_t> &SpillAddrs) {
  assert(SpillAddrs.size() == Plan.CarriedLocals.size() &&
         "one spill slot per carried local");
  std::map<std::uint16_t, std::uint32_t> Spill;
  for (std::size_t K = 0; K < Plan.CarriedLocals.size(); ++K)
    Spill[Plan.CarriedLocals[K]] = SpillAddrs[K];

  ir::Function Out = F;
  for (std::uint32_t B : Plan.Blocks) {
    std::vector<ir::Instruction> NewInstrs;
    std::set<std::uint16_t> LiveInRegs; // carried locals already loaded
    for (const ir::Instruction &I : Out.Blocks[B].Instructions) {
      // Load each carried local before its first use in the block.
      analysis::forEachUsedReg(I, [&](std::uint16_t R) {
        auto It = Spill.find(R);
        if (It == Spill.end() || LiveInRegs.count(R))
          return;
        LiveInRegs.insert(R);
        ir::Instruction Ld;
        Ld.Op = ir::Opcode::Load;
        Ld.Dst = R;
        Ld.Imm = It->second;
        NewInstrs.push_back(Ld);
      });
      NewInstrs.push_back(I);
      // Store each carried local right after it is defined so consuming
      // threads see the value as early as possible.
      std::uint16_t D = analysis::definedReg(I);
      auto It = D != ir::NoReg ? Spill.find(D) : Spill.end();
      if (It != Spill.end()) {
        LiveInRegs.insert(D); // the register now holds the current value
        ir::Instruction St;
        St.Op = ir::Opcode::Store;
        St.Dst = D;
        St.Imm = It->second;
        NewInstrs.push_back(St);
      }
    }
    Out.Blocks[B].Instructions = std::move(NewInstrs);
  }
  Out.Name += "$tls" + std::to_string(Plan.LoopId);
  return Out;
}
