//===- hydra/TlsCodegen.h - Globalizing carried locals ---------------------==//
//
// The speculative recompilation step (Section 3.2): "inter-thread local
// variable dependencies are globalized". The loop body is rewritten so that
// every carried non-inductor scalar is communicated through a heap spill
// slot — loaded before its first use in each block, stored after every
// definition — which lets the TLS hardware's dependency detection and
// forwarding apply to local variables exactly as it does to heap data.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_HYDRA_TLSCODEGEN_H
#define JRPM_HYDRA_TLSCODEGEN_H

#include "ir/IR.h"
#include "jit/TlsPlan.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace hydra {

/// Returns a copy of \p F with the blocks of \p Plan's loop globalized.
/// \p SpillAddrs holds one heap word address per Plan.CarriedLocals entry.
/// Block indices and register numbering are preserved.
ir::Function globalizeLoopBody(const ir::Function &F,
                               const jit::TlsLoopPlan &Plan,
                               const std::vector<std::uint32_t> &SpillAddrs);

} // namespace hydra
} // namespace jrpm

#endif // JRPM_HYDRA_TLSCODEGEN_H
