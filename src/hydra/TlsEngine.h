//===- hydra/TlsEngine.h - Speculative execution of selected STLs ----------==//
//
// Cycle-level model of Hydra's four-core thread-level speculation. When
// sequential execution reaches the header of a selected STL, the engine
// takes over: loop iterations are assigned to cores in sequential order,
// stores are buffered per thread (Table 1 limits), loads forward from the
// nearest earlier uncommitted thread, a store by an earlier thread to data
// a later thread already read violates and restarts the later thread (and
// everything more speculative), buffer overflows stall a thread until it
// becomes the head, and the head thread committing the loop-exit path ends
// the STL. Fixed overheads follow Table 2.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_HYDRA_TLSENGINE_H
#define JRPM_HYDRA_TLSENGINE_H

#include "exec/CodeImage.h"
#include "interp/ExecContext.h"
#include "interp/Machine.h"
#include "jit/TlsPlan.h"
#include "metrics/Metrics.h"
#include "metrics/Timeline.h"
#include "sim/CacheModel.h"
#include "sim/Config.h"

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace jrpm {
namespace hydra {

/// Per-loop speculative execution statistics.
///
/// Thread identity: every spawned thread lifetime resolves exactly once, so
///   ThreadsStarted == CommittedThreads + Restarts + ThreadsDiscarded
///                     + ThreadsExited.
///
/// Cycle identity: the six *Cycles buckets partition every core-cycle the
/// loop occupied, so
///   UsefulCycles + ForkCommitCycles + ViolationDiscardCycles
///     + BufferStallCycles + SyncStallCycles + IdleCycles
///   == NumCores * SpecCycles.
struct TlsLoopRunStats {
  std::uint64_t Invocations = 0;
  std::uint64_t CommittedThreads = 0;
  std::uint64_t Violations = 0;
  std::uint64_t Restarts = 0;
  std::uint64_t OverflowStalls = 0;
  std::uint64_t SyncStalls = 0;
  std::uint64_t SpecCycles = 0;
  std::uint64_t ThreadsStarted = 0;
  /// Threads whose loop-exit path was adopted by the sequential context.
  std::uint64_t ThreadsExited = 0;
  /// Live threads thrown away when another thread's exit ended the loop.
  std::uint64_t ThreadsDiscarded = 0;
  // Table-2 style overhead buckets, in core-cycles.
  std::uint64_t UsefulCycles = 0;
  std::uint64_t ForkCommitCycles = 0;
  std::uint64_t ViolationDiscardCycles = 0;
  std::uint64_t BufferStallCycles = 0;
  std::uint64_t SyncStallCycles = 0;
  std::uint64_t IdleCycles = 0;
};

class TlsEngine : public interp::LoopDispatcher {
public:
  /// \p M is the plain (unannotated) module the sequential machine runs;
  /// \p Plans describe the selected STLs.
  TlsEngine(const ir::Module &M, const sim::HydraConfig &Cfg,
            std::vector<jit::TlsLoopPlan> Plans);

  bool onBlockStart(interp::ExecContext &Ctx, interp::Machine &M) override;

  const std::map<std::uint32_t, TlsLoopRunStats> &loopStats() const {
    return Stats;
  }

  /// Aggregate statistics over all loops.
  TlsLoopRunStats totals() const;

  /// Attaches the span recorder: one track per core for thread lifetimes,
  /// stall sub-spans and violation markers, plus \p EngineTrack for loop
  /// invocation spans. \p Cores must hold one track per configured core.
  void setObservability(metrics::Timeline *Timeline, metrics::TrackId Engine,
                        std::vector<metrics::TrackId> Cores) {
    TL = Timeline;
    EngineTrack = Engine;
    CoreTracks = std::move(Cores);
  }

  /// Exports the aggregate stats as "spec.*" counters and histograms.
  void exportMetrics(metrics::Registry &R) const;

private:
  struct PreparedLoop {
    jit::TlsLoopPlan Plan;
    /// Index of the globalized clone within EngineModule (0 = not yet
    /// prepared).
    std::uint32_t TlsFunc = 0;
    /// Flat PC of the clone's header block in EngineImage: spec threads
    /// spawn here and an iteration is done when control returns here.
    exec::FlatPc HeaderPcTls = 0;
    std::vector<std::uint32_t> SpillAddrs; // sorted for membership checks
    bool Ready = false;

    bool isSpillAddr(std::uint32_t Addr) const {
      return std::binary_search(SpillAddrs.begin(), SpillAddrs.end(), Addr);
    }
  };

  /// One core's speculative thread state.
  struct SpecThread {
    enum class St { Idle, Running, WaitHead, WaitSync, IterDone, Exited };
    enum class Stall { None, Buffer, Sync };
    St State = St::Idle;
    bool Active = false;
    std::uint64_t Iter = 0;
    std::uint64_t ReadyAt = 0;
    std::uint32_t ExitBlock = 0;
    /// Spill address a WaitSync thread spins on.
    std::uint32_t SyncAddr = 0;
    // Cycle-attribution state for the current lifetime (spawn..resolve).
    std::uint64_t StartAt = 0;
    /// Cycle up to which this lifetime is charged as fork/commit overhead
    /// (restart penalty, end-of-iteration handling); == ReadyAt at spawn.
    std::uint64_t SpawnOverheadUntil = 0;
    std::uint64_t StallStart = 0;
    Stall StallKind = Stall::None;
    std::uint64_t BufStallAcc = 0;
    std::uint64_t SyncStallAcc = 0;
    std::unique_ptr<interp::ExecContext> Ctx;
    std::unique_ptr<sim::L1CacheModel> L1;
    std::unordered_map<std::uint32_t, std::uint64_t> StoreBuf;
    std::unordered_set<std::uint32_t> StoreLines;
    std::unordered_set<std::uint32_t> ReadSet;
    std::unordered_set<std::uint32_t> ReadLines;
  };

  /// MemoryPort adapter binding a core index to the engine.
  class SpecPort : public interp::MemoryPort {
  public:
    SpecPort(TlsEngine &E, std::uint32_t Core) : E(E), Core(Core) {}
    std::uint64_t load(std::uint32_t Addr, std::uint32_t &Extra) override {
      return E.specLoad(Core, Addr, Extra);
    }
    void store(std::uint32_t Addr, std::uint64_t Value,
               std::uint32_t &Extra) override {
      E.specStore(Core, Addr, Value, Extra);
    }
    std::uint32_t allocWords(std::uint32_t Count) override;

  private:
    TlsEngine &E;
    std::uint32_t Core;
  };

  void prepareLoop(PreparedLoop &PL, interp::Machine &M);
  void runLoop(PreparedLoop &PL, interp::ExecContext &Ctx,
               interp::Machine &M);

  /// How a thread lifetime ended; decides which bucket its active cycles
  /// land in (Commit/Exit -> useful, Squash/Discard -> violation discard).
  enum class Outcome { Commit, Exit, Squash, Discard };
  void openStall(std::uint32_t Core, SpecThread::Stall Kind);
  void closeStall(std::uint32_t Core);
  /// Closes the current lifetime of \p Core's thread at the current Cycle:
  /// decomposes [StartAt, Cycle) into fork/commit + stall + active time,
  /// charges the buckets, and accounts the core occupancy.
  void resolveLifetime(std::uint32_t Core, Outcome O);

  std::uint64_t specLoad(std::uint32_t Core, std::uint32_t Addr,
                         std::uint32_t &Extra);
  void specStore(std::uint32_t Core, std::uint32_t Addr, std::uint64_t Value,
                 std::uint32_t &Extra);

  // --- runLoop helpers (valid only during runLoop) -------------------------
  /// Fills \p Regs (a recycled buffer; capacity is reused) with the spawn
  /// register file for iteration \p Iter.
  void fillSpawnRegs(std::vector<std::uint64_t> &Regs,
                     std::uint64_t Iter) const;
  void spawnThread(std::uint32_t Core, std::uint64_t Iter);
  void squashThread(std::uint32_t Core);
  /// Resumes WaitSync threads whose producer has delivered (or finished).
  void resumeSyncWaiters();
  void commitThread(std::uint32_t Core);
  void flushStoreBuffer(SpecThread &T);
  void accumulateReductions(SpecThread &T);
  void recomputeExitCap();
  std::uint32_t violationKey(std::uint32_t Addr) const;

  /// Held by value (reentrancy audit): sweep jobs build engines from
  /// per-job configs in temporaries; a reference member would dangle.
  sim::HydraConfig Cfg;
  ir::Module EngineModule; // plain module + appended globalized clones
  /// Image of EngineModule, rebuilt by assignment whenever prepareLoop
  /// appends a clone. Appending keeps every existing flat PC stable
  /// (finalize numbers instructions in function order), so PCs cached in
  /// HeaderPcIndex and in already-prepared loops stay valid, and the spec
  /// contexts reference this member by address across rebuilds.
  exec::CodeImage EngineImage;
  std::vector<PreparedLoop> Loops;
  /// Sequential-image flat PC of each selected loop's header block start.
  /// The sequential machine's context and EngineImage are compiled from
  /// content-identical modules, so their flat PCs agree and onBlockStart
  /// dispatches on a single integer lookup.
  std::unordered_map<exec::FlatPc, std::uint32_t> HeaderPcIndex;
  std::map<std::uint32_t, TlsLoopRunStats> Stats;

  // Live state of the current runLoop invocation.
  interp::Heap *CurHeap = nullptr;
  const PreparedLoop *Cur = nullptr;
  TlsLoopRunStats *CurStats = nullptr;
  std::vector<SpecThread> Threads; // one per core
  std::vector<std::unique_ptr<SpecPort>> Ports;
  std::uint64_t Cycle = 0;
  std::uint64_t HeadIter = 0;
  std::uint64_t NextIter = 0;
  std::optional<std::uint64_t> ExitCap;
  std::vector<std::uint64_t> EntryRegs;
  std::vector<std::uint64_t> ReductionAcc;
  /// Recycled register-file buffers: every spawn displaces the previous
  /// activation's file via ExecContext::resetAtPc and reuses it for the
  /// next spawn instead of allocating per iteration.
  std::vector<std::vector<std::uint64_t>> RegPool;
  /// Set by specLoad when a synchronized load must be retried; runLoop
  /// rewinds the context so the load re-issues after the producer stores.
  bool SyncRewindPending = false;

  // Observability state. CoreBusy accumulates resolved lifetime lengths per
  // core within the current invocation; what remains of the invocation's
  // span is idle time by definition.
  metrics::Timeline *TL = nullptr;
  metrics::TrackId EngineTrack = 0;
  std::vector<metrics::TrackId> CoreTracks;
  std::vector<std::uint64_t> CoreBusy;
  /// Machine clock at runLoop entry; global ts = ClockBase + local Cycle.
  std::uint64_t ClockBase = 0;
  metrics::Histogram ThreadActiveCycles;
  metrics::Histogram InvocationCycles;
};

} // namespace hydra
} // namespace jrpm

#endif // JRPM_HYDRA_TLSENGINE_H
