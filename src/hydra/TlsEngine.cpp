//===- hydra/TlsEngine.cpp ------------------------------------------------==//

#include "hydra/TlsEngine.h"

#include "hydra/TlsCodegen.h"
#include "support/Bits.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cassert>

using namespace jrpm;
using namespace jrpm::hydra;

TlsEngine::TlsEngine(const ir::Module &M, const sim::HydraConfig &Cfg,
                     std::vector<jit::TlsLoopPlan> Plans)
    : Cfg(Cfg), EngineModule(M), EngineImage(EngineModule) {
  Loops.reserve(Plans.size());
  for (jit::TlsLoopPlan &Plan : Plans) {
    PreparedLoop PL;
    PL.Plan = std::move(Plan);
    HeaderPcIndex[EngineImage.blockStart(PL.Plan.Func, PL.Plan.Header)] =
        static_cast<std::uint32_t>(Loops.size());
    Loops.push_back(std::move(PL));
  }
  Threads.resize(Cfg.NumCores);
  for (std::uint32_t C = 0; C < Cfg.NumCores; ++C) {
    Threads[C].Ctx = std::make_unique<interp::ExecContext>(EngineImage, Cfg);
    Threads[C].L1 = std::make_unique<sim::L1CacheModel>(Cfg);
    Ports.push_back(std::make_unique<SpecPort>(*this, C));
  }
}

std::uint32_t TlsEngine::SpecPort::allocWords(std::uint32_t Count) {
  (void)Count;
  JRPM_FATAL("heap allocation inside a speculative thread (the candidate "
             "screen should have rejected this loop)");
}

TlsLoopRunStats TlsEngine::totals() const {
  TlsLoopRunStats T;
  for (const auto &[LoopId, S] : Stats) {
    T.Invocations += S.Invocations;
    T.CommittedThreads += S.CommittedThreads;
    T.Violations += S.Violations;
    T.Restarts += S.Restarts;
    T.OverflowStalls += S.OverflowStalls;
    T.SyncStalls += S.SyncStalls;
    T.SpecCycles += S.SpecCycles;
    T.ThreadsStarted += S.ThreadsStarted;
    T.ThreadsExited += S.ThreadsExited;
    T.ThreadsDiscarded += S.ThreadsDiscarded;
    T.UsefulCycles += S.UsefulCycles;
    T.ForkCommitCycles += S.ForkCommitCycles;
    T.ViolationDiscardCycles += S.ViolationDiscardCycles;
    T.BufferStallCycles += S.BufferStallCycles;
    T.SyncStallCycles += S.SyncStallCycles;
    T.IdleCycles += S.IdleCycles;
  }
  return T;
}

void TlsEngine::exportMetrics(metrics::Registry &R) const {
  TlsLoopRunStats T = totals();
  R.counter("spec.invocations").inc(T.Invocations);
  R.counter("spec.threads_started").inc(T.ThreadsStarted);
  // "Committed" work is work the sequential context kept: iteration commits
  // plus the adopted loop-exit threads. With threads_violated == Restarts,
  // started == committed + violated + discarded holds exactly.
  R.counter("spec.threads_committed").inc(T.CommittedThreads + T.ThreadsExited);
  R.counter("spec.threads_violated").inc(T.Restarts);
  R.counter("spec.threads_discarded").inc(T.ThreadsDiscarded);
  R.counter("spec.violations").inc(T.Violations);
  R.counter("spec.overflow_stalls").inc(T.OverflowStalls);
  R.counter("spec.sync_stalls").inc(T.SyncStalls);
  R.counter("spec.cycles.useful").inc(T.UsefulCycles);
  R.counter("spec.cycles.fork_commit").inc(T.ForkCommitCycles);
  R.counter("spec.cycles.violation_discard").inc(T.ViolationDiscardCycles);
  R.counter("spec.cycles.buffer_stall").inc(T.BufferStallCycles);
  R.counter("spec.cycles.sync_stall").inc(T.SyncStallCycles);
  R.counter("spec.cycles.idle").inc(T.IdleCycles);
  R.counter("spec.cycles.total")
      .inc(std::uint64_t(Cfg.NumCores) * T.SpecCycles);
  R.histogram("spec.thread_active_cycles").merge(ThreadActiveCycles);
  R.histogram("spec.invocation_cycles").merge(InvocationCycles);
}

void TlsEngine::openStall(std::uint32_t Core, SpecThread::Stall Kind) {
  SpecThread &T = Threads[Core];
  if (T.StallKind != SpecThread::Stall::None)
    return;
  T.StallKind = Kind;
  T.StallStart = Cycle;
  if (TL && Core < CoreTracks.size())
    TL->begin(CoreTracks[Core],
              Kind == SpecThread::Stall::Buffer ? "stall.buffer"
                                                : "stall.sync",
              ClockBase + Cycle);
}

void TlsEngine::closeStall(std::uint32_t Core) {
  SpecThread &T = Threads[Core];
  if (T.StallKind == SpecThread::Stall::None)
    return;
  std::uint64_t Len = Cycle - T.StallStart;
  if (T.StallKind == SpecThread::Stall::Buffer)
    T.BufStallAcc += Len;
  else
    T.SyncStallAcc += Len;
  T.StallKind = SpecThread::Stall::None;
  if (TL && Core < CoreTracks.size())
    TL->end(CoreTracks[Core], ClockBase + Cycle);
}

void TlsEngine::resolveLifetime(std::uint32_t Core, Outcome O) {
  SpecThread &T = Threads[Core];
  closeStall(Core);
  // Decompose the lifetime into fork/commit overhead, stalls, and active
  // time. Each component is clamped to what remains, so the four parts
  // always sum to exactly Cycle - StartAt whatever interleaving produced
  // them — the bucket-sum identity depends on this, not on the stall
  // intervals being disjoint from the spawn penalty.
  std::uint64_t Lifetime = Cycle - T.StartAt;
  std::uint64_t Fc = std::min(T.SpawnOverheadUntil - T.StartAt, Lifetime);
  std::uint64_t Buf = std::min(T.BufStallAcc, Lifetime - Fc);
  std::uint64_t Sync = std::min(T.SyncStallAcc, Lifetime - Fc - Buf);
  std::uint64_t Active = Lifetime - Fc - Buf - Sync;
  CurStats->ForkCommitCycles += Fc;
  CurStats->BufferStallCycles += Buf;
  CurStats->SyncStallCycles += Sync;
  if (O == Outcome::Commit || O == Outcome::Exit) {
    CurStats->UsefulCycles += Active;
    ThreadActiveCycles.record(Active);
  } else {
    CurStats->ViolationDiscardCycles += Active;
  }
  if (O == Outcome::Exit)
    ++CurStats->ThreadsExited;
  else if (O == Outcome::Discard)
    ++CurStats->ThreadsDiscarded;
  CoreBusy[Core] += Lifetime;
  T.BufStallAcc = 0;
  T.SyncStallAcc = 0;
  if (TL && Core < CoreTracks.size())
    TL->end(CoreTracks[Core], ClockBase + Cycle);
}

void TlsEngine::prepareLoop(PreparedLoop &PL, interp::Machine &M) {
  if (PL.Ready)
    return;
  PL.SpillAddrs.clear();
  for (std::size_t K = 0; K < PL.Plan.CarriedLocals.size(); ++K)
    PL.SpillAddrs.push_back(M.heap().allocWords(1));
  std::sort(PL.SpillAddrs.begin(), PL.SpillAddrs.end());
  ir::Function Clone = globalizeLoopBody(
      EngineModule.Functions[PL.Plan.Func], PL.Plan, PL.SpillAddrs);
  EngineModule.Functions.push_back(std::move(Clone));
  PL.TlsFunc = static_cast<std::uint32_t>(EngineModule.Functions.size() - 1);
  EngineModule.finalize();
  // Recompile the image in place: the append leaves every existing flat PC
  // unchanged, so the spec contexts (which hold a reference to the member)
  // and previously prepared loops stay consistent.
  EngineImage = exec::CodeImage(EngineModule);
  PL.HeaderPcTls = EngineImage.blockStart(PL.TlsFunc, PL.Plan.Header);
  PL.Ready = true;
}

bool TlsEngine::onBlockStart(interp::ExecContext &Ctx, interp::Machine &M) {
  auto It = HeaderPcIndex.find(Ctx.pc());
  if (It == HeaderPcIndex.end())
    return false;
  PreparedLoop &PL = Loops[It->second];
  prepareLoop(PL, M);
  runLoop(PL, Ctx, M);
  return true;
}

std::uint32_t TlsEngine::violationKey(std::uint32_t Addr) const {
  return Cfg.ViolationGrain == sim::ViolationGranularity::Word
             ? Addr
             : Addr / Cfg.WordsPerLine;
}

void TlsEngine::fillSpawnRegs(std::vector<std::uint64_t> &Regs,
                              std::uint64_t Iter) const {
  Regs = EntryRegs; // copy-assign reuses the recycled buffer's capacity
  for (const auto &[Reg, Step] : Cur->Plan.Inductors)
    Regs[Reg] = EntryRegs[Reg] +
                Iter * static_cast<std::uint64_t>(Step);
  for (const auto &[Reg, Kind] : Cur->Plan.Reductions) {
    (void)Kind; // both integer 0 and +0.0 are the zero bit pattern
    Regs[Reg] = 0;
  }
}

void TlsEngine::spawnThread(std::uint32_t Core, std::uint64_t Iter) {
  SpecThread &T = Threads[Core];
  T.Active = true;
  T.State = SpecThread::St::Running;
  T.Iter = Iter;
  T.StoreBuf.clear();
  T.StoreLines.clear();
  T.ReadSet.clear();
  T.ReadLines.clear();
  ++CurStats->ThreadsStarted;
  T.StartAt = Cycle;
  // Callers that charge a spawn penalty (restart, end-of-iteration) raise
  // this together with ReadyAt right after the call.
  T.SpawnOverheadUntil = Cycle;
  T.StallKind = SpecThread::Stall::None;
  T.BufStallAcc = 0;
  T.SyncStallAcc = 0;
  if (TL && Core < CoreTracks.size())
    TL->begin(CoreTracks[Core], "thread", ClockBase + Cycle);
  std::vector<std::uint64_t> Regs;
  if (!RegPool.empty()) {
    Regs = std::move(RegPool.back());
    RegPool.pop_back();
  }
  fillSpawnRegs(Regs, Iter);
  std::vector<std::uint64_t> Displaced =
      T.Ctx->resetAtPc(Cur->HeaderPcTls, std::move(Regs));
  if (!Displaced.empty())
    RegPool.push_back(std::move(Displaced));
}

void TlsEngine::squashThread(std::uint32_t Core) {
  SpecThread &T = Threads[Core];
  ++CurStats->Restarts;
  if (TL && Core < CoreTracks.size())
    TL->instant(CoreTracks[Core], "violation", ClockBase + Cycle);
  resolveLifetime(Core, Outcome::Squash);
  std::uint64_t Iter = T.Iter;
  spawnThread(Core, Iter);
  T.ReadyAt = Cycle + Cfg.ViolationRestartCycles + Cur->Plan.NumInvariants;
  T.SpawnOverheadUntil = T.ReadyAt;
}

void TlsEngine::flushStoreBuffer(SpecThread &T) {
  for (const auto &[Addr, Value] : T.StoreBuf)
    CurHeap->store(Addr, Value);
  T.StoreBuf.clear();
  T.StoreLines.clear();
}

void TlsEngine::accumulateReductions(SpecThread &T) {
  const std::vector<std::uint64_t> &Regs = T.Ctx->topRegs();
  for (std::size_t K = 0; K < Cur->Plan.Reductions.size(); ++K) {
    auto [Reg, Kind] = Cur->Plan.Reductions[K];
    if (Kind == analysis::ReductionKind::SumFloat) {
      double Sum = bits::asF(ReductionAcc[K]) + bits::asF(Regs[Reg]);
      ReductionAcc[K] = bits::asU(Sum);
    } else {
      ReductionAcc[K] += Regs[Reg];
    }
  }
}

void TlsEngine::resumeSyncWaiters() {
  for (std::uint32_t C = 0; C < Threads.size(); ++C) {
    SpecThread &T = Threads[C];
    if (!T.Active || T.State != SpecThread::St::WaitSync)
      continue;
    SpecThread *Pred = nullptr;
    for (SpecThread &U : Threads)
      if (U.Active && U.Iter + 1 == T.Iter)
        Pred = &U;
    bool Ready = !Pred || Pred->State == SpecThread::St::IterDone ||
                 Pred->State == SpecThread::St::Exited ||
                 Pred->StoreBuf.count(T.SyncAddr);
    if (Ready) {
      closeStall(C);
      T.State = SpecThread::St::Running;
      T.ReadyAt = std::max(T.ReadyAt, Cycle);
    }
  }
}

void TlsEngine::recomputeExitCap() {
  ExitCap.reset();
  for (const SpecThread &T : Threads)
    if (T.Active && T.State == SpecThread::St::Exited)
      ExitCap = ExitCap ? std::min(*ExitCap, T.Iter) : T.Iter;
}

void TlsEngine::commitThread(std::uint32_t Core) {
  SpecThread &T = Threads[Core];
  flushStoreBuffer(T);
  accumulateReductions(T);
  T.ReadSet.clear();
  T.ReadLines.clear();
  ++CurStats->CommittedThreads;
  resolveLifetime(Core, Outcome::Commit);
  ++HeadIter;
  // The core picks up the next iteration after the end-of-iteration
  // handling overhead.
  if (!ExitCap || NextIter < *ExitCap) {
    spawnThread(Core, NextIter++);
    T.ReadyAt = Cycle + Cfg.EndOfIterationCycles;
    T.SpawnOverheadUntil = T.ReadyAt;
  } else {
    T.Active = false;
    T.State = SpecThread::St::Idle;
  }
}

std::uint64_t TlsEngine::specLoad(std::uint32_t Core, std::uint32_t Addr,
                                  std::uint32_t &Extra) {
  SpecThread &T = Threads[Core];
  // Own speculative store buffer first.
  auto Own = T.StoreBuf.find(Addr);
  if (Own != T.StoreBuf.end())
    return Own->second;

  // Synchronized carried locals (Section 3.2): spin until the predecessor
  // thread has produced the value instead of speculating through it.
  if (Cfg.SyncCarriedLocals && T.Iter != HeadIter && Cur->isSpillAddr(Addr)) {
    for (SpecThread &Pred : Threads) {
      if (!Pred.Active || Pred.Iter + 1 != T.Iter)
        continue;
      bool Produced = Pred.State == SpecThread::St::IterDone ||
                      Pred.State == SpecThread::St::Exited ||
                      Pred.StoreBuf.count(Addr);
      if (!Produced) {
        T.State = SpecThread::St::WaitSync;
        T.SyncAddr = Addr;
        SyncRewindPending = true;
        ++CurStats->SyncStalls;
        openStall(Core, SpecThread::Stall::Sync);
        return 0; // dummy; the load re-issues after the producer stores
      }
      break;
    }
  }

  // Forward from the nearest earlier uncommitted thread holding the word.
  const SpecThread *Source = nullptr;
  for (const SpecThread &U : Threads) {
    if (!U.Active || &U == &T || U.Iter >= T.Iter)
      continue;
    if (!U.StoreBuf.count(Addr))
      continue;
    if (!Source || U.Iter > Source->Iter)
      Source = &U;
  }

  std::uint64_t Value;
  if (Source) {
    Extra += Cfg.StoreLoadCommCycles;
    Value = Source->StoreBuf.at(Addr);
  } else {
    if (!T.L1->access(Addr))
      Extra += Cfg.L2HitExtraCycles;
    Value = CurHeap->load(Addr);
  }

  // Track speculative read state for violation detection and overflow.
  T.ReadSet.insert(violationKey(Addr));
  T.ReadLines.insert(Addr / Cfg.WordsPerLine);
  if (T.ReadLines.size() > Cfg.SpecLoadLines && T.Iter != HeadIter) {
    T.State = SpecThread::St::WaitHead;
    ++CurStats->OverflowStalls;
    openStall(Core, SpecThread::Stall::Buffer);
  }
  return Value;
}

void TlsEngine::specStore(std::uint32_t Core, std::uint32_t Addr,
                          std::uint64_t Value, std::uint32_t &Extra) {
  (void)Extra;
  SpecThread &T = Threads[Core];
  T.StoreBuf[Addr] = Value;
  T.StoreLines.insert(Addr / Cfg.WordsPerLine);
  if (T.StoreLines.size() > Cfg.SpecStoreLines) {
    if (T.Iter == HeadIter) {
      // The head thread can always drain its buffer safely.
      flushStoreBuffer(T);
    } else {
      T.State = SpecThread::St::WaitHead;
      ++CurStats->OverflowStalls;
      openStall(Core, SpecThread::Stall::Buffer);
    }
  }

  // RAW violation detection: any later thread that already consumed this
  // word restarts, together with everything more speculative than it.
  std::uint32_t Key = violationKey(Addr);
  std::optional<std::uint64_t> MinViolated;
  for (const SpecThread &U : Threads) {
    if (!U.Active || U.Iter <= T.Iter)
      continue;
    if (U.ReadSet.count(Key))
      MinViolated = MinViolated ? std::min(*MinViolated, U.Iter) : U.Iter;
  }
  if (!MinViolated)
    return;
  ++CurStats->Violations;
  bool HadExit = ExitCap.has_value();
  for (std::uint32_t C = 0; C < Threads.size(); ++C)
    if (Threads[C].Active && Threads[C].Iter >= *MinViolated)
      squashThread(C);
  if (HadExit)
    recomputeExitCap();
}

void TlsEngine::runLoop(PreparedLoop &PL, interp::ExecContext &Ctx,
                        interp::Machine &M) {
  Cur = &PL;
  CurHeap = &M.heap();
  CurStats = &Stats[PL.Plan.LoopId];
  ++CurStats->Invocations;
  ClockBase = M.clock();
  CoreBusy.assign(Cfg.NumCores, 0);
  if (TL)
    TL->begin(EngineTrack, "loop#" + std::to_string(PL.Plan.LoopId),
              ClockBase);

  EntryRegs = Ctx.topRegs();
  assert(EntryRegs.size() >=
             EngineModule.Functions[PL.Plan.Func].NumRegs &&
         "entry registers too small");

  // Loop startup (Table 2): initialize loop locals in the spill area and
  // snapshot reduction accumulators.
  for (std::size_t K = 0; K < PL.Plan.CarriedLocals.size(); ++K)
    CurHeap->store(PL.SpillAddrs[K], EntryRegs[PL.Plan.CarriedLocals[K]]);
  ReductionAcc.clear();
  for (const auto &[Reg, Kind] : PL.Plan.Reductions) {
    (void)Kind;
    ReductionAcc.push_back(EntryRegs[Reg]);
  }

  Cycle = Cfg.LoopStartupCycles;
  HeadIter = 0;
  NextIter = 0;
  ExitCap.reset();
  for (std::uint32_t C = 0; C < Cfg.NumCores; ++C) {
    spawnThread(C, NextIter++);
    Threads[C].ReadyAt = Cycle;
  }

  SpecThread *ExitThread = nullptr;
  // Guards against engine bugs; generous for the largest loops.
  constexpr std::uint64_t MaxLoopCycles = 20ull * 1000 * 1000 * 1000;
  while (true) {
    // Head-state transitions first: resume, commit, or finish.
    bool HeadHandled = false;
    for (std::uint32_t C = 0; C < Threads.size(); ++C) {
      SpecThread &T = Threads[C];
      if (!T.Active || T.Iter != HeadIter)
        continue;
      if (T.State == SpecThread::St::WaitHead) {
        closeStall(C);
        T.State = SpecThread::St::Running;
        T.ReadyAt = std::max(T.ReadyAt, Cycle);
      } else if (T.State == SpecThread::St::IterDone) {
        commitThread(C);
        HeadHandled = true;
      } else if (T.State == SpecThread::St::Exited) {
        ExitThread = &T;
      }
      break; // exactly one head thread exists
    }
    if (ExitThread)
      break;
    if (HeadHandled)
      continue;

    resumeSyncWaiters();

    // Refill idle cores when iterations are available (iterations past a
    // speculatively-exited thread would only be squashed).
    for (std::uint32_t C = 0; C < Threads.size(); ++C) {
      if (Threads[C].Active)
        continue;
      if (ExitCap && NextIter >= *ExitCap)
        continue;
      spawnThread(C, NextIter++);
      Threads[C].ReadyAt = Cycle;
    }

    // Step every running thread whose core is free this cycle.
    bool AnyStep = false;
    for (std::uint32_t C = 0; C < Threads.size(); ++C) {
      SpecThread &T = Threads[C];
      if (!T.Active || T.State != SpecThread::St::Running ||
          T.ReadyAt > Cycle)
        continue;
      AnyStep = true;
      std::uint32_t Cost = T.Ctx->step(*Ports[C], nullptr, Cycle);
      T.ReadyAt = Cycle + Cost;
      if (SyncRewindPending) {
        // The load could not be satisfied yet: undo it; it re-issues when
        // resumeSyncWaiters() releases the thread.
        SyncRewindPending = false;
        T.Ctx->rewindTop();
        continue;
      }
      if (T.Ctx->finished())
        JRPM_FATAL("speculative thread returned out of the STL's function");
      // specLoad/specStore may have stalled the thread; control transfers
      // are inspected only at the loop's own call depth.
      if (T.State == SpecThread::St::Running && T.Ctx->callDepth() == 1 &&
          T.Ctx->atBlockStart()) {
        exec::FlatPc Pc = T.Ctx->pc();
        if (Pc == PL.HeaderPcTls) {
          T.State = SpecThread::St::IterDone;
        } else {
          std::uint32_t B = EngineImage.blockOf(Pc);
          if (!PL.Plan.containsBlock(B)) {
            T.State = SpecThread::St::Exited;
            T.ExitBlock = B;
            recomputeExitCap();
          }
        }
      }
    }

    if (AnyStep) {
      ++Cycle;
    } else {
      // Jump to the next time a core becomes ready.
      std::uint64_t Next = ~std::uint64_t(0);
      for (const SpecThread &T : Threads)
        if (T.Active && T.State == SpecThread::St::Running)
          Next = std::min(Next, T.ReadyAt);
      if (Next == ~std::uint64_t(0))
        ++Cycle; // everyone is waiting on the head; transitions above apply
      else
        Cycle = std::max(Cycle + 1, Next);
    }
    if (Cycle > MaxLoopCycles)
      JRPM_FATAL("TLS loop exceeded the cycle watchdog (engine livelock?)");
  }

  // Close every live lifetime at the loop's end cycle, then charge the
  // invocation-level overheads. Per core, resolved lifetimes tile
  // [LoopStartupCycles, Cycle] without overlap, so the remainder is idle
  // time and the six buckets sum to exactly NumCores * final SpecCycles.
  for (std::uint32_t C = 0; C < Threads.size(); ++C) {
    if (!Threads[C].Active)
      continue;
    resolveLifetime(C, &Threads[C] == ExitThread ? Outcome::Exit
                                                 : Outcome::Discard);
  }
  CurStats->ForkCommitCycles +=
      std::uint64_t(Cfg.NumCores) *
      (Cfg.LoopStartupCycles + Cfg.LoopShutdownCycles);
  for (std::uint32_t C = 0; C < Cfg.NumCores; ++C)
    CurStats->IdleCycles += (Cycle - Cfg.LoopStartupCycles) - CoreBusy[C];

  // Loop shutdown: adopt the exiting thread's state into the sequential
  // context, complete reductions, and reload carried locals from memory.
  SpecThread &T = *ExitThread;
  flushStoreBuffer(T);
  accumulateReductions(T);
  std::vector<std::uint64_t> FinalRegs = T.Ctx->topRegs();
  for (std::size_t K = 0; K < PL.Plan.CarriedLocals.size(); ++K)
    FinalRegs[PL.Plan.CarriedLocals[K]] = CurHeap->load(PL.SpillAddrs[K]);
  for (std::size_t K = 0; K < PL.Plan.Reductions.size(); ++K)
    FinalRegs[PL.Plan.Reductions[K].first] = ReductionAcc[K];

  std::uint32_t ExitBlock = T.ExitBlock;
  for (SpecThread &U : Threads) {
    U.Active = false;
    U.State = SpecThread::St::Idle;
    U.StoreBuf.clear();
    U.StoreLines.clear();
    U.ReadSet.clear();
    U.ReadLines.clear();
  }

  Cycle += Cfg.LoopShutdownCycles;
  CurStats->SpecCycles += Cycle;
  InvocationCycles.record(Cycle);
  if (TL)
    TL->end(EngineTrack, ClockBase + Cycle);
  M.addCycles(Cycle);
  Ctx.repositionTop(ExitBlock, std::move(FinalRegs));
  Cur = nullptr;
  CurHeap = nullptr;
  CurStats = nullptr;
}
