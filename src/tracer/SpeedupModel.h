//===- tracer/SpeedupModel.h - Equation 1: estimated STL speedup -----------==//
//
// Reconstruction of the paper's Equation 1 from its stated invariant:
// "we expect maximal speedup if the average critical arc length is at least
// 3/4 the average thread size (or (p-1)/p where p is the number of
// processors). This is the point at which the processors are completely
// utilized and the inter-thread dependencies are separated enough not to
// limit speedup."
//
// Derivation: let T be the average thread size and L the average critical
// arc length to a thread k positions back. In sequential time the store
// happens at (k*T - L) into the producing thread's window, so parallel
// threads must be offset by at least (T - L + comm)/k cycles, where comm is
// the store-to-load communication latency. Pipelining p iterations bounds
// the useful offset below by T/p. Hence
//
//   bound(L, k) = min(p, T / max(T/p, (T - L + comm)/k))
//
// which yields exactly speedup p when L >= (p-1)/p * T (+comm). Arc bins are
// combined by frequency; overflowing threads execute serially; Table 2's
// fixed overheads are added per entry and per thread.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACER_SPEEDUPMODEL_H
#define JRPM_TRACER_SPEEDUPMODEL_H

#include "sim/Config.h"
#include "tracer/StlStats.h"

namespace jrpm {
namespace tracer {

struct SpeedupEstimate {
  /// Dependency-limited parallel speedup before overheads (Equation 1's
  /// base_speedup term).
  double BaseSpeedup = 1.0;
  /// Base speedup degraded by buffer-overflow serialization.
  double EffectiveSpeedup = 1.0;
  /// Final estimate: sequential loop time over estimated speculative time
  /// including Table 2 overheads. May be below 1 (predicted slowdown).
  double Speedup = 1.0;
  /// Estimated speculative execution time of the loop, in cycles.
  double SpecCycles = 0.0;

  bool operator==(const SpeedupEstimate &O) const = default;
};

/// Applies Equation 1 to the collected statistics of one STL.
SpeedupEstimate estimateSpeedup(const StlStats &S,
                                const sim::HydraConfig &Cfg);

} // namespace tracer
} // namespace jrpm

#endif // JRPM_TRACER_SPEEDUPMODEL_H
