//===- tracer/Selector.h - Equation 2: choosing thread decompositions ------==//
//
// Section 4.3: only one decomposition of a loop nest can be active at a
// time, so the estimated speculative execution time of each loop is compared
// against speculating on its nested decompositions instead (plus the serial
// time not covered by them). The nest is the *dynamic* one observed by the
// comparator-bank stack, so loops reached through calls participate.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACER_SELECTOR_H
#define JRPM_TRACER_SELECTOR_H

#include "sim/Config.h"
#include "tracer/SpeedupModel.h"
#include "tracer/StlStats.h"
#include "tracer/TraceEngine.h"

#include <cstdint>
#include <vector>

namespace jrpm {
namespace tracer {

/// Per-loop outcome of the selection pass.
struct StlReport {
  std::uint32_t LoopId = 0;
  StlStats Stats;
  SpeedupEstimate Estimate;
  int Parent = -1;
  std::vector<std::uint32_t> Children;
  /// True when Equation 2 picked this loop as an STL to recompile.
  bool Selected = false;
  /// Fraction of total program cycles spent inside this loop.
  double Coverage = 0.0;
  /// min(spec time, serial-plus-children time) for this subtree, in cycles.
  double BestTime = 0.0;

  bool operator==(const StlReport &O) const = default;
};

/// Whole-program selection result.
struct SelectionResult {
  std::vector<StlReport> Loops; // indexed by loop id
  std::vector<std::uint32_t> SelectedLoops;
  std::uint64_t ProgramCycles = 0;
  /// Cycles outside any traced loop.
  double SerialCycles = 0.0;
  /// Predicted whole-program speculative execution time and speedup.
  double PredictedCycles = 0.0;
  double PredictedSpeedup = 1.0;

  /// Exact (bit-identical) equality, doubles included: a replayed
  /// selection must reproduce the live one exactly.
  bool operator==(const SelectionResult &O) const = default;
};

/// Runs Equation 1 on every traced loop and Equation 2 over the dynamic
/// nest, marking the selected decompositions.
SelectionResult selectStls(const TraceEngine &Engine,
                           std::uint64_t ProgramCycles,
                           const sim::HydraConfig &Cfg);

/// FNV-1a digest over every field of \p R, doubles hashed by bit pattern.
/// Two selections compare equal under operator== iff their digests match,
/// so the digest is the compact conformance currency: a replayed or
/// re-profiled selection must reproduce the live one's digest exactly.
std::uint64_t selectionDigest(const SelectionResult &R);

} // namespace tracer
} // namespace jrpm

#endif // JRPM_TRACER_SELECTOR_H
