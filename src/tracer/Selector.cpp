//===- tracer/Selector.cpp ------------------------------------------------==//

#include "tracer/Selector.h"

#include <algorithm>
#include <cstring>
#include <functional>

using namespace jrpm;
using namespace jrpm::tracer;

SelectionResult tracer::selectStls(const TraceEngine &Engine,
                                   std::uint64_t ProgramCycles,
                                   const sim::HydraConfig &Cfg) {
  SelectionResult R;
  R.ProgramCycles = ProgramCycles;
  std::uint32_t N = Engine.numLoops();
  R.Loops.resize(N);

  std::vector<int> Parents = Engine.dynamicParents();
  for (std::uint32_t L = 0; L < N; ++L) {
    StlReport &Rep = R.Loops[L];
    Rep.LoopId = L;
    Rep.Stats = Engine.stats(L);
    Rep.Estimate = estimateSpeedup(Rep.Stats, Cfg);
    Rep.Parent = Parents[L];
    Rep.Coverage = ProgramCycles
                       ? static_cast<double>(Rep.Stats.Cycles) /
                             static_cast<double>(ProgramCycles)
                       : 0.0;
    if (Rep.Parent >= 0)
      R.Loops[static_cast<std::uint32_t>(Rep.Parent)].Children.push_back(L);
  }

  // Equation 2, bottom-up over the dynamic forest:
  //   bestTime(l) = min(specTime(l), direct(l) + sum_children bestTime(c))
  // where direct(l) is the loop's cycles not covered by traced children (a
  // childless loop's direct time is simply its serial time).
  std::function<double(std::uint32_t)> BestTime =
      [&](std::uint32_t L) -> double {
    StlReport &Rep = R.Loops[L];
    double ChildCycles = 0.0;
    double ChildBest = 0.0;
    for (std::uint32_t C : Rep.Children) {
      ChildCycles += static_cast<double>(R.Loops[C].Stats.Cycles);
      ChildBest += BestTime(C);
    }
    double Direct =
        std::max(0.0, static_cast<double>(Rep.Stats.Cycles) - ChildCycles);
    double Nested = Direct + ChildBest;
    // Loops never traced have no estimate; they stay serial.
    if (Rep.Stats.Threads == 0 || Rep.Stats.Cycles == 0) {
      Rep.BestTime = Nested;
      return Rep.BestTime;
    }
    double Spec = Rep.Estimate.SpecCycles;
    if (Spec < Nested) {
      Rep.Selected = true;
      Rep.BestTime = Spec;
    } else {
      Rep.BestTime = Nested;
    }
    return Rep.BestTime;
  };

  double RootCycles = 0.0;
  double RootBest = 0.0;
  for (std::uint32_t L = 0; L < N; ++L) {
    if (R.Loops[L].Parent >= 0)
      continue;
    RootCycles += static_cast<double>(R.Loops[L].Stats.Cycles);
    RootBest += BestTime(L);
  }

  // A selected ancestor deactivates its whole subtree ("only one thread
  // decomposition may be active at a given time").
  std::function<void(std::uint32_t, bool)> Deactivate =
      [&](std::uint32_t L, bool AncestorSelected) {
        if (AncestorSelected)
          R.Loops[L].Selected = false;
        for (std::uint32_t C : R.Loops[L].Children)
          Deactivate(C, AncestorSelected || R.Loops[L].Selected);
      };
  for (std::uint32_t L = 0; L < N; ++L)
    if (R.Loops[L].Parent < 0)
      Deactivate(L, false);

  for (std::uint32_t L = 0; L < N; ++L)
    if (R.Loops[L].Selected)
      R.SelectedLoops.push_back(L);

  R.SerialCycles =
      std::max(0.0, static_cast<double>(ProgramCycles) - RootCycles);
  R.PredictedCycles = R.SerialCycles + RootBest;
  R.PredictedSpeedup = R.PredictedCycles > 0
                           ? static_cast<double>(ProgramCycles) /
                                 R.PredictedCycles
                           : 1.0;
  return R;
}

//===----------------------------------------------------------------------===//
// Selection digest
//===----------------------------------------------------------------------===//

namespace {

struct Fnv1a {
  std::uint64_t H = 0xCBF29CE484222325ull;

  void mix(std::uint64_t V) {
    for (int B = 0; B < 8; ++B) {
      H ^= (V >> (B * 8)) & 0xFF;
      H *= 0x100000001B3ull;
    }
  }
  void mixDouble(double V) {
    std::uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V));
    std::memcpy(&Bits, &V, sizeof(Bits));
    mix(Bits);
  }
};

} // namespace

std::uint64_t tracer::selectionDigest(const SelectionResult &R) {
  Fnv1a F;
  F.mix(R.ProgramCycles);
  F.mixDouble(R.SerialCycles);
  F.mixDouble(R.PredictedCycles);
  F.mixDouble(R.PredictedSpeedup);
  F.mix(R.SelectedLoops.size());
  for (std::uint32_t L : R.SelectedLoops)
    F.mix(L);
  F.mix(R.Loops.size());
  for (const StlReport &Rep : R.Loops) {
    F.mix(Rep.LoopId);
    F.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(Rep.Parent)));
    F.mix(Rep.Selected);
    F.mixDouble(Rep.Coverage);
    F.mixDouble(Rep.BestTime);
    F.mix(Rep.Children.size());
    for (std::uint32_t C : Rep.Children)
      F.mix(C);
    const StlStats &S = Rep.Stats;
    F.mix(S.Cycles);
    F.mix(S.Threads);
    F.mix(S.Entries);
    F.mix(S.UntracedEntries);
    F.mix(S.CritArcsPrev);
    F.mix(S.CritLenPrev);
    F.mix(S.CritArcsEarlier);
    F.mix(S.CritLenEarlier);
    F.mix(S.OverflowThreads);
    F.mix(S.MaxLoadLines);
    F.mix(S.MaxStoreLines);
    F.mix(S.PcBins.size());
    for (const auto &[Pc, Bin] : S.PcBins) {
      F.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(Pc)));
      F.mix(Bin.CriticalArcs);
      F.mix(Bin.AccumulatedLength);
    }
    F.mixDouble(Rep.Estimate.BaseSpeedup);
    F.mixDouble(Rep.Estimate.EffectiveSpeedup);
    F.mixDouble(Rep.Estimate.Speedup);
    F.mixDouble(Rep.Estimate.SpecCycles);
  }
  return F.H;
}
