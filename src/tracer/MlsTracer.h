//===- tracer/MlsTracer.h - Method-level speculation coverage --------------==//
//
// Section 4.1: "Speculative threads can be composed from loops, method call
// returns, and general regions. ... Our experiments so far have not found
// many method call return or general region decompositions that are either
// not covered by similar loop decompositions or have significant coverage
// to impact total execution time." This tracer measures that claim: for
// every call site it estimates how many cycles a method-return
// decomposition could overlap — the continuation runs speculatively in
// parallel with the callee until it loads a value the callee stored —
// so the exploitable MLS cycles can be compared against loop STL coverage.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACER_MLSTRACER_H
#define JRPM_TRACER_MLSTRACER_H

#include "interp/TraceSink.h"
#include "sim/Config.h"
#include "tracer/TimestampStores.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace jrpm {
namespace tracer {

/// Per-call-site method-level speculation statistics.
struct MlsSiteStats {
  std::uint64_t Invocations = 0;
  std::uint64_t CalleeCycles = 0;  ///< total time spent in the callee
  std::uint64_t OverlapCycles = 0; ///< continuation overlap achievable

  double averageCalleeCycles() const {
    return Invocations ? static_cast<double>(CalleeCycles) /
                             static_cast<double>(Invocations)
                       : 0;
  }
  double overlapFraction() const {
    return CalleeCycles ? static_cast<double>(OverlapCycles) /
                              static_cast<double>(CalleeCycles)
                        : 0;
  }
};

/// Observes annotated sequential execution and accumulates, per call site,
/// the overlap a fork-at-call decomposition could achieve. The analysis
/// shares the tracer's store-timestamp idea: a continuation load whose
/// last-store timestamp falls inside the callee's execution window is a
/// dependence on the callee and ends the speculative overlap.
class MlsTracer : public interp::TraceSink {
public:
  explicit MlsTracer(const sim::HydraConfig &Cfg)
      : HeapTs(Cfg.HeapTimestampFifoLines, Cfg.WordsPerLine) {}

  std::uint32_t onHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                           std::int32_t Pc) override {
    (void)Pc;
    std::uint64_t Ts = HeapTs.lookup(Addr);
    expireWindows(Cycle);
    for (Window &W : Returned) {
      if (W.Closed)
        continue;
      if (Ts != NoTimestamp && Ts >= W.Start && Ts <= W.Return)
        closeWindow(W, Cycle);
    }
    return 0;
  }

  std::uint32_t onHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                            std::int32_t Pc) override {
    (void)Pc;
    HeapTs.recordStore(Addr, Cycle);
    expireWindows(Cycle);
    return 0;
  }

  std::uint32_t onLocalLoad(std::uint64_t, std::uint16_t, std::uint64_t,
                            std::int32_t) override {
    return 0;
  }
  std::uint32_t onLocalStore(std::uint64_t, std::uint16_t, std::uint64_t,
                             std::int32_t) override {
    return 0;
  }
  std::uint32_t onLoopStart(std::uint32_t, std::uint64_t,
                            std::uint64_t) override {
    return 0;
  }
  std::uint32_t onLoopIter(std::uint32_t, std::uint64_t) override {
    return 0;
  }
  std::uint32_t onLoopEnd(std::uint32_t, std::uint64_t) override { return 0; }
  void onReturn(std::uint64_t) override {}

  void onCallSite(std::int32_t CallPc, std::uint64_t Cycle) override {
    CallStack.push_back({CallPc, Cycle});
  }

  void onCallReturn(std::uint64_t Cycle) override {
    if (CallStack.empty())
      return; // the entry function's return
    OpenCall C = CallStack.back();
    CallStack.pop_back();
    Window W;
    W.SitePc = C.SitePc;
    W.Start = C.Start;
    W.Return = Cycle;
    MlsSiteStats &S = Stats[C.SitePc];
    ++S.Invocations;
    S.CalleeCycles += Cycle - C.Start;
    if (Returned.size() == MaxWindows) {
      // Evicted windows saw no dependence while observed: credit what was
      // proven so far.
      closeWindow(Returned.front(), Returned.front().LastSeen);
      Returned.pop_front();
    }
    W.LastSeen = Cycle;
    Returned.push_back(W);
  }

  /// Per-site statistics, keyed by the call instruction's PC.
  const std::map<std::int32_t, MlsSiteStats> &siteStats() const {
    return Stats;
  }

  /// Total cycles a fork-at-call MLS decomposition could overlap.
  std::uint64_t totalOverlapCycles() const {
    std::uint64_t Sum = 0;
    for (const auto &[Pc, S] : Stats)
      Sum += S.OverlapCycles;
    return Sum;
  }

  /// Flushes still-open windows at program end.
  void finish(std::uint64_t Cycle) {
    for (Window &W : Returned)
      if (!W.Closed)
        closeWindow(W, Cycle);
    Returned.clear();
  }

private:
  struct OpenCall {
    std::int32_t SitePc;
    std::uint64_t Start;
  };
  /// A recently returned call whose continuation is being watched.
  struct Window {
    std::int32_t SitePc = 0;
    std::uint64_t Start = 0;
    std::uint64_t Return = 0;
    std::uint64_t LastSeen = 0;
    bool Closed = false;
  };

  void closeWindow(Window &W, std::uint64_t Cycle) {
    if (W.Closed)
      return;
    W.Closed = true;
    std::uint64_t Dur = W.Return - W.Start;
    std::uint64_t Independent = Cycle >= W.Return ? Cycle - W.Return : 0;
    Stats[W.SitePc].OverlapCycles += std::min(Dur, Independent);
  }

  /// Windows whose continuation already ran for the callee's full duration
  /// have proven complete overlap; close them.
  void expireWindows(std::uint64_t Cycle) {
    for (Window &W : Returned) {
      if (!W.Closed) {
        W.LastSeen = Cycle;
        if (Cycle - W.Return >= W.Return - W.Start)
          closeWindow(W, Cycle);
      }
    }
    while (!Returned.empty() && Returned.front().Closed)
      Returned.pop_front();
  }

  static constexpr std::size_t MaxWindows = 8;
  HeapStoreTimestamps HeapTs;
  std::vector<OpenCall> CallStack;
  std::deque<Window> Returned;
  std::map<std::int32_t, MlsSiteStats> Stats;
};

} // namespace tracer
} // namespace jrpm

#endif // JRPM_TRACER_MLSTRACER_H
