//===- tracer/TimestampStores.h - Store-buffer timestamp storage -----------==//
//
// During profiling, Hydra's five speculation write buffers hold event
// timestamps instead of speculative data (Section 5.3): three buffers hold
// heap-access store timestamps (a 192-line FIFO of write history), one holds
// cache-line timestamps for the overflow analysis (direct mapped), and one
// holds local-variable store timestamps (64 slots, reserved stack-style by
// `sloop`).
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACER_TIMESTAMPSTORES_H
#define JRPM_TRACER_TIMESTAMPSTORES_H

#include "sim/Config.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace jrpm {
namespace tracer {

/// Timestamp value meaning "no record".
inline constexpr std::uint64_t NoTimestamp = 0;

/// FIFO history of heap store timestamps at word granularity within
/// cache-line entries. Holds the most recent `Capacity` written lines; older
/// history is lost, which bounds how distant a dependency the tracer can
/// observe (a deliberate imprecision the paper discusses in Section 6.2).
class HeapStoreTimestamps {
public:
  HeapStoreTimestamps(std::uint32_t CapacityLines, std::uint32_t WordsPerLine)
      : Capacity(CapacityLines), WordsPerLine(WordsPerLine) {}

  /// Records that word \p Addr was stored at \p Cycle.
  void recordStore(std::uint32_t Addr, std::uint64_t Cycle) {
    std::uint32_t Line = Addr / WordsPerLine;
    auto It = Lines.find(Line);
    if (It == Lines.end()) {
      if (Fifo.size() == Capacity) {
        Lines.erase(Fifo.front());
        Fifo.pop_front();
      }
      Fifo.push_back(Line);
      It = Lines.emplace(Line, LineEntry{}).first;
    }
    It->second.WordTs[Addr % WordsPerLine] = Cycle;
  }

  /// Returns the last store timestamp recorded for word \p Addr, or
  /// NoTimestamp when the history has no record.
  std::uint64_t lookup(std::uint32_t Addr) const {
    auto It = Lines.find(Addr / WordsPerLine);
    if (It == Lines.end())
      return NoTimestamp;
    return It->second.WordTs[Addr % WordsPerLine];
  }

  void clear() {
    Lines.clear();
    Fifo.clear();
  }

private:
  struct LineEntry {
    std::array<std::uint64_t, 8> WordTs = {};
  };
  std::uint32_t Capacity;
  std::uint32_t WordsPerLine;
  std::unordered_map<std::uint32_t, LineEntry> Lines;
  std::deque<std::uint32_t> Fifo;
};

/// Direct-mapped table of cache-line timestamps used by the speculative
/// state overflow analysis (Figure 4). Not accounting for the real caches'
/// associativity "introduces some error into the overflow analysis" — kept
/// faithfully; an ablation bench quantifies it against a set-associative
/// variant.
class CacheLineTimestampTable {
public:
  explicit CacheLineTimestampTable(std::uint32_t NumEntries,
                                   std::uint32_t WordsPerLine,
                                   std::uint32_t Associativity = 1)
      : WordsPerLine(WordsPerLine), Assoc(Associativity),
        Sets(NumEntries / Associativity), Table(NumEntries) {
    assert(Associativity >= 1 && NumEntries % Associativity == 0 &&
           "bad table geometry");
  }

  /// Looks up the line containing \p Addr, returns its previous timestamp
  /// (NoTimestamp on tag mismatch), and records \p Cycle for it.
  std::uint64_t exchange(std::uint32_t Addr, std::uint64_t Cycle) {
    std::uint32_t Line = Addr / WordsPerLine;
    std::uint32_t Set = Line % Sets;
    std::uint32_t Tag = Line / Sets;
    std::uint32_t Base = Set * Assoc;
    // Hit: refresh in place.
    for (std::uint32_t W = 0; W < Assoc; ++W) {
      Entry &E = Table[Base + W];
      if (E.Valid && E.Tag == Tag) {
        std::uint64_t Old = E.Ts;
        E.Ts = Cycle;
        return Old;
      }
    }
    // Miss: evict the oldest-timestamp way (direct mapped when Assoc==1).
    std::uint32_t Victim = 0;
    for (std::uint32_t W = 1; W < Assoc; ++W)
      if (!Table[Base + W].Valid || Table[Base + W].Ts < Table[Base + Victim].Ts)
        Victim = W;
    Entry &E = Table[Base + Victim];
    E.Valid = true;
    E.Tag = Tag;
    E.Ts = Cycle;
    return NoTimestamp;
  }

  void clear() {
    for (Entry &E : Table)
      E = Entry{};
  }

private:
  struct Entry {
    bool Valid = false;
    std::uint32_t Tag = 0;
    std::uint64_t Ts = 0;
  };
  std::uint32_t WordsPerLine;
  std::uint32_t Assoc;
  std::uint32_t Sets;
  std::vector<Entry> Table;
};

/// The 64-slot local-variable store-timestamp file. `sloop n` reserves n
/// slots stack-style; `eloop` releases them. Slots are cleared on
/// reservation so stale timestamps from released reservations cannot leak
/// across activations.
class LocalVarTimestampFile {
public:
  explicit LocalVarTimestampFile(std::uint32_t NumSlots)
      : Slots(NumSlots, NoTimestamp) {}

  /// Attempts to reserve \p Count slots; returns the base slot index or -1
  /// when the file is full.
  int reserve(std::uint32_t Count) {
    if (Top + Count > Slots.size())
      return -1;
    int Base = static_cast<int>(Top);
    for (std::uint32_t S = 0; S < Count; ++S)
      Slots[Top + S] = NoTimestamp;
    Top += Count;
    return Base;
  }

  /// Releases the most recent reservation of \p Count slots at \p Base.
  void release(std::uint32_t Base, std::uint32_t Count) {
    assert(Base + Count == Top && "non-stack release");
    Top = Base;
  }

  std::uint64_t read(std::uint32_t Slot) const { return Slots[Slot]; }
  void write(std::uint32_t Slot, std::uint64_t Cycle) { Slots[Slot] = Cycle; }

  std::uint32_t used() const { return Top; }
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(Slots.size());
  }

private:
  std::vector<std::uint64_t> Slots;
  std::uint32_t Top = 0;
};

} // namespace tracer
} // namespace jrpm

#endif // JRPM_TRACER_TIMESTAMPSTORES_H
