//===- tracer/TimestampStores.h - Store-buffer timestamp storage -----------==//
//
// During profiling, Hydra's five speculation write buffers hold event
// timestamps instead of speculative data (Section 5.3): three buffers hold
// heap-access store timestamps (a 192-line FIFO of write history), one holds
// cache-line timestamps for the overflow analysis (direct mapped), and one
// holds local-variable store timestamps (64 slots, reserved stack-style by
// `sloop`).
//
// All three stores are flat arrays — no node-based containers on the
// per-event path. The heap history keeps its FIFO *implicitly*: line
// entries are (re)assigned in strict rotation order, so the entry assigned
// longest ago is always the next eviction victim, and the only auxiliary
// structure is a small open-addressed line->entry index.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACER_TIMESTAMPSTORES_H
#define JRPM_TRACER_TIMESTAMPSTORES_H

#include "sim/Config.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace jrpm {
namespace tracer {

/// Timestamp value meaning "no record".
inline constexpr std::uint64_t NoTimestamp = 0;

/// Exact 32-bit division and modulo by a runtime divisor without a divide
/// instruction (the Lemire/Kaser/Kurz reciprocal: M = ceil(2^64 / D) makes
/// both operations a pair of multiplies, exact for every 32-bit operand).
/// The per-event paths split addresses into (line, word) and lines into
/// sets with geometry that is only known at configuration time, so the
/// compiler cannot strength-reduce the divides itself.
class FastDivMod {
public:
  explicit FastDivMod(std::uint32_t Divisor = 1)
      : D(Divisor), M(Divisor > 1 ? ~std::uint64_t(0) / Divisor + 1 : 0) {}

  std::uint32_t div(std::uint32_t N) const {
    if (D == 1)
      return N;
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(M) * N) >> 64);
  }

  std::uint32_t mod(std::uint32_t N) const {
    if (D == 1)
      return 0;
    std::uint64_t Low = M * N;
    return static_cast<std::uint32_t>(
        (static_cast<unsigned __int128>(Low) * D) >> 64);
  }

private:
  std::uint32_t D;
  std::uint64_t M;
};

/// FIFO history of heap store timestamps at word granularity within
/// cache-line entries. Holds the most recent `Capacity` written lines; older
/// history is lost, which bounds how distant a dependency the tracer can
/// observe (a deliberate imprecision the paper discusses in Section 6.2).
///
/// Layout: per-line word timestamps live in one contiguous array with a
/// WordsPerLine stride; the FIFO is the rotation order of entry slots; an
/// open-addressed hash index (power-of-two, linear probing, backward-shift
/// deletion, load factor <= 1/2) maps a line number to its slot.
class HeapStoreTimestamps {
public:
  HeapStoreTimestamps(std::uint32_t CapacityLines, std::uint32_t WordsPerLine)
      : Capacity(std::max<std::uint32_t>(CapacityLines, 1)),
        WordsPerLine(WordsPerLine), Split(WordsPerLine),
        Lines(Capacity, 0),
        WordTs(static_cast<std::size_t>(Capacity) * WordsPerLine,
               NoTimestamp) {
    std::uint32_t IndexSize = 8;
    while (IndexSize < 2 * Capacity)
      IndexSize *= 2;
    Index.assign(IndexSize, EmptySlot);
    Mask = IndexSize - 1;
  }

  /// Records that word \p Addr was stored at \p Cycle. The hit path (line
  /// already tracked) is a probe and one store, small enough to inline into
  /// the per-event sweeps; the insert/evict path is outlined.
  void recordStore(std::uint32_t Addr, std::uint64_t Cycle) {
    std::uint32_t Line = Split.div(Addr);
    std::uint32_t E = findEntry(Line);
    if (E == EmptySlot)
      E = insertLine(Line);
    WordTs[static_cast<std::size_t>(E) * WordsPerLine + Split.mod(Addr)] =
        Cycle;
  }

  /// Returns the last store timestamp recorded for word \p Addr, or
  /// NoTimestamp when the history has no record.
  std::uint64_t lookup(std::uint32_t Addr) const {
    std::uint32_t E = findEntry(Split.div(Addr));
    if (E == EmptySlot)
      return NoTimestamp;
    return WordTs[static_cast<std::size_t>(E) * WordsPerLine +
                  Split.mod(Addr)];
  }

  void clear() {
    std::fill(Index.begin(), Index.end(), EmptySlot);
    Live = 0;
    NextSlot = 0;
  }

  /// Lines whose history was dropped because the FIFO wrapped. Monotonic
  /// across clear() — an observability counter, not analysis state.
  std::uint64_t evictions() const { return Evictions; }
  /// Peak number of simultaneously tracked lines.
  std::uint32_t peakOccupancy() const { return Peak; }

private:
  static constexpr std::uint32_t EmptySlot = ~std::uint32_t(0);

  std::uint32_t hashSlot(std::uint32_t Line) const {
    return static_cast<std::uint32_t>(
               (Line * 0x9E3779B97F4A7C15ull) >> 32) &
           Mask;
  }

  std::uint32_t findEntry(std::uint32_t Line) const {
    for (std::uint32_t I = hashSlot(Line);; I = (I + 1) & Mask) {
      std::uint32_t E = Index[I];
      if (E == EmptySlot)
        return EmptySlot;
      if (Lines[E] == Line)
        return E;
    }
  }

  /// Assigns the next FIFO entry slot to \p Line (evicting the slot's
  /// previous line once the history is full) and returns the slot.
  std::uint32_t insertLine(std::uint32_t Line) {
    std::uint32_t E = NextSlot;
    NextSlot = NextSlot + 1 == Capacity ? 0 : NextSlot + 1;
    if (Live == Capacity) {
      eraseIndex(Lines[E]);
      ++Evictions;
    } else {
      ++Live;
      Peak = std::max(Peak, Live);
    }
    Lines[E] = Line;
    std::uint64_t *W = &WordTs[static_cast<std::size_t>(E) * WordsPerLine];
    std::fill(W, W + WordsPerLine, NoTimestamp);
    insertIndex(Line, E);
    return E;
  }

  void insertIndex(std::uint32_t Line, std::uint32_t Entry) {
    std::uint32_t I = hashSlot(Line);
    while (Index[I] != EmptySlot)
      I = (I + 1) & Mask;
    Index[I] = Entry;
  }

  void eraseIndex(std::uint32_t Line) {
    std::uint32_t I = hashSlot(Line);
    while (Index[I] == EmptySlot || Lines[Index[I]] != Line)
      I = (I + 1) & Mask;
    // Backward-shift deletion keeps probe chains gap-free.
    std::uint32_t J = I;
    for (;;) {
      Index[I] = EmptySlot;
      for (;;) {
        J = (J + 1) & Mask;
        if (Index[J] == EmptySlot)
          return;
        std::uint32_t Home = hashSlot(Lines[Index[J]]);
        // Move J's occupant into the hole unless its home lies in the
        // (cyclic) interval (I, J] — then the hole does not break its
        // probe chain.
        if (J > I ? (Home <= I || Home > J) : (Home <= I && Home > J))
          break;
      }
      Index[I] = Index[J];
      I = J;
    }
  }

  std::uint32_t Capacity;
  std::uint32_t WordsPerLine;
  FastDivMod Split;
  std::uint32_t Mask = 0;
  std::uint32_t NextSlot = 0; ///< next FIFO slot to assign (oldest entry)
  std::uint32_t Live = 0;     ///< entries currently tracked
  std::uint32_t Peak = 0;
  std::uint64_t Evictions = 0;
  std::vector<std::uint32_t> Lines;  ///< line number per entry slot
  std::vector<std::uint64_t> WordTs; ///< WordsPerLine stamps per entry slot
  std::vector<std::uint32_t> Index;  ///< open-addressed line -> entry slot
};

/// Direct-mapped table of cache-line timestamps used by the speculative
/// state overflow analysis (Figure 4). Not accounting for the real caches'
/// associativity "introduces some error into the overflow analysis" — kept
/// faithfully; an ablation bench quantifies it against a set-associative
/// variant.
///
/// Structure-of-arrays: one contiguous key array (line + 1, so 0 means an
/// empty way — no Valid flag to pointer-chase, and no tag division: the
/// full line number identifies a line within its set just as well) and one
/// contiguous timestamp array. The dominant direct-mapped configuration is
/// a single branch-light exchange on each array.
class CacheLineTimestampTable {
public:
  explicit CacheLineTimestampTable(std::uint32_t NumEntries,
                                   std::uint32_t WordsPerLine,
                                   std::uint32_t Associativity = 1)
      : WordsPerLine(WordsPerLine), Assoc(Associativity),
        Sets(NumEntries / Associativity), WordSplit(WordsPerLine),
        SetSplit(NumEntries / Associativity), Keys(NumEntries, 0),
        Ts(NumEntries, NoTimestamp) {
    assert(Associativity >= 1 && NumEntries % Associativity == 0 &&
           "bad table geometry");
  }

  /// Looks up the line containing \p Addr, returns its previous timestamp
  /// (NoTimestamp on tag mismatch), and records \p Cycle for it. The
  /// dominant direct-mapped configuration is small enough to inline into
  /// the per-event sweeps; wider geometries take the outlined way scan.
  std::uint64_t exchange(std::uint32_t Addr, std::uint64_t Cycle) {
    std::uint32_t Line = WordSplit.div(Addr);
    std::uint32_t Set = SetSplit.mod(Line);
    std::uint64_t Key = static_cast<std::uint64_t>(Line) + 1;
    if (Assoc == 1) {
      // Hit and miss collapse to one conditional move per array.
      bool Hit = Keys[Set] == Key;
      Evictions += !Hit && Keys[Set] != 0;
      Live += Keys[Set] == 0;
      std::uint64_t Old = Hit ? Ts[Set] : NoTimestamp;
      Keys[Set] = Key;
      Ts[Set] = Cycle;
      return Old;
    }
    return exchangeSetAssoc(Set, Key, Cycle);
  }

  void clear() {
    std::fill(Keys.begin(), Keys.end(), 0);
    std::fill(Ts.begin(), Ts.end(), NoTimestamp);
    Peak = std::max(Peak, Live);
    Live = 0;
  }

  /// Misses that overwrote a previously valid way. Monotonic across
  /// clear().
  std::uint64_t evictions() const { return Evictions; }
  /// Peak number of valid ways (entries never leave except via clear()).
  std::uint32_t peakOccupancy() const { return std::max(Peak, Live); }

private:
  std::uint64_t exchangeSetAssoc(std::uint32_t Set, std::uint64_t Key,
                                 std::uint64_t Cycle) {
    std::uint32_t Base = Set * Assoc;
    // Hit: refresh in place.
    for (std::uint32_t W = 0; W < Assoc; ++W) {
      if (Keys[Base + W] == Key) {
        std::uint64_t Old = Ts[Base + W];
        Ts[Base + W] = Cycle;
        return Old;
      }
    }
    // Miss: evict the oldest-timestamp way (preferring empty ways).
    std::uint32_t Victim = 0;
    for (std::uint32_t W = 1; W < Assoc; ++W)
      if (Keys[Base + W] == 0 || Ts[Base + W] < Ts[Base + Victim])
        Victim = W;
    Evictions += Keys[Base + Victim] != 0;
    Live += Keys[Base + Victim] == 0;
    Keys[Base + Victim] = Key;
    Ts[Base + Victim] = Cycle;
    return NoTimestamp;
  }

  std::uint32_t WordsPerLine;
  std::uint32_t Assoc;
  std::uint32_t Sets;
  FastDivMod WordSplit;
  FastDivMod SetSplit;
  std::uint32_t Live = 0;
  std::uint32_t Peak = 0;
  std::uint64_t Evictions = 0;
  std::vector<std::uint64_t> Keys; ///< line + 1; 0 = empty way
  std::vector<std::uint64_t> Ts;
};

/// Outcome of LocalVarTimestampFile::release. Anything but Ok means the
/// caller tried a non-stack release — possible only when a malformed
/// module survives with unbalanced `sloop`/`eloop`; the file is left
/// unchanged so the failure is deterministic instead of UB.
enum class SlotReleaseResult : std::uint8_t {
  Ok,
  NonStackRelease,
};

/// The 64-slot local-variable store-timestamp file. `sloop n` reserves n
/// slots stack-style; `eloop` releases them. Slots are cleared on
/// reservation so stale timestamps from released reservations cannot leak
/// across activations.
class LocalVarTimestampFile {
public:
  explicit LocalVarTimestampFile(std::uint32_t NumSlots)
      : Slots(NumSlots, NoTimestamp) {}

  /// Attempts to reserve \p Count slots; returns the base slot index or -1
  /// when the file is full.
  int reserve(std::uint32_t Count) {
    if (Top + Count > Slots.size())
      return -1;
    int Base = static_cast<int>(Top);
    for (std::uint32_t S = 0; S < Count; ++S)
      Slots[Top + S] = NoTimestamp;
    Top += Count;
    return Base;
  }

  /// Releases the most recent reservation of \p Count slots at \p Base.
  /// Asserts stack discipline in debug builds; in release builds a
  /// non-stack release is refused and reported instead of corrupting Top.
  [[nodiscard]] SlotReleaseResult release(std::uint32_t Base,
                                          std::uint32_t Count) {
    assert(static_cast<std::uint64_t>(Base) + Count == Top &&
           "non-stack release");
    if (static_cast<std::uint64_t>(Base) + Count != Top)
      return SlotReleaseResult::NonStackRelease;
    Top = Base;
    return SlotReleaseResult::Ok;
  }

  std::uint64_t read(std::uint32_t Slot) const { return Slots[Slot]; }
  void write(std::uint32_t Slot, std::uint64_t Cycle) { Slots[Slot] = Cycle; }

  std::uint32_t used() const { return Top; }
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(Slots.size());
  }

private:
  std::vector<std::uint64_t> Slots;
  std::uint32_t Top = 0;
};

/// Flat open-addressed index of the live (activation, register)
/// reservations: each maps to its slot in the LocalVarTimestampFile. At
/// most one active bank reserves a given pair — TraceEngine::onLoopStart
/// skips registers already covered by an enclosing reservation of the same
/// activation — so the index resolves a local-variable event to its owning
/// slot in O(1) instead of walking the bank stack per event. Sized at
/// twice the slot-file capacity the probe sequences stay short; erase uses
/// backward-shift deletion, so churny reservation stacks leave no
/// tombstones behind.
class LocalSlotIndex {
public:
  explicit LocalSlotIndex(std::uint32_t SlotCapacity) {
    std::uint32_t Size = 8;
    while (Size < 2 * SlotCapacity)
      Size *= 2;
    Entries.assign(Size, Entry{});
    Mask = Size - 1;
  }

  /// Adds the reservation (\p Activation, \p Reg) -> \p Slot. The pair
  /// must not be present (reservation uniqueness).
  void insert(std::uint64_t Activation, std::uint16_t Reg,
              std::uint32_t Slot) {
    std::uint32_t I = hashSlot(Activation, Reg);
    while (Entries[I].Slot != Empty)
      I = (I + 1) & Mask;
    Entries[I].Activation = Activation;
    Entries[I].Reg = Reg;
    Entries[I].Slot = Slot;
  }

  /// The slot owning (\p Activation, \p Reg), or -1 when no live
  /// reservation covers the pair.
  std::int32_t find(std::uint64_t Activation, std::uint16_t Reg) const {
    for (std::uint32_t I = hashSlot(Activation, Reg);; I = (I + 1) & Mask) {
      const Entry &E = Entries[I];
      if (E.Slot == Empty)
        return -1;
      if (E.Activation == Activation && E.Reg == Reg)
        return static_cast<std::int32_t>(E.Slot);
    }
  }

  /// Removes the reservation (\p Activation, \p Reg); no-op when absent.
  void erase(std::uint64_t Activation, std::uint16_t Reg) {
    std::uint32_t I = hashSlot(Activation, Reg);
    for (;; I = (I + 1) & Mask) {
      if (Entries[I].Slot == Empty)
        return;
      if (Entries[I].Activation == Activation && Entries[I].Reg == Reg)
        break;
    }
    // Backward-shift deletion: pull every displaced follower into the
    // hole so probe chains stay contiguous without tombstones.
    std::uint32_t Hole = I;
    for (std::uint32_t J = (Hole + 1) & Mask; Entries[J].Slot != Empty;
         J = (J + 1) & Mask) {
      std::uint32_t Home = hashSlot(Entries[J].Activation, Entries[J].Reg);
      if (((J - Home) & Mask) >= ((J - Hole) & Mask)) {
        Entries[Hole] = Entries[J];
        Hole = J;
      }
    }
    Entries[Hole].Slot = Empty;
  }

private:
  static constexpr std::uint32_t Empty = ~std::uint32_t(0);

  struct Entry {
    std::uint64_t Activation = 0;
    std::uint32_t Slot = Empty;
    std::uint16_t Reg = 0;
  };

  std::uint32_t hashSlot(std::uint64_t Activation, std::uint16_t Reg) const {
    std::uint64_t Mixed =
        (Activation ^ (static_cast<std::uint64_t>(Reg) << 17)) *
        0x9E3779B97F4A7C15ull;
    return static_cast<std::uint32_t>(Mixed >> 32) & Mask;
  }

  std::vector<Entry> Entries;
  std::uint32_t Mask = 0;
};

} // namespace tracer
} // namespace jrpm

#endif // JRPM_TRACER_TIMESTAMPSTORES_H
