//===- tracer/TraceEngine.cpp ---------------------------------------------==//

#include "tracer/TraceEngine.h"

#include <algorithm>
#include <cassert>

using namespace jrpm;
using namespace jrpm::tracer;

TraceEngine::TraceEngine(const sim::HydraConfig &Cfg,
                         std::vector<LoopTraceInfo> LoopInfos,
                         bool ExtendedPcBinning)
    : Cfg(Cfg), Loops(std::move(LoopInfos)),
      ExtendedPcBinning(ExtendedPcBinning),
      HeapTs(Cfg.HeapTimestampFifoLines, Cfg.WordsPerLine),
      LoadLineTs(Cfg.LoadTimestampEntries, Cfg.WordsPerLine,
                 Cfg.OverflowTableAssoc),
      StoreLineTs(Cfg.StoreTimestampEntries, Cfg.WordsPerLine,
                  Cfg.OverflowTableAssoc),
      LocalTs(Cfg.LocalVarSlots), Stats(Loops.size()) {}

void TraceEngine::exportMetrics(metrics::Registry &R) const {
  R.counter("tracer.events.heap_load").inc(Events.HeapLoads);
  R.counter("tracer.events.heap_store").inc(Events.HeapStores);
  R.counter("tracer.events.local_load").inc(Events.LocalLoads);
  R.counter("tracer.events.local_store").inc(Events.LocalStores);
  R.counter("tracer.events.loop_start").inc(Events.LoopStarts);
  R.counter("tracer.events.loop_iter").inc(Events.LoopIters);
  R.counter("tracer.events.loop_end").inc(Events.LoopEnds);
  R.counter("tracer.events.return").inc(Events.Returns);
  R.counter("tracer.events.read_stats").inc(Events.ReadStats);
  StlStats Sum;
  for (const StlStats &S : Stats) {
    Sum.Threads += S.Threads;
    Sum.Entries += S.Entries;
    Sum.UntracedEntries += S.UntracedEntries;
    Sum.OverflowThreads += S.OverflowThreads;
    Sum.CritArcsPrev += S.CritArcsPrev;
    Sum.CritArcsEarlier += S.CritArcsEarlier;
    Sum.CritLenPrev += S.CritLenPrev;
    Sum.CritLenEarlier += S.CritLenEarlier;
  }
  R.counter("tracer.threads").inc(Sum.Threads);
  R.counter("tracer.entries").inc(Sum.Entries);
  R.counter("tracer.untraced_entries").inc(Sum.UntracedEntries);
  R.counter("tracer.overflow_threads").inc(Sum.OverflowThreads);
  R.counter("tracer.crit_arcs_prev").inc(Sum.CritArcsPrev);
  R.counter("tracer.crit_arcs_earlier").inc(Sum.CritArcsEarlier);
  R.counter("tracer.crit_len_prev").inc(Sum.CritLenPrev);
  R.counter("tracer.crit_len_earlier").inc(Sum.CritLenEarlier);
  R.gauge("tracer.peak_banks").peak(PeakBanks);
  R.gauge("tracer.peak_local_slots").peak(PeakSlots);
  R.gauge("tracer.peak_nest").peak(PeakNest);
  R.histogram("tracer.thread_size_cycles").merge(ThreadSizeCycles);
}

std::uint32_t TraceEngine::tracedCount() const {
  std::uint32_t N = 0;
  for (const ComparatorBank &B : Active)
    N += B.Traced;
  return N;
}

ComparatorBank *TraceEngine::findTraced(std::uint32_t LoopId) {
  for (auto It = Active.rbegin(); It != Active.rend(); ++It)
    if (It->LoopId == LoopId)
      return It->Traced ? &*It : nullptr;
  return nullptr;
}

void TraceEngine::checkLoadArc(std::uint64_t StoreTs, std::uint64_t Cycle,
                               std::int32_t Pc) {
  if (StoreTs == NoTimestamp)
    return;
  for (ComparatorBank &Bank : Active) {
    if (!Bank.Traced)
      continue;
    // Same-thread stores never create inter-thread arcs.
    if (StoreTs >= Bank.CurThreadStart)
      continue;
    // Stores before this STL entry are not loop-carried dependencies.
    if (StoreTs < Bank.EntryTime)
      continue;
    std::uint64_t Len = Cycle - StoreTs;
    if (StoreTs >= Bank.PrevThreadStart) {
      if (Len < Bank.MinArcPrev) {
        Bank.MinArcPrev = Len;
        Bank.MinArcPrevPc = Pc;
      }
    } else if (Len < Bank.MinArcEarlier) {
      Bank.MinArcEarlier = Len;
      Bank.MinArcEarlierPc = Pc;
    }
  }
}

std::uint32_t TraceEngine::onHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                                      std::int32_t Pc) {
  ++Events.HeapLoads;
  LastEventTime = Cycle;
  if (Active.empty())
    return 0;
  // Dependency arc identification against the store timestamp history.
  checkLoadArc(HeapTs.lookup(Addr), Cycle, Pc);
  // Overflow analysis: was this line already part of some thread's
  // speculative load state?
  std::uint64_t OldLineTs = LoadLineTs.exchange(Addr, Cycle);
  for (ComparatorBank &Bank : Active) {
    if (!Bank.Traced)
      continue;
    if (OldLineTs == NoTimestamp || OldLineTs < Bank.CurThreadStart) {
      ++Bank.NewLoadLines;
      if (Bank.NewLoadLines > Cfg.SpecLoadLines)
        Bank.Overflowed = true;
    }
  }
  return 0;
}

std::uint32_t TraceEngine::onHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                                       std::int32_t Pc) {
  (void)Pc;
  ++Events.HeapStores;
  LastEventTime = Cycle;
  if (Active.empty()) {
    // Still record history: a loop entered shortly after can see stores
    // that preceded it (they are filtered by EntryTime anyway).
    HeapTs.recordStore(Addr, Cycle);
    return 0;
  }
  HeapTs.recordStore(Addr, Cycle);
  std::uint64_t OldLineTs = StoreLineTs.exchange(Addr, Cycle);
  for (ComparatorBank &Bank : Active) {
    if (!Bank.Traced)
      continue;
    if (OldLineTs == NoTimestamp || OldLineTs < Bank.CurThreadStart) {
      ++Bank.NewStoreLines;
      if (Bank.NewStoreLines > Cfg.SpecStoreLines)
        Bank.Overflowed = true;
    }
  }
  return 0;
}

std::uint32_t TraceEngine::onLocalLoad(std::uint64_t Activation,
                                       std::uint16_t Reg, std::uint64_t Cycle,
                                       std::int32_t Pc) {
  ++Events.LocalLoads;
  LastEventTime = Cycle;
  // Resolve (activation, register) to the owning reservation, innermost
  // first.
  for (auto It = Active.rbegin(); It != Active.rend(); ++It) {
    if (It->Activation != Activation)
      continue;
    for (const auto &[R, Slot] : It->RegSlots) {
      if (R == Reg) {
        checkLoadArc(LocalTs.read(Slot), Cycle, Pc);
        return 0;
      }
    }
  }
  return 0;
}

std::uint32_t TraceEngine::onLocalStore(std::uint64_t Activation,
                                        std::uint16_t Reg, std::uint64_t Cycle,
                                        std::int32_t Pc) {
  (void)Pc;
  ++Events.LocalStores;
  LastEventTime = Cycle;
  for (auto It = Active.rbegin(); It != Active.rend(); ++It) {
    if (It->Activation != Activation)
      continue;
    for (const auto &[R, Slot] : It->RegSlots) {
      if (R == Reg) {
        LocalTs.write(Slot, Cycle);
        return 0;
      }
    }
  }
  return 0;
}

std::uint32_t TraceEngine::onLoopStart(std::uint32_t LoopId,
                                       std::uint64_t Activation,
                                       std::uint64_t Cycle) {
  ++Events.LoopStarts;
  LastEventTime = Cycle;
  assert(LoopId < Loops.size() && "unknown loop id");
  bool Disabled = isDisabled(LoopId);
  int Parent = Active.empty() ? -1 : static_cast<int>(Active.back().LoopId);
  ++ParentVotes[LoopId][Parent];

  ComparatorBank Bank;
  Bank.LoopId = LoopId;
  Bank.Activation = Activation;

  bool WantTrace = tracedCount() < Cfg.ComparatorBanks && !Disabled;

  if (WantTrace) {
    // Reserve slots for annotated locals not already tracked by an
    // enclosing reservation of the same activation.
    std::vector<std::uint16_t> NewLocals;
    for (std::uint16_t Reg : Loops[LoopId].AnnotatedLocals) {
      bool Covered = false;
      for (const ComparatorBank &B : Active) {
        if (B.Activation != Activation)
          continue;
        for (const auto &[R, Slot] : B.RegSlots)
          Covered |= R == Reg;
      }
      if (!Covered)
        NewLocals.push_back(Reg);
    }
    int Base = LocalTs.reserve(static_cast<std::uint32_t>(NewLocals.size()));
    if (Base < 0) {
      WantTrace = false; // no room for local variable timestamps
    } else {
      Bank.SlotBase = Base;
      Bank.SlotCount = static_cast<std::uint32_t>(NewLocals.size());
      for (std::uint32_t S = 0; S < NewLocals.size(); ++S)
        Bank.RegSlots.emplace_back(NewLocals[S],
                                   static_cast<std::uint32_t>(Base) + S);
      PeakSlots = std::max(PeakSlots, LocalTs.used());
    }
  }

  Bank.Traced = WantTrace;
  if (WantTrace) {
    Bank.EntryTime = Bank.CurThreadStart = Bank.PrevThreadStart = Cycle;
    ++Stats[LoopId].Entries;
    if (TL)
      TL->begin(Track, "bank#" + std::to_string(LoopId), Cycle);
  } else {
    ++Stats[LoopId].UntracedEntries;
  }
  Active.push_back(std::move(Bank));
  PeakBanks = std::max(PeakBanks, tracedCount());
  PeakNest = std::max(PeakNest, static_cast<std::uint32_t>(Active.size()));
  return Disabled ? 0 : extraCost(Cfg.SLoopCost);
}

void TraceEngine::finalizeThread(ComparatorBank &Bank) {
  StlStats &S = Stats[Bank.LoopId];
  if (Bank.MinArcPrev != ComparatorBank::NoArc) {
    ++S.CritArcsPrev;
    S.CritLenPrev += Bank.MinArcPrev;
    if (ExtendedPcBinning) {
      PcBinStats &Bin = S.PcBins[Bank.MinArcPrevPc];
      ++Bin.CriticalArcs;
      Bin.AccumulatedLength += Bank.MinArcPrev;
    }
  }
  if (Bank.MinArcEarlier != ComparatorBank::NoArc) {
    ++S.CritArcsEarlier;
    S.CritLenEarlier += Bank.MinArcEarlier;
    if (ExtendedPcBinning) {
      PcBinStats &Bin = S.PcBins[Bank.MinArcEarlierPc];
      ++Bin.CriticalArcs;
      Bin.AccumulatedLength += Bank.MinArcEarlier;
    }
  }
  ++S.Threads;
  S.MaxLoadLines = std::max(S.MaxLoadLines, Bank.NewLoadLines);
  S.MaxStoreLines = std::max(S.MaxStoreLines, Bank.NewStoreLines);
  if (Bank.Overflowed)
    ++S.OverflowThreads;

  Bank.MinArcPrev = Bank.MinArcEarlier = ComparatorBank::NoArc;
  Bank.MinArcPrevPc = Bank.MinArcEarlierPc = -1;
  Bank.NewLoadLines = Bank.NewStoreLines = 0;
  Bank.Overflowed = false;
}

std::uint32_t TraceEngine::onLoopIter(std::uint32_t LoopId,
                                      std::uint64_t Cycle) {
  ++Events.LoopIters;
  LastEventTime = Cycle;
  ComparatorBank *Bank = findTraced(LoopId);
  if (!Bank)
    return isDisabled(LoopId) ? 0 : extraCost(Cfg.EoiCost);
  ThreadSizeCycles.record(Cycle - Bank->CurThreadStart);
  finalizeThread(*Bank);
  Bank->PrevThreadStart = Bank->CurThreadStart;
  Bank->CurThreadStart = Cycle;
  return extraCost(Cfg.EoiCost);
}

void TraceEngine::closeBank(ComparatorBank &Bank, std::uint64_t Cycle) {
  if (Bank.Traced) {
    if (Cycle >= Bank.CurThreadStart)
      ThreadSizeCycles.record(Cycle - Bank.CurThreadStart);
    finalizeThread(Bank);
    Stats[Bank.LoopId].Cycles += Cycle - Bank.EntryTime;
    if (TL)
      TL->end(Track, Cycle);
  }
  if (Bank.SlotBase >= 0)
    LocalTs.release(static_cast<std::uint32_t>(Bank.SlotBase),
                    Bank.SlotCount);
}

std::uint32_t TraceEngine::onLoopEnd(std::uint32_t LoopId,
                                     std::uint64_t Cycle) {
  ++Events.LoopEnds;
  LastEventTime = Cycle;
  // A matching sloop may never have fired (e.g. the loop was entered before
  // tracing was switched on); in that case the eloop is ignored rather than
  // tearing down enclosing banks.
  bool OnStack = false;
  for (const ComparatorBank &B : Active)
    OnStack |= B.LoopId == LoopId;
  if (!OnStack)
    return isDisabled(LoopId) ? 0 : extraCost(Cfg.ELoopCost);
  // Pop until this loop's entry is closed; any entries above it were left
  // open by non-structured exits and are closed as well.
  while (!Active.empty()) {
    ComparatorBank Bank = std::move(Active.back());
    Active.pop_back();
    closeBank(Bank, Cycle);
    if (Bank.LoopId == LoopId)
      break;
  }
  return isDisabled(LoopId) ? 0 : extraCost(Cfg.ELoopCost);
}

void TraceEngine::onReturn(std::uint64_t Activation) {
  ++Events.Returns;
  while (!Active.empty() && Active.back().Activation == Activation) {
    ComparatorBank Bank = std::move(Active.back());
    Active.pop_back();
    closeBank(Bank, LastEventTime);
  }
}

std::uint32_t TraceEngine::onReadStats(std::uint32_t LoopId,
                                       std::uint64_t Cycle) {
  ++Events.ReadStats;
  LastEventTime = Cycle;
  return isDisabled(LoopId) ? 0 : extraCost(Cfg.ReadStatsCost);
}

std::vector<int> TraceEngine::dynamicParents() const {
  std::vector<int> Parents(Stats.size(), -1);
  for (const auto &[LoopId, Votes] : ParentVotes) {
    int Best = -1;
    std::uint64_t BestVotes = 0;
    for (const auto &[Parent, Count] : Votes) {
      if (Count > BestVotes) {
        Best = Parent;
        BestVotes = Count;
      }
    }
    Parents[LoopId] = Best;
  }
  // Discard any edges that would form a cycle (possible when a loop is
  // observed in several contexts): walk up from each node, cutting the edge
  // that closes a loop.
  for (std::uint32_t L = 0; L < Parents.size(); ++L) {
    std::vector<bool> Seen(Parents.size(), false);
    std::uint32_t Cur = L;
    Seen[L] = true;
    while (Parents[Cur] >= 0) {
      std::uint32_t P = static_cast<std::uint32_t>(Parents[Cur]);
      if (Seen[P]) {
        Parents[Cur] = -1;
        break;
      }
      Seen[P] = true;
      Cur = P;
    }
  }
  return Parents;
}
