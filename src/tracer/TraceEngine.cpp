//===- tracer/TraceEngine.cpp ---------------------------------------------==//

#include "tracer/TraceEngine.h"

#include <algorithm>
#include <cassert>

using namespace jrpm;
using namespace jrpm::tracer;

TraceEngine::TraceEngine(const sim::HydraConfig &Cfg,
                         std::vector<LoopTraceInfo> LoopInfos,
                         bool ExtendedPcBinning)
    : Cfg(Cfg), Loops(std::move(LoopInfos)),
      ExtendedPcBinning(ExtendedPcBinning),
      HeapTs(Cfg.HeapTimestampFifoLines, Cfg.WordsPerLine),
      LoadLineTs(Cfg.LoadTimestampEntries, Cfg.WordsPerLine,
                 Cfg.OverflowTableAssoc),
      StoreLineTs(Cfg.StoreTimestampEntries, Cfg.WordsPerLine,
                  Cfg.OverflowTableAssoc),
      LocalTs(Cfg.LocalVarSlots), SlotIndex(Cfg.LocalVarSlots),
      Stats(Loops.size()),
      PcBinAcc(Loops.size()), ParentVotes(Loops.size()) {
  Traced.init(Cfg.ComparatorBanks);
  RegStack.reserve(Cfg.LocalVarSlots);
  // Publish the deferred-eoi opt-in for the default (no dynamic disabling)
  // configuration.
  setDisableLoopAfterThreads(0);
}

void TraceEngine::TracedBanks::init(std::size_t Capacity) {
  EntryTime.resize(Capacity);
  CurStart.resize(Capacity);
  PrevStart.resize(Capacity);
  MinArcPrev.resize(Capacity);
  MinArcEarlier.resize(Capacity);
  MinArcPrevPc.resize(Capacity);
  MinArcEarlierPc.resize(Capacity);
  NewLoadLines.resize(Capacity);
  NewStoreLines.resize(Capacity);
  Size = 0;
}

void TraceEngine::TracedBanks::push(std::uint64_t Cycle) {
  const std::size_t I = Size++;
  EntryTime[I] = Cycle;
  CurStart[I] = Cycle;
  PrevStart[I] = Cycle;
  MinArcPrev[I] = NoArc;
  MinArcEarlier[I] = NoArc;
  MinArcPrevPc[I] = -1;
  MinArcEarlierPc[I] = -1;
  NewLoadLines[I] = 0;
  NewStoreLines[I] = 0;
}

void TraceEngine::TracedBanks::resetThread(std::size_t Idx) {
  MinArcPrev[Idx] = NoArc;
  MinArcEarlier[Idx] = NoArc;
  MinArcPrevPc[Idx] = -1;
  MinArcEarlierPc[Idx] = -1;
  NewLoadLines[Idx] = 0;
  NewStoreLines[Idx] = 0;
}

void TraceEngine::exportMetrics(metrics::Registry &R) const {
  assert(Block.empty() && "exporting metrics with undrained batched events");
  R.counter("tracer.events.heap_load").inc(Events.HeapLoads);
  R.counter("tracer.events.heap_store").inc(Events.HeapStores);
  R.counter("tracer.events.local_load").inc(Events.LocalLoads);
  R.counter("tracer.events.local_store").inc(Events.LocalStores);
  R.counter("tracer.events.loop_start").inc(Events.LoopStarts);
  R.counter("tracer.events.loop_iter").inc(Events.LoopIters);
  R.counter("tracer.events.loop_end").inc(Events.LoopEnds);
  R.counter("tracer.events.return").inc(Events.Returns);
  R.counter("tracer.events.read_stats").inc(Events.ReadStats);
  StlStats Sum;
  for (const StlStats &S : Stats) {
    Sum.Threads += S.Threads;
    Sum.Entries += S.Entries;
    Sum.UntracedEntries += S.UntracedEntries;
    Sum.OverflowThreads += S.OverflowThreads;
    Sum.CritArcsPrev += S.CritArcsPrev;
    Sum.CritArcsEarlier += S.CritArcsEarlier;
    Sum.CritLenPrev += S.CritLenPrev;
    Sum.CritLenEarlier += S.CritLenEarlier;
  }
  R.counter("tracer.threads").inc(Sum.Threads);
  R.counter("tracer.entries").inc(Sum.Entries);
  R.counter("tracer.untraced_entries").inc(Sum.UntracedEntries);
  R.counter("tracer.overflow_threads").inc(Sum.OverflowThreads);
  R.counter("tracer.crit_arcs_prev").inc(Sum.CritArcsPrev);
  R.counter("tracer.crit_arcs_earlier").inc(Sum.CritArcsEarlier);
  R.counter("tracer.crit_len_prev").inc(Sum.CritLenPrev);
  R.counter("tracer.crit_len_earlier").inc(Sum.CritLenEarlier);
  // Store-occupancy observability of the flat timestamp tables. Pure
  // functions of the event stream like everything above, so live and
  // replayed exports stay byte-identical.
  R.counter("tracer.heap_ts.evictions").inc(HeapTs.evictions());
  R.counter("tracer.line_table.evictions")
      .inc(LoadLineTs.evictions() + StoreLineTs.evictions());
  R.counter("tracer.local_ts.release_errors").inc(SlotReleaseErrors);
  R.gauge("tracer.heap_ts.peak_occupancy").peak(HeapTs.peakOccupancy());
  R.gauge("tracer.line_table.peak_occupancy")
      .peak(LoadLineTs.peakOccupancy() + StoreLineTs.peakOccupancy());
  R.gauge("tracer.peak_banks").peak(PeakBanks);
  R.gauge("tracer.peak_local_slots").peak(PeakSlots);
  R.gauge("tracer.peak_nest").peak(PeakNest);
  R.histogram("tracer.thread_size_cycles").merge(ThreadSizeCycles);
}

TraceEngine::BankFrame *TraceEngine::findTraced(std::uint32_t LoopId) {
  for (auto It = Active.rbegin(); It != Active.rend(); ++It)
    if (It->LoopId == LoopId)
      return It->Traced ? &*It : nullptr;
  return nullptr;
}

void TraceEngine::checkLoadArcSweep(std::uint64_t StoreTs, std::uint64_t Cycle,
                                    std::int32_t Pc) {
  // The inline gate already rejected NoTimestamp and stores outside every
  // bank's comparison window. One pass over the contiguous per-bank
  // timestamp arrays; every bank updates via conditional moves, exactly
  // Figure 7's parallel comparison.
  const std::size_t N = Traced.size();
  const std::uint64_t *Entry = Traced.EntryTime.data();
  const std::uint64_t *Cur = Traced.CurStart.data();
  const std::uint64_t *Prev = Traced.PrevStart.data();
  std::uint64_t *MinPrev = Traced.MinArcPrev.data();
  std::uint64_t *MinEarlier = Traced.MinArcEarlier.data();
  std::int32_t *PrevPc = Traced.MinArcPrevPc.data();
  std::int32_t *EarlierPc = Traced.MinArcEarlierPc.data();
  const std::uint64_t Len = Cycle - StoreTs;
  for (std::size_t I = 0; I < N; ++I) {
    // Same-thread stores never create inter-thread arcs; stores before the
    // STL entry are not loop-carried dependencies.
    bool InWindow = StoreTs < Cur[I] && StoreTs >= Entry[I];
    bool IsPrev = StoreTs >= Prev[I];
    bool TakePrev = InWindow && IsPrev && Len < MinPrev[I];
    bool TakeEarlier = InWindow && !IsPrev && Len < MinEarlier[I];
    MinPrev[I] = TakePrev ? Len : MinPrev[I];
    PrevPc[I] = TakePrev ? Pc : PrevPc[I];
    MinEarlier[I] = TakeEarlier ? Len : MinEarlier[I];
    EarlierPc[I] = TakeEarlier ? Pc : EarlierPc[I];
  }
}

void TraceEngine::handleHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                                 std::int32_t Pc) {
  ++Events.HeapLoads;
  LastEventTime = Cycle;
  if (Active.empty())
    return;
  // Dependency arc identification against the store timestamp history.
  checkLoadArc(HeapTs.lookup(Addr), Cycle, Pc);
  // Overflow analysis: was this line already part of some thread's
  // speculative load state? A line last touched at or past every bank's
  // current thread start is new to no bank — skip the tally sweep.
  std::uint64_t OldLineTs = LoadLineTs.exchange(Addr, Cycle);
  const bool NoTs = OldLineTs == NoTimestamp;
  if (!NoTs && OldLineTs >= MaxCurStart)
    return;
  const std::size_t N = Traced.size();
  const std::uint64_t *Cur = Traced.CurStart.data();
  std::uint64_t *NewLines = Traced.NewLoadLines.data();
  for (std::size_t I = 0; I < N; ++I)
    NewLines[I] += NoTs || OldLineTs < Cur[I];
}

void TraceEngine::handleHeapStore(std::uint32_t Addr, std::uint64_t Cycle) {
  ++Events.HeapStores;
  LastEventTime = Cycle;
  // Record history even outside loops: a loop entered shortly after can
  // see stores that preceded it (they are filtered by EntryTime anyway).
  HeapTs.recordStore(Addr, Cycle);
  if (Active.empty())
    return;
  std::uint64_t OldLineTs = StoreLineTs.exchange(Addr, Cycle);
  const bool NoTs = OldLineTs == NoTimestamp;
  if (!NoTs && OldLineTs >= MaxCurStart)
    return;
  const std::size_t N = Traced.size();
  const std::uint64_t *Cur = Traced.CurStart.data();
  std::uint64_t *NewLines = Traced.NewStoreLines.data();
  for (std::size_t I = 0; I < N; ++I)
    NewLines[I] += NoTs || OldLineTs < Cur[I];
}

void TraceEngine::handleLocalLoad(std::uint64_t Activation, std::uint16_t Reg,
                                  std::uint64_t Cycle, std::int32_t Pc) {
  ++Events.LocalLoads;
  LastEventTime = Cycle;
  // Resolve (activation, register) to the owning reservation — unique
  // among the live banks, so the flat index answers in one probe.
  const std::int32_t Slot = SlotIndex.find(Activation, Reg);
  if (Slot >= 0)
    checkLoadArc(LocalTs.read(static_cast<std::uint32_t>(Slot)), Cycle, Pc);
}

void TraceEngine::handleLocalStore(std::uint64_t Activation, std::uint16_t Reg,
                                   std::uint64_t Cycle) {
  ++Events.LocalStores;
  LastEventTime = Cycle;
  const std::int32_t Slot = SlotIndex.find(Activation, Reg);
  if (Slot >= 0)
    LocalTs.write(static_cast<std::uint32_t>(Slot), Cycle);
}

void TraceEngine::drainBlock() {
  const interp::BatchedEvent *E = Block.data();
  const std::uint32_t N = Block.size();
  if (N == 0)
    return;
  // Stack-shaping control events are never enqueued, so the bank stack,
  // the traced SoA stack, and every slot reservation are invariants of one
  // drain. Deferred eois only restart a thread window on an existing bank
  // — they never change the population — so the sweep can still specialize
  // on it once per block instead of re-deriving it per event; every
  // specialization is observably identical to feeding the events through
  // the per-event handlers.
  if (Active.empty())
    drainNoBanks(E, N);
  else if (Traced.size() == 1)
    drainOneBank(E, N);
  else if (Traced.size() > 1)
    drainManyBanks(E, N);
  else
    drainGeneric(E, N);
  Block.clear();
}

void TraceEngine::drainNoBanks(const interp::BatchedEvent *E,
                               std::uint32_t N) {
  // No comparator banks: memory events only tick counters and feed the
  // heap store history (a loop entered shortly after can still see these
  // stores; they are filtered by EntryTime anyway). Deferred eois cannot
  // match a traced bank — there are none — so they too are pure counter
  // ticks here.
  std::uint64_t HL = 0, HS = 0, LL = 0, LS = 0, LI = 0;
  std::uint64_t Last = LastEventTime;
  for (std::uint32_t I = 0; I < N; ++I) {
    switch (E[I].Tag) {
    case interp::EventTag::HeapLoad:
      ++HL;
      Last = E[I].Cycle;
      break;
    case interp::EventTag::HeapStore:
      ++HS;
      HeapTs.recordStore(E[I].Addr, E[I].Cycle);
      Last = E[I].Cycle;
      break;
    case interp::EventTag::LocalLoad:
      ++LL;
      Last = E[I].Cycle;
      break;
    case interp::EventTag::LocalStore:
      ++LS;
      Last = E[I].Cycle;
      break;
    case interp::EventTag::LoopIter:
      ++LI;
      Last = E[I].Cycle;
      break;
    case interp::EventTag::CallSite:
    case interp::EventTag::CallReturn:
      // Call boundaries are ignored by the bank model (the MLS coverage
      // sink consumes them on the per-event path).
      break;
    }
  }
  Events.HeapLoads += HL;
  Events.HeapStores += HS;
  Events.LocalLoads += LL;
  Events.LocalStores += LS;
  Events.LoopIters += LI;
  LastEventTime = Last;
}

void TraceEngine::drainOneBank(const interp::BatchedEvent *E,
                               std::uint32_t N) {
  // Exactly one traced bank. Its comparator state lives in registers for
  // the whole sweep; local events resolve through the flat slot index
  // (only traced banks own slots, so every live reservation is this
  // bank's).
  const std::uint64_t Entry0 = Traced.EntryTime[0];
  std::uint64_t Cur0 = Traced.CurStart[0];
  std::uint64_t Prev0 = Traced.PrevStart[0];
  std::uint64_t MinPrev0 = Traced.MinArcPrev[0];
  std::uint64_t MinEarlier0 = Traced.MinArcEarlier[0];
  std::int32_t PrevPc0 = Traced.MinArcPrevPc[0];
  std::int32_t EarlierPc0 = Traced.MinArcEarlierPc[0];
  std::uint64_t NewLoad0 = Traced.NewLoadLines[0];
  std::uint64_t NewStore0 = Traced.NewStoreLines[0];
  std::uint64_t HL = 0, HS = 0, LL = 0, LS = 0, LI = 0;
  std::uint64_t Last = LastEventTime;

  for (std::uint32_t I = 0; I < N; ++I) {
    const interp::BatchedEvent &Ev = E[I];
    switch (Ev.Tag) {
    case interp::EventTag::HeapLoad: {
      ++HL;
      Last = Ev.Cycle;
      const std::uint64_t StoreTs = HeapTs.lookup(Ev.Addr);
      if (StoreTs != NoTimestamp && StoreTs < Cur0 && StoreTs >= Entry0) {
        const std::uint64_t Len = Ev.Cycle - StoreTs;
        if (StoreTs >= Prev0) {
          if (Len < MinPrev0) {
            MinPrev0 = Len;
            PrevPc0 = Ev.Pc;
          }
        } else if (Len < MinEarlier0) {
          MinEarlier0 = Len;
          EarlierPc0 = Ev.Pc;
        }
      }
      const std::uint64_t OldLineTs = LoadLineTs.exchange(Ev.Addr, Ev.Cycle);
      NewLoad0 += OldLineTs == NoTimestamp || OldLineTs < Cur0;
      break;
    }
    case interp::EventTag::HeapStore: {
      ++HS;
      Last = Ev.Cycle;
      HeapTs.recordStore(Ev.Addr, Ev.Cycle);
      const std::uint64_t OldLineTs = StoreLineTs.exchange(Ev.Addr, Ev.Cycle);
      NewStore0 += OldLineTs == NoTimestamp || OldLineTs < Cur0;
      break;
    }
    case interp::EventTag::LocalLoad: {
      ++LL;
      Last = Ev.Cycle;
      const std::int32_t Slot = SlotIndex.find(Ev.Activation, Ev.Reg);
      if (Slot < 0)
        break;
      const std::uint64_t StoreTs =
          LocalTs.read(static_cast<std::uint32_t>(Slot));
      if (StoreTs != NoTimestamp && StoreTs < Cur0 && StoreTs >= Entry0) {
        const std::uint64_t Len = Ev.Cycle - StoreTs;
        if (StoreTs >= Prev0) {
          if (Len < MinPrev0) {
            MinPrev0 = Len;
            PrevPc0 = Ev.Pc;
          }
        } else if (Len < MinEarlier0) {
          MinEarlier0 = Len;
          EarlierPc0 = Ev.Pc;
        }
      }
      break;
    }
    case interp::EventTag::LocalStore: {
      ++LS;
      Last = Ev.Cycle;
      const std::int32_t Slot = SlotIndex.find(Ev.Activation, Ev.Reg);
      if (Slot >= 0)
        LocalTs.write(static_cast<std::uint32_t>(Slot), Ev.Cycle);
      break;
    }
    case interp::EventTag::LoopIter: {
      ++LI;
      Last = Ev.Cycle;
      // findTraced semantics: topmost frame with this loop id decides; an
      // untraced match means no bank iterates.
      const BankFrame *F = nullptr;
      for (auto It = Active.rbegin(); It != Active.rend(); ++It) {
        if (It->LoopId == Ev.Addr) {
          F = &*It;
          break;
        }
      }
      if (F && F->Traced) {
        // F is necessarily Owner: there is exactly one traced bank. The
        // thread boundary folds the hoisted comparator state into the
        // per-loop stats and restarts the window in registers.
        ThreadSizeCycles.record(Ev.Cycle - Cur0);
        foldThread(F->LoopId, MinPrev0, MinEarlier0, PrevPc0, EarlierPc0,
                   NewLoad0, NewStore0);
        MinPrev0 = NoArc;
        MinEarlier0 = NoArc;
        PrevPc0 = -1;
        EarlierPc0 = -1;
        NewLoad0 = 0;
        NewStore0 = 0;
        Prev0 = Cur0;
        Cur0 = Ev.Cycle;
      }
      break;
    }
    case interp::EventTag::CallSite:
    case interp::EventTag::CallReturn:
      break;
    }
  }

  Traced.CurStart[0] = Cur0;
  Traced.PrevStart[0] = Prev0;
  Traced.MinArcPrev[0] = MinPrev0;
  Traced.MinArcEarlier[0] = MinEarlier0;
  Traced.MinArcPrevPc[0] = PrevPc0;
  Traced.MinArcEarlierPc[0] = EarlierPc0;
  Traced.NewLoadLines[0] = NewLoad0;
  Traced.NewStoreLines[0] = NewStore0;
  Events.HeapLoads += HL;
  Events.HeapStores += HS;
  Events.LocalLoads += LL;
  Events.LocalStores += LS;
  Events.LoopIters += LI;
  LastEventTime = Last;
  recomputeWindow();
}

void TraceEngine::drainManyBanks(const interp::BatchedEvent *E,
                                 std::uint32_t N) {
  // Two or more traced banks — nested speculative loops, the bulk of the
  // registry streams. All comparator state stays behind hoisted SoA
  // pointers; the comparison-window aggregates live in locals and are only
  // refreshed at the (rarer) deferred-eoi thread boundaries, so the
  // per-load gate is two register compares. The bank sweeps themselves are
  // the same branch-light conditional-move passes as checkLoadArcSweep.
  const std::size_t NB = Traced.size();
  const std::uint64_t *Entry = Traced.EntryTime.data();
  std::uint64_t *Cur = Traced.CurStart.data();
  std::uint64_t *Prev = Traced.PrevStart.data();
  std::uint64_t *MinPrev = Traced.MinArcPrev.data();
  std::uint64_t *MinEarlier = Traced.MinArcEarlier.data();
  std::int32_t *PrevPc = Traced.MinArcPrevPc.data();
  std::int32_t *EarlierPc = Traced.MinArcEarlierPc.data();
  std::uint64_t *NewLoad = Traced.NewLoadLines.data();
  std::uint64_t *NewStore = Traced.NewStoreLines.data();
  std::uint64_t MaxCur = MaxCurStart;
  std::uint64_t MinEntry = MinEntryTime;
  std::uint64_t HL = 0, HS = 0, LL = 0, LS = 0, LI = 0;
  std::uint64_t Last = LastEventTime;

  for (std::uint32_t I = 0; I < N; ++I) {
    const interp::BatchedEvent &Ev = E[I];
    switch (Ev.Tag) {
    case interp::EventTag::HeapLoad: {
      ++HL;
      Last = Ev.Cycle;
      const std::uint64_t StoreTs = HeapTs.lookup(Ev.Addr);
      if (StoreTs != NoTimestamp && StoreTs < MaxCur && StoreTs >= MinEntry) {
        const std::uint64_t Len = Ev.Cycle - StoreTs;
        for (std::size_t B = 0; B < NB; ++B) {
          bool InWindow = StoreTs < Cur[B] && StoreTs >= Entry[B];
          bool IsPrev = StoreTs >= Prev[B];
          bool TakePrev = InWindow && IsPrev && Len < MinPrev[B];
          bool TakeEarlier = InWindow && !IsPrev && Len < MinEarlier[B];
          MinPrev[B] = TakePrev ? Len : MinPrev[B];
          PrevPc[B] = TakePrev ? Ev.Pc : PrevPc[B];
          MinEarlier[B] = TakeEarlier ? Len : MinEarlier[B];
          EarlierPc[B] = TakeEarlier ? Ev.Pc : EarlierPc[B];
        }
      }
      const std::uint64_t OldLineTs = LoadLineTs.exchange(Ev.Addr, Ev.Cycle);
      const bool NoTs = OldLineTs == NoTimestamp;
      if (NoTs || OldLineTs < MaxCur)
        for (std::size_t B = 0; B < NB; ++B)
          NewLoad[B] += NoTs || OldLineTs < Cur[B];
      break;
    }
    case interp::EventTag::HeapStore: {
      ++HS;
      Last = Ev.Cycle;
      HeapTs.recordStore(Ev.Addr, Ev.Cycle);
      const std::uint64_t OldLineTs = StoreLineTs.exchange(Ev.Addr, Ev.Cycle);
      const bool NoTs = OldLineTs == NoTimestamp;
      if (NoTs || OldLineTs < MaxCur)
        for (std::size_t B = 0; B < NB; ++B)
          NewStore[B] += NoTs || OldLineTs < Cur[B];
      break;
    }
    case interp::EventTag::LocalLoad: {
      ++LL;
      Last = Ev.Cycle;
      const std::int32_t Slot = SlotIndex.find(Ev.Activation, Ev.Reg);
      if (Slot < 0)
        break;
      const std::uint64_t StoreTs =
          LocalTs.read(static_cast<std::uint32_t>(Slot));
      if (StoreTs != NoTimestamp && StoreTs < MaxCur && StoreTs >= MinEntry) {
        const std::uint64_t Len = Ev.Cycle - StoreTs;
        for (std::size_t B = 0; B < NB; ++B) {
          bool InWindow = StoreTs < Cur[B] && StoreTs >= Entry[B];
          bool IsPrev = StoreTs >= Prev[B];
          bool TakePrev = InWindow && IsPrev && Len < MinPrev[B];
          bool TakeEarlier = InWindow && !IsPrev && Len < MinEarlier[B];
          MinPrev[B] = TakePrev ? Len : MinPrev[B];
          PrevPc[B] = TakePrev ? Ev.Pc : PrevPc[B];
          MinEarlier[B] = TakeEarlier ? Len : MinEarlier[B];
          EarlierPc[B] = TakeEarlier ? Ev.Pc : EarlierPc[B];
        }
      }
      break;
    }
    case interp::EventTag::LocalStore: {
      ++LS;
      Last = Ev.Cycle;
      const std::int32_t Slot = SlotIndex.find(Ev.Activation, Ev.Reg);
      if (Slot >= 0)
        LocalTs.write(static_cast<std::uint32_t>(Slot), Ev.Cycle);
      break;
    }
    case interp::EventTag::LoopIter: {
      ++LI;
      Last = Ev.Cycle;
      // findTraced semantics: topmost frame with this loop id decides.
      const BankFrame *F = nullptr;
      for (auto It = Active.rbegin(); It != Active.rend(); ++It) {
        if (It->LoopId == Ev.Addr) {
          F = &*It;
          break;
        }
      }
      if (F && F->Traced) {
        const std::size_t Idx = static_cast<std::size_t>(F->TracedIdx);
        ThreadSizeCycles.record(Ev.Cycle - Cur[Idx]);
        foldThread(F->LoopId, MinPrev[Idx], MinEarlier[Idx], PrevPc[Idx],
                   EarlierPc[Idx], NewLoad[Idx], NewStore[Idx]);
        MinPrev[Idx] = NoArc;
        MinEarlier[Idx] = NoArc;
        PrevPc[Idx] = -1;
        EarlierPc[Idx] = -1;
        NewLoad[Idx] = 0;
        NewStore[Idx] = 0;
        Prev[Idx] = Cur[Idx];
        Cur[Idx] = Ev.Cycle;
        MaxCur = 0;
        MinEntry = ~std::uint64_t(0);
        for (std::size_t B = 0; B < NB; ++B) {
          MaxCur = std::max(MaxCur, Cur[B]);
          MinEntry = std::min(MinEntry, Entry[B]);
        }
      }
      break;
    }
    case interp::EventTag::CallSite:
    case interp::EventTag::CallReturn:
      break;
    }
  }

  Events.HeapLoads += HL;
  Events.HeapStores += HS;
  Events.LocalLoads += LL;
  Events.LocalStores += LS;
  Events.LoopIters += LI;
  LastEventTime = Last;
  MaxCurStart = MaxCur;
  MinEntryTime = MinEntry;
}

void TraceEngine::drainGeneric(const interp::BatchedEvent *E,
                               std::uint32_t N) {
  for (std::uint32_t I = 0; I < N; ++I) {
    switch (E[I].Tag) {
    case interp::EventTag::HeapLoad:
      handleHeapLoad(E[I].Addr, E[I].Cycle, E[I].Pc);
      break;
    case interp::EventTag::HeapStore:
      handleHeapStore(E[I].Addr, E[I].Cycle);
      break;
    case interp::EventTag::LocalLoad:
      handleLocalLoad(E[I].Activation, E[I].Reg, E[I].Cycle, E[I].Pc);
      break;
    case interp::EventTag::LocalStore:
      handleLocalStore(E[I].Activation, E[I].Reg, E[I].Cycle);
      break;
    case interp::EventTag::LoopIter:
      handleLoopIter(E[I].Addr, E[I].Cycle);
      break;
    case interp::EventTag::CallSite:
    case interp::EventTag::CallReturn:
      break;
    }
  }
}

std::uint32_t TraceEngine::onHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                                      std::int32_t Pc) {
  if (!Block.empty())
    drainBlock();
  handleHeapLoad(Addr, Cycle, Pc);
  return 0;
}

std::uint32_t TraceEngine::onHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                                       std::int32_t Pc) {
  (void)Pc;
  if (!Block.empty())
    drainBlock();
  handleHeapStore(Addr, Cycle);
  return 0;
}

std::uint32_t TraceEngine::onLocalLoad(std::uint64_t Activation,
                                       std::uint16_t Reg, std::uint64_t Cycle,
                                       std::int32_t Pc) {
  if (!Block.empty())
    drainBlock();
  handleLocalLoad(Activation, Reg, Cycle, Pc);
  return 0;
}

std::uint32_t TraceEngine::onLocalStore(std::uint64_t Activation,
                                        std::uint16_t Reg, std::uint64_t Cycle,
                                        std::int32_t Pc) {
  (void)Pc;
  if (!Block.empty())
    drainBlock();
  handleLocalStore(Activation, Reg, Cycle);
  return 0;
}

std::uint32_t TraceEngine::onLoopStart(std::uint32_t LoopId,
                                       std::uint64_t Activation,
                                       std::uint64_t Cycle) {
  if (!Block.empty())
    drainBlock();
  ++Events.LoopStarts;
  LastEventTime = Cycle;
  assert(LoopId < Loops.size() && "unknown loop id");
  bool Disabled = isDisabled(LoopId);
  int Parent = Active.empty() ? -1 : static_cast<int>(Active.back().LoopId);
  std::vector<std::uint64_t> &Votes = ParentVotes[LoopId];
  if (Votes.empty())
    Votes.assign(Loops.size() + 1, 0);
  ++Votes[static_cast<std::size_t>(Parent + 1)];

  BankFrame Bank;
  Bank.LoopId = LoopId;
  Bank.Activation = Activation;

  bool WantTrace = Traced.size() < Cfg.ComparatorBanks && !Disabled;

  if (WantTrace) {
    // Reserve slots for annotated locals not already tracked by an
    // enclosing reservation of the same activation — exactly the pairs
    // absent from the slot index.
    ScratchLocals.clear();
    for (std::uint16_t Reg : Loops[LoopId].AnnotatedLocals)
      if (SlotIndex.find(Activation, Reg) < 0)
        ScratchLocals.push_back(Reg);
    int Base =
        LocalTs.reserve(static_cast<std::uint32_t>(ScratchLocals.size()));
    if (Base < 0) {
      WantTrace = false; // no room for local variable timestamps
    } else {
      Bank.SlotBase = Base;
      Bank.SlotCount = static_cast<std::uint32_t>(ScratchLocals.size());
      RegStack.insert(RegStack.end(), ScratchLocals.begin(),
                      ScratchLocals.end());
      for (std::uint32_t K = 0; K < Bank.SlotCount; ++K)
        SlotIndex.insert(Activation, ScratchLocals[K],
                         static_cast<std::uint32_t>(Base) + K);
      assert(RegStack.size() == LocalTs.used() &&
             "register stack out of sync with the slot file");
      PeakSlots = std::max(PeakSlots, LocalTs.used());
    }
  }

  Bank.Traced = WantTrace;
  if (WantTrace) {
    Bank.TracedIdx = static_cast<int>(Traced.size());
    Traced.push(Cycle);
    recomputeWindow();
    ++Stats[LoopId].Entries;
    if (TL)
      TL->begin(Track, "bank#" + std::to_string(LoopId), Cycle);
  } else {
    ++Stats[LoopId].UntracedEntries;
  }
  Active.push_back(std::move(Bank));
  PeakBanks = std::max(PeakBanks, static_cast<std::uint32_t>(Traced.size()));
  PeakNest = std::max(PeakNest, static_cast<std::uint32_t>(Active.size()));
  return Disabled ? 0 : extraCost(Cfg.SLoopCost);
}

PcBinStats &TraceEngine::pcBin(std::uint32_t LoopId, std::int32_t Pc) {
  PcBinsDirty = true;
  std::vector<std::pair<std::int32_t, PcBinStats>> &V = PcBinAcc[LoopId];
  for (std::pair<std::int32_t, PcBinStats> &E : V)
    if (E.first == Pc)
      return E.second;
  V.emplace_back(Pc, PcBinStats{});
  return V.back().second;
}

void TraceEngine::flushPcBins() const {
  if (!PcBinsDirty)
    return;
  PcBinsDirty = false;
  for (std::size_t L = 0; L < PcBinAcc.size(); ++L) {
    for (const std::pair<std::int32_t, PcBinStats> &E : PcBinAcc[L]) {
      PcBinStats &Dst = Stats[L].PcBins[E.first];
      Dst.CriticalArcs += E.second.CriticalArcs;
      Dst.AccumulatedLength += E.second.AccumulatedLength;
    }
    PcBinAcc[L].clear();
  }
}

void TraceEngine::foldThread(std::uint32_t LoopId, std::uint64_t MinPrev,
                             std::uint64_t MinEarlier, std::int32_t PrevPc,
                             std::int32_t EarlierPc, std::uint64_t NewLoad,
                             std::uint64_t NewStore) {
  StlStats &S = Stats[LoopId];
  if (MinPrev != NoArc) {
    ++S.CritArcsPrev;
    S.CritLenPrev += MinPrev;
    if (ExtendedPcBinning) {
      PcBinStats &Bin = pcBin(LoopId, PrevPc);
      ++Bin.CriticalArcs;
      Bin.AccumulatedLength += MinPrev;
    }
  }
  if (MinEarlier != NoArc) {
    ++S.CritArcsEarlier;
    S.CritLenEarlier += MinEarlier;
    if (ExtendedPcBinning) {
      PcBinStats &Bin = pcBin(LoopId, EarlierPc);
      ++Bin.CriticalArcs;
      Bin.AccumulatedLength += MinEarlier;
    }
  }
  ++S.Threads;
  S.MaxLoadLines = std::max(S.MaxLoadLines, NewLoad);
  S.MaxStoreLines = std::max(S.MaxStoreLines, NewStore);
  // A thread overflowed iff its tallies ever exceeded the speculative
  // buffer capacities; the tallies only grow within a thread, so the final
  // values decide it and the hot sweeps carry no sticky flag.
  if (NewLoad > Cfg.SpecLoadLines || NewStore > Cfg.SpecStoreLines)
    ++S.OverflowThreads;
}

void TraceEngine::finalizeThread(std::uint32_t LoopId, std::size_t Idx) {
  foldThread(LoopId, Traced.MinArcPrev[Idx], Traced.MinArcEarlier[Idx],
             Traced.MinArcPrevPc[Idx], Traced.MinArcEarlierPc[Idx],
             Traced.NewLoadLines[Idx], Traced.NewStoreLines[Idx]);
  Traced.resetThread(Idx);
}

void TraceEngine::iterateBank(std::uint32_t LoopId, std::size_t Idx,
                              std::uint64_t Cycle) {
  ThreadSizeCycles.record(Cycle - Traced.CurStart[Idx]);
  finalizeThread(LoopId, Idx);
  Traced.PrevStart[Idx] = Traced.CurStart[Idx];
  Traced.CurStart[Idx] = Cycle;
  recomputeWindow();
}

void TraceEngine::handleLoopIter(std::uint32_t LoopId, std::uint64_t Cycle) {
  ++Events.LoopIters;
  LastEventTime = Cycle;
  BankFrame *Bank = findTraced(LoopId);
  if (Bank)
    iterateBank(LoopId, static_cast<std::size_t>(Bank->TracedIdx), Cycle);
}

std::uint32_t TraceEngine::onLoopIter(std::uint32_t LoopId,
                                      std::uint64_t Cycle) {
  if (!Block.empty())
    drainBlock();
  ++Events.LoopIters;
  LastEventTime = Cycle;
  BankFrame *Bank = findTraced(LoopId);
  if (!Bank)
    return isDisabled(LoopId) ? 0 : extraCost(Cfg.EoiCost);
  iterateBank(LoopId, static_cast<std::size_t>(Bank->TracedIdx), Cycle);
  return extraCost(Cfg.EoiCost);
}

void TraceEngine::closeBank(BankFrame &Bank, std::uint64_t Cycle) {
  if (Bank.Traced) {
    // Traced banks close strictly LIFO, so this bank's comparator state is
    // the top of the SoA stack.
    std::size_t Idx = static_cast<std::size_t>(Bank.TracedIdx);
    assert(Idx + 1 == Traced.size() && "non-LIFO traced bank close");
    if (Cycle >= Traced.CurStart[Idx])
      ThreadSizeCycles.record(Cycle - Traced.CurStart[Idx]);
    finalizeThread(Bank.LoopId, Idx);
    Stats[Bank.LoopId].Cycles += Cycle - Traced.EntryTime[Idx];
    Traced.pop();
    recomputeWindow();
    if (TL)
      TL->end(Track, Cycle);
  }
  if (Bank.SlotBase >= 0) {
    if (LocalTs.release(static_cast<std::uint32_t>(Bank.SlotBase),
                        Bank.SlotCount) == SlotReleaseResult::Ok) {
      const std::uint32_t Base = static_cast<std::uint32_t>(Bank.SlotBase);
      for (std::uint32_t K = 0; K < Bank.SlotCount; ++K)
        SlotIndex.erase(Bank.Activation, RegStack[Base + K]);
      RegStack.resize(static_cast<std::size_t>(Bank.SlotBase));
    } else {
      ++SlotReleaseErrors; // slot file and index untouched, RegStack too
    }
  }
}

std::uint32_t TraceEngine::onLoopEnd(std::uint32_t LoopId,
                                     std::uint64_t Cycle) {
  if (!Block.empty())
    drainBlock();
  ++Events.LoopEnds;
  LastEventTime = Cycle;
  // A matching sloop may never have fired (e.g. the loop was entered before
  // tracing was switched on); in that case the eloop is ignored rather than
  // tearing down enclosing banks.
  bool OnStack = false;
  for (const BankFrame &B : Active)
    OnStack |= B.LoopId == LoopId;
  if (!OnStack)
    return isDisabled(LoopId) ? 0 : extraCost(Cfg.ELoopCost);
  // Pop until this loop's entry is closed; any entries above it were left
  // open by non-structured exits and are closed as well.
  while (!Active.empty()) {
    BankFrame Bank = std::move(Active.back());
    Active.pop_back();
    closeBank(Bank, Cycle);
    if (Bank.LoopId == LoopId)
      break;
  }
  return isDisabled(LoopId) ? 0 : extraCost(Cfg.ELoopCost);
}

void TraceEngine::onReturn(std::uint64_t Activation) {
  if (!Block.empty())
    drainBlock();
  ++Events.Returns;
  while (!Active.empty() && Active.back().Activation == Activation) {
    BankFrame Bank = std::move(Active.back());
    Active.pop_back();
    closeBank(Bank, LastEventTime);
  }
}

std::uint32_t TraceEngine::onReadStats(std::uint32_t LoopId,
                                       std::uint64_t Cycle) {
  if (!Block.empty())
    drainBlock();
  ++Events.ReadStats;
  LastEventTime = Cycle;
  return isDisabled(LoopId) ? 0 : extraCost(Cfg.ReadStatsCost);
}

std::vector<int> TraceEngine::dynamicParents() const {
  assert(Block.empty() && "reading results with undrained batched events");
  std::vector<int> Parents(Stats.size(), -1);
  for (std::uint32_t L = 0; L < ParentVotes.size(); ++L) {
    const std::vector<std::uint64_t> &Votes = ParentVotes[L];
    if (Votes.empty())
      continue; // never entered
    // Ascending parent order with a strict max keeps the tie-break of the
    // ordered-map implementation: the smallest parent id wins.
    int Best = -1;
    std::uint64_t BestVotes = 0;
    for (std::size_t P = 0; P < Votes.size(); ++P) {
      if (Votes[P] > BestVotes) {
        Best = static_cast<int>(P) - 1;
        BestVotes = Votes[P];
      }
    }
    Parents[L] = Best;
  }
  // Discard any edges that would form a cycle (possible when a loop is
  // observed in several contexts): walk up from each node, cutting the edge
  // that closes a loop.
  for (std::uint32_t L = 0; L < Parents.size(); ++L) {
    std::vector<bool> Seen(Parents.size(), false);
    std::uint32_t Cur = L;
    Seen[L] = true;
    while (Parents[Cur] >= 0) {
      std::uint32_t P = static_cast<std::uint32_t>(Parents[Cur]);
      if (Seen[P]) {
        Parents[Cur] = -1;
        break;
      }
      Seen[P] = true;
      Cur = P;
    }
  }
  return Parents;
}
