//===- tracer/StlStats.h - Accumulated per-STL statistics ------------------==//
//
// The counter values a comparator bank accumulates for one potential STL
// (bottom of Figure 3) and the derived values computed from them.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACER_STLSTATS_H
#define JRPM_TRACER_STLSTATS_H

#include <cstdint>
#include <map>

namespace jrpm {
namespace tracer {

/// Critical-arc statistics binned by load instruction PC (the extended
/// implementation of Figure 8b, used to guide optimization per Section 6.3).
struct PcBinStats {
  std::uint64_t CriticalArcs = 0;
  std::uint64_t AccumulatedLength = 0;

  bool operator==(const PcBinStats &O) const = default;

  double averageLength() const {
    return CriticalArcs ? static_cast<double>(AccumulatedLength) /
                              static_cast<double>(CriticalArcs)
                        : 0.0;
  }
};

/// Raw counters for one potential STL, accumulated across all its entries.
struct StlStats {
  std::uint64_t Cycles = 0;  ///< elapsed time inside the loop
  std::uint64_t Threads = 0; ///< iterations observed
  std::uint64_t Entries = 0; ///< loop entries observed
  std::uint64_t UntracedEntries = 0; ///< entries skipped (no bank/slots)

  std::uint64_t CritArcsPrev = 0;    ///< critical arcs to thread t-1
  std::uint64_t CritLenPrev = 0;     ///< accumulated arc lengths to t-1
  std::uint64_t CritArcsEarlier = 0; ///< critical arcs to threads < t-1
  std::uint64_t CritLenEarlier = 0;  ///< accumulated arc lengths to < t-1

  std::uint64_t OverflowThreads = 0; ///< threads exceeding a buffer limit
  std::uint64_t MaxLoadLines = 0;    ///< peak new load lines in one thread
  std::uint64_t MaxStoreLines = 0;   ///< peak new store lines in one thread

  /// Extended mode: critical arcs binned by the load PC that closed them.
  std::map<std::int32_t, PcBinStats> PcBins;

  /// Exact equality of every counter — the replay-equivalence contract:
  /// re-driving a TraceEngine from a recorded trace must reproduce these
  /// bit-for-bit.
  bool operator==(const StlStats &O) const = default;

  // --- Derived values (Figure 3's right-hand column) ----------------------

  double avgThreadSize() const {
    return Threads ? static_cast<double>(Cycles) /
                         static_cast<double>(Threads)
                   : 0.0;
  }

  double itersPerEntry() const {
    return Entries ? static_cast<double>(Threads) /
                         static_cast<double>(Entries)
                   : 0.0;
  }

  /// Thread transitions with a predecessor in the same entry.
  std::uint64_t transitions() const {
    return Threads > Entries ? Threads - Entries : 0;
  }

  double arcFreqPrev() const {
    std::uint64_t T = transitions();
    return T ? static_cast<double>(CritArcsPrev) / static_cast<double>(T)
             : 0.0;
  }

  double arcFreqEarlier() const {
    std::uint64_t T = transitions();
    return T ? static_cast<double>(CritArcsEarlier) / static_cast<double>(T)
             : 0.0;
  }

  double avgArcPrev() const {
    return CritArcsPrev ? static_cast<double>(CritLenPrev) /
                              static_cast<double>(CritArcsPrev)
                        : 0.0;
  }

  double avgArcEarlier() const {
    return CritArcsEarlier ? static_cast<double>(CritLenEarlier) /
                                 static_cast<double>(CritArcsEarlier)
                           : 0.0;
  }

  double overflowFreq() const {
    return Threads ? static_cast<double>(OverflowThreads) /
                         static_cast<double>(Threads)
                   : 0.0;
  }
};

} // namespace tracer
} // namespace jrpm

#endif // JRPM_TRACER_STLSTATS_H
