//===- tracer/SpeedupModel.cpp --------------------------------------------==//

#include "tracer/SpeedupModel.h"

#include <algorithm>

using namespace jrpm;
using namespace jrpm::tracer;

SpeedupEstimate tracer::estimateSpeedup(const StlStats &S,
                                        const sim::HydraConfig &Cfg) {
  SpeedupEstimate E;
  double P = static_cast<double>(Cfg.NumCores);
  double T = S.avgThreadSize();
  if (S.Threads == 0 || S.Cycles == 0 || T <= 0.0)
    return E;

  double Comm = static_cast<double>(Cfg.StoreLoadCommCycles);
  auto Bound = [&](double ArcLen, double Distance) {
    double Offset = std::max(T / P, (T - ArcLen + Comm) / Distance);
    return std::min(P, T / Offset);
  };

  double F1 = std::min(1.0, S.arcFreqPrev());
  double F2 = std::min(1.0 - F1, S.arcFreqEarlier());
  double Free = std::max(0.0, 1.0 - F1 - F2);
  E.BaseSpeedup = F1 * Bound(S.avgArcPrev(), 1.0) +
                  F2 * Bound(S.avgArcEarlier(), 2.0) + Free * P;
  E.BaseSpeedup = std::max(E.BaseSpeedup, 1e-6);

  // Threads that overflow a speculation buffer stall until they become the
  // head thread, i.e. they execute serially.
  double Ovf = std::min(1.0, S.overflowFreq());
  E.EffectiveSpeedup = (1.0 - Ovf) * E.BaseSpeedup + Ovf * 1.0;

  double FixedOverheads =
      static_cast<double>(S.Entries) *
          static_cast<double>(Cfg.LoopStartupCycles + Cfg.LoopShutdownCycles) +
      static_cast<double>(S.Threads) *
          static_cast<double>(Cfg.EndOfIterationCycles);
  E.SpecCycles =
      FixedOverheads + static_cast<double>(S.Cycles) / E.EffectiveSpeedup;
  E.Speedup = static_cast<double>(S.Cycles) / E.SpecCycles;
  return E;
}
