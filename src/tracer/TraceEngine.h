//===- tracer/TraceEngine.h - The TEST hardware model ----------------------==//
//
// Consumes the annotated sequential execution's event stream and performs
// the two trace analyses of Section 4.2 — load dependency analysis and
// speculative state overflow analysis — exactly as the comparator-bank
// hardware of Section 5 would: a bounded array of banks allocated
// stack-style by `sloop`/`eloop`, shared timestamp storage in the idle
// speculation store buffers, and per-thread critical-arc folding at each
// `eoi`.
//
//===----------------------------------------------------------------------===//

#ifndef JRPM_TRACER_TRACEENGINE_H
#define JRPM_TRACER_TRACEENGINE_H

#include "interp/TraceSink.h"
#include "metrics/Metrics.h"
#include "metrics/Timeline.h"
#include "sim/Config.h"
#include "tracer/StlStats.h"
#include "tracer/TimestampStores.h"

#include <cstdint>
#include <map>
#include <vector>

namespace jrpm {
namespace tracer {

/// Static per-loop information the tracer needs: which named locals carry
/// dependencies and therefore receive timestamp slots.
struct LoopTraceInfo {
  std::vector<std::uint16_t> AnnotatedLocals;
};

/// One active comparator bank (Figure 7), tracking the progress of one STL
/// currently being executed. Entries with Traced == false are placeholders
/// for loops that could not get a bank (array exhausted, no local slots, or
/// tracing dynamically disabled) and only keep the sloop/eloop stack
/// balanced.
struct ComparatorBank {
  std::uint32_t LoopId = 0;
  std::uint64_t Activation = 0;
  bool Traced = false;

  std::uint64_t EntryTime = 0;
  std::uint64_t CurThreadStart = 0;
  std::uint64_t PrevThreadStart = 0;

  static constexpr std::uint64_t NoArc = ~std::uint64_t(0);
  std::uint64_t MinArcPrev = NoArc;
  std::uint64_t MinArcEarlier = NoArc;
  std::int32_t MinArcPrevPc = -1;
  std::int32_t MinArcEarlierPc = -1;

  std::uint64_t NewLoadLines = 0;
  std::uint64_t NewStoreLines = 0;
  bool Overflowed = false;

  int SlotBase = -1;
  std::uint32_t SlotCount = 0;
  /// Newly reserved (register -> absolute slot) pairs owned by this bank.
  std::vector<std::pair<std::uint16_t, std::uint32_t>> RegSlots;
};

class TraceEngine : public interp::TraceSink {
public:
  /// \p Loops is indexed by module-global loop id.
  TraceEngine(const sim::HydraConfig &Cfg, std::vector<LoopTraceInfo> Loops,
              bool ExtendedPcBinning = false);

  /// Dynamically stop tracing a loop once this many threads have been
  /// observed for it, freeing its bank for deeper loops (Section 5.2's
  /// annotation-disabling mechanism). 0 disables the feature.
  void setDisableLoopAfterThreads(std::uint64_t Threshold) {
    DisableAfterThreads = Threshold;
  }

  // --- TraceSink interface -------------------------------------------------
  std::uint32_t onHeapLoad(std::uint32_t Addr, std::uint64_t Cycle,
                           std::int32_t Pc) override;
  std::uint32_t onHeapStore(std::uint32_t Addr, std::uint64_t Cycle,
                            std::int32_t Pc) override;
  std::uint32_t onLocalLoad(std::uint64_t Activation, std::uint16_t Reg,
                            std::uint64_t Cycle, std::int32_t Pc) override;
  std::uint32_t onLocalStore(std::uint64_t Activation, std::uint16_t Reg,
                             std::uint64_t Cycle, std::int32_t Pc) override;
  std::uint32_t onLoopStart(std::uint32_t LoopId, std::uint64_t Activation,
                            std::uint64_t Cycle) override;
  std::uint32_t onLoopIter(std::uint32_t LoopId, std::uint64_t Cycle) override;
  std::uint32_t onLoopEnd(std::uint32_t LoopId, std::uint64_t Cycle) override;
  void onReturn(std::uint64_t Activation) override;
  std::uint32_t onReadStats(std::uint32_t LoopId,
                            std::uint64_t Cycle) override;

  // --- Results -------------------------------------------------------------
  const StlStats &stats(std::uint32_t LoopId) const { return Stats[LoopId]; }
  std::uint32_t numLoops() const {
    return static_cast<std::uint32_t>(Stats.size());
  }

  /// Dynamic nesting: majority-vote parent loop id per loop (-1 for
  /// top-level). Cycle-free by construction (votes creating a cycle are
  /// discarded).
  std::vector<int> dynamicParents() const;

  /// Peak number of simultaneously traced STLs (hardware needs this many
  /// comparator banks).
  std::uint32_t peakBanksInUse() const { return PeakBanks; }

  /// Peak number of local-variable timestamp slots in use.
  std::uint32_t peakLocalSlots() const { return PeakSlots; }

  /// Maximum dynamic loop-nest depth observed (Table 6 column d), counting
  /// loops that could not get a bank.
  std::uint32_t peakDynamicNest() const { return PeakNest; }

  /// Attaches the span recorder: traced bank activations become nested
  /// spans on \p T (the comparator-bank array is a stack, so spans nest by
  /// construction).
  void setObservability(metrics::Timeline *Timeline, metrics::TrackId T) {
    TL = Timeline;
    Track = T;
  }

  /// Exports accumulated totals as "tracer.*" metrics. Every value is a
  /// pure function of the consumed event stream, so a live run and a
  /// replayed capture of the same run export identical bytes.
  void exportMetrics(metrics::Registry &R) const;

private:
  /// True once the runtime has dynamically disabled this loop's
  /// annotations (they cost nothing from then on — the paper overwrites
  /// them with nops).
  bool isDisabled(std::uint32_t LoopId) const {
    return DisableAfterThreads &&
           Stats[LoopId].Threads >= DisableAfterThreads;
  }
  /// Coprocessor interaction cost beyond the annotation instruction's own
  /// cycle.
  std::uint32_t extraCost(std::uint32_t Total) const {
    return Total > 0 ? Total - 1 : 0;
  }

  ComparatorBank *findTraced(std::uint32_t LoopId);
  void finalizeThread(ComparatorBank &Bank);
  void closeBank(ComparatorBank &Bank, std::uint64_t Cycle);
  void checkLoadArc(std::uint64_t StoreTs, std::uint64_t Cycle,
                    std::int32_t Pc);
  std::uint32_t tracedCount() const;

  /// Held by value (reentrancy audit): sweep jobs construct engines from
  /// per-job configs on their own stacks, and a reference member would
  /// dangle the moment a job outlives the temporary it was built from.
  sim::HydraConfig Cfg;
  std::vector<LoopTraceInfo> Loops;
  bool ExtendedPcBinning;
  std::uint64_t DisableAfterThreads = 0;

  HeapStoreTimestamps HeapTs;
  CacheLineTimestampTable LoadLineTs;
  CacheLineTimestampTable StoreLineTs;
  LocalVarTimestampFile LocalTs;

  std::vector<ComparatorBank> Active; // stack, bottom = outermost
  std::vector<StlStats> Stats;        // indexed by loop id
  std::map<std::uint32_t, std::map<int, std::uint64_t>> ParentVotes;
  std::uint32_t PeakBanks = 0;
  std::uint32_t PeakSlots = 0;
  std::uint32_t PeakNest = 0;
  std::uint64_t LastEventTime = 0;

  /// Event-stream counters: one plain increment per event, folded into a
  /// registry only by exportMetrics().
  struct EventCounts {
    std::uint64_t HeapLoads = 0;
    std::uint64_t HeapStores = 0;
    std::uint64_t LocalLoads = 0;
    std::uint64_t LocalStores = 0;
    std::uint64_t LoopStarts = 0;
    std::uint64_t LoopIters = 0;
    std::uint64_t LoopEnds = 0;
    std::uint64_t Returns = 0;
    std::uint64_t ReadStats = 0;
  };
  EventCounts Events;
  metrics::Histogram ThreadSizeCycles;
  metrics::Timeline *TL = nullptr;
  metrics::TrackId Track = 0;
};

} // namespace tracer
} // namespace jrpm

#endif // JRPM_TRACER_TRACEENGINE_H
